#pragma once

#include <cstdint>
#include <memory>

#include "core/ekf.hpp"
#include "est/estimator.hpp"

namespace cocoa::est {

/// EKF-CL: continuous range fusion in the style of the partially-
/// decentralized cooperative-localization EKF over unreliable links (Kia &
/// Martinez, arXiv:1608.00609). Each beacon updates the filter on arrival
/// (through the same RangeEkf core the legacy LocalizationMode::Ekf used, so
/// that mode stays numerically identical), and a window that ends without a
/// single accepted measurement inflates the covariance — under the fault
/// subsystem's loss bursts and anchor outages the filter degrades gracefully
/// instead of coasting overconfidently, then re-converges when links return.
class EkfClEstimator final : public Estimator {
  public:
    struct Stats {
        std::uint64_t updates_accepted = 0;
        std::uint64_t updates_gated = 0;   ///< innovation-gate rejections
        std::uint64_t windows_missed = 0;  ///< windows with no accepted update
    };

    EkfClEstimator(const Config& config, std::shared_ptr<const phy::PdfTable> table);

    Backend backend() const override { return Backend::Ekf; }

    void reset(const geom::Vec2& position, bool position_known) override;
    void predict(const geom::Vec2& measured_delta, double dt_s) override;
    bool integrates_odometry() const override { return true; }
    bool collects_window_beacons() const override { return false; }
    bool observe_beacon(const core::BeaconObservation& obs) override;
    WindowSummary end_window() override;

    geom::Vec2 estimate() const override { return area_.clamp(ekf_.mean()); }
    double spread_m() const override { return ekf_.uncertainty(); }

    void register_counters(obs::CounterRegistry& registry,
                           const std::string& node_prefix) const override;

    const core::RangeEkf& filter() const { return ekf_; }
    const Stats& stats() const { return stats_; }

    void save_state(sim::ckpt::Writer& w) const override;
    void load_state(sim::ckpt::Reader& r) override;

  private:
    Config config_;
    std::shared_ptr<const phy::PdfTable> table_;
    geom::Rect area_;
    core::RangeEkf ekf_;
    int accepted_this_window_ = 0;
    Stats stats_;
};

}  // namespace cocoa::est
