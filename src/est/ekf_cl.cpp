#include "est/ekf_cl.hpp"

#include <algorithm>
#include <utility>

#include "sim/checkpoint.hpp"

namespace cocoa::est {

EkfClEstimator::EkfClEstimator(const Config& config,
                               std::shared_ptr<const phy::PdfTable> table)
    : config_(config), table_(std::move(table)), area_(config.grid.area) {}

void EkfClEstimator::reset(const geom::Vec2& position, bool position_known) {
    if (position_known) {
        ekf_.reset(position, 1.0);
    } else {
        // Unknown anywhere in the area.
        const double half = 0.5 * area_.width();
        ekf_.reset(position, half * half);
    }
    ever_fixed_ = position_known;
    last_fix_spread_m_ = std::numeric_limits<double>::infinity();
    accepted_this_window_ = 0;
}

void EkfClEstimator::predict(const geom::Vec2& measured_delta, double dt_s) {
    if (dt_s > 0.0 || measured_delta.norm_sq() > 0.0) {
        const double q = config_.ekf_q_displacement_frac *
                             config_.ekf_q_displacement_frac *
                             measured_delta.norm_sq() +
                         config_.ekf_q_floor_var_per_s * dt_s;
        ekf_.predict(measured_delta, q);
    }
}

bool EkfClEstimator::observe_beacon(const core::BeaconObservation& obs) {
    if (obs.rssi_dbm < config_.beacon_rssi_cutoff_dbm) return false;
    const phy::DistancePdf* pdf = table_->lookup(obs.rssi_dbm);
    if (pdf == nullptr) return false;
    if (!pdf->gaussian_fit_ok && !config_.ekf_use_non_gaussian_bins) return false;
    const double sigma = std::max(pdf->sigma_m, config_.ekf_min_range_sigma_m);
    if (ekf_.update_range(obs.anchor_position, pdf->mean_m, sigma,
                          config_.ekf_gate_sigmas)) {
        ever_fixed_ = true;
        last_fix_spread_m_ = ekf_.uncertainty();
        ++accepted_this_window_;
        ++stats_.updates_accepted;
        return true;
    }
    // Gated out: if the belief keeps disagreeing with measurements it must
    // lose confidence, or it will coast away for good.
    ekf_.predict({}, config_.ekf_reject_inflation_var);
    ++stats_.updates_gated;
    return false;
}

WindowSummary EkfClEstimator::end_window() {
    const int accepted = accepted_this_window_;
    accepted_this_window_ = 0;
    if (config_.legacy_continuous) return {};  // pre-interface EKF: no books
    WindowSummary summary;
    summary.tracked = true;
    summary.fixed = accepted > 0;
    summary.beacons_used = accepted;
    if (!summary.fixed) {
        // A whole window with nothing accepted — a loss burst, an outage, or
        // every anchor out of range. Open the filter so the next good
        // measurement can pull the state back (graceful degradation).
        ekf_.predict({}, config_.ekf_missed_window_var);
        ++stats_.windows_missed;
    }
    return summary;
}

void EkfClEstimator::register_counters(obs::CounterRegistry& registry,
                                       const std::string& node_prefix) const {
    registry.add(node_prefix + "est.updates_accepted", &stats_.updates_accepted);
    registry.add(node_prefix + "est.updates_gated", &stats_.updates_gated);
    registry.add(node_prefix + "est.windows_missed", &stats_.windows_missed);
}

void EkfClEstimator::save_state(sim::ckpt::Writer& w) const {
    Estimator::save_state(w);
    const geom::Vec2& mean = ekf_.mean();
    const core::Cov2& cov = ekf_.covariance();
    w.f64(mean.x);
    w.f64(mean.y);
    w.f64(cov.xx);
    w.f64(cov.xy);
    w.f64(cov.yy);
    w.i32(accepted_this_window_);
    w.u64(stats_.updates_accepted);
    w.u64(stats_.updates_gated);
    w.u64(stats_.windows_missed);
}

void EkfClEstimator::load_state(sim::ckpt::Reader& r) {
    Estimator::load_state(r);
    geom::Vec2 mean;
    core::Cov2 cov;
    mean.x = r.f64();
    mean.y = r.f64();
    cov.xx = r.f64();
    cov.xy = r.f64();
    cov.yy = r.f64();
    ekf_.set_state(mean, cov);
    accepted_this_window_ = r.i32();
    stats_.updates_accepted = r.u64();
    stats_.updates_gated = r.u64();
    stats_.windows_missed = r.u64();
}

}  // namespace cocoa::est
