#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "est/estimator.hpp"

namespace cocoa::est {

/// The paper's estimator behind the interface: window beacons fold into the
/// Bayesian grid at window end (RfLocalizer), and between fixes the estimate
/// is either the held fix (hold_fixes / RfOnly) or the agent's dead-
/// reckoning re-anchored at the fix (Combined). Every numeric path delegates
/// to the same RfLocalizer the agent used to own, so output is byte-
/// identical to the pre-interface code — the invariant the CI estimator-
/// equivalence gate enforces.
class GridEstimator final : public Estimator {
  public:
    GridEstimator(const Config& config, std::shared_ptr<const phy::PdfTable> table,
                  mobility::OdometryEstimator* odometry);

    Backend backend() const override { return Backend::Grid; }

    void reset(const geom::Vec2& position, bool position_known) override;
    bool collects_window_beacons() const override { return true; }
    std::optional<core::Fix> compute_fix(
        const std::vector<core::BeaconObservation>& beacons) override;
    /// The grid fold is pure in the window's beacons (no reads of the live
    /// belief), so it may run on a fix-pool worker.
    bool pool_safe_fix() const override { return true; }
    void apply_fix(const std::optional<core::Fix>& fix, double heading) override;

    geom::Vec2 estimate() const override;
    double spread_m() const override { return last_fix_spread_m_; }

    void register_counters(obs::CounterRegistry& registry,
                           const std::string& node_prefix) const override;
    const core::RfLocalizer::Stats& localizer_stats() const override {
        return localizer_.stats();
    }
    const core::RfLocalizer& localizer() const { return localizer_; }

    void save_state(sim::ckpt::Writer& w) const override;
    void load_state(sim::ckpt::Reader& r) override;

  private:
    core::RfLocalizer localizer_;
    mobility::OdometryEstimator* odometry_;
    geom::Vec2 center_;
    bool hold_fixes_;
    /// Held fix (hold_fixes mode), kept at the centre until the first fix —
    /// including after a reset with a known pose, matching the pre-interface
    /// agent field exactly.
    geom::Vec2 rf_position_;
};

}  // namespace cocoa::est
