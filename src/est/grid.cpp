#include "est/grid.hpp"

#include <utility>

#include "sim/checkpoint.hpp"

namespace cocoa::est {

GridEstimator::GridEstimator(const Config& config,
                             std::shared_ptr<const phy::PdfTable> table,
                             mobility::OdometryEstimator* odometry)
    : localizer_(config.grid, std::move(table),
                 core::RfLocalizer::Options{
                     .technique = config.technique,
                     .min_beacons = config.min_beacons_for_fix,
                     .rssi_cutoff_dbm = config.beacon_rssi_cutoff_dbm,
                     .use_non_gaussian_bins = config.use_non_gaussian_bins}),
      odometry_(odometry),
      center_(config.grid.area.center()),
      hold_fixes_(config.hold_fixes),
      rf_position_(center_) {}

void GridEstimator::reset(const geom::Vec2& /*position*/, bool position_known) {
    // The held fix restarts at the centre even for a known pose: the paper
    // never seeds the RF estimate, only the dead reckoning (which the agent
    // anchors at the true pose itself).
    rf_position_ = center_;
    ever_fixed_ = position_known;
    last_fix_spread_m_ = std::numeric_limits<double>::infinity();
}

std::optional<core::Fix> GridEstimator::compute_fix(
    const std::vector<core::BeaconObservation>& beacons) {
    return localizer_.compute_fix(beacons);
}

void GridEstimator::apply_fix(const std::optional<core::Fix>& fix, double heading) {
    if (!fix.has_value()) return;  // "continue with the old estimate" (§2.3)
    ever_fixed_ = true;
    last_fix_spread_m_ = fix->posterior_spread_m;
    if (hold_fixes_) {
        rf_position_ = fix->position;
    } else {
        // CoCoA: re-anchor dead reckoning at the fix (heading too when the
        // agent sampled the corrected one; see heading_correction_at_fix).
        odometry_->reset(fix->position, heading);
    }
}

geom::Vec2 GridEstimator::estimate() const {
    if (hold_fixes_) return rf_position_;
    return ever_fixed_ ? odometry_->position() : center_;
}

void GridEstimator::register_counters(obs::CounterRegistry& registry,
                                      const std::string& node_prefix) const {
    localizer_.register_counters(registry, node_prefix + "localizer.");
}

void GridEstimator::save_state(sim::ckpt::Writer& w) const {
    Estimator::save_state(w);
    w.f64(rf_position_.x);
    w.f64(rf_position_.y);
    const core::RfLocalizer::Stats& s = localizer_.stats();
    w.u64(s.fixes);
    w.u64(s.rejected_too_few);
    w.u64(s.beacons_without_bin);
    w.u64(s.beacons_non_gaussian);
}

void GridEstimator::load_state(sim::ckpt::Reader& r) {
    Estimator::load_state(r);
    rf_position_.x = r.f64();
    rf_position_.y = r.f64();
    core::RfLocalizer::Stats s;
    s.fixes = r.u64();
    s.rejected_too_few = r.u64();
    s.beacons_without_bin = r.u64();
    s.beacons_non_gaussian = r.u64();
    localizer_.set_stats(s);
}

}  // namespace cocoa::est
