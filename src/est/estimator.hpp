#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/rf_localizer.hpp"
#include "geom/vec2.hpp"
#include "mobility/odometry.hpp"
#include "obs/counters.hpp"
#include "phy/pdf_table.hpp"

namespace cocoa::sim::ckpt {
class Writer;
class Reader;
}  // namespace cocoa::sim::ckpt

namespace cocoa::est {

/// Which belief representation a blind robot runs behind the Estimator
/// interface. The paper's grid-Bayes filter is one point in the cooperative-
/// localization design space; the other two backends cover its neighbours:
enum class Backend {
    Grid,    ///< CoCoA's windowed Bayesian grid (the reproduction default)
    Ekf,     ///< EKF-CL: continuous range fusion with covariance inflation on
             ///< missed windows (Kia & Martinez, arXiv:1608.00609)
    LinCvx,  ///< opportunistic linear-convex combination, near-zero per-fix
             ///< CPU (Safavi & Khan, arXiv:1703.06387)
};

const char* to_string(Backend backend);
/// "grid" | "ekf" | "lincvx" -> Backend; std::nullopt for anything else.
std::optional<Backend> parse_backend(std::string_view name);

/// Estimator tuning, sliced out of AgentConfig by the agent. One struct for
/// all backends: each reads the subset it cares about, so a scenario sweep
/// can switch backends without touching the rest of its configuration.
struct Config {
    Backend backend = Backend::Grid;

    core::GridConfig grid;  ///< area (all backends) + cell size (grid)
    core::RfTechnique technique = core::RfTechnique::BayesianGrid;
    int min_beacons_for_fix = 3;
    double beacon_rssi_cutoff_dbm = -std::numeric_limits<double>::infinity();
    bool use_non_gaussian_bins = true;
    /// RfOnly mode: hold the raw fix between windows instead of re-anchoring
    /// the dead-reckoning at it.
    bool hold_fixes = false;
    /// LocalizationMode::Ekf compatibility: the pre-interface continuous EKF
    /// did no per-window accounting and no missed-window inflation; the EKF
    /// backend reproduces it bit-exactly when this is set.
    bool legacy_continuous = false;

    // EKF-CL process/measurement tuning (see AgentConfig for the rationale;
    // the displacement/floor pair also drives LinCvx's prior inflation).
    double ekf_q_displacement_frac = 0.1;
    double ekf_q_floor_var_per_s = 0.6;
    double ekf_gate_sigmas = 4.0;
    bool ekf_use_non_gaussian_bins = true;
    double ekf_min_range_sigma_m = 2.0;
    double ekf_reject_inflation_var = 2.0;
    /// Covariance inflation (m^2) applied at the end of a window in which no
    /// measurement was accepted: under loss bursts or anchor outages the
    /// filter must lose confidence instead of coasting overconfidently —
    /// the graceful-degradation knob of the partially-decentralized EKF.
    double ekf_missed_window_var = 4.0;

    /// LinCvx is opportunistic: any usable beacon updates the estimate.
    int lincvx_min_beacons = 1;
};

/// What a continuous-fusion backend did during the window that just closed.
/// `tracked` is false when the backend keeps no per-window books (collecting
/// backends, and the legacy-continuous EKF) — the agent then leaves its
/// fix/no-fix stats to the compute_fix/apply_fix path.
struct WindowSummary {
    bool tracked = false;
    bool fixed = false;       ///< at least one measurement accepted
    int beacons_used = 0;
};

/// A blind robot's position-belief backend: the observe-beacon / dead-reckon
/// / compute-fix / estimate+spread contract extracted from CocoaAgent.
///
/// Call protocol (enforced by the agent):
///  - reset() at start and after a reboot fault; the belief collapses to
///    `position` ("known" pins it, otherwise it is a provisional centre).
///  - predict() on every agent tick with the *measured* odometry
///    displacement — only when integrates_odometry() is true.
///  - When collects_window_beacons() is true the agent buffers the window's
///    beacons and calls compute_fix() + apply_fix() at window end; when
///    false it forwards each beacon to observe_beacon() on arrival and calls
///    end_window() at window end.
///  - compute_fix() must be pure enough to run on a worker thread when
///    pool_safe_fix() is true (the deferred-fix machinery; see
///    AgentConfig::fix_pool). Backends whose fix reads the live belief
///    return false and always compute inline on the event thread.
///  - estimate()/spread_m()/ever_fixed() may be read between any of the
///    above (they are resolution points for deferred fixes at the agent
///    layer, never inside the estimator).
///
/// No backend draws randomness: determinism at any thread count is inherited
/// from the agent's event time-line, the same invariant every prior layer
/// keeps.
class Estimator {
  public:
    virtual ~Estimator() = default;

    virtual Backend backend() const = 0;

    virtual void reset(const geom::Vec2& position, bool position_known) = 0;
    virtual void predict(const geom::Vec2& /*measured_delta*/, double /*dt_s*/) {}
    virtual bool integrates_odometry() const { return false; }

    virtual bool collects_window_beacons() const = 0;
    /// Continuous fusion of one beacon; returns whether it was accepted.
    virtual bool observe_beacon(const core::BeaconObservation& /*obs*/) {
        return false;
    }

    virtual std::optional<core::Fix> compute_fix(
        const std::vector<core::BeaconObservation>& /*beacons*/) {
        return std::nullopt;
    }
    virtual bool pool_safe_fix() const { return false; }
    /// Folds a compute_fix() outcome into the belief. `heading` is the
    /// re-anchor heading sampled at window end (grid Combined mode).
    virtual void apply_fix(const std::optional<core::Fix>& /*fix*/,
                           double /*heading*/) {}
    virtual WindowSummary end_window() { return {}; }

    virtual geom::Vec2 estimate() const = 0;
    /// Current belief confidence as an RMS radius in metres.
    virtual double spread_m() const = 0;

    bool ever_fixed() const { return ever_fixed_; }
    double last_fix_spread_m() const { return last_fix_spread_m_; }

    /// Registers backend counters under `node_prefix` (e.g. "node.3.").
    /// The grid backend registers the exact "localizer.*" set the
    /// pre-interface agent did, keeping --counters output byte-identical.
    virtual void register_counters(obs::CounterRegistry& /*registry*/,
                                   const std::string& /*node_prefix*/) const {}
    /// Grid-backend localizer stats (all-zero for the other backends), so
    /// Scenario::result() aggregation is backend-agnostic.
    virtual const core::RfLocalizer::Stats& localizer_stats() const;

    /// Checkpoints the belief state. Overrides must call the base first (it
    /// writes the fix bookkeeping shared by every backend) and then append
    /// backend-specific state; load_state mirrors byte-for-byte.
    virtual void save_state(sim::ckpt::Writer& w) const;
    virtual void load_state(sim::ckpt::Reader& r);

  protected:
    bool ever_fixed_ = false;
    double last_fix_spread_m_ = std::numeric_limits<double>::infinity();
};

/// Builds the configured backend. `odometry` is the agent-owned dead-
/// reckoning estimate the grid backend re-anchors at each fix (and reads
/// between fixes in Combined mode); it must outlive the estimator.
std::unique_ptr<Estimator> make_estimator(
    const Config& config, std::shared_ptr<const phy::PdfTable> table,
    mobility::OdometryEstimator* odometry);

}  // namespace cocoa::est
