#include "est/lincvx.hpp"

#include <algorithm>
#include <utility>

#include "sim/checkpoint.hpp"

namespace cocoa::est {

LinCvxEstimator::LinCvxEstimator(const Config& config,
                                 std::shared_ptr<const phy::PdfTable> table)
    : config_(config),
      table_(std::move(table)),
      area_(config.grid.area),
      mean_(area_.center()) {
    const double half = 0.5 * area_.width();
    var_ = half * half;
}

void LinCvxEstimator::reset(const geom::Vec2& position, bool position_known) {
    mean_ = position;
    const double half = 0.5 * area_.width();
    var_ = position_known ? 1.0 : half * half;
    ever_fixed_ = position_known;
    last_fix_spread_m_ = std::numeric_limits<double>::infinity();
    pending_var_ = 0.0;
}

void LinCvxEstimator::predict(const geom::Vec2& measured_delta, double dt_s) {
    if (dt_s <= 0.0 && measured_delta.norm_sq() == 0.0) return;
    mean_ += measured_delta;
    var_ += config_.ekf_q_displacement_frac * config_.ekf_q_displacement_frac *
                measured_delta.norm_sq() +
            config_.ekf_q_floor_var_per_s * dt_s;
}

std::optional<core::Fix> LinCvxEstimator::compute_fix(
    const std::vector<core::BeaconObservation>& beacons) {
    // Inverse-variance-weighted blend of one candidate point per usable
    // beacon. Plain accumulators — no temporaries, no allocation.
    double weight_sum = 0.0;
    double cx = 0.0;
    double cy = 0.0;
    int used = 0;
    for (const core::BeaconObservation& beacon : beacons) {
        if (beacon.rssi_dbm < config_.beacon_rssi_cutoff_dbm) {
            ++stats_.beacons_skipped;
            continue;
        }
        const phy::DistancePdf* pdf = table_->lookup(beacon.rssi_dbm);
        if (pdf == nullptr ||
            (!pdf->gaussian_fit_ok && !config_.use_non_gaussian_bins)) {
            ++stats_.beacons_skipped;
            continue;
        }
        // Candidate: the point at the ranged distance from the anchor, along
        // the ray toward the prior — the opportunistic linearization of the
        // ring constraint (degenerates to the anchor itself when the prior
        // sits on it).
        const geom::Vec2 to_prior = mean_ - beacon.anchor_position;
        const double norm = to_prior.norm();
        const geom::Vec2 candidate =
            norm > 1e-9 ? beacon.anchor_position + to_prior * (pdf->mean_m / norm)
                        : beacon.anchor_position;
        const double sigma = std::max(pdf->sigma_m, config_.ekf_min_range_sigma_m);
        const double weight = 1.0 / (sigma * sigma);
        weight_sum += weight;
        cx += weight * candidate.x;
        cy += weight * candidate.y;
        ++used;
    }
    if (used < config_.lincvx_min_beacons || weight_sum <= 0.0) {
        return std::nullopt;
    }
    // Convex combination of prior and measurement blend, weighted by their
    // variances: lambda -> 1 when the prior knows nothing, -> 0 when the
    // dead reckoning is tighter than the beacons.
    const double meas_var = 1.0 / weight_sum;
    const double lambda = var_ / (var_ + meas_var);
    const geom::Vec2 blend{cx / weight_sum, cy / weight_sum};
    const geom::Vec2 position =
        area_.clamp(mean_ * (1.0 - lambda) + blend * lambda);
    pending_var_ = var_ * meas_var / (var_ + meas_var);
    ++stats_.fixes;
    stats_.beacons_used += static_cast<std::uint64_t>(used);
    return core::Fix{position, used, std::sqrt(2.0 * pending_var_)};
}

void LinCvxEstimator::apply_fix(const std::optional<core::Fix>& fix,
                                double /*heading*/) {
    if (!fix.has_value()) return;  // keep coasting on the inflated prior
    mean_ = fix->position;
    var_ = pending_var_;
    ever_fixed_ = true;
    last_fix_spread_m_ = fix->posterior_spread_m;
}

void LinCvxEstimator::register_counters(obs::CounterRegistry& registry,
                                        const std::string& node_prefix) const {
    registry.add(node_prefix + "est.fixes", &stats_.fixes);
    registry.add(node_prefix + "est.beacons_used", &stats_.beacons_used);
    registry.add(node_prefix + "est.beacons_skipped", &stats_.beacons_skipped);
}

void LinCvxEstimator::save_state(sim::ckpt::Writer& w) const {
    Estimator::save_state(w);
    w.f64(mean_.x);
    w.f64(mean_.y);
    w.f64(var_);
    w.f64(pending_var_);
    w.u64(stats_.fixes);
    w.u64(stats_.beacons_used);
    w.u64(stats_.beacons_skipped);
}

void LinCvxEstimator::load_state(sim::ckpt::Reader& r) {
    Estimator::load_state(r);
    mean_.x = r.f64();
    mean_.y = r.f64();
    var_ = r.f64();
    pending_var_ = r.f64();
    stats_.fixes = r.u64();
    stats_.beacons_used = r.u64();
    stats_.beacons_skipped = r.u64();
}

}  // namespace cocoa::est
