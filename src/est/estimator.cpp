#include "est/estimator.hpp"

#include <utility>

#include "est/ekf_cl.hpp"
#include "est/grid.hpp"
#include "est/lincvx.hpp"
#include "sim/checkpoint.hpp"

namespace cocoa::est {

const char* to_string(Backend backend) {
    switch (backend) {
        case Backend::Grid: return "grid";
        case Backend::Ekf: return "ekf";
        case Backend::LinCvx: return "lincvx";
    }
    return "?";
}

std::optional<Backend> parse_backend(std::string_view name) {
    if (name == "grid") return Backend::Grid;
    if (name == "ekf") return Backend::Ekf;
    if (name == "lincvx") return Backend::LinCvx;
    return std::nullopt;
}

const core::RfLocalizer::Stats& Estimator::localizer_stats() const {
    static const core::RfLocalizer::Stats kZero{};
    return kZero;
}

void Estimator::save_state(sim::ckpt::Writer& w) const {
    w.b(ever_fixed_);
    w.f64(last_fix_spread_m_);
}

void Estimator::load_state(sim::ckpt::Reader& r) {
    ever_fixed_ = r.b();
    last_fix_spread_m_ = r.f64();
}

std::unique_ptr<Estimator> make_estimator(
    const Config& config, std::shared_ptr<const phy::PdfTable> table,
    mobility::OdometryEstimator* odometry) {
    switch (config.backend) {
        case Backend::Ekf:
            return std::make_unique<EkfClEstimator>(config, std::move(table));
        case Backend::LinCvx:
            return std::make_unique<LinCvxEstimator>(config, std::move(table));
        case Backend::Grid:
            break;
    }
    return std::make_unique<GridEstimator>(config, std::move(table), odometry);
}

}  // namespace cocoa::est
