#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "est/estimator.hpp"

namespace cocoa::est {

/// LinCvx: opportunistic linear-convex combination in the style of Safavi &
/// Khan (arXiv:1703.06387). The belief is a single (mean, isotropic
/// variance) pair. Dead reckoning inflates the variance between windows; at
/// window end each usable beacon contributes a candidate point — the anchor
/// position pushed out to the ranged distance along the prior-to-anchor ray
/// — and the fix is the inverse-variance-weighted convex combination of the
/// prior with the candidates' blend. No grid fold, no matrix algebra: a few
/// multiply-adds per beacon, the cheap-and-robust end of the accuracy/CPU
/// trade-off, and allocation-free in steady state (est_test pins this).
class LinCvxEstimator final : public Estimator {
  public:
    struct Stats {
        std::uint64_t fixes = 0;
        std::uint64_t beacons_used = 0;
        std::uint64_t beacons_skipped = 0;  ///< cutoff / no PDF bin / gated bin
    };

    LinCvxEstimator(const Config& config, std::shared_ptr<const phy::PdfTable> table);

    Backend backend() const override { return Backend::LinCvx; }

    void reset(const geom::Vec2& position, bool position_known) override;
    void predict(const geom::Vec2& measured_delta, double dt_s) override;
    bool integrates_odometry() const override { return true; }
    bool collects_window_beacons() const override { return true; }
    std::optional<core::Fix> compute_fix(
        const std::vector<core::BeaconObservation>& beacons) override;
    /// The blend reads the live prior, so it must run inline on the event
    /// thread — the agent never pools it (it is far cheaper than the pool
    /// handoff anyway).
    bool pool_safe_fix() const override { return false; }
    void apply_fix(const std::optional<core::Fix>& fix, double heading) override;

    geom::Vec2 estimate() const override { return area_.clamp(mean_); }
    double spread_m() const override { return std::sqrt(2.0 * var_); }

    void register_counters(obs::CounterRegistry& registry,
                           const std::string& node_prefix) const override;
    const Stats& stats() const { return stats_; }
    double variance() const { return var_; }

    void save_state(sim::ckpt::Writer& w) const override;
    void load_state(sim::ckpt::Reader& r) override;

  private:
    Config config_;
    std::shared_ptr<const phy::PdfTable> table_;
    geom::Rect area_;
    geom::Vec2 mean_;
    double var_ = 0.0;          ///< per-axis prior variance (m^2)
    double pending_var_ = 0.0;  ///< posterior variance carried compute->apply
    Stats stats_;
};

}  // namespace cocoa::est
