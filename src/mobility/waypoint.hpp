#pragma once

#include <optional>
#include <vector>

#include "geom/motion.hpp"
#include "geom/rect.hpp"
#include "geom/vec2.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace cocoa::mobility {

/// One piece of true robot motion, reported by the mobility model as it is
/// advanced through time. The odometry model corrupts these increments to
/// produce the dead-reckoned pose.
///
/// Semantics: at the start of the increment the robot turned in place by
/// `heading_change_rad`, then drove `forward_m` metres over `dt`.
struct MotionIncrement {
    double forward_m = 0.0;
    double heading_change_rad = 0.0;
    sim::Duration dt = sim::Duration::zero();
};

/// Configuration of the paper's movement model (§3): each robot repeatedly
/// picks a uniformly random destination in the area and drives straight to it
/// at a speed drawn uniformly from [min_speed, max_speed]; optionally it then
/// rests for a task period before the next command.
struct WaypointConfig {
    geom::Rect area = geom::Rect::square(200.0);
    double min_speed = 0.1;   ///< m/s; the paper uses 0.1.
    double max_speed = 2.0;   ///< m/s; the paper evaluates 0.5 and 2.0.
    sim::Duration min_pause = sim::Duration::zero();
    sim::Duration max_pause = sim::Duration::zero();
};

/// Random-task waypoint mobility for one robot.
///
/// Deterministic for a given RandomStream; position is exact piecewise-linear
/// motion (no numeric drift from tick size).
class WaypointMobility {
  public:
    /// Starts at `start` if provided, else at a uniformly random position.
    /// Throws std::invalid_argument on bad speeds/pauses.
    WaypointMobility(const WaypointConfig& config, sim::RandomStream rng,
                     std::optional<geom::Vec2> start = std::nullopt);

    /// Advances true motion to time `t` (monotonic; earlier times throw) and
    /// returns the increments travelled, in order.
    std::vector<MotionIncrement> advance_to(sim::TimePoint t);

    /// Position-only advance_to: identical motion, RNG consumption and final
    /// state, but no increment vector — returns whether the position changed.
    /// The swarm mobility tick's allocation-free path (its robots have no
    /// odometry consumer, and the sharded tick runs this from worker
    /// threads — per-robot state only, so disjoint robots are safe to
    /// advance concurrently).
    bool advance_position_to(sim::TimePoint t);

    sim::TimePoint time() const { return now_; }
    geom::Vec2 position() const { return position_; }
    /// Radians, CCW from +x.
    double heading() const { return heading_; }
    /// Zero while resting.
    geom::Vec2 velocity() const;
    bool resting() const { return resting_; }
    /// Commanded speed of the current leg (m/s), valid while driving.
    double speed() const { return speed_; }
    geom::Vec2 destination() const { return destination_; }

    /// Snapshot for MRMM's mobility-aware pruning: position, velocity and the
    /// time for which the current plan (leg or rest) remains valid.
    geom::MotionState motion_state() const;

    /// Checkpoints the motion state and the RNG position: after load the
    /// model continues the same leg and draws the same future commands the
    /// saved instance would have.
    void save(sim::ckpt::Writer& w) const;
    void load(sim::ckpt::Reader& r);

  private:
    void start_new_leg();
    /// Ends the current plan at now_: leaves rest into a new leg, or handles
    /// arrival (optional task pause, then a new random command).
    void finish_plan();
    /// Time remaining until the current plan (leg or rest) completes.
    sim::Duration plan_remaining() const;

    WaypointConfig config_;
    sim::RandomStream rng_;
    sim::TimePoint now_ = sim::TimePoint::origin();
    geom::Vec2 position_;
    geom::Vec2 destination_;
    double heading_ = 0.0;
    double speed_ = 0.0;
    bool resting_ = false;
    sim::TimePoint plan_end_ = sim::TimePoint::origin();
    /// Turn taken at the start of the next emitted increment (radians).
    double pending_turn_ = 0.0;
};

}  // namespace cocoa::mobility
