#pragma once

#include "geom/vec2.hpp"
#include "mobility/waypoint.hpp"
#include "sim/random.hpp"

namespace cocoa::mobility {

/// Error model of the paper's odometry (§3, Fig. 5):
///  - displacement error: zero-mean Gaussian, stddev 0.1 m per second of
///    driving (scaled by sqrt(dt) so the error process is tick-size
///    invariant);
///  - angular error: zero-mean Gaussian, stddev 10 degrees, charged at each
///    commanded heading change (turn);
///  - optional continuous heading drift (gyro-style), off by default.
struct OdometryConfig {
    double displacement_sigma = 0.1;                      ///< m / sqrt(s) while driving
    double angular_sigma_rad = geom::deg_to_rad(10.0);    ///< per turn
    double heading_drift_sigma_rad = 0.0;                 ///< rad / sqrt(s) while driving
    /// Per-axis sigma of a persistent per-robot velocity bias (m/s):
    /// systematic miscalibration (wheel diameter, surface slip) that makes
    /// the dead-reckoned position drift linearly in time and survives
    /// position fixes. Calibrated so that odometry-only error exceeds 100 m
    /// after 30 minutes at either evaluated speed, as the paper's Fig. 4
    /// reports, while CoCoA's per-period drift stays small.
    double velocity_bias_sigma = 0.045;
};

/// Dead-reckoning pose estimator fed by true motion increments.
///
/// The estimator integrates *measured* (noise-corrupted) increments starting
/// from the pose given to reset(). The difference between its position and
/// the mobility model's true position is the paper's odometry localization
/// error, which accumulates without bound (Fig. 4).
class OdometryEstimator {
  public:
    OdometryEstimator(const OdometryConfig& config, sim::RandomStream rng);

    /// Re-anchors the estimate at a known pose (initial deployment, or a
    /// CoCoA position fix).
    void reset(geom::Vec2 position, double heading_rad);

    /// Integrates one true motion increment with measurement noise.
    void observe(const MotionIncrement& increment);

    /// Convenience: observe a whole batch, in order.
    void observe_all(const std::vector<MotionIncrement>& increments) {
        for (const MotionIncrement& m : increments) observe(m);
    }

    geom::Vec2 position() const { return position_; }
    double heading() const { return heading_; }
    /// Total driven distance the odometer has measured since the last reset.
    double distance_travelled() const { return distance_; }
    /// This robot's persistent velocity bias (diagnostics).
    geom::Vec2 velocity_bias() const { return bias_; }

    /// Multiplies every noise sigma (displacement, angular, drift) from now
    /// on — fault injection for a degrading encoder/IMU. The persistent
    /// velocity bias is calibration, not noise, and is unaffected. Throws
    /// std::invalid_argument unless scale > 0; 1.0 restores nominal noise
    /// bit-exactly.
    void set_noise_scale(double scale);
    double noise_scale() const { return noise_scale_; }

    /// Checkpoints the dead-reckoned pose, the persistent bias, the noise
    /// scale and the RNG position.
    void save(sim::ckpt::Writer& w) const;
    void load(sim::ckpt::Reader& r);

  private:
    OdometryConfig config_;
    sim::RandomStream rng_;
    geom::Vec2 position_;
    geom::Vec2 bias_;  ///< drawn once; deliberately NOT cleared by reset()
    double heading_ = 0.0;
    double distance_ = 0.0;
    double noise_scale_ = 1.0;
};

}  // namespace cocoa::mobility
