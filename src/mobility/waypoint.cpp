#include "mobility/waypoint.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/checkpoint.hpp"

namespace cocoa::mobility {

namespace {
constexpr double kMinLegLength = 0.01;  // metres; avoids degenerate zero legs
}

WaypointMobility::WaypointMobility(const WaypointConfig& config, sim::RandomStream rng,
                                   std::optional<geom::Vec2> start)
    : config_(config), rng_(std::move(rng)) {
    if (config_.min_speed <= 0.0 || config_.max_speed < config_.min_speed) {
        throw std::invalid_argument("WaypointMobility: need 0 < min_speed <= max_speed");
    }
    if (config_.min_pause.is_negative() || config_.max_pause < config_.min_pause) {
        throw std::invalid_argument("WaypointMobility: need 0 <= min_pause <= max_pause");
    }
    if (config_.area.width() <= 0.0 || config_.area.height() <= 0.0) {
        throw std::invalid_argument("WaypointMobility: area must have positive extent");
    }
    if (start.has_value()) {
        if (!config_.area.contains(*start)) {
            throw std::invalid_argument("WaypointMobility: start outside area");
        }
        position_ = *start;
    } else {
        position_ = {rng_.uniform(config_.area.min.x, config_.area.max.x),
                     rng_.uniform(config_.area.min.y, config_.area.max.y)};
    }
    start_new_leg();
    // The robot's initial orientation is taken to be its first leg's heading,
    // so construction itself produces no turn.
    pending_turn_ = 0.0;
}

void WaypointMobility::start_new_leg() {
    geom::Vec2 dest;
    do {
        dest = {rng_.uniform(config_.area.min.x, config_.area.max.x),
                rng_.uniform(config_.area.min.y, config_.area.max.y)};
    } while (geom::distance(dest, position_) < kMinLegLength);

    destination_ = dest;
    speed_ = rng_.uniform(config_.min_speed, config_.max_speed);
    const double new_heading = (destination_ - position_).heading();
    pending_turn_ += geom::wrap_angle(new_heading - heading_);
    heading_ = new_heading;
    resting_ = false;
    plan_end_ = now_ + sim::Duration::seconds(geom::distance(position_, destination_) / speed_);
}

void WaypointMobility::finish_plan() {
    if (resting_) {
        start_new_leg();
        return;
    }
    // Arrived at the destination: "perform a task" (optional pause), then a
    // new random command.
    const sim::Duration pause =
        config_.max_pause.is_zero()
            ? sim::Duration::zero()
            : sim::Duration::nanos(rng_.uniform_int(config_.min_pause.to_nanos(),
                                                    config_.max_pause.to_nanos()));
    if (pause > sim::Duration::zero()) {
        resting_ = true;
        speed_ = 0.0;
        plan_end_ = now_ + pause;
    } else {
        start_new_leg();
    }
}

std::vector<MotionIncrement> WaypointMobility::advance_to(sim::TimePoint t) {
    if (t < now_) {
        throw std::logic_error("WaypointMobility::advance_to: time went backwards");
    }
    std::vector<MotionIncrement> out;
    while (now_ < t) {
        const sim::TimePoint until = std::min(t, plan_end_);
        const sim::Duration dt = until - now_;
        if (dt > sim::Duration::zero()) {
            double forward = 0.0;
            if (!resting_) {
                forward = speed_ * dt.to_seconds();
                if (until == plan_end_) {
                    position_ = destination_;  // land exactly, no numeric drift
                } else {
                    position_ += geom::Vec2::from_heading(heading_) * forward;
                }
            }
            out.push_back({forward, pending_turn_, dt});
            pending_turn_ = 0.0;
            now_ = until;
        }
        if (now_ == plan_end_) finish_plan();
    }
    return out;
}

bool WaypointMobility::advance_position_to(sim::TimePoint t) {
    if (t < now_) {
        throw std::logic_error("WaypointMobility::advance_position_to: time went backwards");
    }
    // Mirrors advance_to exactly (same plan boundaries, same FP position
    // updates, same finish_plan RNG draws) minus the increment vector.
    bool moved = false;
    while (now_ < t) {
        const sim::TimePoint until = std::min(t, plan_end_);
        const sim::Duration dt = until - now_;
        if (dt > sim::Duration::zero()) {
            if (!resting_) {
                const double forward = speed_ * dt.to_seconds();
                if (until == plan_end_) {
                    position_ = destination_;  // land exactly, no numeric drift
                } else {
                    position_ += geom::Vec2::from_heading(heading_) * forward;
                }
                moved = moved || forward != 0.0;
            }
            pending_turn_ = 0.0;
            now_ = until;
        }
        if (now_ == plan_end_) finish_plan();
    }
    return moved;
}

geom::Vec2 WaypointMobility::velocity() const {
    if (resting_) return {};
    return geom::Vec2::from_heading(heading_) * speed_;
}

sim::Duration WaypointMobility::plan_remaining() const { return plan_end_ - now_; }

geom::MotionState WaypointMobility::motion_state() const {
    return {position_, velocity(), plan_remaining().to_seconds()};
}

void WaypointMobility::save(sim::ckpt::Writer& w) const {
    rng_.save(w);
    w.time(now_);
    w.f64(position_.x);
    w.f64(position_.y);
    w.f64(destination_.x);
    w.f64(destination_.y);
    w.f64(heading_);
    w.f64(speed_);
    w.b(resting_);
    w.time(plan_end_);
    w.f64(pending_turn_);
}

void WaypointMobility::load(sim::ckpt::Reader& r) {
    rng_.load(r);
    now_ = r.time();
    position_.x = r.f64();
    position_.y = r.f64();
    destination_.x = r.f64();
    destination_.y = r.f64();
    heading_ = r.f64();
    speed_ = r.f64();
    resting_ = r.b();
    plan_end_ = r.time();
    pending_turn_ = r.f64();
}

}  // namespace cocoa::mobility
