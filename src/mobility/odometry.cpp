#include "mobility/odometry.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/checkpoint.hpp"

namespace cocoa::mobility {

OdometryEstimator::OdometryEstimator(const OdometryConfig& config, sim::RandomStream rng)
    : config_(config), rng_(std::move(rng)) {
    if (config_.displacement_sigma < 0.0 || config_.angular_sigma_rad < 0.0 ||
        config_.heading_drift_sigma_rad < 0.0 || config_.velocity_bias_sigma < 0.0) {
        throw std::invalid_argument("OdometryEstimator: sigmas must be non-negative");
    }
    bias_ = {rng_.gaussian(0.0, config_.velocity_bias_sigma),
             rng_.gaussian(0.0, config_.velocity_bias_sigma)};
}

void OdometryEstimator::reset(geom::Vec2 position, double heading_rad) {
    position_ = position;
    heading_ = geom::wrap_angle(heading_rad);
    distance_ = 0.0;
}

void OdometryEstimator::set_noise_scale(double scale) {
    if (scale <= 0.0) {
        throw std::invalid_argument("OdometryEstimator: noise scale must be > 0");
    }
    noise_scale_ = scale;
}

void OdometryEstimator::observe(const MotionIncrement& increment) {
    // A commanded turn is measured with Gaussian angular error.
    if (increment.heading_change_rad != 0.0) {
        const double measured_turn =
            increment.heading_change_rad +
            rng_.gaussian(0.0, config_.angular_sigma_rad * noise_scale_);
        heading_ = geom::wrap_angle(heading_ + measured_turn);
    }
    if (increment.forward_m > 0.0) {
        const double dt_s = increment.dt.to_seconds();
        const double sqrt_dt = std::sqrt(dt_s);
        // Continuous gyro drift while driving, if modelled.
        if (config_.heading_drift_sigma_rad > 0.0) {
            heading_ = geom::wrap_angle(
                heading_ + rng_.gaussian(0.0, config_.heading_drift_sigma_rad *
                                                  noise_scale_ * sqrt_dt));
        }
        const double measured_forward =
            increment.forward_m +
            rng_.gaussian(0.0, config_.displacement_sigma * noise_scale_ * sqrt_dt);
        position_ += geom::Vec2::from_heading(heading_) * measured_forward;
        // Systematic miscalibration drifts the estimate while driving; a
        // position fix re-anchors the estimate but cannot remove the bias.
        position_ += bias_ * dt_s;
        distance_ += measured_forward;
    }
}

void OdometryEstimator::save(sim::ckpt::Writer& w) const {
    rng_.save(w);
    w.f64(position_.x);
    w.f64(position_.y);
    w.f64(bias_.x);
    w.f64(bias_.y);
    w.f64(heading_);
    w.f64(distance_);
    w.f64(noise_scale_);
}

void OdometryEstimator::load(sim::ckpt::Reader& r) {
    rng_.load(r);
    position_.x = r.f64();
    position_.y = r.f64();
    bias_.x = r.f64();
    bias_.y = r.f64();
    heading_ = r.f64();
    distance_ = r.f64();
    noise_scale_ = r.f64();
}

}  // namespace cocoa::mobility
