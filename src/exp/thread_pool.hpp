#pragma once

// The pool moved to sim/ so core (which exp depends on) can use it for
// batched grid updates without a dependency cycle. This forwarder keeps the
// historical include path and name working for experiment-level code.
#include "sim/thread_pool.hpp"

namespace cocoa::exp {
using ThreadPool = sim::ThreadPool;
}  // namespace cocoa::exp
