#include "exp/backend_sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "exp/replication.hpp"
#include "obs/counters.hpp"
#include "phy/channel.hpp"

namespace cocoa::exp {

namespace {

std::string fmt_prob(double p) {
    std::ostringstream ss;
    ss << p;
    return ss.str();
}

}  // namespace

std::string BackendCell::json() const {
    std::ostringstream ss;
    ss << "{\"backend\":\"" << est::to_string(backend) << "\""
       << ",\"plan\":\"" << plan << "\""
       << ",\"reps\":" << reps
       << ",\"avg_error_m\":" << avg_error_m
       << ",\"steady_error_m\":" << steady_error_m
       << ",\"availability\":" << (has_resilience ? availability : -1.0)
       << ",\"avail_during\":" << (has_resilience ? avail_during : -1.0)
       << ",\"reacquire_s\":" << (has_resilience ? reacquire_s : -1.0)
       << ",\"fixes\":" << fixes
       << ",\"windows_without_fix\":" << windows_without_fix
       << ",\"fix_cpu_ns\":" << fix_cpu_ns << "}";
    return ss.str();
}

std::vector<std::pair<std::string, fault::FaultPlan>> standard_backend_plans(
    const core::ScenarioConfig& base, const BackendSweepOptions& options) {
    std::vector<std::pair<std::string, fault::FaultPlan>> plans;
    const double at_s = base.duration.to_seconds() * options.fault_at_frac;

    plans.emplace_back("baseline", fault::FaultPlan{});

    for (const double p : options.loss_probs) {
        std::ostringstream spec;
        spec << "loss@" << at_s << "+" << options.loss_duration_s << ":p=" << p;
        fault::FaultPlan plan = fault::FaultPlan::parse(spec.str());
        plan.avail_threshold_m = options.avail_threshold_m;
        plans.emplace_back("loss-p" + fmt_prob(p), std::move(plan));
    }

    const sim::TimePoint strike =
        sim::TimePoint::origin() + sim::Duration::seconds(at_s);
    for (const int k : options.crashed_anchors) {
        if (k > base.num_anchors) {
            throw std::invalid_argument(
                "backend sweep: cannot crash more anchors than the scenario has");
        }
        fault::FaultPlan plan = fault::anchor_crash_plan(base.num_anchors, k, strike);
        plan.avail_threshold_m = options.avail_threshold_m;
        plans.emplace_back("crash-" + std::to_string(k), std::move(plan));
    }
    return plans;
}

double measure_fix_cpu_ns(est::Backend backend, const core::ScenarioConfig& base,
                          int windows) {
    if (windows < 1) throw std::invalid_argument("measure_fix_cpu_ns: windows >= 1");

    // Standalone estimator, wired exactly like the agent wires it.
    phy::Channel channel(base.channel);
    auto table = std::make_shared<const phy::PdfTable>(phy::PdfTable::calibrate(
        channel, base.calibration, sim::RandomStream(base.seed)));
    est::Config ec;
    ec.backend = backend;
    ec.grid.area = geom::Rect::square(base.area_side_m);
    ec.grid.cell_m = base.cell_m;
    ec.grid.floor_fraction = base.floor_fraction;
    ec.technique = base.technique;
    ec.min_beacons_for_fix = base.min_beacons_for_fix;
    mobility::OdometryEstimator odometry(base.odometry, sim::RandomStream(base.seed));
    odometry.reset(ec.grid.area.center(), 0.0);
    const std::unique_ptr<est::Estimator> estimator =
        est::make_estimator(ec, table, &odometry);
    estimator->reset(ec.grid.area.center(), false);

    // Synthetic windows: anchors on a deterministic ring around the centre,
    // RSSIs cycling through the usable middle of the calibrated table.
    const geom::Vec2 center = ec.grid.area.center();
    const double ring = 0.25 * base.area_side_m;
    const int lo = table->min_rssi_dbm();
    const int hi = table->max_rssi_dbm();
    const int span = hi - lo + 1;
    const int k = std::max(3, base.beacons_per_window);
    std::vector<core::BeaconObservation> window(static_cast<std::size_t>(k));

    const auto t0 = std::chrono::steady_clock::now();
    for (int w = 0; w < windows; ++w) {
        for (int i = 0; i < k; ++i) {
            const double angle = 2.0 * 3.14159265358979323846 *
                                 static_cast<double>(w * k + i) / 17.0;
            const geom::Vec2 anchor =
                center + geom::Vec2{ring * std::cos(angle), ring * std::sin(angle)};
            const double rssi =
                static_cast<double>(lo + (span / 4) + (w * k + i) % (span / 2));
            window[static_cast<std::size_t>(i)] = {anchor, rssi};
        }
        estimator->predict({0.1, -0.05}, 1.0);
        if (estimator->collects_window_beacons()) {
            const std::optional<core::Fix> fix = estimator->compute_fix(window);
            estimator->apply_fix(fix, 0.0);
        } else {
            for (const core::BeaconObservation& obs : window) {
                estimator->observe_beacon(obs);
            }
            estimator->end_window();
        }
    }
    const double total_ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                 t0)
            .count();
    return total_ns / static_cast<double>(windows);
}

std::vector<BackendCell> run_backend_sweep(const core::ScenarioConfig& base,
                                           const BackendSweepOptions& options) {
    if (base.mode != core::LocalizationMode::Combined) {
        throw std::invalid_argument("backend sweep: base.mode must be Combined");
    }
    if (options.backends.empty()) {
        throw std::invalid_argument("backend sweep: need at least one backend");
    }
    const auto named_plans = standard_backend_plans(base, options);

    // One shared fan-out over every (backend, plan) cell: the replication
    // engine interleaves all cells' replications over one thread pool.
    std::vector<core::ScenarioConfig> configs;
    std::vector<fault::FaultPlan> plans;
    for (const est::Backend backend : options.backends) {
        for (const auto& [name, plan] : named_plans) {
            core::ScenarioConfig config = base;
            config.estimator = backend;
            config.validate();
            configs.push_back(std::move(config));
            plans.push_back(plan);
        }
    }
    ReplicationOptions ropt;
    ropt.n_reps = options.n_reps;
    ropt.n_threads = options.n_threads;
    ropt.fork = options.fork;
    const std::vector<ReplicationSet> sets = run_sweep(configs, plans, ropt);

    std::vector<BackendCell> cells;
    cells.reserve(sets.size());
    std::size_t index = 0;
    for (const est::Backend backend : options.backends) {
        // Per-fix CPU is a per-backend property; measure it once per backend
        // and stamp it on that backend's cells.
        const double cpu_ns =
            options.measure_cpu ? measure_fix_cpu_ns(backend, base) : 0.0;
        for (const auto& [name, plan] : named_plans) {
            const ReplicationSet& set = sets[index++];
            BackendCell cell;
            cell.backend = backend;
            cell.plan = name;
            cell.reps = options.n_reps;
            cell.avg_error_m = set.avg_error.mean();
            cell.steady_error_m = set.steady_error.mean();
            cell.has_resilience = set.has_resilience;
            cell.availability = set.availability.mean();
            cell.avail_during =
                set.avail_during.count() > 0 ? set.avail_during.mean() : 0.0;
            cell.reacquire_s =
                set.reacquire_s.count() > 0 ? set.reacquire_s.mean() : 0.0;
            for (const auto& [counter, value] : obs::aggregate_node_counters(
                     {set.counter_totals.begin(), set.counter_totals.end()})) {
                if (counter == "agent.fixes") cell.fixes = value;
                if (counter == "agent.windows_without_fix") {
                    cell.windows_without_fix = value;
                }
            }
            cell.fix_cpu_ns = cpu_ns;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

}  // namespace cocoa::exp
