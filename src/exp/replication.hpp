#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/scenario.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "metrics/running_stat.hpp"

namespace cocoa::exp {

/// Controls how a batch of independent replications executes.
struct ReplicationOptions {
    int n_reps = 3;    ///< replications per configuration; must be >= 1
    int n_threads = 0; ///< worker threads; <= 0 uses every hardware thread

    /// Steady-state samples start at `config.period + warmup_slack`: the
    /// first beacon round plus settling time. (Previously hardcoded as
    /// "period + 5 s" in every bench call site.)
    sim::Duration warmup_slack = sim::Duration::seconds(5.0);

    /// Keep every replication's full ScenarioResult in `ReplicationSet::
    /// results`. Off by default — full results hold per-node time series,
    /// so a wide sweep would hoard memory; the last replication's result is
    /// always retained for series printing.
    bool keep_results = false;

    /// Fork sweep cells from shared warm prefixes: replications with the
    /// same (config, replication index) — e.g. one backend under several
    /// fault plans — run their shared pre-fault prefix once, checkpoint it
    /// in memory, and restore each divergent future from the warm state
    /// (FaultInjector::arm_forked). Byte-identical outputs to the unforked
    /// sweep; `--no-fork` turns it off for timing comparisons.
    bool fork = true;
};

/// Scalar outcome of one replication, extracted while the full result is in
/// scope. Every field except `wall_seconds` is a deterministic function of
/// (config, master seed, replication index) — independent of thread count,
/// scheduling order, and which other replications ran.
struct ReplicationRecord {
    int index = 0;               ///< replication number within the set
    std::uint64_t seed = 0;      ///< derived master seed this run used
    double avg_error_m = 0.0;    ///< whole-run mean localization error
    double steady_error_m = 0.0; ///< mean error after the warmup window
    double total_energy_kj = 0.0;
    std::uint64_t executed_events = 0;
    double wall_seconds = 0.0;   ///< measured — NOT part of the determinism contract
    /// Counter-registry snapshot of this replication (sorted by name).
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    /// Filled only when the replication ran under a non-empty FaultPlan.
    std::optional<fault::ResilienceReport> resilience;
};

/// Results of n_reps independent replications of one configuration:
/// per-replication records plus aggregates folded in replication order
/// (so aggregate bits never depend on completion order).
struct ReplicationSet {
    core::ScenarioConfig config;            ///< as supplied, master seed intact
    std::vector<ReplicationRecord> records; ///< sorted by replication index

    metrics::RunningStat avg_error;       ///< over records[i].avg_error_m
    metrics::RunningStat steady_error;    ///< over records[i].steady_error_m
    metrics::RunningStat total_energy_kj; ///< over records[i].total_energy_kj

    /// Full result of the highest-index replication (for series printing).
    core::ScenarioResult last;
    /// All full results, index-aligned; filled only with keep_results.
    std::vector<core::ScenarioResult> results;

    double total_wall_seconds = 0.0; ///< sum of per-replication wall times

    /// Kernel events executed, summed over replications in index order —
    /// deterministic, unlike the events/sec rate cocoa_sim derives from it
    /// and total_wall_seconds under --kernel-stats.
    std::uint64_t executed_events_total = 0;

    /// Registry counters summed over replications, folded in index order —
    /// byte-identical for any thread count, like every other aggregate here.
    std::map<std::string, std::uint64_t> counter_totals;

    /// Resilience aggregates, folded in index order like everything else;
    /// populated (has_resilience = true) only when the set ran under a
    /// non-empty FaultPlan. avail_during folds only replications that had
    /// in-fault samples, reacquire_s only those that reacquired.
    bool has_resilience = false;
    metrics::RunningStat availability;
    metrics::RunningStat avail_during;
    metrics::RunningStat reacquire_s;

    /// "mean ± stddev" / "mean ± 95% CI half-width" formatting helpers.
    std::string avg_pm() const;
    std::string steady_pm() const;
    std::string avg_ci() const;
    std::string steady_ci() const;
};

/// Master seed replication `index` of a set runs under: derived from the
/// config's master seed and the index with the RngManager stream hash, so it
/// is stable under thread count and n_reps, and variance-controlled (the
/// same replication index re-uses the same seed across a parameter sweep).
std::uint64_t replication_seed(std::uint64_t master_seed, int index);

/// Runs replication `index` of `config` in the calling thread. When
/// `result_out` is non-null the full ScenarioResult is moved into it. A
/// non-null, non-empty `plan` runs the replication under a FaultInjector and
/// fills the record's resilience report; a null or empty plan takes exactly
/// the pre-fault code path.
ReplicationRecord run_single_replication(
    const core::ScenarioConfig& config, int index,
    sim::Duration warmup_slack = sim::Duration::seconds(5.0),
    core::ScenarioResult* result_out = nullptr,
    const fault::FaultPlan* plan = nullptr);

/// Fans `configs` x n_reps out over a fixed-size thread pool, one
/// shared-nothing Simulator per replication. Results are byte-identical for
/// any thread count; the first replication failure (in index order) is
/// rethrown after the pool drains. Throws std::invalid_argument on
/// n_reps < 1.
std::vector<ReplicationSet> run_sweep(const std::vector<core::ScenarioConfig>& configs,
                                      const ReplicationOptions& options = {});

/// Faulted sweep: `plans[i]` applies to every replication of `configs[i]`
/// (an empty plan means "no faults for this configuration"). Throws
/// std::invalid_argument when the sizes differ. The resilience sweep — error
/// and availability vs crashed anchors or outage duration — is this with
/// plans built by anchor_crash_plan() etc.
std::vector<ReplicationSet> run_sweep(const std::vector<core::ScenarioConfig>& configs,
                                      const std::vector<fault::FaultPlan>& plans,
                                      const ReplicationOptions& options = {});

/// Single-configuration convenience wrapper around run_sweep().
ReplicationSet run_replications(const core::ScenarioConfig& config,
                                const ReplicationOptions& options = {});

/// Single-configuration faulted wrapper.
ReplicationSet run_replications(const core::ScenarioConfig& config,
                                const fault::FaultPlan& plan,
                                const ReplicationOptions& options = {});

}  // namespace cocoa::exp
