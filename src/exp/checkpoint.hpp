#pragma once

#include <memory>
#include <string>

#include "core/scenario.hpp"
#include "core/swarm.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"

namespace cocoa::exp {

/// FaultPlan blob layout, shared by scenario checkpoints (the armed plan is
/// part of the run state) and the CLI's --restore path.
void save_plan(sim::ckpt::Writer& w, const fault::FaultPlan& plan);
fault::FaultPlan load_plan(sim::ckpt::Reader& r);

/// Serializes one scenario run — config, fault plan (when an injector is
/// attached), full simulation state — into a self-contained blob a fresh
/// process can resume byte-identically from. Call between events only
/// (after run_until returns).
std::string save_scenario_checkpoint(const core::Scenario& scenario,
                                     const fault::FaultInjector* injector = nullptr);

/// A scenario rebuilt from a blob, ready for run()/run_until(). The injector
/// is present iff the blob carried one; it is already restored (counters
/// re-registered, realized intervals back) — do NOT arm() it again.
struct RestoredScenario {
    std::unique_ptr<core::Scenario> scenario;
    std::unique_ptr<fault::FaultInjector> injector;
};

/// Restores a scenario checkpoint. `shared_table` skips the PDF-table
/// calibration (fork path: the table is a pure function of (channel,
/// calibration, seed), all inside the blob's config, so sharing it changes
/// nothing); null recalibrates from the restored config.
RestoredScenario restore_scenario_checkpoint(
    const std::string& blob,
    std::shared_ptr<const phy::PdfTable> shared_table = nullptr);

/// Swarm-family checkpoints (cocoa_sim --nodes runs).
std::string save_swarm_checkpoint(const core::Swarm& swarm);
std::unique_ptr<core::Swarm> restore_swarm_checkpoint(const std::string& blob);

}  // namespace cocoa::exp
