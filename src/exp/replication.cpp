#include "exp/replication.hpp"

#include <chrono>
#include <exception>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/checkpoint_io.hpp"
#include "exp/thread_pool.hpp"
#include "metrics/table.hpp"
#include "obs/profile.hpp"
#include "sim/checkpoint.hpp"
#include "sim/random.hpp"

namespace cocoa::exp {

std::string ReplicationSet::avg_pm() const {
    return metrics::fmt(avg_error.mean()) + " ± " + metrics::fmt(avg_error.stddev());
}

std::string ReplicationSet::steady_pm() const {
    return metrics::fmt(steady_error.mean()) + " ± " +
           metrics::fmt(steady_error.stddev());
}

std::string ReplicationSet::avg_ci() const {
    return metrics::fmt(avg_error.mean()) + " ± " +
           metrics::fmt(metrics::ci95_halfwidth(avg_error));
}

std::string ReplicationSet::steady_ci() const {
    return metrics::fmt(steady_error.mean()) + " ± " +
           metrics::fmt(metrics::ci95_halfwidth(steady_error));
}

std::uint64_t replication_seed(std::uint64_t master_seed, int index) {
    return sim::RngManager(master_seed)
        .derive_seed("exp.replication", static_cast<std::uint64_t>(index));
}

namespace {

ReplicationRecord make_record(const core::ScenarioConfig& run_config, int index,
                              sim::Duration warmup_slack, double wall_seconds,
                              const core::ScenarioResult& result,
                              std::optional<fault::ResilienceReport> resilience) {
    ReplicationRecord record;
    record.index = index;
    record.seed = run_config.seed;
    record.avg_error_m = result.avg_error.stats().mean();
    record.steady_error_m = result.avg_error.mean_in(
        sim::TimePoint::origin() + run_config.period + warmup_slack,
        sim::TimePoint::max());
    record.total_energy_kj = result.team_energy.total_mj() / 1e6;
    record.executed_events = result.executed_events;
    record.wall_seconds = wall_seconds;
    record.counters = result.counters;
    record.resilience = std::move(resilience);
    return record;
}

}  // namespace

ReplicationRecord run_single_replication(const core::ScenarioConfig& config,
                                         int index, sim::Duration warmup_slack,
                                         core::ScenarioResult* result_out,
                                         const fault::FaultPlan* plan) {
    core::ScenarioConfig run_config = config;
    run_config.seed = replication_seed(config.seed, index);

    obs::ProfileScope profile("exp.replication");
    const auto t0 = std::chrono::steady_clock::now();
    core::ScenarioResult result;
    std::optional<fault::ResilienceReport> resilience;
    if (plan != nullptr && !plan->empty()) {
        core::Scenario scenario(run_config);
        fault::FaultInjector injector(scenario, *plan);
        injector.arm();
        scenario.run();
        result = scenario.result();
        resilience = injector.report(result);
    } else {
        // No plan: the exact pre-fault code path, bit for bit.
        result = core::run_scenario(run_config);
    }
    const auto t1 = std::chrono::steady_clock::now();

    ReplicationRecord record = make_record(
        run_config, index, warmup_slack,
        std::chrono::duration<double>(t1 - t0).count(), result,
        std::move(resilience));
    if (result_out != nullptr) *result_out = std::move(result);
    return record;
}

namespace {

/// One set of sweep cells sharing a warm prefix: identical (config,
/// replication index), differing only in fault plan. The prefix runs once to
/// t_fork (just before the group's earliest fault), is checkpointed in
/// memory, and each member restores from the blob instead of re-simulating
/// the shared span.
struct ForkGroup {
    std::vector<std::size_t> tasks;  ///< task indices sharing the prefix
    sim::TimePoint t_fork;
    std::string blob;
    std::shared_ptr<const phy::PdfTable> table;
    std::exception_ptr error;
};

/// Runs one member of a fork group: restore the shared prefix, late-arm the
/// member's plan with reserved sequence numbers (arm_forked), run the
/// divergent future. Byte-identical to run_single_replication — the restore
/// identity is CI-gated. Falls back to a full straight run when the prefix
/// left no seq room to arm under (arm_forked() == false).
ReplicationRecord run_forked_member(const core::ScenarioConfig& config, int index,
                                    sim::Duration warmup_slack,
                                    core::ScenarioResult* result_out,
                                    const fault::FaultPlan& plan,
                                    const ForkGroup& group) {
    core::ScenarioConfig run_config = config;
    run_config.seed = replication_seed(config.seed, index);

    obs::ProfileScope profile("exp.replication");
    const auto t0 = std::chrono::steady_clock::now();
    core::Scenario scenario(run_config, group.table);
    {
        sim::ckpt::Reader r(group.blob);
        scenario.load_state(r);
        r.expect_end();
    }
    core::ScenarioResult result;
    std::optional<fault::ResilienceReport> resilience;
    if (!plan.empty()) {
        fault::FaultInjector injector(scenario, plan);
        if (!injector.arm_forked()) {
            return run_single_replication(config, index, warmup_slack, result_out,
                                          &plan);
        }
        scenario.run();
        result = scenario.result();
        resilience = injector.report(result);
    } else {
        scenario.run();
        result = scenario.result();
    }
    const auto t1 = std::chrono::steady_clock::now();

    ReplicationRecord record = make_record(
        run_config, index, warmup_slack,
        std::chrono::duration<double>(t1 - t0).count(), result,
        std::move(resilience));
    if (result_out != nullptr) *result_out = std::move(result);
    return record;
}

}  // namespace

std::vector<ReplicationSet> run_sweep(const std::vector<core::ScenarioConfig>& configs,
                                      const ReplicationOptions& options) {
    return run_sweep(configs, std::vector<fault::FaultPlan>(configs.size()), options);
}

std::vector<ReplicationSet> run_sweep(const std::vector<core::ScenarioConfig>& configs,
                                      const std::vector<fault::FaultPlan>& plans,
                                      const ReplicationOptions& options) {
    if (options.n_reps < 1) {
        throw std::invalid_argument("run_sweep: n_reps must be >= 1");
    }
    if (plans.size() != configs.size()) {
        throw std::invalid_argument("run_sweep: plans.size() != configs.size()");
    }
    if (configs.empty()) return {};
    obs::ProfileScope profile("exp.sweep");

    const std::size_t n_configs = configs.size();
    const std::size_t n_reps = static_cast<std::size_t>(options.n_reps);
    const std::size_t n_tasks = n_configs * n_reps;

    // Per-task slots, written by exactly one worker each; aggregation reads
    // them only after the pool drains, so no locking is needed beyond the
    // pool's own queue.
    std::vector<ReplicationRecord> records(n_tasks);
    std::vector<core::ScenarioResult> results(n_tasks);
    std::vector<std::exception_ptr> errors(n_tasks);

    // Fork-group discovery: tasks whose fully-resolved run config (seed
    // included) serializes to the same bytes share their entire trajectory
    // until a fault plan diverges them — run that shared prefix once,
    // checkpoint it, and fork the futures. Groups where every plan is empty
    // (nothing ever diverges — duplicate cells) or whose earliest fault
    // strikes at/before the origin or past the run's end stay unforked.
    std::vector<ForkGroup> groups;
    std::vector<long> task_group(n_tasks, -1);
    if (options.fork) {
        std::unordered_map<std::string, std::size_t> by_key;
        std::vector<std::vector<std::size_t>> candidates;
        for (std::size_t task = 0; task < n_tasks; ++task) {
            const std::size_t ci = task / n_reps;
            core::ScenarioConfig run_config = configs[ci];
            run_config.seed = replication_seed(configs[ci].seed,
                                               static_cast<int>(task % n_reps));
            sim::ckpt::Writer w;
            core::save_config(w, run_config);
            const auto [it, fresh] = by_key.try_emplace(w.take(), candidates.size());
            if (fresh) candidates.emplace_back();
            candidates[it->second].push_back(task);
        }
        for (std::vector<std::size_t>& tasks : candidates) {
            if (tasks.size() < 2) continue;
            sim::TimePoint first = sim::TimePoint::max();
            for (const std::size_t task : tasks) {
                for (const fault::FaultEvent& e : plans[task / n_reps].events) {
                    first = std::min(first, e.at);
                }
            }
            if (first == sim::TimePoint::max()) continue;
            const sim::TimePoint t_fork = first - sim::Duration::nanos(1);
            const sim::TimePoint end = sim::TimePoint::origin() +
                                       configs[tasks.front() / n_reps].duration;
            if (t_fork <= sim::TimePoint::origin() || t_fork >= end) continue;
            for (const std::size_t task : tasks) {
                task_group[task] = static_cast<long>(groups.size());
            }
            ForkGroup group;
            group.tasks = std::move(tasks);
            group.t_fork = t_fork;
            groups.push_back(std::move(group));
        }
    }

    const auto run_prefix = [&](std::size_t gi) {
        ForkGroup& group = groups[gi];
        try {
            obs::ProfileScope prefix_profile("exp.fork_prefix");
            const std::size_t task0 = group.tasks.front();
            core::ScenarioConfig run_config = configs[task0 / n_reps];
            run_config.seed = replication_seed(
                run_config.seed, static_cast<int>(task0 % n_reps));
            core::Scenario prefix(run_config);
            prefix.run_until(group.t_fork);
            sim::ckpt::Writer w;
            prefix.save_state(w);
            group.blob = w.take();
            group.table = prefix.pdf_table_ptr();
        } catch (...) {
            group.error = std::current_exception();
        }
    };

    const bool keep_result_for = options.keep_results;
    const auto run_task = [&](std::size_t task) {
        const std::size_t ci = task / n_reps;
        const int ri = static_cast<int>(task % n_reps);
        try {
            // The last replication's full result is always kept for series
            // printing; the rest only when the caller asked for them.
            const bool want_result = keep_result_for || ri + 1 == options.n_reps;
            const long gi = task_group[task];
            if (gi >= 0) {
                const ForkGroup& group = groups[static_cast<std::size_t>(gi)];
                if (group.error) {
                    errors[task] = group.error;
                    return;
                }
                records[task] = run_forked_member(
                    configs[ci], ri, options.warmup_slack,
                    want_result ? &results[task] : nullptr, plans[ci], group);
            } else {
                records[task] = run_single_replication(
                    configs[ci], ri, options.warmup_slack,
                    want_result ? &results[task] : nullptr, &plans[ci]);
            }
        } catch (...) {
            errors[task] = std::current_exception();
        }
    };

    const int n_threads =
        std::min<int>(ThreadPool::resolve_threads(options.n_threads),
                      static_cast<int>(n_tasks));
    if (n_threads <= 1) {
        for (std::size_t gi = 0; gi < groups.size(); ++gi) run_prefix(gi);
        for (std::size_t task = 0; task < n_tasks; ++task) run_task(task);
    } else {
        ThreadPool pool(n_threads);
        // Prefixes first (a barrier, not a pipeline: every member of a group
        // needs its blob), then all members and unforked tasks together.
        for (std::size_t gi = 0; gi < groups.size(); ++gi) {
            pool.submit([&run_prefix, gi] { run_prefix(gi); });
        }
        if (!groups.empty()) pool.wait_idle();
        for (std::size_t task = 0; task < n_tasks; ++task) {
            pool.submit([&run_task, task] { run_task(task); });
        }
        pool.wait_idle();
    }

    // Fail on the first error in (config, replication) order — deterministic
    // regardless of which worker hit it first.
    for (std::size_t task = 0; task < n_tasks; ++task) {
        if (errors[task]) std::rethrow_exception(errors[task]);
    }

    // Fold aggregates in replication order so the output bits never depend
    // on completion order or thread count.
    std::vector<ReplicationSet> sets(n_configs);
    for (std::size_t ci = 0; ci < n_configs; ++ci) {
        ReplicationSet& set = sets[ci];
        set.config = configs[ci];
        set.records.reserve(n_reps);
        for (std::size_t ri = 0; ri < n_reps; ++ri) {
            const std::size_t task = ci * n_reps + ri;
            const ReplicationRecord& r = records[task];
            set.records.push_back(r);
            set.avg_error.add(r.avg_error_m);
            set.steady_error.add(r.steady_error_m);
            set.total_energy_kj.add(r.total_energy_kj);
            set.total_wall_seconds += r.wall_seconds;
            set.executed_events_total += r.executed_events;
            for (const auto& [name, value] : r.counters) {
                set.counter_totals[name] += value;
            }
            if (r.resilience) {
                set.has_resilience = true;
                set.availability.add(r.resilience->availability);
                if (r.resilience->samples_during > 0) {
                    set.avail_during.add(r.resilience->avail_during);
                }
                if (r.resilience->reacquired > 0) {
                    set.reacquire_s.add(r.resilience->mean_reacquire_s);
                }
            }
        }
        if (options.keep_results) {
            set.results.assign(std::make_move_iterator(results.begin() +
                                                       static_cast<long>(ci * n_reps)),
                               std::make_move_iterator(results.begin() +
                                                       static_cast<long>((ci + 1) * n_reps)));
            set.last = set.results.back();
        } else {
            set.last = std::move(results[ci * n_reps + n_reps - 1]);
        }
    }
    return sets;
}

ReplicationSet run_replications(const core::ScenarioConfig& config,
                                const ReplicationOptions& options) {
    return std::move(run_sweep({config}, options).front());
}

ReplicationSet run_replications(const core::ScenarioConfig& config,
                                const fault::FaultPlan& plan,
                                const ReplicationOptions& options) {
    return std::move(run_sweep({config}, {plan}, options).front());
}

}  // namespace cocoa::exp
