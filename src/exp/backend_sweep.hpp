#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/scenario.hpp"
#include "est/estimator.hpp"
#include "fault/fault_plan.hpp"

namespace cocoa::exp {

/// One (backend, fault-plan) cell of the comparative sweep: how an estimator
/// backend trades accuracy, availability and per-fix CPU under a given fault
/// regime. Everything except fix_cpu_ns is a deterministic fold over the
/// cell's replications.
struct BackendCell {
    est::Backend backend = est::Backend::Grid;
    std::string plan;  ///< "baseline", "loss-p0.5", "crash-5", ...
    int reps = 0;

    double avg_error_m = 0.0;     ///< mean over replications
    double steady_error_m = 0.0;  ///< mean over replications, post-warmup
    bool has_resilience = false;  ///< the plan injected faults
    double availability = 0.0;    ///< mean; only meaningful with resilience
    double avail_during = 0.0;    ///< mean over reps with in-fault samples
    double reacquire_s = 0.0;     ///< mean over reps that reacquired
    std::uint64_t fixes = 0;               ///< summed over reps + robots
    std::uint64_t windows_without_fix = 0; ///< summed over reps + robots
    /// Mean CPU cost of one window-end fix for this backend, measured on a
    /// standalone estimator against synthetic windows (measure_fix_cpu_ns).
    /// NOT deterministic — wall-clock, like the "simulation work" line.
    double fix_cpu_ns = 0.0;

    /// One-line machine-readable record, stable keys ("backend-json:" rows).
    std::string json() const;
};

/// Sweep shape: which backends, which fault plans, how many replications.
struct BackendSweepOptions {
    std::vector<est::Backend> backends = {est::Backend::Grid, est::Backend::Ekf,
                                          est::Backend::LinCvx};
    int n_reps = 3;
    int n_threads = 0;
    double avail_threshold_m = 10.0;

    /// Fault axes: anchor-crash counts and beacon-loss probabilities. Each
    /// value becomes one plan (plus the fault-free "baseline" plan).
    std::vector<int> crashed_anchors = {5, 10};
    std::vector<double> loss_probs = {0.25, 0.5, 0.9};
    /// Faults strike at this fraction of the run.
    double fault_at_frac = 0.25;
    /// Loss bursts last this long.
    double loss_duration_s = 90.0;

    /// Also time per-fix CPU per backend (adds a small non-simulated
    /// measurement pass; wall-clock, excluded from determinism contracts).
    bool measure_cpu = true;

    /// Forwarded to ReplicationOptions::fork: each backend's plan cells
    /// share one warm pre-fault prefix per replication instead of
    /// re-simulating it per plan. Outputs are byte-identical either way.
    bool fork = true;
};

/// The sweep's fault plans: ("baseline", empty) + one loss plan per
/// loss_probs entry + one anchor-crash plan per crashed_anchors entry,
/// derived from `base` (duration, anchor count) and `options`.
std::vector<std::pair<std::string, fault::FaultPlan>> standard_backend_plans(
    const core::ScenarioConfig& base, const BackendSweepOptions& options);

/// Measures the mean CPU cost (ns) of one window-end fix for `backend`:
/// a standalone estimator fed `windows` synthetic deterministic beacon
/// windows (PDF table calibrated from base's channel config). Collecting
/// backends are timed through compute_fix + apply_fix, continuous ones
/// through observe_beacon x k + end_window — the same work a window costs
/// inside the agent.
double measure_fix_cpu_ns(est::Backend backend, const core::ScenarioConfig& base,
                          int windows = 200);

/// Runs backends x standard_backend_plans(base) on the replication engine
/// (one shared run_sweep fan-out) and folds each cell. `base.estimator` is
/// overridden per cell; base.mode must be Combined. Cells are ordered
/// backend-major, plan-minor.
std::vector<BackendCell> run_backend_sweep(const core::ScenarioConfig& base,
                                           const BackendSweepOptions& options = {});

}  // namespace cocoa::exp
