#include "exp/checkpoint.hpp"

#include <stdexcept>
#include <utility>

#include "core/checkpoint_io.hpp"
#include "sim/checkpoint.hpp"

namespace cocoa::exp {

namespace {
constexpr std::uint32_t kMarkPlan = 0x504c414eu;  // "PLAN"
}  // namespace

void save_plan(sim::ckpt::Writer& w, const fault::FaultPlan& plan) {
    w.mark(kMarkPlan);
    w.u64(plan.events.size());
    for (const fault::FaultEvent& e : plan.events) {
        w.u32(static_cast<std::uint32_t>(e.kind));
        w.time(e.at);
        w.dur(e.duration);
        w.i32(e.node);
        w.i32(e.node_end);
        w.f64(e.drop_prob);
        w.f64(e.attenuation_db);
        w.f64(e.offset_s);
        w.f64(e.scale);
        w.f64(e.budget_mj);
    }
    w.f64(plan.avail_threshold_m);
    w.dur(plan.battery_check);
}

fault::FaultPlan load_plan(sim::ckpt::Reader& r) {
    r.expect(kMarkPlan);
    fault::FaultPlan plan;
    const std::uint64_t n = r.u64();
    plan.events.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        fault::FaultEvent e;
        e.kind = static_cast<fault::FaultKind>(r.u32());
        e.at = r.time();
        e.duration = r.dur();
        e.node = r.i32();
        e.node_end = r.i32();
        e.drop_prob = r.f64();
        e.attenuation_db = r.f64();
        e.offset_s = r.f64();
        e.scale = r.f64();
        e.budget_mj = r.f64();
        plan.events.push_back(e);
    }
    plan.avail_threshold_m = r.f64();
    plan.battery_check = r.dur();
    return plan;
}

std::string save_scenario_checkpoint(const core::Scenario& scenario,
                                     const fault::FaultInjector* injector) {
    sim::ckpt::Writer w;
    sim::ckpt::write_header(w, sim::ckpt::Flavor::kScenario);
    core::save_config(w, scenario.config());
    w.b(injector != nullptr);
    if (injector != nullptr) save_plan(w, injector->plan());
    scenario.save_state(w);
    if (injector != nullptr) injector->save_state(w);
    return w.take();
}

RestoredScenario restore_scenario_checkpoint(
    const std::string& blob, std::shared_ptr<const phy::PdfTable> shared_table) {
    sim::ckpt::Reader r(blob);
    if (sim::ckpt::read_header(r) != sim::ckpt::Flavor::kScenario) {
        throw std::runtime_error(
            "restore_scenario_checkpoint: blob is not a scenario checkpoint");
    }
    const core::ScenarioConfig config = core::load_scenario_config(r);
    const bool has_injector = r.b();
    fault::FaultPlan plan;
    if (has_injector) plan = load_plan(r);

    RestoredScenario out;
    out.scenario = std::make_unique<core::Scenario>(config, std::move(shared_table));
    if (has_injector) {
        out.injector =
            std::make_unique<fault::FaultInjector>(*out.scenario, std::move(plan));
        // The blob's kernel may hold pending fault events; the injector's
        // rebuilders join the scenario's own registry for load_kernel.
        out.scenario->load_state(r, [&](sim::ckpt::CallbackRegistry& reg) {
            out.injector->register_rebuilders(reg);
        });
        out.injector->load_state(r);
    } else {
        out.scenario->load_state(r);
    }
    r.expect_end();
    return out;
}

std::string save_swarm_checkpoint(const core::Swarm& swarm) {
    sim::ckpt::Writer w;
    sim::ckpt::write_header(w, sim::ckpt::Flavor::kSwarm);
    core::save_config(w, swarm.config());
    swarm.save_state(w);
    return w.take();
}

std::unique_ptr<core::Swarm> restore_swarm_checkpoint(const std::string& blob) {
    sim::ckpt::Reader r(blob);
    if (sim::ckpt::read_header(r) != sim::ckpt::Flavor::kSwarm) {
        throw std::runtime_error(
            "restore_swarm_checkpoint: blob is not a swarm checkpoint");
    }
    const core::SwarmConfig config = core::load_swarm_config(r);
    auto swarm = std::make_unique<core::Swarm>(config);
    swarm->load_state(r);
    r.expect_end();
    return swarm;
}

}  // namespace cocoa::exp
