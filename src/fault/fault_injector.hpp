#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/scenario.hpp"
#include "fault/fault_plan.hpp"

namespace cocoa::sim::ckpt {
class Writer;
class Reader;
class CallbackRegistry;
}  // namespace cocoa::sim::ckpt

namespace cocoa::fault {

/// Resilience metrics of one faulted run, computed from the scenario's
/// per-robot error series against the plan's fault intervals. Every field is
/// a deterministic function of (config, seed, plan) — folded in node/sample
/// order, so replication aggregates are byte-identical at any thread count.
struct ResilienceReport {
    double avail_threshold_m = 10.0;

    /// Fraction of blind-robot samples with error <= threshold, overall and
    /// split by phase: before the first fault strikes, while any fault
    /// interval is in effect, and after (between/past the intervals).
    double availability = 0.0;
    double avail_before = 0.0;
    double avail_during = 0.0;
    double avail_after = 0.0;
    std::uint64_t samples_total = 0;
    std::uint64_t samples_before = 0;
    std::uint64_t samples_during = 0;
    std::uint64_t samples_after = 0;

    /// Error quantiles during vs after the fault intervals (nullopt when the
    /// phase holds no samples).
    std::optional<double> p50_during_m;
    std::optional<double> p90_during_m;
    std::optional<double> p50_after_m;
    std::optional<double> p90_after_m;

    /// Time-to-reacquire a fix after a reboot/outage ends, averaged over the
    /// recoveries that did reacquire before the run ended (sample-interval
    /// granularity; fix-counting modes only, i.e. RfOnly/Combined).
    double mean_reacquire_s = 0.0;
    std::uint64_t reacquired = 0;
    std::uint64_t never_reacquired = 0;
};

/// Realizes a FaultPlan against one Scenario as sim-kernel events: call
/// arm() once before running. With an empty plan, arm() does nothing at all
/// — no events, no counters, no registry entries — so a plan-less run is
/// byte-identical to one without the injector (the zero-overhead contract).
///
/// The injector must outlive the scenario run (its scheduled callbacks point
/// back into it); construct both on the same scope.
class FaultInjector {
  public:
    struct Stats {
        std::uint64_t crashes = 0;            ///< permanent power-offs
        std::uint64_t reboots = 0;            ///< revivals after downtime
        std::uint64_t outages = 0;            ///< transient outages begun
        std::uint64_t loss_bursts = 0;        ///< medium bursts activated
        std::uint64_t clock_drifts = 0;
        std::uint64_t odometry_degrades = 0;
        std::uint64_t battery_deaths = 0;
        std::uint64_t reacquired = 0;         ///< post-recovery fixes observed
    };

    /// Validates the plan against the scenario (node ids in range); throws
    /// std::invalid_argument on a bad plan.
    FaultInjector(core::Scenario& scenario, FaultPlan plan);

    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    /// Schedules every fault of the plan and registers the fault.* counters.
    /// Call exactly once, before running the scenario past the first fault
    /// time. No-op for an empty plan. Throws std::logic_error on re-arm.
    void arm();

    /// Arms against a scenario restored from a shared warm prefix: identical
    /// to arm() except the plan's kernel events take sequence numbers
    /// reserved *below* every pending event's, reproducing the straight
    /// run's arm-before-run FIFO order, and peak_pending is bumped by the
    /// armed count (a straight run carries those events as pending from
    /// t=0). Returns false — caller must fall back to an unforked run —
    /// when the prefix left too few seqs below its pending window.
    bool arm_forked();

    /// Number of kernel events arm() realizes this plan as (the seq span
    /// arm_forked() must reserve).
    std::uint64_t kernel_event_count() const;

    const FaultPlan& plan() const { return plan_; }
    const Stats& stats() const { return stats_; }

    /// Fault intervals as realized: static ones (crash/reboot/outage/loss)
    /// recorded at arm() time, battery deaths when they happen. Pairs of
    /// [strike, recovery]; permanent faults end at TimePoint::max().
    const std::vector<std::pair<sim::TimePoint, sim::TimePoint>>& realized_intervals()
        const {
        return intervals_;
    }

    /// Computes the resilience metrics from a finished run's result.
    ResilienceReport report(const core::ScenarioResult& result) const;

    /// Checkpoint hooks. save_state captures the armed flag, realized
    /// intervals and counters; load_state restores them and re-registers the
    /// fault.* counters (when armed on a non-empty plan) without scheduling
    /// anything — pending fault events come back through the kernel blob via
    /// register_rebuilders, and loss bursts through the medium's own state.
    void save_state(sim::ckpt::Writer& w) const;
    void load_state(sim::ckpt::Reader& r);
    void register_rebuilders(sim::ckpt::CallbackRegistry& reg);

  private:
    void register_counters();
    void schedule_event(std::size_t idx);
    /// Routes one plan-event callback to the kernel: schedule_at normally,
    /// schedule_with_seq from the reserved window during arm_forked().
    void schedule_fault(sim::TimePoint t, sim::InplaceCallback cb,
                        const sim::EventTag& tag);
    void strike(std::size_t idx, int id);
    void recover(std::size_t idx, int id);
    void battery_watch(std::size_t idx, int id);
    void schedule_battery_watch(std::size_t idx, int id, sim::TimePoint from);
    void start_reacquire_watch(int node);
    void schedule_reacquire_poll(net::NodeId nid, sim::TimePoint recovered_at,
                                 std::uint64_t fixes_before);
    void poll_reacquire(net::NodeId nid, sim::TimePoint recovered_at,
                        std::uint64_t fixes_before);

    core::Scenario& scenario_;
    FaultPlan plan_;
    bool armed_ = false;
    std::optional<std::uint64_t> forked_seq_;
    Stats stats_;
    std::vector<std::pair<sim::TimePoint, sim::TimePoint>> intervals_;
    std::uint64_t watches_started_ = 0;
    double reacquire_s_sum_ = 0.0;
};

}  // namespace cocoa::fault
