#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace cocoa::fault {

/// The failure modes a plan can schedule. Each maps to one injection point:
/// Crash/Reboot/Outage act on a node's radio (core/mac), Loss on the shared
/// medium (phy burst), ClockDrift/OdometryDegrade on the agent's coordination
/// and dead-reckoning state (core/mobility), Battery on the energy model.
enum class FaultKind {
    Crash,            ///< permanent radio power-off at `at`
    Reboot,           ///< power-off at `at`, agent cold-restart after `duration`
    Outage,           ///< radio deaf/mute for `duration`, then recovers in place
    Loss,             ///< medium-level packet-loss / jamming burst
    ClockDrift,       ///< one-shot clock offset injected into a robot
    OdometryDegrade,  ///< odometry noise sigmas scaled by `scale`
    Battery,          ///< radio dies when its meter passes an energy budget
};

const char* to_string(FaultKind kind);

/// One timed fault. Which fields are meaningful depends on `kind`; validate()
/// enforces the combinations. Node-targeted faults may cover an inclusive id
/// range [node, node_end] (node_end < 0 means just `node`).
struct FaultEvent {
    FaultKind kind = FaultKind::Crash;
    sim::TimePoint at;                       ///< when the fault strikes
    sim::Duration duration = sim::Duration::zero();  ///< downtime / burst length
    int node = -1;
    int node_end = -1;
    double drop_prob = 0.0;       ///< Loss: extra per-receiver drop probability
    double attenuation_db = 0.0;  ///< Loss: RSSI penalty while the burst lasts
    double offset_s = 0.0;        ///< ClockDrift: seconds added to the clock error
    double scale = 1.0;           ///< OdometryDegrade: noise-sigma multiplier
    double budget_mj = 0.0;       ///< Battery: total energy before depletion

    int first_node() const { return node; }
    int last_node() const { return node_end < 0 ? node : node_end; }
};

/// A deterministic failure schedule: the full description of every fault a
/// run will experience, fixed before the simulation starts. Plans are built
/// programmatically, from `--fault` CLI specs, or from a small plan file; the
/// FaultInjector realizes them as sim-kernel events.
///
/// Spec grammar (one fault):   kind@T[+D][:key=value[,key=value...]]
///   kind   crash | reboot | outage | loss | jam | drift | odo | battery
///   T      strike time in simulated seconds; +D an optional duration
///   keys   node=<id>  nodes=<a>-<b>  p=<drop prob>  db=<attenuation>
///          s=<clock offset s>  scale=<sigma multiplier>
///          budget_mj=<mJ> | budget_kj=<kJ>
/// Several faults separated by ';' form a plan; a plan file holds one spec
/// per line ('#' starts a comment). `jam` is `loss` with a mandatory db and
/// p defaulting to 0.
struct FaultPlan {
    std::vector<FaultEvent> events;
    /// A blind robot counts as "localized" while its error is below this;
    /// the availability metrics in ResilienceReport are fractions of samples
    /// under the threshold.
    double avail_threshold_m = 10.0;
    /// Polling interval of the battery-budget watchdog.
    sim::Duration battery_check = sim::Duration::seconds(1.0);

    bool empty() const { return events.empty(); }

    /// Throws std::invalid_argument on any ill-formed event (bad field
    /// combination for its kind, non-positive duration where one is
    /// required, probabilities outside [0, 1], inverted node ranges).
    void validate() const;

    /// Parses one `kind@T[+D][:k=v,...]` spec. Throws std::invalid_argument
    /// with the offending spec quoted.
    static FaultEvent parse_spec(const std::string& spec);
    /// Parses a ';'-separated spec list into a validated plan.
    static FaultPlan parse(const std::string& specs);
    /// Parses a plan file (one spec per line, '#' comments, blank lines ok).
    /// Throws std::runtime_error if the file cannot be read.
    static FaultPlan parse_file(const std::string& path);

    /// One line per event, for logs and --fault echo.
    std::string summary() const;
};

/// Convenience plan: permanently crash `crashed` of `num_anchors` anchors at
/// `at`, highest ids first — so the sync robot (node 0) dies last and the
/// sweep isolates anchor-count degradation from sync failover. Used by the
/// resilience sweep.
FaultPlan anchor_crash_plan(int num_anchors, int crashed, sim::TimePoint at);

}  // namespace cocoa::fault
