#include "fault/fault_plan.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cocoa::fault {

namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
    throw std::invalid_argument("FaultPlan: bad spec '" + spec + "': " + why);
}

double parse_number(const std::string& spec, const std::string& text) {
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception&) {
        bad_spec(spec, "not a number: '" + text + "'");
    }
    if (pos != text.size()) bad_spec(spec, "trailing junk in number: '" + text + "'");
    return value;
}

FaultKind parse_kind(const std::string& spec, const std::string& name, bool& is_jam) {
    is_jam = false;
    if (name == "crash") return FaultKind::Crash;
    if (name == "reboot") return FaultKind::Reboot;
    if (name == "outage") return FaultKind::Outage;
    if (name == "loss") return FaultKind::Loss;
    if (name == "jam") {
        is_jam = true;
        return FaultKind::Loss;
    }
    if (name == "drift") return FaultKind::ClockDrift;
    if (name == "odo") return FaultKind::OdometryDegrade;
    if (name == "battery") return FaultKind::Battery;
    bad_spec(spec, "unknown fault kind '" + name + "'");
}

void validate_event(const FaultEvent& e) {
    const std::string what = to_string(e.kind);
    const auto fail = [&what](const std::string& why) {
        throw std::invalid_argument("FaultPlan: " + what + " event: " + why);
    };
    const bool needs_node = e.kind != FaultKind::Loss;
    if (needs_node && e.node < 0) fail("needs node=<id> (or nodes=<a>-<b>)");
    if (!needs_node && e.node >= 0) fail("targets the medium, not a node");
    if (e.node_end >= 0 && e.node_end < e.node) fail("inverted node range");
    if (e.at < sim::TimePoint::origin()) fail("strike time must be >= 0");

    const bool needs_duration =
        e.kind == FaultKind::Reboot || e.kind == FaultKind::Outage ||
        e.kind == FaultKind::Loss;
    if (needs_duration && e.duration <= sim::Duration::zero()) {
        fail("needs a positive duration (+D)");
    }
    if (e.kind == FaultKind::Crash && e.duration > sim::Duration::zero()) {
        fail("is permanent; use reboot@T+D for a timed downtime");
    }
    switch (e.kind) {
        case FaultKind::Loss:
            if (e.drop_prob < 0.0 || e.drop_prob > 1.0) fail("p must be in [0, 1]");
            if (e.attenuation_db < 0.0) fail("db must be >= 0");
            if (e.drop_prob == 0.0 && e.attenuation_db == 0.0) {
                fail("needs p > 0 and/or db > 0");
            }
            break;
        case FaultKind::ClockDrift:
            if (e.offset_s == 0.0) fail("needs s=<offset seconds> != 0");
            break;
        case FaultKind::OdometryDegrade:
            if (e.scale <= 0.0) fail("needs scale > 0");
            break;
        case FaultKind::Battery:
            if (e.budget_mj <= 0.0) fail("needs budget_mj > 0 (or budget_kj)");
            break;
        default:
            break;
    }
}

}  // namespace

const char* to_string(FaultKind kind) {
    switch (kind) {
        case FaultKind::Crash: return "crash";
        case FaultKind::Reboot: return "reboot";
        case FaultKind::Outage: return "outage";
        case FaultKind::Loss: return "loss";
        case FaultKind::ClockDrift: return "drift";
        case FaultKind::OdometryDegrade: return "odo";
        case FaultKind::Battery: return "battery";
    }
    return "?";
}

void FaultPlan::validate() const {
    for (const FaultEvent& e : events) validate_event(e);
    if (avail_threshold_m <= 0.0) {
        throw std::invalid_argument("FaultPlan: avail_threshold_m must be > 0");
    }
    if (battery_check <= sim::Duration::zero()) {
        throw std::invalid_argument("FaultPlan: battery_check must be > 0");
    }
}

FaultEvent FaultPlan::parse_spec(const std::string& spec) {
    const std::size_t at_pos = spec.find('@');
    if (at_pos == std::string::npos || at_pos == 0) {
        bad_spec(spec, "expected kind@T[+D][:k=v,...]");
    }
    bool is_jam = false;
    FaultEvent e;
    e.kind = parse_kind(spec, spec.substr(0, at_pos), is_jam);

    const std::size_t colon = spec.find(':', at_pos);
    std::string time_part = spec.substr(
        at_pos + 1, colon == std::string::npos ? std::string::npos : colon - at_pos - 1);
    if (const std::size_t plus = time_part.find('+'); plus != std::string::npos) {
        e.duration =
            sim::Duration::seconds(parse_number(spec, time_part.substr(plus + 1)));
        time_part.resize(plus);
    }
    e.at = sim::TimePoint::from_seconds(parse_number(spec, time_part));

    bool saw_db = false;
    if (colon != std::string::npos) {
        std::stringstream kvs(spec.substr(colon + 1));
        std::string kv;
        while (std::getline(kvs, kv, ',')) {
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0) {
                bad_spec(spec, "expected key=value, got '" + kv + "'");
            }
            const std::string key = kv.substr(0, eq);
            const std::string value = kv.substr(eq + 1);
            if (key == "node") {
                e.node = static_cast<int>(parse_number(spec, value));
            } else if (key == "nodes") {
                const std::size_t dash = value.find('-');
                if (dash == std::string::npos) {
                    bad_spec(spec, "nodes wants <a>-<b>, got '" + value + "'");
                }
                e.node = static_cast<int>(parse_number(spec, value.substr(0, dash)));
                e.node_end =
                    static_cast<int>(parse_number(spec, value.substr(dash + 1)));
            } else if (key == "p") {
                e.drop_prob = parse_number(spec, value);
            } else if (key == "db") {
                e.attenuation_db = parse_number(spec, value);
                saw_db = true;
            } else if (key == "s") {
                e.offset_s = parse_number(spec, value);
            } else if (key == "scale") {
                e.scale = parse_number(spec, value);
            } else if (key == "budget_mj") {
                e.budget_mj = parse_number(spec, value);
            } else if (key == "budget_kj") {
                e.budget_mj = parse_number(spec, value) * 1e6;
            } else {
                bad_spec(spec, "unknown key '" + key + "'");
            }
        }
    }
    if (is_jam && !saw_db) bad_spec(spec, "jam needs db=<attenuation>");
    if (e.kind == FaultKind::Loss && !is_jam && e.drop_prob == 0.0 &&
        e.attenuation_db == 0.0) {
        e.drop_prob = 1.0;  // bare loss@T+D: a total blackout burst
    }
    validate_event(e);
    return e;
}

FaultPlan FaultPlan::parse(const std::string& specs) {
    FaultPlan plan;
    std::stringstream ss(specs);
    std::string spec;
    while (std::getline(ss, spec, ';')) {
        // Trim surrounding whitespace so "a; b" works.
        const std::size_t first = spec.find_first_not_of(" \t");
        if (first == std::string::npos) continue;
        const std::size_t last = spec.find_last_not_of(" \t");
        plan.events.push_back(parse_spec(spec.substr(first, last - first + 1)));
    }
    plan.validate();
    return plan;
}

FaultPlan FaultPlan::parse_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("FaultPlan: cannot read '" + path + "'");
    FaultPlan plan;
    std::string line;
    while (std::getline(in, line)) {
        if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
            line.resize(hash);
        }
        const std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos) continue;
        const std::size_t last = line.find_last_not_of(" \t\r");
        plan.events.push_back(parse_spec(line.substr(first, last - first + 1)));
    }
    plan.validate();
    return plan;
}

std::string FaultPlan::summary() const {
    std::ostringstream os;
    for (const FaultEvent& e : events) {
        os << to_string(e.kind) << " @ " << e.at.to_seconds() << " s";
        if (e.duration > sim::Duration::zero()) {
            os << " for " << e.duration.to_seconds() << " s";
        }
        if (e.node >= 0) {
            os << ", node " << e.node;
            if (e.node_end >= 0) os << "-" << e.node_end;
        }
        if (e.kind == FaultKind::Loss) {
            os << ", p=" << e.drop_prob << ", db=" << e.attenuation_db;
        }
        if (e.kind == FaultKind::ClockDrift) os << ", s=" << e.offset_s;
        if (e.kind == FaultKind::OdometryDegrade) os << ", scale=" << e.scale;
        if (e.kind == FaultKind::Battery) os << ", budget_mj=" << e.budget_mj;
        os << "\n";
    }
    return os.str();
}

FaultPlan anchor_crash_plan(int num_anchors, int crashed, sim::TimePoint at) {
    if (crashed < 0 || crashed > num_anchors) {
        throw std::invalid_argument("anchor_crash_plan: crashed in [0, num_anchors]");
    }
    FaultPlan plan;
    for (int i = 0; i < crashed; ++i) {
        FaultEvent e;
        e.kind = FaultKind::Crash;
        e.at = at;
        e.node = num_anchors - 1 - i;
        plan.events.push_back(e);
    }
    return plan;
}

}  // namespace cocoa::fault
