#include "fault/fault_injector.hpp"

#include <stdexcept>
#include <string>

#include "metrics/cdf.hpp"

namespace cocoa::fault {

namespace {

/// Watchers for reacquisition only make sense in the modes whose agents
/// count discrete fixes (OdometryOnly has no RF; the EKF fuses continuously).
bool counts_fixes(core::LocalizationMode mode) {
    return mode == core::LocalizationMode::RfOnly ||
           mode == core::LocalizationMode::Combined;
}

}  // namespace

FaultInjector::FaultInjector(core::Scenario& scenario, FaultPlan plan)
    : scenario_(scenario), plan_(std::move(plan)) {
    plan_.validate();
    const int n = static_cast<int>(scenario_.agent_count());
    for (const FaultEvent& e : plan_.events) {
        if (e.node >= 0 && e.last_node() >= n) {
            throw std::invalid_argument(
                "FaultInjector: " + std::string(to_string(e.kind)) + " targets node " +
                std::to_string(e.last_node()) + " but the scenario has " +
                std::to_string(n) + " robots");
        }
    }
}

void FaultInjector::arm() {
    if (armed_) throw std::logic_error("FaultInjector::arm called twice");
    armed_ = true;
    if (plan_.empty()) return;  // zero-overhead contract: nothing to do at all

    // Counters appear in the registry only now — an unfaulted run's
    // --counters output must stay byte-identical to a build without faults.
    obs::CounterRegistry& reg = scenario_.obs().counters;
    reg.add("fault.crashes", &stats_.crashes);
    reg.add("fault.reboots", &stats_.reboots);
    reg.add("fault.outages", &stats_.outages);
    reg.add("fault.loss_bursts", &stats_.loss_bursts);
    reg.add("fault.clock_drifts", &stats_.clock_drifts);
    reg.add("fault.odometry_degrades", &stats_.odometry_degrades);
    reg.add("fault.battery_deaths", &stats_.battery_deaths);
    reg.add("fault.reacquired", &stats_.reacquired);
    const mac::Medium::Stats& ms = scenario_.world().medium().stats();
    reg.add("fault.frames_truncated", &ms.frames_truncated);
    reg.add("fault.rx_dropped", &ms.fault_rx_dropped);

    for (const FaultEvent& e : plan_.events) schedule_event(e);
}

void FaultInjector::schedule_event(const FaultEvent& event) {
    sim::Simulator& sim = scenario_.simulator();
    const sim::TimePoint at = std::max(sim.now(), event.at);
    const sim::TimePoint until = at + event.duration;

    switch (event.kind) {
        case FaultKind::Crash:
            intervals_.emplace_back(at, sim::TimePoint::max());
            for (int id = event.first_node(); id <= event.last_node(); ++id) {
                sim.schedule_at(at, [this, id] {
                    scenario_.world().node(static_cast<net::NodeId>(id)).radio().power_off();
                    ++stats_.crashes;
                    scenario_.obs().trace.instant(scenario_.simulator().now(), "fault", "crash",
                                  static_cast<std::int64_t>(id));
                });
            }
            break;

        case FaultKind::Reboot:
            intervals_.emplace_back(at, until);
            for (int id = event.first_node(); id <= event.last_node(); ++id) {
                sim.schedule_at(at, [this, id] {
                    scenario_.world().node(static_cast<net::NodeId>(id)).radio().power_off();
                    ++stats_.crashes;
                    scenario_.obs().trace.instant(scenario_.simulator().now(), "fault", "crash",
                                  static_cast<std::int64_t>(id));
                });
                sim.schedule_at(until, [this, id] {
                    const auto nid = static_cast<net::NodeId>(id);
                    scenario_.world().node(nid).radio().power_on();
                    if (multicast::MulticastNode* mc = scenario_.multicast_node(nid)) {
                        mc->reset_soft_state();
                    }
                    scenario_.agent(nid).reboot();
                    ++stats_.reboots;
                    scenario_.obs().trace.instant(scenario_.simulator().now(), "fault", "reboot",
                                  static_cast<std::int64_t>(id));
                    start_reacquire_watch(id);
                });
            }
            break;

        case FaultKind::Outage:
            intervals_.emplace_back(at, until);
            for (int id = event.first_node(); id <= event.last_node(); ++id) {
                sim.schedule_at(at, [this, id] {
                    mac::Radio& radio =
                        scenario_.world().node(static_cast<net::NodeId>(id)).radio();
                    if (radio.is_off()) return;  // already crashed
                    radio.begin_outage();
                    ++stats_.outages;
                    scenario_.obs().trace.instant(scenario_.simulator().now(), "fault", "outage_begin",
                                  static_cast<std::int64_t>(id));
                });
                sim.schedule_at(until, [this, id] {
                    mac::Radio& radio =
                        scenario_.world().node(static_cast<net::NodeId>(id)).radio();
                    if (!radio.in_outage()) return;
                    radio.end_outage();
                    scenario_.obs().trace.instant(scenario_.simulator().now(), "fault", "outage_end",
                                  static_cast<std::int64_t>(id));
                    start_reacquire_watch(id);
                });
            }
            break;

        case FaultKind::Loss:
            intervals_.emplace_back(at, until);
            scenario_.world().medium().add_loss_burst(
                {at, until, event.drop_prob, event.attenuation_db});
            sim.schedule_at(at, [this, event] {
                ++stats_.loss_bursts;
                scenario_.obs().trace.instant(scenario_.simulator().now(), "fault", "loss_begin",
                              /*id=*/-1,
                              {{"p", event.drop_prob}, {"db", event.attenuation_db}});
            });
            break;

        case FaultKind::ClockDrift:
            for (int id = event.first_node(); id <= event.last_node(); ++id) {
                sim.schedule_at(at, [this, id, offset = event.offset_s] {
                    scenario_.agent(static_cast<net::NodeId>(id))
                        .inject_clock_offset(offset);
                    ++stats_.clock_drifts;
                    scenario_.obs().trace.instant(scenario_.simulator().now(), "fault", "clock_drift",
                                  static_cast<std::int64_t>(id), {{"s", offset}});
                });
            }
            break;

        case FaultKind::OdometryDegrade:
            for (int id = event.first_node(); id <= event.last_node(); ++id) {
                sim.schedule_at(at, [this, id, scale = event.scale] {
                    scenario_.agent(static_cast<net::NodeId>(id)).degrade_odometry(scale);
                    ++stats_.odometry_degrades;
                    scenario_.obs().trace.instant(scenario_.simulator().now(), "fault", "odo_degrade",
                                  static_cast<std::int64_t>(id), {{"scale", scale}});
                });
                if (event.duration > sim::Duration::zero()) {
                    sim.schedule_at(until, [this, id] {
                        scenario_.agent(static_cast<net::NodeId>(id)).degrade_odometry(1.0);
                    });
                }
            }
            break;

        case FaultKind::Battery:
            for (int id = event.first_node(); id <= event.last_node(); ++id) {
                schedule_battery_watch(id, event.budget_mj, at);
            }
            break;
    }
}

void FaultInjector::schedule_battery_watch(int node, double budget_mj,
                                           sim::TimePoint from) {
    scenario_.simulator().schedule_at(from, [this, node, budget_mj] {
        mac::Radio& radio =
            scenario_.world().node(static_cast<net::NodeId>(node)).radio();
        if (radio.is_off()) return;  // dead already; stop watching
        radio.settle_energy();
        if (radio.meter().total_mj() >= budget_mj) {
            const sim::TimePoint now = scenario_.simulator().now();
            radio.power_off();
            ++stats_.battery_deaths;
            intervals_.emplace_back(now, sim::TimePoint::max());
            scenario_.obs().trace.instant(now, "fault", "battery_death",
                                          static_cast<std::int64_t>(node),
                                          {{"mj", radio.meter().total_mj()}});
            return;
        }
        schedule_battery_watch(node, budget_mj,
                               scenario_.simulator().now() + plan_.battery_check);
    });
}

void FaultInjector::start_reacquire_watch(int node) {
    const auto nid = static_cast<net::NodeId>(node);
    if (scenario_.is_anchor(nid) || !counts_fixes(scenario_.config().mode)) return;
    ++watches_started_;
    const sim::TimePoint recovered_at = scenario_.simulator().now();
    const std::uint64_t fixes_before = scenario_.agent(nid).stats().fixes;
    // Poll at the metric sampling granularity until the first post-recovery
    // fix lands; unfinished watches count as never_reacquired in report().
    const auto poll = [this, nid, recovered_at, fixes_before](const auto& self) -> void {
        scenario_.simulator().schedule_in(
            scenario_.config().sample_interval, [this, nid, recovered_at, fixes_before,
                                                 self] {
                if (scenario_.agent(nid).stats().fixes > fixes_before) {
                    ++stats_.reacquired;
                    reacquire_s_sum_ +=
                        (scenario_.simulator().now() - recovered_at).to_seconds();
                    scenario_.obs().trace.instant(
                        scenario_.simulator().now(), "fault", "reacquired",
                        static_cast<std::int64_t>(nid));
                    return;
                }
                self(self);
            });
    };
    poll(poll);
}

ResilienceReport FaultInjector::report(const core::ScenarioResult& result) const {
    ResilienceReport rep;
    rep.avail_threshold_m = plan_.avail_threshold_m;

    sim::TimePoint first_strike = sim::TimePoint::max();
    for (const auto& [start, end] : intervals_) {
        first_strike = std::min(first_strike, start);
    }
    const auto in_fault = [this](sim::TimePoint t) {
        for (const auto& [start, end] : intervals_) {
            if (t >= start && t <= end) return true;
        }
        return false;
    };

    std::vector<double> during_errors;
    std::vector<double> after_errors;
    std::uint64_t ok_total = 0, ok_before = 0, ok_during = 0, ok_after = 0;
    // Node order, then sample order: a fixed fold order keeps the report
    // byte-identical across thread counts, like every exp aggregate.
    for (const auto& series : result.node_error) {
        if (series.empty()) continue;  // anchor
        for (const auto& sample : series.samples()) {
            const bool ok = sample.value <= plan_.avail_threshold_m;
            ++rep.samples_total;
            ok_total += ok;
            if (sample.time < first_strike) {
                ++rep.samples_before;
                ok_before += ok;
            } else if (in_fault(sample.time)) {
                ++rep.samples_during;
                ok_during += ok;
                during_errors.push_back(sample.value);
            } else {
                ++rep.samples_after;
                ok_after += ok;
                after_errors.push_back(sample.value);
            }
        }
    }
    const auto frac = [](std::uint64_t ok, std::uint64_t n) {
        return n == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(n);
    };
    rep.availability = frac(ok_total, rep.samples_total);
    rep.avail_before = frac(ok_before, rep.samples_before);
    rep.avail_during = frac(ok_during, rep.samples_during);
    rep.avail_after = frac(ok_after, rep.samples_after);

    if (!during_errors.empty()) {
        const metrics::Cdf cdf(std::move(during_errors));
        rep.p50_during_m = cdf.quantile(0.5);
        rep.p90_during_m = cdf.quantile(0.9);
    }
    if (!after_errors.empty()) {
        const metrics::Cdf cdf(std::move(after_errors));
        rep.p50_after_m = cdf.quantile(0.5);
        rep.p90_after_m = cdf.quantile(0.9);
    }

    rep.reacquired = stats_.reacquired;
    rep.never_reacquired = watches_started_ - stats_.reacquired;
    rep.mean_reacquire_s =
        stats_.reacquired == 0
            ? 0.0
            : reacquire_s_sum_ / static_cast<double>(stats_.reacquired);
    return rep;
}

}  // namespace cocoa::fault
