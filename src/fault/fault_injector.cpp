#include "fault/fault_injector.hpp"

#include <stdexcept>
#include <string>

#include "metrics/cdf.hpp"
#include "sim/checkpoint.hpp"
#include "sim/event_tag.hpp"

namespace cocoa::fault {

namespace {

constexpr std::uint32_t kMarkFault = 0x46414c54u;  // "FALT"

/// Watchers for reacquisition only make sense in the modes whose agents
/// count discrete fixes (OdometryOnly has no RF; the EKF fuses continuously).
bool counts_fixes(core::LocalizationMode mode) {
    return mode == core::LocalizationMode::RfOnly ||
           mode == core::LocalizationMode::Combined;
}

}  // namespace

FaultInjector::FaultInjector(core::Scenario& scenario, FaultPlan plan)
    : scenario_(scenario), plan_(std::move(plan)) {
    plan_.validate();
    const int n = static_cast<int>(scenario_.agent_count());
    for (const FaultEvent& e : plan_.events) {
        if (e.node >= 0 && e.last_node() >= n) {
            throw std::invalid_argument(
                "FaultInjector: " + std::string(to_string(e.kind)) + " targets node " +
                std::to_string(e.last_node()) + " but the scenario has " +
                std::to_string(n) + " robots");
        }
    }
}

void FaultInjector::register_counters() {
    // Counters appear in the registry only now — an unfaulted run's
    // --counters output must stay byte-identical to a build without faults.
    obs::CounterRegistry& reg = scenario_.obs().counters;
    reg.add("fault.crashes", &stats_.crashes);
    reg.add("fault.reboots", &stats_.reboots);
    reg.add("fault.outages", &stats_.outages);
    reg.add("fault.loss_bursts", &stats_.loss_bursts);
    reg.add("fault.clock_drifts", &stats_.clock_drifts);
    reg.add("fault.odometry_degrades", &stats_.odometry_degrades);
    reg.add("fault.battery_deaths", &stats_.battery_deaths);
    reg.add("fault.reacquired", &stats_.reacquired);
    const mac::Medium::Stats& ms = scenario_.world().medium().stats();
    reg.add("fault.frames_truncated", &ms.frames_truncated);
    reg.add("fault.rx_dropped", &ms.fault_rx_dropped);
}

void FaultInjector::arm() {
    if (armed_) throw std::logic_error("FaultInjector::arm called twice");
    armed_ = true;
    if (plan_.empty()) return;  // zero-overhead contract: nothing to do at all

    register_counters();
    for (std::size_t i = 0; i < plan_.events.size(); ++i) schedule_event(i);
}

std::uint64_t FaultInjector::kernel_event_count() const {
    std::uint64_t n = 0;
    for (const FaultEvent& e : plan_.events) {
        const auto nodes =
            static_cast<std::uint64_t>(e.last_node() - e.first_node() + 1);
        switch (e.kind) {
            case FaultKind::Crash: n += nodes; break;
            case FaultKind::Reboot: n += 2 * nodes; break;
            case FaultKind::Outage: n += 2 * nodes; break;
            case FaultKind::Loss: n += 1; break;
            case FaultKind::ClockDrift: n += nodes; break;
            case FaultKind::OdometryDegrade:
                n += nodes * (e.duration > sim::Duration::zero() ? 2 : 1);
                break;
            case FaultKind::Battery: n += nodes; break;
        }
    }
    return n;
}

bool FaultInjector::arm_forked() {
    if (armed_) throw std::logic_error("FaultInjector::arm_forked called twice");
    if (plan_.empty()) {
        armed_ = true;
        return true;
    }
    sim::Simulator& sim = scenario_.simulator();
    const std::uint64_t need = kernel_event_count();
    const std::uint64_t min_seq = sim.min_pending_seq();
    // Reserving below the pending window reproduces the straight run's
    // fault-before-runtime FIFO order exactly, because every event pending at
    // the fork point was scheduled *after* arm in the straight run (the
    // prefix must outlive all construction-time one-shots — guaranteed in
    // practice since faults strike seconds in while construction events
    // recur sub-second). An idle queue or a too-small seq floor means the
    // order cannot be reproduced: the caller falls back to an unforked run.
    if (min_seq == UINT64_MAX || min_seq < need) return false;
    armed_ = true;
    register_counters();
    const std::uint64_t prefix_peak = sim.kernel_stats().peak_pending;
    forked_seq_ = min_seq - need;
    for (std::size_t i = 0; i < plan_.events.size(); ++i) schedule_event(i);
    forked_seq_.reset();
    // A straight faulted run carries the armed events in its pending count
    // from t=0, so its high-water mark up to the fork point is exactly
    // `need` above the prefix's. scheduled/sbo_misses already match: the
    // reserved-seq path goes through the same place() accounting arm() does.
    sim::KernelStats stats = sim.kernel_stats();
    stats.peak_pending = prefix_peak + need;
    sim.set_kernel_stats(stats);
    return true;
}

void FaultInjector::schedule_fault(sim::TimePoint t, sim::InplaceCallback cb,
                                   const sim::EventTag& tag) {
    sim::Simulator& sim = scenario_.simulator();
    if (forked_seq_.has_value()) {
        sim.schedule_with_seq(t, (*forked_seq_)++, std::move(cb), tag);
    } else {
        sim.schedule_at(t, std::move(cb), tag);
    }
}

void FaultInjector::schedule_event(std::size_t idx) {
    const FaultEvent& event = plan_.events[idx];
    sim::Simulator& sim = scenario_.simulator();
    const sim::TimePoint at = std::max(sim.now(), event.at);
    const sim::TimePoint until = at + event.duration;

    switch (event.kind) {
        case FaultKind::Crash:
            intervals_.emplace_back(at, sim::TimePoint::max());
            for (int id = event.first_node(); id <= event.last_node(); ++id) {
                schedule_fault(at, sim::InplaceCallback([this, idx, id] { strike(idx, id); }),
                               sim::make_tag(sim::EventKind::kFaultStrike,
                                             static_cast<std::uint32_t>(id),
                                             static_cast<std::uint32_t>(idx)));
            }
            break;

        case FaultKind::Reboot:
        case FaultKind::Outage:
            intervals_.emplace_back(at, until);
            for (int id = event.first_node(); id <= event.last_node(); ++id) {
                schedule_fault(at, sim::InplaceCallback([this, idx, id] { strike(idx, id); }),
                               sim::make_tag(sim::EventKind::kFaultStrike,
                                             static_cast<std::uint32_t>(id),
                                             static_cast<std::uint32_t>(idx)));
                schedule_fault(until,
                               sim::InplaceCallback([this, idx, id] { recover(idx, id); }),
                               sim::make_tag(sim::EventKind::kFaultRecover,
                                             static_cast<std::uint32_t>(id),
                                             static_cast<std::uint32_t>(idx)));
            }
            break;

        case FaultKind::Loss:
            intervals_.emplace_back(at, until);
            scenario_.world().medium().add_loss_burst(
                {at, until, event.drop_prob, event.attenuation_db});
            schedule_fault(at, sim::InplaceCallback([this, idx] { strike(idx, -1); }),
                           sim::make_tag(sim::EventKind::kFaultStrike,
                                         static_cast<std::uint32_t>(-1),
                                         static_cast<std::uint32_t>(idx)));
            break;

        case FaultKind::ClockDrift:
            for (int id = event.first_node(); id <= event.last_node(); ++id) {
                schedule_fault(at, sim::InplaceCallback([this, idx, id] { strike(idx, id); }),
                               sim::make_tag(sim::EventKind::kFaultStrike,
                                             static_cast<std::uint32_t>(id),
                                             static_cast<std::uint32_t>(idx)));
            }
            break;

        case FaultKind::OdometryDegrade:
            for (int id = event.first_node(); id <= event.last_node(); ++id) {
                schedule_fault(at, sim::InplaceCallback([this, idx, id] { strike(idx, id); }),
                               sim::make_tag(sim::EventKind::kFaultStrike,
                                             static_cast<std::uint32_t>(id),
                                             static_cast<std::uint32_t>(idx)));
                if (event.duration > sim::Duration::zero()) {
                    schedule_fault(until,
                                   sim::InplaceCallback([this, idx, id] { recover(idx, id); }),
                                   sim::make_tag(sim::EventKind::kFaultRecover,
                                                 static_cast<std::uint32_t>(id),
                                                 static_cast<std::uint32_t>(idx)));
                }
            }
            break;

        case FaultKind::Battery:
            for (int id = event.first_node(); id <= event.last_node(); ++id) {
                schedule_battery_watch(idx, id, at);
            }
            break;
    }
}

/// The `at` side of one plan event for one target node. The plan is
/// immutable after construction, so per-kind parameters are read back out of
/// plan_.events[idx] at fire time — keeping every scheduled capture down to
/// {this, idx, id}, which a restore can rebuild verbatim from the event tag.
void FaultInjector::strike(std::size_t idx, int id) {
    const FaultEvent& event = plan_.events[idx];
    const sim::TimePoint now = scenario_.simulator().now();
    switch (event.kind) {
        case FaultKind::Crash:
        case FaultKind::Reboot:
            scenario_.world().node(static_cast<net::NodeId>(id)).radio().power_off();
            ++stats_.crashes;
            scenario_.obs().trace.instant(now, "fault", "crash",
                                          static_cast<std::int64_t>(id));
            break;

        case FaultKind::Outage: {
            mac::Radio& radio =
                scenario_.world().node(static_cast<net::NodeId>(id)).radio();
            if (radio.is_off()) return;  // already crashed
            radio.begin_outage();
            ++stats_.outages;
            scenario_.obs().trace.instant(now, "fault", "outage_begin",
                                          static_cast<std::int64_t>(id));
            break;
        }

        case FaultKind::Loss:
            ++stats_.loss_bursts;
            scenario_.obs().trace.instant(
                now, "fault", "loss_begin", /*id=*/-1,
                {{"p", event.drop_prob}, {"db", event.attenuation_db}});
            break;

        case FaultKind::ClockDrift:
            scenario_.agent(static_cast<net::NodeId>(id))
                .inject_clock_offset(event.offset_s);
            ++stats_.clock_drifts;
            scenario_.obs().trace.instant(now, "fault", "clock_drift",
                                          static_cast<std::int64_t>(id),
                                          {{"s", event.offset_s}});
            break;

        case FaultKind::OdometryDegrade:
            scenario_.agent(static_cast<net::NodeId>(id)).degrade_odometry(event.scale);
            ++stats_.odometry_degrades;
            scenario_.obs().trace.instant(now, "fault", "odo_degrade",
                                          static_cast<std::int64_t>(id),
                                          {{"scale", event.scale}});
            break;

        case FaultKind::Battery:
            break;  // battery faults are watches, not strikes
    }
}

/// The `until` side (Reboot revival, Outage end, OdometryDegrade restore).
void FaultInjector::recover(std::size_t idx, int id) {
    const FaultEvent& event = plan_.events[idx];
    const auto nid = static_cast<net::NodeId>(id);
    switch (event.kind) {
        case FaultKind::Reboot:
            scenario_.world().node(nid).radio().power_on();
            if (multicast::MulticastNode* mc = scenario_.multicast_node(nid)) {
                mc->reset_soft_state();
            }
            scenario_.agent(nid).reboot();
            ++stats_.reboots;
            scenario_.obs().trace.instant(scenario_.simulator().now(), "fault",
                                          "reboot", static_cast<std::int64_t>(id));
            start_reacquire_watch(id);
            break;

        case FaultKind::Outage: {
            mac::Radio& radio = scenario_.world().node(nid).radio();
            if (!radio.in_outage()) return;
            radio.end_outage();
            scenario_.obs().trace.instant(scenario_.simulator().now(), "fault",
                                          "outage_end", static_cast<std::int64_t>(id));
            start_reacquire_watch(id);
            break;
        }

        case FaultKind::OdometryDegrade:
            scenario_.agent(nid).degrade_odometry(1.0);
            break;

        default:
            break;
    }
}

void FaultInjector::schedule_battery_watch(std::size_t idx, int id,
                                           sim::TimePoint from) {
    schedule_fault(from,
                   sim::InplaceCallback([this, idx, id] { battery_watch(idx, id); }),
                   sim::make_tag(sim::EventKind::kFaultBatteryWatch,
                                 static_cast<std::uint32_t>(id),
                                 static_cast<std::uint32_t>(idx)));
}

void FaultInjector::battery_watch(std::size_t idx, int id) {
    mac::Radio& radio = scenario_.world().node(static_cast<net::NodeId>(id)).radio();
    if (radio.is_off()) return;  // dead already; stop watching
    radio.settle_energy();
    if (radio.meter().total_mj() >= plan_.events[idx].budget_mj) {
        const sim::TimePoint now = scenario_.simulator().now();
        radio.power_off();
        ++stats_.battery_deaths;
        intervals_.emplace_back(now, sim::TimePoint::max());
        scenario_.obs().trace.instant(now, "fault", "battery_death",
                                      static_cast<std::int64_t>(id),
                                      {{"mj", radio.meter().total_mj()}});
        return;
    }
    schedule_battery_watch(idx, id,
                           scenario_.simulator().now() + plan_.battery_check);
}

void FaultInjector::start_reacquire_watch(int node) {
    const auto nid = static_cast<net::NodeId>(node);
    if (scenario_.is_anchor(nid) || !counts_fixes(scenario_.config().mode)) return;
    ++watches_started_;
    // Poll at the metric sampling granularity until the first post-recovery
    // fix lands; unfinished watches count as never_reacquired in report().
    schedule_reacquire_poll(nid, scenario_.simulator().now(),
                            scenario_.agent(nid).stats().fixes);
}

void FaultInjector::schedule_reacquire_poll(net::NodeId nid,
                                            sim::TimePoint recovered_at,
                                            std::uint64_t fixes_before) {
    scenario_.simulator().schedule_in(
        scenario_.config().sample_interval,
        sim::InplaceCallback([this, nid, recovered_at, fixes_before] {
            poll_reacquire(nid, recovered_at, fixes_before);
        }),
        sim::make_tag(sim::EventKind::kFaultReacquirePoll, nid, 0, 0,
                      static_cast<std::uint64_t>(recovered_at.to_nanos()),
                      fixes_before));
}

void FaultInjector::poll_reacquire(net::NodeId nid, sim::TimePoint recovered_at,
                                   std::uint64_t fixes_before) {
    if (scenario_.agent(nid).stats().fixes > fixes_before) {
        ++stats_.reacquired;
        reacquire_s_sum_ +=
            (scenario_.simulator().now() - recovered_at).to_seconds();
        scenario_.obs().trace.instant(scenario_.simulator().now(), "fault",
                                      "reacquired", static_cast<std::int64_t>(nid));
        return;
    }
    schedule_reacquire_poll(nid, recovered_at, fixes_before);
}

void FaultInjector::save_state(sim::ckpt::Writer& w) const {
    w.mark(kMarkFault);
    w.b(armed_);
    w.u64(stats_.crashes);
    w.u64(stats_.reboots);
    w.u64(stats_.outages);
    w.u64(stats_.loss_bursts);
    w.u64(stats_.clock_drifts);
    w.u64(stats_.odometry_degrades);
    w.u64(stats_.battery_deaths);
    w.u64(stats_.reacquired);
    w.u64(intervals_.size());
    for (const auto& [start, end] : intervals_) {
        w.time(start);
        w.time(end);
    }
    w.u64(watches_started_);
    w.f64(reacquire_s_sum_);
}

void FaultInjector::load_state(sim::ckpt::Reader& r) {
    r.expect(kMarkFault);
    armed_ = r.b();
    stats_.crashes = r.u64();
    stats_.reboots = r.u64();
    stats_.outages = r.u64();
    stats_.loss_bursts = r.u64();
    stats_.clock_drifts = r.u64();
    stats_.odometry_degrades = r.u64();
    stats_.battery_deaths = r.u64();
    stats_.reacquired = r.u64();
    intervals_.clear();
    const std::uint64_t n = r.u64();
    intervals_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const sim::TimePoint start = r.time();
        const sim::TimePoint end = r.time();
        intervals_.emplace_back(start, end);
    }
    watches_started_ = r.u64();
    reacquire_s_sum_ = r.f64();
    // Pending fault events come back through the kernel blob (see
    // register_rebuilders) and loss bursts through the medium's own state;
    // only the counter registrations have to be redone here.
    if (armed_ && !plan_.empty()) register_counters();
}

void FaultInjector::register_rebuilders(sim::ckpt::CallbackRegistry& reg) {
    reg.add(sim::EventKind::kFaultStrike, [this](const sim::EventTag& tag) {
        const auto idx = static_cast<std::size_t>(tag.x);
        const int id = static_cast<int>(tag.node);
        return sim::InplaceCallback([this, idx, id] { strike(idx, id); });
    });
    reg.add(sim::EventKind::kFaultRecover, [this](const sim::EventTag& tag) {
        const auto idx = static_cast<std::size_t>(tag.x);
        const int id = static_cast<int>(tag.node);
        return sim::InplaceCallback([this, idx, id] { recover(idx, id); });
    });
    reg.add(sim::EventKind::kFaultBatteryWatch, [this](const sim::EventTag& tag) {
        const auto idx = static_cast<std::size_t>(tag.x);
        const int id = static_cast<int>(tag.node);
        return sim::InplaceCallback([this, idx, id] { battery_watch(idx, id); });
    });
    reg.add(sim::EventKind::kFaultReacquirePoll, [this](const sim::EventTag& tag) {
        const auto nid = static_cast<net::NodeId>(tag.node);
        const sim::TimePoint recovered_at =
            sim::TimePoint::from_nanos(static_cast<std::int64_t>(tag.a));
        const std::uint64_t fixes_before = tag.b;
        return sim::InplaceCallback([this, nid, recovered_at, fixes_before] {
            poll_reacquire(nid, recovered_at, fixes_before);
        });
    });
}

ResilienceReport FaultInjector::report(const core::ScenarioResult& result) const {
    ResilienceReport rep;
    rep.avail_threshold_m = plan_.avail_threshold_m;

    sim::TimePoint first_strike = sim::TimePoint::max();
    for (const auto& [start, end] : intervals_) {
        first_strike = std::min(first_strike, start);
    }
    const auto in_fault = [this](sim::TimePoint t) {
        for (const auto& [start, end] : intervals_) {
            if (t >= start && t <= end) return true;
        }
        return false;
    };

    std::vector<double> during_errors;
    std::vector<double> after_errors;
    std::uint64_t ok_total = 0, ok_before = 0, ok_during = 0, ok_after = 0;
    // Node order, then sample order: a fixed fold order keeps the report
    // byte-identical across thread counts, like every exp aggregate.
    for (const auto& series : result.node_error) {
        if (series.empty()) continue;  // anchor
        for (const auto& sample : series.samples()) {
            const bool ok = sample.value <= plan_.avail_threshold_m;
            ++rep.samples_total;
            ok_total += ok;
            if (sample.time < first_strike) {
                ++rep.samples_before;
                ok_before += ok;
            } else if (in_fault(sample.time)) {
                ++rep.samples_during;
                ok_during += ok;
                during_errors.push_back(sample.value);
            } else {
                ++rep.samples_after;
                ok_after += ok;
                after_errors.push_back(sample.value);
            }
        }
    }
    const auto frac = [](std::uint64_t ok, std::uint64_t n) {
        return n == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(n);
    };
    rep.availability = frac(ok_total, rep.samples_total);
    rep.avail_before = frac(ok_before, rep.samples_before);
    rep.avail_during = frac(ok_during, rep.samples_during);
    rep.avail_after = frac(ok_after, rep.samples_after);

    if (!during_errors.empty()) {
        const metrics::Cdf cdf(std::move(during_errors));
        rep.p50_during_m = cdf.quantile(0.5);
        rep.p90_during_m = cdf.quantile(0.9);
    }
    if (!after_errors.empty()) {
        const metrics::Cdf cdf(std::move(after_errors));
        rep.p50_after_m = cdf.quantile(0.5);
        rep.p90_after_m = cdf.quantile(0.9);
    }

    rep.reacquired = stats_.reacquired;
    rep.never_reacquired = watches_started_ - stats_.reacquired;
    rep.mean_reacquire_s =
        stats_.reacquired == 0
            ? 0.0
            : reacquire_s_sum_ / static_cast<double>(stats_.reacquired);
    return rep;
}

}  // namespace cocoa::fault
