#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace cocoa::cli {

/// A small declarative command-line parser for the tools in tools/.
///
/// Supports `--name value` options bound to numeric/string targets and
/// boolean `--name` flags. `--help` prints the generated usage text and
/// makes parse() return false without an error.
class ArgParser {
  public:
    explicit ArgParser(std::string program, std::string description);

    ArgParser& add_flag(const std::string& name, const std::string& description,
                        bool* target);
    ArgParser& add_option(const std::string& name, const std::string& description,
                          double* target);
    ArgParser& add_option(const std::string& name, const std::string& description,
                          int* target);
    /// Integer option constrained to [min_value, max_value]; out-of-range
    /// values fail parse() with an error naming the allowed range.
    ArgParser& add_option(const std::string& name, const std::string& description,
                          int* target, int min_value, int max_value);
    ArgParser& add_option(const std::string& name, const std::string& description,
                          std::uint64_t* target);
    ArgParser& add_option(const std::string& name, const std::string& description,
                          std::string* target);
    /// String option restricted to an enumerated set of choices. A value
    /// outside the set fails parse() with an error listing the choices and —
    /// when the input is a near-miss (edit distance <= 2) — a "did you mean"
    /// suggestion. The choices are appended to the help text.
    ArgParser& add_option(const std::string& name, const std::string& description,
                          std::string* target, std::vector<std::string> choices);

    /// Parses argv. Returns true when the program should proceed; false on
    /// `--help` (help printed to `out`) or on error (message to `err`).
    bool parse(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err);

    /// True if parse() failed with an error (as opposed to --help).
    bool failed() const { return failed_; }

    std::string help() const;

  private:
    using Target = std::variant<bool*, double*, int*, std::uint64_t*, std::string*>;
    struct Spec {
        std::string description;
        Target target;
        bool has_range = false;  ///< int targets only
        int min_value = 0;
        int max_value = 0;
        std::vector<std::string> choices;  ///< string targets only; empty = free
    };

    ArgParser& add(const std::string& name, const std::string& description,
                   Target target);
    static bool assign(Target target, const std::string& value);

    std::string program_;
    std::string description_;
    std::vector<std::string> order_;  ///< help listing order
    std::map<std::string, Spec> specs_;
    bool failed_ = false;
};

}  // namespace cocoa::cli
