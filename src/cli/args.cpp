#include "cli/args.hpp"

#include <algorithm>
#include <charconv>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cocoa::cli {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add(const std::string& name, const std::string& description,
                          Target target) {
    if (name.empty() || name.rfind("--", 0) == 0) {
        throw std::invalid_argument("ArgParser: register names without leading --");
    }
    if (!specs_.emplace(name, Spec{description, target, false, 0, 0, {}}).second) {
        throw std::logic_error("ArgParser: duplicate option --" + name);
    }
    order_.push_back(name);
    return *this;
}

ArgParser& ArgParser::add_flag(const std::string& name, const std::string& description,
                               bool* target) {
    return add(name, description, target);
}
ArgParser& ArgParser::add_option(const std::string& name, const std::string& description,
                                 double* target) {
    return add(name, description, target);
}
ArgParser& ArgParser::add_option(const std::string& name, const std::string& description,
                                 int* target) {
    return add(name, description, target);
}
ArgParser& ArgParser::add_option(const std::string& name, const std::string& description,
                                 int* target, int min_value, int max_value) {
    if (min_value > max_value) {
        throw std::invalid_argument("ArgParser: empty range for --" + name);
    }
    add(name, description, target);
    Spec& spec = specs_.at(name);
    spec.has_range = true;
    spec.min_value = min_value;
    spec.max_value = max_value;
    return *this;
}
ArgParser& ArgParser::add_option(const std::string& name, const std::string& description,
                                 std::uint64_t* target) {
    return add(name, description, target);
}
ArgParser& ArgParser::add_option(const std::string& name, const std::string& description,
                                 std::string* target) {
    return add(name, description, target);
}
ArgParser& ArgParser::add_option(const std::string& name, const std::string& description,
                                 std::string* target,
                                 std::vector<std::string> choices) {
    if (choices.empty()) {
        throw std::invalid_argument("ArgParser: empty choice set for --" + name);
    }
    add(name, description, target);
    specs_.at(name).choices = std::move(choices);
    return *this;
}

namespace {

/// Plain Levenshtein distance, small strings only (choice names).
std::size_t edit_distance(const std::string& a, const std::string& b) {
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t next_diag = row[j];
            const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
            diag = next_diag;
        }
    }
    return row[b.size()];
}

}  // namespace

bool ArgParser::assign(Target target, const std::string& value) {
    const auto from_chars_ok = [&](auto* out) {
        const auto [ptr, ec] =
            std::from_chars(value.data(), value.data() + value.size(), *out);
        return ec == std::errc{} && ptr == value.data() + value.size();
    };
    if (auto* d = std::get_if<double*>(&target)) {
        try {
            std::size_t used = 0;
            **d = std::stod(value, &used);
            return used == value.size();
        } catch (const std::exception&) {
            return false;
        }
    }
    if (auto* i = std::get_if<int*>(&target)) return from_chars_ok(*i);
    if (auto* u = std::get_if<std::uint64_t*>(&target)) return from_chars_ok(*u);
    if (auto* s = std::get_if<std::string*>(&target)) {
        **s = value;
        return true;
    }
    return false;
}

bool ArgParser::parse(int argc, const char* const* argv, std::ostream& out,
                      std::ostream& err) {
    failed_ = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            out << help();
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            err << program_ << ": unexpected positional argument '" << arg << "'\n";
            failed_ = true;
            return false;
        }
        arg.erase(0, 2);
        // --name=value form.
        std::string inline_value;
        bool has_inline = false;
        if (const auto eq = arg.find('='); eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            arg.erase(eq);
            has_inline = true;
        }
        const auto it = specs_.find(arg);
        if (it == specs_.end()) {
            err << program_ << ": unknown option --" << arg << "\n";
            failed_ = true;
            return false;
        }
        if (auto* flag = std::get_if<bool*>(&it->second.target)) {
            if (has_inline) {
                err << program_ << ": flag --" << arg << " takes no value\n";
                failed_ = true;
                return false;
            }
            **flag = true;
            continue;
        }
        std::string value;
        if (has_inline) {
            value = inline_value;
        } else {
            if (i + 1 >= argc) {
                err << program_ << ": option --" << arg << " needs a value\n";
                failed_ = true;
                return false;
            }
            value = argv[++i];
        }
        if (!assign(it->second.target, value)) {
            err << program_ << ": bad value '" << value << "' for --" << arg << "\n";
            failed_ = true;
            return false;
        }
        if (it->second.has_range) {
            const int v = *std::get<int*>(it->second.target);
            if (v < it->second.min_value || v > it->second.max_value) {
                err << program_ << ": --" << arg << " must be in ["
                    << it->second.min_value << ", " << it->second.max_value << "], got "
                    << v << "\n";
                failed_ = true;
                return false;
            }
        }
        if (const auto& choices = it->second.choices; !choices.empty()) {
            if (std::find(choices.begin(), choices.end(), value) == choices.end()) {
                err << program_ << ": bad value '" << value << "' for --" << arg
                    << " (choices:";
                for (const std::string& c : choices) err << " " << c;
                err << ")";
                // Near-miss? Offer the closest choice.
                const auto closest = std::min_element(
                    choices.begin(), choices.end(),
                    [&](const std::string& a, const std::string& b) {
                        return edit_distance(value, a) < edit_distance(value, b);
                    });
                if (edit_distance(value, *closest) <= 2) {
                    err << " — did you mean '" << *closest << "'?";
                }
                err << "\n";
                failed_ = true;
                return false;
            }
        }
    }
    return true;
}

std::string ArgParser::help() const {
    std::ostringstream ss;
    ss << program_ << " — " << description_ << "\n\noptions:\n";
    for (const std::string& name : order_) {
        const Spec& spec = specs_.at(name);
        const bool is_flag = std::holds_alternative<bool*>(spec.target);
        ss << "  --" << name << (is_flag ? "" : " <value>") << "\n      "
           << spec.description;
        if (!spec.choices.empty()) {
            ss << " (choices:";
            for (const std::string& c : spec.choices) ss << " " << c;
            ss << ")";
        }
        ss << "\n";
    }
    ss << "  --help\n      show this message\n";
    return ss.str();
}

}  // namespace cocoa::cli
