#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mac/airframe.hpp"
#include "mac/fanout_kernels.hpp"
#include "mac/spatial.hpp"
#include "obs/obs.hpp"
#include "phy/channel.hpp"
#include "phy/loss.hpp"
#include "sim/pool.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace cocoa::net {
struct PacketSaveCtx;
struct PacketLoadCtx;
}  // namespace cocoa::net

namespace cocoa::mac {

class Radio;

/// Which spatial structure the medium culls receivers with.
///
/// `Hierarchical` (the default) is the CellTree in mac/spatial.hpp:
/// incremental cell migrations per moving radio, detached (off / in-outage)
/// radios cost nothing, O(neighbors) per transmission. `FlatHash` is the
/// previous lazily-rebuilt uniform hash, kept as the byte-identity oracle:
/// configuring with -DCOCOA_FLAT_MEDIUM=ON flips the default so CI can diff
/// whole-scenario output between the two structures, exactly like the
/// COCOA_LEGACY_KERNEL gate does for the event queue.
enum class MediumIndex {
    Hierarchical,
    FlatHash,
};

struct MediumConfig {
    /// An interfering frame within this margin (dB) of the locked frame's
    /// power corrupts the reception; weaker interference is captured over.
    double capture_margin_db = 10.0;
    /// Clear-channel-assessment latency: a transmission is only sensed (and
    /// receivable) this long after it starts. Two stations whose backoffs
    /// expire within this window both transmit — the DCF vulnerability slot
    /// that makes collisions physical.
    sim::Duration cca_delay = sim::Duration::micros(15);
    /// Skip radios beyond the channel's max-influence radius when fanning a
    /// transmission out (Glomosim-style interference culling). Because RSSI
    /// draws are counter-based per (frame, receiver) and the clamped
    /// shadowing tail bounds the radius conservatively, culling is exact:
    /// the simulation is bit-identical with it on or off.
    bool interference_culling = true;
    /// Spatial structure behind the culling (see MediumIndex). Both
    /// structures produce bit-identical simulations; this only selects the
    /// data structure, and the COCOA_FLAT_MEDIUM build flips the default.
#ifdef COCOA_FLAT_MEDIUM
    MediumIndex index = MediumIndex::FlatHash;
#else
    MediumIndex index = MediumIndex::Hierarchical;
#endif
    /// Register per-node "node.<id>.*" counters (MAC + energy) when radios
    /// attach. On by default; the 10k–100k-node swarm scenarios turn it off
    /// so the registry does not hold hundreds of thousands of string names.
    bool register_node_counters = true;
};

/// The shared wireless medium: propagates every transmission to all attached
/// radios using the channel model, sampling per-link RSSI and applying
/// wake/sleep, sensitivity, collision and capture rules.
///
/// Also owns the per-simulation observability context (counter registry +
/// trace sink): every radio, agent and multicast node shares the medium, so
/// they all register their counters and emit trace events through obs().
class Medium {
  public:
    struct Stats {
        std::uint64_t frames_sent = 0;
        /// Frames a sleeping radio would have decoded had it been awake.
        std::uint64_t missed_asleep = 0;
        /// Receivers actually visited (RSSI sampled) across transmissions,
        /// and receivers skipped by interference culling or radio
        /// unavailability. Deliberately NOT registered in the counter
        /// registry: culling must be unobservable, and the CI exactness gate
        /// diffs `--counters` output between culling on and off. Tests read
        /// them through stats() instead.
        std::uint64_t radios_visited = 0;
        std::uint64_t radios_culled = 0;
        /// In-flight frames cut short by their transmitter dying, and
        /// receptions suppressed by a fault-injected loss burst. Registered
        /// (as fault.*) only when a FaultInjector arms a non-empty plan, so
        /// the off-path `--counters` output is unchanged.
        std::uint64_t frames_truncated = 0;
        std::uint64_t fault_rx_dropped = 0;
    };

    /// Flat-hash bookkeeping (oracle build only does real work here).
    /// Unregistered for the same reason as radios_visited: the hierarchical
    /// and flat builds must diff clean on `--counters`.
    struct FlatIndexStats {
        std::uint64_t full_rebuilds = 0;
    };

    Medium(sim::Simulator& sim, const phy::Channel& channel, MediumConfig config = {});

    Medium(const Medium&) = delete;
    Medium& operator=(const Medium&) = delete;

    /// Registers a radio and returns its attach index (dense, starting at
    /// 0); the pointer must outlive the medium's use. Radios are born
    /// available (powered on) and, under the hierarchical index, enter the
    /// cell tree at their current position.
    std::size_t attach(Radio& radio);

    /// Starts propagating `packet` from `sender` for `airtime`. Called by
    /// Radio::begin_tx only.
    void begin_transmission(Radio& sender, const net::Packet& packet,
                            sim::Duration airtime);

    /// Cuts `sender`'s in-flight frame short at the current time (the
    /// transmitter died or dropped into an outage): the frame becomes
    /// undecodable, nearby radios' carrier-sense state is rebuilt, and
    /// receivers locked on it abort (counted as rx_aborted). No-op when the
    /// sender has no frame in flight.
    void truncate_transmission(Radio& sender);

    /// Adds a fault-injected loss burst: while it lasts, every propagated
    /// frame is attenuated and/or dropped per receiver (counter-based draws,
    /// so determinism is unaffected). Fault path only — with no bursts the
    /// transmission path is byte-identical to a build without this feature.
    void add_loss_burst(const phy::LossBurst& burst) { loss_.add(burst); }

    /// Latest end time of any in-flight frame whose *sampled* power reached
    /// the carrier-sense threshold at `listener` (the verdict recorded on the
    /// AirFrame at transmission start); used to rebuild carrier-sense state
    /// after a radio wakes mid-frame, consistent with the live receive path.
    sim::TimePoint sensed_until_for(const Radio& listener) const;

    /// One radio moved: the incremental path behind the position contract.
    /// Under the hierarchical index this migrates just that radio's cell
    /// tree entry (an integer compare when it stayed in its cell); under the
    /// flat hash it invalidates the whole hash, exactly as before.
    /// CocoaAgent::tick calls this right after advancing its own mobility.
    /// Duplicate notes for the same radio within one simulation instant are
    /// coalesced (a position changes at most once per instant — callers that
    /// move a radio twice at one timestamp must use note_positions_moved()).
    void note_position_moved(const Radio& radio);

    /// Coarse fallback: invalidates every cached position at once. Any code
    /// that moves positions visible through Radio::position() without saying
    /// whose must call this; the next transmission then refreshes the whole
    /// structure (a full flat-hash rebuild, or a full cell-tree sweep that
    /// tests pin to zero in steady state). Prefer note_position_moved().
    void note_positions_moved() {
        ++position_epoch_;
        bulk_stale_ = true;
    }

    /// Radio availability transitions, called by Radio's power state
    /// machine: an off / in-outage radio is invisible to propagation (no
    /// RSSI draw, no sensed verdict, no missed_asleep accounting) and, under
    /// the hierarchical index, leaves the cell tree entirely so dead robots
    /// cost nothing per transmission. Idempotent.
    void set_radio_available(const Radio& radio, bool available);
    bool radio_available(std::size_t attach_index) const {
        return available_[attach_index] != 0;
    }

    /// The culling radius actually in use (slightly inflated over the
    /// channel's max-influence range to absorb its bisection rounding).
    double cull_radius_m() const { return cull_radius_m_; }

    const phy::Channel& channel() const { return channel_; }
    double capture_margin_db() const { return config_.capture_margin_db; }
    const MediumConfig& config() const { return config_; }
    const Stats& stats() const { return stats_; }
    sim::Simulator& simulator() { return sim_; }

    /// Cell-tree traffic statistics (hierarchical index only; zeros under
    /// the flat oracle). Unregistered — see CellTreeStats.
    const spatial::CellTreeStats& index_stats() const { return tree_.stats(); }
    const FlatIndexStats& flat_index_stats() const { return flat_stats_; }

    /// The spatial.radius_cache.* family (hierarchical fanout only; zeros
    /// under the flat oracle or the Serial force path). Unregistered — see
    /// RadiusCacheStats.
    const spatial::RadiusCacheStats& radius_cache_stats() const {
        return radius_cache_.stats();
    }

    /// The fanout gather batch, exposed for tests that pin the steady-state
    /// fast path as allocation-free (capacity stops growing once warm).
    const fanout::Batch& fanout_scratch() const { return fanout_batch_; }

    /// Slab pool recycling net::Packet blocks, for components that build
    /// steady-state packets (CocoaAgent's SYNC payloads). Stats surface as
    /// kernel.pool.packet.* counters.
    sim::ObjectPool<net::Packet>& packet_pool() { return packet_pool_; }

    /// Frame-pool statistics (kernel.pool.frame.* / kernel.pool.sensed.*),
    /// exposed for tests that assert steady-state recycling directly.
    const sim::PoolStats& frame_pool_stats() const { return frame_pool_.stats(); }
    const sim::PoolStats& sensed_pool_stats() const { return sensed_core_->stats(); }

    obs::Obs& obs() { return obs_; }
    const obs::Obs& obs() const { return obs_; }

    // ------------------------------------------------------------------
    // Checkpoint hooks (sim/checkpoint.hpp). save_state captures the frame
    // counter, armed loss bursts, stats, and every *alive* AirFrame — a frame
    // is alive while anything still references it: the active list, a
    // receiver's lock, or a pending CCA / frame-end callback (a truncated
    // frame can outlive the active list through those). Frames are keyed by
    // AirFrame::seq; restore materialises each exactly once and every
    // reference re-links to that shared instance, preserving both aliasing
    // and the pool free-list lengths.
    // ------------------------------------------------------------------

    void save_state(sim::ckpt::Writer& w, net::PacketSaveCtx& pkts) const;
    void load_state(sim::ckpt::Reader& r, net::PacketLoadCtx& pkts);

    /// Registers the MAC-layer event rebuilders (CCA delivery, CSMA attempt,
    /// tx end, frame end) for Simulator::load_kernel.
    void register_rebuilders(sim::ckpt::CallbackRegistry& reg);

    /// Frame restored by load_state, by launch number. Throws
    /// std::runtime_error for unknown seqs (blob inconsistency). Valid
    /// between load_state and finish_restore.
    const std::shared_ptr<AirFrame>& restored_frame(std::uint64_t seq) const;

    /// Drops the restore table once every subsystem and the kernel have
    /// re-linked their frame references, then re-syncs the spatial caches
    /// and stamps the straight run's index/radius-cache bookkeeping back on
    /// (construction and availability-restore churned them). Must run LAST:
    /// it reads the radios' restored positions.
    void finish_restore();

    /// Pool warmth (free-list lengths + stats) for the frame / sensed /
    /// packet pools. Saved and loaded *after* every subsystem's state, since
    /// later subsystems still acquire pooled packets during restore.
    void save_pool_warmth(sim::ckpt::Writer& w) const;
    void load_pool_warmth(sim::ckpt::Reader& r);

  private:
    void sweep_expired();
    /// CCA-delay delivery tail, shared by the live schedule in
    /// begin_transmission and the kMediumCca checkpoint rebuilder so a
    /// restored callback behaves identically to the one it replaces.
    void cca_fire(Radio* r, const std::shared_ptr<const AirFrame>& frame,
                  double rssi_dbm, bool decodable);
    void rebuild_hash_if_stale();
    void refresh_tree_if_stale();
    std::uint64_t hash_cell_key(double x, double y) const;
    bool hierarchical() const { return config_.index == MediumIndex::Hierarchical; }

    sim::Simulator& sim_;
    phy::Channel channel_;
    MediumConfig config_;
    std::vector<Radio*> radios_;
    /// available_[i] mirrors radios_[i]'s power availability (not off, not
    /// in outage); kept here so the medium can gate propagation and index
    /// membership without poking radio internals per receiver.
    std::vector<std::uint8_t> available_;
    /// note_stamp_[i]: sim time (ns) of radio i's last note_position_moved,
    /// for coalescing duplicate same-timestamp notes (a position changes at
    /// most once per instant). kNeverNoted never collides with a real time.
    static constexpr std::int64_t kNeverNoted = std::numeric_limits<std::int64_t>::min();
    std::vector<std::int64_t> note_stamp_;
    /// Non-const so truncate_transmission can pull a frame's end forward;
    /// radios only ever see shared_ptr<const AirFrame>.
    std::vector<std::shared_ptr<AirFrame>> active_;
    /// Weak registry of launched frames, compacted alongside the active
    /// sweep. Checkpointing locks it to enumerate every frame still alive
    /// anywhere (locks and pending callbacks hold strong refs the active
    /// list alone would miss).
    std::vector<std::pair<std::uint64_t, std::weak_ptr<AirFrame>>> launched_;
    /// seq -> restored frame, populated by load_state so radios and event
    /// rebuilders re-link references; cleared by finish_restore().
    std::unordered_map<std::uint64_t, std::shared_ptr<AirFrame>> restore_frames_;
    /// Snapshot-time index bookkeeping, parked by load_state and stamped
    /// back by finish_restore() once the restore churn is over.
    spatial::CellTreeStats restore_tree_stats_;
    spatial::RadiusCacheStats restore_cache_stats_;
    /// Base seed of the counter-based per-(frame, receiver) RSSI draws; mixed
    /// with the frame sequence number and the receiver id, so a draw depends
    /// only on *which* frame reaches *which* radio — never on attach order or
    /// on how many other radios were sampled before it.
    std::uint64_t rssi_seed_base_ = 0;
    /// Same scheme for the per-(frame, receiver) loss-burst drop draws,
    /// under its own base seed so loss draws never correlate with RSSI.
    std::uint64_t loss_seed_base_ = 0;
    std::uint64_t frame_seq_ = 0;
    phy::LossSchedule loss_;
    Stats stats_;
    FlatIndexStats flat_stats_;
    obs::Obs obs_;

    /// Per-simulation slab pools. Steady-state beacon traffic recycles
    /// AirFrames (control block + object in one pooled block), their
    /// sensed-index vectors and SYNC Packets, so the transmission fast
    /// path performs no heap allocation once warm. Allocator copies hold the
    /// cores via shared_ptr, so pooled blocks safely outlive the Medium
    /// (queue callbacks keep shared_ptr<AirFrame> past world teardown).
    sim::ObjectPool<AirFrame> frame_pool_;
    sim::ObjectPool<net::Packet> packet_pool_;
    std::shared_ptr<sim::SlabCore> sensed_core_ = std::make_shared<sim::SlabCore>();

    // --- hierarchical index (primary) ---------------------------------------
    /// Cell side is the cull radius plus the truncation slack, so both the
    /// fan-out query (radius == cull radius) and the truncation fan-out
    /// (radius == cull radius + slack) stay within the tree's exact 3x3
    /// neighbourhood bound.
    spatial::CellTree tree_;
    /// Set by note_positions_moved(); the next transmission runs a full
    /// refresh_all sweep. Steady-state traffic uses note_position_moved()
    /// and never sets it.
    bool bulk_stale_ = false;
    /// LRU-cached 3x3 window masks for the hot cull-radius query (the
    /// density-adaptive query radius); armed in the constructor for exactly
    /// cull_radius_m_.
    spatial::RadiusCache radius_cache_;
    /// SoA gather target of the vectorized fanout (candidate indices +
    /// cached positions in, per-lane cull verdicts and channel terms out);
    /// recycled across transmissions so steady-state fanout never allocates.
    fanout::Batch fanout_batch_;

    // --- flat hash (oracle) -------------------------------------------------
    // A lazily rebuilt uniform spatial hash over radio positions, cell side
    // == cull radius so a 3x3 neighbourhood covers every in-radius receiver.
    // Rebuilt from scratch whenever any position changes — the behaviour the
    // hierarchical index replaced, kept for the byte-identity gate.
    double cull_radius_m_ = 0.0;
    /// Receivers farther than this from a truncated frame's transmit
    /// position cannot have sensed it (cull radius + slack for the distance
    /// a robot can travel during one frame's airtime).
    double truncate_radius_m_ = 0.0;
    double inv_hash_cell_ = 0.0;
    std::uint64_t position_epoch_ = 0;
    bool hash_valid_ = false;
    std::uint64_t hash_epoch_ = 0;
    std::size_t hash_radio_count_ = 0;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> hash_cells_;
#ifndef NDEBUG
    /// Positions at the last rebuild, to assert nobody moved a radio without
    /// calling note_position[s]_moved() — the position contract.
    std::vector<geom::Vec2> hash_positions_;
#endif

    /// Per-transmission scratch, reused across frames: the sensed receivers
    /// (attach index + sampled RSSI) of the frame under construction. Sized
    /// by the neighbourhood, never by the team — the fan-out path carries no
    /// O(attached radios) work or storage.
    struct SensedCandidate {
        std::uint32_t idx;
        double rssi_dbm;
    };
    std::vector<SensedCandidate> sensed_scratch_;
};

}  // namespace cocoa::mac
