#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mac/airframe.hpp"
#include "obs/obs.hpp"
#include "phy/channel.hpp"
#include "phy/loss.hpp"
#include "sim/pool.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace cocoa::mac {

class Radio;

struct MediumConfig {
    /// An interfering frame within this margin (dB) of the locked frame's
    /// power corrupts the reception; weaker interference is captured over.
    double capture_margin_db = 10.0;
    /// Clear-channel-assessment latency: a transmission is only sensed (and
    /// receivable) this long after it starts. Two stations whose backoffs
    /// expire within this window both transmit — the DCF vulnerability slot
    /// that makes collisions physical.
    sim::Duration cca_delay = sim::Duration::micros(15);
    /// Skip radios beyond the channel's max-influence radius when fanning a
    /// transmission out (Glomosim-style interference culling). Because RSSI
    /// draws are counter-based per (frame, receiver) and the clamped
    /// shadowing tail bounds the radius conservatively, culling is exact:
    /// the simulation is bit-identical with it on or off.
    bool interference_culling = true;
};

/// The shared wireless medium: propagates every transmission to all attached
/// radios using the channel model, sampling per-link RSSI and applying
/// wake/sleep, sensitivity, collision and capture rules.
///
/// Also owns the per-simulation observability context (counter registry +
/// trace sink): every radio, agent and multicast node shares the medium, so
/// they all register their counters and emit trace events through obs().
class Medium {
  public:
    struct Stats {
        std::uint64_t frames_sent = 0;
        /// Frames a sleeping radio would have decoded had it been awake.
        std::uint64_t missed_asleep = 0;
        /// Receivers actually visited (RSSI sampled) across transmissions,
        /// and receivers skipped by interference culling. Deliberately NOT
        /// registered in the counter registry: culling must be unobservable,
        /// and the CI exactness gate diffs `--counters` output between
        /// culling on and off. Tests read them through stats() instead.
        std::uint64_t radios_visited = 0;
        std::uint64_t radios_culled = 0;
        /// In-flight frames cut short by their transmitter dying, and
        /// receptions suppressed by a fault-injected loss burst. Registered
        /// (as fault.*) only when a FaultInjector arms a non-empty plan, so
        /// the off-path `--counters` output is unchanged.
        std::uint64_t frames_truncated = 0;
        std::uint64_t fault_rx_dropped = 0;
    };

    Medium(sim::Simulator& sim, const phy::Channel& channel, MediumConfig config = {});

    Medium(const Medium&) = delete;
    Medium& operator=(const Medium&) = delete;

    /// Registers a radio; the pointer must outlive the medium's use.
    void attach(Radio& radio);

    /// Starts propagating `packet` from `sender` for `airtime`. Called by
    /// Radio::begin_tx only.
    void begin_transmission(Radio& sender, const net::Packet& packet,
                            sim::Duration airtime);

    /// Cuts `sender`'s in-flight frame short at the current time (the
    /// transmitter died or dropped into an outage): the frame becomes
    /// undecodable, every other radio's carrier-sense state is rebuilt, and
    /// receivers locked on it abort (counted as rx_aborted). No-op when the
    /// sender has no frame in flight.
    void truncate_transmission(Radio& sender);

    /// Adds a fault-injected loss burst: while it lasts, every propagated
    /// frame is attenuated and/or dropped per receiver (counter-based draws,
    /// so determinism is unaffected). Fault path only — with no bursts the
    /// transmission path is byte-identical to a build without this feature.
    void add_loss_burst(const phy::LossBurst& burst) { loss_.add(burst); }

    /// Latest end time of any in-flight frame whose *sampled* power reached
    /// the carrier-sense threshold at `listener` (the verdict recorded on the
    /// AirFrame at transmission start); used to rebuild carrier-sense state
    /// after a radio wakes mid-frame, consistent with the live receive path.
    sim::TimePoint sensed_until_for(const Radio& listener) const;

    /// Invalidates the culling spatial hash. CONTRACT: any code that moves a
    /// position visible through Radio::position() must call this afterwards
    /// (CocoaAgent::tick does, right after advancing mobility). The hash is
    /// reused across transmissions until the epoch changes, which is what
    /// keeps the per-transmission cost sub-linear; debug builds verify the
    /// contract by snapshotting positions at rebuild time.
    void note_positions_moved() { ++position_epoch_; }

    /// The culling radius actually in use (slightly inflated over the
    /// channel's max-influence range to absorb its bisection rounding).
    double cull_radius_m() const { return cull_radius_m_; }

    const phy::Channel& channel() const { return channel_; }
    double capture_margin_db() const { return config_.capture_margin_db; }
    const Stats& stats() const { return stats_; }
    sim::Simulator& simulator() { return sim_; }

    /// Slab pool recycling net::Packet blocks, for components that build
    /// steady-state packets (CocoaAgent's SYNC payloads). Stats surface as
    /// kernel.pool.packet.* counters.
    sim::ObjectPool<net::Packet>& packet_pool() { return packet_pool_; }

    /// Frame-pool statistics (kernel.pool.frame.* / kernel.pool.sensed.*),
    /// exposed for tests that assert steady-state recycling directly.
    const sim::PoolStats& frame_pool_stats() const { return frame_pool_.stats(); }
    const sim::PoolStats& sensed_pool_stats() const { return sensed_core_->stats(); }

    obs::Obs& obs() { return obs_; }
    const obs::Obs& obs() const { return obs_; }

  private:
    void sweep_expired();
    std::size_t index_of(const Radio& radio) const;
    void rebuild_hash_if_stale();
    std::uint64_t hash_cell_key(double x, double y) const;

    sim::Simulator& sim_;
    phy::Channel channel_;
    MediumConfig config_;
    std::vector<Radio*> radios_;
    /// Non-const so truncate_transmission can pull a frame's end forward;
    /// radios only ever see shared_ptr<const AirFrame>.
    std::vector<std::shared_ptr<AirFrame>> active_;
    /// Base seed of the counter-based per-(frame, receiver) RSSI draws; mixed
    /// with the frame sequence number and the receiver id, so a draw depends
    /// only on *which* frame reaches *which* radio — never on attach order or
    /// on how many other radios were sampled before it.
    std::uint64_t rssi_seed_base_ = 0;
    /// Same scheme for the per-(frame, receiver) loss-burst drop draws,
    /// under its own base seed so loss draws never correlate with RSSI.
    std::uint64_t loss_seed_base_ = 0;
    std::uint64_t frame_seq_ = 0;
    phy::LossSchedule loss_;
    Stats stats_;
    obs::Obs obs_;

    /// Per-simulation slab pools. Steady-state beacon traffic recycles
    /// AirFrames (control block + object in one pooled block), their
    /// sensed_by verdict vectors and SYNC Packets, so the transmission fast
    /// path performs no heap allocation once warm. Allocator copies hold the
    /// cores via shared_ptr, so pooled blocks safely outlive the Medium
    /// (queue callbacks keep shared_ptr<AirFrame> past world teardown).
    sim::ObjectPool<AirFrame> frame_pool_;
    sim::ObjectPool<net::Packet> packet_pool_;
    std::shared_ptr<sim::SlabCore> sensed_core_ = std::make_shared<sim::SlabCore>();

    // Interference culling: a lazily rebuilt uniform spatial hash over radio
    // positions, cell side == cull radius so a 3x3 neighbourhood covers every
    // in-radius receiver.
    double cull_radius_m_ = 0.0;
    double inv_hash_cell_ = 0.0;
    std::uint64_t position_epoch_ = 0;
    bool hash_valid_ = false;
    std::uint64_t hash_epoch_ = 0;
    std::size_t hash_radio_count_ = 0;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> hash_cells_;
#ifndef NDEBUG
    /// Positions at the last rebuild, to assert nobody moved a radio without
    /// calling note_positions_moved().
    std::vector<geom::Vec2> hash_positions_;
#endif

    // Per-transmission scratch, reused across frames to avoid reallocating.
    std::vector<double> rssi_scratch_;
    std::vector<std::uint32_t> sensed_idx_scratch_;
};

}  // namespace cocoa::mac
