#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mac/airframe.hpp"
#include "obs/obs.hpp"
#include "phy/channel.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace cocoa::mac {

class Radio;

struct MediumConfig {
    /// An interfering frame within this margin (dB) of the locked frame's
    /// power corrupts the reception; weaker interference is captured over.
    double capture_margin_db = 10.0;
    /// Clear-channel-assessment latency: a transmission is only sensed (and
    /// receivable) this long after it starts. Two stations whose backoffs
    /// expire within this window both transmit — the DCF vulnerability slot
    /// that makes collisions physical.
    sim::Duration cca_delay = sim::Duration::micros(15);
};

/// The shared wireless medium: propagates every transmission to all attached
/// radios using the channel model, sampling per-link RSSI and applying
/// wake/sleep, sensitivity, collision and capture rules.
///
/// Also owns the per-simulation observability context (counter registry +
/// trace sink): every radio, agent and multicast node shares the medium, so
/// they all register their counters and emit trace events through obs().
class Medium {
  public:
    struct Stats {
        std::uint64_t frames_sent = 0;
        /// Frames a sleeping radio would have decoded had it been awake.
        std::uint64_t missed_asleep = 0;
    };

    Medium(sim::Simulator& sim, const phy::Channel& channel, MediumConfig config = {});

    Medium(const Medium&) = delete;
    Medium& operator=(const Medium&) = delete;

    /// Registers a radio; the pointer must outlive the medium's use.
    void attach(Radio& radio);

    /// Starts propagating `packet` from `sender` for `airtime`. Called by
    /// Radio::begin_tx only.
    void begin_transmission(Radio& sender, const net::Packet& packet,
                            sim::Duration airtime);

    /// Latest end time of any in-flight frame whose *sampled* power reached
    /// the carrier-sense threshold at `listener` (the verdict recorded on the
    /// AirFrame at transmission start); used to rebuild carrier-sense state
    /// after a radio wakes mid-frame, consistent with the live receive path.
    sim::TimePoint sensed_until_for(const Radio& listener) const;

    const phy::Channel& channel() const { return channel_; }
    double capture_margin_db() const { return config_.capture_margin_db; }
    const Stats& stats() const { return stats_; }
    sim::Simulator& simulator() { return sim_; }

    obs::Obs& obs() { return obs_; }
    const obs::Obs& obs() const { return obs_; }

  private:
    void sweep_expired();
    std::size_t index_of(const Radio& radio) const;

    sim::Simulator& sim_;
    phy::Channel channel_;
    MediumConfig config_;
    std::vector<Radio*> radios_;
    std::vector<std::shared_ptr<const AirFrame>> active_;
    sim::RandomStream rssi_rng_;
    Stats stats_;
    obs::Obs obs_;
};

}  // namespace cocoa::mac
