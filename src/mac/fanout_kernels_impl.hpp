// Blocked fanout-kernel implementation, instantiated once per ISA.
//
// Each translation unit defines COCOA_FANOUT_ISA_NS (baseline / avx2 /
// avx512) and includes this header; the only difference between
// instantiations is the -m ISA flags the TU is compiled with. The squared-
// distance pass is GCC/Clang vector extensions over a fixed 8-lane block
// (mul/add only, contraction disabled per TU, so every ISA computes the same
// IEEE doubles), and the per-lane finish — sqrt plus the three channel terms
// — runs in ascending lane order through out-of-line phy::Channel calls,
// which are the very functions the scalar medium loop uses. Correctly-
// rounded sqrt plus shared out-of-line channel math means every
// instantiation produces byte-identical outputs; the SIMD-on/off CI gate
// diffs whole-swarm output to pin this down.
//
// This header must only be included by the fanout_kernels*.cpp TUs.

#include <cmath>
#include <cstring>

#include "mac/fanout_kernels.hpp"
#include "phy/channel.hpp"

// Vectors wider than the baseline ISA are passed via memory; benign here
// (everything inlines into the entry point) but gcc notes the ABI difference
// per function without the pragma.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

namespace cocoa::mac::fanout {
namespace COCOA_FANOUT_ISA_NS {

namespace {

typedef double vd __attribute__((vector_size(kBlock * sizeof(double))));

inline vd load(const double* p) {
    vd v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline vd bcast(double x) { return vd{x, x, x, x, x, x, x, x}; }

}  // namespace

std::size_t cull_and_prepare(const CullPlan& p) {
    const vd txx = bcast(p.tx_x);
    const vd txy = bcast(p.tx_y);
    const vd r2v = bcast(p.r2);
    const std::size_t blocks = p.lanes / kBlock;
    std::size_t kept = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t base = b * kBlock;
        // Whole-block squared distances: padding lanes hold +inf positions,
        // so dq is +inf there and the cull rejects them like any far radio.
        const vd dx = load(p.x + base) - txx;
        const vd dy = load(p.y + base) - txy;
        const vd dq = dx * dx + dy * dy;
        // Lane mask of the cull compare (all-ones where within the radius);
        // an OR-reduce rejects fully-culled blocks — the common case in a
        // dense window, where most candidates are interference-range only —
        // with no per-lane work at all. NaN-free: dq is +inf at worst.
        const auto within = dq <= r2v;
        long long any = within[0];
        for (std::size_t l = 1; l < kBlock; ++l) any |= within[l];
        if (any == 0) {
            std::memset(p.keep + base, 0, kBlock);
            continue;
        }
        for (std::size_t l = 0; l < kBlock; ++l) {
            const std::size_t i = base + l;
            if (within[l] == 0) {
                p.keep[i] = 0;
                continue;
            }
            p.keep[i] = 1;
            p.kept_lanes[kept] = static_cast<std::uint32_t>(i);
            ++kept;
            const double d = std::sqrt(dq[l]);
            p.dist[i] = d;
            p.mean_dbm[i] = p.channel->mean_rssi_dbm(d);
            p.sigma_db[i] = p.channel->shadowing_sigma_db(d);
            p.fade_db[i] = p.channel->fade_mean_db(d);
        }
    }
    return kept;
}

}  // namespace COCOA_FANOUT_ISA_NS
}  // namespace cocoa::mac::fanout

#pragma GCC diagnostic pop
