#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace cocoa::phy {
class Channel;
}

namespace cocoa::mac {

/// Vectorized transmission-fanout kernels behind Medium::begin_transmission.
///
/// The medium's hot loop evaluates, for every spatial-index candidate around
/// a transmitter: squared distance, the exact-radius cull, and the three
/// deterministic channel terms (path-loss mean, shadowing sigma, fade mean)
/// that feed the per-(frame, receiver) RSSI draw. fanout gathers candidates
/// into a reusable SoA batch and runs that evaluation blocked over kBlock
/// lanes, mirroring core/grid_kernels: a baseline instantiation compiled with
/// default ISA flags plus AVX2/AVX-512 instantiations behind a runtime
/// dispatcher, all byte-identical by construction.
///
/// Determinism contract: the distance arithmetic is mul/add only with
/// contraction disabled on every instantiation (no ISA gains an FMA another
/// lacks), std::sqrt is correctly rounded on every path, and the channel
/// terms are computed by out-of-line phy::Channel calls — the same functions
/// the scalar loop uses — in fixed ascending lane order. The stochastic RSSI
/// draw itself stays scalar in the medium (counter-based per-(frame,
/// receiver) generators), so draw values and order are untouched; a
/// -DCOCOA_SIMD=OFF build, the runtime Generic path, AVX2 and AVX-512 all
/// produce byte-identical swarm output, which CI diffs.
namespace fanout {

/// Lane count of the blocked layout — the unit the gather pads to. Fixed
/// across ISAs (it defines the evaluation order, not the vector width).
inline constexpr std::size_t kBlock = 8;

constexpr std::size_t padded(std::size_t n) {
    return (n + kBlock - 1) / kBlock * kBlock;
}

/// Reusable SoA gather target: candidate attach indices and cached positions
/// in, per-lane cull verdicts and channel terms out. Owned by the medium and
/// recycled across transmissions (capacity never shrinks), so steady-state
/// fanout is allocation-free once warmed.
struct Batch {
    std::size_t count = 0;           ///< candidates gathered (not padded)
    std::vector<std::uint32_t> idx;  ///< attach index per candidate
    std::vector<double> x;           ///< cached position, padded with +inf
    std::vector<double> y;
    // Outputs of cull_and_prepare, valid for lanes [0, lanes()):
    std::vector<std::uint8_t> keep;  ///< 1 = within the cull radius
    std::vector<double> dist;        ///< exact distance (kept lanes only)
    std::vector<double> mean_dbm;    ///< Channel::mean_rssi_dbm(dist)
    std::vector<double> sigma_db;    ///< Channel::shadowing_sigma_db(dist)
    std::vector<double> fade_db;     ///< Channel::fade_mean_db(dist)
    /// Compacted ascending lane indices of the kept lanes — the first
    /// `cull_and_prepare(...)` entries are valid, so the consumer touches
    /// only survivors instead of re-scanning every lane (in a dense window
    /// most candidates cull, and the rescan would rival the scalar loop).
    std::vector<std::uint32_t> kept_lanes;

    void clear() { count = 0; }

    void push(std::uint32_t id, double px, double py) {
        if (count == idx.size()) grow();
        idx[count] = id;
        x[count] = px;
        y[count] = py;
        ++count;
    }

    /// Lanes the kernel evaluates: count rounded up to whole blocks.
    std::size_t lanes() const { return padded(count); }

    /// Pads the position tail with +inf (squared distance overflows past any
    /// radius, so padding lanes always cull) and sizes the output arrays.
    /// Call once after the gather, before cull_and_prepare.
    void seal();

    std::size_t capacity() const { return idx.size(); }

  private:
    void grow();
};

/// One sealed batch's kernel inputs: everything by pointer so the dispatch
/// boundary stays POD (mirrors gridk's plan structs).
struct CullPlan {
    const double* x = nullptr;  ///< padded(count) lanes, +inf tail
    const double* y = nullptr;
    std::size_t lanes = 0;
    double tx_x = 0.0;
    double tx_y = 0.0;
    double r2 = 0.0;  ///< squared cull radius
    const phy::Channel* channel = nullptr;
    std::uint8_t* keep = nullptr;
    double* dist = nullptr;
    double* mean_dbm = nullptr;
    double* sigma_db = nullptr;
    double* fade_db = nullptr;
    std::uint32_t* kept_lanes = nullptr;
};

/// Builds the plan over a sealed batch.
CullPlan make_plan(Batch& batch, geom::Vec2 tx_pos, double r2,
                   const phy::Channel& channel);

/// Culls every lane against r2 (blocked squared-distance pass) and computes
/// dist/mean/sigma/fade for the kept lanes in ascending lane order. Returns
/// the number of kept lanes. Dispatched.
std::size_t cull_and_prepare(const CullPlan& plan);

/// The ISA the dispatcher selected at startup: "avx512", "avx2" or
/// "generic". set_force_path does not change this.
const char* active_isa();

/// Overrides for tests and the `_scalar` twin benchmarks:
///  - Generic routes cull_and_prepare to the portable blocked instantiation
///    regardless of the dispatched ISA (byte-identical results — the
///    contract the bitwise tests pin);
///  - Serial makes the medium bypass the batch entirely and run its
///    per-candidate scalar loop (the pre-kernel code path — the regression
///    anchor the BM_*_scalar benches measure against). Serial output is
///    byte-identical too: the scalar loop performs the same IEEE operations
///    per candidate.
enum class ForcePath { None, Generic, Serial };
void set_force_path(ForcePath path);
ForcePath force_path();

}  // namespace fanout
}  // namespace cocoa::mac
