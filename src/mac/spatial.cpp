#include "mac/spatial.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace cocoa::mac::spatial {

namespace {

/// Conservative geometry pad (metres) for window classification: entries are
/// bucketed by floor(pos * inv_cell), whose rounding can park a boundary
/// point a few ulps outside its cell's nominal box, and the query center's
/// sub-cell offset carries the same slop. A micron of padding dwarfs both
/// (coordinates are metres, worlds are kilometres) while being statistically
/// invisible against the ~100 m cull radius.
constexpr double kGeometryPadM = 1e-6;

/// Packs (cell, sub-cell quantum) into the LRU key: 28 signed bits per cell
/// coordinate (aliasing would need ~2.7e8 cells of ~100 m each — a 2.7e10 m
/// world), 2 bits per quantum axis.
std::uint64_t mask_key(std::int64_t ccx, std::int64_t ccy, int sx, int sy) {
    const std::uint64_t x = static_cast<std::uint64_t>(ccx) & 0xfffffffull;
    const std::uint64_t y = static_cast<std::uint64_t>(ccy) & 0xfffffffull;
    return (x << 36) | (y << 8) | (static_cast<std::uint64_t>(sx) << 2) |
           static_cast<std::uint64_t>(sy);
}

}  // namespace

void RadiusCache::configure(double cell_side_m, double radius_m,
                            std::size_t capacity,
                            std::uint32_t dense_population) {
    if (capacity == 0) {  // disarm
        capacity_ = 0;
        radius_m_ = -1.0;
        lru_.clear();
        map_.clear();
        return;
    }
    if (!(cell_side_m > 0.0) || !(radius_m > 0.0) || radius_m > cell_side_m) {
        throw std::invalid_argument(
            "RadiusCache: need 0 < radius <= cell side for 3x3 window masks");
    }
    cell_side_m_ = cell_side_m;
    quantum_m_ = cell_side_m / kQuantaPerSide;
    radius_m_ = radius_m;
    capacity_ = capacity;
    dense_population_ = dense_population;
    lru_.clear();
    map_.clear();
}

std::uint16_t RadiusCache::window_mask(std::int64_t ccx, std::int64_t ccy,
                                       geom::Vec2 center) {
    ++stats_.lookups;
    // Quantize the center's offset within its cell. The clamp keeps FP slop
    // in the offset from escaping the cell; classify() pads the quantum
    // square so the mask stays conservative either way.
    const int sx = std::clamp(
        static_cast<int>(std::floor(
            (center.x - static_cast<double>(ccx) * cell_side_m_) / quantum_m_)),
        0, kQuantaPerSide - 1);
    const int sy = std::clamp(
        static_cast<int>(std::floor(
            (center.y - static_cast<double>(ccy) * cell_side_m_) / quantum_m_)),
        0, kQuantaPerSide - 1);
    const std::uint64_t key = mask_key(ccx, ccy, sx, sy);
    if (const auto it = map_.find(key); it != map_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->second;
    }
    ++stats_.misses;
    const std::uint16_t mask = classify(ccx, ccy, sx, sy);
    lru_.emplace_front(key, mask);
    map_.emplace(key, lru_.begin());
    if (map_.size() > capacity_) {
        ++stats_.evictions;
        map_.erase(lru_.back().first);
        lru_.pop_back();
    }
    return mask;
}

std::uint16_t RadiusCache::classify(std::int64_t ccx, std::int64_t ccy, int sx,
                                    int sy) const {
    // The quantum square every center mapping to this key lies in, padded so
    // one mask is valid for all of them (conservative over the quantum).
    const double qlo_x =
        static_cast<double>(ccx) * cell_side_m_ + sx * quantum_m_ - kGeometryPadM;
    const double qhi_x = qlo_x + quantum_m_ + 2.0 * kGeometryPadM;
    const double qlo_y =
        static_cast<double>(ccy) * cell_side_m_ + sy * quantum_m_ - kGeometryPadM;
    const double qhi_y = qlo_y + quantum_m_ + 2.0 * kGeometryPadM;
    const double r2 = radius_m_ * radius_m_;

    std::uint16_t mask = 0;
    int bit = 0;
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t dx = -1; dx <= 1; ++dx, ++bit) {
            // Nearest per-axis gap between the (padded) window cell's box and
            // the quantum square; the cell is prunable only when even that
            // nearest approach lies beyond the radius.
            const double clo_x =
                static_cast<double>(ccx + dx) * cell_side_m_ - kGeometryPadM;
            const double chi_x = clo_x + cell_side_m_ + 2.0 * kGeometryPadM;
            const double clo_y =
                static_cast<double>(ccy + dy) * cell_side_m_ - kGeometryPadM;
            const double chi_y = clo_y + cell_side_m_ + 2.0 * kGeometryPadM;
            const double gx = std::max({0.0, clo_x - qhi_x, qlo_x - chi_x});
            const double gy = std::max({0.0, clo_y - qhi_y, qlo_y - chi_y});
            if (gx * gx + gy * gy <= r2) mask |= std::uint16_t{1} << bit;
        }
    }
    return mask;
}

CellTree::CellTree(double cell_side_m) : cell_side_m_(cell_side_m) {
    if (!(cell_side_m > 0.0)) {
        throw std::invalid_argument("CellTree: cell side must be positive");
    }
    inv_cell_ = 1.0 / cell_side_m;
}

std::int64_t CellTree::cell_coord(double v) const {
    return static_cast<std::int64_t>(std::floor(v * inv_cell_));
}

std::uint64_t CellTree::tile_key(std::int64_t tx, std::int64_t ty) {
    return (static_cast<std::uint64_t>(tx) << 32) ^
           (static_cast<std::uint64_t>(ty) & 0xffffffffull);
}

unsigned CellTree::local_cell(std::int64_t cx, std::int64_t cy) {
    // Low bits select the cell inside the 8x8 tile; arithmetic shift in
    // cell_coord keeps this consistent for negative coordinates.
    const unsigned lx = static_cast<unsigned>(cx & (kTileSide - 1));
    const unsigned ly = static_cast<unsigned>(cy & (kTileSide - 1));
    return ly * kTileSide + lx;
}

CellTree::Tile* CellTree::find_tile(std::int64_t tx, std::int64_t ty) const {
    const auto it = tiles_.find(tile_key(tx, ty));
    return it == tiles_.end() ? nullptr : it->second.get();
}

CellTree::Tile& CellTree::tile_for(std::int64_t tx, std::int64_t ty) {
    std::unique_ptr<Tile>& slot = tiles_[tile_key(tx, ty)];
    if (slot == nullptr) slot = std::make_unique<Tile>();
    return *slot;
}

void CellTree::place(std::uint32_t id, std::int64_t cx, std::int64_t cy,
                     geom::Vec2 pos) {
    Tile& tile = tile_for(cx >> kTileShift, cy >> kTileShift);
    const unsigned local = local_cell(cx, cy);
    std::vector<Slot>& bucket = tile.cells[local];
    bucket.push_back(Slot{id, pos});
    tile.occupancy |= std::uint64_t{1} << local;
    ++tile.population;
    Entry& e = entries_[id];
    e.tile = &tile;
    e.cx = cx;
    e.cy = cy;
    e.slot = static_cast<std::uint32_t>(bucket.size() - 1);
    e.pos = pos;
}

void CellTree::unplace(std::uint32_t id) {
    Entry& e = entries_[id];
    Tile& tile = *e.tile;
    const unsigned local = local_cell(e.cx, e.cy);
    std::vector<Slot>& bucket = tile.cells[local];
    // Swap-pop; patch the moved entry's back-reference.
    const std::uint32_t last = static_cast<std::uint32_t>(bucket.size() - 1);
    if (e.slot != last) {
        bucket[e.slot] = bucket[last];
        entries_[bucket[e.slot].id].slot = e.slot;
    }
    bucket.pop_back();
    if (bucket.empty()) tile.occupancy &= ~(std::uint64_t{1} << local);
    --tile.population;
    if (tile.population == 0) {
        // Reclaim the empty tile so a swarm sweeping across a city never
        // accretes dead tiles along its wake.
        tiles_.erase(tile_key(e.cx >> kTileShift, e.cy >> kTileShift));
    }
    e.tile = nullptr;
}

void CellTree::insert(std::uint32_t id, geom::Vec2 pos) {
    if (id >= entries_.size()) entries_.resize(id + 1);
    assert(entries_[id].tile == nullptr && "CellTree::insert: id already present");
    if (entries_[id].tile != nullptr) unplace(id);
    place(id, cell_coord(pos.x), cell_coord(pos.y), pos);
    ++size_;
    ++stats_.inserts;
}

void CellTree::remove(std::uint32_t id) {
    if (!contains(id)) return;
    unplace(id);
    --size_;
    ++stats_.removes;
}

void CellTree::update(std::uint32_t id, geom::Vec2 pos) {
    if (!contains(id)) return;
    update_present(id, pos);
}

std::uint32_t CellTree::tile_population_at(geom::Vec2 pos) const {
    const Tile* tile = find_tile(cell_coord(pos.x) >> kTileShift,
                                 cell_coord(pos.y) >> kTileShift);
    return tile == nullptr ? 0 : tile->population;
}

std::int64_t CellTree::window_reach(double radius) const {
    // radius * inv_cell rounds either way; the (1 - 1e-12) shave keeps the
    // medium's hot case (radius == cell side minus the truncation slack, or
    // exactly equal for truncation queries) at reach 1 instead of tipping to
    // 2 on an upward rounding, while any real overshoot past a cell boundary
    // still widens the window.
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::floor(radius * inv_cell_ * (1.0 - 1e-12))) + 1);
}

bool CellTree::cell_outside_disk(std::int64_t cx, std::int64_t cy,
                                 geom::Vec2 center, double r2) const {
    const double lo_x = static_cast<double>(cx) * cell_side_m_ - kGeometryPadM;
    const double hi_x = lo_x + cell_side_m_ + 2.0 * kGeometryPadM;
    const double lo_y = static_cast<double>(cy) * cell_side_m_ - kGeometryPadM;
    const double hi_y = lo_y + cell_side_m_ + 2.0 * kGeometryPadM;
    const double gx = std::max({0.0, lo_x - center.x, center.x - hi_x});
    const double gy = std::max({0.0, lo_y - center.y, center.y - hi_y});
    return gx * gx + gy * gy > r2;
}

void CellTree::update_present(std::uint32_t id, geom::Vec2 pos) {
    Entry& e = entries_[id];
    const std::int64_t cx = cell_coord(pos.x);
    const std::int64_t cy = cell_coord(pos.y);
    if (cx == e.cx && cy == e.cy) {
        // Same cell: refresh the cached position in place (queries hand the
        // cached value to callers, and the medium's debug contract check
        // compares it against the live provider).
        e.pos = pos;
        e.tile->cells[local_cell(cx, cy)][e.slot].pos = pos;
        ++stats_.in_cell_updates;
        return;
    }
    unplace(id);
    place(id, cx, cy, pos);
    ++stats_.migrations;
}

}  // namespace cocoa::mac::spatial
