#include "mac/spatial.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace cocoa::mac::spatial {

CellTree::CellTree(double cell_side_m) : cell_side_m_(cell_side_m) {
    if (!(cell_side_m > 0.0)) {
        throw std::invalid_argument("CellTree: cell side must be positive");
    }
    inv_cell_ = 1.0 / cell_side_m;
}

std::int64_t CellTree::cell_coord(double v) const {
    return static_cast<std::int64_t>(std::floor(v * inv_cell_));
}

std::uint64_t CellTree::tile_key(std::int64_t tx, std::int64_t ty) {
    return (static_cast<std::uint64_t>(tx) << 32) ^
           (static_cast<std::uint64_t>(ty) & 0xffffffffull);
}

unsigned CellTree::local_cell(std::int64_t cx, std::int64_t cy) {
    // Low bits select the cell inside the 8x8 tile; arithmetic shift in
    // cell_coord keeps this consistent for negative coordinates.
    const unsigned lx = static_cast<unsigned>(cx & (kTileSide - 1));
    const unsigned ly = static_cast<unsigned>(cy & (kTileSide - 1));
    return ly * kTileSide + lx;
}

CellTree::Tile* CellTree::find_tile(std::int64_t tx, std::int64_t ty) const {
    const auto it = tiles_.find(tile_key(tx, ty));
    return it == tiles_.end() ? nullptr : it->second.get();
}

CellTree::Tile& CellTree::tile_for(std::int64_t tx, std::int64_t ty) {
    std::unique_ptr<Tile>& slot = tiles_[tile_key(tx, ty)];
    if (slot == nullptr) slot = std::make_unique<Tile>();
    return *slot;
}

void CellTree::place(std::uint32_t id, std::int64_t cx, std::int64_t cy,
                     geom::Vec2 pos) {
    Tile& tile = tile_for(cx >> kTileShift, cy >> kTileShift);
    const unsigned local = local_cell(cx, cy);
    std::vector<Slot>& bucket = tile.cells[local];
    bucket.push_back(Slot{id, pos});
    tile.occupancy |= std::uint64_t{1} << local;
    ++tile.population;
    Entry& e = entries_[id];
    e.tile = &tile;
    e.cx = cx;
    e.cy = cy;
    e.slot = static_cast<std::uint32_t>(bucket.size() - 1);
    e.pos = pos;
}

void CellTree::unplace(std::uint32_t id) {
    Entry& e = entries_[id];
    Tile& tile = *e.tile;
    const unsigned local = local_cell(e.cx, e.cy);
    std::vector<Slot>& bucket = tile.cells[local];
    // Swap-pop; patch the moved entry's back-reference.
    const std::uint32_t last = static_cast<std::uint32_t>(bucket.size() - 1);
    if (e.slot != last) {
        bucket[e.slot] = bucket[last];
        entries_[bucket[e.slot].id].slot = e.slot;
    }
    bucket.pop_back();
    if (bucket.empty()) tile.occupancy &= ~(std::uint64_t{1} << local);
    --tile.population;
    if (tile.population == 0) {
        // Reclaim the empty tile so a swarm sweeping across a city never
        // accretes dead tiles along its wake.
        tiles_.erase(tile_key(e.cx >> kTileShift, e.cy >> kTileShift));
    }
    e.tile = nullptr;
}

void CellTree::insert(std::uint32_t id, geom::Vec2 pos) {
    if (id >= entries_.size()) entries_.resize(id + 1);
    assert(entries_[id].tile == nullptr && "CellTree::insert: id already present");
    if (entries_[id].tile != nullptr) unplace(id);
    place(id, cell_coord(pos.x), cell_coord(pos.y), pos);
    ++size_;
    ++stats_.inserts;
}

void CellTree::remove(std::uint32_t id) {
    if (!contains(id)) return;
    unplace(id);
    --size_;
    ++stats_.removes;
}

void CellTree::update(std::uint32_t id, geom::Vec2 pos) {
    if (!contains(id)) return;
    update_present(id, pos);
}

void CellTree::update_present(std::uint32_t id, geom::Vec2 pos) {
    Entry& e = entries_[id];
    const std::int64_t cx = cell_coord(pos.x);
    const std::int64_t cy = cell_coord(pos.y);
    if (cx == e.cx && cy == e.cy) {
        // Same cell: refresh the cached position in place (queries hand the
        // cached value to callers, and the medium's debug contract check
        // compares it against the live provider).
        e.pos = pos;
        e.tile->cells[local_cell(cx, cy)][e.slot].pos = pos;
        ++stats_.in_cell_updates;
        return;
    }
    unplace(id);
    place(id, cx, cy, pos);
    ++stats_.migrations;
}

}  // namespace cocoa::mac::spatial
