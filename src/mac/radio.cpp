#include "mac/radio.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "net/packet_io.hpp"
#include "sim/checkpoint.hpp"

namespace cocoa::mac {

namespace {
constexpr std::uint32_t kMarkRadio = 0x4f494452u;  // "RDIO"
}  // namespace

Radio::Radio(sim::Simulator& sim, Medium& medium, net::NodeId id, PositionProvider position,
             const energy::PowerProfile& profile, sim::RandomStream backoff_rng,
             MacConfig config)
    : sim_(sim),
      medium_(medium),
      id_(id),
      position_(std::move(position)),
      config_(config),
      meter_(profile, sim.now(), energy::RadioState::Idle),
      backoff_rng_(std::move(backoff_rng)) {
    if (!position_) {
        throw std::invalid_argument("Radio: position provider required");
    }
    if (config_.bitrate_bps <= 0.0 || config_.cw_min < 0) {
        throw std::invalid_argument("Radio: bad MAC configuration");
    }
    attach_index_ = medium_.attach(*this);

    // Swarm-scale scenarios disable the per-node registry names (a 100k-node
    // team would otherwise hold ~1M counter strings); aggregates and the
    // meters themselves are unaffected.
    if (medium_.config().register_node_counters) {
        const std::string prefix = "node." + std::to_string(id_) + ".";
        obs::CounterRegistry& reg = medium_.obs().counters;
        reg.add(prefix + "mac.tx_frames", &stats_.tx_frames);
        reg.add(prefix + "mac.rx_delivered", &stats_.rx_delivered);
        reg.add(prefix + "mac.rx_corrupted", &stats_.rx_corrupted);
        reg.add(prefix + "mac.rx_captured", &stats_.rx_captured);
        reg.add(prefix + "mac.rx_aborted", &stats_.rx_aborted);
        meter_.register_counters(reg, prefix + "energy.");
    }
}

void Radio::publish_availability() {
    medium_.set_radio_available(*this, !is_off() && !in_outage());
}

void Radio::set_state(energy::RadioState next) {
    meter_.change_state(sim_.now(), next);
    state_ = next;
}

sim::Duration Radio::airtime(const net::Packet& packet) const {
    const double payload_s =
        static_cast<double>(packet.wire_bytes()) * 8.0 / config_.bitrate_bps;
    return config_.plcp_preamble + sim::Duration::seconds(payload_s);
}

void Radio::send(net::Packet packet) {
    if (!awake()) {
        throw std::logic_error("Radio::send while asleep (coordination bug)");
    }
    packet.src = id_;
    queue_.push_back(std::move(packet));
    try_start_csma();
}

void Radio::try_start_csma() {
    if (csma_pending_ || queue_.empty() || state_ == energy::RadioState::Tx || !awake()) {
        return;
    }
    csma_pending_ = true;
    schedule_attempt();
}

void Radio::schedule_attempt() {
    const sim::TimePoint idle_at = std::max(sim_.now(), sensed_until_);
    const sim::Duration backoff =
        config_.slot * backoff_rng_.uniform_int(0, config_.cw_min);
    attempt_event_ = sim_.schedule_at(
        idle_at + config_.difs + backoff, [this] { attempt_tx(); },
        sim::make_tag(sim::EventKind::kRadioAttempt,
                      static_cast<std::uint32_t>(attach_index_)));
}

void Radio::attempt_tx() {
    attempt_event_ = sim::EventId{};
    if (!awake()) {
        // Went to sleep while deferring; wake() restarts CSMA.
        csma_pending_ = false;
        return;
    }
    if (channel_busy() || lock_.has_value()) {
        schedule_attempt();
        return;
    }
    begin_tx();
}

void Radio::begin_tx() {
    net::Packet packet = std::move(queue_.front());
    queue_.pop_front();
    const sim::Duration on_air = airtime(packet);
    set_state(energy::RadioState::Tx);
    medium_.begin_transmission(*this, packet, on_air);
    sim_.schedule_in(on_air, [this] { end_tx(); },
                     sim::make_tag(sim::EventKind::kRadioEndTx,
                                   static_cast<std::uint32_t>(attach_index_)));
}

void Radio::end_tx() {
    // Only a transmission that actually completed counts: power_off and
    // begin_outage truncate the frame and leave the radio Off/Sleep.
    if (state_ != energy::RadioState::Tx) return;
    ++stats_.tx_frames;
    set_state(energy::RadioState::Idle);
    csma_pending_ = false;
    try_start_csma();
}

void Radio::on_frame_start(const std::shared_ptr<const AirFrame>& frame, double rssi_dbm,
                           bool decodable) {
    sensed_until_ = std::max(sensed_until_, frame->end);
    if (state_ == energy::RadioState::Tx) return;  // half duplex: deaf while sending

    if (lock_.has_value()) {
        // Overlap with the frame being received. A frame stronger than the
        // lock by the capture margin takes the receiver over (physical
        // capture works both ways); one inside the margin corrupts the lock;
        // anything weaker is captured over and ignored.
        if (decodable && rssi_dbm >= lock_->rssi_dbm + medium_.capture_margin_db()) {
            ++stats_.rx_corrupted;  // the abandoned frame is lost
            ++stats_.rx_captured;
            medium_.obs().trace.instant(sim_.now(), "mac", "rx_capture",
                                        static_cast<std::int64_t>(id_),
                                        {{"rssi_dbm", rssi_dbm},
                                         {"old_rssi_dbm", lock_->rssi_dbm}});
            lock_ = RxLock{frame, rssi_dbm, false};
            sim_.schedule_at(frame->end, [this, frame] { on_frame_end(frame); },
                             sim::make_tag(sim::EventKind::kRadioFrameEnd,
                                           static_cast<std::uint32_t>(attach_index_),
                                           0, 0, frame->seq));
            return;  // the old frame's on_frame_end no-ops (lock moved on)
        }
        if (rssi_dbm >= lock_->rssi_dbm - medium_.capture_margin_db()) {
            lock_->corrupted = true;
            medium_.obs().trace.instant(sim_.now(), "mac", "rx_corrupt",
                                        static_cast<std::int64_t>(id_),
                                        {{"rssi_dbm", rssi_dbm}});
        }
        return;
    }
    if (!decodable) return;

    lock_ = RxLock{frame, rssi_dbm, false};
    medium_.obs().trace.instant(sim_.now(), "mac", "rx_lock",
                                static_cast<std::int64_t>(id_),
                                {{"rssi_dbm", rssi_dbm}});
    set_state(energy::RadioState::Rx);
    sim_.schedule_at(frame->end, [this, frame] { on_frame_end(frame); },
                     sim::make_tag(sim::EventKind::kRadioFrameEnd,
                                   static_cast<std::uint32_t>(attach_index_), 0, 0,
                                   frame->seq));
}

void Radio::on_frame_end(const std::shared_ptr<const AirFrame>& frame) {
    if (!lock_.has_value() || lock_->frame != frame) return;  // aborted by sleep
    const RxLock lock = *std::exchange(lock_, std::nullopt);
    set_state(energy::RadioState::Idle);
    if (lock.corrupted) {
        ++stats_.rx_corrupted;
    } else {
        ++stats_.rx_delivered;
        medium_.obs().trace.instant(sim_.now(), "mac", "rx_deliver",
                                    static_cast<std::int64_t>(id_),
                                    {{"rssi_dbm", lock.rssi_dbm},
                                     {"from", static_cast<double>(frame->sender)}});
        if (handler_) {
            handler_(frame->packet, net::RxInfo{lock.rssi_dbm, sim_.now()});
        }
    }
    try_start_csma();
}

void Radio::save_state(sim::ckpt::Writer& w, net::PacketSaveCtx& pkts) const {
    w.mark(kMarkRadio);
    w.u8(static_cast<std::uint8_t>(state_));
    w.b(outage_);
    w.b(csma_pending_);
    w.time(sensed_until_);
    w.b(lock_.has_value());
    if (lock_.has_value()) {
        w.u64(lock_->frame->seq);
        w.f64(lock_->rssi_dbm);
        w.b(lock_->corrupted);
    }
    w.u64(queue_.size());
    for (const net::Packet& packet : queue_) net::save_packet(w, packet, pkts);
    w.u64(stats_.tx_frames);
    w.u64(stats_.rx_delivered);
    w.u64(stats_.rx_corrupted);
    w.u64(stats_.rx_captured);
    w.u64(stats_.rx_aborted);
    backoff_rng_.save(w);
    meter_.save(w);
}

void Radio::load_state(sim::ckpt::Reader& r, net::PacketLoadCtx& pkts) {
    r.expect(kMarkRadio);
    state_ = static_cast<energy::RadioState>(r.u8());
    outage_ = r.b();
    csma_pending_ = r.b();
    sensed_until_ = r.time();
    attempt_event_ = sim::EventId{};  // re-learned via the placed hook
    if (r.b()) {
        RxLock lock;
        lock.frame = medium_.restored_frame(r.u64());
        lock.rssi_dbm = r.f64();
        lock.corrupted = r.b();
        lock_ = std::move(lock);
    } else {
        lock_.reset();
    }
    queue_.clear();
    const std::uint64_t depth = r.u64();
    for (std::uint64_t i = 0; i < depth; ++i) {
        queue_.push_back(net::load_packet(r, pkts));
    }
    stats_.tx_frames = r.u64();
    stats_.rx_delivered = r.u64();
    stats_.rx_corrupted = r.u64();
    stats_.rx_captured = r.u64();
    stats_.rx_aborted = r.u64();
    backoff_rng_.load(r);
    meter_.load(r);
    // Sync the medium's availability table (and spatial-index membership)
    // with the restored power state — off / in-outage radios leave the tree.
    publish_availability();
}

void Radio::sleep() {
    if (state_ == energy::RadioState::Sleep || state_ == energy::RadioState::Off) {
        return;
    }
    if (state_ == energy::RadioState::Tx) {
        throw std::logic_error("Radio::sleep during transmission");
    }
    if (lock_.has_value()) {
        lock_.reset();
        ++stats_.rx_aborted;
        medium_.obs().trace.instant(sim_.now(), "mac", "rx_abort",
                                    static_cast<std::int64_t>(id_));
    }
    if (attempt_event_.valid()) {
        sim_.cancel(attempt_event_);
        attempt_event_ = sim::EventId{};
    }
    csma_pending_ = false;
    set_state(energy::RadioState::Sleep);
    medium_.obs().trace.instant(sim_.now(), "mac", "sleep",
                                static_cast<std::int64_t>(id_));
}

void Radio::on_frame_truncated(const std::shared_ptr<const AirFrame>& frame) {
    if (!awake()) return;  // asleep/off radios rebuild sense on wake anyway
    // The air went quiet early; re-derive carrier sense from what is still
    // in flight (the truncated frame no longer counts).
    sensed_until_ = std::max(sim_.now(), medium_.sensed_until_for(*this));
    if (lock_.has_value() && lock_->frame == frame) {
        lock_.reset();
        ++stats_.rx_aborted;
        medium_.obs().trace.instant(sim_.now(), "mac", "rx_abort",
                                    static_cast<std::int64_t>(id_));
        set_state(energy::RadioState::Idle);
        try_start_csma();
    }
}

void Radio::wake() {
    if (awake() || state_ == energy::RadioState::Off || outage_) return;
    set_state(energy::RadioState::Idle);
    sensed_until_ = medium_.sensed_until_for(*this);
    medium_.obs().trace.instant(sim_.now(), "mac", "wake",
                                static_cast<std::int64_t>(id_));
    try_start_csma();
}

void Radio::power_off() {
    if (state_ == energy::RadioState::Off) return;
    if (state_ == energy::RadioState::Tx) {
        // The frame dies with the radio: truncate it on the medium so
        // receivers stop decoding (and abort any lock) instead of receiving
        // from a corpse.
        medium_.truncate_transmission(*this);
    }
    if (lock_.has_value()) {
        lock_.reset();
        ++stats_.rx_aborted;
    }
    if (attempt_event_.valid()) {
        sim_.cancel(attempt_event_);
        attempt_event_ = sim::EventId{};
    }
    outage_ = false;
    csma_pending_ = false;
    queue_.clear();
    set_state(energy::RadioState::Off);
    publish_availability();
}

void Radio::power_on() {
    if (state_ != energy::RadioState::Off) return;
    outage_ = false;
    set_state(energy::RadioState::Idle);
    publish_availability();
    sensed_until_ = medium_.sensed_until_for(*this);
    medium_.obs().trace.instant(sim_.now(), "mac", "power_on",
                                static_cast<std::int64_t>(id_));
    try_start_csma();
}

void Radio::begin_outage() {
    if (outage_ || state_ == energy::RadioState::Off) return;
    outage_ = true;
    if (state_ == energy::RadioState::Tx) {
        medium_.truncate_transmission(*this);
    }
    if (lock_.has_value()) {
        lock_.reset();
        ++stats_.rx_aborted;
        medium_.obs().trace.instant(sim_.now(), "mac", "rx_abort",
                                    static_cast<std::int64_t>(id_));
    }
    if (attempt_event_.valid()) {
        sim_.cancel(attempt_event_);
        attempt_event_ = sim::EventId{};
    }
    csma_pending_ = false;
    queue_.clear();
    set_state(energy::RadioState::Sleep);
    publish_availability();
    medium_.obs().trace.instant(sim_.now(), "mac", "outage_begin",
                                static_cast<std::int64_t>(id_));
}

void Radio::end_outage() {
    if (!outage_) return;
    outage_ = false;
    if (state_ == energy::RadioState::Off) return;  // crashed during the outage
    set_state(energy::RadioState::Idle);
    publish_availability();
    sensed_until_ = medium_.sensed_until_for(*this);
    medium_.obs().trace.instant(sim_.now(), "mac", "outage_end",
                                static_cast<std::int64_t>(id_));
    try_start_csma();
}

}  // namespace cocoa::mac
