#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "energy/energy.hpp"
#include "mac/airframe.hpp"
#include "mac/medium.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace cocoa::mac {

/// 802.11b DCF timing for broadcast frames at 2 Mbps (the paper's setup).
struct MacConfig {
    sim::Duration slot = sim::Duration::micros(20);
    sim::Duration difs = sim::Duration::micros(50);
    sim::Duration plcp_preamble = sim::Duration::micros(192);
    int cw_min = 31;               ///< backoff drawn uniformly from [0, cw_min]
    double bitrate_bps = 2e6;
};

/// A node's 802.11 radio: CSMA/CA broadcast transmitter, receiver with
/// collision/capture handling, and power-state machine wired to an
/// EnergyMeter. Broadcast frames are fire-and-forget (no RTS/CTS, no ACK),
/// exactly like 802.11 broadcast.
class Radio {
  public:
    using PositionProvider = std::function<geom::Vec2()>;
    using ReceiveHandler = std::function<void(const net::Packet&, const net::RxInfo&)>;

    struct Stats {
        std::uint64_t tx_frames = 0;
        std::uint64_t rx_delivered = 0;
        std::uint64_t rx_corrupted = 0;   ///< lost to collisions
        std::uint64_t rx_captured = 0;    ///< re-locks onto a stronger overlap
        std::uint64_t rx_aborted = 0;     ///< reception cut short by sleep()
    };

    /// Creates and attaches the radio to `medium`. `position` supplies the
    /// node's (true) position for propagation.
    Radio(sim::Simulator& sim, Medium& medium, net::NodeId id, PositionProvider position,
          const energy::PowerProfile& profile, sim::RandomStream backoff_rng,
          MacConfig config = {});

    Radio(const Radio&) = delete;
    Radio& operator=(const Radio&) = delete;

    net::NodeId id() const { return id_; }
    /// Dense index assigned by Medium::attach — the radio's identity in the
    /// spatial index, availability table and AirFrame sensed sets.
    std::size_t attach_index() const { return attach_index_; }
    geom::Vec2 position() const { return position_(); }
    Medium& medium() { return medium_; }
    const Medium& medium() const { return medium_; }
    energy::RadioState state() const { return state_; }
    bool awake() const { return energy::is_awake(state_); }

    void set_receive_handler(ReceiveHandler handler) { handler_ = std::move(handler); }

    /// Queues a broadcast packet for CSMA transmission. Throws
    /// std::logic_error if the radio is asleep/off (callers coordinate sleep
    /// with traffic — that is CoCoA's whole point).
    void send(net::Packet packet);

    /// Time on air for a packet of this size (PLCP preamble + payload bits).
    sim::Duration airtime(const net::Packet& packet) const;

    /// Powers down to sleep. Pending CSMA attempts pause (resume on wake);
    /// an in-progress reception is aborted. Throws std::logic_error if
    /// called mid-transmission.
    void sleep();

    /// Powers back up to idle and rebuilds carrier-sense state. No-op when
    /// the radio is off.
    void wake();

    /// Permanently powers the radio off (robot failure / battery death):
    /// like sleep, but wake() no longer revives it. An in-flight frame is
    /// truncated on the medium (receivers abort decode). Used by
    /// failure-injection experiments.
    void power_off();
    bool is_off() const { return state_ == energy::RadioState::Off; }

    /// Revives a powered-off radio (crash-with-reboot fault): back to Idle
    /// with carrier-sense state rebuilt from the frames currently in flight.
    /// No-op unless the radio is off.
    void power_on();

    /// Begins a transient radio outage (hardware brown-out, antenna fault):
    /// like sleep — an in-flight transmission is truncated, a reception
    /// aborts, the queue drops — but wake() cannot revive it until
    /// end_outage(). No-op when the radio is off.
    void begin_outage();
    /// Ends the outage; the radio returns to Idle (unless it was off) and
    /// resumes CSMA. No-op when no outage is in progress.
    void end_outage();
    bool in_outage() const { return outage_; }

    const energy::EnergyMeter& meter() const { return meter_; }
    /// Closes energy accounting through the current simulation time.
    void settle_energy() { meter_.settle(sim_.now()); }

    const Stats& stats() const { return stats_; }
    std::size_t tx_queue_depth() const { return queue_.size(); }

    // --- called by Medium ---------------------------------------------------

    /// A frame whose (sampled) power reaches the carrier-sense threshold has
    /// started; `decodable` means it also reaches the receive sensitivity.
    void on_frame_start(const std::shared_ptr<const AirFrame>& frame, double rssi_dbm,
                        bool decodable);

    /// `frame`'s transmitter died mid-frame: carrier sense is rebuilt, and a
    /// reception locked on the frame aborts (counted as rx_aborted).
    void on_frame_truncated(const std::shared_ptr<const AirFrame>& frame);

    // --- checkpoint ---------------------------------------------------------

    /// Serializes power state, CSMA progress, the receive lock (by frame
    /// seq), the tx queue, stats, the backoff stream and the energy books.
    /// The pending attempt / end-tx / frame-end events themselves live in the
    /// kernel section; the attempt EventId is re-learned through the placed
    /// hook Medium::register_rebuilders installs.
    void save_state(sim::ckpt::Writer& w, net::PacketSaveCtx& pkts) const;
    /// Restores save_state. Must run after Medium::load_state (the lock
    /// re-links through Medium::restored_frame) and must not schedule.
    void load_state(sim::ckpt::Reader& r, net::PacketLoadCtx& pkts);

  private:
    /// Rebuilders re-enter the private CSMA/receive machinery and re-learn
    /// attempt_event_ on behalf of each radio.
    friend class Medium;
    void set_state(energy::RadioState next);
    bool channel_busy() const { return sim_.now() < sensed_until_; }
    void try_start_csma();
    void schedule_attempt();
    void attempt_tx();
    void begin_tx();
    void end_tx();
    void on_frame_end(const std::shared_ptr<const AirFrame>& frame);

    struct RxLock {
        std::shared_ptr<const AirFrame> frame;
        double rssi_dbm = 0.0;
        bool corrupted = false;
    };

    /// Tells the medium whether this radio can touch the air at all (not
    /// off, not in an outage); unavailable radios leave the spatial index.
    void publish_availability();

    sim::Simulator& sim_;
    Medium& medium_;
    std::size_t attach_index_ = 0;
    net::NodeId id_;
    PositionProvider position_;
    MacConfig config_;
    energy::RadioState state_ = energy::RadioState::Idle;
    energy::EnergyMeter meter_;
    sim::RandomStream backoff_rng_;
    ReceiveHandler handler_;

    std::deque<net::Packet> queue_;
    bool outage_ = false;  ///< transient fault: asleep and wake()-proof
    bool csma_pending_ = false;
    sim::EventId attempt_event_;
    sim::TimePoint sensed_until_;
    std::optional<RxLock> lock_;
    Stats stats_;
};

}  // namespace cocoa::mac
