// AVX2 instantiation of the fanout kernels. Compiled with -mavx2 (per file,
// from src/mac/CMakeLists.txt) and only ever called after the runtime
// dispatcher has checked __builtin_cpu_supports("avx2"). See
// fanout_kernels_impl.hpp for the byte-identity contract.
#if defined(__x86_64__) || defined(_M_X64)

#define COCOA_FANOUT_ISA_NS avx2
#include "mac/fanout_kernels_impl.hpp"

#endif
