#pragma once

#include <cassert>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geom/vec2.hpp"

namespace cocoa::mac::spatial {

/// Mutation/traffic statistics for one CellTree. Deliberately not wired into
/// the obs counter registry: the hierarchical and flat medium builds must
/// produce byte-identical `--counters` output (the CI oracle gate diffs
/// them), so index bookkeeping is only visible through Medium::index_stats()
/// and tests/benches that read it directly.
struct CellTreeStats {
    std::uint64_t inserts = 0;
    std::uint64_t removes = 0;
    /// update() calls that crossed a cell boundary and moved the entry.
    std::uint64_t migrations = 0;
    /// update() calls that stayed inside the entry's current cell.
    std::uint64_t in_cell_updates = 0;
    /// refresh_all() sweeps (the coarse note_positions_moved() fallback —
    /// steady-state simulation traffic must never trigger one).
    std::uint64_t full_refreshes = 0;
    std::uint64_t queries = 0;
    /// Candidate entries inspected by queries before the exact radius test.
    std::uint64_t candidates_visited = 0;
    /// Window cells rejected by the inline (uncached) disk classification.
    std::uint64_t cells_pruned = 0;
};

/// The `spatial.radius_cache.*` counter family for one RadiusCache. Like
/// CellTreeStats, deliberately NOT registered in the obs counter registry
/// (the hier/flat oracle builds must diff clean on `--counters`); surfaced
/// through Medium::radius_cache_stats() and read directly by tests/benches.
struct RadiusCacheStats {
    std::uint64_t lookups = 0;        ///< window-mask lookups (dense queries)
    std::uint64_t hits = 0;           ///< masks served from the LRU
    std::uint64_t misses = 0;         ///< masks classified and inserted
    std::uint64_t evictions = 0;      ///< LRU entries displaced at capacity
    std::uint64_t cells_pruned = 0;   ///< window cells skipped via cached masks
    std::uint64_t sparse_bypass = 0;  ///< queries that skipped the cache (sparse tile)
};

/// LRU cache of per-tile effective query windows — the density-adaptive
/// query radius of the geotools exemplar, made *exact*.
///
/// The physical cull radius cannot shrink (a receiver anywhere inside the
/// influence range genuinely affects carrier sense), but the candidate
/// *window* can: most of a 3x3 cell window lies outside the query disk, and
/// a cell whose nearest point is beyond the radius provably contains no
/// candidate. This cache memoizes that per-cell classification. Keys are
/// (cell, quantized sub-cell offset of the query center): the mask is
/// computed conservatively over the whole quantum square, so it is valid for
/// every center that maps to the key — a cleared bit is a proof, never a
/// heuristic. Queries in *dense* neighbourhoods (center-tile population at
/// or above `dense_population`) consult the cache, where one cached mask
/// amortizes over many transmissions from the same quantum; sparse
/// neighbourhoods skip straight to scanning their few candidates
/// (note_sparse_bypass) — that is the density adaptation.
///
/// Debug builds re-verify every pruned cell against the live slots (the
/// exact-radius oracle assertion in CellTree::for_each_in_radius).
class RadiusCache {
  public:
    /// Sub-cell quantization of the query center: 4x4 quanta per cell.
    /// cell_side / 4 is exact in floating point, and cell boundaries lie on
    /// quantum boundaries, so a quantum square never straddles two cells.
    static constexpr int kQuantaPerSide = 4;

    RadiusCache() = default;

    RadiusCache(const RadiusCache&) = delete;
    RadiusCache& operator=(const RadiusCache&) = delete;

    /// Arms the cache for queries of exactly `radius_m` on a tree with
    /// `cell_side_m` cells (radius <= cell side, so the cached masks cover
    /// the 3x3 window). `dense_population` gates the density adaptation;
    /// `capacity` bounds the LRU. Throws std::invalid_argument on bad
    /// geometry; configure({}) leaves the cache disarmed (handles() false).
    void configure(double cell_side_m, double radius_m, std::size_t capacity,
                   std::uint32_t dense_population);

    /// True when this cache serves queries of exactly `radius_m` (the medium
    /// only ever caches its hot cull radius; other radii take the inline
    /// classification path).
    bool handles(double radius_m) const {
        return capacity_ > 0 && radius_m == radius_m_;
    }
    std::uint32_t dense_population() const { return dense_population_; }

    /// 3x3 window-classification mask for a query centred at `center`,
    /// which lies in cell (ccx, ccy): bit (dy+1)*3 + (dx+1) set means cell
    /// (ccx+dx, ccy+dy) may contain in-radius entries; a cleared bit proves
    /// the whole cell lies outside the radius for every center in the same
    /// quantum square.
    std::uint16_t window_mask(std::int64_t ccx, std::int64_t ccy, geom::Vec2 center);

    void note_sparse_bypass() { ++stats_.sparse_bypass; }
    void note_cells_pruned(std::uint64_t n) { stats_.cells_pruned += n; }

    const RadiusCacheStats& stats() const { return stats_; }
    /// Checkpoint restore only — see CellTree::set_stats.
    void set_stats(const RadiusCacheStats& s) { stats_ = s; }
    std::size_t size() const { return map_.size(); }

    /// Cached (key, mask) pairs in recency order, most recent first —
    /// checkpointing serializes these so a restored cache is exactly as warm
    /// (same hit/miss/eviction future) as the straight run's was.
    std::vector<std::pair<std::uint64_t, std::uint16_t>> export_entries() const {
        return {lru_.begin(), lru_.end()};
    }
    /// Rebuilds the LRU from export_entries() output (most recent first).
    /// Restore only; assumes the cache was configure()d identically.
    void import_entries(
        const std::vector<std::pair<std::uint64_t, std::uint16_t>>& entries) {
        lru_.clear();
        map_.clear();
        for (const auto& e : entries) {
            lru_.push_back(e);
            map_.emplace(e.first, std::prev(lru_.end()));
        }
    }

  private:
    using LruList = std::list<std::pair<std::uint64_t, std::uint16_t>>;

    std::uint16_t classify(std::int64_t ccx, std::int64_t ccy, int sx, int sy) const;

    double cell_side_m_ = 0.0;
    double quantum_m_ = 0.0;  ///< cell_side / kQuantaPerSide (exact in FP)
    double radius_m_ = -1.0;
    std::size_t capacity_ = 0;
    std::uint32_t dense_population_ = 0;
    LruList lru_;  ///< front = most recently used
    std::unordered_map<std::uint64_t, LruList::iterator> map_;
    RadiusCacheStats stats_;
};

/// Two-level hierarchical spatial index over point entries with dense
/// uint32 ids: a sparse hash of *tiles* (level 1), each tile owning an 8x8
/// block of *cells* (level 0) plus a 64-bit occupancy mask.
///
/// The cell side is chosen by the owner (the medium uses its interference
/// cull radius plus the truncation slack, so its hot queries touch at most a
/// 3x3 cell neighbourhood = at most 4 tiles). Empty space costs nothing:
/// tiles exist only while they hold entries, and a query prunes 64 cells at
/// a time through the occupancy mask before it ever touches a bucket.
///
/// All mutations are incremental and O(1) amortized:
///   - insert/remove keep a per-id back-reference (tile, cell, slot) so
///     removal is a swap-pop, never a scan;
///   - update(id, pos) compares the entry's cached cell and migrates only on
///     a boundary crossing — the steady-state mobility tick does one integer
///     compare per moving entry, the incremental replacement for the flat
///     medium's whole-hash rebuild.
///
/// Queries visit each candidate exactly once and pass the *cached* position
/// to the callback; callers that need the live position (the medium, whose
/// radios answer position() through a provider) re-read it themselves.
/// Iteration order is deterministic (cell-major over the window, insertion
/// order within a bucket) but NOT sorted by id; order-sensitive callers sort
/// afterwards, as the medium does for its CCA schedule.
class CellTree {
  public:
    /// `cell_side_m` > 0 is the leaf cell width. Queries are exact for any
    /// radius: the window is derived from the radius, and window cells
    /// provably outside the query disk are pruned (conservatively padded, so
    /// floating-point bucketing slop can never hide a real candidate).
    explicit CellTree(double cell_side_m);

    CellTree(const CellTree&) = delete;
    CellTree& operator=(const CellTree&) = delete;

    /// Inserts `id` at `pos`. Ids are dense and small (medium attach
    /// indices); inserting an id already present is a logic error (asserted
    /// in debug builds, last write wins otherwise).
    void insert(std::uint32_t id, geom::Vec2 pos);

    /// Removes `id`; no-op when absent (radios can crash during an outage,
    /// which already detached them).
    void remove(std::uint32_t id);

    /// Re-buckets `id` for its new position: an integer compare when the
    /// entry stayed in its cell, a swap-pop + push when it crossed a
    /// boundary. No-op when the id is not present (detached radios keep
    /// moving; they re-enter at their current position on power_on()).
    void update(std::uint32_t id, geom::Vec2 pos);

    bool contains(std::uint32_t id) const {
        return id < entries_.size() && entries_[id].tile != nullptr;
    }
    std::size_t size() const { return size_; }

    /// Calls `fn(id, cached_pos)` for every entry within `radius` of
    /// `center`, plus boundary candidates from window cells the disk
    /// classification could not prune (callers apply their exact predicate;
    /// the medium's fan-out kernel re-tests every candidate).
    ///
    /// With a non-null `cache` armed for this radius, queries in dense
    /// neighbourhoods classify the 3x3 window through the cache's quantized
    /// LRU masks instead of recomputing the per-cell tests; pruning stays
    /// exact either way (and Debug builds re-verify every pruned cell).
    template <typename Fn>
    void for_each_in_radius(geom::Vec2 center, double radius, RadiusCache* cache,
                            Fn&& fn) const {
        ++stats_.queries;
        const std::int64_t ccx = cell_coord(center.x);
        const std::int64_t ccy = cell_coord(center.y);
        const double r2 = radius * radius;

        if (cache != nullptr && cache->handles(radius)) {
            const Tile* center_tile = find_tile(ccx >> kTileShift, ccy >> kTileShift);
            const std::uint32_t population =
                center_tile == nullptr ? 0 : center_tile->population;
            if (population >= cache->dense_population()) {
                const std::uint16_t mask = cache->window_mask(ccx, ccy, center);
                int bit = 0;
                std::uint64_t pruned = 0;
                for (std::int64_t dy = -1; dy <= 1; ++dy) {
                    for (std::int64_t dx = -1; dx <= 1; ++dx, ++bit) {
                        if ((mask & (std::uint16_t{1} << bit)) == 0) {
                            ++pruned;
                            assert_cell_beyond(ccx + dx, ccy + dy, center, r2);
                            continue;
                        }
                        scan_cell(ccx + dx, ccy + dy, fn);
                    }
                }
                cache->note_cells_pruned(pruned);
                return;
            }
            cache->note_sparse_bypass();
        }

        // Inline exact path: window derived from the radius, each cell
        // classified against the query disk (nearest-point test on the
        // padded cell box).
        const std::int64_t reach = window_reach(radius);
        for (std::int64_t cy = ccy - reach; cy <= ccy + reach; ++cy) {
            for (std::int64_t cx = ccx - reach; cx <= ccx + reach; ++cx) {
                if (cell_outside_disk(cx, cy, center, r2)) {
                    ++stats_.cells_pruned;
                    assert_cell_beyond(cx, cy, center, r2);
                    continue;
                }
                scan_cell(cx, cy, fn);
            }
        }
    }

    template <typename Fn>
    void for_each_in_radius(geom::Vec2 center, double radius, Fn&& fn) const {
        for_each_in_radius(center, radius, nullptr, std::forward<Fn>(fn));
    }

    /// Re-reads every present entry's position through `pos_of(id)` and
    /// migrates the stale ones — the coarse fallback behind the medium's
    /// bulk note_positions_moved() contract. O(entries); steady-state code
    /// paths use update() instead and tests pin full_refreshes to zero.
    template <typename PosFn>
    void refresh_all(PosFn&& pos_of) {
        ++stats_.full_refreshes;
        for (std::uint32_t id = 0; id < entries_.size(); ++id) {
            if (entries_[id].tile == nullptr) continue;
            update_present(id, pos_of(id));
        }
    }

    /// Cached position of a present entry (debug/test aid).
    geom::Vec2 cached_position(std::uint32_t id) const { return entries_[id].pos; }

    /// Population of the tile containing `pos` (0 when the tile is empty /
    /// unallocated) — the density signal the radius cache's gate reads.
    std::uint32_t tile_population_at(geom::Vec2 pos) const;

    double cell_side_m() const { return cell_side_m_; }

    const CellTreeStats& stats() const { return stats_; }
    /// Overwrites the bookkeeping counters wholesale. Checkpoint restore
    /// only: the restore-time refresh sweep must not show up in a restored
    /// run's stats, so load_state rebuilds membership first and then stamps
    /// the straight run's counters back on top.
    void set_stats(const CellTreeStats& s) { stats_ = s; }
    /// Tiles currently allocated (empty ones are reclaimed lazily on
    /// removal when their occupancy mask drains).
    std::size_t tile_count() const { return tiles_.size(); }

  private:
    /// 8x8 cells per tile: one occupancy word, and tile lookups amortize
    /// over 64 cells of space.
    static constexpr int kTileShift = 3;
    static constexpr int kTileSide = 1 << kTileShift;

    struct Slot {
        std::uint32_t id;
        geom::Vec2 pos;
    };

    struct Tile {
        std::uint64_t occupancy = 0;
        std::uint32_t population = 0;
        std::vector<Slot> cells[kTileSide * kTileSide];
    };

    /// Back-reference: where an entry currently lives, plus its cached
    /// bucketing position. tile == nullptr means "not present".
    struct Entry {
        Tile* tile = nullptr;
        std::int64_t cx = 0;
        std::int64_t cy = 0;
        std::uint32_t slot = 0;
        geom::Vec2 pos{};
    };

    std::int64_t cell_coord(double v) const;
    static std::uint64_t tile_key(std::int64_t tx, std::int64_t ty);
    static unsigned local_cell(std::int64_t cx, std::int64_t cy);
    Tile* find_tile(std::int64_t tx, std::int64_t ty) const;
    Tile& tile_for(std::int64_t tx, std::int64_t ty);
    void place(std::uint32_t id, std::int64_t cx, std::int64_t cy, geom::Vec2 pos);
    void unplace(std::uint32_t id);
    void update_present(std::uint32_t id, geom::Vec2 pos);

    /// Cells per side the window must extend from the center cell so that
    /// reach * cell_side covers `radius` (>= 1; tolerant of radius ==
    /// cell_side up to FP rounding, where the physical radius always carries
    /// slack of its own).
    std::int64_t window_reach(double radius) const;

    /// True when cell (cx, cy) provably contains no point within sqrt(r2)
    /// of `center`: the nearest point of the cell's box — padded so FP
    /// bucketing slop can never misplace a boundary entry — is beyond the
    /// radius.
    bool cell_outside_disk(std::int64_t cx, std::int64_t cy, geom::Vec2 center,
                           double r2) const;

    /// Visits one cell's slots (tile lookup + occupancy gate + bucket scan).
    template <typename Fn>
    void scan_cell(std::int64_t cx, std::int64_t cy, Fn&& fn) const {
        const Tile* tile = find_tile(cx >> kTileShift, cy >> kTileShift);
        if (tile == nullptr) return;
        const unsigned local = local_cell(cx, cy);
        if ((tile->occupancy & (std::uint64_t{1} << local)) == 0) return;
        for (const Slot& s : tile->cells[local]) {
            ++stats_.candidates_visited;
            fn(s.id, s.pos);
        }
    }

    /// Exact-radius oracle assertion (Debug only): every entry of a pruned
    /// cell really is outside the query disk.
    void assert_cell_beyond(std::int64_t cx, std::int64_t cy, geom::Vec2 center,
                            double r2) const {
#ifndef NDEBUG
        const Tile* tile = find_tile(cx >> kTileShift, cy >> kTileShift);
        if (tile == nullptr) return;
        const unsigned local = local_cell(cx, cy);
        if ((tile->occupancy & (std::uint64_t{1} << local)) == 0) return;
        for (const Slot& s : tile->cells[local]) {
            assert(geom::distance_sq(s.pos, center) > r2 &&
                   "window classification pruned a cell holding an in-radius entry");
        }
#else
        (void)cx;
        (void)cy;
        (void)center;
        (void)r2;
#endif
    }

    double inv_cell_ = 0.0;
    double cell_side_m_ = 0.0;
    std::size_t size_ = 0;
    std::vector<Entry> entries_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Tile>> tiles_;
    mutable CellTreeStats stats_;
};

}  // namespace cocoa::mac::spatial
