#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "geom/vec2.hpp"

namespace cocoa::mac::spatial {

/// Mutation/traffic statistics for one CellTree. Deliberately not wired into
/// the obs counter registry: the hierarchical and flat medium builds must
/// produce byte-identical `--counters` output (the CI oracle gate diffs
/// them), so index bookkeeping is only visible through Medium::index_stats()
/// and tests/benches that read it directly.
struct CellTreeStats {
    std::uint64_t inserts = 0;
    std::uint64_t removes = 0;
    /// update() calls that crossed a cell boundary and moved the entry.
    std::uint64_t migrations = 0;
    /// update() calls that stayed inside the entry's current cell.
    std::uint64_t in_cell_updates = 0;
    /// refresh_all() sweeps (the coarse note_positions_moved() fallback —
    /// steady-state simulation traffic must never trigger one).
    std::uint64_t full_refreshes = 0;
    std::uint64_t queries = 0;
    /// Candidate entries inspected by queries before the exact radius test.
    std::uint64_t candidates_visited = 0;
};

/// Two-level hierarchical spatial index over point entries with dense
/// uint32 ids: a sparse hash of *tiles* (level 1), each tile owning an 8x8
/// block of *cells* (level 0) plus a 64-bit occupancy mask.
///
/// The cell side is chosen by the owner (the medium uses its interference
/// cull radius, so a radius query touches at most a 3x3 cell neighbourhood
/// = at most 4 tiles). Empty space costs nothing: tiles exist only while
/// they hold entries, and a query prunes 64 cells at a time through the
/// occupancy mask before it ever touches a bucket.
///
/// All mutations are incremental and O(1) amortized:
///   - insert/remove keep a per-id back-reference (tile, cell, slot) so
///     removal is a swap-pop, never a scan;
///   - update(id, pos) compares the entry's cached cell and migrates only on
///     a boundary crossing — the steady-state mobility tick does one integer
///     compare per moving entry, the incremental replacement for the flat
///     medium's whole-hash rebuild.
///
/// Queries visit each candidate exactly once and pass the *cached* position
/// to the callback; callers that need the live position (the medium, whose
/// radios answer position() through a provider) re-read it themselves.
/// Iteration order is deterministic (cell-major over the fixed 3x3 window,
/// insertion order within a bucket) but NOT sorted by id; order-sensitive
/// callers sort afterwards, as the medium does for its CCA schedule.
class CellTree {
  public:
    /// `cell_side_m` > 0 is the leaf cell width; queries are exact for any
    /// radius <= cell_side_m (the 3x3 neighbourhood bound).
    explicit CellTree(double cell_side_m);

    CellTree(const CellTree&) = delete;
    CellTree& operator=(const CellTree&) = delete;

    /// Inserts `id` at `pos`. Ids are dense and small (medium attach
    /// indices); inserting an id already present is a logic error (asserted
    /// in debug builds, last write wins otherwise).
    void insert(std::uint32_t id, geom::Vec2 pos);

    /// Removes `id`; no-op when absent (radios can crash during an outage,
    /// which already detached them).
    void remove(std::uint32_t id);

    /// Re-buckets `id` for its new position: an integer compare when the
    /// entry stayed in its cell, a swap-pop + push when it crossed a
    /// boundary. No-op when the id is not present (detached radios keep
    /// moving; they re-enter at their current position on power_on()).
    void update(std::uint32_t id, geom::Vec2 pos);

    bool contains(std::uint32_t id) const {
        return id < entries_.size() && entries_[id].tile != nullptr;
    }
    std::size_t size() const { return size_; }

    /// Calls `fn(id, cached_pos)` for every entry within `radius` of
    /// `center`, plus boundary candidates up to one cell farther (callers
    /// apply their exact predicate; the medium re-checks against live
    /// positions). `radius` must be <= the cell side.
    template <typename Fn>
    void for_each_in_radius(geom::Vec2 center, double radius, Fn&& fn) const {
        ++stats_.queries;
        const std::int64_t ccx = cell_coord(center.x);
        const std::int64_t ccy = cell_coord(center.y);
        (void)radius;  // the 3x3 window covers any radius <= cell_side_m
        for (std::int64_t cy = ccy - 1; cy <= ccy + 1; ++cy) {
            for (std::int64_t cx = ccx - 1; cx <= ccx + 1; ++cx) {
                const Tile* tile = find_tile(cx >> kTileShift, cy >> kTileShift);
                if (tile == nullptr) continue;
                const unsigned local =
                    local_cell(cx, cy);
                if ((tile->occupancy & (std::uint64_t{1} << local)) == 0) continue;
                for (const Slot& s : tile->cells[local]) {
                    ++stats_.candidates_visited;
                    fn(s.id, s.pos);
                }
            }
        }
    }

    /// Re-reads every present entry's position through `pos_of(id)` and
    /// migrates the stale ones — the coarse fallback behind the medium's
    /// bulk note_positions_moved() contract. O(entries); steady-state code
    /// paths use update() instead and tests pin full_refreshes to zero.
    template <typename PosFn>
    void refresh_all(PosFn&& pos_of) {
        ++stats_.full_refreshes;
        for (std::uint32_t id = 0; id < entries_.size(); ++id) {
            if (entries_[id].tile == nullptr) continue;
            update_present(id, pos_of(id));
        }
    }

    /// Cached position of a present entry (debug/test aid).
    geom::Vec2 cached_position(std::uint32_t id) const { return entries_[id].pos; }

    const CellTreeStats& stats() const { return stats_; }
    /// Tiles currently allocated (empty ones are reclaimed lazily on
    /// removal when their occupancy mask drains).
    std::size_t tile_count() const { return tiles_.size(); }

  private:
    /// 8x8 cells per tile: one occupancy word, and tile lookups amortize
    /// over 64 cells of space.
    static constexpr int kTileShift = 3;
    static constexpr int kTileSide = 1 << kTileShift;

    struct Slot {
        std::uint32_t id;
        geom::Vec2 pos;
    };

    struct Tile {
        std::uint64_t occupancy = 0;
        std::uint32_t population = 0;
        std::vector<Slot> cells[kTileSide * kTileSide];
    };

    /// Back-reference: where an entry currently lives, plus its cached
    /// bucketing position. tile == nullptr means "not present".
    struct Entry {
        Tile* tile = nullptr;
        std::int64_t cx = 0;
        std::int64_t cy = 0;
        std::uint32_t slot = 0;
        geom::Vec2 pos{};
    };

    std::int64_t cell_coord(double v) const;
    static std::uint64_t tile_key(std::int64_t tx, std::int64_t ty);
    static unsigned local_cell(std::int64_t cx, std::int64_t cy);
    Tile* find_tile(std::int64_t tx, std::int64_t ty) const;
    Tile& tile_for(std::int64_t tx, std::int64_t ty);
    void place(std::uint32_t id, std::int64_t cx, std::int64_t cy, geom::Vec2 pos);
    void unplace(std::uint32_t id);
    void update_present(std::uint32_t id, geom::Vec2 pos);

    double inv_cell_ = 0.0;
    double cell_side_m_ = 0.0;
    std::size_t size_ = 0;
    std::vector<Entry> entries_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Tile>> tiles_;
    mutable CellTreeStats stats_;
};

}  // namespace cocoa::mac::spatial
