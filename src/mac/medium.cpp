#include "mac/medium.hpp"

#include <algorithm>

#include "mac/radio.hpp"

namespace cocoa::mac {

Medium::Medium(sim::Simulator& sim, const phy::Channel& channel, MediumConfig config)
    : sim_(sim),
      channel_(channel),
      config_(config),
      rssi_rng_(sim.rng().stream("medium.rssi")) {
    obs_.counters.add("medium.frames_sent", &stats_.frames_sent);
    obs_.counters.add("medium.missed_asleep", &stats_.missed_asleep);
}

void Medium::attach(Radio& radio) { radios_.push_back(&radio); }

std::size_t Medium::index_of(const Radio& radio) const {
    for (std::size_t i = 0; i < radios_.size(); ++i) {
        if (radios_[i] == &radio) return i;
    }
    return radios_.size();  // never sensed: radio attached after the frame
}

void Medium::sweep_expired() {
    const sim::TimePoint now = sim_.now();
    std::erase_if(active_, [now](const auto& f) { return f->end <= now; });
}

void Medium::begin_transmission(Radio& sender, const net::Packet& packet,
                                sim::Duration airtime) {
    sweep_expired();
    const sim::TimePoint start = sim_.now();
    const sim::TimePoint end = start + airtime;
    const geom::Vec2 tx_pos = sender.position();

    // Sample each receiver's RSSI in attach order (one draw per non-sender
    // radio) and fix the carrier-sense verdicts on the frame, so a radio that
    // wakes mid-flight reads the same answer the live path acted on.
    std::vector<double> rssi(radios_.size(), 0.0);
    std::vector<std::uint8_t> sensed(radios_.size(), 0);
    for (std::size_t i = 0; i < radios_.size(); ++i) {
        Radio* r = radios_[i];
        if (r == &sender) continue;
        const double dist = geom::distance(r->position(), tx_pos);
        rssi[i] = channel_.sample_rssi_dbm(dist, rssi_rng_);
        sensed[i] = channel_.sensed(rssi[i]) ? 1 : 0;
    }

    auto frame = std::make_shared<const AirFrame>(
        AirFrame{packet, sender.id(), tx_pos, start, end, std::move(sensed)});
    active_.push_back(frame);
    ++stats_.frames_sent;
    obs_.trace.complete(start, end, "mac", "frame",
                        static_cast<std::int64_t>(sender.id()),
                        {{"bytes", static_cast<double>(packet.wire_bytes())}});

    for (std::size_t i = 0; i < radios_.size(); ++i) {
        Radio* r = radios_[i];
        if (r == &sender || frame->sensed_by[i] == 0) continue;
        const double rssi_i = rssi[i];
        // Carrier sensing and receiver lock-on take a CCA delay; radio state
        // is re-checked at that point (the radio may have slept meanwhile).
        sim_.schedule_in(config_.cca_delay, [this, r, frame, rssi_i] {
            if (!r->awake()) {
                if (channel_.decodable(rssi_i)) ++stats_.missed_asleep;
                return;
            }
            r->on_frame_start(frame, rssi_i, channel_.decodable(rssi_i));
        });
    }
}

sim::TimePoint Medium::sensed_until_for(const Radio& listener) const {
    const std::size_t idx = index_of(listener);
    sim::TimePoint until = sim_.now();
    for (const auto& frame : active_) {
        if (frame->end <= sim_.now() || frame->sender == listener.id()) continue;
        if (idx < frame->sensed_by.size() && frame->sensed_by[idx] != 0) {
            until = std::max(until, frame->end);
        }
    }
    return until;
}

}  // namespace cocoa::mac
