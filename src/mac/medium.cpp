#include "mac/medium.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "mac/radio.hpp"
#include "net/packet_io.hpp"
#include "sim/checkpoint.hpp"

namespace cocoa::mac {

namespace {
/// Truncation fan-out slack: a receiver can drift this far between a frame's
/// launch and its (early) end, so the truncation query widens the cull radius
/// by it. One metre covers any robot the scenarios model for the few
/// milliseconds a frame stays on the air.
constexpr double kTruncateSlackM = 1.0;
/// Sensed vectors reserve at least this many entries so paper-scale frames
/// all draw the same-sized block from the slab pool (64 entries * 4 bytes);
/// denser swarm neighbourhoods fall through to ordinary allocation.
constexpr std::size_t kSensedReserve = 64;
/// Radius-cache sizing: 4096 masks cover a ~16 km x 16 km active area of
/// 126 m cells at the 4x4 sub-cell quantization before the LRU recycles, a
/// few hundred KB; tiles below 16 radios skip the cache (scanning a handful
/// of candidates outright is cheaper than the mask lookup).
constexpr std::size_t kRadiusCacheCapacity = 4096;
constexpr std::uint32_t kRadiusCacheDensePopulation = 16;
}  // namespace

Medium::Medium(sim::Simulator& sim, const phy::Channel& channel, MediumConfig config)
    : sim_(sim),
      channel_(channel),
      config_(config),
      rssi_seed_base_(sim.rng().derive_seed("medium.rssi", 0)),
      loss_seed_base_(sim.rng().derive_seed("fault.loss", 0)),
      // Cell side = the largest radius ever queried (the truncation fan-out),
      // so every query stays within the tree's exact 3x3 neighbourhood bound.
      tree_((channel.max_influence_range_m() * (1.0 + 1e-9) + 1e-3) + kTruncateSlackM) {
    obs_.counters.add("medium.frames_sent", &stats_.frames_sent);
    obs_.counters.add("medium.missed_asleep", &stats_.missed_asleep);
    // Kernel observability. The queue stats are maintained identically by
    // both kernel implementations and the pool stats don't depend on the
    // kernel at all, so a legacy-kernel build's --counters output diffs
    // clean against the new kernel (CI's bit-identity gate relies on this).
    const sim::KernelStats& ks = sim_.kernel_stats();
    obs_.counters.add("kernel.events.scheduled", &ks.scheduled);
    obs_.counters.add("kernel.events.cancelled", &ks.cancelled);
    obs_.counters.add("kernel.events.sbo_miss", &ks.sbo_misses);
    obs_.counters.add("kernel.events.peak_pending", &ks.peak_pending);
    obs_.counters.add("kernel.events.executed", &sim_.executed_events_ref());
    const auto add_pool = [this](const char* prefix, const sim::PoolStats& ps) {
        const std::string base = std::string("kernel.pool.") + prefix;
        obs_.counters.add(base + ".reused", &ps.reused);
        obs_.counters.add(base + ".fresh", &ps.fresh);
        obs_.counters.add(base + ".oversize", &ps.oversize);
    };
    add_pool("frame", frame_pool_.stats());
    add_pool("sensed", sensed_core_->stats());
    add_pool("packet", packet_pool_.stats());
    // Inflate the influence radius by a hair so the bisection rounding in
    // solve_range can never put a should-be-visited radio on the culled side.
    cull_radius_m_ = channel_.max_influence_range_m() * (1.0 + 1e-9) + 1e-3;
    truncate_radius_m_ = cull_radius_m_ + kTruncateSlackM;
    inv_hash_cell_ = 1.0 / cull_radius_m_;
    radius_cache_.configure(tree_.cell_side_m(), cull_radius_m_,
                            kRadiusCacheCapacity, kRadiusCacheDensePopulation);
    // Steady-state scratch: sized once here so paper-scale neighbourhoods
    // never grow it again (swarm densities warm it within a few frames).
    sensed_scratch_.reserve(kSensedReserve);
}

std::size_t Medium::attach(Radio& radio) {
    const std::size_t index = radios_.size();
    radios_.push_back(&radio);
    available_.push_back(1);
    note_stamp_.push_back(kNeverNoted);
    if (hierarchical()) {
        tree_.insert(static_cast<std::uint32_t>(index), radio.position());
    }
    return index;
}

void Medium::set_radio_available(const Radio& radio, bool available) {
    const std::size_t index = radio.attach_index();
    assert(index < radios_.size() && radios_[index] == &radio);
    if ((available_[index] != 0) == available) return;
    available_[index] = available ? 1 : 0;
    if (!hierarchical()) return;
    if (available) {
        // Re-enter the index at wherever the robot is *now* — it kept moving
        // while the radio was dark.
        tree_.insert(static_cast<std::uint32_t>(index), radio.position());
    } else {
        tree_.remove(static_cast<std::uint32_t>(index));
    }
}

void Medium::note_position_moved(const Radio& radio) {
    // Coalesce duplicate notes within one timestamp: mobility advances a
    // radio's position at most once per simulation instant (a second
    // advance_to the same time is a no-op), so a second note at the same
    // time can only repeat the first — but under the flat oracle it would
    // invalidate the whole hash again, and under the tree it pays an
    // in-cell update per duplicate caller.
    const std::int64_t now_ns = sim_.now().to_nanos();
    if (note_stamp_[radio.attach_index()] == now_ns) return;
    note_stamp_[radio.attach_index()] = now_ns;
    if (hierarchical()) {
        // No-op for detached (off / in-outage) radios; they re-enter at
        // their live position in set_radio_available.
        tree_.update(static_cast<std::uint32_t>(radio.attach_index()), radio.position());
    } else {
        // The flat oracle has no incremental path: any movement invalidates
        // the whole hash, exactly the pre-hierarchical behaviour.
        ++position_epoch_;
    }
}

void Medium::sweep_expired() {
    const sim::TimePoint now = sim_.now();
    std::erase_if(active_, [now](const auto& f) { return f->end <= now; });
    // Compact the weak launch registry in the same stride: entries die once
    // the last lock / pending callback lets go of the frame.
    std::erase_if(launched_, [](const auto& e) { return e.second.expired(); });
}

std::uint64_t Medium::hash_cell_key(double x, double y) const {
    const auto cx = static_cast<std::int64_t>(std::floor(x * inv_hash_cell_));
    const auto cy = static_cast<std::int64_t>(std::floor(y * inv_hash_cell_));
    return (static_cast<std::uint64_t>(cx) << 32) ^
           (static_cast<std::uint64_t>(cy) & 0xffffffffull);
}

void Medium::rebuild_hash_if_stale() {
    if (hash_valid_ && hash_epoch_ == position_epoch_ &&
        hash_radio_count_ == radios_.size()) {
#ifndef NDEBUG
        for (std::size_t i = 0; i < radios_.size(); ++i) {
            // A mismatch means something moved a radio without calling
            // note_position[s]_moved() — the position contract.
            assert(radios_[i]->position() == hash_positions_[i]);
        }
#endif
        return;
    }
    hash_cells_.clear();
#ifndef NDEBUG
    hash_positions_.clear();
#endif
    for (std::size_t i = 0; i < radios_.size(); ++i) {
        const geom::Vec2 pos = radios_[i]->position();
        hash_cells_[hash_cell_key(pos.x, pos.y)].push_back(static_cast<std::uint32_t>(i));
#ifndef NDEBUG
        hash_positions_.push_back(pos);
#endif
    }
    hash_valid_ = true;
    hash_epoch_ = position_epoch_;
    hash_radio_count_ = radios_.size();
    ++flat_stats_.full_rebuilds;
}

void Medium::refresh_tree_if_stale() {
    if (!bulk_stale_) {
#ifndef NDEBUG
        for (std::size_t i = 0; i < radios_.size(); ++i) {
            // A mismatch means something moved a radio without calling
            // note_position[s]_moved() — the position contract.
            assert(!available_[i] ||
                   tree_.cached_position(static_cast<std::uint32_t>(i)) ==
                       radios_[i]->position());
        }
#endif
        return;
    }
    tree_.refresh_all(
        [this](std::uint32_t id) { return radios_[id]->position(); });
    bulk_stale_ = false;
}

void Medium::begin_transmission(Radio& sender, const net::Packet& packet,
                                sim::Duration airtime) {
    sweep_expired();
    const sim::TimePoint start = sim_.now();
    const sim::TimePoint end = start + airtime;
    const geom::Vec2 tx_pos = sender.position();

    // Per-frame key for the counter-based RSSI draws. frame_seq_ advances
    // once per transmission whether or not culling is enabled, so a frame's
    // draws are a pure function of (medium seed, frame number, receiver id).
    // The launch number doubles as the frame's durable identity
    // (AirFrame::seq) for checkpoint/restore.
    const std::uint64_t fseq = frame_seq_++;
    const std::uint64_t frame_key =
        sim::splitmix64_mix(rssi_seed_base_ ^ sim::splitmix64_mix(fseq));

    // Fault-injected loss bursts covering this frame's start (none on the
    // default path: loss_ stays empty unless a FaultInjector armed bursts).
    phy::LossSchedule::Effect loss_effect;
    if (!loss_.empty()) loss_effect = loss_.effect_at(start);

    // Sample each visited receiver's RSSI and record the carrier-sense
    // verdicts sparsely, so a radio that wakes mid-flight reads the same
    // answer the live path acted on. Culled (out-of-influence) radios keep
    // the not-sensed verdict their clamped draw could never overturn, and
    // unavailable (off / in-outage) radios are invisible to propagation.
    sensed_scratch_.clear();
    std::uint64_t visited = 0;
    // The stochastic tail of one receiver's evaluation, shared by the scalar
    // and vectorized paths: given the deterministic channel terms at the
    // receiver's distance, perform the counter-based draws and record the
    // sensed verdict. Keeping the draws here (scalar, ascending candidate
    // order) is what makes the vectorized fanout bitwise-neutral — the
    // kernels only batch the deterministic prefix.
    const auto draw = [&](std::size_t i, double mean_dbm, double sigma_db,
                          double fade_db) {
        Radio* r = radios_[i];
        ++visited;
        sim::SplitMix64 rng(sim::splitmix64_mix(
            frame_key ^ sim::splitmix64_mix(static_cast<std::uint64_t>(r->id()) + 0x51ed2701)));
        double rssi = channel_.sample_rssi_from(mean_dbm, sigma_db, fade_db, rng);
        if (loss_effect.active) {
            rssi -= loss_effect.attenuation_db;
            if (loss_effect.drop_prob > 0.0) {
                // Counter-based drop draw keyed like the RSSI draw (its own
                // base seed): dropping receiver i is a pure function of
                // (medium seed, frame number, receiver id), independent of
                // culling and of every other receiver's draw.
                sim::SplitMix64 drop_rng(sim::splitmix64_mix(
                    loss_seed_base_ ^ frame_key ^
                    sim::splitmix64_mix(static_cast<std::uint64_t>(r->id()) + 0x7b2ec997)));
                const double u = static_cast<double>(drop_rng() >> 11) * 0x1.0p-53;
                if (u < loss_effect.drop_prob) {
                    // The frame never exists for this receiver: not sensed,
                    // not decodable, invisible to a wake-time rebuild too.
                    ++stats_.fault_rx_dropped;
                    return;
                }
            }
        }
        if (channel_.sensed(rssi)) {
            sensed_scratch_.push_back(
                SensedCandidate{static_cast<std::uint32_t>(i), rssi});
        }
    };
    // Scalar per-receiver evaluation (flat oracle, unculled sweep, and the
    // Serial force path): live-position distance, then the draw tail. The
    // channel terms here and in the kernels are the same out-of-line
    // functions over the same IEEE distance, so both routes feed draw()
    // identical inputs.
    const auto visit = [&](std::size_t i) {
        Radio* r = radios_[i];
        if (r == &sender) return;
        if (available_[i] == 0) return;  // dead air for dead radios
        const double dist = geom::distance(r->position(), tx_pos);
        draw(i, channel_.mean_rssi_dbm(dist), channel_.shadowing_sigma_db(dist),
             channel_.fade_mean_db(dist));
    };

    if (config_.interference_culling) {
        const double r2 = cull_radius_m_ * cull_radius_m_;
        if (hierarchical()) {
            refresh_tree_if_stale();
            if (fanout::force_path() == fanout::ForcePath::Serial) {
                // Scalar twin of the batch path below, candidate for
                // candidate: the benches' regression anchor, byte-identical
                // by the shared-draw construction.
                tree_.for_each_in_radius(
                    tx_pos, cull_radius_m_, [&](std::uint32_t i, geom::Vec2 /*cached*/) {
                        if (radios_[i] == &sender) return;
                        // Exact test against the *live* position: the cached
                        // one only bucketed the radio, and the cell window is
                        // padded so every in-radius radio is a candidate.
                        if (geom::distance_sq(radios_[i]->position(), tx_pos) > r2) return;
                        visit(i);
                    });
            } else {
                // Vectorized fanout: gather the window's candidates (cached
                // slot positions — equal to the live ones under the
                // note_position_moved contract the Debug sweep above just
                // verified) into the SoA batch, run the blocked cull +
                // channel-term kernel, then the scalar draw tail in ascending
                // lane order. The radius cache prunes provably-out-of-disk
                // window cells before the gather in dense neighbourhoods.
                fanout_batch_.clear();
                const auto sender_idx =
                    static_cast<std::uint32_t>(sender.attach_index());
                // The sender is gathered like any candidate (no per-candidate
                // branch on the hot gather) and filtered below, where the
                // check runs once per *kept* lane instead of once per lane.
                tree_.for_each_in_radius(
                    tx_pos, cull_radius_m_, &radius_cache_,
                    [&](std::uint32_t i, geom::Vec2 cached) {
                        fanout_batch_.push(i, cached.x, cached.y);
                    });
                fanout_batch_.seal();
                const std::size_t kept = fanout::cull_and_prepare(
                    fanout::make_plan(fanout_batch_, tx_pos, r2, channel_));
                for (std::size_t k = 0; k < kept; ++k) {
                    const std::size_t l = fanout_batch_.kept_lanes[k];
                    if (fanout_batch_.idx[l] == sender_idx) continue;
#ifndef NDEBUG
                    // Decodability-threshold invariant: every kept lane lies
                    // within the influence radius, where the mean plus the
                    // maximum clamped shadowing boost reaches carrier sense
                    // (the 1e-2 dB tolerance absorbs the radius inflation
                    // sliver the cull radius adds over the influence range).
                    assert(fanout_batch_.mean_dbm[l] +
                               channel_.config().shadowing_clamp_sigmas *
                                   fanout_batch_.sigma_db[l] >=
                           channel_.config().carrier_sense_dbm - 1e-2);
#endif
                    draw(fanout_batch_.idx[l], fanout_batch_.mean_dbm[l],
                         fanout_batch_.sigma_db[l], fanout_batch_.fade_db[l]);
                }
            }
        } else {
            rebuild_hash_if_stale();
            const auto tx_cx = static_cast<std::int64_t>(std::floor(tx_pos.x * inv_hash_cell_));
            const auto tx_cy = static_cast<std::int64_t>(std::floor(tx_pos.y * inv_hash_cell_));
            for (std::int64_t cy = tx_cy - 1; cy <= tx_cy + 1; ++cy) {
                for (std::int64_t cx = tx_cx - 1; cx <= tx_cx + 1; ++cx) {
                    const std::uint64_t key = (static_cast<std::uint64_t>(cx) << 32) ^
                                              (static_cast<std::uint64_t>(cy) & 0xffffffffull);
                    const auto it = hash_cells_.find(key);
                    if (it == hash_cells_.end()) continue;
                    for (const std::uint32_t i : it->second) {
                        if (radios_[i] == &sender) continue;
                        if (geom::distance_sq(radios_[i]->position(), tx_pos) > r2) continue;
                        visit(i);
                    }
                }
            }
        }
        // The CCA callbacks below must fire in attach order — same-timestamp
        // events are FIFO, and the unculled sweep schedules them ascending.
        std::sort(sensed_scratch_.begin(), sensed_scratch_.end(),
                  [](const SensedCandidate& a, const SensedCandidate& b) {
                      return a.idx < b.idx;
                  });
    } else {
        for (std::size_t i = 0; i < radios_.size(); ++i) visit(i);
    }
    stats_.radios_visited += visited;
    stats_.radios_culled += static_cast<std::uint64_t>(radios_.size()) - 1 - visited;

    AirFrame::SensedBy sensed{sim::PoolAllocator<std::uint32_t>(sensed_core_)};
    sensed.reserve(std::max(kSensedReserve, sensed_scratch_.size()));
    for (const SensedCandidate& c : sensed_scratch_) sensed.push_back(c.idx);

    // One pooled block carries the shared_ptr control block and the frame;
    // in steady state both it and the sensed_by block above come straight
    // off a free list, so a transmission allocates nothing.
    auto frame = frame_pool_.acquire(
        AirFrame{packet, sender.id(), tx_pos, start, end, fseq, false, std::move(sensed)});
    active_.push_back(frame);
    launched_.emplace_back(fseq, frame);
    ++stats_.frames_sent;
    obs_.trace.complete(start, end, "mac", "frame",
                        static_cast<std::int64_t>(sender.id()),
                        {{"bytes", static_cast<double>(packet.wire_bytes())}});

    for (const SensedCandidate& c : sensed_scratch_) {
        Radio* r = radios_[c.idx];
        const double rssi_i = c.rssi_dbm;
        const bool decodable = channel_.decodable(rssi_i);
        // Carrier sensing and receiver lock-on take a CCA delay; radio state
        // is re-checked at that point (the radio may have slept meanwhile).
        sim_.schedule_in(
            config_.cca_delay,
            [this, r, frame, rssi_i, decodable] {
                cca_fire(r, frame, rssi_i, decodable);
            },
            sim::make_tag(sim::EventKind::kMediumCca, c.idx, decodable ? 1u : 0u, 0,
                          fseq, std::bit_cast<std::uint64_t>(rssi_i)));
    }
}

void Medium::cca_fire(Radio* r, const std::shared_ptr<const AirFrame>& frame,
                      double rssi_dbm, bool decodable) {
    // A frame whose transmitter died within the CCA window never registers
    // at the receiver (its end may already be in the past).
    if (frame->truncated) return;
    if (!r->awake()) {
        if (decodable) ++stats_.missed_asleep;
        return;
    }
    r->on_frame_start(frame, rssi_dbm, decodable);
}

void Medium::truncate_transmission(Radio& sender) {
    const sim::TimePoint now = sim_.now();
    for (const auto& frame : active_) {
        if (frame->sender != sender.id() || frame->end <= now || frame->truncated) {
            continue;
        }
        frame->truncated = true;
        frame->end = now;
        ++stats_.frames_truncated;
        obs_.trace.instant(now, "mac", "frame_truncated",
                           static_cast<std::int64_t>(sender.id()));
        // Tell nearby radios the air went quiet early: carrier sense
        // shortens, and a receiver locked on this frame aborts its decode.
        // Radios beyond the (slack-padded) cull radius of the transmit
        // position never sensed the frame, so notifying them is a no-op both
        // structures skip identically.
        const double r2 = truncate_radius_m_ * truncate_radius_m_;
        const auto in_range = [&](std::uint32_t i) {
            return radios_[i] != &sender &&
                   geom::distance_sq(radios_[i]->position(), frame->sender_position) <= r2;
        };
        // Notifications restart CSMA (schedule events), so they must run in
        // ascending attach order — the order the flat sweep produces, and the
        // FIFO tie-break same-timestamp events rely on.
        std::vector<std::uint32_t> targets;
        if (hierarchical()) {
            refresh_tree_if_stale();
            tree_.for_each_in_radius(frame->sender_position, truncate_radius_m_,
                                     [&](std::uint32_t i, geom::Vec2 /*cached*/) {
                                         if (in_range(i)) targets.push_back(i);
                                     });
            std::sort(targets.begin(), targets.end());
        } else {
            // Window scan over the spatial hash instead of the old
            // all-radios sweep: the truncation radius exceeds the hash cell
            // side (cull radius) by the slack, so a 5x5 window bounds it.
            rebuild_hash_if_stale();
            const geom::Vec2 pos = frame->sender_position;
            const auto tx_cx =
                static_cast<std::int64_t>(std::floor(pos.x * inv_hash_cell_));
            const auto tx_cy =
                static_cast<std::int64_t>(std::floor(pos.y * inv_hash_cell_));
            const auto reach = static_cast<std::int64_t>(
                std::ceil(truncate_radius_m_ * inv_hash_cell_));
            for (std::int64_t cy = tx_cy - reach; cy <= tx_cy + reach; ++cy) {
                for (std::int64_t cx = tx_cx - reach; cx <= tx_cx + reach; ++cx) {
                    const std::uint64_t key =
                        (static_cast<std::uint64_t>(cx) << 32) ^
                        (static_cast<std::uint64_t>(cy) & 0xffffffffull);
                    const auto it = hash_cells_.find(key);
                    if (it == hash_cells_.end()) continue;
                    for (const std::uint32_t i : it->second) {
                        // Unavailable radios mirror the tree's membership:
                        // they rebuild carrier sense when they come back.
                        if (available_[i] == 0) continue;
                        if (in_range(i)) targets.push_back(i);
                    }
                }
            }
            // Hash cells iterate in map order; the notification contract
            // below needs ascending attach order, like the tree path.
            std::sort(targets.begin(), targets.end());
        }
        for (const std::uint32_t i : targets) radios_[i]->on_frame_truncated(frame);
    }
}

namespace {
constexpr std::uint32_t kMarkMedium = 0x4d45444du;  // "MEDM"
constexpr std::uint32_t kMarkPools = 0x4c4f4f50u;   // "POOL"

void save_core_warmth(sim::ckpt::Writer& w, const sim::SlabCore& core) {
    w.u64(core.free_count());
    const sim::PoolStats& s = core.stats();
    w.u64(s.reused);
    w.u64(s.fresh);
    w.u64(s.oversize);
}

void load_core_warmth(sim::ckpt::Reader& r, sim::SlabCore& core) {
    const std::uint64_t free_blocks = r.u64();
    core.add_free_blocks(static_cast<std::size_t>(free_blocks));
    sim::PoolStats s;
    s.reused = r.u64();
    s.fresh = r.u64();
    s.oversize = r.u64();
    core.set_stats(s);
}
}  // namespace

void Medium::save_state(sim::ckpt::Writer& w, net::PacketSaveCtx& pkts) const {
    w.mark(kMarkMedium);
    w.u64(frame_seq_);
    const auto& bursts = loss_.bursts();
    w.u64(bursts.size());
    for (const phy::LossBurst& b : bursts) {
        w.time(b.start);
        w.time(b.end);
        w.f64(b.drop_prob);
        w.f64(b.attenuation_db);
    }
    w.u64(stats_.frames_sent);
    w.u64(stats_.missed_asleep);
    w.u64(stats_.radios_visited);
    w.u64(stats_.radios_culled);
    w.u64(stats_.frames_truncated);
    w.u64(stats_.fault_rx_dropped);
    w.u64(flat_stats_.full_rebuilds);
    // Index and radius-cache bookkeeping: unregistered, but surfaced through
    // the swarm table / swarm-json line, so a restored run must report the
    // straight run's values.
    const spatial::CellTreeStats& ts = tree_.stats();
    w.u64(ts.inserts);
    w.u64(ts.removes);
    w.u64(ts.migrations);
    w.u64(ts.in_cell_updates);
    w.u64(ts.full_refreshes);
    w.u64(ts.queries);
    w.u64(ts.candidates_visited);
    w.u64(ts.cells_pruned);
    const spatial::RadiusCacheStats& rs = radius_cache_.stats();
    w.u64(rs.lookups);
    w.u64(rs.hits);
    w.u64(rs.misses);
    w.u64(rs.evictions);
    w.u64(rs.cells_pruned);
    w.u64(rs.sparse_bypass);
    // Cache content (recency order): a restored cache must be exactly as
    // warm as the straight run's, or hit/miss counts diverge afterwards.
    const auto entries = radius_cache_.export_entries();
    w.u64(entries.size());
    for (const auto& [key, mask] : entries) {
        w.u64(key);
        w.u32(mask);
    }
    // Learned block sizes come before the frames so load_state can pre-seed
    // the cores: the first restored allocation must classify exactly like the
    // straight run's did.
    w.u64(frame_pool_.core()->block_size());
    w.u64(sensed_core_->block_size());
    w.u64(packet_pool_.core()->block_size());
    // Every frame still referenced anywhere, in launch order (canonical form:
    // identical runs write identical blobs).
    std::vector<std::pair<std::uint64_t, std::shared_ptr<AirFrame>>> alive;
    for (const auto& [seq, weak] : launched_) {
        if (auto frame = weak.lock()) alive.emplace_back(seq, std::move(frame));
    }
    std::sort(alive.begin(), alive.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.u64(alive.size());
    for (const auto& [seq, frame] : alive) {
        w.u64(seq);
        net::save_packet(w, frame->packet, pkts);
        w.u32(frame->sender);
        w.f64(frame->sender_position.x);
        w.f64(frame->sender_position.y);
        w.time(frame->start);
        w.time(frame->end);
        w.b(frame->truncated);
        w.u64(frame->sensed_by.size());
        for (const std::uint32_t idx : frame->sensed_by) w.u32(idx);
    }
    w.u64(active_.size());
    for (const auto& frame : active_) w.u64(frame->seq);
}

void Medium::load_state(sim::ckpt::Reader& r, net::PacketLoadCtx& pkts) {
    r.expect(kMarkMedium);
    frame_seq_ = r.u64();
    const std::uint64_t nbursts = r.u64();
    for (std::uint64_t i = 0; i < nbursts; ++i) {
        phy::LossBurst b;
        b.start = r.time();
        b.end = r.time();
        b.drop_prob = r.f64();
        b.attenuation_db = r.f64();
        loss_.add(b);
    }
    stats_.frames_sent = r.u64();
    stats_.missed_asleep = r.u64();
    stats_.radios_visited = r.u64();
    stats_.radios_culled = r.u64();
    stats_.frames_truncated = r.u64();
    stats_.fault_rx_dropped = r.u64();
    flat_stats_.full_rebuilds = r.u64();
    spatial::CellTreeStats& ts = restore_tree_stats_;
    ts.inserts = r.u64();
    ts.removes = r.u64();
    ts.migrations = r.u64();
    ts.in_cell_updates = r.u64();
    ts.full_refreshes = r.u64();
    ts.queries = r.u64();
    ts.candidates_visited = r.u64();
    ts.cells_pruned = r.u64();
    spatial::RadiusCacheStats& rs = restore_cache_stats_;
    rs.lookups = r.u64();
    rs.hits = r.u64();
    rs.misses = r.u64();
    rs.evictions = r.u64();
    rs.cells_pruned = r.u64();
    rs.sparse_bypass = r.u64();
    const std::uint64_t ncached = r.u64();
    std::vector<std::pair<std::uint64_t, std::uint16_t>> entries;
    entries.reserve(static_cast<std::size_t>(ncached));
    for (std::uint64_t i = 0; i < ncached; ++i) {
        const std::uint64_t key = r.u64();
        const auto mask = static_cast<std::uint16_t>(r.u32());
        entries.emplace_back(key, mask);
    }
    radius_cache_.import_entries(entries);
    frame_pool_.core()->set_block_size(static_cast<std::size_t>(r.u64()));
    sensed_core_->set_block_size(static_cast<std::size_t>(r.u64()));
    packet_pool_.core()->set_block_size(static_cast<std::size_t>(r.u64()));
    active_.clear();
    launched_.clear();
    restore_frames_.clear();
    const std::uint64_t nframes = r.u64();
    for (std::uint64_t i = 0; i < nframes; ++i) {
        const std::uint64_t seq = r.u64();
        net::Packet packet = net::load_packet(r, pkts);
        const net::NodeId sender = r.u32();
        geom::Vec2 pos;
        pos.x = r.f64();
        pos.y = r.f64();
        const sim::TimePoint start = r.time();
        const sim::TimePoint end = r.time();
        const bool truncated = r.b();
        const std::uint64_t nsensed = r.u64();
        AirFrame::SensedBy sensed{sim::PoolAllocator<std::uint32_t>(sensed_core_)};
        // Mirror begin_transmission's reservation exactly, so the sensed
        // block classifies (pooled vs oversize) like the original did.
        sensed.reserve(std::max<std::size_t>(kSensedReserve,
                                             static_cast<std::size_t>(nsensed)));
        for (std::uint64_t k = 0; k < nsensed; ++k) sensed.push_back(r.u32());
        auto frame = frame_pool_.acquire(AirFrame{std::move(packet), sender, pos,
                                                  start, end, seq, truncated,
                                                  std::move(sensed)});
        launched_.emplace_back(seq, frame);
        restore_frames_.emplace(seq, std::move(frame));
    }
    const std::uint64_t nactive = r.u64();
    for (std::uint64_t i = 0; i < nactive; ++i) {
        active_.push_back(restored_frame(r.u64()));
    }
    // Cached positions (tree or hash) refresh wholesale before the next
    // query; membership itself is rebuilt by the radios' availability
    // restore. The churn perturbs only unregistered index stats, which
    // finish_restore() stamps back to the saved values once it is over.
    note_positions_moved();
}

void Medium::finish_restore() {
    restore_frames_.clear();
    // Run the post-load refresh sweep NOW, while it is still attributable to
    // the restore, then overwrite the bookkeeping with the snapshot values.
    // From here on the index counters advance exactly as the straight run's
    // would — a restored run's swarm table diffs clean.
    if (hierarchical()) {
        refresh_tree_if_stale();
    }
    tree_.set_stats(restore_tree_stats_);
    radius_cache_.set_stats(restore_cache_stats_);
}

const std::shared_ptr<AirFrame>& Medium::restored_frame(std::uint64_t seq) const {
    const auto it = restore_frames_.find(seq);
    if (it == restore_frames_.end()) {
        throw std::runtime_error("Medium::restored_frame: unknown frame seq " +
                                 std::to_string(seq));
    }
    return it->second;
}

void Medium::save_pool_warmth(sim::ckpt::Writer& w) const {
    w.mark(kMarkPools);
    save_core_warmth(w, *frame_pool_.core());
    save_core_warmth(w, *sensed_core_);
    save_core_warmth(w, *packet_pool_.core());
}

void Medium::load_pool_warmth(sim::ckpt::Reader& r) {
    r.expect(kMarkPools);
    load_core_warmth(r, *frame_pool_.core());
    load_core_warmth(r, *sensed_core_);
    load_core_warmth(r, *packet_pool_.core());
}

void Medium::register_rebuilders(sim::ckpt::CallbackRegistry& reg) {
    reg.add(sim::EventKind::kMediumCca, [this](const sim::EventTag& tag) {
        Radio* r = radios_.at(tag.node);
        std::shared_ptr<const AirFrame> frame = restored_frame(tag.a);
        const double rssi = std::bit_cast<double>(tag.b);
        const bool decodable = tag.x != 0;
        return sim::InplaceCallback([this, r, frame, rssi, decodable] {
            cca_fire(r, frame, rssi, decodable);
        });
    });
    reg.add(
        sim::EventKind::kRadioAttempt,
        [this](const sim::EventTag& tag) {
            Radio* r = radios_.at(tag.node);
            return sim::InplaceCallback([r] { r->attempt_tx(); });
        },
        [this](const sim::EventTag& tag, sim::EventId id) {
            radios_.at(tag.node)->attempt_event_ = id;
        });
    reg.add(sim::EventKind::kRadioEndTx, [this](const sim::EventTag& tag) {
        Radio* r = radios_.at(tag.node);
        return sim::InplaceCallback([r] { r->end_tx(); });
    });
    reg.add(sim::EventKind::kRadioFrameEnd, [this](const sim::EventTag& tag) {
        Radio* r = radios_.at(tag.node);
        std::shared_ptr<const AirFrame> frame = restored_frame(tag.a);
        return sim::InplaceCallback([r, frame] { r->on_frame_end(frame); });
    });
}

sim::TimePoint Medium::sensed_until_for(const Radio& listener) const {
    const std::size_t idx = listener.attach_index();
    sim::TimePoint until = sim_.now();
    for (const auto& frame : active_) {
        if (frame->end <= sim_.now() || frame->sender == listener.id()) continue;
        if (frame->senses(idx)) {
            until = std::max(until, frame->end);
        }
    }
    return until;
}

}  // namespace cocoa::mac
