#include "mac/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "mac/radio.hpp"

namespace cocoa::mac {

namespace {
/// Truncation fan-out slack: a receiver can drift this far between a frame's
/// launch and its (early) end, so the truncation query widens the cull radius
/// by it. One metre covers any robot the scenarios model for the few
/// milliseconds a frame stays on the air.
constexpr double kTruncateSlackM = 1.0;
/// Sensed vectors reserve at least this many entries so paper-scale frames
/// all draw the same-sized block from the slab pool (64 entries * 4 bytes);
/// denser swarm neighbourhoods fall through to ordinary allocation.
constexpr std::size_t kSensedReserve = 64;
/// Radius-cache sizing: 4096 masks cover a ~16 km x 16 km active area of
/// 126 m cells at the 4x4 sub-cell quantization before the LRU recycles, a
/// few hundred KB; tiles below 16 radios skip the cache (scanning a handful
/// of candidates outright is cheaper than the mask lookup).
constexpr std::size_t kRadiusCacheCapacity = 4096;
constexpr std::uint32_t kRadiusCacheDensePopulation = 16;
}  // namespace

Medium::Medium(sim::Simulator& sim, const phy::Channel& channel, MediumConfig config)
    : sim_(sim),
      channel_(channel),
      config_(config),
      rssi_seed_base_(sim.rng().derive_seed("medium.rssi", 0)),
      loss_seed_base_(sim.rng().derive_seed("fault.loss", 0)),
      // Cell side = the largest radius ever queried (the truncation fan-out),
      // so every query stays within the tree's exact 3x3 neighbourhood bound.
      tree_((channel.max_influence_range_m() * (1.0 + 1e-9) + 1e-3) + kTruncateSlackM) {
    obs_.counters.add("medium.frames_sent", &stats_.frames_sent);
    obs_.counters.add("medium.missed_asleep", &stats_.missed_asleep);
    // Kernel observability. The queue stats are maintained identically by
    // both kernel implementations and the pool stats don't depend on the
    // kernel at all, so a legacy-kernel build's --counters output diffs
    // clean against the new kernel (CI's bit-identity gate relies on this).
    const sim::KernelStats& ks = sim_.kernel_stats();
    obs_.counters.add("kernel.events.scheduled", &ks.scheduled);
    obs_.counters.add("kernel.events.cancelled", &ks.cancelled);
    obs_.counters.add("kernel.events.sbo_miss", &ks.sbo_misses);
    obs_.counters.add("kernel.events.peak_pending", &ks.peak_pending);
    obs_.counters.add("kernel.events.executed", &sim_.executed_events_ref());
    const auto add_pool = [this](const char* prefix, const sim::PoolStats& ps) {
        const std::string base = std::string("kernel.pool.") + prefix;
        obs_.counters.add(base + ".reused", &ps.reused);
        obs_.counters.add(base + ".fresh", &ps.fresh);
        obs_.counters.add(base + ".oversize", &ps.oversize);
    };
    add_pool("frame", frame_pool_.stats());
    add_pool("sensed", sensed_core_->stats());
    add_pool("packet", packet_pool_.stats());
    // Inflate the influence radius by a hair so the bisection rounding in
    // solve_range can never put a should-be-visited radio on the culled side.
    cull_radius_m_ = channel_.max_influence_range_m() * (1.0 + 1e-9) + 1e-3;
    truncate_radius_m_ = cull_radius_m_ + kTruncateSlackM;
    inv_hash_cell_ = 1.0 / cull_radius_m_;
    radius_cache_.configure(tree_.cell_side_m(), cull_radius_m_,
                            kRadiusCacheCapacity, kRadiusCacheDensePopulation);
    // Steady-state scratch: sized once here so paper-scale neighbourhoods
    // never grow it again (swarm densities warm it within a few frames).
    sensed_scratch_.reserve(kSensedReserve);
}

std::size_t Medium::attach(Radio& radio) {
    const std::size_t index = radios_.size();
    radios_.push_back(&radio);
    available_.push_back(1);
    note_stamp_.push_back(kNeverNoted);
    if (hierarchical()) {
        tree_.insert(static_cast<std::uint32_t>(index), radio.position());
    }
    return index;
}

void Medium::set_radio_available(const Radio& radio, bool available) {
    const std::size_t index = radio.attach_index();
    assert(index < radios_.size() && radios_[index] == &radio);
    if ((available_[index] != 0) == available) return;
    available_[index] = available ? 1 : 0;
    if (!hierarchical()) return;
    if (available) {
        // Re-enter the index at wherever the robot is *now* — it kept moving
        // while the radio was dark.
        tree_.insert(static_cast<std::uint32_t>(index), radio.position());
    } else {
        tree_.remove(static_cast<std::uint32_t>(index));
    }
}

void Medium::note_position_moved(const Radio& radio) {
    // Coalesce duplicate notes within one timestamp: mobility advances a
    // radio's position at most once per simulation instant (a second
    // advance_to the same time is a no-op), so a second note at the same
    // time can only repeat the first — but under the flat oracle it would
    // invalidate the whole hash again, and under the tree it pays an
    // in-cell update per duplicate caller.
    const std::int64_t now_ns = sim_.now().to_nanos();
    if (note_stamp_[radio.attach_index()] == now_ns) return;
    note_stamp_[radio.attach_index()] = now_ns;
    if (hierarchical()) {
        // No-op for detached (off / in-outage) radios; they re-enter at
        // their live position in set_radio_available.
        tree_.update(static_cast<std::uint32_t>(radio.attach_index()), radio.position());
    } else {
        // The flat oracle has no incremental path: any movement invalidates
        // the whole hash, exactly the pre-hierarchical behaviour.
        ++position_epoch_;
    }
}

void Medium::sweep_expired() {
    const sim::TimePoint now = sim_.now();
    std::erase_if(active_, [now](const auto& f) { return f->end <= now; });
}

std::uint64_t Medium::hash_cell_key(double x, double y) const {
    const auto cx = static_cast<std::int64_t>(std::floor(x * inv_hash_cell_));
    const auto cy = static_cast<std::int64_t>(std::floor(y * inv_hash_cell_));
    return (static_cast<std::uint64_t>(cx) << 32) ^
           (static_cast<std::uint64_t>(cy) & 0xffffffffull);
}

void Medium::rebuild_hash_if_stale() {
    if (hash_valid_ && hash_epoch_ == position_epoch_ &&
        hash_radio_count_ == radios_.size()) {
#ifndef NDEBUG
        for (std::size_t i = 0; i < radios_.size(); ++i) {
            // A mismatch means something moved a radio without calling
            // note_position[s]_moved() — the position contract.
            assert(radios_[i]->position() == hash_positions_[i]);
        }
#endif
        return;
    }
    hash_cells_.clear();
#ifndef NDEBUG
    hash_positions_.clear();
#endif
    for (std::size_t i = 0; i < radios_.size(); ++i) {
        const geom::Vec2 pos = radios_[i]->position();
        hash_cells_[hash_cell_key(pos.x, pos.y)].push_back(static_cast<std::uint32_t>(i));
#ifndef NDEBUG
        hash_positions_.push_back(pos);
#endif
    }
    hash_valid_ = true;
    hash_epoch_ = position_epoch_;
    hash_radio_count_ = radios_.size();
    ++flat_stats_.full_rebuilds;
}

void Medium::refresh_tree_if_stale() {
    if (!bulk_stale_) {
#ifndef NDEBUG
        for (std::size_t i = 0; i < radios_.size(); ++i) {
            // A mismatch means something moved a radio without calling
            // note_position[s]_moved() — the position contract.
            assert(!available_[i] ||
                   tree_.cached_position(static_cast<std::uint32_t>(i)) ==
                       radios_[i]->position());
        }
#endif
        return;
    }
    tree_.refresh_all(
        [this](std::uint32_t id) { return radios_[id]->position(); });
    bulk_stale_ = false;
}

void Medium::begin_transmission(Radio& sender, const net::Packet& packet,
                                sim::Duration airtime) {
    sweep_expired();
    const sim::TimePoint start = sim_.now();
    const sim::TimePoint end = start + airtime;
    const geom::Vec2 tx_pos = sender.position();

    // Per-frame key for the counter-based RSSI draws. frame_seq_ advances
    // once per transmission whether or not culling is enabled, so a frame's
    // draws are a pure function of (medium seed, frame number, receiver id).
    const std::uint64_t frame_key =
        sim::splitmix64_mix(rssi_seed_base_ ^ sim::splitmix64_mix(frame_seq_++));

    // Fault-injected loss bursts covering this frame's start (none on the
    // default path: loss_ stays empty unless a FaultInjector armed bursts).
    phy::LossSchedule::Effect loss_effect;
    if (!loss_.empty()) loss_effect = loss_.effect_at(start);

    // Sample each visited receiver's RSSI and record the carrier-sense
    // verdicts sparsely, so a radio that wakes mid-flight reads the same
    // answer the live path acted on. Culled (out-of-influence) radios keep
    // the not-sensed verdict their clamped draw could never overturn, and
    // unavailable (off / in-outage) radios are invisible to propagation.
    sensed_scratch_.clear();
    std::uint64_t visited = 0;
    // The stochastic tail of one receiver's evaluation, shared by the scalar
    // and vectorized paths: given the deterministic channel terms at the
    // receiver's distance, perform the counter-based draws and record the
    // sensed verdict. Keeping the draws here (scalar, ascending candidate
    // order) is what makes the vectorized fanout bitwise-neutral — the
    // kernels only batch the deterministic prefix.
    const auto draw = [&](std::size_t i, double mean_dbm, double sigma_db,
                          double fade_db) {
        Radio* r = radios_[i];
        ++visited;
        sim::SplitMix64 rng(sim::splitmix64_mix(
            frame_key ^ sim::splitmix64_mix(static_cast<std::uint64_t>(r->id()) + 0x51ed2701)));
        double rssi = channel_.sample_rssi_from(mean_dbm, sigma_db, fade_db, rng);
        if (loss_effect.active) {
            rssi -= loss_effect.attenuation_db;
            if (loss_effect.drop_prob > 0.0) {
                // Counter-based drop draw keyed like the RSSI draw (its own
                // base seed): dropping receiver i is a pure function of
                // (medium seed, frame number, receiver id), independent of
                // culling and of every other receiver's draw.
                sim::SplitMix64 drop_rng(sim::splitmix64_mix(
                    loss_seed_base_ ^ frame_key ^
                    sim::splitmix64_mix(static_cast<std::uint64_t>(r->id()) + 0x7b2ec997)));
                const double u = static_cast<double>(drop_rng() >> 11) * 0x1.0p-53;
                if (u < loss_effect.drop_prob) {
                    // The frame never exists for this receiver: not sensed,
                    // not decodable, invisible to a wake-time rebuild too.
                    ++stats_.fault_rx_dropped;
                    return;
                }
            }
        }
        if (channel_.sensed(rssi)) {
            sensed_scratch_.push_back(
                SensedCandidate{static_cast<std::uint32_t>(i), rssi});
        }
    };
    // Scalar per-receiver evaluation (flat oracle, unculled sweep, and the
    // Serial force path): live-position distance, then the draw tail. The
    // channel terms here and in the kernels are the same out-of-line
    // functions over the same IEEE distance, so both routes feed draw()
    // identical inputs.
    const auto visit = [&](std::size_t i) {
        Radio* r = radios_[i];
        if (r == &sender) return;
        if (available_[i] == 0) return;  // dead air for dead radios
        const double dist = geom::distance(r->position(), tx_pos);
        draw(i, channel_.mean_rssi_dbm(dist), channel_.shadowing_sigma_db(dist),
             channel_.fade_mean_db(dist));
    };

    if (config_.interference_culling) {
        const double r2 = cull_radius_m_ * cull_radius_m_;
        if (hierarchical()) {
            refresh_tree_if_stale();
            if (fanout::force_path() == fanout::ForcePath::Serial) {
                // Scalar twin of the batch path below, candidate for
                // candidate: the benches' regression anchor, byte-identical
                // by the shared-draw construction.
                tree_.for_each_in_radius(
                    tx_pos, cull_radius_m_, [&](std::uint32_t i, geom::Vec2 /*cached*/) {
                        if (radios_[i] == &sender) return;
                        // Exact test against the *live* position: the cached
                        // one only bucketed the radio, and the cell window is
                        // padded so every in-radius radio is a candidate.
                        if (geom::distance_sq(radios_[i]->position(), tx_pos) > r2) return;
                        visit(i);
                    });
            } else {
                // Vectorized fanout: gather the window's candidates (cached
                // slot positions — equal to the live ones under the
                // note_position_moved contract the Debug sweep above just
                // verified) into the SoA batch, run the blocked cull +
                // channel-term kernel, then the scalar draw tail in ascending
                // lane order. The radius cache prunes provably-out-of-disk
                // window cells before the gather in dense neighbourhoods.
                fanout_batch_.clear();
                const auto sender_idx =
                    static_cast<std::uint32_t>(sender.attach_index());
                // The sender is gathered like any candidate (no per-candidate
                // branch on the hot gather) and filtered below, where the
                // check runs once per *kept* lane instead of once per lane.
                tree_.for_each_in_radius(
                    tx_pos, cull_radius_m_, &radius_cache_,
                    [&](std::uint32_t i, geom::Vec2 cached) {
                        fanout_batch_.push(i, cached.x, cached.y);
                    });
                fanout_batch_.seal();
                const std::size_t kept = fanout::cull_and_prepare(
                    fanout::make_plan(fanout_batch_, tx_pos, r2, channel_));
                for (std::size_t k = 0; k < kept; ++k) {
                    const std::size_t l = fanout_batch_.kept_lanes[k];
                    if (fanout_batch_.idx[l] == sender_idx) continue;
#ifndef NDEBUG
                    // Decodability-threshold invariant: every kept lane lies
                    // within the influence radius, where the mean plus the
                    // maximum clamped shadowing boost reaches carrier sense
                    // (the 1e-2 dB tolerance absorbs the radius inflation
                    // sliver the cull radius adds over the influence range).
                    assert(fanout_batch_.mean_dbm[l] +
                               channel_.config().shadowing_clamp_sigmas *
                                   fanout_batch_.sigma_db[l] >=
                           channel_.config().carrier_sense_dbm - 1e-2);
#endif
                    draw(fanout_batch_.idx[l], fanout_batch_.mean_dbm[l],
                         fanout_batch_.sigma_db[l], fanout_batch_.fade_db[l]);
                }
            }
        } else {
            rebuild_hash_if_stale();
            const auto tx_cx = static_cast<std::int64_t>(std::floor(tx_pos.x * inv_hash_cell_));
            const auto tx_cy = static_cast<std::int64_t>(std::floor(tx_pos.y * inv_hash_cell_));
            for (std::int64_t cy = tx_cy - 1; cy <= tx_cy + 1; ++cy) {
                for (std::int64_t cx = tx_cx - 1; cx <= tx_cx + 1; ++cx) {
                    const std::uint64_t key = (static_cast<std::uint64_t>(cx) << 32) ^
                                              (static_cast<std::uint64_t>(cy) & 0xffffffffull);
                    const auto it = hash_cells_.find(key);
                    if (it == hash_cells_.end()) continue;
                    for (const std::uint32_t i : it->second) {
                        if (radios_[i] == &sender) continue;
                        if (geom::distance_sq(radios_[i]->position(), tx_pos) > r2) continue;
                        visit(i);
                    }
                }
            }
        }
        // The CCA callbacks below must fire in attach order — same-timestamp
        // events are FIFO, and the unculled sweep schedules them ascending.
        std::sort(sensed_scratch_.begin(), sensed_scratch_.end(),
                  [](const SensedCandidate& a, const SensedCandidate& b) {
                      return a.idx < b.idx;
                  });
    } else {
        for (std::size_t i = 0; i < radios_.size(); ++i) visit(i);
    }
    stats_.radios_visited += visited;
    stats_.radios_culled += static_cast<std::uint64_t>(radios_.size()) - 1 - visited;

    AirFrame::SensedBy sensed{sim::PoolAllocator<std::uint32_t>(sensed_core_)};
    sensed.reserve(std::max(kSensedReserve, sensed_scratch_.size()));
    for (const SensedCandidate& c : sensed_scratch_) sensed.push_back(c.idx);

    // One pooled block carries the shared_ptr control block and the frame;
    // in steady state both it and the sensed_by block above come straight
    // off a free list, so a transmission allocates nothing.
    auto frame = frame_pool_.acquire(
        AirFrame{packet, sender.id(), tx_pos, start, end, false, std::move(sensed)});
    active_.push_back(frame);
    ++stats_.frames_sent;
    obs_.trace.complete(start, end, "mac", "frame",
                        static_cast<std::int64_t>(sender.id()),
                        {{"bytes", static_cast<double>(packet.wire_bytes())}});

    for (const SensedCandidate& c : sensed_scratch_) {
        Radio* r = radios_[c.idx];
        const double rssi_i = c.rssi_dbm;
        const bool decodable = channel_.decodable(rssi_i);
        // Carrier sensing and receiver lock-on take a CCA delay; radio state
        // is re-checked at that point (the radio may have slept meanwhile).
        sim_.schedule_in(config_.cca_delay, [this, r, frame, rssi_i, decodable] {
            // A frame whose transmitter died within the CCA window never
            // registers at the receiver (its end may already be in the past).
            if (frame->truncated) return;
            if (!r->awake()) {
                if (decodable) ++stats_.missed_asleep;
                return;
            }
            r->on_frame_start(frame, rssi_i, decodable);
        });
    }
}

void Medium::truncate_transmission(Radio& sender) {
    const sim::TimePoint now = sim_.now();
    for (const auto& frame : active_) {
        if (frame->sender != sender.id() || frame->end <= now || frame->truncated) {
            continue;
        }
        frame->truncated = true;
        frame->end = now;
        ++stats_.frames_truncated;
        obs_.trace.instant(now, "mac", "frame_truncated",
                           static_cast<std::int64_t>(sender.id()));
        // Tell nearby radios the air went quiet early: carrier sense
        // shortens, and a receiver locked on this frame aborts its decode.
        // Radios beyond the (slack-padded) cull radius of the transmit
        // position never sensed the frame, so notifying them is a no-op both
        // structures skip identically.
        const double r2 = truncate_radius_m_ * truncate_radius_m_;
        const auto in_range = [&](std::uint32_t i) {
            return radios_[i] != &sender &&
                   geom::distance_sq(radios_[i]->position(), frame->sender_position) <= r2;
        };
        // Notifications restart CSMA (schedule events), so they must run in
        // ascending attach order — the order the flat sweep produces, and the
        // FIFO tie-break same-timestamp events rely on.
        std::vector<std::uint32_t> targets;
        if (hierarchical()) {
            refresh_tree_if_stale();
            tree_.for_each_in_radius(frame->sender_position, truncate_radius_m_,
                                     [&](std::uint32_t i, geom::Vec2 /*cached*/) {
                                         if (in_range(i)) targets.push_back(i);
                                     });
            std::sort(targets.begin(), targets.end());
        } else {
            // Window scan over the spatial hash instead of the old
            // all-radios sweep: the truncation radius exceeds the hash cell
            // side (cull radius) by the slack, so a 5x5 window bounds it.
            rebuild_hash_if_stale();
            const geom::Vec2 pos = frame->sender_position;
            const auto tx_cx =
                static_cast<std::int64_t>(std::floor(pos.x * inv_hash_cell_));
            const auto tx_cy =
                static_cast<std::int64_t>(std::floor(pos.y * inv_hash_cell_));
            const auto reach = static_cast<std::int64_t>(
                std::ceil(truncate_radius_m_ * inv_hash_cell_));
            for (std::int64_t cy = tx_cy - reach; cy <= tx_cy + reach; ++cy) {
                for (std::int64_t cx = tx_cx - reach; cx <= tx_cx + reach; ++cx) {
                    const std::uint64_t key =
                        (static_cast<std::uint64_t>(cx) << 32) ^
                        (static_cast<std::uint64_t>(cy) & 0xffffffffull);
                    const auto it = hash_cells_.find(key);
                    if (it == hash_cells_.end()) continue;
                    for (const std::uint32_t i : it->second) {
                        // Unavailable radios mirror the tree's membership:
                        // they rebuild carrier sense when they come back.
                        if (available_[i] == 0) continue;
                        if (in_range(i)) targets.push_back(i);
                    }
                }
            }
            // Hash cells iterate in map order; the notification contract
            // below needs ascending attach order, like the tree path.
            std::sort(targets.begin(), targets.end());
        }
        for (const std::uint32_t i : targets) radios_[i]->on_frame_truncated(frame);
    }
}

sim::TimePoint Medium::sensed_until_for(const Radio& listener) const {
    const std::size_t idx = listener.attach_index();
    sim::TimePoint until = sim_.now();
    for (const auto& frame : active_) {
        if (frame->end <= sim_.now() || frame->sender == listener.id()) continue;
        if (frame->senses(idx)) {
            until = std::max(until, frame->end);
        }
    }
    return until;
}

}  // namespace cocoa::mac
