#include "mac/medium.hpp"

#include <algorithm>

#include "mac/radio.hpp"

namespace cocoa::mac {

Medium::Medium(sim::Simulator& sim, const phy::Channel& channel, MediumConfig config)
    : sim_(sim),
      channel_(channel),
      config_(config),
      rssi_rng_(sim.rng().stream("medium.rssi")) {}

void Medium::attach(Radio& radio) { radios_.push_back(&radio); }

void Medium::sweep_expired() {
    const sim::TimePoint now = sim_.now();
    std::erase_if(active_, [now](const auto& f) { return f->end <= now; });
}

void Medium::begin_transmission(Radio& sender, const net::Packet& packet,
                                sim::Duration airtime) {
    sweep_expired();
    auto frame = std::make_shared<const AirFrame>(AirFrame{
        packet, sender.id(), sender.position(), sim_.now(), sim_.now() + airtime});
    active_.push_back(frame);
    ++stats_.frames_sent;

    for (Radio* r : radios_) {
        if (r == &sender) continue;
        const double dist = geom::distance(r->position(), frame->sender_position);
        const double rssi = channel_.sample_rssi_dbm(dist, rssi_rng_);
        if (!channel_.sensed(rssi)) continue;
        // Carrier sensing and receiver lock-on take a CCA delay; radio state
        // is re-checked at that point (the radio may have slept meanwhile).
        sim_.schedule_in(config_.cca_delay, [this, r, frame, rssi] {
            if (!r->awake()) {
                if (channel_.decodable(rssi)) ++stats_.missed_asleep;
                return;
            }
            r->on_frame_start(frame, rssi, channel_.decodable(rssi));
        });
    }
}

sim::TimePoint Medium::sensed_until_for(const Radio& listener) const {
    sim::TimePoint until = sim_.now();
    for (const auto& frame : active_) {
        if (frame->end <= sim_.now() || frame->sender == listener.id()) continue;
        const double dist = geom::distance(listener.position(), frame->sender_position);
        if (channel_.sensed(channel_.mean_rssi_dbm(dist))) {
            until = std::max(until, frame->end);
        }
    }
    return until;
}

}  // namespace cocoa::mac
