// AVX-512 instantiation of the fanout kernels. Compiled with -mavx512f (per
// file, from src/mac/CMakeLists.txt) and only ever called after the runtime
// dispatcher has checked __builtin_cpu_supports("avx512f"). See
// fanout_kernels_impl.hpp for the byte-identity contract.
#if defined(__x86_64__) || defined(_M_X64)

#define COCOA_FANOUT_ISA_NS avx512
#include "mac/fanout_kernels_impl.hpp"

#endif
