#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"
#include "net/packet.hpp"
#include "sim/pool.hpp"
#include "sim/time.hpp"

namespace cocoa::mac {

/// One frame in flight on the shared medium. Immutable once created —
/// except when its transmitter dies mid-frame, which pulls `end` forward and
/// sets `truncated` (Medium::truncate_transmission, the only writer);
/// per-receiver outcomes (collision corruption) live in the receivers.
struct AirFrame {
    /// Verdict block allocator: one frame's sensed_by is always exactly
    /// `radios` bytes, so Medium hands every frame the same SlabCore and the
    /// block recycles through its free list. Default-constructed (null core)
    /// the allocator degrades to plain new, so tests building bare AirFrames
    /// work unchanged.
    using SensedBy = std::vector<std::uint8_t, sim::PoolAllocator<std::uint8_t>>;

    net::Packet packet;
    net::NodeId sender = net::kInvalidId;
    geom::Vec2 sender_position;  ///< at transmission start
    sim::TimePoint start;
    sim::TimePoint end;
    /// The transmitter died mid-frame: the frame stopped at `end` (earlier
    /// than the scheduled airtime) and no receiver can decode it.
    bool truncated = false;
    /// Per-receiver carrier-sense verdict, indexed by medium attach order,
    /// fixed at transmission start from the same sampled RSSI the live
    /// receive path uses. Radios that wake mid-frame consult this instead of
    /// re-deciding from the mean, so sensing is consistent either way.
    SensedBy sensed_by;
};

}  // namespace cocoa::mac
