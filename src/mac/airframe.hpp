#pragma once

#include "geom/vec2.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace cocoa::mac {

/// One frame in flight on the shared medium. Immutable once created;
/// per-receiver outcomes (collision corruption) live in the receivers.
struct AirFrame {
    net::Packet packet;
    net::NodeId sender = net::kInvalidId;
    geom::Vec2 sender_position;  ///< at transmission start
    sim::TimePoint start;
    sim::TimePoint end;
};

}  // namespace cocoa::mac
