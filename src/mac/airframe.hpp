#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"
#include "net/packet.hpp"
#include "sim/pool.hpp"
#include "sim/time.hpp"

namespace cocoa::mac {

/// One frame in flight on the shared medium. Immutable once created —
/// except when its transmitter dies mid-frame, which pulls `end` forward and
/// sets `truncated` (Medium::truncate_transmission, the only writer);
/// per-receiver outcomes (collision corruption) live in the receivers.
struct AirFrame {
    /// Sorted attach indices of the radios that sensed this frame. Sparse on
    /// purpose: a frame's footprint scales with its radio neighbourhood, not
    /// with the whole team, which is what keeps a 100k-node swarm from doing
    /// O(n) work per transmission. Medium hands every frame the same
    /// SlabCore, so blocks recycle through its free list; default-constructed
    /// (null core) the allocator degrades to plain new, so tests building
    /// bare AirFrames work unchanged.
    using SensedBy = std::vector<std::uint32_t, sim::PoolAllocator<std::uint32_t>>;

    net::Packet packet;
    net::NodeId sender = net::kInvalidId;
    geom::Vec2 sender_position;  ///< at transmission start
    sim::TimePoint start;
    sim::TimePoint end;
    /// Per-medium monotone launch number (Medium::frame_seq_ at transmission
    /// start). The durable identity of a frame: checkpoints key in-flight
    /// frames, receive locks, and pending CCA / frame-end events by this, so
    /// restore can re-link every reference to one shared restored instance.
    std::uint64_t seq = 0;
    /// The transmitter died mid-frame: the frame stopped at `end` (earlier
    /// than the scheduled airtime) and no receiver can decode it.
    bool truncated = false;
    /// Carrier-sense verdicts, fixed at transmission start from the same
    /// sampled RSSI the live receive path uses. Radios that wake mid-frame
    /// consult this instead of re-deciding from the mean, so sensing is
    /// consistent either way.
    SensedBy sensed_by;

    /// Did the radio at medium attach index `idx` sense this frame? Radios
    /// attached after the frame launched trivially did not.
    bool senses(std::size_t idx) const {
        return std::binary_search(sensed_by.begin(), sensed_by.end(),
                                  static_cast<std::uint32_t>(idx));
    }
};

}  // namespace cocoa::mac
