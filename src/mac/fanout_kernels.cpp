// Baseline instantiation of the fanout kernels + runtime dispatch.
//
// This TU is compiled with the project's default ISA flags, so the vector-
// extension code lowers to SSE2 on x86-64 and NEON on aarch64 — that is the
// "generic" path, and the arithmetic every other instantiation must match
// byte-for-byte (see fanout_kernels_impl.hpp). The AVX2/AVX-512
// instantiations live in their own TUs with per-file -m flags and are only
// referenced when CMake defines COCOA_FANOUT_X86_DISPATCH (COCOA_SIMD=ON on
// an x86-64 host); the dispatcher picks the widest ISA the CPU reports at
// first use.

#define COCOA_FANOUT_ISA_NS baseline
#include "mac/fanout_kernels_impl.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

namespace cocoa::mac::fanout {

#if defined(COCOA_FANOUT_X86_DISPATCH)
namespace avx2 {
std::size_t cull_and_prepare(const CullPlan& plan);
}
namespace avx512 {
std::size_t cull_and_prepare(const CullPlan& plan);
}
#endif

namespace {

struct Dispatch {
    std::size_t (*cull)(const CullPlan&) = nullptr;
    const char* isa = "generic";
};

constexpr Dispatch kGeneric{&baseline::cull_and_prepare, "generic"};

Dispatch resolve() {
#if defined(COCOA_FANOUT_X86_DISPATCH)
    if (__builtin_cpu_supports("avx512f")) {
        return {&avx512::cull_and_prepare, "avx512"};
    }
    if (__builtin_cpu_supports("avx2")) {
        return {&avx2::cull_and_prepare, "avx2"};
    }
#endif
    return kGeneric;
}

const Dispatch& active() {
    static const Dispatch dispatch = resolve();
    return dispatch;
}

// relaxed is enough: tests and benches flip this from the same thread that
// next drives the medium.
std::atomic<ForcePath> g_force_path{ForcePath::None};

}  // namespace

void Batch::grow() {
    const std::size_t new_cap = std::max<std::size_t>(64, 2 * idx.size());
    idx.resize(new_cap);
    x.resize(new_cap);
    y.resize(new_cap);
    keep.resize(new_cap);
    dist.resize(new_cap);
    mean_dbm.resize(new_cap);
    sigma_db.resize(new_cap);
    fade_db.resize(new_cap);
    kept_lanes.resize(new_cap);
}

void Batch::seal() {
    const std::size_t n = lanes();
    if (n > idx.size()) grow();
    assert(n <= idx.size() && "grow() doubles, so one call always covers a "
                              "partial tail block");
    constexpr double inf = std::numeric_limits<double>::infinity();
    for (std::size_t i = count; i < n; ++i) {
        x[i] = inf;
        y[i] = inf;
    }
}

CullPlan make_plan(Batch& b, geom::Vec2 tx_pos, double r2,
                   const phy::Channel& channel) {
    CullPlan p;
    p.x = b.x.data();
    p.y = b.y.data();
    p.lanes = b.lanes();
    p.tx_x = tx_pos.x;
    p.tx_y = tx_pos.y;
    p.r2 = r2;
    p.channel = &channel;
    p.keep = b.keep.data();
    p.dist = b.dist.data();
    p.mean_dbm = b.mean_dbm.data();
    p.sigma_db = b.sigma_db.data();
    p.fade_db = b.fade_db.data();
    p.kept_lanes = b.kept_lanes.data();
    return p;
}

std::size_t cull_and_prepare(const CullPlan& plan) {
    const Dispatch& d =
        force_path() == ForcePath::Generic ? kGeneric : active();
    return d.cull(plan);
}

const char* active_isa() { return active().isa; }

void set_force_path(ForcePath path) {
    g_force_path.store(path, std::memory_order_relaxed);
}

ForcePath force_path() {
    return g_force_path.load(std::memory_order_relaxed);
}

}  // namespace cocoa::mac::fanout
