#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>

namespace cocoa::sim {

/// A span of virtual time, stored as signed 64-bit nanoseconds.
///
/// Integer nanoseconds keep event ordering exact and runs bit-deterministic;
/// 64 bits cover ~292 years, far beyond any simulation here.
class Duration {
  public:
    constexpr Duration() = default;

    static constexpr Duration nanos(std::int64_t ns) { return Duration{ns}; }
    static constexpr Duration micros(std::int64_t us) { return Duration{us * 1'000}; }
    static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1'000'000}; }
    static constexpr Duration seconds(double s) {
        return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
    }
    static constexpr Duration minutes(double m) { return seconds(m * 60.0); }
    static constexpr Duration zero() { return Duration{0}; }
    static constexpr Duration max() { return Duration{INT64_MAX}; }

    constexpr std::int64_t to_nanos() const { return ns_; }
    constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
    constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

    constexpr bool is_zero() const { return ns_ == 0; }
    constexpr bool is_negative() const { return ns_ < 0; }

    constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
    constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
    constexpr Duration operator*(double s) const { return seconds(to_seconds() * s); }
    constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
    constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
    constexpr double operator/(Duration o) const {
        return static_cast<double>(ns_) / static_cast<double>(o.ns_);
    }
    Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
    Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

    constexpr auto operator<=>(const Duration&) const = default;

  private:
    constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
    std::int64_t ns_ = 0;
};

/// An instant of virtual time (nanoseconds since simulation start).
class TimePoint {
  public:
    constexpr TimePoint() = default;

    static constexpr TimePoint origin() { return TimePoint{}; }
    static constexpr TimePoint from_nanos(std::int64_t ns) { return TimePoint{ns}; }
    static constexpr TimePoint from_seconds(double s) {
        return TimePoint{Duration::seconds(s).to_nanos()};
    }
    static constexpr TimePoint max() { return TimePoint{INT64_MAX}; }

    constexpr std::int64_t to_nanos() const { return ns_; }
    constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

    constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.to_nanos()}; }
    constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.to_nanos()}; }
    constexpr Duration operator-(TimePoint o) const { return Duration::nanos(ns_ - o.ns_); }
    TimePoint& operator+=(Duration d) { ns_ += d.to_nanos(); return *this; }

    constexpr auto operator<=>(const TimePoint&) const = default;

  private:
    constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
    std::int64_t ns_ = 0;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);

}  // namespace cocoa::sim
