#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cocoa::sim {

/// Move-only type-erased `void()` callable with a 48-byte small buffer.
///
/// Simulation callbacks are overwhelmingly tiny lambda captures — a `this`
/// pointer plus a couple of scalars, or a shared_ptr<AirFrame> and a verdict.
/// `std::function` heap-allocates many of them and requires copyability;
/// InplaceCallback instead stores any nothrow-move-constructible callable of
/// at most kInlineSize bytes directly inside the object. Larger callables (or
/// ones with throwing moves) fall back to a single heap allocation, observable
/// via on_heap() — the event queue counts those as SBO misses so the fast
/// path's zero-allocation claim is measurable, not aspirational.
class InplaceCallback {
  public:
    static constexpr std::size_t kInlineSize = 48;
    static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

    InplaceCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, InplaceCallback> &&
                  std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
    InplaceCallback(F&& f) {  // NOLINT: implicit, mirrors std::function
        using Fn = std::remove_cvref_t<F>;
        if constexpr (fits_inline<Fn>()) {
            ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
            ops_ = &InlineOps<Fn>::ops;
        } else {
            ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
            ops_ = &HeapOps<Fn>::ops;
        }
    }

    InplaceCallback(InplaceCallback&& other) noexcept {
        if (other.ops_ != nullptr) {
            other.ops_->relocate(storage_, other.storage_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    InplaceCallback& operator=(InplaceCallback&& other) noexcept {
        if (this != &other) {
            reset();
            if (other.ops_ != nullptr) {
                other.ops_->relocate(storage_, other.storage_);
                ops_ = other.ops_;
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InplaceCallback(const InplaceCallback&) = delete;
    InplaceCallback& operator=(const InplaceCallback&) = delete;

    ~InplaceCallback() { reset(); }

    /// Invokes the stored callable. Precondition: bool(*this).
    void operator()() { ops_->invoke(storage_); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /// True when the callable did not fit the small buffer and lives on the
    /// heap. Empty callbacks report false.
    bool on_heap() const noexcept { return ops_ != nullptr && ops_->heap; }

    /// Destroys the stored callable (releasing anything it captured) and
    /// leaves the callback empty.
    void reset() noexcept {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops {
        void (*invoke)(void* storage);
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void* storage) noexcept;
        bool heap;
    };

    template <typename Fn>
    static constexpr bool fits_inline() {
        return sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    struct InlineOps {
        static Fn* get(void* s) { return std::launder(reinterpret_cast<Fn*>(s)); }
        static void invoke(void* s) { (*get(s))(); }
        static void relocate(void* dst, void* src) noexcept {
            Fn* from = get(src);
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        }
        static void destroy(void* s) noexcept { get(s)->~Fn(); }
        static constexpr Ops ops{&invoke, &relocate, &destroy, false};
    };

    template <typename Fn>
    struct HeapOps {
        static Fn* get(void* s) {
            return *std::launder(reinterpret_cast<Fn**>(s));
        }
        static void invoke(void* s) { (*get(s))(); }
        static void relocate(void* dst, void* src) noexcept {
            ::new (dst) Fn*(get(src));
        }
        static void destroy(void* s) noexcept { delete get(s); }
        static constexpr Ops ops{&invoke, &relocate, &destroy, true};
    };

    alignas(kInlineAlign) unsigned char storage_[kInlineSize];
    const Ops* ops_ = nullptr;
};

}  // namespace cocoa::sim
