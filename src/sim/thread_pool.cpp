#include "sim/thread_pool.hpp"

#include <algorithm>

namespace cocoa::sim {

int ThreadPool::resolve_threads(int requested) {
    if (requested > 0) return requested;
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int n_threads) {
    const int n = resolve_threads(n_threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::unique_lock lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::unique_lock lock(mu_);
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mu_);
            work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stop_ with nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::unique_lock lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

}  // namespace cocoa::sim
