#include "sim/time.hpp"

#include <ostream>

namespace cocoa::sim {

std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.to_seconds() << 's';
}

std::ostream& operator<<(std::ostream& os, TimePoint t) {
    return os << '@' << t.to_seconds() << 's';
}

}  // namespace cocoa::sim
