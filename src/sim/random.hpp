#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

namespace cocoa::sim {

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

/// The splitmix64 finalizer: one cheap, high-diffusion 64-bit mix. Stable
/// across platforms (part of the reproducibility contract, like the FNV-1a
/// hash in RngManager). Used both for seed derivation and as the per-draw
/// mixer behind counter-based random streams.
constexpr std::uint64_t splitmix64_mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// A tiny splitmix64-based URBG for counter-based ("hash the key, then draw")
/// random sampling. Unlike RandomStream's mt19937_64 (whose 312-word state
/// initialisation dwarfs a handful of draws), construction is two integer
/// mixes, so a fresh generator per (frame, receiver) key is essentially free.
/// The output sequence depends only on the seed, never on how many draws any
/// *other* generator made — which is what makes consumers order- and
/// subset-independent.
class SplitMix64 {
  public:
    using result_type = std::uint64_t;

    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }

    result_type operator()() {
        state_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t x = state_;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    /// Zero-mean-unless-specified Gaussian (same contract as RandomStream).
    double gaussian(double mean, double stddev) {
        if (stddev <= 0.0) return mean;
        return std::normal_distribution<double>(mean, stddev)(*this);
    }

    /// Exponentially distributed value with the given mean.
    double exponential(double mean) {
        return std::exponential_distribution<double>(1.0 / mean)(*this);
    }

  private:
    std::uint64_t state_;
};

/// A deterministic pseudo-random stream.
///
/// Every stochastic consumer in the simulator (per-node mobility, odometry
/// noise, channel shadowing, MAC backoff, ...) owns its own stream, derived
/// from a master seed plus a stable name. This keeps parameter sweeps
/// variance-controlled: changing, say, the beacon period does not perturb the
/// random numbers the mobility model draws.
class RandomStream {
  public:
    explicit RandomStream(std::uint64_t seed) : engine_(seed) {}

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Uniform integer in [lo, hi] (inclusive).
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /// Zero-mean-unless-specified Gaussian.
    double gaussian(double mean, double stddev) {
        if (stddev <= 0.0) return mean;
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Bernoulli trial with success probability p.
    bool chance(double p) {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return std::bernoulli_distribution(p)(engine_);
    }

    /// Exponentially distributed value with the given mean.
    double exponential(double mean) {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    std::mt19937_64& engine() { return engine_; }
    const std::mt19937_64& engine() const { return engine_; }

    /// Checkpoints the engine position: draws after load() bitwise-match the
    /// draws the saved stream would have produced. (All distributions here
    /// are constructed per call, so the engine is the stream's entire state.)
    void save(ckpt::Writer& w) const;
    void load(ckpt::Reader& r);

  private:
    std::mt19937_64 engine_;
};

/// Derives independent named RandomStreams from a single master seed.
class RngManager {
  public:
    explicit RngManager(std::uint64_t master_seed) : master_seed_(master_seed) {}

    std::uint64_t master_seed() const { return master_seed_; }

    /// A stream keyed by a stable name ("mobility", "phy.shadowing", ...).
    RandomStream stream(std::string_view name) const;

    /// A stream keyed by a name plus an index (typically a node id).
    RandomStream stream(std::string_view name, std::uint64_t index) const;

    /// The raw 64-bit seed behind stream(name, index). Exposed so higher
    /// layers (e.g. the replication engine) can derive child *master* seeds
    /// with the same stable, platform-independent hash.
    std::uint64_t derive_seed(std::string_view name, std::uint64_t index) const;

  private:
    std::uint64_t master_seed_;
};

}  // namespace cocoa::sim
