#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cocoa::sim {

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// The parallelism substrate for both the replication engine (each task one
/// whole shared-nothing simulation, exp/replication.cpp) and batched
/// intra-run grid updates (each task one robot's Bayesian fix,
/// core/agent.cpp); workers contend only on the queue itself. Tasks must not
/// throw — wrap the body and capture exceptions into a per-task slot
/// instead.
class ThreadPool {
  public:
    /// `n_threads <= 0` uses every hardware thread.
    explicit ThreadPool(int n_threads = 0);
    /// Waits for all queued tasks, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int size() const { return static_cast<int>(workers_.size()); }

    void submit(std::function<void()> task);

    /// Blocks until the queue is empty and every worker is idle.
    void wait_idle();

    /// Maps a requested thread count to an effective one: values <= 0 mean
    /// std::thread::hardware_concurrency(), floored at 1.
    static int resolve_threads(int requested);

  private:
    void worker_loop();

    std::mutex mu_;
    std::condition_variable work_cv_;  ///< signals workers: task or stop
    std::condition_variable idle_cv_;  ///< signals wait_idle(): all drained
    std::deque<std::function<void()>> queue_;
    std::size_t active_ = 0;  ///< tasks currently executing
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace cocoa::sim
