#include "sim/checkpoint.hpp"

#include <bit>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cocoa::sim::ckpt {

namespace {
/// "CKPTCOCO" as a little-endian u64.
constexpr std::uint64_t kMagic = 0x4f434f4354504b43ull;
}  // namespace

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

void Reader::need(std::uint64_t n) const {
    if (static_cast<std::uint64_t>(end_ - p_) < n) {
        throw std::runtime_error("checkpoint: truncated blob");
    }
}

void Reader::expect(std::uint32_t sentinel) {
    const std::uint32_t got = u32();
    if (got != sentinel) {
        std::ostringstream ss;
        ss << "checkpoint: section sentinel mismatch (expected 0x" << std::hex
           << sentinel << ", got 0x" << got << ") — blob/binary layout skew";
        throw std::runtime_error(ss.str());
    }
}

void Reader::expect_end() const {
    if (!at_end()) {
        throw std::runtime_error("checkpoint: trailing bytes after restore — "
                                 "blob/binary layout skew");
    }
}

void write_header(Writer& w, Flavor flavor) {
    w.u64(kMagic);
    w.u32(kFormatVersion);
    w.u32(static_cast<std::uint32_t>(flavor));
}

Flavor read_header(Reader& r) {
    if (r.u64() != kMagic) {
        throw std::runtime_error("checkpoint: bad magic (not a cocoa checkpoint)");
    }
    const std::uint32_t version = r.u32();
    if (version != kFormatVersion) {
        throw std::runtime_error("checkpoint: format version " +
                                 std::to_string(version) + " != supported " +
                                 std::to_string(kFormatVersion));
    }
    const std::uint32_t flavor = r.u32();
    if (flavor != static_cast<std::uint32_t>(Flavor::kScenario) &&
        flavor != static_cast<std::uint32_t>(Flavor::kSwarm)) {
        throw std::runtime_error("checkpoint: unknown flavor " +
                                 std::to_string(flavor));
    }
    return static_cast<Flavor>(flavor);
}

void save_engine(Writer& w, const std::mt19937_64& engine) {
    std::ostringstream ss;
    ss << engine;
    w.str(ss.str());
}

void load_engine(Reader& r, std::mt19937_64& engine) {
    std::istringstream ss(r.str());
    ss >> engine;
    if (ss.fail()) {
        throw std::runtime_error("checkpoint: malformed mt19937_64 state");
    }
}

void CallbackRegistry::add(EventKind kind, Make make, Placed placed) {
    const auto [it, inserted] = entries_.emplace(
        static_cast<std::uint32_t>(kind), Entry{std::move(make), std::move(placed)});
    if (!inserted) {
        throw std::logic_error("CallbackRegistry: kind " +
                               std::to_string(static_cast<std::uint32_t>(kind)) +
                               " registered twice");
    }
}

const CallbackRegistry::Entry& CallbackRegistry::entry(const EventTag& tag) const {
    const auto it = entries_.find(tag.kind);
    if (it == entries_.end()) {
        throw std::runtime_error("checkpoint: no rebuilder for event kind " +
                                 std::to_string(tag.kind));
    }
    return it->second;
}

InplaceCallback CallbackRegistry::make(const EventTag& tag) const {
    return entry(tag).make(tag);
}

void CallbackRegistry::placed(const EventTag& tag, EventId id) const {
    const Entry& e = entry(tag);
    if (e.placed) e.placed(tag, id);
}

void write_blob_file(const std::string& path, std::string_view blob) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot open " + path);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) throw std::runtime_error("checkpoint: short write to " + path);
}

std::string read_blob_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) throw std::runtime_error("checkpoint: read error on " + path);
    return std::move(ss).str();
}

}  // namespace cocoa::sim::ckpt
