#pragma once

#include <iosfwd>
#include <mutex>
#include <sstream>
#include <string>

#include "sim/time.hpp"

namespace cocoa::sim {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// A minimal leveled logger that stamps messages with virtual time.
///
/// Each simulator is single-threaded, but the replication engine runs many
/// simulators at once against this process-wide instance, so write() is
/// serialized by a mutex. Configure (set_level / set_sink) before going
/// parallel; reconfiguration is not synchronized against in-flight writes.
/// The default sink is std::clog; tests can redirect to a captured stream.
class Logger {
  public:
    /// Process-wide logger instance used by all components.
    static Logger& instance();

    void set_level(LogLevel level) { level_ = level; }
    LogLevel level() const { return level_; }

    void set_sink(std::ostream* sink) { sink_ = sink; }

    bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::Off; }

    /// Writes one log line: "[ 12.345s] level component: message".
    void write(LogLevel level, TimePoint when, std::string_view component,
               std::string_view message);

  private:
    Logger();
    LogLevel level_ = LogLevel::Warn;
    std::ostream* sink_;
    std::mutex write_mu_;  ///< keeps lines from parallel replications whole
};

/// Convenience macro-free helper: log only when the level is enabled, with
/// lazy message construction via a callable returning std::string.
template <typename MessageFn>
void log_if(LogLevel level, TimePoint when, std::string_view component, MessageFn&& fn) {
    Logger& logger = Logger::instance();
    if (logger.enabled(level)) {
        logger.write(level, when, component, fn());
    }
}

const char* to_string(LogLevel level);

}  // namespace cocoa::sim
