#pragma once

#include <cstdint>

#include "sim/callback.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace cocoa::sim {

/// The queue implementation the Simulator runs on. The default is the
/// slot-and-generation 4-ary heap; configuring with -DCOCOA_LEGACY_KERNEL=ON
/// swaps in the tombstone-based oracle so whole-scenario output can be
/// diffed between kernels (CI does exactly that on the fig7 scenario).
#ifdef COCOA_LEGACY_KERNEL
using KernelQueue = LegacyEventQueue;
#else
using KernelQueue = EventQueue;
#endif

/// The discrete-event simulation engine.
///
/// Owns the clock, the event queue and the RNG manager. All model components
/// hold a reference to the Simulator and interact with virtual time purely
/// through schedule_at()/schedule_in()/now().
class Simulator {
  public:
    using Callback = KernelQueue::Callback;

    explicit Simulator(std::uint64_t master_seed = 1) : rng_(master_seed) {}

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /// Current virtual time.
    TimePoint now() const { return now_; }

    const RngManager& rng() const { return rng_; }

    /// Schedules a callback at absolute virtual time `t`.
    /// Scheduling in the past throws std::logic_error (it would silently
    /// reorder causality); scheduling exactly at now() is allowed.
    EventId schedule_at(TimePoint t, Callback cb);

    /// Schedules a callback `d` after the current time. Negative d throws.
    EventId schedule_in(Duration d, Callback cb);

    bool cancel(EventId id) { return queue_.cancel(id); }
    bool pending(EventId id) const { return queue_.pending(id); }

    /// Runs until the queue is empty or `end` is reached, whichever is first.
    /// On return, now() == min(end, time-of-last-event) and events scheduled
    /// after `end` remain pending.
    void run_until(TimePoint end);

    /// Runs until the event queue drains completely.
    void run();

    /// Requests that the run loop stop after the current event.
    void stop() { stop_requested_ = true; }

    std::size_t pending_events() const { return queue_.size(); }
    std::uint64_t executed_events() const { return executed_; }

    /// Kernel counters maintained by the active queue implementation. The
    /// referenced fields have stable addresses for the Simulator's lifetime,
    /// so they can be registered with obs::CounterRegistry directly.
    const KernelStats& kernel_stats() const { return queue_.stats(); }

    /// Stable-address executed-event counter, for the same registration use.
    const std::uint64_t& executed_events_ref() const { return executed_; }

  private:
    TimePoint now_ = TimePoint::origin();
    KernelQueue queue_;
    RngManager rng_;
    bool stop_requested_ = false;
    std::uint64_t executed_ = 0;
};

}  // namespace cocoa::sim
