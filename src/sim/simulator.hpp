#pragma once

#include <cstdint>

#include "sim/callback.hpp"
#include "sim/event_queue.hpp"
#include "sim/event_tag.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace cocoa::sim {

namespace ckpt {
class Writer;
class Reader;
class CallbackRegistry;
}  // namespace ckpt

/// The queue implementation the Simulator runs on. The default is the
/// slot-and-generation 4-ary heap; configuring with -DCOCOA_LEGACY_KERNEL=ON
/// swaps in the tombstone-based oracle so whole-scenario output can be
/// diffed between kernels (CI does exactly that on the fig7 scenario).
#ifdef COCOA_LEGACY_KERNEL
using KernelQueue = LegacyEventQueue;
#else
using KernelQueue = EventQueue;
#endif

/// The discrete-event simulation engine.
///
/// Owns the clock, the event queue and the RNG manager. All model components
/// hold a reference to the Simulator and interact with virtual time purely
/// through schedule_at()/schedule_in()/now().
class Simulator {
  public:
    using Callback = KernelQueue::Callback;

    explicit Simulator(std::uint64_t master_seed = 1) : rng_(master_seed) {}

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /// Current virtual time.
    TimePoint now() const { return now_; }

    const RngManager& rng() const { return rng_; }

    /// Schedules a callback at absolute virtual time `t`.
    /// Scheduling in the past throws std::logic_error (it would silently
    /// reorder causality); scheduling exactly at now() is allowed.
    /// The optional tag makes the event checkpointable (sim/event_tag.hpp);
    /// untagged events are fine as long as none is pending at a save point.
    EventId schedule_at(TimePoint t, Callback cb, const EventTag& tag = {});

    /// Schedules a callback `d` after the current time. Negative d throws.
    EventId schedule_in(Duration d, Callback cb, const EventTag& tag = {});

    bool cancel(EventId id) { return queue_.cancel(id); }
    bool pending(EventId id) const { return queue_.pending(id); }

    /// Runs until the queue is empty or `end` is reached, whichever is first.
    /// On return, now() == min(end, time-of-last-event) and events scheduled
    /// after `end` remain pending.
    void run_until(TimePoint end);

    /// Runs until the event queue drains completely.
    void run();

    /// Requests that the run loop stop after the current event.
    void stop() { stop_requested_ = true; }

    std::size_t pending_events() const { return queue_.size(); }
    std::uint64_t executed_events() const { return executed_; }

    /// Kernel counters maintained by the active queue implementation. The
    /// referenced fields have stable addresses for the Simulator's lifetime,
    /// so they can be registered with obs::CounterRegistry directly.
    const KernelStats& kernel_stats() const { return queue_.stats(); }

    /// Stable-address executed-event counter, for the same registration use.
    const std::uint64_t& executed_events_ref() const { return executed_; }

    // ------------------------------------------------------------------
    // Checkpoint hooks (sim::ckpt). The kernel section captures the clock,
    // the executed counter, the stats, and every pending event as
    // (time, seq, tag); restore re-creates each event with its original
    // sequence number so the pop order — and therefore the physics — of the
    // resumed run is byte-identical to a straight run.
    // ------------------------------------------------------------------

    /// Serializes clock + counters + pending events. Throws std::logic_error
    /// if any pending event is untagged (it could not be rebuilt).
    void save_kernel(ckpt::Writer& w) const;

    /// Restores what save_kernel wrote. Precondition: the queue holds only
    /// construction-time events, which are dropped first (clear_pending).
    /// Each blob event is rebuilt via `registry` and re-scheduled with its
    /// original seq; owners re-learn EventIds through the registry's placed
    /// hooks. Kernel stats and next_seq are restored last, verbatim.
    void load_kernel(ckpt::Reader& r, const ckpt::CallbackRegistry& registry);

    /// Drops every pending event (fresh-construction events are replaced by
    /// the blob's on restore).
    void clear_pending() { queue_.clear(); }

    /// Smallest pending sequence number (UINT64_MAX when idle). The forked
    /// sweep assigns fault-arm events seqs just below this, reproducing the
    /// straight-faulted run's arm-before-run ordering.
    std::uint64_t min_pending_seq() const { return queue_.min_pending_seq(); }

    /// Post-restore stats override for the forked sweep's peak_pending fixup
    /// (a straight-faulted run carries the armed events in its pending count
    /// from t=0; a forked run arms late and compensates here).
    void set_kernel_stats(const KernelStats& stats) { queue_.set_stats(stats); }

    /// Schedule with an explicit seq (restore/fork paths only).
    EventId schedule_with_seq(TimePoint t, std::uint64_t seq, Callback cb,
                              const EventTag& tag) {
        return queue_.schedule_with_seq(t, seq, std::move(cb), tag);
    }

  private:
    TimePoint now_ = TimePoint::origin();
    KernelQueue queue_;
    RngManager rng_;
    bool stop_requested_ = false;
    std::uint64_t executed_ = 0;
};

}  // namespace cocoa::sim
