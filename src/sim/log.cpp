#include "sim/log.hpp"

#include <iomanip>
#include <iostream>

namespace cocoa::sim {

Logger::Logger() : sink_(&std::clog) {}

Logger& Logger::instance() {
    static Logger logger;
    return logger;
}

void Logger::write(LogLevel level, TimePoint when, std::string_view component,
                   std::string_view message) {
    if (!enabled(level) || sink_ == nullptr) return;
    const std::scoped_lock lock(write_mu_);
    std::ostream& os = *sink_;
    os << '[' << std::setw(9) << std::fixed << std::setprecision(3)
       << when.to_seconds() << "s] " << to_string(level) << ' ' << component
       << ": " << message << '\n';
}

const char* to_string(LogLevel level) {
    switch (level) {
        case LogLevel::Trace: return "TRACE";
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO ";
        case LogLevel::Warn: return "WARN ";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF  ";
    }
    return "?";
}

}  // namespace cocoa::sim
