#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

namespace cocoa::sim {

/// Allocation statistics for one SlabCore. All three counters are stable
/// uint64_t lvalues so they can be registered directly with
/// obs::CounterRegistry.
struct PoolStats {
    std::uint64_t reused = 0;    ///< served from the free list (zero heap work)
    std::uint64_t fresh = 0;     ///< carved from a new or partially-used slab
    std::uint64_t oversize = 0;  ///< bypassed the pool (request too big/aligned)
};

/// Type-erased slab of fixed-size blocks with an intrusive free list.
///
/// The block size is learned from the first pool-eligible allocation and never
/// changes afterwards; later requests at most that size are served from the
/// free list or by bump-carving a slab, while larger (or over-aligned)
/// requests fall through to plain operator new and count as `oversize`. This
/// fits the simulator's usage exactly: each core is dedicated to one object
/// shape (AirFrame control-block+object, a sensed_by verdict block of
/// `radios` bytes, a Packet), so steady-state traffic recycles the free list
/// and allocates nothing.
///
/// Lifetime: consumers hold the core via shared_ptr (see PoolAllocator), so
/// blocks may safely outlive the component that created the pool — e.g. event
/// queue callbacks holding shared_ptr<AirFrame> past mac::Medium destruction.
/// Not thread-safe; each Simulator owns its pools (shared-nothing
/// replications).
class SlabCore {
  public:
    SlabCore() = default;
    ~SlabCore() {
        for (void* slab : slabs_) ::operator delete(slab);
    }

    SlabCore(const SlabCore&) = delete;
    SlabCore& operator=(const SlabCore&) = delete;

    void* allocate(std::size_t bytes, std::size_t align) {
        if (align > alignof(std::max_align_t)) {
            ++stats_.oversize;
            return ::operator new(bytes, std::align_val_t(align));
        }
        if (block_size_ == 0) {
            block_size_ = bytes < sizeof(FreeNode) ? sizeof(FreeNode) : bytes;
        }
        if (bytes > block_size_) {
            ++stats_.oversize;
            return ::operator new(bytes);
        }
        if (free_ != nullptr) {
            ++stats_.reused;
            FreeNode* node = free_;
            free_ = node->next;
            return node;
        }
        ++stats_.fresh;
        return carve_block();
    }

    void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
        // Mirrors the classification in allocate(); block_size_ only ever
        // transitions 0 -> fixed, so a block classifies the same way on both
        // sides of its lifetime.
        if (align > alignof(std::max_align_t)) {
            ::operator delete(p, std::align_val_t(align));
            return;
        }
        if (block_size_ == 0 || bytes > block_size_) {
            ::operator delete(p);
            return;
        }
        FreeNode* node = static_cast<FreeNode*>(p);
        node->next = free_;
        free_ = node;
    }

    const PoolStats& stats() const { return stats_; }
    std::size_t block_size() const { return block_size_; }

    // ------------------------------------------------------------------
    // Checkpoint warmth protocol. A pool's observable behaviour is entirely
    // (block_size_, free-list length, stats_): restore sets the learned block
    // size, re-acquires the live objects (transiently perturbing stats_),
    // refills the free list to the saved length, then overwrites stats_
    // verbatim — after which reuse/fresh/oversize counts evolve exactly as
    // the straight run's would.
    // ------------------------------------------------------------------

    /// Length of the free list (O(free blocks); checkpoint path only).
    std::size_t free_count() const {
        std::size_t n = 0;
        for (const FreeNode* node = free_; node != nullptr; node = node->next) ++n;
        return n;
    }

    /// Pre-seeds the learned block size on a fresh core. Throws if the core
    /// already learned a different size (restore-order bug).
    void set_block_size(std::size_t bytes) {
        if (bytes == 0) return;
        if (block_size_ != 0 && block_size_ != bytes) {
            throw std::logic_error("SlabCore::set_block_size: size already learned");
        }
        block_size_ = bytes;
    }

    /// Carves `n` blocks and parks them on the free list (block size must be
    /// set). Restores the free-list length so post-restore reused/fresh
    /// classification matches the straight run.
    void add_free_blocks(std::size_t n) {
        if (n == 0) return;
        if (block_size_ == 0) {
            throw std::logic_error("SlabCore::add_free_blocks: block size unset");
        }
        for (std::size_t i = 0; i < n; ++i) {
            FreeNode* node = static_cast<FreeNode*>(carve_block());
            node->next = free_;
            free_ = node;
        }
    }

    void set_stats(const PoolStats& stats) { stats_ = stats; }

  private:
    struct FreeNode {
        FreeNode* next;
    };
    static constexpr std::size_t kBlocksPerSlab = 64;

    std::size_t block_stride() const {
        constexpr std::size_t a = alignof(std::max_align_t);
        return (block_size_ + a - 1) / a * a;
    }

    void* carve_block() {
        if (remaining_ == 0) {
            void* slab = ::operator new(block_stride() * kBlocksPerSlab);
            slabs_.push_back(slab);
            cursor_ = static_cast<unsigned char*>(slab);
            remaining_ = kBlocksPerSlab;
        }
        void* p = cursor_;
        cursor_ += block_stride();
        --remaining_;
        return p;
    }

    std::size_t block_size_ = 0;  ///< 0 until the first eligible allocation
    std::vector<void*> slabs_;
    unsigned char* cursor_ = nullptr;
    std::size_t remaining_ = 0;
    FreeNode* free_ = nullptr;
    PoolStats stats_;
};

/// Standard-library allocator backed by a shared SlabCore.
///
/// Default-constructed (null core) it degrades to plain operator new, so
/// containers declared with this allocator type work unchanged outside a
/// simulation. Copies share the core via shared_ptr: std::allocate_shared
/// stores an allocator copy in the control block and container moves carry
/// the allocator along, which is exactly what keeps the core alive until the
/// last pooled block is returned.
template <typename T>
class PoolAllocator {
  public:
    using value_type = T;

    PoolAllocator() noexcept = default;
    explicit PoolAllocator(std::shared_ptr<SlabCore> core) noexcept
        : core_(std::move(core)) {}
    template <typename U>
    PoolAllocator(const PoolAllocator<U>& other) noexcept : core_(other.core_) {}

    T* allocate(std::size_t n) {
        const std::size_t bytes = n * sizeof(T);
        if (core_) return static_cast<T*>(core_->allocate(bytes, alignof(T)));
        if constexpr (alignof(T) > alignof(std::max_align_t)) {
            return static_cast<T*>(::operator new(bytes, std::align_val_t(alignof(T))));
        }
        return static_cast<T*>(::operator new(bytes));
    }

    void deallocate(T* p, std::size_t n) noexcept {
        const std::size_t bytes = n * sizeof(T);
        if (core_) {
            core_->deallocate(p, bytes, alignof(T));
            return;
        }
        if constexpr (alignof(T) > alignof(std::max_align_t)) {
            ::operator delete(p, std::align_val_t(alignof(T)));
            return;
        }
        ::operator delete(p);
    }

    const std::shared_ptr<SlabCore>& core() const { return core_; }

    friend bool operator==(const PoolAllocator& a, const PoolAllocator& b) {
        return a.core_ == b.core_;
    }

  private:
    template <typename U>
    friend class PoolAllocator;
    std::shared_ptr<SlabCore> core_;
};

/// Convenience wrapper: shared_ptr factory recycling fixed-shape objects.
///
/// acquire() is a drop-in for make_shared<T>: one pooled allocation covers
/// the control block and the object, and once a block has been through the
/// free list the steady state allocates nothing.
template <typename T>
class ObjectPool {
  public:
    ObjectPool() : core_(std::make_shared<SlabCore>()) {}

    template <typename... Args>
    std::shared_ptr<T> acquire(Args&&... args) {
        return std::allocate_shared<T>(PoolAllocator<T>(core_),
                                       std::forward<Args>(args)...);
    }

    const std::shared_ptr<SlabCore>& core() const { return core_; }
    const PoolStats& stats() const { return core_->stats(); }

  private:
    std::shared_ptr<SlabCore> core_;
};

}  // namespace cocoa::sim
