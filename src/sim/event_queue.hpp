#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace cocoa::sim {

/// Handle to a scheduled event; lets the owner cancel it before it fires.
class EventId {
  public:
    constexpr EventId() = default;
    constexpr bool valid() const { return seq_ != 0; }
    constexpr bool operator==(const EventId&) const = default;

  private:
    friend class EventQueue;
    constexpr explicit EventId(std::uint64_t seq) : seq_(seq) {}
    std::uint64_t seq_ = 0;  // 0 = invalid
};

/// A cancellable priority queue of timed callbacks.
///
/// Events at equal times fire in scheduling order (FIFO), making runs
/// deterministic. Cancellation is lazy: cancelled entries are skipped on pop.
class EventQueue {
  public:
    using Callback = std::function<void()>;

    /// Schedules `cb` to fire at time `t`. Returns a handle for cancellation.
    EventId schedule(TimePoint t, Callback cb);

    /// Cancels a pending event; returns false if it already fired, was
    /// already cancelled, or the id is invalid.
    bool cancel(EventId id);

    /// True if `id` refers to an event that has not yet fired or been cancelled.
    bool pending(EventId id) const { return live_.contains(id.seq_); }

    bool empty() const { return live_.empty(); }
    std::size_t size() const { return live_.size(); }

    /// Time of the earliest pending event; TimePoint::max() if empty.
    TimePoint next_time() const;

    /// Removes and returns the earliest pending event.
    /// Precondition: !empty().
    struct Fired {
        TimePoint time;
        Callback callback;
    };
    Fired pop();

    /// Drops all pending events.
    void clear();

  private:
    struct Entry {
        TimePoint time;
        std::uint64_t seq;
        Callback callback;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    void drop_dead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<std::uint64_t> live_;  ///< seqs scheduled but not fired/cancelled
    std::uint64_t next_seq_ = 1;
};

}  // namespace cocoa::sim
