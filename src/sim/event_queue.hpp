#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/callback.hpp"
#include "sim/event_tag.hpp"
#include "sim/time.hpp"

namespace cocoa::sim {

class EventQueue;
class LegacyEventQueue;

/// Handle to a scheduled event; lets the owner cancel it before it fires.
///
/// Encodes {slot, generation} for the slot-indexed EventQueue. The slot's
/// generation is bumped every time it is recycled, so a stale id (the event
/// fired, was cancelled, or the queue was cleared) neither cancels nor
/// reports pending — no tombstone bookkeeping required. LegacyEventQueue
/// packs its monotone 64-bit sequence number into the same two words, so
/// handles are interchangeable between kernels at the type level.
class EventId {
  public:
    constexpr EventId() = default;
    constexpr bool valid() const { return slot_ != 0 || gen_ != 0; }
    constexpr bool operator==(const EventId&) const = default;

  private:
    friend class EventQueue;
    friend class LegacyEventQueue;
    constexpr EventId(std::uint32_t slot, std::uint32_t gen)
        : slot_(slot), gen_(gen) {}
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;  // {0,0} = invalid; live generations are never 0
};

/// Counters shared by both kernel implementations. The fields are stable
/// uint64_t lvalues so Scenario can register them with obs::CounterRegistry;
/// both queues maintain them identically, which is what lets CI diff the
/// full --counters table of a legacy-kernel build against the new kernel.
struct KernelStats {
    std::uint64_t scheduled = 0;     ///< total schedule() calls
    std::uint64_t cancelled = 0;     ///< successful cancel() calls
    std::uint64_t sbo_misses = 0;    ///< callbacks that spilled to the heap
    std::uint64_t peak_pending = 0;  ///< high-water mark of pending events
};

/// A cancellable priority queue of timed callbacks.
///
/// Implementation: a slot arena plus a 4-ary min-heap of slot indices ordered
/// by (time, seq). Events at equal times fire in scheduling order (FIFO, via
/// the monotone seq), making runs deterministic. Each slot carries a
/// back-pointer into the heap, so cancel() is a real O(log n) removal — no
/// tombstones accumulate from rescheduled carrier-sense timers — and
/// pending() is an O(1) generation check. next_time() is O(1) and genuinely
/// const. Freed slots go on a free list, so a steady-state schedule/fire
/// cycle performs no allocation at all once the arena has grown to the
/// high-water mark.
///
/// Invariants:
///  - seq is monotone for the lifetime of the queue and is never reset, not
///    even by clear(); FIFO tie-breaking therefore stays well-defined if a
///    queue is reused after clear().
///  - clear() bumps the generation of every live slot, so ids issued before
///    the clear neither cancel nor report pending afterwards. It does not
///    touch stats().scheduled/cancelled (clearing is not cancellation).
///  - A slot's generation is bumped exactly once per recycle; an id can only
///    alias a later event after 2^32 reuses of one slot.
class EventQueue {
  public:
    using Callback = InplaceCallback;

    /// Visitor over pending events for checkpointing: (time, seq, tag).
    using PendingVisitor =
        std::function<void(TimePoint, std::uint64_t, const EventTag&)>;

    /// Schedules `cb` to fire at time `t`. Returns a handle for cancellation.
    /// The tag (default: untagged) describes the callback for checkpointing;
    /// see sim/event_tag.hpp.
    EventId schedule(TimePoint t, Callback cb, const EventTag& tag = {});

    /// Checkpoint-restore path: schedules `cb` with an explicit sequence
    /// number instead of drawing from next_seq_, so the restored queue's
    /// (time, seq) pop order reproduces the straight run's exactly. Counts in
    /// stats() like schedule() (restore overwrites stats afterwards; the
    /// forked-sweep path relies on the natural counting). Does not advance
    /// next_seq_ — callers restore it via set_next_seq().
    EventId schedule_with_seq(TimePoint t, std::uint64_t seq, Callback cb,
                              const EventTag& tag);

    /// Calls `fn(time, seq, tag)` for every pending event, in arbitrary
    /// (heap) order. Save paths sort by seq afterwards.
    void for_each_pending(const PendingVisitor& fn) const;

    /// Smallest seq among pending events; UINT64_MAX when empty. The forked
    /// sweep reserves sequence numbers below this for late-armed fault events.
    std::uint64_t min_pending_seq() const;

    std::uint64_t next_seq() const { return next_seq_; }
    void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }
    void set_stats(const KernelStats& stats) { stats_ = stats; }

    /// Cancels a pending event; returns false if it already fired, was
    /// already cancelled, or the id is invalid/stale.
    bool cancel(EventId id);

    /// True if `id` refers to an event that has not yet fired or been
    /// cancelled. O(1): a bounds check plus a generation compare.
    bool pending(EventId id) const {
        return id.slot_ < slots_.size() &&
               slots_[id.slot_].generation == id.gen_ &&
               slots_[id.slot_].heap_index != kNoHeapIndex;
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /// Time of the earliest pending event; TimePoint::max() if empty.
    TimePoint next_time() const {
        if (heap_.empty()) return TimePoint::max();
        return slots_[heap_[0]].time;
    }

    /// Removes and returns the earliest pending event.
    /// Precondition: !empty().
    struct Fired {
        TimePoint time;
        Callback callback;
    };
    Fired pop();

    /// Drops all pending events (see class invariants: generations are
    /// bumped, seq keeps counting).
    void clear();

    const KernelStats& stats() const { return stats_; }

  private:
    static constexpr std::uint32_t kNoHeapIndex = 0xffffffffu;

    struct Slot {
        TimePoint time{};
        std::uint64_t seq = 0;
        Callback callback;
        std::uint32_t generation = 1;  // never 0, so any issued id is valid()
        std::uint32_t heap_index = kNoHeapIndex;
    };

    /// (time, seq) ordering between two slots referenced from the heap.
    bool earlier(std::uint32_t a, std::uint32_t b) const {
        const Slot& sa = slots_[a];
        const Slot& sb = slots_[b];
        if (sa.time != sb.time) return sa.time < sb.time;
        return sa.seq < sb.seq;
    }

    void sift_up(std::size_t i);
    void sift_down(std::size_t i);
    void remove_from_heap(std::size_t i);
    void release_slot(std::uint32_t si);
    EventId place(TimePoint t, std::uint64_t seq, Callback cb, const EventTag& tag);

    std::vector<Slot> slots_;
    /// Parallel to slots_: the checkpoint tag of each slot's event. Kept out
    /// of Slot so the hot (time, seq, heap_index) comparisons stay dense.
    std::vector<EventTag> tags_;
    std::vector<std::uint32_t> heap_;        ///< 4-ary min-heap of slot indices
    std::vector<std::uint32_t> free_slots_;  ///< recyclable slot indices (LIFO)
    std::uint64_t next_seq_ = 1;
    KernelStats stats_;
};

/// The pre-overhaul queue (std::priority_queue + tombstone set), kept
/// compiled in as a bit-exact oracle: `-DCOCOA_LEGACY_KERNEL=ON` points the
/// Simulator at it, and the randomized kernel stress test replays identical
/// schedules against both implementations. It shares EventId, Callback and
/// KernelStats with EventQueue so a legacy build's counter output diffs
/// clean against the new kernel.
///
/// Known costs this class deliberately retains (they motivated the rewrite):
/// cancel() leaves a tombstone that next_time()/pop() skip later (O(dead)
/// work hidden behind a const method via a mutable heap), and pending() is a
/// hash lookup.
class LegacyEventQueue {
  public:
    using Callback = InplaceCallback;
    using PendingVisitor = EventQueue::PendingVisitor;

    EventId schedule(TimePoint t, Callback cb, const EventTag& tag = {});
    /// Checkpointing requires the slot/generation kernel; these throw
    /// std::logic_error so a legacy-oracle build fails loudly rather than
    /// silently producing a bogus blob. (The oracle exists to validate
    /// physics, not to be checkpointed.)
    EventId schedule_with_seq(TimePoint t, std::uint64_t seq, Callback cb,
                              const EventTag& tag);
    void for_each_pending(const PendingVisitor& fn) const;
    std::uint64_t min_pending_seq() const;
    std::uint64_t next_seq() const { return next_seq_; }
    void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }
    void set_stats(const KernelStats& stats) { stats_ = stats; }

    bool cancel(EventId id);
    bool pending(EventId id) const { return live_.contains(seq_of(id)); }

    bool empty() const { return live_.empty(); }
    std::size_t size() const { return live_.size(); }

    TimePoint next_time() const;

    struct Fired {
        TimePoint time;
        Callback callback;
    };
    Fired pop();

    /// Drops all pending events. Like EventQueue::clear(), seq keeps
    /// counting afterwards — the invariant predates the rewrite, it was just
    /// undocumented.
    void clear();

    const KernelStats& stats() const { return stats_; }

  private:
    struct Entry {
        TimePoint time;
        std::uint64_t seq;
        Callback callback;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    static constexpr std::uint64_t seq_of(EventId id) {
        return static_cast<std::uint64_t>(id.slot_) |
               (static_cast<std::uint64_t>(id.gen_) << 32);
    }
    static constexpr EventId id_of(std::uint64_t seq) {
        return EventId{static_cast<std::uint32_t>(seq),
                       static_cast<std::uint32_t>(seq >> 32)};
    }

    void drop_dead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<std::uint64_t> live_;  ///< scheduled but not fired/cancelled
    std::uint64_t next_seq_ = 1;
    KernelStats stats_;
};

}  // namespace cocoa::sim
