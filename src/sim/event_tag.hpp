#pragma once

#include <cstdint>

namespace cocoa::sim {

/// Identifies what a scheduled callback *does*, so a checkpoint can rebuild
/// it. Callbacks are type-erased closures; their captures cannot be walked at
/// save time. Instead every schedule site that can be live at a checkpoint
/// attaches an EventTag describing the callback in terms of durable state
/// (node ids, sequence numbers, frame keys), and registers a matching
/// rebuilder with ckpt::CallbackRegistry that turns the tag back into an
/// equivalent closure on restore. Values are part of the checkpoint format;
/// never renumber, only append.
enum class EventKind : std::uint32_t {
    kUntagged = 0,  ///< not restorable; save_checkpoint throws if one is pending

    // core::Scenario
    kScenarioTick = 1,
    kScenarioSample = 2,
    kScenarioTrace = 3,

    // core::CocoaAgent   (node = agent's node id)
    kAgentWake = 10,        ///< a = period seq
    kAgentSyncSettle = 11,  ///< a = period seq
    kAgentBeacon = 12,      ///< a = period seq, x = beacon index
    kAgentWindowEnd = 13,   ///< a = period seq

    // mac::Radio   (node = attach index)
    kRadioAttempt = 20,   ///< CSMA attempt timer (radio re-learns the EventId)
    kRadioEndTx = 21,     ///< end of the frame currently on air
    kRadioFrameEnd = 22,  ///< a = frame seq of the frame whose end we await

    // mac::Medium   (node = receiver attach index)
    kMediumCca = 30,  ///< a = frame seq, b = rssi bits, x = decodable flag

    // multicast::MulticastNode   (node = node id)
    kMcastRefresh = 40,     ///< x = group
    kMcastDecision = 41,    ///< x = group, y = source (query-round decision)
    kMcastJitteredTx = 42,  ///< a = pending-tx id (packet parked in the node)
    kMcastDataForward = 43, ///< x = group, y = source, a = data seq, b = from

    // fault::FaultInjector   (x = index into the armed plan's event list)
    kFaultStrike = 50,         ///< the plan event's `at` callback (node = id)
    kFaultRecover = 51,        ///< the plan event's `until` callback (node = id)
    kFaultBatteryWatch = 52,   ///< self-rescheduling budget poll (node = id)
    kFaultReacquirePoll = 53,  ///< a = recovered_at ns, b = fixes_before

    // core::Swarm   (node = node id)
    kSwarmBeacon = 60,
    kSwarmDoze = 61,
    kSwarmMobilityTick = 62,
};

/// Compact, POD description of one pending callback. Field meaning depends on
/// EventKind (see the enum comments); unused fields stay zero so blobs diff
/// clean. Doubles travel through `a`/`b` bit-cast to uint64.
struct EventTag {
    std::uint32_t kind = 0;  ///< EventKind, stored raw for trivial serialization
    std::uint32_t node = 0;
    std::uint32_t x = 0;
    std::uint32_t y = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;

    constexpr bool tagged() const { return kind != 0; }
};

constexpr EventTag make_tag(EventKind kind, std::uint32_t node = 0,
                            std::uint32_t x = 0, std::uint32_t y = 0,
                            std::uint64_t a = 0, std::uint64_t b = 0) {
    return EventTag{static_cast<std::uint32_t>(kind), node, x, y, a, b};
}

}  // namespace cocoa::sim
