#include "sim/random.hpp"

#include "sim/checkpoint.hpp"

namespace cocoa::sim {
namespace {

// FNV-1a, then the splitmix64 finalizer for good bit diffusion. The hash
// must be stable across platforms (unlike std::hash), since stream identity
// is part of the reproducibility contract.
std::uint64_t fnv1a(std::string_view s, std::uint64_t h) {
    constexpr std::uint64_t kPrime = 1099511628211ull;
    for (const char c : s) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= kPrime;
    }
    return h;
}

}  // namespace

void RandomStream::save(ckpt::Writer& w) const { ckpt::save_engine(w, engine_); }

void RandomStream::load(ckpt::Reader& r) { ckpt::load_engine(r, engine_); }

RandomStream RngManager::stream(std::string_view name) const {
    constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
    const std::uint64_t h = fnv1a(name, kOffsetBasis ^ master_seed_);
    return RandomStream{splitmix64_mix(h)};
}

RandomStream RngManager::stream(std::string_view name, std::uint64_t index) const {
    return RandomStream{derive_seed(name, index)};
}

std::uint64_t RngManager::derive_seed(std::string_view name, std::uint64_t index) const {
    constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
    std::uint64_t h = fnv1a(name, kOffsetBasis ^ master_seed_);
    return splitmix64_mix(h ^ splitmix64_mix(index + 0x51ed2701));
}

}  // namespace cocoa::sim
