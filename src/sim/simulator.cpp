#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace cocoa::sim {

EventId Simulator::schedule_at(TimePoint t, Callback cb) {
    if (t < now_) {
        throw std::logic_error("Simulator::schedule_at: time is in the past");
    }
    return queue_.schedule(t, std::move(cb));
}

EventId Simulator::schedule_in(Duration d, Callback cb) {
    if (d.is_negative()) {
        throw std::logic_error("Simulator::schedule_in: negative delay");
    }
    return queue_.schedule(now_ + d, std::move(cb));
}

void Simulator::run_until(TimePoint end) {
    stop_requested_ = false;
    while (!queue_.empty() && !stop_requested_) {
        if (queue_.next_time() > end) break;
        auto fired = queue_.pop();
        now_ = fired.time;
        ++executed_;
        fired.callback();
    }
    if (!stop_requested_ && now_ < end && queue_.next_time() > end) {
        // Advance the clock to the requested horizon even if no event lands
        // exactly there, so successive run_until calls compose naturally.
        now_ = end;
    }
}

void Simulator::run() {
    run_until(TimePoint::max());
}

}  // namespace cocoa::sim
