#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/checkpoint.hpp"

namespace cocoa::sim {

EventId Simulator::schedule_at(TimePoint t, Callback cb, const EventTag& tag) {
    if (t < now_) {
        throw std::logic_error("Simulator::schedule_at: time is in the past");
    }
    return queue_.schedule(t, std::move(cb), tag);
}

EventId Simulator::schedule_in(Duration d, Callback cb, const EventTag& tag) {
    if (d.is_negative()) {
        throw std::logic_error("Simulator::schedule_in: negative delay");
    }
    return queue_.schedule(now_ + d, std::move(cb), tag);
}

void Simulator::save_kernel(ckpt::Writer& w) const {
    w.mark(0x4b524e4cu);  // 'KRNL'
    w.time(now_);
    w.u64(executed_);
    w.u64(queue_.next_seq());
    const KernelStats& stats = queue_.stats();
    w.u64(stats.scheduled);
    w.u64(stats.cancelled);
    w.u64(stats.sbo_misses);
    w.u64(stats.peak_pending);

    struct PendingEvent {
        TimePoint time;
        std::uint64_t seq;
        EventTag tag;
    };
    std::vector<PendingEvent> events;
    events.reserve(queue_.size());
    queue_.for_each_pending(
        [&events](TimePoint t, std::uint64_t seq, const EventTag& tag) {
            if (!tag.tagged()) {
                throw std::logic_error(
                    "checkpoint: an untagged event is pending — every schedule "
                    "site that can be live at a save point must attach an "
                    "EventTag (see sim/event_tag.hpp)");
            }
            events.push_back({t, seq, tag});
        });
    // Heap order is an implementation detail; seq order is canonical (it is
    // schedule order, so two identical runs write identical blobs).
    std::sort(events.begin(), events.end(),
              [](const PendingEvent& a, const PendingEvent& b) { return a.seq < b.seq; });
    w.u64(events.size());
    for (const PendingEvent& e : events) {
        w.time(e.time);
        w.u64(e.seq);
        w.u32(e.tag.kind);
        w.u32(e.tag.node);
        w.u32(e.tag.x);
        w.u32(e.tag.y);
        w.u64(e.tag.a);
        w.u64(e.tag.b);
    }
}

void Simulator::load_kernel(ckpt::Reader& r, const ckpt::CallbackRegistry& registry) {
    r.expect(0x4b524e4cu);  // 'KRNL'
    if (!queue_.empty()) {
        throw std::logic_error("Simulator::load_kernel: clear_pending() first");
    }
    now_ = r.time();
    executed_ = r.u64();
    const std::uint64_t next_seq = r.u64();
    KernelStats stats;
    stats.scheduled = r.u64();
    stats.cancelled = r.u64();
    stats.sbo_misses = r.u64();
    stats.peak_pending = r.u64();

    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        const TimePoint t = r.time();
        const std::uint64_t seq = r.u64();
        EventTag tag;
        tag.kind = r.u32();
        tag.node = r.u32();
        tag.x = r.u32();
        tag.y = r.u32();
        tag.a = r.u64();
        tag.b = r.u64();
        const EventId id =
            queue_.schedule_with_seq(t, seq, registry.make(tag), tag);
        registry.placed(tag, id);
    }
    // Verbatim counters last: the re-registration above must not leak into
    // the restored run's observable kernel stats.
    queue_.set_next_seq(next_seq);
    queue_.set_stats(stats);
}

void Simulator::run_until(TimePoint end) {
    stop_requested_ = false;
    while (!queue_.empty() && !stop_requested_) {
        if (queue_.next_time() > end) break;
        auto fired = queue_.pop();
        now_ = fired.time;
        ++executed_;
        fired.callback();
    }
    if (!stop_requested_ && now_ < end && queue_.next_time() > end) {
        // Advance the clock to the requested horizon even if no event lands
        // exactly there, so successive run_until calls compose naturally.
        now_ = end;
    }
}

void Simulator::run() {
    run_until(TimePoint::max());
}

}  // namespace cocoa::sim
