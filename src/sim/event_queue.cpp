#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace cocoa::sim {

EventId EventQueue::schedule(TimePoint t, Callback cb) {
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{t, seq, std::move(cb)});
    live_.insert(seq);
    return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
    if (!id.valid()) return false;
    // Removal from `live_` is the cancellation; the heap entry becomes a
    // tombstone that drop_dead() skips.
    return live_.erase(id.seq_) > 0;
}

void EventQueue::drop_dead() const {
    while (!heap_.empty() && !live_.contains(heap_.top().seq)) {
        heap_.pop();
    }
}

TimePoint EventQueue::next_time() const {
    drop_dead();
    if (heap_.empty()) return TimePoint::max();
    return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
    drop_dead();
    assert(!heap_.empty() && "pop() on empty EventQueue");
    // priority_queue::top() is const&; the callback must be moved out, which
    // is safe because we pop immediately after.
    Entry& top = const_cast<Entry&>(heap_.top());
    Fired fired{top.time, std::move(top.callback)};
    live_.erase(top.seq);
    heap_.pop();
    return fired;
}

void EventQueue::clear() {
    while (!heap_.empty()) heap_.pop();
    live_.clear();
}

}  // namespace cocoa::sim
