#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace cocoa::sim {

// ---------------------------------------------------------------------------
// EventQueue (slot + generation, 4-ary heap)
// ---------------------------------------------------------------------------

EventId EventQueue::place(TimePoint t, std::uint64_t seq, Callback cb,
                          const EventTag& tag) {
    ++stats_.scheduled;
    if (cb.on_heap()) ++stats_.sbo_misses;

    std::uint32_t si;
    if (!free_slots_.empty()) {
        si = free_slots_.back();
        free_slots_.pop_back();
    } else {
        si = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
        tags_.emplace_back();
    }
    Slot& slot = slots_[si];
    slot.time = t;
    slot.seq = seq;
    slot.callback = std::move(cb);
    tags_[si] = tag;

    heap_.push_back(si);
    slot.heap_index = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);

    stats_.peak_pending = std::max<std::uint64_t>(stats_.peak_pending, heap_.size());
    return EventId{si, slot.generation};
}

EventId EventQueue::schedule(TimePoint t, Callback cb, const EventTag& tag) {
    return place(t, next_seq_++, std::move(cb), tag);
}

EventId EventQueue::schedule_with_seq(TimePoint t, std::uint64_t seq, Callback cb,
                                      const EventTag& tag) {
    return place(t, seq, std::move(cb), tag);
}

void EventQueue::for_each_pending(const PendingVisitor& fn) const {
    for (const std::uint32_t si : heap_) {
        const Slot& slot = slots_[si];
        fn(slot.time, slot.seq, tags_[si]);
    }
}

std::uint64_t EventQueue::min_pending_seq() const {
    std::uint64_t min_seq = UINT64_MAX;
    for (const std::uint32_t si : heap_) {
        min_seq = std::min(min_seq, slots_[si].seq);
    }
    return min_seq;
}

bool EventQueue::cancel(EventId id) {
    if (!pending(id)) return false;
    ++stats_.cancelled;
    remove_from_heap(slots_[id.slot_].heap_index);
    release_slot(id.slot_);
    return true;
}

EventQueue::Fired EventQueue::pop() {
    assert(!heap_.empty() && "pop() on empty EventQueue");
    const std::uint32_t si = heap_[0];
    Slot& slot = slots_[si];
    Fired fired{slot.time, std::move(slot.callback)};
    remove_from_heap(0);
    release_slot(si);
    return fired;
}

void EventQueue::clear() {
    for (const std::uint32_t si : heap_) {
        Slot& slot = slots_[si];
        slot.callback.reset();
        ++slot.generation;
        slot.heap_index = kNoHeapIndex;
        free_slots_.push_back(si);
    }
    heap_.clear();
}

void EventQueue::sift_up(std::size_t i) {
    const std::uint32_t moving = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!earlier(moving, heap_[parent])) break;
        heap_[i] = heap_[parent];
        slots_[heap_[i]].heap_index = static_cast<std::uint32_t>(i);
        i = parent;
    }
    heap_[i] = moving;
    slots_[moving].heap_index = static_cast<std::uint32_t>(i);
}

void EventQueue::sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    const std::uint32_t moving = heap_[i];
    for (;;) {
        const std::size_t first_child = 4 * i + 1;
        if (first_child >= n) break;
        // Pick the earliest of up to four children. Scanning left to right
        // with a strict '<' keeps sibling ties resolved identically on every
        // platform (they cannot happen anyway: seq is unique).
        std::size_t best = first_child;
        const std::size_t last_child = std::min(first_child + 4, n);
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (earlier(heap_[c], heap_[best])) best = c;
        }
        if (!earlier(heap_[best], moving)) break;
        heap_[i] = heap_[best];
        slots_[heap_[i]].heap_index = static_cast<std::uint32_t>(i);
        i = best;
    }
    heap_[i] = moving;
    slots_[moving].heap_index = static_cast<std::uint32_t>(i);
}

void EventQueue::remove_from_heap(std::size_t i) {
    const std::size_t last = heap_.size() - 1;
    const std::uint32_t moved = heap_[last];
    heap_.pop_back();
    if (i == last) return;
    heap_[i] = moved;
    slots_[moved].heap_index = static_cast<std::uint32_t>(i);
    // The displaced element may need to move either way; after sift_up the
    // follow-up sift_down is a single no-op comparison if it already moved.
    sift_up(i);
    sift_down(slots_[moved].heap_index);
}

void EventQueue::release_slot(std::uint32_t si) {
    Slot& slot = slots_[si];
    slot.callback.reset();  // release captures (e.g. shared_ptr<AirFrame>) now
    ++slot.generation;
    slot.heap_index = kNoHeapIndex;
    free_slots_.push_back(si);
}

// ---------------------------------------------------------------------------
// LegacyEventQueue (tombstone oracle)
// ---------------------------------------------------------------------------

EventId LegacyEventQueue::schedule(TimePoint t, Callback cb, const EventTag&) {
    ++stats_.scheduled;
    if (cb.on_heap()) ++stats_.sbo_misses;
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{t, seq, std::move(cb)});
    live_.insert(seq);
    stats_.peak_pending = std::max<std::uint64_t>(stats_.peak_pending, live_.size());
    return id_of(seq);
}

bool LegacyEventQueue::cancel(EventId id) {
    if (!id.valid()) return false;
    // Removal from `live_` is the cancellation; the heap entry becomes a
    // tombstone that drop_dead() skips.
    if (live_.erase(seq_of(id)) == 0) return false;
    ++stats_.cancelled;
    return true;
}

void LegacyEventQueue::drop_dead() const {
    while (!heap_.empty() && !live_.contains(heap_.top().seq)) {
        heap_.pop();
    }
}

TimePoint LegacyEventQueue::next_time() const {
    drop_dead();
    if (heap_.empty()) return TimePoint::max();
    return heap_.top().time;
}

LegacyEventQueue::Fired LegacyEventQueue::pop() {
    drop_dead();
    assert(!heap_.empty() && "pop() on empty LegacyEventQueue");
    // priority_queue::top() is const&; the callback must be moved out, which
    // is safe because we pop immediately after.
    Entry& top = const_cast<Entry&>(heap_.top());
    Fired fired{top.time, std::move(top.callback)};
    live_.erase(top.seq);
    heap_.pop();
    return fired;
}

void LegacyEventQueue::clear() {
    while (!heap_.empty()) heap_.pop();
    live_.clear();
}

EventId LegacyEventQueue::schedule_with_seq(TimePoint, std::uint64_t, Callback,
                                            const EventTag&) {
    throw std::logic_error(
        "checkpoint/restore requires the slot-generation kernel "
        "(rebuild without -DCOCOA_LEGACY_KERNEL)");
}

void LegacyEventQueue::for_each_pending(const PendingVisitor&) const {
    throw std::logic_error(
        "checkpoint/restore requires the slot-generation kernel "
        "(rebuild without -DCOCOA_LEGACY_KERNEL)");
}

std::uint64_t LegacyEventQueue::min_pending_seq() const {
    throw std::logic_error(
        "checkpoint/restore requires the slot-generation kernel "
        "(rebuild without -DCOCOA_LEGACY_KERNEL)");
}

}  // namespace cocoa::sim
