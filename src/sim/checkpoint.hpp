#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/callback.hpp"
#include "sim/event_tag.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace cocoa::sim::ckpt {

/// Version of the checkpoint blob layout. Bumped whenever any subsystem's
/// save_state layout changes; Reader::read_header rejects mismatches instead
/// of mis-parsing. See docs/checkpointing.md for the format contract.
inline constexpr std::uint32_t kFormatVersion = 1;

/// What kind of run the blob captures; selects the restore orchestrator.
enum class Flavor : std::uint32_t {
    kScenario = 1,  ///< core::Scenario (optionally with an armed fault plan)
    kSwarm = 2,     ///< core::Swarm large-N family
};

/// Serializer for checkpoint blobs: explicit little-endian fixed-width
/// primitives, so a blob written on any supported platform parses on any
/// other. Append-only; the layout *is* the format, guarded by kFormatVersion.
class Writer {
  public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v);
    void time(TimePoint t) { i64(t.to_nanos()); }
    void dur(Duration d) { i64(d.to_nanos()); }
    void str(std::string_view s) {
        u64(s.size());
        buf_.append(s.data(), s.size());
    }
    /// Section sentinel: cheap structural self-check. Reader::expect throws
    /// with both values when save and load walk different layouts.
    void mark(std::uint32_t sentinel) { u32(sentinel); }

    const std::string& buffer() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/// Deserializer over a blob. Every accessor throws std::runtime_error on
/// truncation; expect() throws on sentinel mismatch. Restoring from a
/// corrupt or stale blob must fail loudly, never half-apply.
class Reader {
  public:
    explicit Reader(std::string_view data) : p_(data.data()), end_(data.data() + data.size()) {}

    std::uint8_t u8() {
        need(1);
        return static_cast<std::uint8_t>(*p_++);
    }
    bool b() { return u8() != 0; }
    std::uint32_t u32() {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
        return v;
    }
    std::uint64_t u64() {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    TimePoint time() { return TimePoint::from_nanos(i64()); }
    Duration dur() { return Duration::nanos(i64()); }
    std::string str() {
        const std::uint64_t n = u64();
        need(n);
        std::string s(p_, n);
        p_ += n;
        return s;
    }
    void expect(std::uint32_t sentinel);

    bool at_end() const { return p_ == end_; }
    /// Throws unless the whole blob was consumed (catches layout drift that
    /// happens to stay in-bounds).
    void expect_end() const;

  private:
    void need(std::uint64_t n) const;
    const char* p_;
    const char* end_;
};

/// `magic | format version | flavor` prefix on every blob.
void write_header(Writer& w, Flavor flavor);
/// Throws std::runtime_error on bad magic or version mismatch.
Flavor read_header(Reader& r);

/// mt19937_64 engines round-trip through their standard textual stream
/// representation: the standard guarantees operator>> restores the exact
/// state, so draws after load bitwise-match draws after save.
void save_engine(Writer& w, const std::mt19937_64& engine);
void load_engine(Reader& r, std::mt19937_64& engine);

/// Maps EventKind values back to executable callbacks at restore time.
///
/// Subsystems register one rebuilder per kind they schedule (via their
/// register_rebuilders hook); Simulator::load_kernel then walks the blob's
/// pending-event list and re-creates each callback with its original
/// (time, seq) — which is what makes the restored run's pop order, and
/// therefore its physics, byte-identical to the straight run.
class CallbackRegistry {
  public:
    /// Builds the callback for one tagged event.
    using Make = std::function<InplaceCallback(const EventTag&)>;
    /// Optional: invoked with the EventId the rebuilt event received, so
    /// owners that track their timer (Radio::attempt_event_, ODMRP decision
    /// events) re-learn the handle.
    using Placed = std::function<void(const EventTag&, EventId)>;

    /// Throws std::logic_error on duplicate registration of a kind.
    void add(EventKind kind, Make make, Placed placed = nullptr);

    bool contains(EventKind kind) const {
        return entries_.contains(static_cast<std::uint32_t>(kind));
    }
    /// Throws std::runtime_error for unknown kinds (blob/binary mismatch).
    InplaceCallback make(const EventTag& tag) const;
    void placed(const EventTag& tag, EventId id) const;

  private:
    struct Entry {
        Make make;
        Placed placed;
    };
    const Entry& entry(const EventTag& tag) const;
    std::unordered_map<std::uint32_t, Entry> entries_;
};

/// File helpers for the cross-process path (`cocoa_sim --checkpoint-out` /
/// `--restore`). Throw std::runtime_error on I/O failure.
void write_blob_file(const std::string& path, std::string_view blob);
std::string read_blob_file(const std::string& path);

}  // namespace cocoa::sim::ckpt
