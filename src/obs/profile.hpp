#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace cocoa::obs {

/// Process-wide wall-clock profiler for coarse hot spots (the event loop,
/// BayesGrid::apply_constraint, replication fan-out). Off by default: a
/// disabled ProfileScope costs one relaxed atomic load and nothing else, so
/// scopes can live permanently in hot code. Wall-clock numbers are
/// intentionally kept out of every deterministic aggregate — they only reach
/// the user through report() (cocoa_sim --profile, COCOA_PROFILE=1 benches).
class Profiler {
  public:
    struct Entry {
        std::string name;
        std::uint64_t calls = 0;
        std::uint64_t total_ns = 0;
    };

    static Profiler& instance();

    static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
    static void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

    void record(const char* name, std::uint64_t ns);

    /// All scopes sorted by total time descending.
    std::vector<Entry> entries() const;

    /// Human-readable table; no output when nothing was recorded.
    void report(std::ostream& os) const;

    void reset();

  private:
    Profiler() = default;

    static std::atomic<bool> enabled_;

    mutable std::mutex mutex_;
    std::vector<Entry> entries_;  ///< linear scan: a handful of scopes exist
};

/// RAII timing scope. `name` must be a string literal (stored by pointer
/// until record time).
class ProfileScope {
  public:
    explicit ProfileScope(const char* name) {
        if (Profiler::enabled()) {
            name_ = name;
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~ProfileScope() {
        if (name_ != nullptr) {
            const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start_)
                                .count();
            Profiler::instance().record(name_, static_cast<std::uint64_t>(ns));
        }
    }

    ProfileScope(const ProfileScope&) = delete;
    ProfileScope& operator=(const ProfileScope&) = delete;

  private:
    const char* name_ = nullptr;
    std::chrono::steady_clock::time_point start_{};
};

}  // namespace cocoa::obs
