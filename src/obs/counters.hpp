#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace cocoa::obs {

/// Central registry of every subsystem's event counters under hierarchical
/// dotted names ("node.3.mac.rx_corrupted", "medium.frames_sent").
///
/// Subsystems keep counting plain std::uint64_t members in their hot paths —
/// registration only records a name -> pointer mapping, so increments cost
/// exactly what they did before the registry existed. One registry exists per
/// simulation (owned by the mac::Medium, the one object every radio already
/// shares); snapshots read the live values in name order, so any output
/// derived from them is deterministic.
///
/// Storage is a name-sorted vector and snapshot() refreshes a cached buffer
/// in place, so taking one snapshot per replication copies no strings and
/// performs no allocation once the name set is stable (it only changes when
/// a counter is registered, which is setup-time work).
class CounterRegistry {
  public:
    /// Registers `counter` under `name`. The pointee must outlive every
    /// snapshot() call. Throws std::invalid_argument on a duplicate name or
    /// a null pointer (both are wiring bugs).
    void add(std::string name, const std::uint64_t* counter);

    std::size_t size() const { return entries_.size(); }
    bool contains(const std::string& name) const { return find(name) != nullptr; }

    /// Current value of one counter; throws std::out_of_range when unknown.
    std::uint64_t value(const std::string& name) const;

    /// All counters sorted by name, read at call time. The returned buffer
    /// is owned by the registry and overwritten by the next snapshot();
    /// callers that keep results (ScenarioResult::counters) copy-assign it.
    const std::vector<std::pair<std::string, std::uint64_t>>& snapshot() const;

  private:
    const std::uint64_t* find(const std::string& name) const;

    /// Sorted by name; insertion keeps the order (registration is rare).
    std::vector<std::pair<std::string, const std::uint64_t*>> entries_;
    /// Lazily mirrors entries_' names; values refreshed on each snapshot().
    mutable std::vector<std::pair<std::string, std::uint64_t>> snapshot_buf_;
};

/// Collapses a snapshot across nodes: "node.<id>.mac.rx_corrupted" folds into
/// "mac.rx_corrupted" (summed over ids); names without a "node.<id>." prefix
/// pass through unchanged. Used for compact CLI tables.
std::map<std::string, std::uint64_t> aggregate_node_counters(
    const std::vector<std::pair<std::string, std::uint64_t>>& snapshot);

}  // namespace cocoa::obs
