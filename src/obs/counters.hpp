#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace cocoa::obs {

/// Central registry of every subsystem's event counters under hierarchical
/// dotted names ("node.3.mac.rx_corrupted", "medium.frames_sent").
///
/// Subsystems keep counting plain std::uint64_t members in their hot paths —
/// registration only records a name -> pointer mapping, so increments cost
/// exactly what they did before the registry existed. One registry exists per
/// simulation (owned by the mac::Medium, the one object every radio already
/// shares); snapshots read the live values in name order, so any output
/// derived from them is deterministic.
class CounterRegistry {
  public:
    /// Registers `counter` under `name`. The pointee must outlive every
    /// snapshot() call. Throws std::invalid_argument on a duplicate name or
    /// a null pointer (both are wiring bugs).
    void add(std::string name, const std::uint64_t* counter);

    std::size_t size() const { return counters_.size(); }
    bool contains(const std::string& name) const { return counters_.contains(name); }

    /// Current value of one counter; throws std::out_of_range when unknown.
    std::uint64_t value(const std::string& name) const;

    /// All counters sorted by name, read at call time.
    std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

  private:
    std::map<std::string, const std::uint64_t*> counters_;
};

/// Collapses a snapshot across nodes: "node.<id>.mac.rx_corrupted" folds into
/// "mac.rx_corrupted" (summed over ids); names without a "node.<id>." prefix
/// pass through unchanged. Used for compact CLI tables.
std::map<std::string, std::uint64_t> aggregate_node_counters(
    const std::vector<std::pair<std::string, std::uint64_t>>& snapshot);

}  // namespace cocoa::obs
