#include "obs/counters.hpp"

#include <cctype>
#include <stdexcept>

namespace cocoa::obs {

void CounterRegistry::add(std::string name, const std::uint64_t* counter) {
    if (counter == nullptr) {
        throw std::invalid_argument("CounterRegistry: null counter for '" + name + "'");
    }
    const auto [it, inserted] = counters_.emplace(std::move(name), counter);
    if (!inserted) {
        throw std::invalid_argument("CounterRegistry: duplicate counter '" + it->first +
                                    "'");
    }
}

std::uint64_t CounterRegistry::value(const std::string& name) const {
    return *counters_.at(name);
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot() const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
        out.emplace_back(name, *counter);
    }
    return out;
}

std::map<std::string, std::uint64_t> aggregate_node_counters(
    const std::vector<std::pair<std::string, std::uint64_t>>& snapshot) {
    std::map<std::string, std::uint64_t> out;
    for (const auto& [name, value] : snapshot) {
        std::string key = name;
        if (name.rfind("node.", 0) == 0) {
            const std::size_t dot = name.find('.', 5);
            // Only strip "node.<digits>." — anything else is a literal name.
            if (dot != std::string::npos && dot > 5) {
                bool numeric = true;
                for (std::size_t i = 5; i < dot; ++i) {
                    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) {
                        numeric = false;
                        break;
                    }
                }
                if (numeric) key = name.substr(dot + 1);
            }
        }
        out[key] += value;
    }
    return out;
}

}  // namespace cocoa::obs
