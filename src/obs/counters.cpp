#include "obs/counters.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace cocoa::obs {

void CounterRegistry::add(std::string name, const std::uint64_t* counter) {
    if (counter == nullptr) {
        throw std::invalid_argument("CounterRegistry: null counter for '" + name + "'");
    }
    const auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const auto& entry, const std::string& key) { return entry.first < key; });
    if (pos != entries_.end() && pos->first == name) {
        throw std::invalid_argument("CounterRegistry: duplicate counter '" + name + "'");
    }
    entries_.emplace(pos, std::move(name), counter);
}

const std::uint64_t* CounterRegistry::find(const std::string& name) const {
    const auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const auto& entry, const std::string& key) { return entry.first < key; });
    if (pos == entries_.end() || pos->first != name) return nullptr;
    return pos->second;
}

std::uint64_t CounterRegistry::value(const std::string& name) const {
    const std::uint64_t* counter = find(name);
    if (counter == nullptr) {
        throw std::out_of_range("CounterRegistry: unknown counter '" + name + "'");
    }
    return *counter;
}

const std::vector<std::pair<std::string, std::uint64_t>>& CounterRegistry::snapshot()
    const {
    if (snapshot_buf_.size() != entries_.size()) {
        // A counter was registered since the last snapshot: rebuild the name
        // column once. Steady-state snapshots below only refresh values.
        snapshot_buf_.clear();
        snapshot_buf_.reserve(entries_.size());
        for (const auto& [name, counter] : entries_) {
            snapshot_buf_.emplace_back(name, *counter);
        }
        return snapshot_buf_;
    }
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        snapshot_buf_[i].second = *entries_[i].second;
    }
    return snapshot_buf_;
}

std::map<std::string, std::uint64_t> aggregate_node_counters(
    const std::vector<std::pair<std::string, std::uint64_t>>& snapshot) {
    std::map<std::string, std::uint64_t> out;
    for (const auto& [name, value] : snapshot) {
        std::string key = name;
        if (name.rfind("node.", 0) == 0) {
            const std::size_t dot = name.find('.', 5);
            // Only strip "node.<digits>." — anything else is a literal name.
            if (dot != std::string::npos && dot > 5) {
                bool numeric = true;
                for (std::size_t i = 5; i < dot; ++i) {
                    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) {
                        numeric = false;
                        break;
                    }
                }
                if (numeric) key = name.substr(dot + 1);
            }
        }
        out[key] += value;
    }
    return out;
}

}  // namespace cocoa::obs
