#pragma once

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>

#include "sim/time.hpp"

namespace cocoa::obs {

/// Structured sim-time-stamped event trace: frame lifecycles, radio
/// sleep/wake, beacons, fixes. Disabled by default; while disabled every
/// emit call is a single branch on a pointer, so tracing costs nothing on
/// the hot path unless a sink is open. Two output formats:
///  - Jsonl: one JSON object per line
///    {"t_s":1.000050,"cat":"mac","name":"frame","node":0,...} — easy to
///    grep, stream, and load line by line.
///  - ChromeTrace: the Chrome trace_event JSON array, loadable in
///    chrome://tracing and Perfetto. Sim time maps to trace microseconds and
///    each node renders as its own "thread" row.
class TraceSink {
  public:
    enum class Format { Jsonl, ChromeTrace };

    /// One numeric event attribute (all attributes are numbers by design:
    /// the schema stays flat and the writer never needs string escaping).
    struct Arg {
        const char* key;
        double value;
    };

    TraceSink() = default;
    ~TraceSink();

    TraceSink(const TraceSink&) = delete;
    TraceSink& operator=(const TraceSink&) = delete;

    /// Starts emitting to `os` (not owned; must outlive the sink or a
    /// close() call). Throws std::logic_error if already open.
    void open(std::ostream& os, Format format);

    /// Opens `path` for writing and emits there. Throws std::runtime_error
    /// when the file cannot be created.
    void open_file(const std::string& path, Format format);

    /// Writes the format footer and detaches the sink. Safe when closed.
    void close();

    bool enabled() const { return out_ != nullptr; }
    std::uint64_t events_emitted() const { return events_; }

    /// A point-in-time event ("i" phase in Chrome terms).
    void instant(sim::TimePoint t, const char* category, const char* name,
                 std::int64_t node, std::initializer_list<Arg> args = {}) {
        if (out_ != nullptr) emit(t, t, 'i', category, name, node, args);
    }

    /// A spanning event over [start, end] ("X"/complete phase; JSONL output
    /// carries dur_s instead).
    void complete(sim::TimePoint start, sim::TimePoint end, const char* category,
                  const char* name, std::int64_t node,
                  std::initializer_list<Arg> args = {}) {
        if (out_ != nullptr) emit(start, end, 'X', category, name, node, args);
    }

  private:
    void emit(sim::TimePoint start, sim::TimePoint end, char phase,
              const char* category, const char* name, std::int64_t node,
              std::initializer_list<Arg> args);

    std::ostream* out_ = nullptr;
    std::unique_ptr<std::ofstream> file_;  ///< only when open_file() was used
    Format format_ = Format::Jsonl;
    std::uint64_t events_ = 0;
};

}  // namespace cocoa::obs
