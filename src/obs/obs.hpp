#pragma once

#include "obs/counters.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace cocoa::obs {

/// The per-simulation observability context: one counter registry plus one
/// trace sink. Owned by mac::Medium (the single object every radio, agent and
/// multicast node in a scenario already shares) and reached from there.
struct Obs {
    CounterRegistry counters;
    TraceSink trace;
};

}  // namespace cocoa::obs
