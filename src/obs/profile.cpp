#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace cocoa::obs {

std::atomic<bool> Profiler::enabled_{false};

Profiler& Profiler::instance() {
    static Profiler profiler;
    return profiler;
}

void Profiler::record(const char* name, std::uint64_t ns) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Entry& e : entries_) {
        if (e.name == name) {
            ++e.calls;
            e.total_ns += ns;
            return;
        }
    }
    entries_.push_back(Entry{name, 1, ns});
}

std::vector<Profiler::Entry> Profiler::entries() const {
    std::vector<Entry> out;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        out = entries_;
    }
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
        if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
        return a.name < b.name;
    });
    return out;
}

void Profiler::report(std::ostream& os) const {
    const auto sorted = entries();
    if (sorted.empty()) return;
    os << "profile (wall clock):\n";
    char buf[160];
    for (const Entry& e : sorted) {
        const double total_ms = static_cast<double>(e.total_ns) * 1e-6;
        const double per_call_us =
            static_cast<double>(e.total_ns) * 1e-3 / static_cast<double>(e.calls);
        std::snprintf(buf, sizeof(buf), "  %-28s %10llu calls %12.3f ms total %10.3f us/call\n",
                      e.name.c_str(), static_cast<unsigned long long>(e.calls), total_ms,
                      per_call_us);
        os << buf;
    }
}

void Profiler::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

}  // namespace cocoa::obs
