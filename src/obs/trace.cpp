#include "obs/trace.hpp"

#include <cstdio>
#include <stdexcept>

namespace cocoa::obs {

namespace {

/// Fixed-precision decimal formatting keeps the trace byte-deterministic
/// across platforms (ostream double formatting is locale/implementation
/// sensitive; snprintf "%.*f" is not).
void append_fixed(std::string& out, double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    out += buf;
}

}  // namespace

TraceSink::~TraceSink() { close(); }

void TraceSink::open(std::ostream& os, Format format) {
    if (out_ != nullptr) {
        throw std::logic_error("TraceSink: already open");
    }
    out_ = &os;
    format_ = format;
    events_ = 0;
    if (format_ == Format::ChromeTrace) {
        *out_ << "[";
    }
}

void TraceSink::open_file(const std::string& path, Format format) {
    auto file = std::make_unique<std::ofstream>(path);
    if (!*file) {
        throw std::runtime_error("TraceSink: cannot write '" + path + "'");
    }
    open(*file, format);
    file_ = std::move(file);
}

void TraceSink::close() {
    if (out_ == nullptr) return;
    if (format_ == Format::ChromeTrace) {
        *out_ << "\n]\n";
    }
    out_->flush();
    out_ = nullptr;
    file_.reset();
}

void TraceSink::emit(sim::TimePoint start, sim::TimePoint end, char phase,
                     const char* category, const char* name, std::int64_t node,
                     std::initializer_list<Arg> args) {
    std::string line;
    line.reserve(160);
    if (format_ == Format::ChromeTrace) {
        // Chrome trace_event timestamps are microseconds.
        line += events_ == 0 ? "\n{" : ",\n{";
        line += "\"ph\":\"";
        line += phase;
        line += "\",\"ts\":";
        append_fixed(line, static_cast<double>(start.to_nanos()) * 1e-3, 3);
        if (phase == 'X') {
            line += ",\"dur\":";
            append_fixed(line, static_cast<double>((end - start).to_nanos()) * 1e-3, 3);
        } else {
            line += ",\"s\":\"t\"";  // instant scope: thread
        }
        line += ",\"pid\":0,\"tid\":";
        line += std::to_string(node);
        line += ",\"cat\":\"";
        line += category;
        line += "\",\"name\":\"";
        line += name;
        line += "\"";
        if (args.size() > 0) {
            line += ",\"args\":{";
            bool first = true;
            for (const Arg& a : args) {
                if (!first) line += ",";
                first = false;
                line += "\"";
                line += a.key;
                line += "\":";
                append_fixed(line, a.value, 6);
            }
            line += "}";
        }
        line += "}";
    } else {
        line += "{\"t_s\":";
        append_fixed(line, start.to_seconds(), 9);
        line += ",\"cat\":\"";
        line += category;
        line += "\",\"name\":\"";
        line += name;
        line += "\",\"node\":";
        line += std::to_string(node);
        if (phase == 'X') {
            line += ",\"dur_s\":";
            append_fixed(line, (end - start).to_seconds(), 9);
        }
        for (const Arg& a : args) {
            line += ",\"";
            line += a.key;
            line += "\":";
            append_fixed(line, a.value, 6);
        }
        line += "}\n";
    }
    *out_ << line;
    ++events_;
}

}  // namespace cocoa::obs
