#pragma once

#include <optional>
#include <vector>

namespace cocoa::metrics {

/// An empirical cumulative distribution function over a set of samples —
/// e.g. the localization-error CDFs of Figure 8.
class Cdf {
  public:
    /// Builds the ECDF of `samples` (copied and sorted). Empty input allowed.
    explicit Cdf(std::vector<double> samples);

    bool empty() const { return sorted_.empty(); }
    std::size_t size() const { return sorted_.size(); }

    /// Fraction of samples <= x, in [0, 1]. Returns 0 for empty CDFs.
    double at(double x) const;

    /// Smallest sample value v such that at(v) >= q, for q in (0, 1].
    /// Returns std::nullopt on an empty CDF (a configuration that produced
    /// zero fixes has no quantiles — callers print "n/a", they don't abort).
    /// Throws std::invalid_argument for q outside (0, 1].
    std::optional<double> quantile(double q) const;

    double min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
    double max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }

    /// The sorted samples (x-axis of the ECDF plot).
    const std::vector<double>& sorted_samples() const { return sorted_; }

  private:
    std::vector<double> sorted_;
};

}  // namespace cocoa::metrics
