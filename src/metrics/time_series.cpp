#include "metrics/time_series.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/checkpoint.hpp"

namespace cocoa::metrics {

void TimeSeries::save(sim::ckpt::Writer& w) const {
    w.u64(samples_.size());
    for (const Sample& s : samples_) {
        w.time(s.time);
        w.f64(s.value);
    }
    stats_.save(w);
}

void TimeSeries::load(sim::ckpt::Reader& r) {
    samples_.clear();
    const std::uint64_t n = r.u64();
    samples_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        Sample s;
        s.time = r.time();
        s.value = r.f64();
        samples_.push_back(s);
    }
    stats_.load(r);
}

void TimeSeries::push(sim::TimePoint t, double value) {
    if (!samples_.empty() && t < samples_.back().time) {
        throw std::invalid_argument("TimeSeries::push: samples must be time-ordered");
    }
    samples_.push_back({t, value});
    stats_.add(value);
}

double TimeSeries::value_at(sim::TimePoint t, double fallback) const {
    // First sample strictly after t, then step back one.
    const auto it = std::upper_bound(
        samples_.begin(), samples_.end(), t,
        [](sim::TimePoint lhs, const Sample& s) { return lhs < s.time; });
    if (it == samples_.begin()) return fallback;
    return std::prev(it)->value;
}

TimeSeries TimeSeries::downsample(sim::Duration bucket) const {
    if (bucket <= sim::Duration::zero()) {
        throw std::invalid_argument("TimeSeries::downsample: bucket must be positive");
    }
    TimeSeries out;
    std::size_t i = 0;
    while (i < samples_.size()) {
        const auto bucket_index = samples_[i].time.to_nanos() / bucket.to_nanos();
        const auto bucket_end =
            sim::TimePoint::from_nanos((bucket_index + 1) * bucket.to_nanos());
        RunningStat acc;
        sim::TimePoint last = samples_[i].time;
        while (i < samples_.size() && samples_[i].time < bucket_end) {
            acc.add(samples_[i].value);
            last = samples_[i].time;
            ++i;
        }
        out.push(last, acc.mean());
    }
    return out;
}

double TimeSeries::mean_in(sim::TimePoint from, sim::TimePoint to) const {
    RunningStat acc;
    for (const Sample& s : samples_) {
        if (s.time >= from && s.time < to) acc.add(s.value);
    }
    return acc.mean();
}

}  // namespace cocoa::metrics
