#pragma once

#include <vector>

#include "metrics/running_stat.hpp"
#include "sim/time.hpp"

namespace cocoa::metrics {

/// A sampled time series of (virtual time, value) pairs — e.g. the per-second
/// average localization error the paper plots in Figures 4, 6, 7 and 9(a).
class TimeSeries {
  public:
    struct Sample {
        sim::TimePoint time;
        double value;
    };

    void push(sim::TimePoint t, double value);

    const std::vector<Sample>& samples() const { return samples_; }
    bool empty() const { return samples_.empty(); }
    std::size_t size() const { return samples_.size(); }

    /// Summary statistics over all sample values ("average error over time").
    const RunningStat& stats() const { return stats_; }

    /// Value at or before `t` (step interpolation); `fallback` before the
    /// first sample.
    double value_at(sim::TimePoint t, double fallback = 0.0) const;

    /// Down-samples to at most one sample per `bucket` of time, averaging
    /// values that fall into the same bucket. Used by bench printers to keep
    /// figure tables readable.
    TimeSeries downsample(sim::Duration bucket) const;

    /// Mean of values with time in [from, to).
    double mean_in(sim::TimePoint from, sim::TimePoint to) const;

    /// Checkpoints samples + summary stats verbatim.
    void save(sim::ckpt::Writer& w) const;
    void load(sim::ckpt::Reader& r);

  private:
    std::vector<Sample> samples_;
    RunningStat stats_;
};

}  // namespace cocoa::metrics
