#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace cocoa::metrics {

/// Neumaier-compensated (improved Kahan) accumulator. Each add costs one
/// extra subtraction and a branch but keeps the error of the running sum
/// independent of the number of terms — important for 10⁶-cell grid masses
/// where naive left-to-right summation drifts by ~n·eps relative error.
class KahanSum {
  public:
    void add(double x) {
        const double t = sum_ + x;
        if (std::abs(sum_) >= std::abs(x)) {
            comp_ += (sum_ - t) + x;
        } else {
            comp_ += (x - t) + sum_;
        }
        sum_ = t;
    }

    double value() const { return sum_ + comp_; }

    void reset() {
        sum_ = 0.0;
        comp_ = 0.0;
    }

  private:
    double sum_ = 0.0;
    double comp_ = 0.0;
};

/// Pairwise (cascade) summation over a contiguous range: O(log n) error
/// growth with plain adds, so it vectorises better than the compensated
/// accumulator. Good default for one-shot reductions over stored arrays.
inline double pairwise_sum(const double* data, std::size_t n) {
    // Below this size, fall back to a straight loop; the recursion overhead
    // would dominate and the error is bounded by kLeaf·eps anyway.
    constexpr std::size_t kLeaf = 128;
    if (n <= kLeaf) {
        double s = 0.0;
        for (std::size_t i = 0; i < n; ++i) s += data[i];
        return s;
    }
    const std::size_t half = n / 2;
    return pairwise_sum(data, half) + pairwise_sum(data + half, n - half);
}

inline double pairwise_sum(const std::vector<double>& values) {
    return pairwise_sum(values.data(), values.size());
}

}  // namespace cocoa::metrics
