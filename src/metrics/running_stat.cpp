#include "metrics/running_stat.hpp"

#include <algorithm>
#include <cmath>

#include "sim/checkpoint.hpp"

namespace cocoa::metrics {

void RunningStat::save(sim::ckpt::Writer& w) const {
    w.u64(n_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
}

void RunningStat::load(sim::ckpt::Reader& r) {
    n_ = static_cast<std::size_t>(r.u64());
    mean_ = r.f64();
    m2_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
}

void RunningStat::add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double RunningStat::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double ci95_halfwidth(const RunningStat& s) {
    if (s.count() < 2) return 0.0;
    // Two-sided 97.5% Student-t quantiles for 1..30 degrees of freedom.
    static constexpr double kT975[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
        2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
    const std::size_t df = s.count() - 1;
    const double t = df <= 30 ? kT975[df - 1] : 1.960;
    return t * s.stddev() / std::sqrt(static_cast<double>(s.count()));
}

}  // namespace cocoa::metrics
