#include "metrics/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cocoa::metrics {

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
    std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::at(double x) const {
    if (sorted_.empty()) return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::optional<double> Cdf::quantile(double q) const {
    if (q <= 0.0 || q > 1.0) {
        throw std::invalid_argument("Cdf::quantile: q must be in (0, 1]");
    }
    if (sorted_.empty()) return std::nullopt;
    const auto n = static_cast<double>(sorted_.size());
    const auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
    return sorted_[std::min(idx, sorted_.size() - 1)];
}

}  // namespace cocoa::metrics
