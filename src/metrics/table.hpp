#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cocoa::metrics {

/// A fixed-width text table used by every bench binary to print the rows and
/// series the paper reports in its figures.
class Table {
  public:
    explicit Table(std::vector<std::string> headers);

    /// Appends a row; must have exactly as many cells as there are headers,
    /// otherwise throws std::invalid_argument.
    void add_row(std::vector<std::string> cells);

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

    /// Renders with column alignment and a header separator.
    void print(std::ostream& os) const;

    /// Renders as CSV (no quoting of separators; callers use plain cells).
    void print_csv(std::ostream& os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the decimal point.
std::string fmt(double value, int precision = 2);

}  // namespace cocoa::metrics
