#pragma once

#include <cstddef>
#include <limits>

namespace cocoa::metrics {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// Numerically stable; O(1) memory regardless of sample count.
class RunningStat {
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    bool empty() const { return n_ == 0; }

    /// Mean of all samples; 0 when empty.
    double mean() const { return n_ ? mean_ : 0.0; }
    /// Unbiased sample variance; 0 with fewer than two samples.
    double variance() const;
    double stddev() const;
    /// Smallest sample; +inf when empty.
    double min() const { return min_; }
    /// Largest sample; -inf when empty.
    double max() const { return max_; }
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

    /// Merges another accumulator into this one (parallel Welford merge).
    void merge(const RunningStat& other);

    void reset() { *this = RunningStat{}; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace cocoa::metrics
