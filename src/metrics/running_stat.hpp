#pragma once

#include <cstddef>
#include <limits>

namespace cocoa::sim::ckpt {
class Writer;
class Reader;
}  // namespace cocoa::sim::ckpt

namespace cocoa::metrics {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// Numerically stable; O(1) memory regardless of sample count.
class RunningStat {
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    bool empty() const { return n_ == 0; }

    /// Mean of all samples; 0 when empty.
    double mean() const { return n_ ? mean_ : 0.0; }
    /// Unbiased sample variance. With fewer than two samples the estimator
    /// is undefined; this returns 0 (never NaN) so "±" columns and CI maths
    /// stay printable — pinned by tests/exp_test.cpp.
    double variance() const;
    /// sqrt(variance()); 0 (never NaN) with fewer than two samples.
    double stddev() const;
    /// Smallest sample; +inf when empty.
    double min() const { return min_; }
    /// Largest sample; -inf when empty.
    double max() const { return max_; }
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

    /// Merges another accumulator into this one (parallel Welford merge).
    void merge(const RunningStat& other);

    void reset() { *this = RunningStat{}; }

    /// Checkpoints the accumulator verbatim (Welford state + extrema).
    void save(sim::ckpt::Writer& w) const;
    void load(sim::ckpt::Reader& r);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Half-width of the two-sided 95% confidence interval on the mean:
/// t_{0.975, n-1} * stddev / sqrt(n), using the Student-t quantile for
/// n <= 31 samples and the normal 1.96 beyond. 0 with fewer than two
/// samples (a single replication has no interval).
double ci95_halfwidth(const RunningStat& s);

}  // namespace cocoa::metrics
