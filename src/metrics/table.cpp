#include "metrics/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cocoa::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) {
        throw std::invalid_argument("Table: at least one column required");
    }
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("Table::add_row: cell count != column count");
    }
    rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
        for (const auto& row : rows_) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::setw(static_cast<int>(widths[c])) << row[c];
            os << (c + 1 < row.size() ? "  " : "\n");
        }
    };
    print_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c], '-') << (c + 1 < headers_.size() ? "  " : "\n");
    }
    for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
    const auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c] << (c + 1 < row.size() ? "," : "\n");
        }
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    return ss.str();
}

}  // namespace cocoa::metrics
