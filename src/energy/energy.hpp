#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/counters.hpp"
#include "sim/time.hpp"

namespace cocoa::sim::ckpt {
class Writer;
class Reader;
}  // namespace cocoa::sim::ckpt

namespace cocoa::energy {

/// Operating states of an 802.11 radio, ordered for array indexing.
enum class RadioState : std::uint8_t { Off = 0, Sleep, Idle, Rx, Tx };

constexpr std::size_t kNumRadioStates = 5;
constexpr std::size_t index_of(RadioState s) { return static_cast<std::size_t>(s); }
const char* to_string(RadioState s);

/// True for states in which the radio can sense / receive / transmit.
constexpr bool is_awake(RadioState s) {
    return s == RadioState::Idle || s == RadioState::Rx || s == RadioState::Tx;
}

/// Per-state power draw in milliwatts, plus fixed per-transition costs.
///
/// Defaults follow the Lucent/Orinoco WaveLAN measurements of Feeney &
/// Nilsson (INFOCOM'01) as quoted by the paper: idle consumes nearly as much
/// as receive (~900 mW) while sleep draws only ~50 mW — which is why CoCoA's
/// coordinated sleeping is where the savings come from.
struct PowerProfile {
    double tx_mw = 1400.0;
    double rx_mw = 1000.0;
    double idle_mw = 900.0;
    double sleep_mw = 50.0;
    double off_mw = 0.0;
    /// Energy charged when the radio powers up from Sleep/Off to an awake
    /// state, and again when it powers back down (card on/off cost).
    double transition_mj = 5.0;

    double power_mw(RadioState s) const;

    /// The profile used throughout the paper's evaluation.
    static PowerProfile wavelan() { return {}; }
};

/// Integrates a single radio's energy use over virtual time.
///
/// The owner reports every state change; the meter accumulates
/// power x duration per state plus transition costs. All energies in
/// millijoules.
class EnergyMeter {
  public:
    EnergyMeter(const PowerProfile& profile, sim::TimePoint start,
                RadioState initial = RadioState::Idle);

    RadioState state() const { return state_; }

    /// Moves to `next` at time `when`, charging the elapsed interval at the
    /// old state's power and any transition cost. `when` must not precede the
    /// previous change (throws std::logic_error).
    void change_state(sim::TimePoint when, RadioState next);

    /// Closes the books through `when` without changing state (call at the
    /// end of a simulation before reading totals).
    void settle(sim::TimePoint when);

    double total_mj() const;
    double state_mj(RadioState s) const { return state_mj_[index_of(s)]; }
    double transition_mj() const { return transition_mj_; }
    sim::Duration time_in(RadioState s) const { return state_time_[index_of(s)]; }
    std::uint64_t transitions() const { return transitions_; }

    /// Registers this meter's counters under `prefix` (e.g. "node.3.energy.").
    void register_counters(obs::CounterRegistry& registry,
                           const std::string& prefix) const {
        registry.add(prefix + "transitions", &transitions_);
    }

    /// Checkpoints the accounting verbatim (state, book-close time, per-state
    /// tallies). The profile is configuration and is not serialized.
    void save(sim::ckpt::Writer& w) const;
    void load(sim::ckpt::Reader& r);

  private:
    void accrue(sim::TimePoint until);

    PowerProfile profile_;
    RadioState state_;
    sim::TimePoint last_change_;
    std::array<double, kNumRadioStates> state_mj_{};
    std::array<sim::Duration, kNumRadioStates> state_time_{};
    double transition_mj_ = 0.0;
    std::uint64_t transitions_ = 0;
};

}  // namespace cocoa::energy
