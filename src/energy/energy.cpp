#include "energy/energy.hpp"

#include <numeric>
#include <stdexcept>

namespace cocoa::energy {

const char* to_string(RadioState s) {
    switch (s) {
        case RadioState::Off: return "off";
        case RadioState::Sleep: return "sleep";
        case RadioState::Idle: return "idle";
        case RadioState::Rx: return "rx";
        case RadioState::Tx: return "tx";
    }
    return "?";
}

double PowerProfile::power_mw(RadioState s) const {
    switch (s) {
        case RadioState::Off: return off_mw;
        case RadioState::Sleep: return sleep_mw;
        case RadioState::Idle: return idle_mw;
        case RadioState::Rx: return rx_mw;
        case RadioState::Tx: return tx_mw;
    }
    return 0.0;
}

EnergyMeter::EnergyMeter(const PowerProfile& profile, sim::TimePoint start,
                         RadioState initial)
    : profile_(profile), state_(initial), last_change_(start) {}

void EnergyMeter::accrue(sim::TimePoint until) {
    if (until < last_change_) {
        throw std::logic_error("EnergyMeter: time went backwards");
    }
    const sim::Duration dt = until - last_change_;
    state_mj_[index_of(state_)] += profile_.power_mw(state_) * dt.to_seconds();
    state_time_[index_of(state_)] += dt;
    last_change_ = until;
}

void EnergyMeter::change_state(sim::TimePoint when, RadioState next) {
    accrue(when);
    if (next == state_) return;
    // Powering the card up or down has a fixed cost; transitions between
    // awake states (idle <-> rx <-> tx) are free.
    if (is_awake(state_) != is_awake(next)) {
        transition_mj_ += profile_.transition_mj;
    }
    ++transitions_;
    state_ = next;
}

void EnergyMeter::settle(sim::TimePoint when) { accrue(when); }

double EnergyMeter::total_mj() const {
    return std::accumulate(state_mj_.begin(), state_mj_.end(), transition_mj_);
}

}  // namespace cocoa::energy
