#include "energy/energy.hpp"

#include <numeric>
#include <stdexcept>

#include "sim/checkpoint.hpp"

namespace cocoa::energy {

const char* to_string(RadioState s) {
    switch (s) {
        case RadioState::Off: return "off";
        case RadioState::Sleep: return "sleep";
        case RadioState::Idle: return "idle";
        case RadioState::Rx: return "rx";
        case RadioState::Tx: return "tx";
    }
    return "?";
}

double PowerProfile::power_mw(RadioState s) const {
    switch (s) {
        case RadioState::Off: return off_mw;
        case RadioState::Sleep: return sleep_mw;
        case RadioState::Idle: return idle_mw;
        case RadioState::Rx: return rx_mw;
        case RadioState::Tx: return tx_mw;
    }
    return 0.0;
}

EnergyMeter::EnergyMeter(const PowerProfile& profile, sim::TimePoint start,
                         RadioState initial)
    : profile_(profile), state_(initial), last_change_(start) {}

void EnergyMeter::accrue(sim::TimePoint until) {
    if (until < last_change_) {
        throw std::logic_error("EnergyMeter: time went backwards");
    }
    const sim::Duration dt = until - last_change_;
    state_mj_[index_of(state_)] += profile_.power_mw(state_) * dt.to_seconds();
    state_time_[index_of(state_)] += dt;
    last_change_ = until;
}

void EnergyMeter::change_state(sim::TimePoint when, RadioState next) {
    accrue(when);
    if (next == state_) return;
    // Powering the card up or down has a fixed cost; transitions between
    // awake states (idle <-> rx <-> tx) are free.
    if (is_awake(state_) != is_awake(next)) {
        transition_mj_ += profile_.transition_mj;
    }
    ++transitions_;
    state_ = next;
}

void EnergyMeter::settle(sim::TimePoint when) { accrue(when); }

double EnergyMeter::total_mj() const {
    return std::accumulate(state_mj_.begin(), state_mj_.end(), transition_mj_);
}

void EnergyMeter::save(sim::ckpt::Writer& w) const {
    w.u8(static_cast<std::uint8_t>(state_));
    w.time(last_change_);
    for (const double mj : state_mj_) w.f64(mj);
    for (const sim::Duration t : state_time_) w.dur(t);
    w.f64(transition_mj_);
    w.u64(transitions_);
}

void EnergyMeter::load(sim::ckpt::Reader& r) {
    state_ = static_cast<RadioState>(r.u8());
    last_change_ = r.time();
    for (double& mj : state_mj_) mj = r.f64();
    for (sim::Duration& t : state_time_) t = r.dur();
    transition_mj_ = r.f64();
    transitions_ = r.u64();
}

}  // namespace cocoa::energy
