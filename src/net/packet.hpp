#pragma once

#include <cstdint>
#include <memory>
#include <variant>

#include "geom/motion.hpp"
#include "geom/vec2.hpp"
#include "sim/time.hpp"

namespace cocoa::net {

using NodeId = std::uint32_t;
constexpr NodeId kBroadcastId = 0xFFFFFFFF;
constexpr NodeId kInvalidId = 0xFFFFFFFE;
using GroupId = std::uint32_t;

/// Header sizes used for wire-size accounting. The paper states each beacon
/// carries IP and UDP headers of 20 bytes each, on top of the 802.11
/// MAC/PHY framing.
constexpr std::size_t kIpHeaderBytes = 20;
constexpr std::size_t kUdpHeaderBytes = 20;  // as stated in the paper (§2.3)
constexpr std::size_t kMacHeaderBytes = 24;
constexpr std::size_t kFcsBytes = 4;

/// Application demultiplexing key (the "UDP port").
enum class Port : std::uint8_t {
    Beacon,         ///< CoCoA RF localization beacons
    McastControl,   ///< ODMRP/MRMM JOIN QUERY / JOIN REPLY
    McastData,      ///< multicast data delivery (carries SYNC in CoCoA)
    GeoHello,       ///< geographic-routing neighbour discovery
    GeoData,        ///< geographic-routing unicast data
    Test,           ///< loopback traffic for unit tests
};

struct Packet;

/// CoCoA RF beacon (§2.2): the coordinates of the sending anchor robot, as
/// obtained from its localization device.
struct BeaconPayload {
    NodeId anchor_id = kInvalidId;
    geom::Vec2 anchor_position;
    std::uint32_t window_seq = 0;  ///< which transmit window this belongs to
    std::uint8_t beacon_index = 0; ///< 0..k-1 within the window
};

/// CoCoA SYNC message (§2.3): advertises the beacon period T and transmit
/// window t; delivered down the MRMM mesh from the Sync robot.
struct SyncPayload {
    double period_s = 0.0;
    double window_s = 0.0;
    std::uint32_t seq = 0;
    sim::TimePoint period_start;  ///< start of the period this SYNC opens
};

/// ODMRP/MRMM JOIN QUERY, flooded to (re)build the forwarding mesh. MRMM
/// additionally carries the sender's motion snapshot and the minimum
/// predicted link lifetime along the path so far (§2.3).
struct JoinQueryPayload {
    GroupId group = 0;
    NodeId source = kInvalidId;
    std::uint32_t seq = 0;
    NodeId prev_hop = kInvalidId;
    std::uint8_t hop_count = 0;
    geom::MotionState sender_motion;   ///< MRMM mobility knowledge
    double path_lifetime_s = 0.0;      ///< bottleneck link lifetime, source..sender
};

/// ODMRP/MRMM JOIN REPLY: sent by members (and propagated by selected
/// forwarders) toward the source; the named next hop joins the forwarding
/// group.
struct JoinReplyPayload {
    GroupId group = 0;
    NodeId source = kInvalidId;
    std::uint32_t seq = 0;
    NodeId sender = kInvalidId;
    NodeId next_hop = kInvalidId;  ///< upstream node being recruited
};

/// Multicast data frame forwarded along the mesh; wraps an inner application
/// packet (CoCoA uses this for SYNC).
struct McastDataPayload {
    GroupId group = 0;
    NodeId source = kInvalidId;
    std::uint32_t seq = 0;
    NodeId prev_hop = kInvalidId;
    std::shared_ptr<const Packet> inner;  ///< application payload
};

/// Geographic-routing HELLO: advertises the sender's (estimated) position to
/// one-hop neighbours (§6's "scalable geographic routing" application).
struct GeoHelloPayload {
    geom::Vec2 position;
};

/// How a geographic data packet is currently being forwarded.
enum class GeoMode : std::uint8_t {
    Greedy,  ///< forward to the neighbour closest to the destination
    Face,    ///< right-hand traversal of the planarized neighbour graph
};

/// Geographic-routing unicast data (greedy + face recovery, after Bose et
/// al.'s "routing with guaranteed delivery", the paper's citation [23]).
struct GeoDataPayload {
    NodeId origin = kInvalidId;
    NodeId dest = kInvalidId;
    geom::Vec2 dest_position;      ///< where the origin believes dest to be
    std::uint32_t seq = 0;
    std::uint8_t ttl = 64;
    NodeId next_hop = kInvalidId;  ///< link-layer intended receiver
    NodeId prev_hop = kInvalidId;
    GeoMode mode = GeoMode::Greedy;
    geom::Vec2 face_entry;         ///< position where face mode started
    std::uint64_t app_tag = 0;     ///< opaque application identifier
};

/// Link-layer acknowledgement for geographic-routing data (emulates the
/// 802.11 unicast ACK that broadcast frames lack).
struct GeoAckPayload {
    NodeId origin = kInvalidId;   ///< origin of the acknowledged data packet
    std::uint32_t seq = 0;
    NodeId acker = kInvalidId;    ///< the hop confirming reception
};

/// Opaque payload for unit tests.
struct TestPayload {
    std::uint64_t value = 0;
};

using Payload = std::variant<BeaconPayload, SyncPayload, JoinQueryPayload,
                             JoinReplyPayload, McastDataPayload, GeoHelloPayload,
                             GeoDataPayload, GeoAckPayload, TestPayload>;

/// A link-layer broadcast frame. All CoCoA traffic is UDP broadcast; there
/// is no unicast addressing below the protocol logic.
struct Packet {
    NodeId src = kInvalidId;
    Port port = Port::Test;
    std::size_t payload_bytes = 0;  ///< application payload size on the wire
    Payload payload;

    /// Total frame size used for airtime and energy accounting.
    std::size_t wire_bytes() const {
        return payload_bytes + kIpHeaderBytes + kUdpHeaderBytes + kMacHeaderBytes +
               kFcsBytes;
    }
};

/// Reception metadata handed to protocol handlers along with the packet.
struct RxInfo {
    double rssi_dbm = 0.0;
    sim::TimePoint received_at;
};

}  // namespace cocoa::net
