#include "net/node.hpp"

#include <stdexcept>
#include <utility>

namespace cocoa::net {

void ProtocolHost::register_handler(Port port, Handler handler) {
    auto& slot = handlers_.at(static_cast<std::size_t>(port));
    if (slot) {
        throw std::logic_error("ProtocolHost: duplicate handler for port");
    }
    slot = std::move(handler);
}

void ProtocolHost::dispatch(const Packet& packet, const RxInfo& info) const {
    const auto& handler = handlers_.at(static_cast<std::size_t>(packet.port));
    if (handler) handler(packet, info);
}

Node::Node(sim::Simulator& sim, mac::Medium& medium, NodeId id,
           const mobility::WaypointConfig& mobility_config,
           const energy::PowerProfile& power_profile, mac::MacConfig mac_config,
           std::optional<geom::Vec2> start)
    : sim_(sim),
      id_(id),
      mobility_(mobility_config, sim.rng().stream("mobility", id), start),
      radio_(
          sim, medium, id, [this] { return mobility_.position(); }, power_profile,
          sim.rng().stream("mac.backoff", id), mac_config) {
    radio_.set_receive_handler(
        [this](const Packet& packet, const RxInfo& info) { host_.dispatch(packet, info); });
}

World::World(sim::Simulator& sim, const phy::Channel& channel, mac::MediumConfig config)
    : sim_(sim), medium_(sim, channel, config) {}

Node& World::add_node(const mobility::WaypointConfig& mobility_config,
                      const energy::PowerProfile& power_profile, mac::MacConfig mac_config,
                      std::optional<geom::Vec2> start) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::make_unique<Node>(sim_, medium_, id, mobility_config,
                                            power_profile, mac_config, start));
    return *nodes_.back();
}

}  // namespace cocoa::net
