#include "net/packet_io.hpp"

#include <stdexcept>

#include "sim/checkpoint.hpp"

namespace cocoa::net {

namespace {

namespace ckpt = sim::ckpt;

constexpr std::uint32_t kNullInner = 0xffffffffu;

void save_vec2(ckpt::Writer& w, const geom::Vec2& v) {
    w.f64(v.x);
    w.f64(v.y);
}

geom::Vec2 load_vec2(ckpt::Reader& r) {
    geom::Vec2 v;
    v.x = r.f64();
    v.y = r.f64();
    return v;
}

void save_motion(ckpt::Writer& w, const geom::MotionState& m) {
    save_vec2(w, m.position);
    save_vec2(w, m.velocity);
    w.f64(m.plan_horizon_s);
}

geom::MotionState load_motion(ckpt::Reader& r) {
    geom::MotionState m;
    m.position = load_vec2(r);
    m.velocity = load_vec2(r);
    m.plan_horizon_s = r.f64();
    return m;
}

void save_payload(ckpt::Writer& w, const Payload& payload, PacketSaveCtx& ctx) {
    w.u8(static_cast<std::uint8_t>(payload.index()));
    std::visit(
        [&](const auto& p) {
            using T = std::decay_t<decltype(p)>;
            if constexpr (std::is_same_v<T, BeaconPayload>) {
                w.u32(p.anchor_id);
                save_vec2(w, p.anchor_position);
                w.u32(p.window_seq);
                w.u8(p.beacon_index);
            } else if constexpr (std::is_same_v<T, SyncPayload>) {
                w.f64(p.period_s);
                w.f64(p.window_s);
                w.u32(p.seq);
                w.time(p.period_start);
            } else if constexpr (std::is_same_v<T, JoinQueryPayload>) {
                w.u32(p.group);
                w.u32(p.source);
                w.u32(p.seq);
                w.u32(p.prev_hop);
                w.u8(p.hop_count);
                save_motion(w, p.sender_motion);
                w.f64(p.path_lifetime_s);
            } else if constexpr (std::is_same_v<T, JoinReplyPayload>) {
                w.u32(p.group);
                w.u32(p.source);
                w.u32(p.seq);
                w.u32(p.sender);
                w.u32(p.next_hop);
            } else if constexpr (std::is_same_v<T, McastDataPayload>) {
                w.u32(p.group);
                w.u32(p.source);
                w.u32(p.seq);
                w.u32(p.prev_hop);
                save_inner(w, p.inner, ctx);
            } else if constexpr (std::is_same_v<T, GeoHelloPayload>) {
                save_vec2(w, p.position);
            } else if constexpr (std::is_same_v<T, GeoDataPayload>) {
                w.u32(p.origin);
                w.u32(p.dest);
                save_vec2(w, p.dest_position);
                w.u32(p.seq);
                w.u8(p.ttl);
                w.u32(p.next_hop);
                w.u32(p.prev_hop);
                w.u8(static_cast<std::uint8_t>(p.mode));
                save_vec2(w, p.face_entry);
                w.u64(p.app_tag);
            } else if constexpr (std::is_same_v<T, GeoAckPayload>) {
                w.u32(p.origin);
                w.u32(p.seq);
                w.u32(p.acker);
            } else if constexpr (std::is_same_v<T, TestPayload>) {
                w.u64(p.value);
            }
        },
        payload);
}

Payload load_payload(ckpt::Reader& r, PacketLoadCtx& ctx) {
    const std::uint8_t index = r.u8();
    switch (index) {
        case 0: {
            BeaconPayload p;
            p.anchor_id = r.u32();
            p.anchor_position = load_vec2(r);
            p.window_seq = r.u32();
            p.beacon_index = r.u8();
            return p;
        }
        case 1: {
            SyncPayload p;
            p.period_s = r.f64();
            p.window_s = r.f64();
            p.seq = r.u32();
            p.period_start = r.time();
            return p;
        }
        case 2: {
            JoinQueryPayload p;
            p.group = r.u32();
            p.source = r.u32();
            p.seq = r.u32();
            p.prev_hop = r.u32();
            p.hop_count = r.u8();
            p.sender_motion = load_motion(r);
            p.path_lifetime_s = r.f64();
            return p;
        }
        case 3: {
            JoinReplyPayload p;
            p.group = r.u32();
            p.source = r.u32();
            p.seq = r.u32();
            p.sender = r.u32();
            p.next_hop = r.u32();
            return p;
        }
        case 4: {
            McastDataPayload p;
            p.group = r.u32();
            p.source = r.u32();
            p.seq = r.u32();
            p.prev_hop = r.u32();
            p.inner = load_inner(r, ctx);
            return p;
        }
        case 5: {
            GeoHelloPayload p;
            p.position = load_vec2(r);
            return p;
        }
        case 6: {
            GeoDataPayload p;
            p.origin = r.u32();
            p.dest = r.u32();
            p.dest_position = load_vec2(r);
            p.seq = r.u32();
            p.ttl = r.u8();
            p.next_hop = r.u32();
            p.prev_hop = r.u32();
            p.mode = static_cast<GeoMode>(r.u8());
            p.face_entry = load_vec2(r);
            p.app_tag = r.u64();
            return p;
        }
        case 7: {
            GeoAckPayload p;
            p.origin = r.u32();
            p.seq = r.u32();
            p.acker = r.u32();
            return p;
        }
        case 8: {
            TestPayload p;
            p.value = r.u64();
            return p;
        }
        default:
            throw std::runtime_error("packet_io: unknown payload alternative " +
                                     std::to_string(index));
    }
}

}  // namespace

void save_packet(sim::ckpt::Writer& w, const Packet& p, PacketSaveCtx& ctx) {
    w.u32(p.src);
    w.u8(static_cast<std::uint8_t>(p.port));
    w.u64(p.payload_bytes);
    save_payload(w, p.payload, ctx);
}

Packet load_packet(sim::ckpt::Reader& r, PacketLoadCtx& ctx) {
    Packet p;
    p.src = r.u32();
    p.port = static_cast<Port>(r.u8());
    p.payload_bytes = static_cast<std::size_t>(r.u64());
    p.payload = load_payload(r, ctx);
    return p;
}

void save_inner(sim::ckpt::Writer& w, const std::shared_ptr<const Packet>& p,
                PacketSaveCtx& ctx) {
    if (!p) {
        w.u32(kNullInner);
        return;
    }
    const auto it = ctx.inner_ids.find(p.get());
    if (it != ctx.inner_ids.end()) {
        w.u32(it->second);
        return;
    }
    const auto id = static_cast<std::uint32_t>(ctx.inner_ids.size());
    ctx.inner_ids.emplace(p.get(), id);
    w.u32(id);
    save_packet(w, *p, ctx);
}

std::shared_ptr<const Packet> load_inner(sim::ckpt::Reader& r, PacketLoadCtx& ctx) {
    const std::uint32_t id = r.u32();
    if (id == kNullInner) return nullptr;
    if (id < ctx.inners.size()) {
        if (!ctx.inners[id]) {
            throw std::runtime_error("packet_io: cyclic inner-packet reference");
        }
        return ctx.inners[id];
    }
    if (id != ctx.inners.size()) {
        throw std::runtime_error("packet_io: inner-packet id out of sequence");
    }
    // Reserve the slot before recursing: a nested inner must take the next
    // dense id, exactly as save assigned them (pre-order).
    ctx.inners.push_back(nullptr);
    std::shared_ptr<Packet> pkt =
        ctx.pool ? ctx.pool->acquire() : std::make_shared<Packet>();
    *pkt = load_packet(r, ctx);
    ctx.inners[id] = pkt;
    return pkt;
}

}  // namespace cocoa::net
