#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "mac/medium.hpp"
#include "mac/radio.hpp"
#include "mobility/waypoint.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace cocoa::net {

/// Port-based demultiplexer: protocols register one handler per port, and
/// the node's radio feeds every delivered packet through here.
class ProtocolHost {
  public:
    using Handler = std::function<void(const Packet&, const RxInfo&)>;

    /// Registers the handler for `port`; a second registration for the same
    /// port throws std::logic_error (protocol wiring bug).
    void register_handler(Port port, Handler handler);

    void dispatch(const Packet& packet, const RxInfo& info) const;

  private:
    static constexpr std::size_t kNumPorts = 6;
    std::array<Handler, kNumPorts> handlers_;
};

/// One mobile robot: waypoint mobility + 802.11 radio + protocol demux.
/// Protocol logic (multicast, CoCoA agent) attaches from outside.
class Node {
  public:
    Node(sim::Simulator& sim, mac::Medium& medium, NodeId id,
         const mobility::WaypointConfig& mobility_config,
         const energy::PowerProfile& power_profile, mac::MacConfig mac_config = {},
         std::optional<geom::Vec2> start = std::nullopt);

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    NodeId id() const { return id_; }
    mobility::WaypointMobility& mobility() { return mobility_; }
    const mobility::WaypointMobility& mobility() const { return mobility_; }
    mac::Radio& radio() { return radio_; }
    const mac::Radio& radio() const { return radio_; }
    ProtocolHost& host() { return host_; }
    sim::Simulator& simulator() { return sim_; }

  private:
    sim::Simulator& sim_;
    NodeId id_;
    mobility::WaypointMobility mobility_;
    ProtocolHost host_;
    mac::Radio radio_;
};

/// Owns the medium and the team of nodes; the builder used by scenarios,
/// examples and tests.
class World {
  public:
    World(sim::Simulator& sim, const phy::Channel& channel, mac::MediumConfig config = {});

    /// Adds a robot with a fresh id; node ids are dense starting from 0.
    Node& add_node(const mobility::WaypointConfig& mobility_config,
                   const energy::PowerProfile& power_profile,
                   mac::MacConfig mac_config = {},
                   std::optional<geom::Vec2> start = std::nullopt);

    std::size_t size() const { return nodes_.size(); }
    Node& node(NodeId id) { return *nodes_.at(id); }
    const Node& node(NodeId id) const { return *nodes_.at(id); }
    const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }

    mac::Medium& medium() { return medium_; }
    const mac::Medium& medium() const { return medium_; }
    sim::Simulator& simulator() { return sim_; }

  private:
    sim::Simulator& sim_;
    mac::Medium medium_;
    std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace cocoa::net
