#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/pool.hpp"

namespace cocoa::sim::ckpt {
class Writer;
class Reader;
}  // namespace cocoa::sim::ckpt

namespace cocoa::net {

/// Shared inner-packet identity across one checkpoint blob.
///
/// Multicast forwarding copies McastDataPayload headers while *sharing* the
/// inner application packet (one pooled block, many shared_ptr holders). The
/// blob must preserve that aliasing — otherwise restore would materialise one
/// packet per reference and the packet-pool free list (and with it every
/// later kernel.pool.packet.* counter) would diverge from the straight run.
/// The contexts assign each distinct inner Packet a dense id on first
/// encounter; later references serialize as the id alone. One pair of
/// contexts spans the whole blob, so sharing is preserved across subsystems
/// (a frame in flight and an ODMRP forward queue entry can alias one SYNC).
struct PacketSaveCtx {
    std::unordered_map<const Packet*, std::uint32_t> inner_ids;
};

struct PacketLoadCtx {
    /// Pool inner packets are acquired from on restore (the medium's packet
    /// pool — the only allocator live code builds inner packets with). Null
    /// falls back to make_shared, for tests without a medium.
    sim::ObjectPool<Packet>* pool = nullptr;
    std::vector<std::shared_ptr<const Packet>> inners;
};

/// Serializes a by-value packet (radio tx queues, AirFrame::packet, parked
/// ODMRP rebroadcasts). Inner shared_ptr packets inside the payload dedup
/// through `ctx`.
void save_packet(sim::ckpt::Writer& w, const Packet& p, PacketSaveCtx& ctx);
Packet load_packet(sim::ckpt::Reader& r, PacketLoadCtx& ctx);

/// Serializes a shared inner-packet reference (possibly null).
void save_inner(sim::ckpt::Writer& w, const std::shared_ptr<const Packet>& p,
                PacketSaveCtx& ctx);
std::shared_ptr<const Packet> load_inner(sim::ckpt::Reader& r, PacketLoadCtx& ctx);

}  // namespace cocoa::net
