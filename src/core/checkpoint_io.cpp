#include "core/checkpoint_io.hpp"

#include "sim/checkpoint.hpp"

namespace cocoa::core {

namespace {

constexpr std::uint32_t kMarkScenarioConfig = 0x53434647u;  // "SCFG"
constexpr std::uint32_t kMarkSwarmConfig = 0x57434647u;     // "WCFG"

void save_odometry(sim::ckpt::Writer& w, const mobility::OdometryConfig& c) {
    w.f64(c.displacement_sigma);
    w.f64(c.angular_sigma_rad);
    w.f64(c.heading_drift_sigma_rad);
    w.f64(c.velocity_bias_sigma);
}

mobility::OdometryConfig load_odometry(sim::ckpt::Reader& r) {
    mobility::OdometryConfig c;
    c.displacement_sigma = r.f64();
    c.angular_sigma_rad = r.f64();
    c.heading_drift_sigma_rad = r.f64();
    c.velocity_bias_sigma = r.f64();
    return c;
}

void save_channel(sim::ckpt::Writer& w, const phy::ChannelConfig& c) {
    w.f64(c.tx_power_dbm);
    w.f64(c.ref_distance_m);
    w.f64(c.ref_loss_db);
    w.f64(c.exponent_near);
    w.f64(c.exponent_far);
    w.f64(c.breakpoint_m);
    w.f64(c.shadowing_sigma_near_db);
    w.f64(c.shadowing_sigma_far_db);
    w.f64(c.sigma_ramp_end_m);
    w.f64(c.fade_mean_far_db);
    w.f64(c.rx_sensitivity_dbm);
    w.f64(c.carrier_sense_dbm);
    w.f64(c.shadowing_clamp_sigmas);
}

phy::ChannelConfig load_channel(sim::ckpt::Reader& r) {
    phy::ChannelConfig c;
    c.tx_power_dbm = r.f64();
    c.ref_distance_m = r.f64();
    c.ref_loss_db = r.f64();
    c.exponent_near = r.f64();
    c.exponent_far = r.f64();
    c.breakpoint_m = r.f64();
    c.shadowing_sigma_near_db = r.f64();
    c.shadowing_sigma_far_db = r.f64();
    c.sigma_ramp_end_m = r.f64();
    c.fade_mean_far_db = r.f64();
    c.rx_sensitivity_dbm = r.f64();
    c.carrier_sense_dbm = r.f64();
    c.shadowing_clamp_sigmas = r.f64();
    return c;
}

void save_calibration(sim::ckpt::Writer& w, const phy::CalibrationConfig& c) {
    w.f64(c.min_distance_m);
    w.f64(c.max_distance_m);
    w.f64(c.distance_step_m);
    w.i32(c.samples_per_distance);
    w.i32(c.min_bin_samples);
    w.f64(c.skewness_threshold);
    w.f64(c.kurtosis_threshold);
    w.b(c.enforce_contiguous_regime);
}

phy::CalibrationConfig load_calibration(sim::ckpt::Reader& r) {
    phy::CalibrationConfig c;
    c.min_distance_m = r.f64();
    c.max_distance_m = r.f64();
    c.distance_step_m = r.f64();
    c.samples_per_distance = r.i32();
    c.min_bin_samples = r.i32();
    c.skewness_threshold = r.f64();
    c.kurtosis_threshold = r.f64();
    c.enforce_contiguous_regime = r.b();
    return c;
}

void save_power(sim::ckpt::Writer& w, const energy::PowerProfile& c) {
    w.f64(c.tx_mw);
    w.f64(c.rx_mw);
    w.f64(c.idle_mw);
    w.f64(c.sleep_mw);
    w.f64(c.off_mw);
    w.f64(c.transition_mj);
}

energy::PowerProfile load_power(sim::ckpt::Reader& r) {
    energy::PowerProfile c;
    c.tx_mw = r.f64();
    c.rx_mw = r.f64();
    c.idle_mw = r.f64();
    c.sleep_mw = r.f64();
    c.off_mw = r.f64();
    c.transition_mj = r.f64();
    return c;
}

void save_mac(sim::ckpt::Writer& w, const mac::MacConfig& c) {
    w.dur(c.slot);
    w.dur(c.difs);
    w.dur(c.plcp_preamble);
    w.i32(c.cw_min);
    w.f64(c.bitrate_bps);
}

mac::MacConfig load_mac(sim::ckpt::Reader& r) {
    mac::MacConfig c;
    c.slot = r.dur();
    c.difs = r.dur();
    c.plcp_preamble = r.dur();
    c.cw_min = r.i32();
    c.bitrate_bps = r.f64();
    return c;
}

void save_medium(sim::ckpt::Writer& w, const mac::MediumConfig& c) {
    w.f64(c.capture_margin_db);
    w.dur(c.cca_delay);
    w.b(c.interference_culling);
    w.u32(static_cast<std::uint32_t>(c.index));
    w.b(c.register_node_counters);
}

mac::MediumConfig load_medium(sim::ckpt::Reader& r) {
    mac::MediumConfig c;
    c.capture_margin_db = r.f64();
    c.cca_delay = r.dur();
    c.interference_culling = r.b();
    c.index = static_cast<mac::MediumIndex>(r.u32());
    c.register_node_counters = r.b();
    return c;
}

void save_multicast(sim::ckpt::Writer& w, const multicast::MulticastConfig& c) {
    w.u32(static_cast<std::uint32_t>(c.variant));
    w.dur(c.refresh_interval);
    w.b(c.auto_refresh);
    w.dur(c.fg_timeout);
    w.u8(c.max_hops);
    w.dur(c.reply_jitter_max);
    w.dur(c.data_jitter_max);
    w.dur(c.query_aggregation);
    w.i32(c.data_suppression_copies);
    w.f64(c.lifetime_range_m);
    w.u64(c.query_bytes);
    w.u64(c.reply_bytes);
    w.u64(c.data_header_bytes);
}

multicast::MulticastConfig load_multicast(sim::ckpt::Reader& r) {
    multicast::MulticastConfig c;
    c.variant = static_cast<multicast::Variant>(r.u32());
    c.refresh_interval = r.dur();
    c.auto_refresh = r.b();
    c.fg_timeout = r.dur();
    c.max_hops = r.u8();
    c.reply_jitter_max = r.dur();
    c.data_jitter_max = r.dur();
    c.query_aggregation = r.dur();
    c.data_suppression_copies = r.i32();
    c.lifetime_range_m = r.f64();
    c.query_bytes = r.u64();
    c.reply_bytes = r.u64();
    c.data_header_bytes = r.u64();
    return c;
}

}  // namespace

void save_config(sim::ckpt::Writer& w, const ScenarioConfig& c) {
    w.mark(kMarkScenarioConfig);
    w.u64(c.seed);
    w.f64(c.area_side_m);
    w.i32(c.num_robots);
    w.i32(c.num_anchors);
    w.f64(c.min_speed);
    w.f64(c.max_speed);
    w.dur(c.duration);
    w.u32(static_cast<std::uint32_t>(c.mode));
    w.u32(static_cast<std::uint32_t>(c.sync));
    w.b(c.sleep_coordination);
    w.dur(c.period);
    w.dur(c.window);
    w.i32(c.beacons_per_window);
    w.i32(c.min_beacons_for_fix);
    w.u32(static_cast<std::uint32_t>(c.technique));
    w.u32(static_cast<std::uint32_t>(c.estimator));
    w.f64(c.cell_m);
    w.f64(c.floor_fraction);
    w.f64(c.ekf_q_displacement_frac);
    w.f64(c.ekf_q_floor_var_per_s);
    w.f64(c.ekf_gate_sigmas);
    w.b(c.ekf_use_non_gaussian_bins);
    w.f64(c.ekf_min_range_sigma_m);
    w.f64(c.ekf_reject_inflation_var);
    w.f64(c.ekf_missed_window_var);
    w.i32(c.lincvx_min_beacons);
    w.f64(c.beacon_rssi_cutoff_dbm);
    w.b(c.use_non_gaussian_bins);
    save_odometry(w, c.odometry);
    save_channel(w, c.channel);
    save_calibration(w, c.calibration);
    save_power(w, c.power);
    save_mac(w, c.mac);
    save_medium(w, c.medium);
    save_multicast(w, c.multicast);
    w.dur(c.tick);
    w.dur(c.sample_interval);
    w.dur(c.wake_guard);
    w.dur(c.window_slack);
    w.f64(c.clock_skew_sigma_s);
    w.f64(c.sync_residual_sigma_s);
    w.f64(c.anchor_position_sigma_m);
    w.b(c.heading_correction_at_fix);
    w.b(c.initial_pose_known);
    w.b(c.blind_beaconing);
    w.f64(c.blind_beacon_max_spread_m);
    w.i32(c.sync_backups);
    w.i32(c.grid_update_threads);
}

ScenarioConfig load_scenario_config(sim::ckpt::Reader& r) {
    r.expect(kMarkScenarioConfig);
    ScenarioConfig c;
    c.seed = r.u64();
    c.area_side_m = r.f64();
    c.num_robots = r.i32();
    c.num_anchors = r.i32();
    c.min_speed = r.f64();
    c.max_speed = r.f64();
    c.duration = r.dur();
    c.mode = static_cast<LocalizationMode>(r.u32());
    c.sync = static_cast<SyncMode>(r.u32());
    c.sleep_coordination = r.b();
    c.period = r.dur();
    c.window = r.dur();
    c.beacons_per_window = r.i32();
    c.min_beacons_for_fix = r.i32();
    c.technique = static_cast<RfTechnique>(r.u32());
    c.estimator = static_cast<est::Backend>(r.u32());
    c.cell_m = r.f64();
    c.floor_fraction = r.f64();
    c.ekf_q_displacement_frac = r.f64();
    c.ekf_q_floor_var_per_s = r.f64();
    c.ekf_gate_sigmas = r.f64();
    c.ekf_use_non_gaussian_bins = r.b();
    c.ekf_min_range_sigma_m = r.f64();
    c.ekf_reject_inflation_var = r.f64();
    c.ekf_missed_window_var = r.f64();
    c.lincvx_min_beacons = r.i32();
    c.beacon_rssi_cutoff_dbm = r.f64();
    c.use_non_gaussian_bins = r.b();
    c.odometry = load_odometry(r);
    c.channel = load_channel(r);
    c.calibration = load_calibration(r);
    c.power = load_power(r);
    c.mac = load_mac(r);
    c.medium = load_medium(r);
    c.multicast = load_multicast(r);
    c.tick = r.dur();
    c.sample_interval = r.dur();
    c.wake_guard = r.dur();
    c.window_slack = r.dur();
    c.clock_skew_sigma_s = r.f64();
    c.sync_residual_sigma_s = r.f64();
    c.anchor_position_sigma_m = r.f64();
    c.heading_correction_at_fix = r.b();
    c.initial_pose_known = r.b();
    c.blind_beaconing = r.b();
    c.blind_beacon_max_spread_m = r.f64();
    c.sync_backups = r.i32();
    c.grid_update_threads = r.i32();
    return c;
}

void save_config(sim::ckpt::Writer& w, const SwarmConfig& c) {
    w.mark(kMarkSwarmConfig);
    w.i32(c.nodes);
    w.u64(c.seed);
    w.dur(c.duration);
    w.dur(c.beacon_period);
    w.dur(c.awake_window);
    w.dur(c.mobility_tick);
    w.f64(c.density_per_m2);
    w.f64(c.min_speed);
    w.f64(c.max_speed);
    w.dur(c.min_pause);
    w.dur(c.max_pause);
    w.u64(c.beacon_bytes);
    w.i32(c.mobility_threads);
    w.b(c.collect_final_positions);
    save_channel(w, c.channel);
    save_medium(w, c.medium);
    save_power(w, c.power);
}

SwarmConfig load_swarm_config(sim::ckpt::Reader& r) {
    r.expect(kMarkSwarmConfig);
    SwarmConfig c;
    c.nodes = r.i32();
    c.seed = r.u64();
    c.duration = r.dur();
    c.beacon_period = r.dur();
    c.awake_window = r.dur();
    c.mobility_tick = r.dur();
    c.density_per_m2 = r.f64();
    c.min_speed = r.f64();
    c.max_speed = r.f64();
    c.min_pause = r.dur();
    c.max_pause = r.dur();
    c.beacon_bytes = r.u64();
    c.mobility_threads = r.i32();
    c.collect_final_positions = r.b();
    c.channel = load_channel(r);
    c.medium = load_medium(r);
    c.power = load_power(r);
    return c;
}

}  // namespace cocoa::core
