#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "energy/energy.hpp"
#include "geom/vec2.hpp"
#include "mac/medium.hpp"
#include "net/node.hpp"
#include "phy/channel.hpp"
#include "sim/thread_pool.hpp"
#include "sim/time.hpp"

namespace cocoa::sim::ckpt {
class Writer;
class Reader;
class CallbackRegistry;
}  // namespace cocoa::sim::ckpt

namespace cocoa::core {

/// Large-N scenario family (`cocoa_sim --nodes`): a city-scale swarm of
/// duty-cycled beaconing radios at the paper's fig7 node density, exercising
/// the MAC/medium layers — CSMA, frame fanout, carrier sense, incremental
/// spatial-index migrations — without the per-node localization machinery
/// (whose grids would not fit 100k nodes and whose cost would mask the
/// medium's). The deployment area grows as sqrt(nodes) so density (and thus
/// per-frame neighbourhood size) stays constant: a medium whose fanout is
/// O(neighbors) runs this family in near-linear time, which is exactly what
/// the CI scaling job asserts.
struct SwarmConfig {
    int nodes = 1000;
    std::uint64_t seed = 7;
    sim::Duration duration = sim::Duration::seconds(20.0);
    /// Every node beacons once per period, at a deterministic per-node phase
    /// spread uniformly across the period (sparse duty cycling: the air is
    /// never globally synchronized).
    sim::Duration beacon_period = sim::Duration::seconds(1.0);
    /// How long a node stays awake around its beacon before going back to
    /// sleep (duty cycle = awake_window / beacon_period).
    sim::Duration awake_window = sim::Duration::millis(50.0);
    /// Random-waypoint positions advance (and the spatial index migrates)
    /// once per tick for every node.
    sim::Duration mobility_tick = sim::Duration::seconds(1.0);
    /// Paper density: fig7's 50 robots on a 200 m square.
    double density_per_m2 = 50.0 / (200.0 * 200.0);
    double min_speed = 0.5;   ///< m/s
    double max_speed = 2.0;   ///< m/s
    /// Waypoint "task" pause at each destination (zero = continuous motion,
    /// the default). Resting robots produce zero-forward increments, which
    /// the mobility ticker skips entirely — a resting robot costs no
    /// spatial-index traffic.
    sim::Duration min_pause = sim::Duration::zero();
    sim::Duration max_pause = sim::Duration::zero();
    std::size_t beacon_bytes = 24;
    /// Workers for the sharded mobility tick (`cocoa_sim --swarm-threads`):
    /// 0 = inline (no pool), -1 = all hardware threads, N = N workers.
    /// Workers integrate disjoint node ranges' positions concurrently; the
    /// spatial-index migrations are folded afterwards in ascending node
    /// order, so output is byte-identical at any value — the same
    /// resolution-point pattern as ScenarioConfig::grid_update_threads.
    int mobility_threads = 0;
    /// Record every node's final position in SwarmResult::final_positions
    /// (identity tests compare them across thread counts and backends).
    bool collect_final_positions = false;
    /// Low-power swarm radios: -5 dBm tx keeps the influence radius ~127 m
    /// (~60 sense-range neighbours at fig7 density) instead of the paper
    /// rig's 1.3 km, so "O(neighbors)" is a local quantity and the family
    /// scales linearly in node count at constant density.
    phy::ChannelConfig channel{.tx_power_dbm = -5.0};
    /// register_node_counters is forced off by run_swarm (a 100k-node
    /// registry would hold ~1M names); index backend and culling flow
    /// through so tests can pit hierarchical against flat in-process.
    mac::MediumConfig medium;
    energy::PowerProfile power = energy::PowerProfile::wavelan();

    /// Side of the square deployment area for the configured density.
    double area_side_m() const;
    void validate() const;
};

struct SwarmResult {
    int nodes = 0;
    double area_side_m = 0.0;
    double sim_seconds = 0.0;
    std::uint64_t executed_events = 0;
    mac::Medium::Stats medium_stats;
    mac::spatial::CellTreeStats index_stats;
    mac::Medium::FlatIndexStats flat_index_stats;
    mac::spatial::RadiusCacheStats radius_cache_stats;
    std::uint64_t frames_delivered = 0;  ///< rx_delivered summed over nodes
    /// Filled only when SwarmConfig::collect_final_positions is set.
    std::vector<geom::Vec2> final_positions;
};

/// The swarm engine behind run_swarm(), held open so callers can run it
/// piecemeal and checkpoint it mid-flight. Construction builds the world and
/// schedules every node's duty cycle plus the global mobility tick; run()
/// advances to the configured duration. Deterministic for a given config
/// (byte-identical across medium backends, culling settings and
/// mobility-thread counts, like every other scenario in the repo).
class Swarm {
  public:
    explicit Swarm(const SwarmConfig& config);

    Swarm(const Swarm&) = delete;
    Swarm& operator=(const Swarm&) = delete;

    void run();
    void run_until(sim::TimePoint t);
    SwarmResult result() const;

    const SwarmConfig& config() const { return config_; }
    sim::Simulator& simulator() { return sim_; }
    net::World& world() { return *world_; }

    /// Checkpoint: mobility, radios, medium (frames in flight, pool warmth)
    /// and the kernel's pending events. The duty-cycle and mobility-tick
    /// callbacks themselves carry no state beyond their tags, so restore
    /// rebuilds them wholesale. Call only between events.
    void save_state(sim::ckpt::Writer& w) const;
    void load_state(sim::ckpt::Reader& r);

  private:
    void beacon(int i);
    void doze(int i);
    void on_mobility_tick();
    void register_rebuilders(sim::ckpt::CallbackRegistry& reg);

    SwarmConfig config_;
    sim::Simulator sim_;
    phy::Channel channel_;
    std::unique_ptr<net::World> world_;
    std::unique_ptr<sim::ThreadPool> mobility_pool_;
    std::vector<std::uint8_t> moved_flags_;
};

/// Runs one swarm scenario to completion.
SwarmResult run_swarm(const SwarmConfig& config);

}  // namespace cocoa::core
