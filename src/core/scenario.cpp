#include "core/scenario.hpp"

#include <ostream>
#include <stdexcept>
#include <utility>

#include "net/packet_io.hpp"
#include "sim/checkpoint.hpp"
#include "sim/event_tag.hpp"

namespace cocoa::core {

void ScenarioConfig::validate() const {
    if (num_robots < 1) throw std::invalid_argument("ScenarioConfig: num_robots >= 1");
    if (num_anchors < 0 || num_anchors > num_robots) {
        throw std::invalid_argument("ScenarioConfig: num_anchors in [0, num_robots]");
    }
    if (mode != LocalizationMode::OdometryOnly && num_anchors < 1) {
        throw std::invalid_argument("ScenarioConfig: RF modes need at least one anchor");
    }
    if (area_side_m <= 0.0) throw std::invalid_argument("ScenarioConfig: positive area");
    if (window <= sim::Duration::zero() || window >= period) {
        throw std::invalid_argument("ScenarioConfig: need 0 < window < period");
    }
    if (duration <= sim::Duration::zero() || tick <= sim::Duration::zero() ||
        sample_interval <= sim::Duration::zero()) {
        throw std::invalid_argument("ScenarioConfig: positive durations");
    }
    if (beacons_per_window < 1 || min_beacons_for_fix < 1) {
        throw std::invalid_argument("ScenarioConfig: beacon counts >= 1");
    }
    if (min_speed <= 0.0 || max_speed < min_speed) {
        throw std::invalid_argument("ScenarioConfig: need 0 < min_speed <= max_speed");
    }
    if (estimator != est::Backend::Grid && mode != LocalizationMode::Combined) {
        throw std::invalid_argument(
            "ScenarioConfig: non-grid estimator backends require Combined mode");
    }
}

Scenario::Scenario(const ScenarioConfig& config,
                   std::shared_ptr<const phy::PdfTable> shared_table)
    : config_(config),
      sim_(config.seed),
      channel_(config.channel) {
    config_.validate();

    // Offline calibration phase (§2.2): build the PDF Table once; every robot
    // stores a copy (here: shares an immutable one). A caller that already
    // owns the table for this (channel, calibration, seed) passes it in.
    if (shared_table != nullptr) {
        table_ = std::move(shared_table);
    } else {
        table_ = std::make_shared<const phy::PdfTable>(phy::PdfTable::calibrate(
            channel_, config_.calibration, sim_.rng().stream("calibration")));
    }

    world_ = std::make_unique<net::World>(sim_, channel_, config_.medium);

    mobility::WaypointConfig mobility_config;
    mobility_config.area = geom::Rect::square(config_.area_side_m);
    mobility_config.min_speed = config_.min_speed;
    mobility_config.max_speed = config_.max_speed;

    for (int i = 0; i < config_.num_robots; ++i) {
        world_->add_node(mobility_config, config_.power, config_.mac);
    }

    const bool use_mrmm = config_.sync == SyncMode::Mrmm &&
                          config_.mode != LocalizationMode::OdometryOnly;
    if (use_mrmm) {
        multicast::MulticastConfig mc = config_.multicast;
        mc.auto_refresh = false;  // CoCoA drives refreshes at period starts
        mcast_.emplace(*world_, mc);
    }

    GridConfig grid;
    grid.area = mobility_config.area;
    grid.cell_m = config_.cell_m;
    grid.floor_fraction = config_.floor_fraction;

    if (config_.grid_update_threads != 0) {
        fix_pool_ = std::make_unique<sim::ThreadPool>(config_.grid_update_threads);
    }

    for (int i = 0; i < config_.num_robots; ++i) {
        AgentConfig ac;
        ac.role = is_anchor(static_cast<net::NodeId>(i)) ? Role::Anchor : Role::Blind;
        ac.mode = config_.mode;
        ac.sync = use_mrmm ? SyncMode::Mrmm : SyncMode::PerfectClock;
        ac.period = config_.period;
        ac.window = config_.window;
        ac.beacons_per_window = config_.beacons_per_window;
        ac.min_beacons_for_fix = config_.min_beacons_for_fix;
        ac.grid = grid;
        ac.odometry = config_.odometry;
        ac.technique = config_.technique;
        ac.estimator = config_.estimator;
        ac.ekf_q_displacement_frac = config_.ekf_q_displacement_frac;
        ac.ekf_q_floor_var_per_s = config_.ekf_q_floor_var_per_s;
        ac.ekf_gate_sigmas = config_.ekf_gate_sigmas;
        ac.ekf_use_non_gaussian_bins = config_.ekf_use_non_gaussian_bins;
        ac.ekf_min_range_sigma_m = config_.ekf_min_range_sigma_m;
        ac.ekf_reject_inflation_var = config_.ekf_reject_inflation_var;
        ac.ekf_missed_window_var = config_.ekf_missed_window_var;
        ac.lincvx_min_beacons = config_.lincvx_min_beacons;
        ac.beacon_rssi_cutoff_dbm = config_.beacon_rssi_cutoff_dbm;
        ac.use_non_gaussian_bins = config_.use_non_gaussian_bins;
        ac.sleep_coordination = config_.sleep_coordination;
        ac.wake_guard = config_.wake_guard;
        ac.window_slack = config_.window_slack;
        ac.clock_skew_sigma_s = config_.clock_skew_sigma_s;
        ac.sync_residual_sigma_s = config_.sync_residual_sigma_s;
        ac.anchor_position_sigma_m = config_.anchor_position_sigma_m;
        ac.heading_correction_at_fix = config_.heading_correction_at_fix;
        ac.blind_beaconing = config_.blind_beaconing;
        ac.blind_beacon_max_spread_m = config_.blind_beacon_max_spread_m;
        ac.initial_pose_known =
            config_.initial_pose_known || config_.mode == LocalizationMode::OdometryOnly;
        ac.fix_pool = fix_pool_.get();

        multicast::MulticastNode* mcast_node =
            use_mrmm ? &mcast_->at(static_cast<net::NodeId>(i)) : nullptr;
        const bool is_sync_robot = use_mrmm && i == 0;
        if (use_mrmm) {
            if (i == 0) {
                ac.sync_rank = 0;
            } else if (i <= config_.sync_backups) {
                ac.sync_rank = i;
            }
        }
        agents_.push_back(std::make_unique<CocoaAgent>(
            world_->node(static_cast<net::NodeId>(i)), ac, table_, mcast_node,
            is_sync_robot));
    }

    node_error_.resize(static_cast<std::size_t>(config_.num_robots));

    for (auto& agent : agents_) agent->start();

    // Tick loop (mobility/odometry granularity) and metric sampling. The tick
    // event is scheduled first so that at coinciding times motion is advanced
    // before errors are read.
    sim_.schedule_in(config_.tick, [this] { on_tick(); },
                     sim::make_tag(sim::EventKind::kScenarioTick));
    sim_.schedule_in(config_.sample_interval, [this] { on_sample(); },
                     sim::make_tag(sim::EventKind::kScenarioSample));
}

multicast::MulticastNode* Scenario::multicast_node(net::NodeId id) {
    return mcast_.has_value() ? &mcast_->at(id) : nullptr;
}

bool Scenario::is_anchor(net::NodeId id) const {
    if (config_.mode == LocalizationMode::OdometryOnly) return false;
    return id < static_cast<net::NodeId>(config_.num_anchors);
}

void Scenario::on_tick() {
    for (auto& agent : agents_) agent->tick();
    sim_.schedule_in(config_.tick, [this] { on_tick(); },
                     sim::make_tag(sim::EventKind::kScenarioTick));
}

void Scenario::on_sample() {
    metrics::RunningStat blind_errors;
    for (auto& agent : agents_) {
        agent->tick();
        if (agent->role() != Role::Blind) continue;
        const double err = agent->error();
        blind_errors.add(err);
        node_error_[agent->id()].push(sim_.now(), err);
    }
    if (!blind_errors.empty()) {
        avg_error_.push(sim_.now(), blind_errors.mean());
    }
    sim_.schedule_in(config_.sample_interval, [this] { on_sample(); },
                     sim::make_tag(sim::EventKind::kScenarioSample));
}

void Scenario::enable_position_trace(sim::Duration interval) {
    if (interval <= sim::Duration::zero()) {
        throw std::invalid_argument("Scenario: trace interval must be positive");
    }
    const bool was_enabled = trace_interval_ > sim::Duration::zero();
    trace_interval_ = interval;
    if (!was_enabled) {
        sim_.schedule_in(trace_interval_, [this] { on_trace(); },
                         sim::make_tag(sim::EventKind::kScenarioTrace));
    }
}

void Scenario::on_trace() {
    for (auto& agent : agents_) {
        agent->tick();
        trace_.push_back(
            {sim_.now(), agent->id(), agent->true_position(), agent->estimate()});
    }
    sim_.schedule_in(trace_interval_, [this] { on_trace(); },
                     sim::make_tag(sim::EventKind::kScenarioTrace));
}

void Scenario::write_position_trace_csv(std::ostream& os) const {
    os << "t_s,node,role,true_x,true_y,est_x,est_y,error_m\n";
    for (const PositionTraceRow& row : trace_) {
        os << row.time.to_seconds() << ',' << row.node << ','
           << (is_anchor(row.node) ? "anchor" : "blind") << ',' << row.truth.x << ','
           << row.truth.y << ',' << row.estimate.x << ',' << row.estimate.y << ','
           << geom::distance(row.truth, row.estimate) << '\n';
    }
}

obs::Obs& Scenario::obs() { return world_->medium().obs(); }
const obs::Obs& Scenario::obs() const { return world_->medium().obs(); }

void Scenario::run() { run_until(sim::TimePoint::origin() + config_.duration); }

void Scenario::run_until(sim::TimePoint t) {
    obs::ProfileScope scope("scenario.run");
    sim_.run_until(t);
}

ScenarioResult Scenario::result() const {
    ScenarioResult r;
    r.avg_error = avg_error_;
    r.node_error = node_error_;

    for (const auto& node : world_->nodes()) {
        // Settle closes each meter's books through now; the radio stays usable.
        node->radio().settle_energy();
        const energy::EnergyMeter& m = node->radio().meter();
        r.team_energy.tx_mj += m.state_mj(energy::RadioState::Tx);
        r.team_energy.rx_mj += m.state_mj(energy::RadioState::Rx);
        r.team_energy.idle_mj += m.state_mj(energy::RadioState::Idle);
        r.team_energy.sleep_mj += m.state_mj(energy::RadioState::Sleep);
        r.team_energy.transitions_mj += m.transition_mj();
    }

    r.medium_stats = world_->medium().stats();
    if (mcast_.has_value()) {
        r.multicast_stats = mcast_->total_stats();
    }
    for (const auto& agent : agents_) {
        const auto& s = agent->stats();
        r.agent_totals.beacons_sent += s.beacons_sent;
        r.agent_totals.blind_beacons_sent += s.blind_beacons_sent;
        r.agent_totals.beacons_received += s.beacons_received;
        r.agent_totals.fixes += s.fixes;
        r.agent_totals.windows_without_fix += s.windows_without_fix;
        r.agent_totals.syncs_received += s.syncs_received;
        r.agent_totals.sync_takeovers += s.sync_takeovers;
        const auto& ls = agent->localizer_stats();
        r.localizer_totals.fixes += ls.fixes;
        r.localizer_totals.rejected_too_few += ls.rejected_too_few;
        r.localizer_totals.beacons_without_bin += ls.beacons_without_bin;
        r.localizer_totals.beacons_non_gaussian += ls.beacons_non_gaussian;
    }
    r.executed_events = sim_.executed_events();
    r.counters = world_->medium().obs().counters.snapshot();
    return r;
}

namespace {
constexpr std::uint32_t kMarkScenario = 0x53434e4fu;  // "SCNO"
constexpr std::uint32_t kMarkScenarioEnd = 0x4f4e4353u;
}  // namespace

void Scenario::save_state(sim::ckpt::Writer& w) const {
    w.mark(kMarkScenario);
    // One save context spans every subsystem: inner packets alias across
    // medium frames, radio queues and ODMRP parked transmissions, and the
    // blob must preserve that sharing (see net/packet_io.hpp).
    net::PacketSaveCtx pkts;
    for (const auto& node : world_->nodes()) {
        node->mobility().save(w);
    }
    // Medium before radios: Radio::load_state re-links locked frames through
    // Medium::restored_frame, so the medium must already be loaded — save
    // writes in load order.
    world_->medium().save_state(w, pkts);
    for (const auto& node : world_->nodes()) {
        node->radio().save_state(w, pkts);
    }
    w.b(mcast_.has_value());
    if (mcast_.has_value()) {
        for (std::size_t i = 0; i < mcast_->size(); ++i) {
            mcast_->at(static_cast<net::NodeId>(i)).save_state(w, pkts);
        }
    }
    for (const auto& agent : agents_) {
        agent->save_state(w);
    }
    avg_error_.save(w);
    w.u64(node_error_.size());
    for (const metrics::TimeSeries& series : node_error_) series.save(w);
    w.u64(trace_.size());
    for (const PositionTraceRow& row : trace_) {
        w.time(row.time);
        w.u32(row.node);
        w.f64(row.truth.x);
        w.f64(row.truth.y);
        w.f64(row.estimate.x);
        w.f64(row.estimate.y);
    }
    w.dur(trace_interval_);
    sim_.save_kernel(w);
    // Pool warmth last: the loads above acquire pooled packets themselves,
    // and the warmth refill must top up the free lists after all of them.
    world_->medium().save_pool_warmth(w);
    w.mark(kMarkScenarioEnd);
}

void Scenario::register_rebuilders(sim::ckpt::CallbackRegistry& reg) {
    reg.add(sim::EventKind::kScenarioTick, [this](const sim::EventTag&) {
        return sim::InplaceCallback([this] { on_tick(); });
    });
    reg.add(sim::EventKind::kScenarioSample, [this](const sim::EventTag&) {
        return sim::InplaceCallback([this] { on_sample(); });
    });
    reg.add(sim::EventKind::kScenarioTrace, [this](const sim::EventTag&) {
        return sim::InplaceCallback([this] { on_trace(); });
    });
    const sim::ckpt::CallbackRegistry::Make agent_make =
        [this](const sim::EventTag& tag) {
            return agents_.at(tag.node)->rebuild_event(tag);
        };
    reg.add(sim::EventKind::kAgentWake, agent_make);
    reg.add(sim::EventKind::kAgentSyncSettle, agent_make);
    reg.add(sim::EventKind::kAgentBeacon, agent_make);
    reg.add(sim::EventKind::kAgentWindowEnd, agent_make);
    if (mcast_.has_value()) {
        const sim::ckpt::CallbackRegistry::Make mcast_make =
            [this](const sim::EventTag& tag) {
                return mcast_->at(tag.node).rebuild_event(tag);
            };
        const sim::ckpt::CallbackRegistry::Placed mcast_placed =
            [this](const sim::EventTag& tag, sim::EventId id) {
                mcast_->at(tag.node).event_placed(tag, id);
            };
        reg.add(sim::EventKind::kMcastRefresh, mcast_make, mcast_placed);
        reg.add(sim::EventKind::kMcastDecision, mcast_make, mcast_placed);
        reg.add(sim::EventKind::kMcastJitteredTx, mcast_make, mcast_placed);
    }
    world_->medium().register_rebuilders(reg);
}

void Scenario::load_state(
    sim::ckpt::Reader& r,
    const std::function<void(sim::ckpt::CallbackRegistry&)>& extra_rebuilders) {
    // Construction-time events (first tick/sample, agent period zero) are
    // superseded by the blob's pending-event list.
    sim_.clear_pending();
    r.expect(kMarkScenario);
    net::PacketLoadCtx pkts;
    pkts.pool = &world_->medium().packet_pool();
    for (const auto& node : world_->nodes()) {
        node->mobility().load(r);
    }
    world_->medium().load_state(r, pkts);
    for (const auto& node : world_->nodes()) {
        node->radio().load_state(r, pkts);
    }
    const bool has_mcast = r.b();
    if (has_mcast != mcast_.has_value()) {
        throw std::runtime_error("Scenario::load_state: multicast presence mismatch");
    }
    if (mcast_.has_value()) {
        for (std::size_t i = 0; i < mcast_->size(); ++i) {
            mcast_->at(static_cast<net::NodeId>(i)).load_state(r, pkts);
        }
    }
    for (auto& agent : agents_) {
        agent->load_state(r);
    }
    avg_error_.load(r);
    node_error_.resize(r.u64());
    for (metrics::TimeSeries& series : node_error_) series.load(r);
    trace_.clear();
    for (std::uint64_t n = r.u64(); n > 0; --n) {
        PositionTraceRow row;
        row.time = r.time();
        row.node = r.u32();
        row.truth.x = r.f64();
        row.truth.y = r.f64();
        row.estimate.x = r.f64();
        row.estimate.y = r.f64();
        trace_.push_back(row);
    }
    trace_interval_ = r.dur();
    sim::ckpt::CallbackRegistry reg;
    register_rebuilders(reg);
    if (extra_rebuilders) extra_rebuilders(reg);
    sim_.load_kernel(r, reg);
    world_->medium().load_pool_warmth(r);
    world_->medium().finish_restore();
    r.expect(kMarkScenarioEnd);
}

std::vector<double> ScenarioResult::errors_at(sim::TimePoint t) const {
    std::vector<double> out;
    for (const auto& series : node_error) {
        if (series.empty()) continue;  // anchor
        out.push_back(series.value_at(t));
    }
    return out;
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
    Scenario scenario(config);
    scenario.run();
    return scenario.result();
}

}  // namespace cocoa::core
