// Blocked grid-kernel implementation, instantiated once per ISA.
//
// Each translation unit defines COCOA_GRIDK_ISA_NS (baseline / avx2 / avx512)
// and includes this header; the only difference between instantiations is the
// -m ISA flags the TU is compiled with. The code is written entirely in
// GCC/Clang vector extensions over a fixed 8-lane block, so:
//
//  - the compiler lowers each whole-block op to the widest vectors the TU's
//    ISA allows (1x zmm on AVX-512, 2x ymm on AVX2, 4x xmm / NEON pairs on
//    the baseline) — the *values* are the same elementwise IEEE operations
//    in every case;
//  - per-lane accumulators and the fixed-order lane reduction make the
//    summation order part of the algorithm, not of the ISA;
//  - Hermite-table lookups are per-lane scalar loads (indices are exact, so
//    gathers vs scalar loads cannot change results);
//  - blocks touching the kernel's certified-exact region (or straddling the
//    lower band edge) fall back to scalar RadialKernel::eval_q per lane,
//    which is the same libm sqrt/exp everywhere.
//
// Together with -ffp-contract=off on every instantiation (so no ISA gains
// FMA contractions another lacks), this makes all instantiations produce
// byte-identical grids — the property the SIMD-on/off CI gate diffs.
//
// This header must only be included by the grid_kernels*.cpp TUs.

#include <cstdint>
#include <cstring>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "core/grid_kernels.hpp"
#include "core/radial_kernel.hpp"
#include "metrics/sum.hpp"

// Vectors wider than the baseline ISA are passed via memory; that is fine
// (everything here inlines into the two entry points) but gcc notes the ABI
// difference per function otherwise.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

namespace cocoa::core::gridk {
namespace COCOA_GRIDK_ISA_NS {

namespace {

typedef double vd __attribute__((vector_size(kBlock * sizeof(double))));
typedef std::int64_t vm __attribute__((vector_size(kBlock * sizeof(std::int64_t))));
typedef std::int32_t vi __attribute__((vector_size(kBlock * sizeof(std::int32_t))));

inline vd load(const double* p) {
    vd v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline void store(double* p, vd v) { std::memcpy(p, &v, sizeof(v)); }

inline vd bcast(double x) { return vd{x, x, x, x, x, x, x, x}; }

/// Per-lane compensated accumulator using branch-free TwoSum (Knuth): the
/// error term is exact for any operand magnitudes, so like Neumaier the
/// accumulated drift is independent of cell count — at six vector ops per
/// update instead of eleven, and with no selects. Every instantiation runs
/// this exact expression sequence, so lane values are ISA-independent.
struct KahanLanes {
    vd sum = bcast(0.0);
    vd comp = bcast(0.0);

    inline void add(vd x) {
        const vd t = sum + x;
        const vd z = t - sum;
        comp = comp + ((sum - (t - z)) + (x - z));
        sum = t;
    }
};

/// apply_and_sum rotates over this many independent KahanLanes accumulators
/// (block index modulo 4): the Neumaier update is a ~4-add dependency chain,
/// so a single accumulator serializes every block on its latency. Like
/// kBlock, this is part of the fixed reduction tree, not a tuning knob.
inline constexpr std::size_t kSumStripes = 4;

/// Fixed-order reduction of the striped accumulators: all sums (stripe-major,
/// lanes 0..7 within each), then all comps, folded through one scalar
/// Neumaier accumulator. This order is part of the deterministic contract.
inline double reduce(const KahanLanes (&acc)[kSumStripes]) {
    metrics::KahanSum k;
    for (std::size_t a = 0; a < kSumStripes; ++a)
        for (std::size_t l = 0; l < kBlock; ++l) k.add(acc[a].sum[l]);
    for (std::size_t a = 0; a < kSumStripes; ++a)
        for (std::size_t l = 0; l < kBlock; ++l) k.add(acc[a].comp[l]);
    return k.value();
}

/// Fixed-order lane reduction of a plain lane accumulator.
inline double reduce_lanes(vd v) {
    metrics::KahanSum k;
    for (std::size_t l = 0; l < kBlock; ++l) k.add(v[l]);
    return k.value();
}

}  // namespace

double apply_and_sum(const ApplyPlan& p, const RadialKernel& k) {
    const double q_lo = k.q_lo();
    const double q_hi = k.q_hi();
    const double q_exact = k.q_exact();
    const double fl = k.floor();
    const vd v_q_lo = bcast(q_lo);
    const vd v_q_hi = bcast(q_hi);
    const vd v_inv_dq = bcast(k.inv_dq());
    const vd v_floor = bcast(fl);
    const std::int32_t imax = static_cast<std::int32_t>(k.interval_count()) - 1;
    const vi v_imax = {imax, imax, imax, imax, imax, imax, imax, imax};
    const double* value = k.values();
    const double* slope = k.slopes();

    const std::size_t blocks = p.stride / kBlock;
    KahanLanes acc[kSumStripes];
    for (std::size_t iy = 0; iy < p.ny; ++iy) {
        const double qy = p.row_qy[iy];
        const vd v_qy = bcast(qy);
        double* row = p.cells + iy * p.stride;
        for (std::size_t b = 0; b < blocks; ++b) {
            double* cp = row + b * kBlock;
            vd c = load(cp);
            // Block classification from the precomputed per-block colq range;
            // scalar double compares, so every ISA takes the same branch.
            const double q_min = qy + p.blk_qmin[b];
            const double q_max = qy + p.blk_qmax[b];
            if (q_max < q_lo || q_min >= q_hi) {
                // Whole block outside the kernel band: floor everywhere. For
                // ring constraints this is most of the grid.
                c = c * v_floor;
            } else if (q_min >= q_exact) {
                // Table (or upper-floor) territory: vector Hermite,
                // lane-exact mirror of RadialKernel::eval_q. q_min >= q_exact
                // implies q_min >= q_lo, so only the upper band edge can cut
                // through the block; interior blocks — the common case — skip
                // the masking entirely.
                const vd q = v_qy + load(&p.colq[b * kBlock]);
                vd q_eff = q;
                vm in_band{};
                const bool straddles = q_max >= q_hi;
                if (straddles) {
                    in_band = q < v_q_hi;
                    // Out-of-band lanes are clamped to q_lo before the index
                    // math so their (discarded) table access stays in range.
                    q_eff = in_band ? q : v_q_lo;
                }
                const vd s = (q_eff - v_q_lo) * v_inv_dq;
                vi i = __builtin_convertvector(s, vi);
                i = i > v_imax ? v_imax : i;
                const vd t = s - __builtin_convertvector(i, vd);
                const vd t2 = t * t;
                const vd t3 = t2 * t;
                const vd h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
                const vd h10 = t3 - 2.0 * t2 + t;
                const vd h01 = 3.0 * t2 - 2.0 * t3;
                const vd h11 = t3 - t2;
                // Table loads: hardware gathers where the ISA has them,
                // per-lane scalar loads staged through aligned buffers
                // otherwise. Both read exactly the same doubles, so this is
                // the one place the instantiations may differ in instructions
                // without differing in results.
#if defined(__AVX512F__)
                __m256i vidx;
                std::memcpy(&vidx, &i, sizeof(vidx));
                vd v0, s0, v1, s1;
                {
                    // The all-lanes masked form: the plain gather's
                    // undefined-source pass-through trips gcc's
                    // maybe-uninitialized analysis under -Werror.
                    const __m512d z = _mm512_setzero_pd();
                    const __m512d g0 = _mm512_mask_i32gather_pd(z, 0xff, vidx, value, 8);
                    const __m512d g1 = _mm512_mask_i32gather_pd(z, 0xff, vidx, slope, 8);
                    const __m512d g2 = _mm512_mask_i32gather_pd(z, 0xff, vidx, value + 1, 8);
                    const __m512d g3 = _mm512_mask_i32gather_pd(z, 0xff, vidx, slope + 1, 8);
                    std::memcpy(&v0, &g0, sizeof(v0));
                    std::memcpy(&s0, &g1, sizeof(s0));
                    std::memcpy(&v1, &g2, sizeof(v1));
                    std::memcpy(&s1, &g3, sizeof(s1));
                }
#else
                alignas(64) std::int32_t idx[kBlock];
                std::memcpy(idx, &i, sizeof(i));
                alignas(64) double b_v0[kBlock], b_s0[kBlock];
                alignas(64) double b_v1[kBlock], b_s1[kBlock];
                for (std::size_t l = 0; l < kBlock; ++l) {
                    const auto j = static_cast<std::size_t>(idx[l]);
                    b_v0[l] = value[j];
                    b_s0[l] = slope[j];
                    b_v1[l] = value[j + 1];
                    b_s1[l] = slope[j + 1];
                }
                const vd v0 = load(b_v0), s0 = load(b_s0);
                const vd v1 = load(b_v1), s1 = load(b_s1);
#endif
                vd r = h00 * v0 + h10 * s0 + h01 * v1 + h11 * s1 + fl;
                if (straddles) r = in_band ? r : v_floor;
                c = c * r;
            } else {
                // Block touches the certified-exact region (or straddles the
                // lower band edge): scalar eval_q per lane — identical values
                // on every ISA, and exactly what the table path would yield
                // for its non-exact lanes.
                for (std::size_t l = 0; l < kBlock; ++l) {
                    c[l] = c[l] * k.eval_q(qy + p.colq[b * kBlock + l]);
                }
            }
            store(cp, c);
            acc[b % kSumStripes].add(c);
        }
    }
    return reduce(acc);
}

Moments scale_and_moments(const ScalePlan& p) {
    const vd sc = bcast(p.scale);
    const std::size_t blocks = p.stride / kBlock;
    // Five whole-grid lane accumulators, reduced once at the end. These are
    // plain (uncompensated) lane sums: the moments only feed the posterior
    // mean/spread, where even a million-cell grid leaves the relative error
    // around 1e-11 — far inside every consumer's tolerance — while the
    // normalization total (the number that must hold mass drift at 1e-12)
    // comes from apply_and_sum's compensated pass. Five independent add
    // chains also keep this pass throughput-bound instead of serializing on
    // a Neumaier update's latency.
    vd mass = bcast(0.0), sx = bcast(0.0), sy = bcast(0.0);
    vd sxx = bcast(0.0), syy = bcast(0.0);
    for (std::size_t iy = 0; iy < p.ny; ++iy) {
        double* row = p.cells + iy * p.stride;
        const vd v_y = bcast(p.row_y[iy]);
        const vd v_y2 = bcast(p.row_y2[iy]);
        for (std::size_t b = 0; b < blocks; ++b) {
            double* cp = row + b * kBlock;
            const vd c = load(cp) * sc;
            store(cp, c);
            mass = mass + c;
            sx = sx + c * load(&p.colx[b * kBlock]);
            sy = sy + c * v_y;
            sxx = sxx + c * load(&p.colx2[b * kBlock]);
            syy = syy + c * v_y2;
        }
    }
    return {reduce_lanes(mass), reduce_lanes(sx), reduce_lanes(sy),
            reduce_lanes(sxx), reduce_lanes(syy)};
}

}  // namespace COCOA_GRIDK_ISA_NS
}  // namespace cocoa::core::gridk

#pragma GCC diagnostic pop
