#include "core/bayes_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "metrics/sum.hpp"
#include "obs/profile.hpp"

namespace cocoa::core {

namespace {
constexpr std::size_t kKernelCacheCapacity = 16;
}  // namespace

BayesGrid::BayesGrid(const GridConfig& config) : config_(config) {
    if (config_.cell_m <= 0.0) {
        throw std::invalid_argument("BayesGrid: cell size must be positive");
    }
    if (config_.area.width() <= 0.0 || config_.area.height() <= 0.0) {
        throw std::invalid_argument("BayesGrid: area must have positive extent");
    }
    if (config_.floor_fraction < 0.0 || config_.floor_fraction >= 1.0) {
        throw std::invalid_argument("BayesGrid: floor_fraction must be in [0, 1)");
    }
    nx_ = static_cast<std::size_t>(std::ceil(config_.area.width() / config_.cell_m));
    ny_ = static_cast<std::size_t>(std::ceil(config_.area.height() / config_.cell_m));
    nx_ = std::max<std::size_t>(nx_, 1);
    ny_ = std::max<std::size_t>(ny_, 1);
    cell_w_ = config_.area.width() / static_cast<double>(nx_);
    cell_h_ = config_.area.height() / static_cast<double>(ny_);
    cells_.resize(nx_ * ny_);
    reset_uniform();
}

geom::Vec2 BayesGrid::cell_center(std::size_t ix, std::size_t iy) const {
    return {config_.area.min.x + (static_cast<double>(ix) + 0.5) * cell_w_,
            config_.area.min.y + (static_cast<double>(iy) + 0.5) * cell_h_};
}

void BayesGrid::reset_uniform() {
    const double uniform = 1.0 / static_cast<double>(cells_.size());
    std::fill(cells_.begin(), cells_.end(), uniform);
    stats_valid_ = false;
}

const RadialKernel& BayesGrid::kernel_for(const phy::DistancePdf& pdf) {
    ++kernel_cache_tick_;
    for (KernelSlot& slot : kernel_cache_) {
        if (slot.mean_m == pdf.mean_m && slot.sigma_m == pdf.sigma_m) {
            slot.last_use = kernel_cache_tick_;
            return *slot.kernel;
        }
    }
    // Floor relative to the constraint's own peak, so the relative damping of
    // off-ring cells is scale-free.
    const double peak = 1.0 / (pdf.sigma_m * std::sqrt(2.0 * 3.14159265358979323846));
    auto kernel =
        std::make_unique<RadialKernel>(pdf.mean_m, pdf.sigma_m, config_.floor_fraction * peak);
    KernelSlot* slot = nullptr;
    if (kernel_cache_.size() < kKernelCacheCapacity) {
        slot = &kernel_cache_.emplace_back();
    } else {
        slot = &*std::min_element(
            kernel_cache_.begin(), kernel_cache_.end(),
            [](const KernelSlot& a, const KernelSlot& b) { return a.last_use < b.last_use; });
    }
    slot->mean_m = pdf.mean_m;
    slot->sigma_m = pdf.sigma_m;
    slot->last_use = kernel_cache_tick_;
    slot->kernel = std::move(kernel);
    return *slot->kernel;
}

void BayesGrid::apply_kernel(const geom::Vec2& anchor_position, const RadialKernel& kernel) {
    // Sweep in squared-distance space: q = dy² + dx², with dx² advanced by
    // incremental deltas ((dx+w)² = dx² + 2w·dx + w², and the delta itself
    // grows by 2w² per step) — two adds per cell instead of a distance.
    metrics::KahanSum sum;
    const double w = cell_w_;
    const double dx0 = config_.area.min.x + 0.5 * cell_w_ - anchor_position.x;
    const double y0 = config_.area.min.y + 0.5 * cell_h_ - anchor_position.y;
    const double step_growth = 2.0 * w * w;
    double* cell = cells_.data();
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        const double dy = y0 + static_cast<double>(iy) * cell_h_;
        const double qy = dy * dy;
        double qx = dx0 * dx0;
        double step = 2.0 * dx0 * w + w * w;
        for (std::size_t ix = 0; ix < nx_; ++ix, ++cell) {
            const double v = *cell * kernel.eval_q(qy + qx);
            *cell = v;
            sum.add(v);
            qx += step;
            step += step_growth;
        }
    }
    const double total = sum.value();
    if (total <= 0.0) {
        // Defensive: cannot happen with a positive floor, but never leave the
        // grid in a broken state.
        reset_uniform();
        return;
    }
    const double inv = 1.0 / total;
    for (double& c : cells_) c *= inv;
    stats_valid_ = false;
}

void BayesGrid::apply_constraint(const geom::Vec2& anchor_position,
                                 const phy::DistancePdf& pdf) {
    obs::ProfileScope profile("core.apply_constraint");
    if (pdf.sigma_m <= 0.0) {
        throw std::invalid_argument("BayesGrid: constraint PDF has no spread");
    }
    apply_kernel(anchor_position, kernel_for(pdf));
}

void BayesGrid::apply_constraint_exact(const geom::Vec2& anchor_position,
                                       const phy::DistancePdf& pdf) {
    obs::ProfileScope profile("core.apply_constraint_exact");
    if (pdf.sigma_m <= 0.0) {
        throw std::invalid_argument("BayesGrid: constraint PDF has no spread");
    }
    const double peak = 1.0 / (pdf.sigma_m * std::sqrt(2.0 * 3.14159265358979323846));
    const double floor = config_.floor_fraction * peak;

    metrics::KahanSum sum;
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        for (std::size_t ix = 0; ix < nx_; ++ix) {
            const double d = geom::distance(cell_center(ix, iy), anchor_position);
            double& cell = cells_[iy * nx_ + ix];
            cell *= pdf.density(d) + floor;
            sum.add(cell);
        }
    }
    const double total = sum.value();
    if (total <= 0.0) {
        reset_uniform();
        return;
    }
    const double inv = 1.0 / total;
    for (double& cell : cells_) cell *= inv;
    stats_valid_ = false;
}

void BayesGrid::compute_stats() const {
    // One fused pass for mean and spread. Moments accumulate about the area
    // centre — coordinates bounded by the half-extent — which keeps the
    // E[x²] - E[x]² cancellation benign, and compensated sums keep the error
    // independent of cell count.
    const geom::Vec2 c0 = config_.area.center();
    metrics::KahanSum mass, sx, sy, sxx, syy;
    const double* cell = cells_.data();
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        const double y = config_.area.min.y + (static_cast<double>(iy) + 0.5) * cell_h_ - c0.y;
        for (std::size_t ix = 0; ix < nx_; ++ix, ++cell) {
            const double x =
                config_.area.min.x + (static_cast<double>(ix) + 0.5) * cell_w_ - c0.x;
            const double c = *cell;
            mass.add(c);
            sx.add(c * x);
            sy.add(c * y);
            sxx.add(c * x * x);
            syy.add(c * y * y);
        }
    }
    const double m = mass.value();
    if (m <= 0.0) {
        stats_mean_ = c0;
        stats_spread_ = 0.0;
        stats_valid_ = true;
        return;
    }
    const double inv = 1.0 / m;
    const double mx = sx.value() * inv;
    const double my = sy.value() * inv;
    stats_mean_ = {c0.x + mx, c0.y + my};
    const double var =
        (sxx.value() * inv - mx * mx) + (syy.value() * inv - my * my);
    stats_spread_ = std::sqrt(std::max(var, 0.0));
    stats_valid_ = true;
}

geom::Vec2 BayesGrid::mean() const {
    if (!stats_valid_) compute_stats();
    return stats_mean_;
}

geom::Vec2 BayesGrid::map_estimate() const {
    const auto it = std::max_element(cells_.begin(), cells_.end());
    const std::size_t idx = static_cast<std::size_t>(it - cells_.begin());
    return cell_center(idx % nx_, idx / nx_);
}

double BayesGrid::spread() const {
    if (!stats_valid_) compute_stats();
    return stats_spread_;
}

double BayesGrid::total_mass() const { return metrics::pairwise_sum(cells_); }

void BayesGrid::normalize() {
    const double sum = total_mass();
    if (sum <= 0.0) {
        reset_uniform();
        return;
    }
    const double inv = 1.0 / sum;
    for (double& cell : cells_) cell *= inv;
    stats_valid_ = false;
}

}  // namespace cocoa::core
