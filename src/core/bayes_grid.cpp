#include "core/bayes_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/profile.hpp"

namespace cocoa::core {

BayesGrid::BayesGrid(const GridConfig& config) : config_(config) {
    if (config_.cell_m <= 0.0) {
        throw std::invalid_argument("BayesGrid: cell size must be positive");
    }
    if (config_.area.width() <= 0.0 || config_.area.height() <= 0.0) {
        throw std::invalid_argument("BayesGrid: area must have positive extent");
    }
    if (config_.floor_fraction < 0.0 || config_.floor_fraction >= 1.0) {
        throw std::invalid_argument("BayesGrid: floor_fraction must be in [0, 1)");
    }
    nx_ = static_cast<std::size_t>(std::ceil(config_.area.width() / config_.cell_m));
    ny_ = static_cast<std::size_t>(std::ceil(config_.area.height() / config_.cell_m));
    nx_ = std::max<std::size_t>(nx_, 1);
    ny_ = std::max<std::size_t>(ny_, 1);
    cell_w_ = config_.area.width() / static_cast<double>(nx_);
    cell_h_ = config_.area.height() / static_cast<double>(ny_);
    cells_.resize(nx_ * ny_);
    reset_uniform();
}

geom::Vec2 BayesGrid::cell_center(std::size_t ix, std::size_t iy) const {
    return {config_.area.min.x + (static_cast<double>(ix) + 0.5) * cell_w_,
            config_.area.min.y + (static_cast<double>(iy) + 0.5) * cell_h_};
}

double BayesGrid::mass_at(std::size_t ix, std::size_t iy) const {
    return cells_.at(iy * nx_ + ix);
}

void BayesGrid::reset_uniform() {
    const double uniform = 1.0 / static_cast<double>(cells_.size());
    std::fill(cells_.begin(), cells_.end(), uniform);
}

void BayesGrid::apply_constraint(const geom::Vec2& anchor_position,
                                 const phy::DistancePdf& pdf) {
    obs::ProfileScope profile("core.apply_constraint");
    if (pdf.sigma_m <= 0.0) {
        throw std::invalid_argument("BayesGrid: constraint PDF has no spread");
    }
    // Floor relative to the constraint's own peak, so the relative damping of
    // off-ring cells is scale-free.
    const double peak = 1.0 / (pdf.sigma_m * std::sqrt(2.0 * 3.14159265358979323846));
    const double floor = config_.floor_fraction * peak;

    double sum = 0.0;
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        for (std::size_t ix = 0; ix < nx_; ++ix) {
            const double d = geom::distance(cell_center(ix, iy), anchor_position);
            double& cell = cells_[iy * nx_ + ix];
            cell *= pdf.density(d) + floor;
            sum += cell;
        }
    }
    if (sum <= 0.0) {
        // Defensive: cannot happen with a positive floor, but never leave the
        // grid in a broken state.
        reset_uniform();
        return;
    }
    const double inv = 1.0 / sum;
    for (double& cell : cells_) cell *= inv;
}

geom::Vec2 BayesGrid::mean() const {
    geom::Vec2 acc;
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        for (std::size_t ix = 0; ix < nx_; ++ix) {
            acc += cell_center(ix, iy) * cells_[iy * nx_ + ix];
        }
    }
    return acc;
}

geom::Vec2 BayesGrid::map_estimate() const {
    const auto it = std::max_element(cells_.begin(), cells_.end());
    const std::size_t idx = static_cast<std::size_t>(it - cells_.begin());
    return cell_center(idx % nx_, idx / nx_);
}

double BayesGrid::spread() const {
    const geom::Vec2 mu = mean();
    double acc = 0.0;
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        for (std::size_t ix = 0; ix < nx_; ++ix) {
            acc += geom::distance_sq(cell_center(ix, iy), mu) * cells_[iy * nx_ + ix];
        }
    }
    return std::sqrt(acc);
}

double BayesGrid::total_mass() const {
    double sum = 0.0;
    for (const double c : cells_) sum += c;
    return sum;
}

void BayesGrid::normalize() {
    const double sum = total_mass();
    if (sum <= 0.0) {
        reset_uniform();
        return;
    }
    const double inv = 1.0 / sum;
    for (double& cell : cells_) cell *= inv;
}

}  // namespace cocoa::core
