#include "core/bayes_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "metrics/sum.hpp"
#include "obs/profile.hpp"

namespace cocoa::core {

namespace {
constexpr std::size_t kKernelCacheCapacity = 16;
}  // namespace

BayesGrid::BayesGrid(const GridConfig& config) : config_(config) {
    if (config_.cell_m <= 0.0) {
        throw std::invalid_argument("BayesGrid: cell size must be positive");
    }
    if (config_.area.width() <= 0.0 || config_.area.height() <= 0.0) {
        throw std::invalid_argument("BayesGrid: area must have positive extent");
    }
    if (config_.floor_fraction < 0.0 || config_.floor_fraction >= 1.0) {
        throw std::invalid_argument("BayesGrid: floor_fraction must be in [0, 1)");
    }
    nx_ = static_cast<std::size_t>(std::ceil(config_.area.width() / config_.cell_m));
    ny_ = static_cast<std::size_t>(std::ceil(config_.area.height() / config_.cell_m));
    nx_ = std::max<std::size_t>(nx_, 1);
    ny_ = std::max<std::size_t>(ny_, 1);
    stride_ = gridk::padded(nx_);
    cell_w_ = config_.area.width() / static_cast<double>(nx_);
    cell_h_ = config_.area.height() / static_cast<double>(ny_);
    cells_.assign(stride_ * ny_, 0.0);

    // Static SoA operands: centred cell-centre coordinates. Padding columns
    // keep zeros — they multiply zero mass, so their value never matters.
    const geom::Vec2 c0 = config_.area.center();
    colx_.assign(stride_, 0.0);
    colx2_.assign(stride_, 0.0);
    for (std::size_t ix = 0; ix < nx_; ++ix) {
        const double x =
            config_.area.min.x + (static_cast<double>(ix) + 0.5) * cell_w_ - c0.x;
        colx_[ix] = x;
        colx2_[ix] = x * x;
    }
    row_y_.resize(ny_);
    row_y2_.resize(ny_);
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        const double y =
            config_.area.min.y + (static_cast<double>(iy) + 0.5) * cell_h_ - c0.y;
        row_y_[iy] = y;
        row_y2_[iy] = y * y;
    }
    colq_.resize(stride_);
    blk_qmin_.resize(stride_ / gridk::kBlock);
    blk_qmax_.resize(stride_ / gridk::kBlock);
    row_qy_.resize(ny_);

    // Seed the uniform prior and compute its statistics once through the
    // fused pass; reset_uniform() restores the cached values thereafter.
    const double uniform = 1.0 / static_cast<double>(cell_count());
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        std::fill_n(cells_.data() + iy * stride_, nx_, uniform);
    }
    gridk::ScalePlan plan{cells_.data(), stride_,      ny_,
                          colx_.data(),  colx2_.data(), row_y_.data(),
                          row_y2_.data(), 1.0};
    finish_stats(gridk::scale_and_moments(plan));
    uniform_mean_ = stats_mean_;
    uniform_spread_ = stats_spread_;
}

geom::Vec2 BayesGrid::cell_center(std::size_t ix, std::size_t iy) const {
    return {config_.area.min.x + (static_cast<double>(ix) + 0.5) * cell_w_,
            config_.area.min.y + (static_cast<double>(iy) + 0.5) * cell_h_};
}

void BayesGrid::reset_uniform() {
    const double uniform = 1.0 / static_cast<double>(cell_count());
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        std::fill_n(cells_.data() + iy * stride_, nx_, uniform);
    }
    stats_mean_ = uniform_mean_;
    stats_spread_ = uniform_spread_;
}

const RadialKernel& BayesGrid::kernel_for(const phy::DistancePdf& pdf) {
    ++kernel_cache_tick_;
    for (KernelSlot& slot : kernel_cache_) {
        if (slot.mean_m == pdf.mean_m && slot.sigma_m == pdf.sigma_m) {
            slot.last_use = kernel_cache_tick_;
            return *slot.kernel;
        }
    }
    // Floor relative to the constraint's own peak, so the relative damping of
    // off-ring cells is scale-free.
    const double peak = 1.0 / (pdf.sigma_m * std::sqrt(2.0 * 3.14159265358979323846));
    auto kernel =
        std::make_unique<RadialKernel>(pdf.mean_m, pdf.sigma_m, config_.floor_fraction * peak);
    KernelSlot* slot = nullptr;
    if (kernel_cache_.size() < kKernelCacheCapacity) {
        slot = &kernel_cache_.emplace_back();
    } else {
        slot = &*std::min_element(
            kernel_cache_.begin(), kernel_cache_.end(),
            [](const KernelSlot& a, const KernelSlot& b) { return a.last_use < b.last_use; });
    }
    slot->mean_m = pdf.mean_m;
    slot->sigma_m = pdf.sigma_m;
    slot->last_use = kernel_cache_tick_;
    slot->kernel = std::move(kernel);
    return *slot->kernel;
}

void BayesGrid::finish_stats(const gridk::Moments& m) {
    // Moments arrive centred on the area centre — coordinates bounded by the
    // half-extent — which keeps the E[x²] - E[x]² cancellation benign.
    const geom::Vec2 c0 = config_.area.center();
    if (m.mass <= 0.0) {
        stats_mean_ = c0;
        stats_spread_ = 0.0;
        return;
    }
    const double inv = 1.0 / m.mass;
    const double mx = m.sx * inv;
    const double my = m.sy * inv;
    stats_mean_ = {c0.x + mx, c0.y + my};
    const double var = (m.sxx * inv - mx * mx) + (m.syy * inv - my * my);
    stats_spread_ = std::sqrt(std::max(var, 0.0));
}

void BayesGrid::scale_and_refresh_stats(double total) {
    gridk::ScalePlan plan{cells_.data(), stride_,      ny_,
                          colx_.data(),  colx2_.data(), row_y_.data(),
                          row_y2_.data(), 1.0 / total};
    finish_stats(gridk::scale_and_moments(plan));
}

void BayesGrid::apply_blocked(const geom::Vec2& anchor_position,
                              const RadialKernel& kernel) {
    // Build the per-apply SoA operands: squared coordinate offsets from the
    // anchor, per column and per row, plus the per-block colq range the
    // kernel uses to classify whole blocks as floor / table / exact.
    const double x0 = config_.area.min.x + 0.5 * cell_w_ - anchor_position.x;
    const double y0 = config_.area.min.y + 0.5 * cell_h_ - anchor_position.y;
    for (std::size_t ix = 0; ix < nx_; ++ix) {
        const double dx = x0 + static_cast<double>(ix) * cell_w_;
        colq_[ix] = dx * dx;
    }
    // Padding lanes sit at +inf: always past the band, always the floor
    // branch, and their zero mass stays zero. The +inf block max also keeps
    // tail blocks off the pure-floor fast path unless the real lanes earn it.
    std::fill(colq_.begin() + static_cast<std::ptrdiff_t>(nx_), colq_.end(),
              std::numeric_limits<double>::infinity());
    for (std::size_t b = 0; b < blk_qmin_.size(); ++b) {
        double lo = colq_[b * gridk::kBlock];
        double hi = lo;
        for (std::size_t l = 1; l < gridk::kBlock; ++l) {
            const double q = colq_[b * gridk::kBlock + l];
            lo = std::min(lo, q);
            hi = std::max(hi, q);
        }
        blk_qmin_[b] = lo;
        blk_qmax_[b] = hi;
    }
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        const double dy = y0 + static_cast<double>(iy) * cell_h_;
        row_qy_[iy] = dy * dy;
    }

    gridk::ApplyPlan plan{cells_.data(),    stride_,          ny_,
                          colq_.data(),     blk_qmin_.data(), blk_qmax_.data(),
                          row_qy_.data()};
    const double total = gridk::apply_and_sum(plan, kernel);
    if (total <= 0.0) {
        // Defensive: cannot happen with a positive floor, but never leave the
        // grid in a broken state.
        reset_uniform();
        return;
    }
    scale_and_refresh_stats(total);
}

void BayesGrid::apply_serial(const geom::Vec2& anchor_position,
                             const RadialKernel& kernel) {
    // Sweep in squared-distance space: q = dy² + dx², with dx² advanced by
    // incremental deltas ((dx+w)² = dx² + 2w·dx + w², and the delta itself
    // grows by 2w² per step) — two adds per cell instead of a distance.
    metrics::KahanSum sum;
    const double w = cell_w_;
    const double dx0 = config_.area.min.x + 0.5 * cell_w_ - anchor_position.x;
    const double y0 = config_.area.min.y + 0.5 * cell_h_ - anchor_position.y;
    const double step_growth = 2.0 * w * w;
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        const double dy = y0 + static_cast<double>(iy) * cell_h_;
        const double qy = dy * dy;
        double qx = dx0 * dx0;
        double step = 2.0 * dx0 * w + w * w;
        double* row = cells_.data() + iy * stride_;
        for (std::size_t ix = 0; ix < nx_; ++ix) {
            const double v = row[ix] * kernel.eval_q(qy + qx);
            row[ix] = v;
            sum.add(v);
            qx += step;
            step += step_growth;
        }
    }
    const double total = sum.value();
    if (total <= 0.0) {
        reset_uniform();
        return;
    }
    // Sequential fused normalize + moments — the scalar twin of
    // gridk::scale_and_moments.
    const double inv = 1.0 / total;
    metrics::KahanSum mass, sx, sy, sxx, syy;
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        const double y = row_y_[iy];
        const double y2 = row_y2_[iy];
        double* row = cells_.data() + iy * stride_;
        for (std::size_t ix = 0; ix < nx_; ++ix) {
            const double c = row[ix] * inv;
            row[ix] = c;
            mass.add(c);
            sx.add(c * colx_[ix]);
            sy.add(c * y);
            sxx.add(c * colx2_[ix]);
            syy.add(c * y2);
        }
    }
    finish_stats({mass.value(), sx.value(), sy.value(), sxx.value(), syy.value()});
}

void BayesGrid::apply_kernel(const geom::Vec2& anchor_position, const RadialKernel& kernel) {
    if (gridk::force_path() == gridk::ForcePath::Serial) {
        apply_serial(anchor_position, kernel);
        return;
    }
    apply_blocked(anchor_position, kernel);
}

void BayesGrid::apply_constraint(const geom::Vec2& anchor_position,
                                 const phy::DistancePdf& pdf) {
    obs::ProfileScope profile("core.apply_constraint");
    if (pdf.sigma_m <= 0.0) {
        throw std::invalid_argument("BayesGrid: constraint PDF has no spread");
    }
    apply_kernel(anchor_position, kernel_for(pdf));
}

void BayesGrid::apply_constraint_exact(const geom::Vec2& anchor_position,
                                       const phy::DistancePdf& pdf) {
    obs::ProfileScope profile("core.apply_constraint_exact");
    if (pdf.sigma_m <= 0.0) {
        throw std::invalid_argument("BayesGrid: constraint PDF has no spread");
    }
    const double peak = 1.0 / (pdf.sigma_m * std::sqrt(2.0 * 3.14159265358979323846));
    const double floor = config_.floor_fraction * peak;

    metrics::KahanSum sum;
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        double* row = cells_.data() + iy * stride_;
        for (std::size_t ix = 0; ix < nx_; ++ix) {
            const double d = geom::distance(cell_center(ix, iy), anchor_position);
            const double v = row[ix] * (pdf.density(d) + floor);
            row[ix] = v;
            sum.add(v);
        }
    }
    const double total = sum.value();
    if (total <= 0.0) {
        reset_uniform();
        return;
    }
    scale_and_refresh_stats(total);
}

geom::Vec2 BayesGrid::map_estimate() const {
    std::size_t best_ix = 0;
    std::size_t best_iy = 0;
    double best = -1.0;
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        const double* row = cells_.data() + iy * stride_;
        for (std::size_t ix = 0; ix < nx_; ++ix) {
            if (row[ix] > best) {
                best = row[ix];
                best_ix = ix;
                best_iy = iy;
            }
        }
    }
    return cell_center(best_ix, best_iy);
}

double BayesGrid::total_mass() const { return metrics::pairwise_sum(cells_); }

}  // namespace cocoa::core
