#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/grid_kernels.hpp"
#include "core/radial_kernel.hpp"
#include "geom/rect.hpp"
#include "geom/vec2.hpp"
#include "phy/pdf_table.hpp"

namespace cocoa::core {

/// Discretization of the deployment area for the Bayesian position estimate.
struct GridConfig {
    geom::Rect area = geom::Rect::square(200.0);
    double cell_m = 2.0;  ///< nominal cell side; actual cells evenly divide the area
    /// Constraint floor, as a fraction of the constraint's peak density: a
    /// cell never gets weight below floor_fraction * peak. Keeps the
    /// posterior proper under conflicting/bad beacons (Eq. 2 would otherwise
    /// annihilate it).
    double floor_fraction = 0.01;
};

/// The grid-based Bayesian position estimator of §2.2 (after Sichitiu &
/// Ramadurai): a discrete PDF over the deployment area
/// [(x_min, x_max) x (y_min, y_max)].
///
///  - reset_uniform()        : the constant initial estimate;
///  - apply_constraint()     : Eqs. (1) and (2) — multiply the prior by
///                             Constraint(x,y) = PDF_RSSI(d((x,y), beacon))
///                             and renormalize;
///  - mean()                 : Eq. (3) — the position estimate as the
///                             posterior mean.
///
/// apply_constraint runs on precomputed radial kernels (see RadialKernel)
/// through the blocked SIMD-dispatched kernels in core/grid_kernels: rows are
/// padded to a multiple of gridk::kBlock doubles (padding cells carry zero
/// mass forever), per-column/per-row operands live in separate SoA arrays,
/// and the constraint sweep and the fused normalize+moments pass both run
/// whole blocks at a time. Kernels are cached per (mean, sigma) — the PDF
/// table has a few dozen distinct bins, so after warmup every beacon hits
/// the cache.
///
/// Posterior statistics (mean, spread) are recomputed eagerly inside every
/// mutating call, fused into the normalization pass; mean()/spread() are
/// plain reads. That makes concurrent const reads race-free — required once
/// grids are filled in by a worker pool and read from the sim thread.
class BayesGrid {
  public:
    explicit BayesGrid(const GridConfig& config);

    std::size_t nx() const { return nx_; }
    std::size_t ny() const { return ny_; }
    std::size_t cell_count() const { return nx_ * ny_; }
    const geom::Rect& area() const { return config_.area; }
    double cell_width() const { return cell_w_; }
    double cell_height() const { return cell_h_; }

    /// Centre of cell (ix, iy).
    geom::Vec2 cell_center(std::size_t ix, std::size_t iy) const;

    /// Posterior probability mass of cell (ix, iy).
    double mass_at(std::size_t ix, std::size_t iy) const {
        assert(ix < nx_ && iy < ny_);
        return cells_[iy * stride_ + ix];
    }

    /// Resets to the uniform prior (robot equally likely anywhere).
    void reset_uniform();

    /// Applies one beacon constraint (Eqs. 1-2): the distance PDF looked up
    /// for the beacon's RSSI, centred on the anchor position carried in the
    /// beacon. Renormalizes.
    void apply_constraint(const geom::Vec2& anchor_position, const phy::DistancePdf& pdf);

    /// The pre-kernel reference implementation of apply_constraint: exact
    /// sqrt+exp per cell. Kept as the equivalence oracle for tests and as
    /// the baseline the perf suite measures speedups against.
    void apply_constraint_exact(const geom::Vec2& anchor_position,
                                const phy::DistancePdf& pdf);

    /// Eq. (3): posterior mean position.
    geom::Vec2 mean() const { return stats_mean_; }

    /// Centre of the highest-mass cell (diagnostic / MAP estimate).
    geom::Vec2 map_estimate() const;

    /// RMS distance of the posterior from its mean — a confidence measure
    /// (large after bad beacons, small after three good ones). Computed in
    /// the same fused pass that normalizes each update.
    double spread() const { return stats_spread_; }

    /// Total probability mass (== 1 up to rounding; exposed for tests).
    double total_mass() const;

    /// The cached kernel for this PDF (building it on a miss). Exposed so
    /// tests can check the certified table directly.
    const RadialKernel& kernel_for(const phy::DistancePdf& pdf);

    /// Number of kernels currently cached (bounded by the LRU capacity).
    std::size_t kernel_cache_size() const { return kernel_cache_.size(); }

  private:
    void apply_kernel(const geom::Vec2& anchor_position, const RadialKernel& kernel);
    /// The blocked (SIMD-dispatched) sweep + fused normalize/moments.
    void apply_blocked(const geom::Vec2& anchor_position, const RadialKernel& kernel);
    /// The pre-blocking sequential sweep (incremental squared-distance
    /// deltas, one scalar Neumaier chain). Selected by
    /// gridk::ForcePath::Serial; the `_scalar` twin benches measure it.
    void apply_serial(const geom::Vec2& anchor_position, const RadialKernel& kernel);
    /// Turns raw centred moments into stats_mean_ / stats_spread_.
    void finish_stats(const gridk::Moments& moments);
    /// Normalizes by 1/total via the fused pass and refreshes the stats.
    void scale_and_refresh_stats(double total);

    GridConfig config_;
    std::size_t nx_ = 0;
    std::size_t ny_ = 0;
    std::size_t stride_ = 0;  ///< row stride: nx_ padded to gridk::kBlock
    double cell_w_ = 0.0;
    double cell_h_ = 0.0;
    std::vector<double> cells_;  ///< row-major [iy * stride + ix]; padding == 0

    // Static SoA operands of the fused normalize+moments pass: centred
    // cell-centre x and x² per column (padding zero), y and y² per row.
    std::vector<double> colx_;
    std::vector<double> colx2_;
    std::vector<double> row_y_;
    std::vector<double> row_y2_;
    // Per-apply scratch for the constraint sweep: squared x-offset per
    // column (padding +inf so padded lanes stay at the kernel floor), its
    // min/max per block, and the squared y-offset per row.
    std::vector<double> colq_;
    std::vector<double> blk_qmin_;
    std::vector<double> blk_qmax_;
    std::vector<double> row_qy_;

    /// Tiny LRU over recently used kernels, keyed on the exact (mean, sigma)
    /// pair. PDF-table bins recur constantly, so 16 slots give a near-perfect
    /// hit rate while bounding memory for adversarial inputs.
    struct KernelSlot {
        double mean_m = 0.0;
        double sigma_m = 0.0;
        std::uint64_t last_use = 0;
        std::unique_ptr<RadialKernel> kernel;
    };
    std::vector<KernelSlot> kernel_cache_;
    std::uint64_t kernel_cache_tick_ = 0;

    // Posterior statistics, refreshed eagerly by every mutating call (no
    // lazy mutable cache: const reads must stay race-free).
    geom::Vec2 stats_mean_;
    double stats_spread_ = 0.0;
    // The uniform prior's statistics, computed once at construction so
    // reset_uniform() is a fill plus a restore.
    geom::Vec2 uniform_mean_;
    double uniform_spread_ = 0.0;
};

}  // namespace cocoa::core
