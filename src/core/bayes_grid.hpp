#pragma once

#include <cstddef>
#include <vector>

#include "geom/rect.hpp"
#include "geom/vec2.hpp"
#include "phy/pdf_table.hpp"

namespace cocoa::core {

/// Discretization of the deployment area for the Bayesian position estimate.
struct GridConfig {
    geom::Rect area = geom::Rect::square(200.0);
    double cell_m = 2.0;  ///< nominal cell side; actual cells evenly divide the area
    /// Constraint floor, as a fraction of the constraint's peak density: a
    /// cell never gets weight below floor_fraction * peak. Keeps the
    /// posterior proper under conflicting/bad beacons (Eq. 2 would otherwise
    /// annihilate it).
    double floor_fraction = 0.01;
};

/// The grid-based Bayesian position estimator of §2.2 (after Sichitiu &
/// Ramadurai): a discrete PDF over the deployment area
/// [(x_min, x_max) x (y_min, y_max)].
///
///  - reset_uniform()        : the constant initial estimate;
///  - apply_constraint()     : Eqs. (1) and (2) — multiply the prior by
///                             Constraint(x,y) = PDF_RSSI(d((x,y), beacon))
///                             and renormalize;
///  - mean()                 : Eq. (3) — the position estimate as the
///                             posterior mean.
class BayesGrid {
  public:
    explicit BayesGrid(const GridConfig& config);

    std::size_t nx() const { return nx_; }
    std::size_t ny() const { return ny_; }
    std::size_t cell_count() const { return cells_.size(); }
    const geom::Rect& area() const { return config_.area; }
    double cell_width() const { return cell_w_; }
    double cell_height() const { return cell_h_; }

    /// Centre of cell (ix, iy).
    geom::Vec2 cell_center(std::size_t ix, std::size_t iy) const;

    /// Posterior probability mass of cell (ix, iy).
    double mass_at(std::size_t ix, std::size_t iy) const;

    /// Resets to the uniform prior (robot equally likely anywhere).
    void reset_uniform();

    /// Applies one beacon constraint (Eqs. 1-2): the distance PDF looked up
    /// for the beacon's RSSI, centred on the anchor position carried in the
    /// beacon. Renormalizes.
    void apply_constraint(const geom::Vec2& anchor_position, const phy::DistancePdf& pdf);

    /// Eq. (3): posterior mean position.
    geom::Vec2 mean() const;

    /// Centre of the highest-mass cell (diagnostic / MAP estimate).
    geom::Vec2 map_estimate() const;

    /// RMS distance of the posterior from its mean — a confidence measure
    /// (large after bad beacons, small after three good ones).
    double spread() const;

    /// Total probability mass (== 1 up to rounding; exposed for tests).
    double total_mass() const;

  private:
    void normalize();

    GridConfig config_;
    std::size_t nx_ = 0;
    std::size_t ny_ = 0;
    double cell_w_ = 0.0;
    double cell_h_ = 0.0;
    std::vector<double> cells_;  ///< row-major [iy * nx + ix] probability masses
};

}  // namespace cocoa::core
