#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/radial_kernel.hpp"
#include "geom/rect.hpp"
#include "geom/vec2.hpp"
#include "phy/pdf_table.hpp"

namespace cocoa::core {

/// Discretization of the deployment area for the Bayesian position estimate.
struct GridConfig {
    geom::Rect area = geom::Rect::square(200.0);
    double cell_m = 2.0;  ///< nominal cell side; actual cells evenly divide the area
    /// Constraint floor, as a fraction of the constraint's peak density: a
    /// cell never gets weight below floor_fraction * peak. Keeps the
    /// posterior proper under conflicting/bad beacons (Eq. 2 would otherwise
    /// annihilate it).
    double floor_fraction = 0.01;
};

/// The grid-based Bayesian position estimator of §2.2 (after Sichitiu &
/// Ramadurai): a discrete PDF over the deployment area
/// [(x_min, x_max) x (y_min, y_max)].
///
///  - reset_uniform()        : the constant initial estimate;
///  - apply_constraint()     : Eqs. (1) and (2) — multiply the prior by
///                             Constraint(x,y) = PDF_RSSI(d((x,y), beacon))
///                             and renormalize;
///  - mean()                 : Eq. (3) — the position estimate as the
///                             posterior mean.
///
/// apply_constraint runs on precomputed radial kernels (see RadialKernel):
/// the grid is swept in squared-distance space with incremental row/column
/// deltas, so the per-cell work is a table interpolation plus a multiply.
/// Kernels are cached per (mean, sigma) — the PDF table has a few dozen
/// distinct bins, so after warmup every beacon hits the cache.
class BayesGrid {
  public:
    explicit BayesGrid(const GridConfig& config);

    std::size_t nx() const { return nx_; }
    std::size_t ny() const { return ny_; }
    std::size_t cell_count() const { return cells_.size(); }
    const geom::Rect& area() const { return config_.area; }
    double cell_width() const { return cell_w_; }
    double cell_height() const { return cell_h_; }

    /// Centre of cell (ix, iy).
    geom::Vec2 cell_center(std::size_t ix, std::size_t iy) const;

    /// Posterior probability mass of cell (ix, iy).
    double mass_at(std::size_t ix, std::size_t iy) const {
        assert(ix < nx_ && iy < ny_);
        return cells_[iy * nx_ + ix];
    }

    /// Resets to the uniform prior (robot equally likely anywhere).
    void reset_uniform();

    /// Applies one beacon constraint (Eqs. 1-2): the distance PDF looked up
    /// for the beacon's RSSI, centred on the anchor position carried in the
    /// beacon. Renormalizes.
    void apply_constraint(const geom::Vec2& anchor_position, const phy::DistancePdf& pdf);

    /// The pre-kernel reference implementation of apply_constraint: exact
    /// sqrt+exp per cell. Kept as the equivalence oracle for tests and as
    /// the baseline the perf suite measures speedups against.
    void apply_constraint_exact(const geom::Vec2& anchor_position,
                                const phy::DistancePdf& pdf);

    /// Eq. (3): posterior mean position.
    geom::Vec2 mean() const;

    /// Centre of the highest-mass cell (diagnostic / MAP estimate).
    geom::Vec2 map_estimate() const;

    /// RMS distance of the posterior from its mean — a confidence measure
    /// (large after bad beacons, small after three good ones). Computed in
    /// the same fused pass as mean() and cached until the grid next mutates.
    double spread() const;

    /// Total probability mass (== 1 up to rounding; exposed for tests).
    double total_mass() const;

    /// The cached kernel for this PDF (building it on a miss). Exposed so
    /// tests can check the certified table directly.
    const RadialKernel& kernel_for(const phy::DistancePdf& pdf);

    /// Number of kernels currently cached (bounded by the LRU capacity).
    std::size_t kernel_cache_size() const { return kernel_cache_.size(); }

  private:
    void normalize();
    void apply_kernel(const geom::Vec2& anchor_position, const RadialKernel& kernel);
    void compute_stats() const;

    GridConfig config_;
    std::size_t nx_ = 0;
    std::size_t ny_ = 0;
    double cell_w_ = 0.0;
    double cell_h_ = 0.0;
    std::vector<double> cells_;  ///< row-major [iy * nx + ix] probability masses

    /// Tiny LRU over recently used kernels, keyed on the exact (mean, sigma)
    /// pair. PDF-table bins recur constantly, so 16 slots give a near-perfect
    /// hit rate while bounding memory for adversarial inputs.
    struct KernelSlot {
        double mean_m = 0.0;
        double sigma_m = 0.0;
        std::uint64_t last_use = 0;
        std::unique_ptr<RadialKernel> kernel;
    };
    std::vector<KernelSlot> kernel_cache_;
    std::uint64_t kernel_cache_tick_ = 0;

    // Fused posterior statistics (mean + spread in one grid pass), cached
    // until the next mutation.
    mutable bool stats_valid_ = false;
    mutable geom::Vec2 stats_mean_;
    mutable double stats_spread_ = 0.0;
};

}  // namespace cocoa::core
