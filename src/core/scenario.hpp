#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/agent.hpp"
#include "metrics/time_series.hpp"
#include "multicast/odmrp.hpp"
#include "net/node.hpp"
#include "obs/obs.hpp"
#include "phy/channel.hpp"
#include "phy/pdf_table.hpp"
#include "sim/thread_pool.hpp"

namespace cocoa::sim::ckpt {
class CallbackRegistry;
}  // namespace cocoa::sim::ckpt

namespace cocoa::core {

/// Full experiment configuration: one of the paper's simulation runs.
/// Defaults reproduce the common setup of §4: 50 robots in a 200 m x 200 m
/// (40 000 m^2) area, half of them anchors, 30 simulated minutes, T = 100 s,
/// t = 3 s, k = 3.
struct ScenarioConfig {
    std::uint64_t seed = 1;

    double area_side_m = 200.0;
    int num_robots = 50;
    int num_anchors = 25;     ///< ignored (all blind) in OdometryOnly mode
    double min_speed = 0.1;   ///< m/s
    double max_speed = 2.0;   ///< m/s; the paper evaluates 0.5 and 2.0
    sim::Duration duration = sim::Duration::minutes(30);

    LocalizationMode mode = LocalizationMode::Combined;
    SyncMode sync = SyncMode::Mrmm;
    bool sleep_coordination = true;

    sim::Duration period = sim::Duration::seconds(100.0);  ///< T
    sim::Duration window = sim::Duration::seconds(3.0);    ///< t
    int beacons_per_window = 3;                            ///< k
    int min_beacons_for_fix = 3;

    RfTechnique technique = RfTechnique::BayesianGrid;
    /// Combined-mode belief backend (see AgentConfig::estimator and
    /// docs/estimators.md). Non-grid backends require mode == Combined.
    est::Backend estimator = est::Backend::Grid;
    double cell_m = 2.0;
    double floor_fraction = 0.01;
    /// EKF-mode tuning (see AgentConfig).
    double ekf_q_displacement_frac = 0.1;
    double ekf_q_floor_var_per_s = 0.6;
    double ekf_gate_sigmas = 4.0;
    bool ekf_use_non_gaussian_bins = true;
    double ekf_min_range_sigma_m = 2.0;
    double ekf_reject_inflation_var = 2.0;
    double ekf_missed_window_var = 4.0;
    int lincvx_min_beacons = 1;
    double beacon_rssi_cutoff_dbm = -std::numeric_limits<double>::infinity();
    bool use_non_gaussian_bins = true;

    mobility::OdometryConfig odometry;
    phy::ChannelConfig channel;
    phy::CalibrationConfig calibration;
    energy::PowerProfile power;
    mac::MacConfig mac;
    mac::MediumConfig medium;
    multicast::MulticastConfig multicast;  ///< auto_refresh is forced off

    sim::Duration tick = sim::Duration::seconds(0.5);
    sim::Duration sample_interval = sim::Duration::seconds(1.0);

    sim::Duration wake_guard = sim::Duration::seconds(1.0);
    sim::Duration window_slack = sim::Duration::seconds(0.5);
    double clock_skew_sigma_s = 0.1;
    double sync_residual_sigma_s = 0.02;
    double anchor_position_sigma_m = 0.25;
    bool heading_correction_at_fix = true;
    bool initial_pose_known = false;  ///< forced on in OdometryOnly mode
    /// §6 extension: confidently-localized blind robots also beacon.
    bool blind_beaconing = false;
    double blind_beacon_max_spread_m = 8.0;
    /// Robustness extension: this many robots (after the primary, node 0)
    /// act as ranked Sync-robot backups and take over if SYNCs go silent.
    int sync_backups = 2;

    /// Worker threads for batched window-end grid updates: each blind
    /// robot's Bayesian fix runs as a pool task, so a beacon round costs
    /// roughly the slowest robot's grid update instead of the sum over
    /// robots. 0 = compute fixes inline on the event thread (the default);
    /// < 0 = one worker per hardware thread. Every setting produces
    /// byte-identical results (see AgentConfig::fix_pool).
    int grid_update_threads = 0;

    /// Throws std::invalid_argument on inconsistent settings.
    void validate() const;
};

/// Team energy, summed over all radios, in millijoules.
struct EnergyBreakdown {
    double tx_mj = 0.0;
    double rx_mj = 0.0;
    double idle_mj = 0.0;
    double sleep_mj = 0.0;
    double transitions_mj = 0.0;
    double total_mj() const { return tx_mj + rx_mj + idle_mj + sleep_mj + transitions_mj; }
};

/// Everything a bench needs to print a figure.
struct ScenarioResult {
    /// Average localization error over blind robots, sampled each second —
    /// the y-axis of Figures 4, 6, 7 and 9(a).
    metrics::TimeSeries avg_error;
    /// Per-robot error series (empty for anchors) — Figure 8's CDFs cut
    /// through these at fixed instants.
    std::vector<metrics::TimeSeries> node_error;

    EnergyBreakdown team_energy;
    mac::Medium::Stats medium_stats;
    multicast::MulticastNode::Stats multicast_stats;
    CocoaAgent::Stats agent_totals;
    RfLocalizer::Stats localizer_totals;
    std::uint64_t executed_events = 0;
    /// Full counter-registry snapshot (sorted by name) taken at result()
    /// time; replication aggregates fold these in index order so totals are
    /// byte-identical regardless of thread count.
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /// Error of every blind robot at time `t` (step-sampled).
    std::vector<double> errors_at(sim::TimePoint t) const;
};

/// Builds and runs one simulation: world, channel + PDF-table calibration,
/// multicast fleet (Mrmm mode), one CoCoA agent per robot, metric sampling.
class Scenario {
  public:
    /// `shared_table` skips the calibration phase and reuses an existing PDF
    /// table (fork/restore paths: the table is a pure function of (channel,
    /// calibration, seed), so a scenario built from the same config owns an
    /// identical one — sharing it avoids recalibrating per forked future).
    /// The RNG manager derives stream seeds statelessly, so skipping
    /// calibration perturbs no other stream.
    explicit Scenario(const ScenarioConfig& config,
                      std::shared_ptr<const phy::PdfTable> shared_table = nullptr);

    /// Runs to config.duration (or further calls run_until piecemeal).
    void run();
    void run_until(sim::TimePoint t);

    /// Collects results at the current simulation time.
    ScenarioResult result() const;

    const ScenarioConfig& config() const { return config_; }
    sim::Simulator& simulator() { return sim_; }
    net::World& world() { return *world_; }
    CocoaAgent& agent(net::NodeId id) { return *agents_.at(id); }
    std::size_t agent_count() const { return agents_.size(); }
    bool is_anchor(net::NodeId id) const;
    /// The node's multicast instance, or nullptr when the scenario runs
    /// without an MRMM fleet (PerfectClock / OdometryOnly). Fault injection
    /// uses this to drop a rebooted robot's ODMRP soft state.
    multicast::MulticastNode* multicast_node(net::NodeId id);
    const phy::PdfTable& pdf_table() const { return *table_; }
    std::shared_ptr<const phy::PdfTable> pdf_table_ptr() const { return table_; }

    /// The observability context (counter registry + trace sink) shared by
    /// every subsystem of this scenario. Open obs().trace before running to
    /// record an event trace.
    obs::Obs& obs();
    const obs::Obs& obs() const;

    /// One recorded robot pose snapshot (true and estimated).
    struct PositionTraceRow {
        sim::TimePoint time;
        net::NodeId node;
        geom::Vec2 truth;
        geom::Vec2 estimate;
    };

    /// Starts recording every robot's true and estimated position each
    /// `interval` (call before running; safe mid-run too). Used for
    /// visualization / post-processing via write_position_trace_csv().
    void enable_position_trace(sim::Duration interval);
    const std::vector<PositionTraceRow>& position_trace() const { return trace_; }
    void write_position_trace_csv(std::ostream& os) const;

    /// Checkpoint: serializes the complete run state — every node's mobility
    /// and radio, the medium (frames in flight, loss bursts, pool warmth),
    /// the multicast fleet, every agent, the metric series and the kernel's
    /// pending-event queue — so a restored run is byte-identical to the
    /// straight run. Call only between events (after run_until returns).
    /// `extra_rebuilders` lets the caller register additional event kinds
    /// (the armed FaultInjector) before the kernel reloads.
    void save_state(sim::ckpt::Writer& w) const;
    void load_state(
        sim::ckpt::Reader& r,
        const std::function<void(sim::ckpt::CallbackRegistry&)>& extra_rebuilders = {});

  private:
    void register_rebuilders(sim::ckpt::CallbackRegistry& reg);
    void on_tick();
    void on_sample();
    void on_trace();

    ScenarioConfig config_;
    sim::Simulator sim_;
    phy::Channel channel_;
    std::shared_ptr<const phy::PdfTable> table_;
    std::unique_ptr<net::World> world_;
    std::optional<multicast::MulticastFleet> mcast_;
    /// Declared before agents_: an agent's destructor may still be waiting
    /// on (and folding in) a pooled fix job, so the pool must outlive them.
    std::unique_ptr<sim::ThreadPool> fix_pool_;
    std::vector<std::unique_ptr<CocoaAgent>> agents_;

    metrics::TimeSeries avg_error_;
    std::vector<metrics::TimeSeries> node_error_;
    std::vector<PositionTraceRow> trace_;
    sim::Duration trace_interval_ = sim::Duration::zero();
};

/// One-shot convenience wrapper: configure, run, collect.
ScenarioResult run_scenario(const ScenarioConfig& config);

}  // namespace cocoa::core
