#include "core/ekf.hpp"

#include <cmath>

namespace cocoa::core {

void RangeEkf::reset(const geom::Vec2& mean, double var) {
    mean_ = mean;
    cov_ = Cov2{var, 0.0, var};
}

void RangeEkf::predict(const geom::Vec2& delta, double q_var) {
    mean_ += delta;
    cov_.xx += q_var;
    cov_.yy += q_var;
}

bool RangeEkf::update_range(const geom::Vec2& anchor, double distance, double sigma,
                            double gate_sigmas) {
    const geom::Vec2 diff = mean_ - anchor;
    const double predicted = std::max(diff.norm(), 1e-6);
    // Measurement Jacobian H = d|x - a| / dx = (x - a)^T / |x - a|.
    const double hx = diff.x / predicted;
    const double hy = diff.y / predicted;

    // Innovation and its variance S = H P H^T + R.
    const double innovation = distance - predicted;
    const double hph = hx * (cov_.xx * hx + cov_.xy * hy) +
                       hy * (cov_.xy * hx + cov_.yy * hy);
    const double s = hph + sigma * sigma;
    if (s <= 0.0) return false;

    // Gate: a beacon wildly inconsistent with the current belief is likely a
    // "bad beacon" (mis-ranged far-field); skip it rather than poison the
    // state.
    if (innovation * innovation > gate_sigmas * gate_sigmas * s) return false;

    // Kalman gain K = P H^T / S.
    const double kx = (cov_.xx * hx + cov_.xy * hy) / s;
    const double ky = (cov_.xy * hx + cov_.yy * hy) / s;

    mean_ += geom::Vec2{kx, ky} * innovation;

    // Joseph-free covariance update P' = (I - K H) P (sufficient here; the
    // gain is exact for the linearized model).
    const double xx = cov_.xx;
    const double xy = cov_.xy;
    const double yy = cov_.yy;
    cov_.xx = (1.0 - kx * hx) * xx - kx * hy * xy;
    cov_.xy = (1.0 - kx * hx) * xy - kx * hy * yy;
    cov_.yy = -ky * hx * xy + (1.0 - ky * hy) * yy;
    // Numerical symmetry/positivity guard.
    cov_.xx = std::max(cov_.xx, 1e-9);
    cov_.yy = std::max(cov_.yy, 1e-9);
    return true;
}

double RangeEkf::uncertainty() const { return std::sqrt(std::max(cov_.trace(), 0.0)); }

}  // namespace cocoa::core
