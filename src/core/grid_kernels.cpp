// Baseline instantiation of the blocked grid kernels + runtime dispatch.
//
// This TU is compiled with the project's default ISA flags, so the vector-
// extension code lowers to SSE2 on x86-64 and NEON on aarch64 — that is the
// "generic" path, and the arithmetic every other instantiation must match
// byte-for-byte (see grid_kernels_impl.hpp). The AVX2/AVX-512 instantiations
// live in their own TUs with per-file -m flags and are only referenced when
// CMake defines COCOA_GRIDK_X86_DISPATCH (COCOA_SIMD=ON on an x86-64 host);
// the dispatcher then picks the widest ISA the CPU reports at first use.

#define COCOA_GRIDK_ISA_NS baseline
#include "core/grid_kernels_impl.hpp"

#include <atomic>

namespace cocoa::core::gridk {

#if defined(COCOA_GRIDK_X86_DISPATCH)
namespace avx2 {
double apply_and_sum(const ApplyPlan& plan, const RadialKernel& kernel);
Moments scale_and_moments(const ScalePlan& plan);
}  // namespace avx2
namespace avx512 {
double apply_and_sum(const ApplyPlan& plan, const RadialKernel& kernel);
Moments scale_and_moments(const ScalePlan& plan);
}  // namespace avx512
#endif

namespace {

struct Dispatch {
    double (*apply)(const ApplyPlan&, const RadialKernel&) = nullptr;
    Moments (*scale)(const ScalePlan&) = nullptr;
    const char* isa = "generic";
};

constexpr Dispatch kGeneric{&baseline::apply_and_sum, &baseline::scale_and_moments,
                            "generic"};

Dispatch resolve() {
#if defined(COCOA_GRIDK_X86_DISPATCH)
    if (__builtin_cpu_supports("avx512f")) {
        return {&avx512::apply_and_sum, &avx512::scale_and_moments, "avx512"};
    }
    if (__builtin_cpu_supports("avx2")) {
        return {&avx2::apply_and_sum, &avx2::scale_and_moments, "avx2"};
    }
#endif
    return kGeneric;
}

const Dispatch& active() {
    static const Dispatch dispatch = resolve();
    return dispatch;
}

// relaxed is enough: tests and benches flip this from the same thread that
// next touches a grid, and workers inherit whatever was set before a batched
// round was submitted.
std::atomic<ForcePath> g_force_path{ForcePath::None};

}  // namespace

double apply_and_sum(const ApplyPlan& plan, const RadialKernel& kernel) {
    const Dispatch& d =
        force_path() == ForcePath::Generic ? kGeneric : active();
    return d.apply(plan, kernel);
}

Moments scale_and_moments(const ScalePlan& plan) {
    const Dispatch& d =
        force_path() == ForcePath::Generic ? kGeneric : active();
    return d.scale(plan);
}

const char* active_isa() { return active().isa; }

void set_force_path(ForcePath path) {
    g_force_path.store(path, std::memory_order_relaxed);
}

ForcePath force_path() {
    return g_force_path.load(std::memory_order_relaxed);
}

}  // namespace cocoa::core::gridk
