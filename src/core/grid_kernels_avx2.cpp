// AVX2 instantiation of the blocked grid kernels. Compiled with -mavx2 (per
// file, from src/core/CMakeLists.txt) and only ever called after the runtime
// dispatcher has checked __builtin_cpu_supports("avx2"). See
// grid_kernels_impl.hpp for the byte-identity contract.
#if defined(__x86_64__) || defined(_M_X64)

#define COCOA_GRIDK_ISA_NS avx2
#include "core/grid_kernels_impl.hpp"

#endif
