#include "core/agent.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/checkpoint.hpp"
#include "sim/event_tag.hpp"

namespace cocoa::core {

CocoaAgent::CocoaAgent(net::Node& node, const AgentConfig& config,
                       std::shared_ptr<const phy::PdfTable> table,
                       multicast::MulticastNode* mcast, bool is_sync_robot)
    : node_(node),
      config_(config),
      mcast_(mcast),
      is_sync_robot_(is_sync_robot),
      table_(std::move(table)),
      odometry_(config.odometry, node.simulator().rng().stream("odometry", node.id())),
      noise_rng_(node.simulator().rng().stream("agent.noise", node.id())) {
    if (config_.beacons_per_window < 1) {
        throw std::invalid_argument("CocoaAgent: beacons_per_window must be >= 1");
    }
    if (config_.window >= config_.period || config_.window <= sim::Duration::zero()) {
        throw std::invalid_argument("CocoaAgent: need 0 < window < period");
    }
    if (config_.sync == SyncMode::Mrmm && mcast_ == nullptr) {
        throw std::invalid_argument("CocoaAgent: Mrmm sync requires a multicast node");
    }
    if (config_.estimator != est::Backend::Grid &&
        config_.mode != LocalizationMode::Combined) {
        throw std::invalid_argument(
            "CocoaAgent: non-grid estimator backends require Combined mode");
    }

    est::Config ec;
    // LocalizationMode::Ekf predates the interface; it maps to the EKF
    // backend in its bit-exact legacy-continuous flavour.
    ec.backend = config_.mode == LocalizationMode::Ekf ? est::Backend::Ekf
                                                       : config_.estimator;
    ec.legacy_continuous = config_.mode == LocalizationMode::Ekf;
    ec.hold_fixes = config_.mode == LocalizationMode::RfOnly;
    ec.grid = config_.grid;
    ec.technique = config_.technique;
    ec.min_beacons_for_fix = config_.min_beacons_for_fix;
    ec.beacon_rssi_cutoff_dbm = config_.beacon_rssi_cutoff_dbm;
    ec.use_non_gaussian_bins = config_.use_non_gaussian_bins;
    ec.ekf_q_displacement_frac = config_.ekf_q_displacement_frac;
    ec.ekf_q_floor_var_per_s = config_.ekf_q_floor_var_per_s;
    ec.ekf_gate_sigmas = config_.ekf_gate_sigmas;
    ec.ekf_use_non_gaussian_bins = config_.ekf_use_non_gaussian_bins;
    ec.ekf_min_range_sigma_m = config_.ekf_min_range_sigma_m;
    ec.ekf_reject_inflation_var = config_.ekf_reject_inflation_var;
    ec.ekf_missed_window_var = config_.ekf_missed_window_var;
    ec.lincvx_min_beacons = config_.lincvx_min_beacons;
    estimator_ = est::make_estimator(ec, table_, &odometry_);

    node_.host().register_handler(
        net::Port::Beacon,
        [this](const net::Packet& p, const net::RxInfo& i) { on_beacon(p, i); });
    if (mcast_ != nullptr) {
        mcast_->join(config_.sync_group);
        mcast_->set_deliver_handler(
            [this](net::GroupId, const net::Packet& inner, const net::RxInfo&) {
                on_mcast_deliver(inner);
            });
    }

    const std::string prefix = "node." + std::to_string(node_.id()) + ".";
    obs::CounterRegistry& reg = node_.radio().medium().obs().counters;
    reg.add(prefix + "agent.beacons_sent", &stats_.beacons_sent);
    reg.add(prefix + "agent.blind_beacons_sent", &stats_.blind_beacons_sent);
    reg.add(prefix + "agent.beacons_received", &stats_.beacons_received);
    reg.add(prefix + "agent.fixes", &stats_.fixes);
    reg.add(prefix + "agent.windows_without_fix", &stats_.windows_without_fix);
    reg.add(prefix + "agent.syncs_received", &stats_.syncs_received);
    reg.add(prefix + "agent.sync_takeovers", &stats_.sync_takeovers);
    estimator_->register_counters(reg, prefix);
}

CocoaAgent::~CocoaAgent() {
    // The worker writes into this object; join (and fold in) any in-flight
    // job before members start dying.
    resolve_pending_fix();
}

void CocoaAgent::start() {
    tick();
    // Odometry starts anchored either at the true pose (the paper provides
    // initial coordinates in the odometry-only study) or provisionally at the
    // area centre until the first RF fix replaces it.
    if (config_.initial_pose_known) {
        odometry_.reset(true_position(), node_.mobility().heading());
    } else {
        odometry_.reset(config_.grid.area.center(), node_.mobility().heading());
    }
    last_odometry_position_ = odometry_.position();
    last_predict_time_ = node_.simulator().now();
    estimator_->reset(config_.initial_pose_known ? true_position()
                                                 : config_.grid.area.center(),
                      config_.initial_pose_known);

    if (config_.mode == LocalizationMode::OdometryOnly) {
        return;  // no RF activity at all: radio idles, no windows
    }
    if (is_sync_robot_ && mcast_ != nullptr) {
        mcast_->start_source(config_.sync_group);
    }
    schedule_period(0);
}

void CocoaAgent::tick() {
    // A pooled fix from the last window folds in before anything else: the
    // agent's observable state must be exactly what the inline computation
    // would have left at this point of the event time-line.
    resolve_pending();
    const auto increments = node_.mobility().advance_to(node_.simulator().now());
    bool moved = false;
    for (const auto& inc : increments) moved = moved || inc.forward_m != 0.0;
    if (moved) {
        // The medium's spatial index keys off positions; a transmission later
        // in this same timestamp must not reuse pre-movement cells. Only this
        // node moved, so the incremental per-radio path suffices (an O(1)
        // cell migration, vs the bulk note that forces a full sweep). Pure
        // rotation or a waypoint pause leaves the position untouched, so
        // those increments don't warrant a note at all — under the flat
        // oracle an unwarranted note rebuilds the entire hash.
        node_.radio().medium().note_position_moved(node_.radio());
    }
    const bool runs_odometry = config_.mode != LocalizationMode::RfOnly &&
                               (config_.role == Role::Blind);
    if (runs_odometry) {
        odometry_.observe_all(increments);
    }
    if (config_.role == Role::Blind && estimator_->integrates_odometry()) {
        // Prediction from the *measured* (noisy) odometry displacement.
        const geom::Vec2 delta = odometry_.position() - last_odometry_position_;
        const double dt =
            (node_.simulator().now() - last_predict_time_).to_seconds();
        estimator_->predict(delta, dt);
    }
    last_odometry_position_ = odometry_.position();
    last_predict_time_ = node_.simulator().now();
}

void CocoaAgent::reboot() {
    tick();
    // Everything volatile is lost: the pose belief restarts as unlocalized
    // (provisionally at the area centre, like a fresh deployment), half-
    // collected windows drop, and the clock restarts with fresh skew. The
    // odometry's velocity *bias* survives — it is miscalibration of the
    // hardware, not state.
    odometry_.reset(config_.grid.area.center(), node_.mobility().heading());
    last_odometry_position_ = odometry_.position();
    last_predict_time_ = node_.simulator().now();
    window_beacons_.clear();
    estimator_->reset(config_.grid.area.center(), /*position_known=*/false);
    if (config_.sync == SyncMode::Mrmm && !is_sync_robot_) {
        clock_offset_s_ = noise_rng_.gaussian(0.0, config_.clock_skew_sigma_s);
    } else {
        clock_offset_s_ = 0.0;
    }
    node_.radio().medium().obs().trace.instant(
        node_.simulator().now(), "cocoa", "reboot",
        static_cast<std::int64_t>(node_.id()));
}

void CocoaAgent::retune(sim::Duration period, sim::Duration window) {
    if (window <= sim::Duration::zero() || window >= period) {
        throw std::invalid_argument("CocoaAgent::retune: need 0 < window < period");
    }
    config_.period = period;
    config_.window = window;
}

void CocoaAgent::schedule_period(std::uint32_t seq) {
    // Coarse clocks drift a little every period; SYNC messages re-align them
    // (§2.3). The sync robot's clock defines the time-line.
    if (config_.sync == SyncMode::Mrmm && !is_sync_robot_) {
        clock_offset_s_ += noise_rng_.gaussian(0.0, config_.clock_skew_sigma_s);
    }
    const sim::TimePoint wake_at =
        period_start_ + clock_offset() - config_.wake_guard;
    node_.simulator().schedule_at(
        std::max(node_.simulator().now(), wake_at), [this, seq] { on_wake(seq); },
        sim::make_tag(sim::EventKind::kAgentWake, node_.id(), 0, 0, seq));
}

void CocoaAgent::on_wake(std::uint32_t seq) {
    tick();
    if (!node_.radio().awake()) {
        node_.radio().wake();
    }

    sim::Simulator& sim = node_.simulator();
    const sim::TimePoint start = period_start_ + clock_offset();

    if (is_sync_robot_ && mcast_ != nullptr) {
        // Rebuild the mesh while everyone is awake, then push SYNC down it.
        mcast_->refresh_now(config_.sync_group);
        sim.schedule_at(
            std::max(sim.now(), start + config_.sync_settle),
            [this, seq] { send_sync(seq); },
            sim::make_tag(sim::EventKind::kAgentSyncSettle, node_.id(), 0, 0, seq));
    }

    const bool blind_beacons_now =
        config_.role == Role::Blind && config_.blind_beaconing &&
        estimator_->ever_fixed() &&
        estimator_->last_fix_spread_m() <= config_.blind_beacon_max_spread_m &&
        config_.mode == LocalizationMode::Combined;
    if (config_.role == Role::Anchor || blind_beacons_now) {
        // k beacons spread across the transmit window t (§2.3 uses k = 3 for
        // delivery reliability); CSMA adds its own dispersion.
        for (int i = 0; i < config_.beacons_per_window; ++i) {
            const sim::Duration offset =
                config_.window * static_cast<std::int64_t>(i + 1) /
                static_cast<std::int64_t>(config_.beacons_per_window + 1);
            sim.schedule_at(
                std::max(sim.now(), start + offset),
                [this, seq, i] { send_beacon(seq, i); },
                sim::make_tag(sim::EventKind::kAgentBeacon, node_.id(),
                              static_cast<std::uint32_t>(i), 0, seq));
        }
    }

    const sim::TimePoint window_end = start + config_.window + config_.window_slack;
    sim.schedule_at(
        std::max(sim.now(), window_end), [this, seq] { on_window_end(seq); },
        sim::make_tag(sim::EventKind::kAgentWindowEnd, node_.id(), 0, 0, seq));
}

void CocoaAgent::send_sync(std::uint32_t seq) {
    net::SyncPayload sync;
    sync.period_s = config_.period.to_seconds();
    sync.window_s = config_.window.to_seconds();
    sync.seq = seq;
    sync.period_start = period_start_;
    // Drawn from the medium's packet pool: one SYNC per round per
    // leader, recycled once the multicast fan-out lets go of it.
    auto inner = node_.radio().medium().packet_pool().acquire();
    inner->src = node_.id();
    inner->port = net::Port::Test;  // carried inside McastData, not demuxed
    inner->payload_bytes = config_.sync_bytes;
    inner->payload = sync;
    mcast_->send_data(config_.sync_group, std::move(inner));
}

void CocoaAgent::send_beacon(std::uint32_t seq, int index) {
    if (!node_.radio().awake()) return;  // defensive: schedule drift past sleep
    tick();  // beacon carries the *current* device position

    net::BeaconPayload beacon;
    beacon.anchor_id = node_.id();
    if (config_.role == Role::Anchor) {
        // The localization device (laser ranger + SLAM) reports the position
        // with small Gaussian error.
        beacon.anchor_position =
            true_position() +
            geom::Vec2{noise_rng_.gaussian(0.0, config_.anchor_position_sigma_m),
                       noise_rng_.gaussian(0.0, config_.anchor_position_sigma_m)};
    } else {
        // Blind-beaconing extension: advertise our own estimate; its error
        // becomes part of every receiver's constraint.
        beacon.anchor_position = estimate();
        ++stats_.blind_beacons_sent;
    }
    beacon.window_seq = seq;
    beacon.beacon_index = static_cast<std::uint8_t>(index);

    net::Packet packet;
    packet.port = net::Port::Beacon;
    packet.payload_bytes = config_.beacon_bytes;
    packet.payload = beacon;
    node_.radio().send(std::move(packet));
    ++stats_.beacons_sent;
    node_.radio().medium().obs().trace.instant(
        node_.simulator().now(), "cocoa", "beacon_tx",
        static_cast<std::int64_t>(node_.id()),
        {{"seq", static_cast<double>(seq)}, {"index", static_cast<double>(index)}});
}

void CocoaAgent::on_beacon(const net::Packet& packet, const net::RxInfo& info) {
    if (config_.role != Role::Blind || config_.mode == LocalizationMode::OdometryOnly) {
        return;
    }
    const auto* beacon = std::get_if<net::BeaconPayload>(&packet.payload);
    if (beacon == nullptr) return;
    ++stats_.beacons_received;
    node_.radio().medium().obs().trace.instant(
        node_.simulator().now(), "cocoa", "beacon_rx",
        static_cast<std::int64_t>(node_.id()),
        {{"from", static_cast<double>(beacon->anchor_id)},
         {"rssi_dbm", info.rssi_dbm}});

    if (!estimator_->collects_window_beacons()) {
        // Continuous fusion: every beacon range updates the belief at once.
        tick();  // bring the prediction up to the beacon's arrival time
        estimator_->observe_beacon({beacon->anchor_position, info.rssi_dbm});
        return;
    }
    window_beacons_.push_back({beacon->anchor_position, info.rssi_dbm});
}

void CocoaAgent::on_window_end(std::uint32_t seq) {
    tick();

    if (config_.role == Role::Blind && config_.mode != LocalizationMode::OdometryOnly) {
        if (estimator_->collects_window_beacons()) {
            // Heading is sampled at window end either way (see AgentConfig
            // for the heading_correction_at_fix rationale): a deferred fix
            // must re-anchor with the heading the inline computation would
            // have used.
            const double heading = config_.heading_correction_at_fix
                                       ? node_.mobility().heading()
                                       : odometry_.heading();
            if (config_.fix_pool != nullptr && estimator_->pool_safe_fix() &&
                !node_.radio().medium().obs().trace.enabled()) {
                // Batched path: snapshot the window's beacons and hand the
                // pure fix computation (no RNG, no shared state beyond this
                // agent's own estimator) to the pool. Everything after this
                // branch — failover, sleep, scheduling the next period — is
                // independent of the fix outcome, so the event time-line
                // continues at once and the other robots' window_end events
                // at this timestamp get their updates in flight alongside
                // this one.
                fix_pending_ = true;
                pending_ready_.store(false, std::memory_order_relaxed);
                pending_heading_ = heading;
                config_.fix_pool->submit(
                    [this, beacons = std::move(window_beacons_)] {
                        pending_fix_ = estimator_->compute_fix(beacons);
                        pending_ready_.store(true, std::memory_order_release);
                        pending_ready_.notify_one();
                    });
                window_beacons_.clear();  // moved-from: make it empty again
            } else {
                const std::optional<Fix> fix =
                    estimator_->compute_fix(window_beacons_);
                window_beacons_.clear();
                apply_fix_outcome(fix, heading);
            }
        } else {
            // Continuous-fusion backend: close this window's books. The
            // legacy LocalizationMode::Ekf keeps none (tracked == false).
            const est::WindowSummary summary = estimator_->end_window();
            if (summary.tracked) {
                if (summary.fixed) {
                    ++stats_.fixes;
                    const geom::Vec2 position = estimator_->estimate();
                    node_.radio().medium().obs().trace.instant(
                        node_.simulator().now(), "cocoa", "fix",
                        static_cast<std::int64_t>(node_.id()),
                        {{"x", position.x},
                         {"y", position.y},
                         {"beacons", static_cast<double>(summary.beacons_used)},
                         {"err_m", (position - true_position()).norm()}});
                } else {
                    ++stats_.windows_without_fix;
                    node_.radio().medium().obs().trace.instant(
                        node_.simulator().now(), "cocoa", "no_fix",
                        static_cast<std::int64_t>(node_.id()));
                }
            }
        }
    }

    // Sync-robot failover: a backup that has heard nothing from the Sync
    // robot for (2 * rank + 2) periods takes over SYNC duties.
    if (config_.sync == SyncMode::Mrmm && !is_sync_robot_ && config_.sync_rank > 0 &&
        mcast_ != nullptr) {
        const sim::Duration silence = node_.simulator().now() - last_sync_heard_;
        const sim::Duration patience =
            config_.period * static_cast<std::int64_t>(2 * config_.sync_rank + 2);
        if (silence > patience) {
            is_sync_robot_ = true;
            ++stats_.sync_takeovers;
            mcast_->start_source(config_.sync_group);
        }
    }

    if (config_.sleep_coordination) {
        node_.radio().sleep();
    }
    period_start_ += config_.period;
    schedule_period(seq + 1);
}

void CocoaAgent::apply_fix_outcome(const std::optional<Fix>& fix, double heading) {
    estimator_->apply_fix(fix, heading);
    if (fix.has_value()) {
        ++stats_.fixes;
        node_.radio().medium().obs().trace.instant(
            node_.simulator().now(), "cocoa", "fix",
            static_cast<std::int64_t>(node_.id()),
            {{"x", fix->position.x},
             {"y", fix->position.y},
             {"beacons", static_cast<double>(fix->beacons_used)},
             {"err_m", (fix->position - true_position()).norm()}});
        // A fix that re-anchors the dead reckoning must not be double-counted
        // as odometry displacement by the next predict() (invisible to the
        // grid backend, which never predicts).
        last_odometry_position_ = odometry_.position();
    } else {
        // "If certain robots do not receive any beacons, they continue
        // with their old estimated position" (§2.3).
        ++stats_.windows_without_fix;
        node_.radio().medium().obs().trace.instant(
            node_.simulator().now(), "cocoa", "no_fix",
            static_cast<std::int64_t>(node_.id()));
    }
}

void CocoaAgent::resolve_pending_fix() {
    if (!fix_pending_) return;
    // Block until the worker publishes the result (usually long done: a
    // whole inter-window period of events separates submission from the
    // first resolution point).
    pending_ready_.wait(false, std::memory_order_acquire);
    fix_pending_ = false;
    apply_fix_outcome(pending_fix_, pending_heading_);
    pending_fix_.reset();
}

void CocoaAgent::on_mcast_deliver(const net::Packet& inner) {
    const auto* sync = std::get_if<net::SyncPayload>(&inner.payload);
    if (sync == nullptr) return;
    ++stats_.syncs_received;
    node_.radio().medium().obs().trace.instant(
        node_.simulator().now(), "cocoa", "sync_rx",
        static_cast<std::int64_t>(node_.id()),
        {{"seq", static_cast<double>(sync->seq)}});
    sync_seq_ = sync->seq;
    last_sync_heard_ = node_.simulator().now();
    // Re-align the local clock and phase to the sync robot's time-line; the
    // residual models the precision of coarse multicast synchronization.
    // Also adopt the advertised T and t, so an operator can retune them at
    // runtime (§2.3): the change takes effect when this period ends.
    clock_offset_s_ = noise_rng_.gaussian(0.0, config_.sync_residual_sigma_s);
    config_.period = sim::Duration::seconds(sync->period_s);
    config_.window = sim::Duration::seconds(sync->window_s);
    // Re-anchor phase, but never backwards: a straggler SYNC copy arriving
    // after this period's books closed must not reopen it.
    period_start_ = std::max(period_start_, sync->period_start);
}

namespace {
constexpr std::uint32_t kMarkAgent = 0x41474e54u;  // "AGNT"
}

void CocoaAgent::save_state(sim::ckpt::Writer& w) const {
    // Fold any pooled fix first: the straight run folds it at its next
    // resolution point, so the settled state is the canonical one.
    resolve_pending();
    w.mark(kMarkAgent);
    w.b(is_sync_robot_);
    w.dur(config_.period);  // SYNC retuning mutates these two at runtime
    w.dur(config_.window);
    odometry_.save(w);
    estimator_->save_state(w);
    w.f64(last_odometry_position_.x);
    w.f64(last_odometry_position_.y);
    w.time(last_predict_time_);
    noise_rng_.save(w);
    w.u64(window_beacons_.size());
    for (const BeaconObservation& beacon : window_beacons_) {
        w.f64(beacon.anchor_position.x);
        w.f64(beacon.anchor_position.y);
        w.f64(beacon.rssi_dbm);
    }
    w.f64(clock_offset_s_);
    w.time(period_start_);
    w.time(last_sync_heard_);
    w.u32(sync_seq_);
    w.u64(stats_.beacons_sent);
    w.u64(stats_.blind_beacons_sent);
    w.u64(stats_.beacons_received);
    w.u64(stats_.fixes);
    w.u64(stats_.windows_without_fix);
    w.u64(stats_.syncs_received);
    w.u64(stats_.sync_takeovers);
}

void CocoaAgent::load_state(sim::ckpt::Reader& r) {
    r.expect(kMarkAgent);
    is_sync_robot_ = r.b();
    config_.period = r.dur();
    config_.window = r.dur();
    odometry_.load(r);
    estimator_->load_state(r);
    last_odometry_position_.x = r.f64();
    last_odometry_position_.y = r.f64();
    last_predict_time_ = r.time();
    noise_rng_.load(r);
    window_beacons_.clear();
    for (std::uint64_t n = r.u64(); n > 0; --n) {
        BeaconObservation beacon;
        beacon.anchor_position.x = r.f64();
        beacon.anchor_position.y = r.f64();
        beacon.rssi_dbm = r.f64();
        window_beacons_.push_back(beacon);
    }
    clock_offset_s_ = r.f64();
    period_start_ = r.time();
    last_sync_heard_ = r.time();
    sync_seq_ = r.u32();
    stats_.beacons_sent = r.u64();
    stats_.blind_beacons_sent = r.u64();
    stats_.beacons_received = r.u64();
    stats_.fixes = r.u64();
    stats_.windows_without_fix = r.u64();
    stats_.syncs_received = r.u64();
    stats_.sync_takeovers = r.u64();
}

sim::InplaceCallback CocoaAgent::rebuild_event(const sim::EventTag& tag) {
    const auto seq = static_cast<std::uint32_t>(tag.a);
    switch (static_cast<sim::EventKind>(tag.kind)) {
        case sim::EventKind::kAgentWake:
            return sim::InplaceCallback([this, seq] { on_wake(seq); });
        case sim::EventKind::kAgentSyncSettle:
            return sim::InplaceCallback([this, seq] { send_sync(seq); });
        case sim::EventKind::kAgentBeacon: {
            const int i = static_cast<int>(tag.x);
            return sim::InplaceCallback([this, seq, i] { send_beacon(seq, i); });
        }
        case sim::EventKind::kAgentWindowEnd:
            return sim::InplaceCallback([this, seq] { on_window_end(seq); });
        default:
            throw std::logic_error("CocoaAgent::rebuild_event: unexpected tag kind");
    }
}

geom::Vec2 CocoaAgent::estimate() const {
    resolve_pending();
    if (config_.role == Role::Anchor) {
        return true_position();  // from the localization device
    }
    if (config_.mode == LocalizationMode::OdometryOnly) {
        return odometry_.position();
    }
    return estimator_->estimate();
}

}  // namespace cocoa::core
