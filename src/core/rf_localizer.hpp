#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bayes_grid.hpp"
#include "geom/vec2.hpp"
#include "obs/counters.hpp"
#include "phy/pdf_table.hpp"

namespace cocoa::core {

/// One received RF beacon, as seen by a blind robot: the anchor coordinates
/// carried in the packet plus the measured RSSI.
struct BeaconObservation {
    geom::Vec2 anchor_position;
    double rssi_dbm = 0.0;
};

/// A completed position fix.
struct Fix {
    geom::Vec2 position;
    int beacons_used = 0;       ///< observations whose RSSI had a usable PDF bin
    double posterior_spread_m = 0.0;  ///< RMS spread / residual (confidence)
};

/// Which estimator turns beacon observations into a fix. §5: "CoCoA is not
/// tied to a specific localization technique ... Other approaches could be
/// integrated in CoCoA as well" — these are drop-in alternatives sharing the
/// PDF Table for RSSI->distance conversion.
enum class RfTechnique {
    BayesianGrid,      ///< the paper's choice (Sichitiu & Ramadurai, Eqs. 1-3)
    WeightedCentroid,  ///< cheap baseline: distance-weighted anchor centroid
    LeastSquares,      ///< Gauss-Newton multilateration on ranged distances
};

/// Computes window-end position fixes from collected beacons, per §2.2:
/// start from the uniform prior, fold in one constraint per beacon via the
/// PDF Table, and — if at least `min_beacons` usable beacons were heard —
/// return the posterior mean as the fix.
class RfLocalizer {
  public:
    struct Options {
        RfTechnique technique = RfTechnique::BayesianGrid;
        int min_beacons = 3;
        /// Beacons weaker than this are ignored outright.
        double rssi_cutoff_dbm = -std::numeric_limits<double>::infinity();
        /// Also use PDF bins whose Gaussian fit failed (the Fig. 1(b)
        /// regime). Defaults to on: the paper's algorithm looks up the PDF
        /// table for *every* received beacon — §4.3.1 explicitly observes
        /// that "bad beacons received from long distances" can deteriorate
        /// accuracy, which only happens if they are used. The wide fitted
        /// Gaussians of far bins act as weak constraints that disambiguate
        /// single-anchor ring posteriors; occasionally they mislead (the
        /// paper's T = 10 s anomaly). Disable for the Gaussian-only ablation.
        bool use_non_gaussian_bins = true;
    };

    RfLocalizer(const GridConfig& grid_config, std::shared_ptr<const phy::PdfTable> table,
                Options options);
    RfLocalizer(const GridConfig& grid_config, std::shared_ptr<const phy::PdfTable> table);

    /// Runs Eqs. (1)-(3) over the observations. Returns std::nullopt when
    /// fewer than min_beacons observations had usable PDF bins (the robot
    /// then keeps its previous estimate, as the paper prescribes).
    std::optional<Fix> compute_fix(const std::vector<BeaconObservation>& observations);

    /// The posterior of the most recent compute_fix call (diagnostics).
    const BayesGrid& grid() const { return grid_; }
    const Options& options() const { return options_; }
    const phy::PdfTable& table() const { return *table_; }

    struct Stats {
        std::uint64_t fixes = 0;
        std::uint64_t rejected_too_few = 0;
        std::uint64_t beacons_without_bin = 0;   ///< RSSI outside the PDF table
        std::uint64_t beacons_non_gaussian = 0;  ///< skipped Fig. 1(b) bins
    };
    const Stats& stats() const { return stats_; }
    /// Restores checkpointed counters verbatim. The grid itself is transient
    /// (compute_fix resets it to uniform before every use) and needs no state.
    void set_stats(const Stats& s) { stats_ = s; }

    /// Registers this localizer's counters under `prefix`
    /// (e.g. "node.3.localizer.").
    void register_counters(obs::CounterRegistry& registry,
                           const std::string& prefix) const {
        registry.add(prefix + "fixes", &stats_.fixes);
        registry.add(prefix + "rejected_too_few", &stats_.rejected_too_few);
        registry.add(prefix + "beacons_without_bin", &stats_.beacons_without_bin);
        registry.add(prefix + "beacons_non_gaussian", &stats_.beacons_non_gaussian);
    }

  private:
    /// One admitted observation after PDF-table filtering.
    struct RangedBeacon {
        geom::Vec2 anchor;
        double distance_m = 0.0;  ///< the PDF bin's fitted mean
        double sigma_m = 0.0;     ///< the bin's fitted sigma
    };

    Fix bayesian_fix(const std::vector<RangedBeacon>& beacons);
    Fix centroid_fix(const std::vector<RangedBeacon>& beacons) const;
    Fix least_squares_fix(const std::vector<RangedBeacon>& beacons) const;

    BayesGrid grid_;
    std::shared_ptr<const phy::PdfTable> table_;
    Options options_;
    Stats stats_;
};

}  // namespace cocoa::core
