#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "core/rf_localizer.hpp"
#include "est/estimator.hpp"
#include "mobility/odometry.hpp"
#include "multicast/odmrp.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/thread_pool.hpp"

namespace cocoa::core {

/// Whether a robot carries a localization device (laser ranger + SLAM).
enum class Role { Anchor, Blind };

/// Which estimator a blind robot runs — the three systems compared in §4,
/// plus the continuous-fusion EKF alternative from the related work (§5).
enum class LocalizationMode {
    OdometryOnly,  ///< §4.1: initial pose given, dead reckoning only
    RfOnly,        ///< §4.2: Bayesian RF fixes, held constant between windows
    Combined,      ///< §4.3: CoCoA — RF fixes + odometry in between
    Ekf,           ///< extension: EKF fusing odometry with each beacon range
};

/// How the team agrees on the Fig. 2 time-line.
enum class SyncMode {
    PerfectClock,  ///< idealized common clock (no sync traffic, no skew)
    Mrmm,          ///< coarse clocks + SYNC messages down the MRMM mesh (§2.3)
};

struct AgentConfig {
    Role role = Role::Blind;
    LocalizationMode mode = LocalizationMode::Combined;
    SyncMode sync = SyncMode::Mrmm;

    sim::Duration period = sim::Duration::seconds(100.0);  ///< T
    sim::Duration window = sim::Duration::seconds(3.0);    ///< t
    int beacons_per_window = 3;                            ///< k
    int min_beacons_for_fix = 3;

    GridConfig grid;
    mobility::OdometryConfig odometry;
    /// Which RF technique turns window beacons into a fix (§5 pluggability).
    RfTechnique technique = RfTechnique::BayesianGrid;
    /// Which belief backend a Combined-mode blind robot runs behind the
    /// est::Estimator interface (grid = the paper's Bayesian grid; see
    /// docs/estimators.md for the EKF-CL and LinCvx alternatives). Modes
    /// other than Combined pin their own backend: RfOnly/OdometryOnly use the
    /// grid path, LocalizationMode::Ekf the legacy continuous EKF.
    est::Backend estimator = est::Backend::Grid;
    /// EKF mode process noise: fractional error on each dead-reckoned
    /// displacement, plus a floor variance accrued per second. The floor is
    /// deliberately generous: odometry drift is bias-driven (grows faster
    /// than a random walk), and an overconfident filter under-weights its
    /// corrections.
    double ekf_q_displacement_frac = 0.1;
    double ekf_q_floor_var_per_s = 0.6;  ///< m^2 / s
    /// EKF innovation gate (standard deviations); bad beacons beyond it are
    /// ignored.
    double ekf_gate_sigmas = 4.0;
    /// Far-field (non-Gaussian-bin) beacons carry real information even for
    /// the EKF: with the sigma floor, the innovation gate and rejection
    /// inflation they resolve single-anchor tangential ambiguity the same
    /// way they disambiguate the grid's ring posteriors.
    bool ekf_use_non_gaussian_bins = true;
    /// Floor on the effective range sigma: the PDF-table sigma understates
    /// the true measurement error (anchor SLAM noise, motion during the
    /// window), and an overconfident filter gates itself to death.
    double ekf_min_range_sigma_m = 2.0;
    /// Covariance inflation (m^2) applied whenever the gate rejects a
    /// measurement: persistent disagreement must reopen the filter.
    double ekf_reject_inflation_var = 2.0;
    /// EKF-CL backend: covariance inflation (m^2) at the end of a window in
    /// which no measurement was accepted (loss burst / anchor outage).
    double ekf_missed_window_var = 4.0;
    /// LinCvx backend: minimum usable beacons for an opportunistic fix.
    int lincvx_min_beacons = 1;
    /// Ignore beacons weaker than this RSSI (on top of the PDF-table rules).
    double beacon_rssi_cutoff_dbm = -std::numeric_limits<double>::infinity();
    /// Admit beacons whose PDF bin failed the Gaussian fit (the paper's "bad
    /// beacons" from beyond ~40 m). See RfLocalizer::Options.
    bool use_non_gaussian_bins = true;

    /// Sleep radios between windows (CoCoA coordination). When false the
    /// radio idles through the whole period — the Fig. 9(b) baseline.
    bool sleep_coordination = true;
    /// Robots wake this early before the nominal window start, absorbing
    /// clock skew.
    sim::Duration wake_guard = sim::Duration::seconds(1.0);
    /// Fixes are computed (and radios sleep) this long after the nominal
    /// window end, so straggler beacons still count.
    sim::Duration window_slack = sim::Duration::seconds(0.5);

    /// Per-period random-walk clock skew (Mrmm mode; zero for PerfectClock).
    double clock_skew_sigma_s = 0.1;
    /// Residual offset right after a SYNC re-alignment.
    double sync_residual_sigma_s = 0.02;
    /// Mesh settle delay between the sync robot's JOIN QUERY refresh and its
    /// SYNC data packet.
    sim::Duration sync_settle = sim::Duration::millis(150);

    /// Gaussian error of the anchor's own localization device (SLAM).
    double anchor_position_sigma_m = 0.25;
    std::size_t beacon_bytes = 24;
    std::size_t sync_bytes = 16;

    /// §6 future-work extension: blind robots that are confidently localized
    /// also transmit beacons (at their *estimated* position), reducing the
    /// number of anchors needed — at the risk of propagating bad positions.
    bool blind_beaconing = false;
    /// Confidence gate for blind beaconing: only beacon while the last fix's
    /// posterior RMS spread was at most this.
    double blind_beacon_max_spread_m = 8.0;

    /// Give the robot its true initial pose (the paper does this for the
    /// odometry-only experiment).
    bool initial_pose_known = false;
    /// Re-anchor the odometry heading at each RF fix (matches the paper's
    /// Glomosim odometry model, whose per-period error does not compound
    /// across fixes). Disable for the drifting-heading ablation.
    bool heading_correction_at_fix = true;

    /// When set, window-end Bayesian grid updates run as pool tasks instead
    /// of inline on the event thread: the window's beacons are snapshotted,
    /// the fix computes on a worker, and its side effects are folded in at
    /// the agent's next deterministic resolution point (tick, estimate or
    /// stats read — whichever the event time-line reaches first). During a
    /// beacon round every blind robot's grid update is in flight at once, so
    /// the per-round grid cost drops from sum-over-robots to roughly
    /// max-over-robots. Results are byte-identical to inline fixes at any
    /// pool size; see docs/performance.md. Ignored (fixes stay inline) while
    /// an event trace is recording, because deferral would reorder trace
    /// rows against other events at the same timestamp.
    sim::ThreadPool* fix_pool = nullptr;

    net::GroupId sync_group = 1;
    /// Sync-robot failover rank: -1 = not a candidate, 0 = primary (set via
    /// the constructor's is_sync_robot), k > 0 = k-th backup. A backup that
    /// hears no SYNC for (2k + 2) periods promotes itself to Sync robot —
    /// the staggering keeps two backups from promoting together. Addresses
    /// the single-point-of-failure in the paper's §2.3 design.
    int sync_rank = -1;
};

/// The per-robot CoCoA protocol agent (§2): executes the Fig. 2 time-line
/// (wake, beacon/receive, fix, sleep), maintains the position estimate, and
/// — on the sync robot — drives MRMM mesh refreshes and SYNC dissemination.
class CocoaAgent {
  public:
    struct Stats {
        std::uint64_t beacons_sent = 0;
        std::uint64_t blind_beacons_sent = 0;  ///< blind-beaconing extension
        std::uint64_t beacons_received = 0;
        std::uint64_t fixes = 0;
        std::uint64_t windows_without_fix = 0;
        std::uint64_t syncs_received = 0;
        std::uint64_t sync_takeovers = 0;  ///< failover promotions on this robot
    };

    /// `mcast` may be null in PerfectClock mode; `is_sync_robot` selects the
    /// one robot that originates SYNC messages.
    CocoaAgent(net::Node& node, const AgentConfig& config,
               std::shared_ptr<const phy::PdfTable> table,
               multicast::MulticastNode* mcast, bool is_sync_robot);

    CocoaAgent(const CocoaAgent&) = delete;
    CocoaAgent& operator=(const CocoaAgent&) = delete;

    /// Joins any in-flight pooled fix job: the worker writes into this
    /// object, so destruction must wait for it (the result is then folded in
    /// normally, keeping stats exact even at teardown).
    ~CocoaAgent();

    /// Schedules the agent's first period; call once before running.
    void start();

    /// Changes the beacon period T and transmit window t from the next
    /// period on. Meant for the Sync robot: the new values ride the next
    /// SYNC message and the whole team adopts them (§2.3's operator
    /// retuning). Throws std::invalid_argument unless 0 < window < period.
    void retune(sim::Duration period, sim::Duration window);

    /// Advances true mobility (and odometry) to the current simulation time.
    /// Called by the scenario's tick loop and internally before fixes.
    void tick();

    // --- fault-injection hooks (FaultInjector; no-ops otherwise) -----------

    /// Cold-restart after a crash-with-reboot fault: the robot forgets its
    /// pose estimate (odometry re-anchors at the area centre, the EKF opens
    /// wide, pending window beacons drop) and, under MRMM sync, restarts
    /// with a fresh clock error. The period schedule itself keeps running —
    /// the robot rejoins the time-line at its next window (or the next SYNC).
    /// The caller is responsible for powering the radio back on.
    void reboot();

    /// Adds `seconds` to this robot's clock error (coordination drift fault).
    void inject_clock_offset(double seconds) { clock_offset_s_ += seconds; }
    /// Current clock error vs true time, in seconds (tests/metrics).
    double clock_offset_seconds() const { return clock_offset_s_; }

    /// Scales the odometry noise sigmas (sensor-degradation fault);
    /// 1.0 restores nominal noise bit-exactly.
    void degrade_odometry(double scale) { odometry_.set_noise_scale(scale); }

    Role role() const { return config_.role; }
    net::NodeId id() const { return node_.id(); }
    net::Node& node() { return node_; }

    /// The robot's current position estimate under the configured mode.
    geom::Vec2 estimate() const;
    /// Ground-truth position (for metrics only).
    geom::Vec2 true_position() const { return node_.mobility().position(); }
    /// Localization error: |estimate - truth|.
    double error() const { return geom::distance(estimate(), true_position()); }

    const Stats& stats() const {
        resolve_pending();
        return stats_;
    }
    const RfLocalizer::Stats& localizer_stats() const {
        resolve_pending();
        return estimator_->localizer_stats();
    }
    bool ever_fixed() const {
        resolve_pending();
        return estimator_->ever_fixed();
    }
    /// The belief backend (tests/benches peek at backend-specific state).
    const est::Estimator& estimator() const {
        resolve_pending();
        return *estimator_;
    }
    bool is_sync_robot() const { return is_sync_robot_; }
    sim::Duration period() const { return config_.period; }
    sim::Duration window() const { return config_.window; }

    /// Checkpoint: serializes the agent's protocol and belief state (clock,
    /// period phase, window beacons, odometry, estimator backend, stats). A
    /// pooled fix in flight is folded in first — observably invisible, since
    /// the straight run folds it at its next resolution point anyway.
    void save_state(sim::ckpt::Writer& w) const;
    void load_state(sim::ckpt::Reader& r);
    /// Rebuilds the in-kernel callback for one of this agent's tagged events
    /// (kAgentWake / kAgentSyncSettle / kAgentBeacon / kAgentWindowEnd).
    sim::InplaceCallback rebuild_event(const sim::EventTag& tag);

  private:
    void schedule_period(std::uint32_t seq);
    void on_wake(std::uint32_t seq);
    void send_sync(std::uint32_t seq);
    void on_window_end(std::uint32_t seq);
    void send_beacon(std::uint32_t seq, int index);
    void on_beacon(const net::Packet& packet, const net::RxInfo& info);
    void on_mcast_deliver(const net::Packet& inner);
    sim::Duration clock_offset() const { return sim::Duration::seconds(clock_offset_s_); }

    /// Folds a pooled fix job's outcome into the agent (blocking on the
    /// worker if it has not finished). Every externally observable read goes
    /// through a resolution point, so *when* the worker ran is invisible:
    /// the fold always happens at the same event-time-line position as the
    /// inline computation would have, making pooled runs byte-identical to
    /// `fix_pool == nullptr` runs. No-op when no job is outstanding.
    void resolve_pending_fix();
    /// Const-accessor shim: resolution mutates bookkeeping, never the
    /// logically observable state the caller asked about.
    void resolve_pending() const {
        if (fix_pending_) const_cast<CocoaAgent*>(this)->resolve_pending_fix();
    }
    void apply_fix_outcome(const std::optional<Fix>& fix, double heading);

    net::Node& node_;
    AgentConfig config_;
    multicast::MulticastNode* mcast_;
    bool is_sync_robot_;
    std::shared_ptr<const phy::PdfTable> table_;
    mobility::OdometryEstimator odometry_;
    /// Belief backend; constructed in the ctor (after validation), never
    /// null afterwards. Owns the grid localizer in the default backend.
    std::unique_ptr<est::Estimator> estimator_;
    geom::Vec2 last_odometry_position_;
    sim::TimePoint last_predict_time_;
    sim::RandomStream noise_rng_;

    std::vector<BeaconObservation> window_beacons_;

    // --- deferred pooled fix (config_.fix_pool; see resolve_pending_fix) ---
    bool fix_pending_ = false;        ///< event thread: job submitted, unfolded
    std::atomic<bool> pending_ready_{false};  ///< worker -> event thread handoff
    std::optional<Fix> pending_fix_;  ///< worker-written result slot
    double pending_heading_ = 0.0;    ///< re-anchor heading, captured at window end

    double clock_offset_s_ = 0.0;   ///< this robot's clock error vs true time
    /// Nominal (sync-robot clock) start of the period being scheduled;
    /// advanced by the current T at each window end, re-anchored by SYNCs.
    sim::TimePoint period_start_;
    sim::TimePoint last_sync_heard_;
    std::uint32_t sync_seq_ = 0;
    Stats stats_;
};

}  // namespace cocoa::core
