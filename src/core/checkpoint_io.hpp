#pragma once

#include "core/scenario.hpp"
#include "core/swarm.hpp"

namespace cocoa::sim::ckpt {
class Writer;
class Reader;
}  // namespace cocoa::sim::ckpt

namespace cocoa::core {

/// Serializes a complete ScenarioConfig / SwarmConfig into a checkpoint
/// blob, field by field in declaration order, so a `--restore` in a fresh
/// process can rebuild the exact scenario the blob was taken from without
/// any side-channel configuration. Layout changes bump ckpt::kFormatVersion.
void save_config(sim::ckpt::Writer& w, const ScenarioConfig& config);
ScenarioConfig load_scenario_config(sim::ckpt::Reader& r);

void save_config(sim::ckpt::Writer& w, const SwarmConfig& config);
SwarmConfig load_swarm_config(sim::ckpt::Reader& r);

}  // namespace cocoa::core
