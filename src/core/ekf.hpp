#pragma once

#include "geom/vec2.hpp"

namespace cocoa::core {

/// A symmetric 2x2 covariance matrix.
struct Cov2 {
    double xx = 0.0;
    double xy = 0.0;
    double yy = 0.0;

    double trace() const { return xx + yy; }
};

/// Extended Kalman filter over a robot's 2-D position, fusing dead-reckoned
/// displacement (predict) with RSSI-ranged beacon distances (update).
///
/// This is the continuous-fusion alternative to CoCoA's windowed
/// reset-and-fix (§5 cites Kalman-based "Collective Localization"
/// [Roumeliotis & Bekey] as related work): instead of discarding the
/// estimate at each transmit window, every beacon immediately refines it.
/// The state is position only; heading error is folded into the process
/// noise.
class RangeEkf {
  public:
    /// Starts at `mean` with isotropic variance `var` (m^2). A large `var`
    /// encodes "unknown anywhere in the area".
    void reset(const geom::Vec2& mean, double var);

    /// Prediction step: the odometry says we moved by `delta`; process noise
    /// grows the uncertainty by `q_var` (m^2) isotropically.
    void predict(const geom::Vec2& delta, double q_var);

    /// Measurement step: a beacon from `anchor` ranged at `distance` with
    /// standard deviation `sigma` metres. Linearizes the range measurement
    /// around the current mean. Robust gating: innovations beyond
    /// `gate_sigmas` standard deviations are ignored (bad beacons).
    /// Returns whether the update was applied.
    bool update_range(const geom::Vec2& anchor, double distance, double sigma,
                      double gate_sigmas = 4.0);

    const geom::Vec2& mean() const { return mean_; }
    const Cov2& covariance() const { return cov_; }
    /// RMS position uncertainty (sqrt of covariance trace).
    double uncertainty() const;

    /// Restores a checkpointed filter state verbatim.
    void set_state(const geom::Vec2& mean, const Cov2& cov) {
        mean_ = mean;
        cov_ = cov;
    }

  private:
    geom::Vec2 mean_;
    Cov2 cov_{1e6, 0.0, 1e6};
};

}  // namespace cocoa::core
