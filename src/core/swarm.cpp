#include "core/swarm.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "mobility/waypoint.hpp"
#include "net/packet_io.hpp"
#include "sim/checkpoint.hpp"
#include "sim/event_tag.hpp"
#include "sim/simulator.hpp"

namespace cocoa::core {

double SwarmConfig::area_side_m() const {
    return std::sqrt(static_cast<double>(nodes) / density_per_m2);
}

void SwarmConfig::validate() const {
    if (nodes < 2) throw std::invalid_argument("SwarmConfig: nodes >= 2");
    if (density_per_m2 <= 0.0) throw std::invalid_argument("SwarmConfig: positive density");
    if (duration <= sim::Duration::zero() || beacon_period <= sim::Duration::zero() ||
        mobility_tick <= sim::Duration::zero()) {
        throw std::invalid_argument("SwarmConfig: positive durations");
    }
    if (awake_window <= sim::Duration::zero() || awake_window >= beacon_period) {
        throw std::invalid_argument("SwarmConfig: need 0 < awake_window < beacon_period");
    }
    if (min_speed <= 0.0 || max_speed < min_speed) {
        throw std::invalid_argument("SwarmConfig: need 0 < min_speed <= max_speed");
    }
    if (min_pause.is_negative() || max_pause < min_pause) {
        throw std::invalid_argument("SwarmConfig: need 0 <= min_pause <= max_pause");
    }
    if (mobility_threads < -1) {
        throw std::invalid_argument("SwarmConfig: mobility_threads >= -1");
    }
}

Swarm::Swarm(const SwarmConfig& config)
    : config_(config), sim_(config.seed), channel_(config.channel) {
    config_.validate();

    mac::MediumConfig medium_config = config_.medium;
    medium_config.register_node_counters = false;
    world_ = std::make_unique<net::World>(sim_, channel_, medium_config);

    const double side = config_.area_side_m();
    mobility::WaypointConfig mobility_config;
    mobility_config.area = geom::Rect::square(side);
    mobility_config.min_speed = config_.min_speed;
    mobility_config.max_speed = config_.max_speed;
    mobility_config.min_pause = config_.min_pause;
    mobility_config.max_pause = config_.max_pause;

    for (int i = 0; i < config_.nodes; ++i) {
        world_->add_node(mobility_config, config_.power);
    }

    // One beacon per node per period, phases spread deterministically across
    // the period so the air (and the event queue) never sees a global spike.
    sim::RandomStream phase_rng = sim_.rng().stream("swarm.phase");
    for (int i = 0; i < config_.nodes; ++i) {
        net::Node& node = world_->node(static_cast<net::NodeId>(i));
        const double phase_s =
            phase_rng.uniform(0.0, config_.beacon_period.to_seconds());
        sim_.schedule_in(
            sim::Duration::seconds(phase_s), [this, i] { beacon(i); },
            sim::make_tag(sim::EventKind::kSwarmBeacon,
                          static_cast<std::uint32_t>(i)));
        // Nodes are born asleep: the duty cycle owns all wake windows.
        node.radio().sleep();
    }

    // Global mobility tick: advance every node's waypoint motion and migrate
    // its spatial-index entry — the incremental note_position_moved path, one
    // O(1) update per node per tick, never a bulk invalidation.
    if (config_.mobility_threads != 0) {
        mobility_pool_ = std::make_unique<sim::ThreadPool>(
            sim::ThreadPool::resolve_threads(config_.mobility_threads));
        moved_flags_.resize(static_cast<std::size_t>(config_.nodes), 0);
    }
    sim_.schedule_in(config_.mobility_tick, [this] { on_mobility_tick(); },
                     sim::make_tag(sim::EventKind::kSwarmMobilityTick));
}

/// Drives one node's duty cycle: wake at its beacon phase, transmit one
/// beacon, sleep again once the radio drained its queue. Self-rescheduling.
void Swarm::beacon(int i) {
    net::Node& node = world_->node(static_cast<net::NodeId>(i));
    sim_.schedule_in(config_.beacon_period, [this, i] { beacon(i); },
                     sim::make_tag(sim::EventKind::kSwarmBeacon,
                                   static_cast<std::uint32_t>(i)));
    mac::Radio& radio = node.radio();
    if (radio.is_off() || radio.in_outage()) return;  // fault subsystem owns it
    radio.wake();
    net::BeaconPayload payload;
    payload.anchor_id = node.id();
    payload.anchor_position = node.mobility().position();
    net::Packet packet;
    packet.port = net::Port::Beacon;
    packet.payload_bytes = config_.beacon_bytes;
    packet.payload = payload;
    radio.send(std::move(packet));
    sim_.schedule_in(config_.awake_window, [this, i] { doze(i); },
                     sim::make_tag(sim::EventKind::kSwarmDoze,
                                   static_cast<std::uint32_t>(i)));
}

void Swarm::doze(int i) {
    mac::Radio& radio = world_->node(static_cast<net::NodeId>(i)).radio();
    if (radio.is_off() || radio.in_outage() || !radio.awake()) return;
    if (radio.state() == energy::RadioState::Tx || radio.tx_queue_depth() > 0) {
        // Congested neighbourhood: the beacon is still queued or on the
        // air (sleep() mid-transmission is a logic error). Check back in
        // a little while.
        sim_.schedule_in(config_.awake_window, [this, i] { doze(i); },
                         sim::make_tag(sim::EventKind::kSwarmDoze,
                                       static_cast<std::uint32_t>(i)));
        return;
    }
    radio.sleep();
}

// With mobility_threads != 0 the position integration is sharded across a
// thread pool: workers advance disjoint contiguous node ranges (per-robot
// state + per-robot RNG only, so no sharing) and record who moved; the
// index migrations — the only shared-state side effect — are then folded
// on the simulation thread in ascending node order, exactly the sequence
// the inline path produces. Byte-identical at any worker count.
void Swarm::on_mobility_tick() {
    const sim::TimePoint now = sim_.now();
    const auto& nodes = world_->nodes();
    if (mobility_pool_ == nullptr) {
        for (const auto& node : nodes) {
            // Paused (or turn-in-place) robots kept their position:
            // no index work to do, no reason to touch the tree entry.
            if (node->mobility().advance_position_to(now)) {
                world_->medium().note_position_moved(node->radio());
            }
        }
    } else {
        const std::size_t n = nodes.size();
        const std::size_t chunk =
            (n + mobility_pool_->size() - 1) / mobility_pool_->size();
        const auto* nodes_p = &nodes;
        auto* flags = &moved_flags_;
        for (std::size_t begin = 0; begin < n; begin += chunk) {
            const std::size_t end = std::min(n, begin + chunk);
            mobility_pool_->submit([nodes_p, flags, begin, end, now] {
                for (std::size_t i = begin; i < end; ++i) {
                    (*flags)[i] =
                        (*nodes_p)[i]->mobility().advance_position_to(now) ? 1 : 0;
                }
            });
        }
        mobility_pool_->wait_idle();
        for (std::size_t i = 0; i < n; ++i) {
            if (moved_flags_[i] != 0) {
                world_->medium().note_position_moved(nodes[i]->radio());
            }
        }
    }
    sim_.schedule_in(config_.mobility_tick, [this] { on_mobility_tick(); },
                     sim::make_tag(sim::EventKind::kSwarmMobilityTick));
}

void Swarm::run() { run_until(sim::TimePoint::origin() + config_.duration); }

void Swarm::run_until(sim::TimePoint t) { sim_.run_until(t); }

SwarmResult Swarm::result() const {
    SwarmResult result;
    result.nodes = config_.nodes;
    result.area_side_m = config_.area_side_m();
    result.sim_seconds = config_.duration.to_seconds();
    result.executed_events = sim_.executed_events();
    result.medium_stats = world_->medium().stats();
    result.index_stats = world_->medium().index_stats();
    result.flat_index_stats = world_->medium().flat_index_stats();
    result.radius_cache_stats = world_->medium().radius_cache_stats();
    for (const auto& node : world_->nodes()) {
        result.frames_delivered += node->radio().stats().rx_delivered;
    }
    if (config_.collect_final_positions) {
        result.final_positions.reserve(static_cast<std::size_t>(config_.nodes));
        for (const auto& node : world_->nodes()) {
            result.final_positions.push_back(node->mobility().position());
        }
    }
    return result;
}

namespace {
constexpr std::uint32_t kMarkSwarm = 0x5357524du;  // "SWRM"
constexpr std::uint32_t kMarkSwarmEnd = 0x4d525753u;
}  // namespace

void Swarm::save_state(sim::ckpt::Writer& w) const {
    w.mark(kMarkSwarm);
    net::PacketSaveCtx pkts;
    for (const auto& node : world_->nodes()) {
        node->mobility().save(w);
    }
    world_->medium().save_state(w, pkts);
    for (const auto& node : world_->nodes()) {
        node->radio().save_state(w, pkts);
    }
    sim_.save_kernel(w);
    world_->medium().save_pool_warmth(w);
    w.mark(kMarkSwarmEnd);
}

void Swarm::register_rebuilders(sim::ckpt::CallbackRegistry& reg) {
    reg.add(sim::EventKind::kSwarmBeacon, [this](const sim::EventTag& tag) {
        const int i = static_cast<int>(tag.node);
        return sim::InplaceCallback([this, i] { beacon(i); });
    });
    reg.add(sim::EventKind::kSwarmDoze, [this](const sim::EventTag& tag) {
        const int i = static_cast<int>(tag.node);
        return sim::InplaceCallback([this, i] { doze(i); });
    });
    reg.add(sim::EventKind::kSwarmMobilityTick, [this](const sim::EventTag&) {
        return sim::InplaceCallback([this] { on_mobility_tick(); });
    });
    world_->medium().register_rebuilders(reg);
}

void Swarm::load_state(sim::ckpt::Reader& r) {
    sim_.clear_pending();
    r.expect(kMarkSwarm);
    net::PacketLoadCtx pkts;
    pkts.pool = &world_->medium().packet_pool();
    for (const auto& node : world_->nodes()) {
        node->mobility().load(r);
    }
    world_->medium().load_state(r, pkts);
    for (const auto& node : world_->nodes()) {
        node->radio().load_state(r, pkts);
    }
    sim::ckpt::CallbackRegistry reg;
    register_rebuilders(reg);
    sim_.load_kernel(r, reg);
    world_->medium().load_pool_warmth(r);
    world_->medium().finish_restore();
    r.expect(kMarkSwarmEnd);
}

SwarmResult run_swarm(const SwarmConfig& config) {
    Swarm swarm(config);
    swarm.run();
    return swarm.result();
}

}  // namespace cocoa::core
