#include "core/swarm.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "mobility/waypoint.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "sim/thread_pool.hpp"

namespace cocoa::core {

double SwarmConfig::area_side_m() const {
    return std::sqrt(static_cast<double>(nodes) / density_per_m2);
}

void SwarmConfig::validate() const {
    if (nodes < 2) throw std::invalid_argument("SwarmConfig: nodes >= 2");
    if (density_per_m2 <= 0.0) throw std::invalid_argument("SwarmConfig: positive density");
    if (duration <= sim::Duration::zero() || beacon_period <= sim::Duration::zero() ||
        mobility_tick <= sim::Duration::zero()) {
        throw std::invalid_argument("SwarmConfig: positive durations");
    }
    if (awake_window <= sim::Duration::zero() || awake_window >= beacon_period) {
        throw std::invalid_argument("SwarmConfig: need 0 < awake_window < beacon_period");
    }
    if (min_speed <= 0.0 || max_speed < min_speed) {
        throw std::invalid_argument("SwarmConfig: need 0 < min_speed <= max_speed");
    }
    if (min_pause.is_negative() || max_pause < min_pause) {
        throw std::invalid_argument("SwarmConfig: need 0 <= min_pause <= max_pause");
    }
    if (mobility_threads < -1) {
        throw std::invalid_argument("SwarmConfig: mobility_threads >= -1");
    }
}

namespace {

/// Drives one node's duty cycle: wake at its beacon phase, transmit one
/// beacon, sleep again once the radio drained its queue. Self-rescheduling.
class SwarmBeaconer {
  public:
    SwarmBeaconer(net::Node& node, const SwarmConfig& config) : node_(node), config_(config) {}

    void start(sim::Duration phase) {
        node_.simulator().schedule_in(phase, [this] { beacon(); });
    }

  private:
    void beacon() {
        node_.simulator().schedule_in(config_.beacon_period, [this] { beacon(); });
        mac::Radio& radio = node_.radio();
        if (radio.is_off() || radio.in_outage()) return;  // fault subsystem owns it
        radio.wake();
        net::BeaconPayload payload;
        payload.anchor_id = node_.id();
        payload.anchor_position = node_.mobility().position();
        net::Packet packet;
        packet.port = net::Port::Beacon;
        packet.payload_bytes = config_.beacon_bytes;
        packet.payload = payload;
        radio.send(std::move(packet));
        node_.simulator().schedule_in(config_.awake_window, [this] { doze(); });
    }

    void doze() {
        mac::Radio& radio = node_.radio();
        if (radio.is_off() || radio.in_outage() || !radio.awake()) return;
        if (radio.state() == energy::RadioState::Tx || radio.tx_queue_depth() > 0) {
            // Congested neighbourhood: the beacon is still queued or on the
            // air (sleep() mid-transmission is a logic error). Check back in
            // a little while.
            node_.simulator().schedule_in(config_.awake_window, [this] { doze(); });
            return;
        }
        radio.sleep();
    }

    net::Node& node_;
    const SwarmConfig& config_;
};

}  // namespace

SwarmResult run_swarm(const SwarmConfig& config) {
    config.validate();
    sim::Simulator sim(config.seed);
    const phy::Channel channel(config.channel);

    mac::MediumConfig medium_config = config.medium;
    medium_config.register_node_counters = false;
    net::World world(sim, channel, medium_config);

    const double side = config.area_side_m();
    mobility::WaypointConfig mobility_config;
    mobility_config.area = geom::Rect::square(side);
    mobility_config.min_speed = config.min_speed;
    mobility_config.max_speed = config.max_speed;
    mobility_config.min_pause = config.min_pause;
    mobility_config.max_pause = config.max_pause;

    for (int i = 0; i < config.nodes; ++i) {
        world.add_node(mobility_config, config.power);
    }

    // One beacon per node per period, phases spread deterministically across
    // the period so the air (and the event queue) never sees a global spike.
    std::vector<std::unique_ptr<SwarmBeaconer>> beaconers;
    beaconers.reserve(static_cast<std::size_t>(config.nodes));
    sim::RandomStream phase_rng = sim.rng().stream("swarm.phase");
    for (int i = 0; i < config.nodes; ++i) {
        net::Node& node = world.node(static_cast<net::NodeId>(i));
        beaconers.push_back(std::make_unique<SwarmBeaconer>(node, config));
        const double phase_s =
            phase_rng.uniform(0.0, config.beacon_period.to_seconds());
        beaconers.back()->start(sim::Duration::seconds(phase_s));
        // Nodes are born asleep: the duty cycle owns all wake windows.
        node.radio().sleep();
    }

    // Global mobility tick: advance every node's waypoint motion and migrate
    // its spatial-index entry — the incremental note_position_moved path, one
    // O(1) update per node per tick, never a bulk invalidation.
    //
    // With mobility_threads != 0 the position integration is sharded across a
    // thread pool: workers advance disjoint contiguous node ranges (per-robot
    // state + per-robot RNG only, so no sharing) and record who moved; the
    // index migrations — the only shared-state side effect — are then folded
    // on the simulation thread in ascending node order, exactly the sequence
    // the inline path produces. Byte-identical at any worker count.
    std::unique_ptr<sim::ThreadPool> mobility_pool;
    std::vector<std::uint8_t> moved_flags;
    if (config.mobility_threads != 0) {
        mobility_pool = std::make_unique<sim::ThreadPool>(
            sim::ThreadPool::resolve_threads(config.mobility_threads));
        moved_flags.resize(static_cast<std::size_t>(config.nodes), 0);
    }
    struct MobilityTicker {
        net::World& world;
        sim::Duration tick;
        sim::ThreadPool* pool;
        std::vector<std::uint8_t>* moved;
        void operator()() {
            const sim::TimePoint now = world.simulator().now();
            const auto& nodes = world.nodes();
            if (pool == nullptr) {
                for (const auto& node : nodes) {
                    // Paused (or turn-in-place) robots kept their position:
                    // no index work to do, no reason to touch the tree entry.
                    if (node->mobility().advance_position_to(now)) {
                        world.medium().note_position_moved(node->radio());
                    }
                }
            } else {
                const std::size_t n = nodes.size();
                const std::size_t chunk =
                    (n + pool->size() - 1) / pool->size();
                const auto* nodes_p = &nodes;
                auto* flags = moved;
                for (std::size_t begin = 0; begin < n; begin += chunk) {
                    const std::size_t end = std::min(n, begin + chunk);
                    pool->submit([nodes_p, flags, begin, end, now] {
                        for (std::size_t i = begin; i < end; ++i) {
                            (*flags)[i] =
                                (*nodes_p)[i]->mobility().advance_position_to(now)
                                    ? 1
                                    : 0;
                        }
                    });
                }
                pool->wait_idle();
                for (std::size_t i = 0; i < n; ++i) {
                    if ((*flags)[i] != 0) {
                        world.medium().note_position_moved(nodes[i]->radio());
                    }
                }
            }
            world.simulator().schedule_in(tick, *this);
        }
    };
    sim.schedule_in(config.mobility_tick,
                    MobilityTicker{world, config.mobility_tick,
                                   mobility_pool.get(), &moved_flags});

    sim.run_until(sim::TimePoint::origin() + config.duration);

    SwarmResult result;
    result.nodes = config.nodes;
    result.area_side_m = side;
    result.sim_seconds = config.duration.to_seconds();
    result.executed_events = sim.executed_events();
    result.medium_stats = world.medium().stats();
    result.index_stats = world.medium().index_stats();
    result.flat_index_stats = world.medium().flat_index_stats();
    result.radius_cache_stats = world.medium().radius_cache_stats();
    for (const auto& node : world.nodes()) {
        result.frames_delivered += node->radio().stats().rx_delivered;
    }
    if (config.collect_final_positions) {
        result.final_positions.reserve(static_cast<std::size_t>(config.nodes));
        for (const auto& node : world.nodes()) {
            result.final_positions.push_back(node->mobility().position());
        }
    }
    return result;
}

}  // namespace cocoa::core
