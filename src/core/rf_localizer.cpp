#include "core/rf_localizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cocoa::core {

RfLocalizer::RfLocalizer(const GridConfig& grid_config,
                         std::shared_ptr<const phy::PdfTable> table, Options options)
    : grid_(grid_config), table_(std::move(table)), options_(options) {
    if (!table_) {
        throw std::invalid_argument("RfLocalizer: PDF table required");
    }
    if (options_.min_beacons < 1) {
        throw std::invalid_argument("RfLocalizer: min_beacons must be >= 1");
    }
}

RfLocalizer::RfLocalizer(const GridConfig& grid_config,
                         std::shared_ptr<const phy::PdfTable> table)
    : RfLocalizer(grid_config, std::move(table), Options{}) {}

std::optional<Fix> RfLocalizer::compute_fix(
    const std::vector<BeaconObservation>& observations) {
    std::vector<RangedBeacon> beacons;
    beacons.reserve(observations.size());
    for (const BeaconObservation& obs : observations) {
        if (obs.rssi_dbm < options_.rssi_cutoff_dbm) {
            ++stats_.beacons_without_bin;
            continue;
        }
        const phy::DistancePdf* pdf = table_->lookup(obs.rssi_dbm);
        if (pdf == nullptr) {
            ++stats_.beacons_without_bin;
            continue;
        }
        if (!pdf->gaussian_fit_ok && !options_.use_non_gaussian_bins) {
            ++stats_.beacons_non_gaussian;
            continue;
        }
        beacons.push_back({obs.anchor_position, pdf->mean_m, pdf->sigma_m});
    }
    if (static_cast<int>(beacons.size()) < options_.min_beacons) {
        ++stats_.rejected_too_few;
        return std::nullopt;
    }
    ++stats_.fixes;
    switch (options_.technique) {
        case RfTechnique::BayesianGrid:
            return bayesian_fix(beacons);
        case RfTechnique::WeightedCentroid:
            return centroid_fix(beacons);
        case RfTechnique::LeastSquares:
            return least_squares_fix(beacons);
    }
    return bayesian_fix(beacons);
}

Fix RfLocalizer::bayesian_fix(const std::vector<RangedBeacon>& beacons) {
    grid_.reset_uniform();
    for (const RangedBeacon& b : beacons) {
        phy::DistancePdf pdf;
        pdf.mean_m = b.distance_m;
        pdf.sigma_m = b.sigma_m;
        grid_.apply_constraint(b.anchor, pdf);
    }
    return Fix{grid_.mean(), static_cast<int>(beacons.size()), grid_.spread()};
}

Fix RfLocalizer::centroid_fix(const std::vector<RangedBeacon>& beacons) const {
    // Distance-weighted centroid: closer anchors dominate. A classic cheap
    // baseline (no grid, no iteration); biased toward anchor clusters.
    geom::Vec2 acc;
    double total = 0.0;
    for (const RangedBeacon& b : beacons) {
        const double w = 1.0 / ((b.distance_m + 1.0) * (b.distance_m + 1.0));
        acc += b.anchor * w;
        total += w;
    }
    geom::Vec2 est = total > 0.0 ? acc / total : grid_.area().center();
    est = grid_.area().clamp(est);
    // Confidence proxy: weighted RMS of ranged distances (a tight cluster of
    // close anchors is trustworthy).
    double spread = 0.0;
    for (const RangedBeacon& b : beacons) {
        spread += b.distance_m * b.distance_m;
    }
    spread = std::sqrt(spread / static_cast<double>(beacons.size()));
    return Fix{est, static_cast<int>(beacons.size()), spread};
}

Fix RfLocalizer::least_squares_fix(const std::vector<RangedBeacon>& beacons) const {
    // Gauss-Newton on  sum_i ((|x - a_i| - d_i) / sigma_i)^2, started from
    // the weighted centroid.
    geom::Vec2 x = centroid_fix(beacons).position;
    constexpr int kIterations = 15;
    for (int it = 0; it < kIterations; ++it) {
        // Normal equations: (J^T W J) dx = -J^T W r, with 2x2 JtWJ.
        double a11 = 0.0;
        double a12 = 0.0;
        double a22 = 0.0;
        double b1 = 0.0;
        double b2 = 0.0;
        for (const RangedBeacon& b : beacons) {
            const geom::Vec2 diff = x - b.anchor;
            const double dist = std::max(diff.norm(), 1e-6);
            const geom::Vec2 j = diff / dist;  // gradient of |x - a|
            const double sigma = std::max(b.sigma_m, 0.5);
            const double w = 1.0 / (sigma * sigma);
            const double r = dist - b.distance_m;
            a11 += w * j.x * j.x;
            a12 += w * j.x * j.y;
            a22 += w * j.y * j.y;
            b1 += w * j.x * r;
            b2 += w * j.y * r;
        }
        const double det = a11 * a22 - a12 * a12;
        if (std::abs(det) < 1e-12) break;
        const geom::Vec2 dx{(-b1 * a22 + b2 * a12) / det, (-b2 * a11 + b1 * a12) / det};
        x += dx;
        if (dx.norm() < 1e-4) break;
    }
    x = grid_.area().clamp(x);
    // Residual RMS as the confidence measure.
    double rss = 0.0;
    for (const RangedBeacon& b : beacons) {
        const double r = geom::distance(x, b.anchor) - b.distance_m;
        rss += r * r;
    }
    const double spread = std::sqrt(rss / static_cast<double>(beacons.size()));
    return Fix{x, static_cast<int>(beacons.size()), spread};
}

}  // namespace cocoa::core
