#include "core/radial_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cocoa::core {
namespace {

// Beyond this many sigmas the Gaussian is < 3e-16 of its peak — far below
// any rounding the posterior can resolve — so the kernel truncates to the
// floor and the table only covers the significant band.
constexpr double kBandSigmas = 8.5;

// Per-probe relative tolerance of the self-certification pass. One order
// tighter than the 1e-9 equivalence the tests demand of the posterior, so a
// whole grid of certified evaluations stays comfortably inside it.
constexpr double kCertifyTol = 1e-10;

}  // namespace

RadialKernel::RadialKernel(double mean_m, double sigma_m, double floor)
    : mean_(mean_m), sigma_(sigma_m), floor_(floor) {
    if (sigma_ <= 0.0) {
        throw std::invalid_argument("RadialKernel: sigma must be positive");
    }
    peak_ = 1.0 / (sigma_ * std::sqrt(2.0 * 3.14159265358979323846));
    neg_half_inv_sigma_sq_ = -0.5 / (sigma_ * sigma_);

    const double d_lo = std::max(0.0, mean_ - kBandSigmas * sigma_);
    const double d_hi = mean_ + kBandSigmas * sigma_;
    q_lo_ = d_lo * d_lo;
    q_hi_ = d_hi * d_hi;

    // Node spacing: a q-step of Δq is a distance step of Δq/2d, so resolving
    // the Gaussian to ~σ/400 at the innermost radius where it still carries
    // mass (d_ref) needs Δq ≈ d_ref·σ/200. Near-anchor constraints would ask
    // for enormous tables (d_ref → 0), hence the cap — the certification
    // pass below simply grows the exact-evaluation region to compensate.
    const double d_ref = std::max(mean_ - 6.0 * sigma_, 0.25 * sigma_);
    const double dq_target = d_ref * sigma_ / 200.0;
    const double want = std::ceil((q_hi_ - q_lo_) / dq_target);
    interval_count_ = static_cast<std::size_t>(std::clamp(want, 64.0, 32768.0));
    dq_ = (q_hi_ - q_lo_) / static_cast<double>(interval_count_);
    inv_dq_ = 1.0 / dq_;

    value_.resize(interval_count_ + 1);
    slope_.resize(interval_count_ + 1);
    for (std::size_t i = 0; i <= interval_count_; ++i) {
        const double q = q_lo_ + static_cast<double>(i) * dq_;
        const double d = std::sqrt(q);
        const double u = d - mean_;
        const double g = peak_ * std::exp(u * u * neg_half_inv_sigma_sq_);
        value_[i] = g;
        // dg/dq = g'(d)/(2d) with g'(d) = -(u/σ²)·g; singular at d = 0, where
        // the certified exact region takes over anyway.
        slope_[i] = d > 0.0 ? dq_ * (u * neg_half_inv_sigma_sq_ * g / d) : 0.0;
    }

    // Self-certification: probe every segment against the exact kernel and
    // evaluate exactly below the last q that misses the tolerance. The √q
    // reparameterisation makes the interpolation error decrease outward, so
    // the failing segments (if any) form a prefix near the anchor.
    const double tiny = peak_ * 1e-12;  // guards the ratio when floor == 0
    q_exact_ = q_lo_;
    for (std::size_t i = 0; i < interval_count_; ++i) {
        for (const double f : {0.25, 0.5, 0.75}) {
            const double q = q_lo_ + (static_cast<double>(i) + f) * dq_;
            const double exact = eval_exact_q(q);
            const double err = std::abs(eval_q(q) - exact) / std::max(exact, tiny);
            if (err > kCertifyTol) {
                q_exact_ = q_lo_ + static_cast<double>(i + 1) * dq_;
                break;
            }
        }
    }
}

double RadialKernel::eval_exact_d(double distance_m) const {
    const double u = distance_m - mean_;
    return peak_ * std::exp(u * u * neg_half_inv_sigma_sq_) + floor_;
}

double RadialKernel::eval_exact_q(double q) const { return eval_exact_d(std::sqrt(q)); }

}  // namespace cocoa::core
