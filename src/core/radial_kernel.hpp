#pragma once

#include <cstddef>
#include <vector>

namespace cocoa::core {

/// One beacon constraint Constraint(x, y) = PDF(d((x, y), anchor)) + floor,
/// precomputed as a 1-D table over *squared* distance q = d².
///
/// The grid loop in BayesGrid::apply_constraint only ever needs squared
/// distances (which it can form incrementally with two adds per cell), so the
/// kernel is parameterised by q and the per-cell work becomes a table lookup
/// plus a few multiplies — no sqrt, no exp.
///
/// Representation: cubic Hermite segments on a uniform q-lattice, storing the
/// node value g(√q) and the scaled tangent dq·dg/dq. Piecewise-linear
/// interpolation cannot reach the ~1e-10 relative accuracy budget without
/// ~20x more nodes, because the interpolation error of a linear segment grows
/// with Δq² while Hermite grows with Δq⁴.
///
/// Three regions make the table both small and exact where it matters:
///  - |d - mean| > 8.5σ: the Gaussian is < 3e-16 of its peak, i.e. ~1e-14 of
///    the default constraint floor, so the kernel returns the floor exactly
///    and the table only spans the significant band.
///  - q < q_exact(): near d → 0 the map q ↦ g(√q) has unbounded derivatives
///    (d g/d q = g'(d)/2d), so interpolation degrades. The constructor
///    self-certifies the table — it probes every segment against the exact
///    kernel and falls back to direct sqrt+exp evaluation below the last
///    q that misses the tolerance. For far-anchor constraints this region is
///    empty; for near-anchor ones it covers only the handful of cells next
///    to the anchor.
///  - otherwise: Hermite interpolation, certified to ~1e-10 relative error.
class RadialKernel {
  public:
    /// `floor` is the constant the grid adds to the Gaussian density (its
    /// floor_fraction times the peak); baking it into the kernel keeps the
    /// grid loop to a single eval call.
    RadialKernel(double mean_m, double sigma_m, double floor);

    /// Constraint value at squared distance q. The hot path: callers iterate
    /// the grid in q-space and never take a square root.
    double eval_q(double q) const {
        if (q < q_lo_ || q >= q_hi_) return floor_;
        if (q < q_exact_) return eval_exact_q(q);
        const double s = (q - q_lo_) * inv_dq_;
        std::size_t i = static_cast<std::size_t>(s);
        if (i >= interval_count_) i = interval_count_ - 1;  // q just below q_hi_
        const double t = s - static_cast<double>(i);
        const double t2 = t * t;
        const double t3 = t2 * t;
        const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        const double h10 = t3 - 2.0 * t2 + t;
        const double h01 = 3.0 * t2 - 2.0 * t3;
        const double h11 = t3 - t2;
        return h00 * value_[i] + h10 * slope_[i] + h01 * value_[i + 1] +
               h11 * slope_[i + 1] + floor_;
    }

    /// Reference evaluation at distance d: Gaussian density plus floor. The
    /// exact path apply_constraint_exact (and the self-certification pass)
    /// are built on this.
    double eval_exact_d(double distance_m) const;

    double floor() const { return floor_; }
    double mean_m() const { return mean_; }
    double sigma_m() const { return sigma_; }

    // Introspection for tests and the performance docs.
    std::size_t node_count() const { return value_.size(); }
    double q_lo() const { return q_lo_; }
    double q_hi() const { return q_hi_; }
    double q_exact() const { return q_exact_; }

    // Raw table access for the blocked grid kernels (core/grid_kernels): the
    // vector paths evaluate the same Hermite segments lane-wise, so they need
    // the SoA node arrays and the lattice constants directly.
    double inv_dq() const { return inv_dq_; }
    std::size_t interval_count() const { return interval_count_; }
    const double* values() const { return value_.data(); }
    const double* slopes() const { return slope_.data(); }

  private:
    double eval_exact_q(double q) const;

    double mean_ = 0.0;
    double sigma_ = 0.0;
    double floor_ = 0.0;
    double peak_ = 0.0;
    double neg_half_inv_sigma_sq_ = 0.0;
    double q_lo_ = 0.0;
    double q_hi_ = 0.0;
    double dq_ = 0.0;
    double inv_dq_ = 0.0;
    double q_exact_ = 0.0;
    std::size_t interval_count_ = 0;
    std::vector<double> value_;  ///< g(√q) at each node (floor added at eval)
    std::vector<double> slope_;  ///< dq · d g(√q)/dq at each node
};

}  // namespace cocoa::core
