#pragma once

#include <cstddef>

namespace cocoa::core {

class RadialKernel;

/// Blocked grid kernels behind BayesGrid's hot loops.
///
/// BayesGrid stores its masses in a blocked SoA layout: rows are padded to a
/// multiple of kBlock doubles (padding cells carry zero mass forever), and all
/// per-column operands the loops need — squared x-offsets for the constraint
/// sweep, centred x and x² for the moment pass — live in separate padded
/// arrays. Every hot loop then works on whole blocks of kBlock lanes with
/// per-lane accumulators, which is exactly the shape both the portable
/// implementation and the AVX2/AVX-512 instantiations execute.
///
/// Determinism contract: every variant performs the *identical* sequence of
/// IEEE double operations per lane (same expressions, same blend semantics,
/// contraction disabled on all kernel translation units), per-lane Neumaier
/// accumulators are reduced in fixed lane order, and near-anchor blocks that
/// touch the kernel's certified-exact region fall back to the same scalar
/// RadialKernel::eval_q per lane. A -DCOCOA_SIMD=OFF build, the runtime
/// generic path, AVX2 and AVX-512 therefore produce byte-identical grids —
/// CI diffs whole-scenario output across builds to pin this down.
namespace gridk {

/// Lane count of the blocked layout. Fixed (not the hardware vector width):
/// it defines the reduction tree, so it must not change across ISAs.
inline constexpr std::size_t kBlock = 8;

/// Rows are padded to this stride.
constexpr std::size_t padded(std::size_t n) {
    return (n + kBlock - 1) / kBlock * kBlock;
}

/// Inputs of the constraint sweep. All pointers come from BayesGrid-owned
/// arrays sized `stride` (per column) or `ny` (per row); `stride` is a
/// multiple of kBlock. colq padding holds +infinity so padding lanes always
/// take the floor branch and keep their zero mass.
struct ApplyPlan {
    double* cells = nullptr;        ///< stride * ny, row-major
    std::size_t stride = 0;
    std::size_t ny = 0;
    const double* colq = nullptr;   ///< (x_cell - x_anchor)² per column
    const double* blk_qmin = nullptr;  ///< min of colq within each block
    const double* blk_qmax = nullptr;  ///< max of colq within each block
    const double* row_qy = nullptr;    ///< (y_cell - y_anchor)² per row
};

/// Multiplies every cell by the kernel at its squared anchor distance and
/// returns the compensated total mass. Dispatched.
double apply_and_sum(const ApplyPlan& plan, const RadialKernel& kernel);

/// Raw moments about the area centre from the fused scale pass.
struct Moments {
    double mass = 0.0;
    double sx = 0.0;
    double sy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
};

/// Inputs of the fused normalize + statistics pass. colx/colx2 are the
/// centred cell-centre x and x² per column (padding zero); row_y/row_y2 the
/// same per row.
struct ScalePlan {
    double* cells = nullptr;
    std::size_t stride = 0;
    std::size_t ny = 0;
    const double* colx = nullptr;
    const double* colx2 = nullptr;
    const double* row_y = nullptr;
    const double* row_y2 = nullptr;
    double scale = 1.0;  ///< usually 1/total from the preceding sweep
};

/// Scales every cell and accumulates the posterior moments in the same pass.
/// Dispatched.
Moments scale_and_moments(const ScalePlan& plan);

/// The ISA the dispatcher selected at startup: "avx512", "avx2" or
/// "generic". set_force_path does not change this.
const char* active_isa();

/// Overrides for tests and the `_scalar` twin benchmarks:
///  - Generic routes apply_and_sum / scale_and_moments to the portable
///    blocked instantiation regardless of the dispatched ISA (results stay
///    byte-identical — that is the contract the bitwise tests pin);
///  - Serial makes BayesGrid bypass the blocked kernels entirely and run its
///    sequential cell-at-a-time twin (same two-pass algorithm, scalar
///    incremental-q evaluation, one Neumaier chain) — the regression anchor
///    the BM_*_scalar benches measure SIMD speedups against. Serial results
///    agree with the blocked paths only to tolerance (different rounding).
enum class ForcePath { None, Generic, Serial };
void set_force_path(ForcePath path);
ForcePath force_path();

}  // namespace gridk
}  // namespace cocoa::core
