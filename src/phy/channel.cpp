#include "phy/channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cocoa::phy {

Channel::Channel(const ChannelConfig& config) : config_(config) {
    if (config_.ref_distance_m <= 0.0 || config_.breakpoint_m <= config_.ref_distance_m) {
        throw std::invalid_argument("Channel: need 0 < ref_distance < breakpoint");
    }
    if (config_.sigma_ramp_end_m < config_.breakpoint_m) {
        throw std::invalid_argument("Channel: sigma_ramp_end must be >= breakpoint");
    }
    if (config_.exponent_near <= 0.0 || config_.exponent_far <= 0.0) {
        throw std::invalid_argument("Channel: path-loss exponents must be positive");
    }
    if (config_.shadowing_clamp_sigmas <= 0.0) {
        throw std::invalid_argument("Channel: shadowing_clamp_sigmas must be positive");
    }
    max_range_m_ = solve_range(config_.rx_sensitivity_dbm);
    cs_range_m_ = solve_range(config_.carrier_sense_dbm);
    const double sigma_max =
        std::max(config_.shadowing_sigma_near_db, config_.shadowing_sigma_far_db);
    influence_range_m_ =
        solve_range(config_.carrier_sense_dbm - config_.shadowing_clamp_sigmas * sigma_max);
}

double Channel::mean_rssi_dbm(double distance_m) const {
    const double d = std::max(distance_m, config_.ref_distance_m);
    const double at_ref = config_.tx_power_dbm - config_.ref_loss_db;
    if (d <= config_.breakpoint_m) {
        return at_ref -
               10.0 * config_.exponent_near * std::log10(d / config_.ref_distance_m);
    }
    const double at_break =
        at_ref -
        10.0 * config_.exponent_near * std::log10(config_.breakpoint_m / config_.ref_distance_m);
    return at_break - 10.0 * config_.exponent_far * std::log10(d / config_.breakpoint_m);
}

double Channel::shadowing_sigma_db(double distance_m) const {
    if (distance_m <= config_.breakpoint_m) return config_.shadowing_sigma_near_db;
    if (distance_m >= config_.sigma_ramp_end_m) return config_.shadowing_sigma_far_db;
    const double f = (distance_m - config_.breakpoint_m) /
                     (config_.sigma_ramp_end_m - config_.breakpoint_m);
    return config_.shadowing_sigma_near_db +
           f * (config_.shadowing_sigma_far_db - config_.shadowing_sigma_near_db);
}

double Channel::fade_mean_db(double distance_m) const {
    if (distance_m <= config_.breakpoint_m) return 0.0;
    if (distance_m >= config_.sigma_ramp_end_m) return config_.fade_mean_far_db;
    const double f = (distance_m - config_.breakpoint_m) /
                     (config_.sigma_ramp_end_m - config_.breakpoint_m);
    return f * config_.fade_mean_far_db;
}

double Channel::solve_range(double threshold_dbm) const {
    // mean_rssi is strictly decreasing in distance; invert by bisection.
    double lo = config_.ref_distance_m;
    double hi = lo;
    while (mean_rssi_dbm(hi) > threshold_dbm && hi < 1e7) hi *= 2.0;
    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (mean_rssi_dbm(mid) > threshold_dbm) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

}  // namespace cocoa::phy
