#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "phy/channel.hpp"
#include "sim/random.hpp"

namespace cocoa::phy {

/// The per-RSSI distance distribution stored in one PDF Table bin.
///
/// The paper's offline calibration fits a Gaussian PDF of distance for every
/// observed RSSI value and notes (Fig. 1) that the fit is good up to about
/// -80 dBm (~40 m) and breaks down beyond. We record the fitted moments plus
/// a Gaussianity flag derived from higher moments of the calibration samples.
struct DistancePdf {
    double mean_m = 0.0;
    double sigma_m = 0.0;
    bool gaussian_fit_ok = false;  ///< Fig. 1(a) regime vs Fig. 1(b) regime
    int sample_count = 0;
    double skewness = 0.0;
    double excess_kurtosis = 0.0;

    /// Gaussian density at `distance_m` (not floored; callers add their own
    /// floor when using it as a Bayesian constraint).
    double density(double distance_m) const;
};

/// Parameters of the offline calibration pass. Mirrors the paper's outdoor
/// measurement campaign, run against the synthetic channel instead of the
/// real field: sweep transmitter-receiver distances, record many RSSI
/// observations per distance, then bin by integer dBm and fit.
struct CalibrationConfig {
    double min_distance_m = 1.0;
    double max_distance_m = 160.0;    ///< roughly the channel's nominal range
    double distance_step_m = 0.25;
    int samples_per_distance = 100;
    int min_bin_samples = 50;         ///< bins with fewer samples are unusable
    /// |skew| above this fails the Gaussian fit. "Gaussian" here is the
    /// paper's practical judgement (Fig. 1(a) "looks Gaussian"), not a strict
    /// hypothesis test: distance-given-RSSI is mildly lognormal (skew ~0.3)
    /// even in the clean regime, while the faded far regime shows skew > 1.2.
    /// The effective threshold is additionally widened to 3 standard errors
    /// for thin bins.
    double skewness_threshold = 0.9;
    double kurtosis_threshold = 2.0;  ///< |excess kurtosis|, same SE widening
    /// Enforce the paper's structure: the Gaussian regime is one contiguous
    /// band of strong RSSIs ("up to -80 dBm"); isolated statistical flukes on
    /// either side of the boundary are healed to match their neighbourhood.
    bool enforce_contiguous_regime = true;
};

/// The PDF Table of Sichitiu & Ramadurai's algorithm (§2.2): maps every RSSI
/// value (binned at 1 dBm) to a distance PDF. Stored at each robot; the
/// Bayesian localizer performs a lookup per received beacon.
class PdfTable {
  public:
    /// Builds the table by measuring `channel` per `config`. Deterministic
    /// for a given RNG stream.
    static PdfTable calibrate(const Channel& channel, const CalibrationConfig& config,
                              sim::RandomStream rng);

    /// The bin covering `rssi_dbm`, or nullptr when the RSSI is outside the
    /// table or its bin had too few calibration samples to be usable.
    const DistancePdf* lookup(double rssi_dbm) const;

    /// Inclusive integer-dBm bounds of the table.
    int min_rssi_dbm() const { return min_rssi_; }
    int max_rssi_dbm() const { return min_rssi_ + static_cast<int>(bins_.size()) - 1; }

    std::size_t bin_count() const { return bins_.size(); }
    std::size_t usable_bin_count() const;

    /// Weakest RSSI whose bin still passes the Gaussian fit — the paper's
    /// "-80 dBm" boundary between Fig. 1(a) and Fig. 1(b).
    std::optional<int> weakest_gaussian_rssi() const;

    /// All bins (index 0 is min_rssi_dbm()); unusable bins have
    /// sample_count < min_bin_samples.
    const std::vector<DistancePdf>& bins() const { return bins_; }

    /// Writes the table in a line-oriented text format: calibration is an
    /// offline phase, so a real deployment stores this file on every robot
    /// (§2.2: "the PDF Table, which is stored at each node").
    void save(std::ostream& os) const;

    /// Parses a table produced by save(). Throws std::invalid_argument on a
    /// malformed stream.
    static PdfTable load(std::istream& is);

  private:
    PdfTable(int min_rssi, std::vector<DistancePdf> bins)
        : min_rssi_(min_rssi), bins_(std::move(bins)) {}

    int min_rssi_ = 0;
    std::vector<DistancePdf> bins_;
    int min_bin_samples_ = 0;
};

}  // namespace cocoa::phy
