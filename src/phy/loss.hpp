#pragma once

#include <vector>

#include "sim/time.hpp"

namespace cocoa::phy {

/// A timed medium-level degradation: while [start, end) is in effect every
/// propagated frame loses `attenuation_db` of receive power at each receiver
/// and is additionally dropped per receiver with probability `drop_prob`
/// (independent counter-based draws, so determinism survives culling and
/// thread count). Models jamming, duty-cycled interferers, weather fades.
struct LossBurst {
    sim::TimePoint start;
    sim::TimePoint end;
    double drop_prob = 0.0;
    double attenuation_db = 0.0;
};

/// The set of loss bursts affecting a medium. Bursts may overlap: drop
/// probabilities combine independently (p = 1 - prod(1 - p_i)) and
/// attenuations add, as independent interferers would.
class LossSchedule {
  public:
    struct Effect {
        bool active = false;
        double drop_prob = 0.0;
        double attenuation_db = 0.0;
    };

    void add(const LossBurst& burst) { bursts_.push_back(burst); }
    bool empty() const { return bursts_.empty(); }
    const std::vector<LossBurst>& bursts() const { return bursts_; }

    /// Combined effect of every burst covering time `t`.
    Effect effect_at(sim::TimePoint t) const {
        Effect effect;
        double pass = 1.0;
        for (const LossBurst& b : bursts_) {
            if (t < b.start || t >= b.end) continue;
            effect.active = true;
            pass *= 1.0 - b.drop_prob;
            effect.attenuation_db += b.attenuation_db;
        }
        if (effect.active) effect.drop_prob = 1.0 - pass;
        return effect;
    }

  private:
    std::vector<LossBurst> bursts_;
};

}  // namespace cocoa::phy
