#pragma once

#include <algorithm>

#include "sim/random.hpp"

namespace cocoa::phy {

/// Radio channel calibrated to the paper's outdoor 802.11b measurements.
///
/// Dual-slope log-distance path loss with distance-dependent Gaussian
/// shadowing. Anchored to the paper's reported behaviour:
///  - RSSI about -80 dBm at 40 m, so signal-strength-to-distance PDFs are
///    Gaussian up to ~40 m (Fig. 1(a)),
///  - beyond 40 m multipath/fading dominates: the shadowing deviation ramps
///    up, producing the noisy non-Gaussian regime of Fig. 1(b),
///  - communication range > 150 m (typical 802.11b).
struct ChannelConfig {
    double tx_power_dbm = 15.0;
    double ref_distance_m = 1.0;
    double ref_loss_db = 45.0;             ///< path loss at ref_distance => -30 dBm at 1 m
    double exponent_near = 3.12;           ///< d <= breakpoint (tuned: -80 dBm at 40 m)
    double exponent_far = 2.0;             ///< d > breakpoint
    double breakpoint_m = 40.0;
    double shadowing_sigma_near_db = 1.5;  ///< d <= breakpoint
    double shadowing_sigma_far_db = 1.5;   ///< d >= sigma_ramp_end
    double sigma_ramp_end_m = 60.0;        ///< sigma ramps linearly across [breakpoint, this]
    /// Mean depth (dB) of multipath deep fades beyond the breakpoint, ramping
    /// from 0 at the breakpoint to this value at sigma_ramp_end. Fades only
    /// ever *attenuate* (exponential, one-sided), which is what makes the
    /// far-field RSSI-to-distance PDFs non-Gaussian (Fig. 1(b)) while leaving
    /// the strong-signal regime clean up to the breakpoint (Fig. 1(a)).
    double fade_mean_far_db = 7.0;
    double rx_sensitivity_dbm = -92.0;     ///< minimum power to decode a frame
    double carrier_sense_dbm = -98.0;      ///< minimum power to defer transmission
    /// Shadowing draws are clamped to ±this many sigma around the mean. A
    /// |z| > 8 Gaussian deviate has probability ~1e-15 per draw, so the clamp
    /// is statistically invisible — but it turns the otherwise unbounded
    /// shadowing tail into a hard bound on sampled RSSI, which is what lets
    /// max_influence_range_m() define an exact interference-culling radius
    /// (deep fades only ever attenuate, so they cannot extend the bound).
    double shadowing_clamp_sigmas = 8.0;
};

class Channel {
  public:
    explicit Channel(const ChannelConfig& config = {});

    const ChannelConfig& config() const { return config_; }

    /// Deterministic mean received power (dBm) at `distance_m` (>= ref dist).
    double mean_rssi_dbm(double distance_m) const;

    /// Shadowing standard deviation (dB) at this distance.
    double shadowing_sigma_db(double distance_m) const;

    /// Mean deep-fade attenuation (dB) at this distance (0 below breakpoint).
    double fade_mean_db(double distance_m) const;

    /// One stochastic RSSI observation from precomputed channel terms — the
    /// exact operation sequence of sample_rssi_dbm, split out so callers that
    /// batch-compute mean/sigma/fade over many receivers (the medium's fanout
    /// kernels) draw bitwise-identical values to the distance-based overload.
    template <typename Rng>
    double sample_rssi_from(double mean_dbm, double sigma_db, double fade_db,
                            Rng& rng) const {
        const double cap = config_.shadowing_clamp_sigmas * sigma_db;
        const double shadow = std::clamp(rng.gaussian(0.0, sigma_db), -cap, cap);
        double rssi = mean_dbm + shadow;
        if (fade_db > 0.0) {
            rssi -= rng.exponential(fade_db);  // deep fades only ever attenuate
        }
        return rssi;
    }

    /// One stochastic RSSI observation. Templated over the generator so the
    /// same draw logic serves both the long-lived mt19937_64 streams (PDF
    /// calibration) and the throwaway counter-based SplitMix64 generators the
    /// medium constructs per (frame, receiver).
    template <typename Rng>
    double sample_rssi_dbm(double distance_m, Rng& rng) const {
        return sample_rssi_from(mean_rssi_dbm(distance_m),
                                shadowing_sigma_db(distance_m),
                                fade_mean_db(distance_m), rng);
    }

    /// Distance at which the mean RSSI equals the receive sensitivity: the
    /// nominal communication range.
    double max_range_m() const { return max_range_m_; }

    /// Distance at which the mean RSSI equals the carrier-sense threshold.
    double carrier_sense_range_m() const { return cs_range_m_; }

    /// Distance beyond which no sampled RSSI can ever reach the carrier-sense
    /// threshold: mean RSSI plus the maximum clamped shadowing boost stays
    /// strictly below carrier_sense_dbm. Radios farther than this from a
    /// transmitter are unaffected by the transmission — the exact culling
    /// radius used by mac::Medium's interference culling.
    double max_influence_range_m() const { return influence_range_m_; }

    bool decodable(double rssi_dbm) const { return rssi_dbm >= config_.rx_sensitivity_dbm; }
    bool sensed(double rssi_dbm) const { return rssi_dbm >= config_.carrier_sense_dbm; }

  private:
    double solve_range(double threshold_dbm) const;

    ChannelConfig config_;
    double max_range_m_ = 0.0;
    double cs_range_m_ = 0.0;
    double influence_range_m_ = 0.0;
};

}  // namespace cocoa::phy
