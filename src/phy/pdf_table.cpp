#include "phy/pdf_table.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cocoa::phy {

namespace {

constexpr double kPi = 3.14159265358979323846;

struct Moments {
    double mean = 0.0;
    double sigma = 0.0;
    double skewness = 0.0;
    double excess_kurtosis = 0.0;
};

Moments compute_moments(const std::vector<double>& xs) {
    Moments m;
    const auto n = static_cast<double>(xs.size());
    if (xs.empty()) return m;
    double sum = 0.0;
    for (const double x : xs) sum += x;
    m.mean = sum / n;
    double m2 = 0.0;
    double m3 = 0.0;
    double m4 = 0.0;
    for (const double x : xs) {
        const double d = x - m.mean;
        m2 += d * d;
        m3 += d * d * d;
        m4 += d * d * d * d;
    }
    m2 /= n;
    m3 /= n;
    m4 /= n;
    m.sigma = std::sqrt(m2);
    if (m2 > 0.0) {
        m.skewness = m3 / (m2 * m.sigma);
        m.excess_kurtosis = m4 / (m2 * m2) - 3.0;
    }
    return m;
}

}  // namespace

double DistancePdf::density(double distance_m) const {
    if (sigma_m <= 0.0) return 0.0;
    const double z = (distance_m - mean_m) / sigma_m;
    return std::exp(-0.5 * z * z) / (sigma_m * std::sqrt(2.0 * kPi));
}

PdfTable PdfTable::calibrate(const Channel& channel, const CalibrationConfig& config,
                             sim::RandomStream rng) {
    if (config.min_distance_m <= 0.0 || config.max_distance_m <= config.min_distance_m) {
        throw std::invalid_argument("PdfTable: bad calibration distance range");
    }
    if (config.distance_step_m <= 0.0 || config.samples_per_distance < 1) {
        throw std::invalid_argument("PdfTable: bad calibration density");
    }

    // Sweep the field: many RSSI observations at each distance, binned by
    // integer dBm. Under a uniform sweep this collects, per bin, samples of
    // the distance distribution conditioned on that RSSI.
    std::map<int, std::vector<double>> samples_by_bin;
    for (double d = config.min_distance_m; d <= config.max_distance_m;
         d += config.distance_step_m) {
        for (int i = 0; i < config.samples_per_distance; ++i) {
            const double rssi = channel.sample_rssi_dbm(d, rng);
            const int bin = static_cast<int>(std::lround(rssi));
            samples_by_bin[bin].push_back(d);
        }
    }
    if (samples_by_bin.empty()) {
        throw std::logic_error("PdfTable: calibration produced no samples");
    }

    const int min_rssi = samples_by_bin.begin()->first;
    const int max_rssi = samples_by_bin.rbegin()->first;
    std::vector<DistancePdf> bins(static_cast<std::size_t>(max_rssi - min_rssi + 1));
    for (const auto& [bin, samples] : samples_by_bin) {
        DistancePdf& pdf = bins[static_cast<std::size_t>(bin - min_rssi)];
        const Moments m = compute_moments(samples);
        pdf.mean_m = m.mean;
        pdf.sigma_m = m.sigma;
        pdf.sample_count = static_cast<int>(samples.size());
        pdf.skewness = m.skewness;
        pdf.excess_kurtosis = m.excess_kurtosis;
        // Thresholds widen to 3 standard errors (SE(skew) ~ sqrt(6/n),
        // SE(kurt) ~ sqrt(24/n)) so thin bins are judged fairly.
        const double n = static_cast<double>(pdf.sample_count);
        const double skew_thr =
            std::max(config.skewness_threshold, 3.0 * std::sqrt(6.0 / n));
        const double kurt_thr =
            std::max(config.kurtosis_threshold, 3.0 * std::sqrt(24.0 / n));
        pdf.gaussian_fit_ok = pdf.sample_count >= config.min_bin_samples &&
                              m.sigma > 0.0 && std::abs(m.skewness) <= skew_thr &&
                              std::abs(m.excess_kurtosis) <= kurt_thr;
    }

    if (config.enforce_contiguous_regime) {
        // Scan from the strongest RSSI downward; the Gaussian regime ends
        // where the local neighbourhood stops passing (majority vote over a
        // 5-bin window of usable bins). Everything at or above the boundary
        // is healed to pass; everything below fails.
        std::vector<std::size_t> usable;  // indices, strongest first
        for (std::size_t i = bins.size(); i-- > 0;) {
            if (bins[i].sample_count >= config.min_bin_samples && bins[i].sigma_m > 0.0) {
                usable.push_back(i);
            }
        }
        std::size_t boundary_pos = usable.size();  // boundary in `usable` order
        constexpr std::size_t kHalfWin = 2;        // 5-bin centered window
        for (std::size_t k = 0; k < usable.size(); ++k) {
            const std::size_t begin = k >= kHalfWin ? k - kHalfWin : 0;
            const std::size_t end = std::min(k + kHalfWin, usable.size() - 1);
            int passes = 0;
            for (std::size_t j = begin; j <= end; ++j) {
                passes += bins[usable[j]].gaussian_fit_ok ? 1 : 0;
            }
            const std::size_t window = end - begin + 1;
            if (2 * static_cast<std::size_t>(passes) < window + 1) {  // < majority
                boundary_pos = k;
                break;
            }
        }
        for (std::size_t k = 0; k < usable.size(); ++k) {
            bins[usable[k]].gaussian_fit_ok = k < boundary_pos;
        }
    }

    PdfTable table(min_rssi, std::move(bins));
    table.min_bin_samples_ = config.min_bin_samples;
    return table;
}

const DistancePdf* PdfTable::lookup(double rssi_dbm) const {
    const int bin = static_cast<int>(std::lround(rssi_dbm));
    if (bin < min_rssi_ || bin > max_rssi_dbm()) return nullptr;
    const DistancePdf& pdf = bins_[static_cast<std::size_t>(bin - min_rssi_)];
    if (pdf.sample_count < min_bin_samples_ || pdf.sigma_m <= 0.0) return nullptr;
    return &pdf;
}

std::size_t PdfTable::usable_bin_count() const {
    std::size_t n = 0;
    for (const DistancePdf& pdf : bins_) {
        if (pdf.sample_count >= min_bin_samples_ && pdf.sigma_m > 0.0) ++n;
    }
    return n;
}

void PdfTable::save(std::ostream& os) const {
    os << "cocoa-pdf-table 1\n";
    os << min_rssi_ << ' ' << bins_.size() << ' ' << min_bin_samples_ << '\n';
    os << std::setprecision(17);
    for (const DistancePdf& pdf : bins_) {
        os << pdf.mean_m << ' ' << pdf.sigma_m << ' ' << (pdf.gaussian_fit_ok ? 1 : 0)
           << ' ' << pdf.sample_count << ' ' << pdf.skewness << ' '
           << pdf.excess_kurtosis << '\n';
    }
}

PdfTable PdfTable::load(std::istream& is) {
    std::string magic;
    int version = 0;
    if (!(is >> magic >> version) || magic != "cocoa-pdf-table" || version != 1) {
        throw std::invalid_argument("PdfTable::load: bad header");
    }
    int min_rssi = 0;
    std::size_t count = 0;
    int min_bin_samples = 0;
    if (!(is >> min_rssi >> count >> min_bin_samples) || count == 0 ||
        count > 100000) {
        throw std::invalid_argument("PdfTable::load: bad dimensions");
    }
    std::vector<DistancePdf> bins(count);
    for (DistancePdf& pdf : bins) {
        int gaussian = 0;
        if (!(is >> pdf.mean_m >> pdf.sigma_m >> gaussian >> pdf.sample_count >>
              pdf.skewness >> pdf.excess_kurtosis)) {
            throw std::invalid_argument("PdfTable::load: truncated bin data");
        }
        pdf.gaussian_fit_ok = gaussian != 0;
    }
    PdfTable table(min_rssi, std::move(bins));
    table.min_bin_samples_ = min_bin_samples;
    return table;
}

std::optional<int> PdfTable::weakest_gaussian_rssi() const {
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i].gaussian_fit_ok) return min_rssi_ + static_cast<int>(i);
    }
    return std::nullopt;
}

}  // namespace cocoa::phy
