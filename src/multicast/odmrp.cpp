#include "multicast/odmrp.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <variant>

#include "geom/motion.hpp"
#include "net/packet_io.hpp"
#include "sim/checkpoint.hpp"
#include "sim/event_tag.hpp"

namespace cocoa::multicast {

namespace {
constexpr double kInfiniteLifetime = std::numeric_limits<double>::infinity();
}

MulticastNode::MulticastNode(net::Node& node, const MulticastConfig& config)
    : node_(node),
      config_(config),
      jitter_rng_(node.simulator().rng().stream("multicast.jitter", node.id())) {
    node_.host().register_handler(
        net::Port::McastControl,
        [this](const net::Packet& p, const net::RxInfo& i) { on_control(p, i); });
    node_.host().register_handler(
        net::Port::McastData,
        [this](const net::Packet& p, const net::RxInfo& i) { on_data(p, i); });

    const std::string prefix = "node." + std::to_string(node_.id()) + ".mcast.";
    obs::CounterRegistry& reg = node_.radio().medium().obs().counters;
    reg.add(prefix + "queries_sent", &stats_.queries_sent);
    reg.add(prefix + "replies_sent", &stats_.replies_sent);
    reg.add(prefix + "data_sent", &stats_.data_sent);
    reg.add(prefix + "data_suppressed", &stats_.data_suppressed);
    reg.add(prefix + "data_delivered", &stats_.data_delivered);
    reg.add(prefix + "data_duplicates", &stats_.data_duplicates);
    reg.add(prefix + "dropped_asleep", &stats_.dropped_asleep);
}

void MulticastNode::safe_send(net::Packet packet) {
    if (!node_.radio().awake()) {
        ++stats_.dropped_asleep;
        return;
    }
    node_.radio().send(std::move(packet));
}

void MulticastNode::join(net::GroupId group) { member_groups_[group] = true; }

void MulticastNode::leave(net::GroupId group) { member_groups_.erase(group); }

void MulticastNode::start_source(net::GroupId group) {
    if (sources_.contains(group)) return;
    sources_[group];  // default state
    do_refresh(group);
}

void MulticastNode::stop_source(net::GroupId group) {
    auto it = sources_.find(group);
    if (it == sources_.end()) return;
    node_.simulator().cancel(it->second.refresh_event);
    sources_.erase(it);
}

void MulticastNode::refresh_now(net::GroupId group) {
    if (!sources_.contains(group)) {
        throw std::logic_error("MulticastNode::refresh_now: not a source for group");
    }
    do_refresh(group);
}

void MulticastNode::schedule_refresh(net::GroupId group) {
    auto it = sources_.find(group);
    if (it == sources_.end() || !config_.auto_refresh) return;
    it->second.refresh_event = node_.simulator().schedule_in(
        config_.refresh_interval, [this, group] { do_refresh(group); },
        sim::make_tag(sim::EventKind::kMcastRefresh, node_.id(), group));
}

void MulticastNode::do_refresh(net::GroupId group) {
    auto it = sources_.find(group);
    if (it == sources_.end()) return;
    // Cancel any timer refresh that refresh_now() is pre-empting.
    node_.simulator().cancel(it->second.refresh_event);

    net::JoinQueryPayload query;
    query.group = group;
    query.source = node_.id();
    query.seq = it->second.next_query_seq++;
    query.prev_hop = node_.id();
    query.hop_count = 0;
    query.sender_motion = node_.mobility().motion_state();
    query.path_lifetime_s = kInfiniteLifetime;

    net::Packet packet;
    packet.port = net::Port::McastControl;
    packet.payload_bytes = config_.query_bytes;
    packet.payload = query;
    safe_send(std::move(packet));
    ++stats_.queries_sent;

    schedule_refresh(group);
}

double MulticastNode::predicted_link_lifetime(const geom::MotionState& sender) const {
    double range = config_.lifetime_range_m;
    if (range <= 0.0) {
        range = node_.radio().medium().channel().max_range_m();
    }
    return geom::link_lifetime(sender, node_.mobility().motion_state(), range);
}

void MulticastNode::on_control(const net::Packet& packet, const net::RxInfo& info) {
    if (const auto* query = std::get_if<net::JoinQueryPayload>(&packet.payload)) {
        handle_query(*query, info);
    } else if (const auto* reply = std::get_if<net::JoinReplyPayload>(&packet.payload)) {
        handle_reply(*reply);
    }
}

void MulticastNode::handle_query(const net::JoinQueryPayload& query,
                                 const net::RxInfo& /*info*/) {
    if (query.source == node_.id()) return;  // echo of our own flood

    const QueryKey key{query.group, query.source};
    QueryRound& round = rounds_[key];

    if (round.best_upstream != net::kInvalidId && query.seq < round.seq) return;  // stale
    const bool new_round = query.seq > round.seq || round.best_upstream == net::kInvalidId;
    if (new_round && query.seq >= round.seq) {
        node_.simulator().cancel(round.decision_event);
        round = QueryRound{};
        round.seq = query.seq;
        if (config_.variant == Variant::Mrmm && !config_.query_aggregation.is_zero()) {
            round.decision_event = node_.simulator().schedule_in(
                config_.query_aggregation, [this, key] { decide_upstream(key); },
                sim::make_tag(sim::EventKind::kMcastDecision, node_.id(), key.group,
                              key.source));
        }
    } else if (query.seq != round.seq || round.rebroadcast_done) {
        // A late copy of the round we already acted on.
        return;
    }

    // Candidate upstream: the node that (re)broadcast this copy.
    const double link_life = predicted_link_lifetime(query.sender_motion);
    const double path_life = std::min(query.path_lifetime_s, link_life);
    const std::uint8_t hops = static_cast<std::uint8_t>(query.hop_count + 1);

    bool better = false;
    if (round.best_upstream == net::kInvalidId) {
        better = true;
    } else if (config_.variant == Variant::Mrmm) {
        better = path_life > round.best_path_lifetime ||
                 (path_life == round.best_path_lifetime && hops < round.best_hops);
    }
    if (better) {
        round.best_upstream = query.prev_hop;
        round.best_hops = hops;
        round.best_lifetime = link_life;
        round.best_path_lifetime = path_life;
    }

    // Classic ODMRP (or aggregation disabled): act on the first copy.
    if (config_.variant == Variant::Odmrp || config_.query_aggregation.is_zero()) {
        decide_upstream(key);
    }
}

void MulticastNode::decide_upstream(QueryKey key) {
    QueryRound& round = rounds_[key];
    if (round.best_upstream == net::kInvalidId || round.rebroadcast_done) return;
    round.rebroadcast_done = true;

    // Members answer the query with a JOIN REPLY that recruits the chosen
    // upstream into the forwarding group.
    if (is_member(key.group)) {
        send_reply(key.group, key.source, round.seq, round.best_upstream);
    }

    // Everyone floods the query onward (bounded by max_hops).
    if (round.best_hops < config_.max_hops) {
        net::JoinQueryPayload onward;
        onward.group = key.group;
        onward.source = key.source;
        onward.seq = round.seq;
        onward.prev_hop = node_.id();
        onward.hop_count = round.best_hops;
        onward.path_lifetime_s = round.best_path_lifetime;

        net::Packet packet;
        packet.port = net::Port::McastControl;
        packet.payload_bytes = config_.query_bytes;
        packet.payload = onward;

        const sim::Duration jitter = sim::Duration::nanos(
            jitter_rng_.uniform_int(0, config_.reply_jitter_max.to_nanos()));
        const std::uint64_t id = park_tx(std::move(packet), TxKind::Query);
        node_.simulator().schedule_in(
            jitter, [this, id] { fire_pending_tx(id); },
            sim::make_tag(sim::EventKind::kMcastJitteredTx, node_.id(), 0, 0, id));
    }
}

void MulticastNode::send_reply(net::GroupId group, net::NodeId source, std::uint32_t seq,
                               net::NodeId next_hop) {
    const QueryKey key{group, source};
    if (const auto it = replied_seq_.find(key);
        it != replied_seq_.end() && it->second >= seq) {
        return;  // already answered this round
    }
    replied_seq_[key] = seq;

    net::JoinReplyPayload reply;
    reply.group = group;
    reply.source = source;
    reply.seq = seq;
    reply.sender = node_.id();
    reply.next_hop = next_hop;

    net::Packet packet;
    packet.port = net::Port::McastControl;
    packet.payload_bytes = config_.reply_bytes;
    packet.payload = reply;

    const sim::Duration jitter = sim::Duration::nanos(
        jitter_rng_.uniform_int(0, config_.reply_jitter_max.to_nanos()));
    const std::uint64_t id = park_tx(std::move(packet), TxKind::Reply);
    node_.simulator().schedule_in(
        jitter, [this, id] { fire_pending_tx(id); },
        sim::make_tag(sim::EventKind::kMcastJitteredTx, node_.id(), 0, 0, id));
}

void MulticastNode::handle_reply(const net::JoinReplyPayload& reply) {
    if (reply.next_hop != node_.id()) return;

    // We are recruited: hold forwarding-group state for this group.
    forwarder_until_[reply.group] =
        node_.simulator().now() + config_.fg_timeout;

    if (reply.source == node_.id()) return;  // mesh reached the source

    // Propagate the recruitment toward the source along our own upstream.
    const QueryKey key{reply.group, reply.source};
    const auto it = rounds_.find(key);
    if (it == rounds_.end() || it->second.best_upstream == net::kInvalidId) return;
    send_reply(reply.group, reply.source, it->second.seq, it->second.best_upstream);
}

bool MulticastNode::is_forwarder(net::GroupId group) const {
    const auto it = forwarder_until_.find(group);
    return it != forwarder_until_.end() && node_.simulator().now() < it->second;
}

void MulticastNode::reset_soft_state() {
    for (auto& [key, round] : rounds_) {
        if (round.decision_event.valid()) {
            node_.simulator().cancel(round.decision_event);
        }
    }
    rounds_.clear();
    for (auto& [key, pending] : pending_forwards_) {
        if (pending.event.valid()) {
            node_.simulator().cancel(pending.event);
        }
        pending_tx_.erase(pending.tx_id);
    }
    pending_forwards_.clear();
    replied_seq_.clear();
    forwarder_until_.clear();
    data_seen_.clear();
}

void MulticastNode::send_data(net::GroupId group,
                              std::shared_ptr<const net::Packet> inner) {
    auto it = sources_.find(group);
    if (it == sources_.end()) {
        throw std::logic_error("MulticastNode::send_data: not a source for group");
    }
    if (!inner) {
        throw std::invalid_argument("MulticastNode::send_data: null inner packet");
    }

    net::McastDataPayload data;
    data.group = group;
    data.source = node_.id();
    data.seq = it->second.next_data_seq++;
    data.prev_hop = node_.id();
    data.inner = std::move(inner);

    net::Packet packet;
    packet.port = net::Port::McastData;
    packet.payload_bytes = config_.data_header_bytes + data.inner->payload_bytes;
    packet.payload = std::move(data);
    safe_send(std::move(packet));
    ++stats_.data_sent;
}

void MulticastNode::on_data(const net::Packet& packet, const net::RxInfo& info) {
    const auto* data = std::get_if<net::McastDataPayload>(&packet.payload);
    if (data == nullptr || data->source == node_.id()) return;

    const QueryKey key{data->group, data->source};
    auto& seen = data_seen_[key];
    if (seen.contains(data->seq)) {
        ++stats_.data_duplicates;
        // MRMM redundancy suppression: if we are still waiting to echo this
        // packet and enough neighbours already have, stay quiet.
        const auto pf = pending_forwards_.find({key, data->seq});
        if (pf != pending_forwards_.end()) {
            pf->second.copies_heard += 1;
            if (config_.variant == Variant::Mrmm && config_.data_suppression_copies > 0 &&
                pf->second.copies_heard >= config_.data_suppression_copies) {
                node_.simulator().cancel(pf->second.event);
                pending_tx_.erase(pf->second.tx_id);
                pending_forwards_.erase(pf);
                ++stats_.data_suppressed;
            }
        }
        return;
    }
    seen.insert(data->seq);

    if (is_member(data->group) && data->inner) {
        ++stats_.data_delivered;
        if (deliver_) deliver_(data->group, *data->inner, info);
    }

    if (!is_forwarder(data->group)) return;

    // Forward along the mesh after a short jitter (cancellable for MRMM
    // suppression).
    net::McastDataPayload onward = *data;
    onward.prev_hop = node_.id();
    net::Packet fwd;
    fwd.port = net::Port::McastData;
    fwd.payload_bytes = packet.payload_bytes;
    fwd.payload = std::move(onward);

    const auto pf_key = std::make_pair(key, data->seq);
    const sim::Duration jitter = sim::Duration::nanos(
        jitter_rng_.uniform_int(0, config_.data_jitter_max.to_nanos()));
    const std::uint64_t id = park_tx(std::move(fwd), TxKind::DataForward, key, data->seq);
    const sim::EventId event = node_.simulator().schedule_in(
        jitter, [this, id] { fire_pending_tx(id); },
        sim::make_tag(sim::EventKind::kMcastJitteredTx, node_.id(), 0, 0, id));
    pending_forwards_[pf_key] = PendingForward{event, 0, id};
}

std::uint64_t MulticastNode::park_tx(net::Packet packet, TxKind kind, QueryKey key,
                                     std::uint32_t data_seq) {
    const std::uint64_t id = next_tx_id_++;
    pending_tx_.emplace(id, PendingTx{std::move(packet), kind, key, data_seq});
    return id;
}

void MulticastNode::fire_pending_tx(std::uint64_t id) {
    const auto it = pending_tx_.find(id);
    if (it == pending_tx_.end()) return;  // suppressed/reset while parked
    PendingTx tx = std::move(it->second);
    pending_tx_.erase(it);
    switch (tx.kind) {
        case TxKind::Query: {
            // Motion snapshot taken at transmit time, not decision time.
            auto& onward = std::get<net::JoinQueryPayload>(tx.packet.payload);
            onward.sender_motion = node_.mobility().motion_state();
            safe_send(std::move(tx.packet));
            ++stats_.queries_sent;
            break;
        }
        case TxKind::Reply:
            safe_send(std::move(tx.packet));
            ++stats_.replies_sent;
            break;
        case TxKind::DataForward:
            pending_forwards_.erase({tx.key, tx.data_seq});
            safe_send(std::move(tx.packet));
            ++stats_.data_sent;
            break;
    }
}

namespace {
constexpr std::uint32_t kMarkMcast = 0x4d435354u;  // "MCST"
}

void MulticastNode::save_state(sim::ckpt::Writer& w, net::PacketSaveCtx& pkts) const {
    w.mark(kMarkMcast);
    w.u64(member_groups_.size());
    for (const auto& [group, on] : member_groups_) {
        w.u32(group);
        w.b(on);
    }
    w.u64(sources_.size());
    for (const auto& [group, src] : sources_) {
        w.u32(group);
        w.u32(src.next_query_seq);
        w.u32(src.next_data_seq);
    }
    w.u64(forwarder_until_.size());
    for (const auto& [group, until] : forwarder_until_) {
        w.u32(group);
        w.time(until);
    }
    w.u64(rounds_.size());
    for (const auto& [key, round] : rounds_) {
        w.u32(key.group);
        w.u32(key.source);
        w.u32(round.seq);
        w.b(round.rebroadcast_done);
        w.u8(round.best_hops);
        w.u32(round.best_upstream);
        w.f64(round.best_lifetime);
        w.f64(round.best_path_lifetime);
    }
    w.u64(replied_seq_.size());
    for (const auto& [key, seq] : replied_seq_) {
        w.u32(key.group);
        w.u32(key.source);
        w.u32(seq);
    }
    w.u64(data_seen_.size());
    for (const auto& [key, seen] : data_seen_) {
        w.u32(key.group);
        w.u32(key.source);
        w.u64(seen.size());
        for (const std::uint32_t seq : seen) w.u32(seq);
    }
    w.u64(pending_forwards_.size());
    for (const auto& [pf_key, pending] : pending_forwards_) {
        w.u32(pf_key.first.group);
        w.u32(pf_key.first.source);
        w.u32(pf_key.second);
        w.i32(pending.copies_heard);
        w.u64(pending.tx_id);
    }
    w.u64(pending_tx_.size());
    for (const auto& [id, tx] : pending_tx_) {
        w.u64(id);
        w.u8(static_cast<std::uint8_t>(tx.kind));
        w.u32(tx.key.group);
        w.u32(tx.key.source);
        w.u32(tx.data_seq);
        net::save_packet(w, tx.packet, pkts);
    }
    w.u64(next_tx_id_);
    w.u64(stats_.queries_sent);
    w.u64(stats_.replies_sent);
    w.u64(stats_.data_sent);
    w.u64(stats_.data_suppressed);
    w.u64(stats_.data_delivered);
    w.u64(stats_.data_duplicates);
    w.u64(stats_.dropped_asleep);
    jitter_rng_.save(w);
}

void MulticastNode::load_state(sim::ckpt::Reader& r, net::PacketLoadCtx& pkts) {
    r.expect(kMarkMcast);
    member_groups_.clear();
    for (std::uint64_t n = r.u64(); n > 0; --n) {
        const net::GroupId group = r.u32();
        member_groups_[group] = r.b();
    }
    sources_.clear();
    for (std::uint64_t n = r.u64(); n > 0; --n) {
        const net::GroupId group = r.u32();
        SourceState& src = sources_[group];
        src.next_query_seq = r.u32();
        src.next_data_seq = r.u32();
    }
    forwarder_until_.clear();
    for (std::uint64_t n = r.u64(); n > 0; --n) {
        const net::GroupId group = r.u32();
        forwarder_until_[group] = r.time();
    }
    rounds_.clear();
    for (std::uint64_t n = r.u64(); n > 0; --n) {
        QueryKey key;
        key.group = r.u32();
        key.source = r.u32();
        QueryRound& round = rounds_[key];
        round.seq = r.u32();
        round.rebroadcast_done = r.b();
        round.best_hops = r.u8();
        round.best_upstream = r.u32();
        round.best_lifetime = r.f64();
        round.best_path_lifetime = r.f64();
    }
    replied_seq_.clear();
    for (std::uint64_t n = r.u64(); n > 0; --n) {
        QueryKey key;
        key.group = r.u32();
        key.source = r.u32();
        replied_seq_[key] = r.u32();
    }
    data_seen_.clear();
    for (std::uint64_t n = r.u64(); n > 0; --n) {
        QueryKey key;
        key.group = r.u32();
        key.source = r.u32();
        std::set<std::uint32_t>& seen = data_seen_[key];
        for (std::uint64_t m = r.u64(); m > 0; --m) seen.insert(r.u32());
    }
    pending_forwards_.clear();
    for (std::uint64_t n = r.u64(); n > 0; --n) {
        QueryKey key;
        key.group = r.u32();
        key.source = r.u32();
        const std::uint32_t seq = r.u32();
        PendingForward pending;
        pending.copies_heard = r.i32();
        pending.tx_id = r.u64();
        pending_forwards_[{key, seq}] = pending;
    }
    pending_tx_.clear();
    for (std::uint64_t n = r.u64(); n > 0; --n) {
        const std::uint64_t id = r.u64();
        PendingTx tx;
        tx.kind = static_cast<TxKind>(r.u8());
        tx.key.group = r.u32();
        tx.key.source = r.u32();
        tx.data_seq = r.u32();
        tx.packet = net::load_packet(r, pkts);
        pending_tx_.emplace(id, std::move(tx));
    }
    next_tx_id_ = r.u64();
    stats_.queries_sent = r.u64();
    stats_.replies_sent = r.u64();
    stats_.data_sent = r.u64();
    stats_.data_suppressed = r.u64();
    stats_.data_delivered = r.u64();
    stats_.data_duplicates = r.u64();
    stats_.dropped_asleep = r.u64();
    jitter_rng_.load(r);
}

sim::InplaceCallback MulticastNode::rebuild_event(const sim::EventTag& tag) {
    switch (static_cast<sim::EventKind>(tag.kind)) {
        case sim::EventKind::kMcastRefresh: {
            const net::GroupId group = tag.x;
            return sim::InplaceCallback([this, group] { do_refresh(group); });
        }
        case sim::EventKind::kMcastDecision: {
            const QueryKey key{tag.x, tag.y};
            return sim::InplaceCallback([this, key] { decide_upstream(key); });
        }
        case sim::EventKind::kMcastJitteredTx: {
            const std::uint64_t id = tag.a;
            return sim::InplaceCallback([this, id] { fire_pending_tx(id); });
        }
        default:
            throw std::logic_error("MulticastNode::rebuild_event: unexpected tag kind");
    }
}

void MulticastNode::event_placed(const sim::EventTag& tag, sim::EventId id) {
    switch (static_cast<sim::EventKind>(tag.kind)) {
        case sim::EventKind::kMcastRefresh:
            sources_.at(tag.x).refresh_event = id;
            break;
        case sim::EventKind::kMcastDecision:
            rounds_.at(QueryKey{tag.x, tag.y}).decision_event = id;
            break;
        case sim::EventKind::kMcastJitteredTx: {
            const auto it = pending_tx_.find(tag.a);
            if (it != pending_tx_.end() && it->second.kind == TxKind::DataForward) {
                pending_forwards_.at({it->second.key, it->second.data_seq}).event = id;
            }
            break;
        }
        default:
            break;
    }
}

MulticastFleet::MulticastFleet(net::World& world, const MulticastConfig& config) {
    nodes_.reserve(world.size());
    for (const auto& node : world.nodes()) {
        nodes_.push_back(std::make_unique<MulticastNode>(*node, config));
    }
}

MulticastNode::Stats MulticastFleet::total_stats() const {
    MulticastNode::Stats total;
    for (const auto& n : nodes_) {
        const auto& s = n->stats();
        total.queries_sent += s.queries_sent;
        total.replies_sent += s.replies_sent;
        total.data_sent += s.data_sent;
        total.data_suppressed += s.data_suppressed;
        total.data_delivered += s.data_delivered;
        total.data_duplicates += s.data_duplicates;
        total.dropped_asleep += s.dropped_asleep;
    }
    return total;
}

}  // namespace cocoa::multicast
