#include "multicast/odmrp.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "geom/motion.hpp"

namespace cocoa::multicast {

namespace {
constexpr double kInfiniteLifetime = std::numeric_limits<double>::infinity();
}

MulticastNode::MulticastNode(net::Node& node, const MulticastConfig& config)
    : node_(node),
      config_(config),
      jitter_rng_(node.simulator().rng().stream("multicast.jitter", node.id())) {
    node_.host().register_handler(
        net::Port::McastControl,
        [this](const net::Packet& p, const net::RxInfo& i) { on_control(p, i); });
    node_.host().register_handler(
        net::Port::McastData,
        [this](const net::Packet& p, const net::RxInfo& i) { on_data(p, i); });

    const std::string prefix = "node." + std::to_string(node_.id()) + ".mcast.";
    obs::CounterRegistry& reg = node_.radio().medium().obs().counters;
    reg.add(prefix + "queries_sent", &stats_.queries_sent);
    reg.add(prefix + "replies_sent", &stats_.replies_sent);
    reg.add(prefix + "data_sent", &stats_.data_sent);
    reg.add(prefix + "data_suppressed", &stats_.data_suppressed);
    reg.add(prefix + "data_delivered", &stats_.data_delivered);
    reg.add(prefix + "data_duplicates", &stats_.data_duplicates);
    reg.add(prefix + "dropped_asleep", &stats_.dropped_asleep);
}

void MulticastNode::safe_send(net::Packet packet) {
    if (!node_.radio().awake()) {
        ++stats_.dropped_asleep;
        return;
    }
    node_.radio().send(std::move(packet));
}

void MulticastNode::join(net::GroupId group) { member_groups_[group] = true; }

void MulticastNode::leave(net::GroupId group) { member_groups_.erase(group); }

void MulticastNode::start_source(net::GroupId group) {
    if (sources_.contains(group)) return;
    sources_[group];  // default state
    do_refresh(group);
}

void MulticastNode::stop_source(net::GroupId group) {
    auto it = sources_.find(group);
    if (it == sources_.end()) return;
    node_.simulator().cancel(it->second.refresh_event);
    sources_.erase(it);
}

void MulticastNode::refresh_now(net::GroupId group) {
    if (!sources_.contains(group)) {
        throw std::logic_error("MulticastNode::refresh_now: not a source for group");
    }
    do_refresh(group);
}

void MulticastNode::schedule_refresh(net::GroupId group) {
    auto it = sources_.find(group);
    if (it == sources_.end() || !config_.auto_refresh) return;
    it->second.refresh_event =
        node_.simulator().schedule_in(config_.refresh_interval, [this, group] {
            do_refresh(group);
        });
}

void MulticastNode::do_refresh(net::GroupId group) {
    auto it = sources_.find(group);
    if (it == sources_.end()) return;
    // Cancel any timer refresh that refresh_now() is pre-empting.
    node_.simulator().cancel(it->second.refresh_event);

    net::JoinQueryPayload query;
    query.group = group;
    query.source = node_.id();
    query.seq = it->second.next_query_seq++;
    query.prev_hop = node_.id();
    query.hop_count = 0;
    query.sender_motion = node_.mobility().motion_state();
    query.path_lifetime_s = kInfiniteLifetime;

    net::Packet packet;
    packet.port = net::Port::McastControl;
    packet.payload_bytes = config_.query_bytes;
    packet.payload = query;
    safe_send(std::move(packet));
    ++stats_.queries_sent;

    schedule_refresh(group);
}

double MulticastNode::predicted_link_lifetime(const geom::MotionState& sender) const {
    double range = config_.lifetime_range_m;
    if (range <= 0.0) {
        range = node_.radio().medium().channel().max_range_m();
    }
    return geom::link_lifetime(sender, node_.mobility().motion_state(), range);
}

void MulticastNode::on_control(const net::Packet& packet, const net::RxInfo& info) {
    if (const auto* query = std::get_if<net::JoinQueryPayload>(&packet.payload)) {
        handle_query(*query, info);
    } else if (const auto* reply = std::get_if<net::JoinReplyPayload>(&packet.payload)) {
        handle_reply(*reply);
    }
}

void MulticastNode::handle_query(const net::JoinQueryPayload& query,
                                 const net::RxInfo& /*info*/) {
    if (query.source == node_.id()) return;  // echo of our own flood

    const QueryKey key{query.group, query.source};
    QueryRound& round = rounds_[key];

    if (round.best_upstream != net::kInvalidId && query.seq < round.seq) return;  // stale
    const bool new_round = query.seq > round.seq || round.best_upstream == net::kInvalidId;
    if (new_round && query.seq >= round.seq) {
        node_.simulator().cancel(round.decision_event);
        round = QueryRound{};
        round.seq = query.seq;
        if (config_.variant == Variant::Mrmm && !config_.query_aggregation.is_zero()) {
            round.decision_event = node_.simulator().schedule_in(
                config_.query_aggregation, [this, key] { decide_upstream(key); });
        }
    } else if (query.seq != round.seq || round.rebroadcast_done) {
        // A late copy of the round we already acted on.
        return;
    }

    // Candidate upstream: the node that (re)broadcast this copy.
    const double link_life = predicted_link_lifetime(query.sender_motion);
    const double path_life = std::min(query.path_lifetime_s, link_life);
    const std::uint8_t hops = static_cast<std::uint8_t>(query.hop_count + 1);

    bool better = false;
    if (round.best_upstream == net::kInvalidId) {
        better = true;
    } else if (config_.variant == Variant::Mrmm) {
        better = path_life > round.best_path_lifetime ||
                 (path_life == round.best_path_lifetime && hops < round.best_hops);
    }
    if (better) {
        round.best_upstream = query.prev_hop;
        round.best_hops = hops;
        round.best_lifetime = link_life;
        round.best_path_lifetime = path_life;
    }

    // Classic ODMRP (or aggregation disabled): act on the first copy.
    if (config_.variant == Variant::Odmrp || config_.query_aggregation.is_zero()) {
        decide_upstream(key);
    }
}

void MulticastNode::decide_upstream(QueryKey key) {
    QueryRound& round = rounds_[key];
    if (round.best_upstream == net::kInvalidId || round.rebroadcast_done) return;
    round.rebroadcast_done = true;

    // Members answer the query with a JOIN REPLY that recruits the chosen
    // upstream into the forwarding group.
    if (is_member(key.group)) {
        send_reply(key.group, key.source, round.seq, round.best_upstream);
    }

    // Everyone floods the query onward (bounded by max_hops).
    if (round.best_hops < config_.max_hops) {
        net::JoinQueryPayload onward;
        onward.group = key.group;
        onward.source = key.source;
        onward.seq = round.seq;
        onward.prev_hop = node_.id();
        onward.hop_count = round.best_hops;
        onward.path_lifetime_s = round.best_path_lifetime;

        net::Packet packet;
        packet.port = net::Port::McastControl;
        packet.payload_bytes = config_.query_bytes;

        const sim::Duration jitter = sim::Duration::nanos(
            jitter_rng_.uniform_int(0, config_.reply_jitter_max.to_nanos()));
        node_.simulator().schedule_in(jitter, [this, packet, onward]() mutable {
            // Motion snapshot taken at transmit time, not decision time.
            onward.sender_motion = node_.mobility().motion_state();
            packet.payload = onward;
            safe_send(std::move(packet));
            ++stats_.queries_sent;
        });
    }
}

void MulticastNode::send_reply(net::GroupId group, net::NodeId source, std::uint32_t seq,
                               net::NodeId next_hop) {
    const QueryKey key{group, source};
    if (const auto it = replied_seq_.find(key);
        it != replied_seq_.end() && it->second >= seq) {
        return;  // already answered this round
    }
    replied_seq_[key] = seq;

    net::JoinReplyPayload reply;
    reply.group = group;
    reply.source = source;
    reply.seq = seq;
    reply.sender = node_.id();
    reply.next_hop = next_hop;

    net::Packet packet;
    packet.port = net::Port::McastControl;
    packet.payload_bytes = config_.reply_bytes;
    packet.payload = reply;

    const sim::Duration jitter = sim::Duration::nanos(
        jitter_rng_.uniform_int(0, config_.reply_jitter_max.to_nanos()));
    node_.simulator().schedule_in(jitter, [this, packet]() mutable {
        safe_send(std::move(packet));
        ++stats_.replies_sent;
    });
}

void MulticastNode::handle_reply(const net::JoinReplyPayload& reply) {
    if (reply.next_hop != node_.id()) return;

    // We are recruited: hold forwarding-group state for this group.
    forwarder_until_[reply.group] =
        node_.simulator().now() + config_.fg_timeout;

    if (reply.source == node_.id()) return;  // mesh reached the source

    // Propagate the recruitment toward the source along our own upstream.
    const QueryKey key{reply.group, reply.source};
    const auto it = rounds_.find(key);
    if (it == rounds_.end() || it->second.best_upstream == net::kInvalidId) return;
    send_reply(reply.group, reply.source, it->second.seq, it->second.best_upstream);
}

bool MulticastNode::is_forwarder(net::GroupId group) const {
    const auto it = forwarder_until_.find(group);
    return it != forwarder_until_.end() && node_.simulator().now() < it->second;
}

void MulticastNode::reset_soft_state() {
    for (auto& [key, round] : rounds_) {
        if (round.decision_event.valid()) {
            node_.simulator().cancel(round.decision_event);
        }
    }
    rounds_.clear();
    for (auto& [key, pending] : pending_forwards_) {
        if (pending.event.valid()) {
            node_.simulator().cancel(pending.event);
        }
    }
    pending_forwards_.clear();
    replied_seq_.clear();
    forwarder_until_.clear();
    data_seen_.clear();
}

void MulticastNode::send_data(net::GroupId group,
                              std::shared_ptr<const net::Packet> inner) {
    auto it = sources_.find(group);
    if (it == sources_.end()) {
        throw std::logic_error("MulticastNode::send_data: not a source for group");
    }
    if (!inner) {
        throw std::invalid_argument("MulticastNode::send_data: null inner packet");
    }

    net::McastDataPayload data;
    data.group = group;
    data.source = node_.id();
    data.seq = it->second.next_data_seq++;
    data.prev_hop = node_.id();
    data.inner = std::move(inner);

    net::Packet packet;
    packet.port = net::Port::McastData;
    packet.payload_bytes = config_.data_header_bytes + data.inner->payload_bytes;
    packet.payload = std::move(data);
    safe_send(std::move(packet));
    ++stats_.data_sent;
}

void MulticastNode::on_data(const net::Packet& packet, const net::RxInfo& info) {
    const auto* data = std::get_if<net::McastDataPayload>(&packet.payload);
    if (data == nullptr || data->source == node_.id()) return;

    const QueryKey key{data->group, data->source};
    auto& seen = data_seen_[key];
    if (seen.contains(data->seq)) {
        ++stats_.data_duplicates;
        // MRMM redundancy suppression: if we are still waiting to echo this
        // packet and enough neighbours already have, stay quiet.
        const auto pf = pending_forwards_.find({key, data->seq});
        if (pf != pending_forwards_.end()) {
            pf->second.copies_heard += 1;
            if (config_.variant == Variant::Mrmm && config_.data_suppression_copies > 0 &&
                pf->second.copies_heard >= config_.data_suppression_copies) {
                node_.simulator().cancel(pf->second.event);
                pending_forwards_.erase(pf);
                ++stats_.data_suppressed;
            }
        }
        return;
    }
    seen.insert(data->seq);

    if (is_member(data->group) && data->inner) {
        ++stats_.data_delivered;
        if (deliver_) deliver_(data->group, *data->inner, info);
    }

    if (!is_forwarder(data->group)) return;

    // Forward along the mesh after a short jitter (cancellable for MRMM
    // suppression).
    net::McastDataPayload onward = *data;
    onward.prev_hop = node_.id();
    net::Packet fwd;
    fwd.port = net::Port::McastData;
    fwd.payload_bytes = packet.payload_bytes;
    fwd.payload = std::move(onward);

    const auto pf_key = std::make_pair(key, data->seq);
    const sim::Duration jitter = sim::Duration::nanos(
        jitter_rng_.uniform_int(0, config_.data_jitter_max.to_nanos()));
    const sim::EventId event =
        node_.simulator().schedule_in(jitter, [this, fwd, pf_key]() mutable {
            pending_forwards_.erase(pf_key);
            safe_send(std::move(fwd));
            ++stats_.data_sent;
        });
    pending_forwards_[pf_key] = PendingForward{event, 0};
}

MulticastFleet::MulticastFleet(net::World& world, const MulticastConfig& config) {
    nodes_.reserve(world.size());
    for (const auto& node : world.nodes()) {
        nodes_.push_back(std::make_unique<MulticastNode>(*node, config));
    }
}

MulticastNode::Stats MulticastFleet::total_stats() const {
    MulticastNode::Stats total;
    for (const auto& n : nodes_) {
        const auto& s = n->stats();
        total.queries_sent += s.queries_sent;
        total.replies_sent += s.replies_sent;
        total.data_sent += s.data_sent;
        total.data_suppressed += s.data_suppressed;
        total.data_delivered += s.data_delivered;
        total.data_duplicates += s.data_duplicates;
        total.dropped_asleep += s.dropped_asleep;
    }
    return total;
}

}  // namespace cocoa::multicast
