#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace cocoa::sim {
struct EventTag;
namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt
}  // namespace cocoa::sim

namespace cocoa::net {
struct PacketSaveCtx;
struct PacketLoadCtx;
}  // namespace cocoa::net

namespace cocoa::multicast {

/// Protocol variant. MRMM (Das et al., ICRA'05) is ODMRP extended with the
/// mobility knowledge of robot networks:
///  - upstream selection by maximum predicted bottleneck link lifetime
///    instead of first-heard JOIN QUERY, which concentrates the mesh on
///    long-lived links (fewer reconstructions, sparser forwarding group);
///  - redundant data rebroadcast suppression (a forwarder that has already
///    heard the same data echoed by enough neighbours stays quiet).
enum class Variant { Odmrp, Mrmm };

struct MulticastConfig {
    Variant variant = Variant::Mrmm;

    /// JOIN QUERY refresh period while a source is active.
    sim::Duration refresh_interval = sim::Duration::seconds(20.0);
    /// When false, no periodic timer runs: the application drives mesh
    /// refreshes via refresh_now() (CoCoA does this at period starts so all
    /// radios are guaranteed awake).
    bool auto_refresh = true;
    /// Forwarding-group soft-state lifetime (typically ~3x refresh).
    sim::Duration fg_timeout = sim::Duration::seconds(60.0);
    /// Max hops a JOIN QUERY travels.
    std::uint8_t max_hops = 16;

    /// Random delay before JOIN REPLY / query rebroadcast (collision avoidance).
    sim::Duration reply_jitter_max = sim::Duration::millis(50);
    /// Random delay before a forwarder echoes a data packet.
    sim::Duration data_jitter_max = sim::Duration::millis(20);

    /// MRMM: how long a node collects JOIN QUERY copies before picking its
    /// upstream (0 = act on first copy, i.e. classic ODMRP behaviour).
    sim::Duration query_aggregation = sim::Duration::millis(120);
    /// MRMM: suppress a data rebroadcast after hearing this many copies
    /// (0 = never suppress).
    int data_suppression_copies = 2;
    /// Range used by the link-lifetime predictor; 0 = channel nominal range.
    double lifetime_range_m = 0.0;

    /// Wire-size accounting (application payload bytes).
    std::size_t query_bytes = 44;
    std::size_t reply_bytes = 24;
    std::size_t data_header_bytes = 16;
};

/// Per-node ODMRP/MRMM instance. Attach one to each robot; pick one node as
/// the source per group (CoCoA: the Sync robot), join() the members, then
/// send_data() flows down the mesh.
class MulticastNode {
  public:
    /// Called on group members for each unique data packet, with the inner
    /// application packet.
    using DeliverHandler =
        std::function<void(net::GroupId, const net::Packet& inner, const net::RxInfo&)>;

    struct Stats {
        std::uint64_t queries_sent = 0;      ///< originated + rebroadcast
        std::uint64_t replies_sent = 0;
        std::uint64_t data_sent = 0;         ///< originated + forwarded
        std::uint64_t data_suppressed = 0;   ///< MRMM redundancy suppression
        std::uint64_t data_delivered = 0;    ///< unique deliveries to this member
        std::uint64_t data_duplicates = 0;
        std::uint64_t dropped_asleep = 0;    ///< sends skipped because the radio slept
    };

    MulticastNode(net::Node& node, const MulticastConfig& config);

    MulticastNode(const MulticastNode&) = delete;
    MulticastNode& operator=(const MulticastNode&) = delete;

    void set_deliver_handler(DeliverHandler handler) { deliver_ = std::move(handler); }

    /// Becomes a receiving member of `group`.
    void join(net::GroupId group);
    void leave(net::GroupId group);
    bool is_member(net::GroupId group) const { return member_groups_.contains(group); }

    /// Starts periodic JOIN QUERY refreshes for `group` with this node as the
    /// multicast source.
    void start_source(net::GroupId group);
    void stop_source(net::GroupId group);

    /// Immediately floods one extra JOIN QUERY round (e.g. right before an
    /// important data burst, as CoCoA does at period boundaries).
    void refresh_now(net::GroupId group);

    /// Sends `inner` down the mesh. Only valid on an active source.
    void send_data(net::GroupId group, std::shared_ptr<const net::Packet> inner);

    /// True while this node holds forwarding-group soft state for `group`.
    bool is_forwarder(net::GroupId group) const;

    /// Drops all volatile protocol state, as a real reboot would: pending
    /// upstream decisions and forward timers are cancelled; forwarding-group
    /// membership, reply history and the data-dedup cache are cleared. Group
    /// membership and active-source roles (with their sequence counters)
    /// survive — they are configuration, and a rebooted source re-using old
    /// seqs would collide with copies still cached at receivers.
    void reset_soft_state();

    const Stats& stats() const { return stats_; }
    net::NodeId id() const { return node_.id(); }

    /// Checkpoint: serializes all protocol soft state (rounds, forwarding
    /// group, dedup caches, parked jittered transmissions with their packets)
    /// plus the jitter RNG and stats. Pending kernel events are *not* saved
    /// here — the kernel snapshot holds them; rebuild_event()/event_placed()
    /// rebuild the callbacks and re-learn the EventIds on restore.
    void save_state(sim::ckpt::Writer& w, net::PacketSaveCtx& pkts) const;
    void load_state(sim::ckpt::Reader& r, net::PacketLoadCtx& pkts);
    /// Rebuilds the in-kernel callback for one of this node's tagged events
    /// (kMcastRefresh / kMcastDecision / kMcastJitteredTx).
    sim::InplaceCallback rebuild_event(const sim::EventTag& tag);
    /// Invoked after the kernel re-schedules a rebuilt event, so the state
    /// maps can re-learn the EventId (for later cancel()).
    void event_placed(const sim::EventTag& tag, sim::EventId id);

  private:
    struct QueryKey {
        net::GroupId group;
        net::NodeId source;
        auto operator<=>(const QueryKey&) const = default;
    };
    /// Pending upstream decision for one (group, source) refresh round.
    struct QueryRound {
        std::uint32_t seq = 0;
        bool rebroadcast_done = false;
        std::uint8_t best_hops = 0;
        net::NodeId best_upstream = net::kInvalidId;
        double best_lifetime = -1.0;
        double best_path_lifetime = -1.0;  ///< value to propagate if we rebroadcast
        sim::EventId decision_event;
    };
    struct SourceState {
        std::uint32_t next_query_seq = 0;
        std::uint32_t next_data_seq = 0;
        sim::EventId refresh_event;
    };
    struct PendingForward {
        sim::EventId event;
        int copies_heard = 0;
        std::uint64_t tx_id = 0;  ///< parked packet in pending_tx_
    };
    /// What a parked jittered transmission does when its timer fires.
    enum class TxKind : std::uint8_t { Query = 0, Reply = 1, DataForward = 2 };
    /// A fully-built packet waiting out its collision-avoidance jitter. The
    /// kernel event only carries the id, so the packet itself checkpoints
    /// with the rest of the protocol state.
    struct PendingTx {
        net::Packet packet;
        TxKind kind = TxKind::Reply;
        QueryKey key{};             ///< DataForward: pending_forwards_ entry
        std::uint32_t data_seq = 0;
    };

    /// Sends unless the radio has gone to sleep in the meantime (window-edge
    /// races between protocol jitter timers and the CoCoA sleep schedule).
    void safe_send(net::Packet packet);

    void on_control(const net::Packet& packet, const net::RxInfo& info);
    void on_data(const net::Packet& packet, const net::RxInfo& info);
    void handle_query(const net::JoinQueryPayload& query, const net::RxInfo& info);
    void handle_reply(const net::JoinReplyPayload& reply);
    void decide_upstream(QueryKey key);
    void send_reply(net::GroupId group, net::NodeId source, std::uint32_t seq,
                    net::NodeId next_hop);
    void schedule_refresh(net::GroupId group);
    void do_refresh(net::GroupId group);
    double predicted_link_lifetime(const geom::MotionState& sender) const;
    std::uint64_t park_tx(net::Packet packet, TxKind kind, QueryKey key = {},
                          std::uint32_t data_seq = 0);
    void fire_pending_tx(std::uint64_t id);

    net::Node& node_;
    MulticastConfig config_;
    sim::RandomStream jitter_rng_;
    DeliverHandler deliver_;

    std::map<net::GroupId, bool> member_groups_;
    std::map<net::GroupId, SourceState> sources_;
    std::map<net::GroupId, sim::TimePoint> forwarder_until_;
    std::map<QueryKey, QueryRound> rounds_;
    /// Seq of the last JOIN REPLY sent per (group, source) — one per round.
    std::map<QueryKey, std::uint32_t> replied_seq_;
    /// Data seqs already seen per (group, source); traffic is light enough
    /// that an explicit set is the simplest correct dedup.
    std::map<QueryKey, std::set<std::uint32_t>> data_seen_;
    std::map<std::pair<QueryKey, std::uint32_t>, PendingForward> pending_forwards_;
    /// Jitter-parked transmissions keyed by the id their kernel event carries.
    std::map<std::uint64_t, PendingTx> pending_tx_;
    std::uint64_t next_tx_id_ = 0;

    Stats stats_;
};

/// Bundles per-node instances for a whole world (used by scenarios/benches).
class MulticastFleet {
  public:
    MulticastFleet(net::World& world, const MulticastConfig& config);

    MulticastNode& at(net::NodeId id) { return *nodes_.at(id); }
    const MulticastNode& at(net::NodeId id) const { return *nodes_.at(id); }
    std::size_t size() const { return nodes_.size(); }

    /// Sums per-node stats across the fleet.
    MulticastNode::Stats total_stats() const;

  private:
    std::vector<std::unique_ptr<MulticastNode>> nodes_;
};

}  // namespace cocoa::multicast
