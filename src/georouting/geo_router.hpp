#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace cocoa::georouting {

/// Configuration of the position-based router.
struct GeoRouterConfig {
    sim::Duration hello_interval = sim::Duration::seconds(5.0);
    /// Neighbours not heard for this long are evicted (~3 hello periods).
    sim::Duration neighbor_timeout = sim::Duration::seconds(15.0);
    /// Random jitter applied to each hello (desynchronizes the fleet).
    sim::Duration hello_jitter_max = sim::Duration::millis(500);
    std::size_t hello_bytes = 12;
    std::size_t data_header_bytes = 40;
    std::size_t ack_bytes = 14;
    std::uint8_t ttl = 64;
    /// Link-layer ARQ (emulating 802.11 unicast): retransmissions per hop
    /// before the next hop is blacklisted and the packet re-routed.
    int max_retries = 3;
    sim::Duration ack_timeout = sim::Duration::millis(40);
};

/// Position-based unicast routing: greedy forwarding with face-routing
/// recovery on the Gabriel-planarized neighbour graph — the "scalable
/// geographic routing" (Bose et al., the paper's citation [23]) that §6
/// names as the application CoCoA coordinates are good enough for.
///
/// Positions are whatever the supplied provider returns: ground truth, the
/// CoCoA estimate, or raw odometry — the extension bench compares them.
///
/// Simplification vs full GFG/GPSR: face traversal uses the right-hand rule
/// with the greedy-return condition (resume greedy once closer to the
/// destination than where face mode started) but omits the face-crossing
/// test; the TTL bounds any residual traversal loop.
class GeoRouter {
  public:
    using PositionFn = std::function<geom::Vec2()>;
    using DeliverHandler = std::function<void(const net::GeoDataPayload&)>;

    struct Stats {
        std::uint64_t originated = 0;
        std::uint64_t delivered = 0;        ///< packets that reached this node
        std::uint64_t forwarded_greedy = 0;
        std::uint64_t forwarded_face = 0;
        std::uint64_t dropped_no_neighbor = 0;
        std::uint64_t dropped_ttl = 0;
        std::uint64_t dropped_asleep = 0;
        std::uint64_t hellos_sent = 0;
        std::uint64_t retransmits = 0;   ///< ARQ retries after a missing ACK
        std::uint64_t reroutes = 0;      ///< next hop blacklisted, path recomputed
        std::uint64_t duplicates_swallowed = 0;  ///< repeats over the same edge
    };

    struct Neighbor {
        geom::Vec2 position;       ///< as advertised (the neighbour's estimate)
        sim::TimePoint last_seen;
    };

    /// `self_position` supplies this node's own (estimated) position for both
    /// hellos and forwarding decisions.
    GeoRouter(net::Node& node, const GeoRouterConfig& config, PositionFn self_position);

    GeoRouter(const GeoRouter&) = delete;
    GeoRouter& operator=(const GeoRouter&) = delete;

    /// Begins periodic hello beaconing.
    void start();
    /// Stops hello beaconing (pending forwards still complete).
    void stop();

    void set_deliver_handler(DeliverHandler handler) { deliver_ = std::move(handler); }

    /// Routes `payload_bytes` of application data toward `dest`, believed to
    /// be at `dest_position`. Returns false (and counts a drop) when there is
    /// no useful neighbour at all.
    bool send(net::NodeId dest, geom::Vec2 dest_position, std::size_t payload_bytes,
              std::uint64_t app_tag = 0);

    std::size_t neighbor_count() const;
    const std::map<net::NodeId, Neighbor>& neighbors() const { return neighbors_; }
    const Stats& stats() const { return stats_; }
    net::NodeId id() const { return node_.id(); }

  private:
    void send_hello();
    void on_hello(const net::Packet& packet);
    void on_data(const net::Packet& packet);
    void on_ack(const net::GeoAckPayload& ack);
    /// Routes or drops; consumes the payload.
    void route(net::GeoDataPayload data, std::size_t payload_bytes);
    void transmit(const net::GeoDataPayload& data, std::size_t payload_bytes);
    void send_link_ack(const net::GeoDataPayload& data);
    void on_ack_timeout(std::uint64_t key);
    void expire_neighbors();

    /// Greedy next hop: the neighbour strictly closer to `dest` than we are,
    /// minimizing remaining distance; kInvalidId if none (local minimum).
    net::NodeId greedy_next(const geom::Vec2& dest) const;

    /// Neighbours that survive the Gabriel-graph planarization test.
    std::vector<net::NodeId> planar_neighbors() const;

    /// Right-hand-rule successor: the planar neighbour with the smallest
    /// counter-clockwise angle from the reference direction (self -> ref).
    net::NodeId face_next(const geom::Vec2& ref, net::NodeId prev) const;

    /// One per-hop ARQ transaction, keyed by (origin, seq).
    struct PendingAck {
        net::GeoDataPayload data;
        std::size_t payload_bytes = 0;
        int retries_left = 0;
        sim::EventId timer;
    };
    /// Memory of the last handling of a packet, to swallow retransmitted
    /// duplicates (their ACK was lost) without breaking legitimate face
    /// revisits, which arrive from a different previous hop.
    struct SeenRecord {
        net::NodeId prev_hop = net::kInvalidId;
        net::GeoMode mode = net::GeoMode::Greedy;
        sim::TimePoint when;
    };
    static std::uint64_t packet_key(net::NodeId origin, std::uint32_t seq) {
        return (static_cast<std::uint64_t>(origin) << 32) | seq;
    }

    net::Node& node_;
    GeoRouterConfig config_;
    PositionFn self_position_;
    sim::RandomStream jitter_rng_;
    DeliverHandler deliver_;
    std::map<net::NodeId, Neighbor> neighbors_;
    std::map<std::uint64_t, PendingAck> pending_acks_;
    std::map<std::uint64_t, SeenRecord> seen_;
    sim::EventId hello_event_;
    bool running_ = false;
    std::uint32_t next_seq_ = 0;
    Stats stats_;
};

/// Per-node routers for a whole world.
class GeoRoutingFleet {
  public:
    /// `position_for` builds each node's position provider (truth, CoCoA
    /// estimate, odometry, ...).
    GeoRoutingFleet(net::World& world, const GeoRouterConfig& config,
                    const std::function<GeoRouter::PositionFn(net::NodeId)>& position_for);

    GeoRouter& at(net::NodeId id) { return *routers_.at(id); }
    std::size_t size() const { return routers_.size(); }
    void start_all();
    GeoRouter::Stats total_stats() const;

  private:
    std::vector<std::unique_ptr<GeoRouter>> routers_;
};

}  // namespace cocoa::georouting
