#include "georouting/geo_router.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cocoa::georouting {

namespace {
constexpr double kTwoPi = 2.0 * 3.14159265358979323846;

/// Counter-clockwise angle from vector `a` to vector `b`, in (0, 2*pi].
double ccw_angle(const geom::Vec2& a, const geom::Vec2& b) {
    const double cross = a.x * b.y - a.y * b.x;
    const double angle = std::atan2(cross, a.dot(b));
    if (angle <= 0.0) return angle + kTwoPi;
    return angle;
}
}  // namespace

GeoRouter::GeoRouter(net::Node& node, const GeoRouterConfig& config,
                     PositionFn self_position)
    : node_(node),
      config_(config),
      self_position_(std::move(self_position)),
      jitter_rng_(node.simulator().rng().stream("georouting.jitter", node.id())) {
    if (!self_position_) {
        throw std::invalid_argument("GeoRouter: position provider required");
    }
    if (config_.hello_interval <= sim::Duration::zero() ||
        config_.neighbor_timeout <= sim::Duration::zero()) {
        throw std::invalid_argument("GeoRouter: positive hello/timeout required");
    }
    node_.host().register_handler(
        net::Port::GeoHello,
        [this](const net::Packet& p, const net::RxInfo&) { on_hello(p); });
    node_.host().register_handler(
        net::Port::GeoData,
        [this](const net::Packet& p, const net::RxInfo&) { on_data(p); });
}

void GeoRouter::start() {
    if (running_) return;
    running_ = true;
    send_hello();
}

void GeoRouter::stop() {
    running_ = false;
    node_.simulator().cancel(hello_event_);
    hello_event_ = sim::EventId{};
}

void GeoRouter::send_hello() {
    if (!running_) return;
    if (node_.radio().awake()) {
        net::Packet packet;
        packet.port = net::Port::GeoHello;
        packet.payload_bytes = config_.hello_bytes;
        packet.payload = net::GeoHelloPayload{self_position_()};
        node_.radio().send(std::move(packet));
        ++stats_.hellos_sent;
    } else {
        ++stats_.dropped_asleep;
    }
    const sim::Duration jitter = sim::Duration::nanos(
        jitter_rng_.uniform_int(0, config_.hello_jitter_max.to_nanos()));
    hello_event_ =
        node_.simulator().schedule_in(config_.hello_interval + jitter,
                                      [this] { send_hello(); });
}

void GeoRouter::on_hello(const net::Packet& packet) {
    const auto* hello = std::get_if<net::GeoHelloPayload>(&packet.payload);
    if (hello == nullptr) return;
    neighbors_[packet.src] = Neighbor{hello->position, node_.simulator().now()};
}

void GeoRouter::expire_neighbors() {
    const sim::TimePoint now = node_.simulator().now();
    std::erase_if(neighbors_, [&](const auto& kv) {
        return now - kv.second.last_seen > config_.neighbor_timeout;
    });
}

std::size_t GeoRouter::neighbor_count() const { return neighbors_.size(); }

bool GeoRouter::send(net::NodeId dest, geom::Vec2 dest_position,
                     std::size_t payload_bytes, std::uint64_t app_tag) {
    ++stats_.originated;
    net::GeoDataPayload data;
    data.origin = node_.id();
    data.dest = dest;
    data.dest_position = dest_position;
    data.seq = next_seq_++;
    data.ttl = config_.ttl;
    data.prev_hop = node_.id();
    data.app_tag = app_tag;
    const std::uint64_t drops_before = stats_.dropped_no_neighbor;
    route(std::move(data), payload_bytes);
    return stats_.dropped_no_neighbor == drops_before;
}

void GeoRouter::on_data(const net::Packet& packet) {
    if (const auto* ack = std::get_if<net::GeoAckPayload>(&packet.payload)) {
        on_ack(*ack);
        return;
    }
    const auto* data = std::get_if<net::GeoDataPayload>(&packet.payload);
    if (data == nullptr) return;
    if (data->next_hop != node_.id()) return;  // broadcast medium: not for us

    // Link-layer ACK to the previous hop, including for duplicates (our
    // earlier ACK may have been the loss).
    send_link_ack(*data);

    // Swallow retransmitted duplicates: same packet, same arrival edge, same
    // mode, recently handled. Face traversals may legitimately revisit us,
    // but they arrive over a different edge.
    const std::uint64_t key = packet_key(data->origin, data->seq);
    const sim::TimePoint now = node_.simulator().now();
    if (const auto it = seen_.find(key);
        it != seen_.end() && it->second.prev_hop == data->prev_hop &&
        it->second.mode == data->mode &&
        now - it->second.when < sim::Duration::seconds(2.0)) {
        ++stats_.duplicates_swallowed;
        return;
    }
    seen_[key] = SeenRecord{data->prev_hop, data->mode, now};
    if (seen_.size() > 1024) {
        seen_.erase(seen_.begin());  // crude cap; keys grow with origin|seq
    }

    if (data->dest == node_.id()) {
        ++stats_.delivered;
        if (deliver_) deliver_(*data);
        return;
    }
    net::GeoDataPayload onward = *data;
    if (onward.ttl == 0) {
        ++stats_.dropped_ttl;
        return;
    }
    onward.ttl -= 1;
    onward.prev_hop = node_.id();
    route(std::move(onward),
          packet.payload_bytes >= config_.data_header_bytes
              ? packet.payload_bytes - config_.data_header_bytes
              : 0);
}

void GeoRouter::send_link_ack(const net::GeoDataPayload& data) {
    if (!node_.radio().awake()) return;
    net::Packet packet;
    packet.port = net::Port::GeoData;
    packet.payload_bytes = config_.ack_bytes;
    packet.payload = net::GeoAckPayload{data.origin, data.seq, node_.id()};
    node_.radio().send(std::move(packet));
}

void GeoRouter::on_ack(const net::GeoAckPayload& ack) {
    const auto it = pending_acks_.find(packet_key(ack.origin, ack.seq));
    if (it == pending_acks_.end() || it->second.data.next_hop != ack.acker) return;
    node_.simulator().cancel(it->second.timer);
    pending_acks_.erase(it);
}

void GeoRouter::on_ack_timeout(std::uint64_t key) {
    const auto it = pending_acks_.find(key);
    if (it == pending_acks_.end()) return;
    PendingAck& pending = it->second;
    if (pending.retries_left > 0 && node_.radio().awake()) {
        --pending.retries_left;
        ++stats_.retransmits;
        net::Packet packet;
        packet.port = net::Port::GeoData;
        packet.payload_bytes = config_.data_header_bytes + pending.payload_bytes;
        packet.payload = pending.data;
        node_.radio().send(std::move(packet));
        pending.timer = node_.simulator().schedule_in(config_.ack_timeout,
                                                      [this, key] { on_ack_timeout(key); });
        return;
    }
    // ARQ exhausted: the link is bad. Blacklist the neighbour and try a
    // different path for the same packet.
    net::GeoDataPayload data = std::move(pending.data);
    const std::size_t payload_bytes = pending.payload_bytes;
    pending_acks_.erase(it);
    neighbors_.erase(data.next_hop);
    ++stats_.reroutes;
    route(std::move(data), payload_bytes);
}

void GeoRouter::route(net::GeoDataPayload data, std::size_t payload_bytes) {
    expire_neighbors();
    if (!node_.radio().awake()) {
        ++stats_.dropped_asleep;
        return;
    }
    const geom::Vec2 self = self_position_();

    // Destination may be a direct neighbour regardless of geometry.
    if (neighbors_.contains(data.dest)) {
        data.next_hop = data.dest;
        data.mode = net::GeoMode::Greedy;
        ++stats_.forwarded_greedy;
        transmit(data, payload_bytes);
        return;
    }

    // Face mode ends as soon as we are closer to the destination than the
    // point where greedy failed (GFG's recovery-exit rule).
    if (data.mode == net::GeoMode::Face &&
        geom::distance(self, data.dest_position) <
            geom::distance(data.face_entry, data.dest_position)) {
        data.mode = net::GeoMode::Greedy;
    }

    if (data.mode == net::GeoMode::Greedy) {
        const net::NodeId next = greedy_next(data.dest_position);
        if (next != net::kInvalidId) {
            data.next_hop = next;
            ++stats_.forwarded_greedy;
            transmit(data, payload_bytes);
            return;
        }
        // Local minimum: enter face mode around the void.
        data.mode = net::GeoMode::Face;
        data.face_entry = self;
        const net::NodeId fnext = face_next(data.dest_position, data.prev_hop);
        if (fnext == net::kInvalidId) {
            ++stats_.dropped_no_neighbor;
            return;
        }
        data.next_hop = fnext;
        ++stats_.forwarded_face;
        transmit(data, payload_bytes);
        return;
    }

    // Continuing an ongoing face traversal: right-hand rule relative to the
    // edge we arrived on.
    const auto prev_it = neighbors_.find(data.prev_hop);
    const geom::Vec2 ref =
        prev_it != neighbors_.end() ? prev_it->second.position : data.dest_position;
    const net::NodeId next = face_next(ref, data.prev_hop);
    if (next == net::kInvalidId) {
        ++stats_.dropped_no_neighbor;
        return;
    }
    data.next_hop = next;
    ++stats_.forwarded_face;
    transmit(data, payload_bytes);
}

void GeoRouter::transmit(const net::GeoDataPayload& data, std::size_t payload_bytes) {
    net::Packet packet;
    packet.port = net::Port::GeoData;
    packet.payload_bytes = config_.data_header_bytes + payload_bytes;
    packet.payload = data;
    node_.radio().send(std::move(packet));

    if (config_.max_retries > 0) {
        const std::uint64_t key = packet_key(data.origin, data.seq);
        // A previous transaction for this packet (e.g. a reroute) is replaced.
        if (const auto it = pending_acks_.find(key); it != pending_acks_.end()) {
            node_.simulator().cancel(it->second.timer);
            pending_acks_.erase(it);
        }
        PendingAck pending;
        pending.data = data;
        pending.payload_bytes = payload_bytes;
        pending.retries_left = config_.max_retries;
        pending.timer = node_.simulator().schedule_in(config_.ack_timeout,
                                                      [this, key] { on_ack_timeout(key); });
        pending_acks_.emplace(key, std::move(pending));
    }
}

net::NodeId GeoRouter::greedy_next(const geom::Vec2& dest) const {
    const double own = geom::distance(self_position_(), dest);
    net::NodeId best = net::kInvalidId;
    double best_dist = own;
    for (const auto& [id, nb] : neighbors_) {
        const double d = geom::distance(nb.position, dest);
        if (d < best_dist) {
            best_dist = d;
            best = id;
        }
    }
    return best;
}

std::vector<net::NodeId> GeoRouter::planar_neighbors() const {
    // Gabriel graph test: keep edge (self, v) iff no other neighbour w lies
    // inside the circle whose diameter is that edge.
    const geom::Vec2 self = self_position_();
    std::vector<net::NodeId> planar;
    for (const auto& [v, nbv] : neighbors_) {
        const geom::Vec2 mid = (self + nbv.position) * 0.5;
        const double radius_sq = geom::distance_sq(self, nbv.position) * 0.25;
        bool keep = true;
        for (const auto& [w, nbw] : neighbors_) {
            if (w == v) continue;
            if (geom::distance_sq(nbw.position, mid) < radius_sq) {
                keep = false;
                break;
            }
        }
        if (keep) planar.push_back(v);
    }
    return planar;
}

net::NodeId GeoRouter::face_next(const geom::Vec2& ref, net::NodeId prev) const {
    const geom::Vec2 self = self_position_();
    const geom::Vec2 ref_dir = ref - self;
    if (ref_dir.norm_sq() == 0.0) return net::kInvalidId;

    const std::vector<net::NodeId> planar = planar_neighbors();
    net::NodeId best = net::kInvalidId;
    double best_angle = std::numeric_limits<double>::infinity();
    for (const net::NodeId v : planar) {
        if (v == prev) continue;  // only take the arrival edge as a last resort
        const geom::Vec2 dir = neighbors_.at(v).position - self;
        if (dir.norm_sq() == 0.0) continue;
        const double angle = ccw_angle(ref_dir, dir);
        if (angle < best_angle) {
            best_angle = angle;
            best = v;
        }
    }
    if (best == net::kInvalidId && prev != net::kInvalidId &&
        neighbors_.contains(prev)) {
        return prev;  // dead end: walk back along the arrival edge
    }
    return best;
}

GeoRoutingFleet::GeoRoutingFleet(
    net::World& world, const GeoRouterConfig& config,
    const std::function<GeoRouter::PositionFn(net::NodeId)>& position_for) {
    routers_.reserve(world.size());
    for (const auto& node : world.nodes()) {
        routers_.push_back(
            std::make_unique<GeoRouter>(*node, config, position_for(node->id())));
    }
}

void GeoRoutingFleet::start_all() {
    for (auto& r : routers_) r->start();
}

GeoRouter::Stats GeoRoutingFleet::total_stats() const {
    GeoRouter::Stats total;
    for (const auto& r : routers_) {
        const auto& s = r->stats();
        total.originated += s.originated;
        total.delivered += s.delivered;
        total.forwarded_greedy += s.forwarded_greedy;
        total.forwarded_face += s.forwarded_face;
        total.dropped_no_neighbor += s.dropped_no_neighbor;
        total.dropped_ttl += s.dropped_ttl;
        total.dropped_asleep += s.dropped_asleep;
        total.hellos_sent += s.hellos_sent;
        total.retransmits += s.retransmits;
        total.reroutes += s.reroutes;
        total.duplicates_swallowed += s.duplicates_swallowed;
    }
    return total;
}

}  // namespace cocoa::georouting
