#pragma once

#include <cmath>
#include <iosfwd>

namespace cocoa::geom {

/// A 2-D vector / point in metres. Used for robot positions, velocities and
/// displacements throughout the simulator.
struct Vec2 {
    double x = 0.0;
    double y = 0.0;

    constexpr Vec2() = default;
    constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
    constexpr Vec2 operator-() const { return {-x, -y}; }

    Vec2& operator+=(const Vec2& o) { x += o.x; y += o.y; return *this; }
    Vec2& operator-=(const Vec2& o) { x -= o.x; y -= o.y; return *this; }
    Vec2& operator*=(double s) { x *= s; y *= s; return *this; }

    constexpr bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }
    constexpr bool operator!=(const Vec2& o) const { return !(*this == o); }

    /// Squared Euclidean norm (cheap; prefer when only comparing lengths).
    constexpr double norm_sq() const { return x * x + y * y; }
    /// Euclidean norm.
    double norm() const { return std::sqrt(norm_sq()); }
    /// Dot product.
    constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }

    /// Unit vector in the same direction; the zero vector maps to itself.
    Vec2 normalized() const;

    /// Heading angle in radians, measured counter-clockwise from +x, in (-pi, pi].
    double heading() const { return std::atan2(y, x); }

    /// Unit vector pointing along `heading_rad`.
    static Vec2 from_heading(double heading_rad) {
        return {std::cos(heading_rad), std::sin(heading_rad)};
    }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

/// Euclidean distance between two points.
inline double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }

/// Squared Euclidean distance between two points.
constexpr double distance_sq(const Vec2& a, const Vec2& b) {
    return (a - b).norm_sq();
}

/// Normalizes an angle in radians to (-pi, pi].
double wrap_angle(double radians);

/// Degrees → radians.
constexpr double deg_to_rad(double deg) { return deg * 3.14159265358979323846 / 180.0; }
/// Radians → degrees.
constexpr double rad_to_deg(double rad) { return rad * 180.0 / 3.14159265358979323846; }

std::ostream& operator<<(std::ostream& os, const Vec2& v);

}  // namespace cocoa::geom
