#include "geom/vec2.hpp"

#include <ostream>

namespace cocoa::geom {

Vec2 Vec2::normalized() const {
    const double n = norm();
    if (n == 0.0) return {};
    return {x / n, y / n};
}

double wrap_angle(double radians) {
    constexpr double kPi = 3.14159265358979323846;
    constexpr double kTwoPi = 2.0 * kPi;
    double a = std::fmod(radians, kTwoPi);
    if (a <= -kPi) a += kTwoPi;
    if (a > kPi) a -= kTwoPi;
    return a;
}

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
    return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace cocoa::geom
