#include "geom/motion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cocoa::geom {

double link_lifetime(const Vec2& pos_a, const Vec2& vel_a,
                     const Vec2& pos_b, const Vec2& vel_b,
                     double range) {
    const Vec2 dp = pos_b - pos_a;
    const Vec2 dv = vel_b - vel_a;

    if (dp.norm_sq() > range * range) return 0.0;

    // |dp + dv * t|^2 = range^2  =>  a t^2 + b t + c = 0
    const double a = dv.norm_sq();
    const double b = 2.0 * dp.dot(dv);
    const double c = dp.norm_sq() - range * range;

    if (a == 0.0) {
        // Relative position is constant; in range now => in range forever.
        return std::numeric_limits<double>::infinity();
    }

    const double disc = b * b - 4.0 * a * c;
    if (disc < 0.0) {
        // No real crossing: the relative trajectory never reaches the range
        // circle. Since we start inside (c <= 0 guarantees disc >= 0), this
        // can only happen from numeric noise right at the boundary.
        return 0.0;
    }

    // The larger root is the future time at which separation reaches `range`.
    const double t = (-b + std::sqrt(disc)) / (2.0 * a);
    return std::max(t, 0.0);
}

double link_lifetime(const MotionState& a, const MotionState& b, double range) {
    double life = link_lifetime(a.position, a.velocity, b.position, b.velocity, range);
    if (a.plan_horizon_s > 0.0) life = std::min(life, a.plan_horizon_s);
    if (b.plan_horizon_s > 0.0) life = std::min(life, b.plan_horizon_s);
    return life;
}

}  // namespace cocoa::geom
