#include "geom/rect.hpp"

#include <algorithm>
#include <stdexcept>

namespace cocoa::geom {

Rect::Rect(Vec2 min_, Vec2 max_) : min(min_), max(max_) {
    if (min.x > max.x || min.y > max.y) {
        throw std::invalid_argument("Rect: min must not exceed max");
    }
}

Rect Rect::from_bounds(double x_min, double y_min, double x_max, double y_max) {
    return Rect{{x_min, y_min}, {x_max, y_max}};
}

Vec2 Rect::clamp(const Vec2& p) const {
    return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
}

}  // namespace cocoa::geom
