#pragma once

#include "geom/vec2.hpp"

namespace cocoa::geom {

/// Axis-aligned rectangle; used for the robot deployment area
/// [(x_min, x_max) x (y_min, y_max)] of Eq. (1) in the paper.
struct Rect {
    Vec2 min;
    Vec2 max;

    constexpr Rect() = default;
    Rect(Vec2 min_, Vec2 max_);

    /// Rectangle with the given corner coordinates; throws std::invalid_argument
    /// if min > max on either axis.
    static Rect from_bounds(double x_min, double y_min, double x_max, double y_max);

    /// Square area of the given side length anchored at the origin.
    static Rect square(double side) { return from_bounds(0.0, 0.0, side, side); }

    double width() const { return max.x - min.x; }
    double height() const { return max.y - min.y; }
    double area() const { return width() * height(); }
    Vec2 center() const { return (min + max) * 0.5; }
    /// Length of the diagonal — an upper bound on any in-area distance.
    double diagonal() const { return distance(min, max); }

    bool contains(const Vec2& p) const {
        return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
    }

    /// Closest point inside the rectangle to `p`.
    Vec2 clamp(const Vec2& p) const;
};

}  // namespace cocoa::geom
