#pragma once

#include "geom/vec2.hpp"

namespace cocoa::geom {

/// A constant-velocity motion snapshot of a robot, as carried in MRMM JOIN
/// QUERY packets: current position, current velocity, and the remaining time
/// (seconds) the robot will keep this velocity before its plan changes
/// (the paper's d_rest / v / t mobility knowledge).
struct MotionState {
    Vec2 position;
    Vec2 velocity;          ///< metres/second; zero when resting.
    double plan_horizon_s = 0.0;  ///< time for which `velocity` stays valid.
};

/// Predicted time (seconds) for which two nodes moving at constant velocity
/// stay within communication `range` of each other, starting from now.
///
/// Returns 0 if they are already out of range, and +infinity if they never
/// separate (e.g. identical velocities while in range).
double link_lifetime(const Vec2& pos_a, const Vec2& vel_a,
                     const Vec2& pos_b, const Vec2& vel_b,
                     double range);

/// Link lifetime between two motion snapshots, conservatively capped at the
/// smaller of the two plan horizons: beyond the horizon the prediction is
/// unreliable, so MRMM only credits the link with what it can guarantee.
/// A non-positive horizon on either side disables the cap for that side.
double link_lifetime(const MotionState& a, const MotionState& b, double range);

}  // namespace cocoa::geom
