// Mission energy planning: pick the beacon period T for a deployment.
//
// §4.3.1 shows T trades localization accuracy against team energy. This
// example sweeps T, reports the trade-off curve, and recommends the largest
// T (lowest energy) that still meets an application accuracy target — the
// decision a mission operator makes before deployment, and can revise at
// runtime through the Sync robot (see the dynamic_retuning example).

#include <iostream>
#include <vector>

#include "core/scenario.hpp"
#include "metrics/table.hpp"

using namespace cocoa;

int main() {
    constexpr double kAccuracyTargetM = 8.0;  // e.g. search & rescue (§6)
    const std::vector<double> periods = {10.0, 25.0, 50.0, 100.0, 200.0, 300.0};

    std::cout << "Energy planner: choosing T for a 30-minute mission, accuracy "
                 "target "
              << kAccuracyTargetM << " m\n\n";

    struct Row {
        double T;
        double err;
        double energy_kj;
        double battery_fraction;
    };
    std::vector<Row> rows;
    for (const double T : periods) {
        core::ScenarioConfig c;
        c.seed = 99;
        c.duration = sim::Duration::minutes(30);
        c.period = sim::Duration::seconds(T);
        const auto r = core::run_scenario(c);
        // Steady-state accuracy (skip the first period's cold start).
        const double err = r.avg_error.mean_in(sim::TimePoint::from_seconds(T + 5.0),
                                               sim::TimePoint::from_seconds(1e9));
        const double energy_kj = r.team_energy.total_mj() / 1e6;
        // A WaveLAN-era laptop battery holds ~50 Wh = 180 kJ; the team has 50.
        const double budget_kj = 50.0 * 180.0;
        rows.push_back({T, err, energy_kj, energy_kj / budget_kj});
    }

    metrics::Table table({"T (s)", "steady err (m)", "team energy (kJ)",
                          "battery used (%)", "meets target"});
    double best_t = -1.0;
    for (const Row& row : rows) {
        const bool ok = row.err <= kAccuracyTargetM;
        if (ok) best_t = row.T;  // periods are sorted ascending: keep largest
        table.add_row({metrics::fmt(row.T, 0), metrics::fmt(row.err),
                       metrics::fmt(row.energy_kj), metrics::fmt(100.0 * row.battery_fraction, 2),
                       ok ? "yes" : "no"});
    }
    table.print(std::cout);

    if (best_t > 0) {
        std::cout << "\nrecommendation: T = " << best_t
                  << " s — the most energy-frugal period meeting the target.\n";
    } else {
        std::cout << "\nno period meets the target; add anchors or shrink T "
                     "below the sweep.\n";
    }
    std::cout << "paper: values between 50 and 100 s offer both high accuracy "
                 "and low energy consumption (§4.3.1).\n";
    return 0;
}
