// Quickstart: run a small CoCoA deployment and print how well the blind
// robots localize, plus what the coordination saved in energy.
//
// This exercises the whole public API surface: scenario configuration,
// running, and result inspection.

#include <iostream>

#include "core/scenario.hpp"
#include "metrics/table.hpp"

int main() {
    using namespace cocoa;

    core::ScenarioConfig config;
    config.seed = 42;
    config.num_robots = 20;
    config.num_anchors = 10;
    config.max_speed = 2.0;
    config.duration = sim::Duration::minutes(5);
    config.period = sim::Duration::seconds(50.0);   // T
    config.window = sim::Duration::seconds(3.0);    // t
    config.mode = core::LocalizationMode::Combined; // RF fixes + odometry = CoCoA
    config.sync = core::SyncMode::Mrmm;             // SYNC over the MRMM mesh

    std::cout << "CoCoA quickstart: " << config.num_robots << " robots ("
              << config.num_anchors << " anchors), T = "
              << config.period.to_seconds() << " s, t = "
              << config.window.to_seconds() << " s, "
              << config.duration.to_seconds() << " s simulated\n\n";

    const core::ScenarioResult result = core::run_scenario(config);

    metrics::Table table({"metric", "value"});
    table.add_row({"avg localization error (m)", metrics::fmt(result.avg_error.stats().mean())});
    table.add_row({"max localization error (m)", metrics::fmt(result.avg_error.stats().max())});
    table.add_row({"position fixes", std::to_string(result.agent_totals.fixes)});
    table.add_row({"windows without a fix",
                   std::to_string(result.agent_totals.windows_without_fix)});
    table.add_row({"beacons sent", std::to_string(result.agent_totals.beacons_sent)});
    table.add_row({"beacons received", std::to_string(result.agent_totals.beacons_received)});
    table.add_row({"SYNCs delivered", std::to_string(result.agent_totals.syncs_received)});
    table.add_row({"team energy (J)", metrics::fmt(result.team_energy.total_mj() / 1000.0)});
    table.add_row({"  tx (J)", metrics::fmt(result.team_energy.tx_mj / 1000.0)});
    table.add_row({"  rx (J)", metrics::fmt(result.team_energy.rx_mj / 1000.0)});
    table.add_row({"  idle (J)", metrics::fmt(result.team_energy.idle_mj / 1000.0)});
    table.add_row({"  sleep (J)", metrics::fmt(result.team_energy.sleep_mj / 1000.0)});
    table.add_row({"frames on air", std::to_string(result.medium_stats.frames_sent)});
    table.print(std::cout);

    std::cout << "\nError over time (30 s buckets):\n";
    metrics::Table series({"t (s)", "avg error (m)"});
    const metrics::TimeSeries coarse =
        result.avg_error.downsample(sim::Duration::seconds(30.0));
    for (const auto& s : coarse.samples()) {
        series.add_row({metrics::fmt(s.time.to_seconds(), 0), metrics::fmt(s.value)});
    }
    series.print(std::cout);
    return 0;
}
