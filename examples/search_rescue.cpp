// Search-and-rescue: the paper's motivating scenario (§1, §6).
//
// A team of 50 robots sweeps a disaster area; only a third carry localization
// devices (the paper's low-cost configuration). Survivors are scattered at
// unknown positions. When any robot passes within sensing range of a
// survivor, it reports the survivor at *its own estimated position* — so the
// quality of the report is exactly CoCoA's localization error. The paper
// argues ~8 m accuracy suffices: "survivors can be located within 8m.
// Pinpointing the exact location of the survivor is then trivial once more
// resources are deployed to the area."

#include <iostream>
#include <optional>
#include <vector>

#include "core/scenario.hpp"
#include "metrics/running_stat.hpp"
#include "metrics/table.hpp"

using namespace cocoa;

namespace {

struct Survivor {
    geom::Vec2 position;
    std::optional<geom::Vec2> reported;   // first report (robot's estimate)
    double report_time_s = 0.0;
    net::NodeId reporter = net::kInvalidId;
};

}  // namespace

int main() {
    constexpr double kSensingRange = 5.0;  // on-board survivor sensor (m)

    core::ScenarioConfig config;
    config.seed = 2026;
    config.num_robots = 50;
    config.num_anchors = 17;  // about one third, per the paper's conclusion
    config.duration = sim::Duration::minutes(30);
    config.period = sim::Duration::seconds(100.0);

    core::Scenario scenario(config);

    // Scatter survivors (unknown to the robots).
    sim::RandomStream survivor_rng = scenario.simulator().rng().stream("survivors");
    std::vector<Survivor> survivors;
    for (int i = 0; i < 12; ++i) {
        survivors.push_back(
            {{survivor_rng.uniform(10.0, 190.0), survivor_rng.uniform(10.0, 190.0)},
             std::nullopt});
    }

    std::cout << "Search & rescue: " << config.num_robots << " robots ("
              << config.num_anchors << " with localization devices), "
              << survivors.size() << " survivors hidden in "
              << config.area_side_m << "m x " << config.area_side_m << "m\n\n";

    // Step the simulation second by second; any robot within sensing range of
    // an unreported survivor reports it at the robot's estimated position.
    const double total_s = config.duration.to_seconds();
    for (double t = 1.0; t <= total_s; t += 1.0) {
        scenario.run_until(sim::TimePoint::from_seconds(t));
        for (Survivor& s : survivors) {
            if (s.reported.has_value()) continue;
            for (std::size_t i = 0; i < scenario.agent_count(); ++i) {
                auto& agent = scenario.agent(static_cast<net::NodeId>(i));
                agent.tick();
                // A robot only files a report once it has a position fix of
                // its own (anchors always do).
                if (agent.role() == core::Role::Blind && !agent.ever_fixed()) continue;
                if (geom::distance(agent.true_position(), s.position) <= kSensingRange) {
                    s.reported = agent.estimate();
                    s.report_time_s = t;
                    s.reporter = agent.id();
                    break;
                }
            }
        }
    }

    metrics::Table table({"survivor", "found at (s)", "reporter", "report error (m)"});
    metrics::RunningStat errors;
    int found = 0;
    for (std::size_t i = 0; i < survivors.size(); ++i) {
        const Survivor& s = survivors[i];
        if (!s.reported.has_value()) {
            table.add_row({std::to_string(i), "not found", "-", "-"});
            continue;
        }
        ++found;
        const double err = geom::distance(*s.reported, s.position);
        errors.add(err);
        table.add_row({std::to_string(i), metrics::fmt(s.report_time_s, 0),
                       std::to_string(s.reporter), metrics::fmt(err)});
    }
    table.print(std::cout);

    std::cout << "\nfound " << found << "/" << survivors.size()
              << " survivors; mean report error " << metrics::fmt(errors.mean())
              << " m (max " << metrics::fmt(errors.max()) << " m)\n"
              << "paper: with one third of the robots equipped, average error is "
                 "~8 m — good enough to dispatch rescuers to the right spot.\n";
    return 0;
}
