// Dynamic retuning: the operator changes T and t at runtime.
//
// §2.3: a SYNC message carries the periods T and t, which "allows a human
// operator to dynamically adjust these values ... by notifying the Sync
// robot to advertise new values". Here the mission starts in a
// high-accuracy phase (T = 25 s) while robots deploy, then the operator
// relaxes to an energy-saving cruise phase (T = 150 s): the Sync robot
// advertises the new time-line, every robot adopts it from the next SYNC,
// and the team's power draw drops while accuracy degrades gracefully.

#include <iostream>

#include "core/scenario.hpp"
#include "metrics/table.hpp"

using namespace cocoa;

int main() {
    core::ScenarioConfig config;
    config.seed = 5;
    config.num_robots = 30;
    config.num_anchors = 15;
    config.duration = sim::Duration::minutes(20);
    config.period = sim::Duration::seconds(25.0);  // deployment phase
    config.sync = core::SyncMode::Mrmm;

    core::Scenario scenario(config);

    const double switch_at_s = 600.0;
    std::cout << "Phase 1 (deployment): T = 25 s for the first " << switch_at_s
              << " s\n";
    scenario.run_until(sim::TimePoint::from_seconds(switch_at_s));
    const auto phase1 = scenario.result();

    // The operator tells the Sync robot (node 0) to advertise a new time-line.
    scenario.agent(0).retune(sim::Duration::seconds(150.0), sim::Duration::seconds(3.0));
    std::cout << "Operator retunes: T = 150 s from the next SYNC on\n\n";
    scenario.run();
    const auto total = scenario.result();

    // Split the metrics at the switch.
    const auto t_switch = sim::TimePoint::from_seconds(switch_at_s);
    const auto t_end = sim::TimePoint::from_seconds(1e18);
    const double err1 = total.avg_error.mean_in(sim::TimePoint::from_seconds(30.0), t_switch);
    const double err2 = total.avg_error.mean_in(t_switch + sim::Duration::seconds(150.0), t_end);
    const double e1_kj = phase1.team_energy.total_mj() / 1e6;
    const double e2_kj = (total.team_energy.total_mj() - phase1.team_energy.total_mj()) / 1e6;
    const double mins1 = switch_at_s / 60.0;
    const double mins2 = (config.duration.to_seconds() - switch_at_s) / 60.0;

    metrics::Table t({"phase", "T (s)", "avg err (m)", "energy (kJ)", "kJ/min"});
    t.add_row({"deployment", "25", metrics::fmt(err1), metrics::fmt(e1_kj),
               metrics::fmt(e1_kj / mins1)});
    t.add_row({"cruise", "150", metrics::fmt(err2), metrics::fmt(e2_kj),
               metrics::fmt(e2_kj / mins2)});
    t.print(std::cout);

    int adopted = 0;
    for (std::size_t i = 0; i < scenario.agent_count(); ++i) {
        if (scenario.agent(static_cast<net::NodeId>(i)).period() ==
            sim::Duration::seconds(150.0)) {
            ++adopted;
        }
    }
    std::cout << "\n" << adopted << "/" << scenario.agent_count()
              << " robots adopted the new time-line via SYNC\n"
              << "SYNCs delivered in total: " << total.agent_totals.syncs_received
              << "\n";
    return 0;
}
