// Extension — estimator-backend comparison. The paper commits to one belief
// representation (the windowed Bayesian grid, §2.2); the est::Estimator
// interface makes that a pluggable choice. This bench runs the grid, the
// EKF-CL continuous filter (Kia & Martinez) and the LinCvx opportunistic
// combination (Safavi & Khan) across the standard fault plans — baseline,
// beacon-loss bursts, crashed anchors — and reports accuracy, availability
// and per-fix CPU per (backend, plan) cell: the accuracy/robustness/cost
// trade-off surface of cooperative localization.
//
// Simulation cells are byte-identical at any COCOA_BENCH_THREADS value; the
// fix-CPU column is measured wall time (filter it like "simulation work").

#include <iostream>

#include "bench/common.hpp"
#include "exp/backend_sweep.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Extension — estimator backends",
                        "grid vs EKF-CL vs LinCvx across fault plans");
    core::ScenarioConfig base = bench::paper_config();
    base.duration = sim::Duration::minutes(15);
    bench::print_config(base);

    exp::BackendSweepOptions opt;
    opt.n_reps = bench::bench_reps(3);
    opt.n_threads = bench::bench_threads();

    const std::vector<exp::BackendCell> cells = exp::run_backend_sweep(base, opt);

    metrics::Table t({"backend", "plan", "steady err (m)", "avail",
                      "avail during", "fixes", "fix cpu (us)"});
    for (const exp::BackendCell& cell : cells) {
        t.add_row({est::to_string(cell.backend), cell.plan,
                   metrics::fmt(cell.steady_error_m),
                   cell.has_resilience ? metrics::fmt(cell.availability) : "-",
                   cell.has_resilience && cell.avail_during > 0.0
                       ? metrics::fmt(cell.avail_during)
                       : "-",
                   std::to_string(cell.fixes),
                   metrics::fmt(cell.fix_cpu_ns / 1000.0)});
    }
    t.print(std::cout);
    for (const exp::BackendCell& cell : cells) {
        std::cout << "backend-json: " << cell.json() << "\n";
    }

    bench::paper_note(
        "the grid buys its accuracy with ~4 orders of magnitude more CPU per "
        "fix than the closed-form backends; EKF-CL and LinCvx degrade more "
        "under anchor loss but keep localizing at microcontroller budgets. "
        "The paper's choice sits at the accurate-and-expensive corner.");
    return 0;
}
