// Ablation: Bayesian grid resolution. The paper does not state its grid cell
// size; this sweep shows accuracy and cost across resolutions.

#include <chrono>
#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Ablation — Bayesian grid resolution",
                        "CoCoA accuracy and run time vs grid cell size");

    metrics::Table t({"cell (m)", "cells", "avg err (m)", "steady-state (m)",
                      "wall time (s)"});
    for (const double cell : {1.0, 2.0, 4.0, 8.0}) {
        core::ScenarioConfig c = bench::paper_config();
        c.cell_m = cell;
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = core::run_scenario(c);
        const auto t1 = std::chrono::steady_clock::now();
        const auto cells = static_cast<long>(c.area_side_m / cell) *
                           static_cast<long>(c.area_side_m / cell);
        t.add_row({metrics::fmt(cell, 1), std::to_string(cells),
                   metrics::fmt(r.avg_error.stats().mean()),
                   metrics::fmt(r.avg_error.mean_in(sim::TimePoint::from_seconds(105),
                                                    sim::TimePoint::from_seconds(1e9))),
                   metrics::fmt(std::chrono::duration<double>(t1 - t0).count())});
    }
    t.print(std::cout);

    std::cout << "\nnote: accuracy saturates once cells are smaller than the "
                 "distance-PDF sigmas; the default (2 m) balances cost and "
                 "fidelity.\n";
    return 0;
}
