// Ablation: Bayesian grid resolution. The paper does not state its grid cell
// size; this sweep shows accuracy and cost across resolutions. It runs on
// the replication engine but pinned to one thread: the wall-time column is
// the point of the ablation and must not be perturbed by sibling cells.

#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Ablation — Bayesian grid resolution",
                        "CoCoA accuracy and run time vs grid cell size");

    const std::vector<double> cells = {1.0, 2.0, 4.0, 8.0};
    std::vector<core::ScenarioConfig> configs;
    for (const double cell : cells) {
        core::ScenarioConfig c = bench::paper_config();
        c.cell_m = cell;
        configs.push_back(c);
    }
    exp::ReplicationOptions opt;
    opt.n_reps = 1;
    opt.n_threads = 1;  // honest wall times, see header comment
    const auto sets = exp::run_sweep(configs, opt);

    metrics::Table t({"cell (m)", "cells", "avg err (m)", "steady-state (m)",
                      "wall time (s)"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto cell_count = static_cast<long>(configs[i].area_side_m / cells[i]) *
                                static_cast<long>(configs[i].area_side_m / cells[i]);
        t.add_row({metrics::fmt(cells[i], 1), std::to_string(cell_count),
                   metrics::fmt(sets[i].avg_error.mean()),
                   metrics::fmt(sets[i].steady_error.mean()),
                   metrics::fmt(sets[i].total_wall_seconds)});
    }
    t.print(std::cout);

    std::cout << "\nnote: accuracy saturates once cells are smaller than the "
                 "distance-PDF sigmas; the default (2 m) balances cost and "
                 "fidelity.\n";
    return 0;
}
