// Figure 4: localization error over time when robots rely only on odometry
// (initial position given). Two maximum speeds: 0.5 m/s and 2.0 m/s (§4.1).

#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Figure 4 — localization error, odometry only",
                        "average over all 50 robots, initial positions known");

    std::vector<std::string> names;
    std::vector<metrics::TimeSeries> series;
    for (const double vmax : {0.5, 2.0}) {
        core::ScenarioConfig c = bench::paper_config();
        c.mode = core::LocalizationMode::OdometryOnly;
        c.max_speed = vmax;
        if (vmax == 0.5) bench::print_config(c);
        const auto r = core::run_scenario(c);
        names.push_back("err, vmax=" + metrics::fmt(vmax, 1) + " m/s (m)");
        series.push_back(r.avg_error);

        std::cout << "vmax = " << vmax << " m/s: avg over time = "
                  << metrics::fmt(r.avg_error.stats().mean()) << " m, at t=1800 s = "
                  << metrics::fmt(r.avg_error.mean_in(sim::TimePoint::from_seconds(1750),
                                                      sim::TimePoint::from_seconds(1801)))
                  << " m, max = " << metrics::fmt(r.avg_error.stats().max()) << " m\n";
    }
    std::cout << "\n";
    bench::print_series_multi(names, series, sim::Duration::seconds(60.0));
    bench::paper_note(
        "error increases significantly over time and exceeds 100 m after half an "
        "hour for both speeds; odometry alone is not accurate enough.");
    return 0;
}
