// Extension (paper §6): "how transmission power control can be used to
// increase the distance that nodes in the CoCoA architecture can cooperate.
// It is interesting to investigate the noise distributions of RF beacons
// when operating over special hardware that supports power control."
//
// Uniform power control: the whole team transmits at a given power and the
// offline calibration is redone at that power (as a real deployment would).
// Higher power extends the decode range — more far beacons and a better
// mesh — but the Gaussian-regime boundary is set by the channel's multipath
// breakpoint (~40 m), not by power, so near-field accuracy gains saturate.

#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "phy/channel.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Extension — transmission power control",
                        "team-wide TX power sweep, calibration redone per power");

    metrics::Table t({"tx power (dBm)", "range (m)", "gauss regime (dBm)",
                      "avg err (m)", "windows w/o fix", "beacons rx",
                      "team energy (kJ)"});
    for (const double power_dbm : {9.0, 12.0, 15.0, 18.0, 21.0}) {
        core::ScenarioConfig c = bench::paper_config();
        c.num_anchors = 10;  // sparse anchors: cooperation distance matters
        c.channel.tx_power_dbm = power_dbm;
        // The PA draws more at higher RF power (simple affine-in-mW model
        // anchored at the WaveLAN 1400 mW @ 15 dBm / 32 mW RF).
        c.power.tx_mw = 1100.0 + 300.0 * std::pow(10.0, (power_dbm - 15.0) / 10.0);

        const phy::Channel channel(c.channel);
        const auto table = phy::PdfTable::calibrate(
            channel, c.calibration, sim::RngManager(c.seed).stream("calibration"));

        const auto r = core::run_scenario(c);
        t.add_row({metrics::fmt(power_dbm, 0), metrics::fmt(channel.max_range_m(), 0),
                   std::to_string(table.weakest_gaussian_rssi().value_or(0)),
                   metrics::fmt(r.avg_error.stats().mean()),
                   std::to_string(r.agent_totals.windows_without_fix),
                   std::to_string(r.agent_totals.beacons_received),
                   metrics::fmt(r.team_energy.total_mj() / 1e6)});
    }
    t.print(std::cout);

    bench::paper_note(
        "a §6 avenue for further investigation. More power = longer decode "
        "range = more (far) beacons and fewer fix gaps with sparse anchors; "
        "the Gaussian boundary shifts in dBm but stays pinned near the 40 m "
        "multipath breakpoint, so the benefit comes from coverage, not from "
        "sharper ranging.");
    return 0;
}
