// Figure 6: localization error over time using only RF localization (fixes
// held constant between transmit windows), for several beacon periods T.

#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Figure 6 — localization error, RF localization only",
                        "blind robots hold each fix until the next window; T sweep");

    std::vector<std::string> names;
    std::vector<metrics::TimeSeries> series;
    metrics::Table summary({"T (s)", "avg err (m)", "steady-state avg (m)",
                            "fixes", "windows w/o fix"});
    for (const double T : {10.0, 50.0, 100.0, 300.0}) {
        core::ScenarioConfig c = bench::paper_config();
        c.mode = core::LocalizationMode::RfOnly;
        c.period = sim::Duration::seconds(T);
        if (T == 10.0) bench::print_config(c);
        const auto r = core::run_scenario(c);
        names.push_back("T=" + metrics::fmt(T, 0) + "s (m)");
        series.push_back(r.avg_error);
        summary.add_row(
            {metrics::fmt(T, 0), metrics::fmt(r.avg_error.stats().mean()),
             metrics::fmt(r.avg_error.mean_in(sim::TimePoint::from_seconds(T + 5),
                                              sim::TimePoint::from_seconds(1e9))),
             std::to_string(r.agent_totals.fixes),
             std::to_string(r.agent_totals.windows_without_fix)});
    }
    summary.print(std::cout);
    std::cout << "\n";
    bench::print_series_multi(names, series, sim::Duration::seconds(60.0));
    bench::paper_note(
        "RF localization improves markedly on odometry; error is minimal right "
        "after each transmit window and grows as the fix goes stale, so larger T "
        "reduces accuracy over time.");
    return 0;
}
