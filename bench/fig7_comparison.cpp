// Figure 7: localization error over time for T = 100 s under (i) odometry
// only, (ii) RF localization only, and (iii) CoCoA (RF + odometry), at both
// maximum speeds (0.5 and 2.0 m/s). All six (speed, mode) cells run as one
// sweep on the replication engine.

#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Figure 7 — odometry vs RF-only vs CoCoA, T = 100 s",
                        "the paper's headline comparison (§4.3)");

    const std::pair<core::LocalizationMode, const char*> modes[] = {
        {core::LocalizationMode::OdometryOnly, "odometry"},
        {core::LocalizationMode::RfOnly, "RF only"},
        {core::LocalizationMode::Combined, "CoCoA"},
    };
    const double speeds[] = {0.5, 2.0};

    std::vector<core::ScenarioConfig> configs;
    for (const double vmax : speeds) {
        for (const auto& [mode, name] : modes) {
            core::ScenarioConfig c = bench::paper_config();
            c.mode = mode;
            c.max_speed = vmax;
            configs.push_back(c);
        }
    }
    const auto sets = bench::run_sweep(configs, 3);
    const std::string reps = std::to_string(sets.front().records.size());

    std::size_t next = 0;
    for (const double vmax : speeds) {
        std::cout << "---- vmax = " << vmax << " m/s ----\n";
        std::vector<std::string> names;
        std::vector<metrics::TimeSeries> series;
        metrics::Table summary({"mode", "avg err (m, " + reps + " reps)",
                                "steady-state avg (m, " + reps + " reps)",
                                "95% CI (m)"});
        for (const auto& mode_entry : modes) {
            const char* name = mode_entry.second;
            const exp::ReplicationSet& agg = sets[next++];
            names.push_back(std::string(name) + " (m)");
            series.push_back(agg.last.avg_error);
            summary.add_row({name, agg.avg_pm(), agg.steady_pm(), agg.avg_ci()});
        }
        summary.print(std::cout);
        std::cout << "\n";
        bench::print_series_multi(names, series, sim::Duration::seconds(90.0));
        std::cout << "\n";
    }
    bench::paper_note(
        "CoCoA combines the advantages of both: at vmax = 2 m/s its average error "
        "over time is ~6.5 m versus ~33 m for the RF-only algorithm, while "
        "odometry alone exceeds 100 m by the end.");
    return 0;
}
