// Figure 7: localization error over time for T = 100 s under (i) odometry
// only, (ii) RF localization only, and (iii) CoCoA (RF + odometry), at both
// maximum speeds (0.5 and 2.0 m/s).

#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Figure 7 — odometry vs RF-only vs CoCoA, T = 100 s",
                        "the paper's headline comparison (§4.3)");

    for (const double vmax : {0.5, 2.0}) {
        std::cout << "---- vmax = " << vmax << " m/s ----\n";
        std::vector<std::string> names;
        std::vector<metrics::TimeSeries> series;
        metrics::Table summary(
            {"mode", "avg err (m, 3 seeds)", "steady-state avg (m, 3 seeds)"});
        const std::pair<core::LocalizationMode, const char*> modes[] = {
            {core::LocalizationMode::OdometryOnly, "odometry"},
            {core::LocalizationMode::RfOnly, "RF only"},
            {core::LocalizationMode::Combined, "CoCoA"},
        };
        for (const auto& [mode, name] : modes) {
            core::ScenarioConfig c = bench::paper_config();
            c.mode = mode;
            c.max_speed = vmax;
            const auto agg = bench::run_seeds(c, 3);
            names.push_back(std::string(name) + " (m)");
            series.push_back(agg.last.avg_error);
            summary.add_row({name, agg.avg_pm(), agg.steady_pm()});
        }
        summary.print(std::cout);
        std::cout << "\n";
        bench::print_series_multi(names, series, sim::Duration::seconds(90.0));
        std::cout << "\n";
    }
    bench::paper_note(
        "CoCoA combines the advantages of both: at vmax = 2 m/s its average error "
        "over time is ~6.5 m versus ~33 m for the RF-only algorithm, while "
        "odometry alone exceeds 100 m by the end.");
    return 0;
}
