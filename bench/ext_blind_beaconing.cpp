// Extension (paper §6): "use the robots that do not have localization
// devices but are already localized to also initiate beaconing. This could
// potentially reduce the need for robots equipped with localization devices
// and lower costs. On the other hand, it is hard to ascertain the goodness
// of the location a particular node has and using such techniques could
// potentially increase localization errors."
//
// This bench quantifies exactly that trade-off: CoCoA accuracy with few
// anchors, with and without confidence-gated blind beaconing.

#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Extension — blind beaconing",
                        "localized blind robots also beacon (confidence-gated)");

    metrics::Table t({"anchors", "blind beaconing", "avg err (m)", "steady (m)",
                      "windows w/o fix", "blind beacons"});
    for (const int anchors : {5, 10, 15, 25}) {
        for (const bool blind : {false, true}) {
            core::ScenarioConfig c = bench::paper_config();
            c.num_anchors = anchors;
            c.blind_beaconing = blind;
            const auto r = core::run_scenario(c);
            t.add_row({std::to_string(anchors), blind ? "on" : "off",
                       metrics::fmt(r.avg_error.stats().mean()),
                       metrics::fmt(r.avg_error.mean_in(sim::TimePoint::from_seconds(105),
                                                        sim::TimePoint::from_seconds(1e9))),
                       std::to_string(r.agent_totals.windows_without_fix),
                       std::to_string(r.agent_totals.blind_beacons_sent)});
        }
    }
    t.print(std::cout);

    bench::paper_note(
        "an avenue for further investigation in §6 — implemented here with a "
        "posterior-spread confidence gate. Expect gains where anchors are "
        "scarce (coverage holes shrink) and a mild penalty where anchors are "
        "plentiful (estimate errors propagate into beacons).");
    return 0;
}
