// Extension: continuous EKF fusion vs CoCoA's windowed reset-and-fix.
//
// The related work (§5) describes Kalman-filter approaches ("Collective
// Localization", Roumeliotis & Bekey) that fuse odometry with every external
// measurement instead of discarding the estimate at each window. This bench
// runs both fusion architectures on identical beacons, sweeping the beacon
// period T, to show where each wins.

#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Extension — EKF fusion vs windowed Bayesian fix",
                        "same beacons and coordination, different fusion");

    metrics::Table t({"T (s)", "CoCoA (m)", "CoCoA no-heading-fix (m)", "EKF (m)"});
    for (const double T : {10.0, 50.0, 100.0, 300.0}) {
        core::ScenarioConfig c = bench::paper_config();
        c.period = sim::Duration::seconds(T);
        const auto steady = [&](const core::ScenarioResult& r) {
            return r.avg_error.mean_in(sim::TimePoint::from_seconds(T + 5.0),
                                       sim::TimePoint::from_seconds(1e9));
        };

        c.mode = core::LocalizationMode::Combined;
        const auto cocoa_r = core::run_scenario(c);
        // Apples-to-apples: CoCoA without the Glomosim-style heading
        // re-anchoring at fixes, which the EKF (heading-less state) cannot do.
        c.heading_correction_at_fix = false;
        const auto cocoa_nh_r = core::run_scenario(c);
        c.heading_correction_at_fix = true;
        c.mode = core::LocalizationMode::Ekf;
        const auto ekf_r = core::run_scenario(c);

        t.add_row({metrics::fmt(T, 0), metrics::fmt(steady(cocoa_r)),
                   metrics::fmt(steady(cocoa_nh_r)), metrics::fmt(steady(ekf_r))});
    }
    t.print(std::cout);

    bench::paper_note(
        "CoCoA is \"not tied to a specific localization technique\" (§5). Under "
        "equal odometry assumptions (no heading re-anchoring) the EKF performs "
        "on par with the windowed Bayesian fix at small-to-moderate T, with "
        "O(1) per-beacon updates and innovation gating; CoCoA's edge at large T "
        "comes from the odometry model's heading reset at each fix.");
    return 0;
}
