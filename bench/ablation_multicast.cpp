// Ablation: the sync substrate. Compares classic ODMRP against MRMM (the
// paper's choice, §2.3) as the carrier of CoCoA SYNC messages, measuring
// forwarding efficiency and control overhead in the full mobile scenario.
// The three variants run as one sweep on the replication engine.

#include <iostream>
#include <iterator>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Ablation — multicast substrate (ODMRP vs MRMM)",
                        "SYNC dissemination efficiency under mobility");

    struct Variant {
        const char* name;
        multicast::Variant variant;
        int suppression;
    };
    const Variant variants[] = {
        {"ODMRP", multicast::Variant::Odmrp, 0},
        {"MRMM (no suppression)", multicast::Variant::Mrmm, 0},
        {"MRMM (full)", multicast::Variant::Mrmm, 2},
    };

    std::vector<core::ScenarioConfig> configs;
    for (const Variant& v : variants) {
        core::ScenarioConfig c = bench::paper_config();
        c.sync = core::SyncMode::Mrmm;
        c.multicast.variant = v.variant;
        c.multicast.data_suppression_copies = v.suppression;
        configs.push_back(c);
    }
    const auto sets = bench::run_sweep(configs, 1);

    metrics::Table t({"variant", "SYNCs delivered", "data tx", "suppressed",
                      "queries", "replies", "avg err (m)", "energy (kJ)"});
    for (std::size_t i = 0; i < std::size(variants); ++i) {
        const auto& r = sets[i].last;
        t.add_row({variants[i].name, std::to_string(r.agent_totals.syncs_received),
                   std::to_string(r.multicast_stats.data_sent),
                   std::to_string(r.multicast_stats.data_suppressed),
                   std::to_string(r.multicast_stats.queries_sent),
                   std::to_string(r.multicast_stats.replies_sent),
                   metrics::fmt(sets[i].avg_error.mean()),
                   metrics::fmt(r.team_energy.total_mj() / 1e6)});
    }
    t.print(std::cout);

    bench::paper_note(
        "MRMM prunes the mesh using mobility knowledge, reducing rebroadcasts "
        "and control overhead versus ODMRP while keeping delivery (\"improved "
        "forwarding efficiency\", §2.3).");
    return 0;
}
