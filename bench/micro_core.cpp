// Micro-benchmarks (google-benchmark) for the hot paths of the simulator and
// the localization core, plus one end-to-end fig7 scenario. The custom main
// captures every result and writes the perf-regression artifact BENCH_10.json
// (path override: COCOA_BENCH_JSON) via bench/perf_json.hpp. CI diffs that
// artifact against bench/baseline/BENCH_baseline.json with tools/perf_compare.py.
//
// The BM_EventQueue_* benchmarks run the same workload against both kernel
// implementations (`_legacy` suffix = the tombstone oracle); the churn pair
// is the acceptance ratio the kernel overhaul tracks (new >= 2x legacy).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/perf_json.hpp"
#include "core/bayes_grid.hpp"
#include "core/swarm.hpp"
#include "mac/fanout_kernels.hpp"
#include "core/rf_localizer.hpp"
#include "core/scenario.hpp"
#include "est/estimator.hpp"
#include "exp/checkpoint.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "sim/checkpoint.hpp"
#include "energy/energy.hpp"
#include "geom/motion.hpp"
#include "mac/medium.hpp"
#include "mac/radio.hpp"
#include "mac/spatial.hpp"
#include "mobility/odometry.hpp"
#include "mobility/waypoint.hpp"
#include "phy/channel.hpp"
#include "phy/pdf_table.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

using namespace cocoa;

namespace {

const phy::PdfTable& shared_table() {
    static const phy::PdfTable table = phy::PdfTable::calibrate(
        phy::Channel{}, {}, sim::RngManager(7).stream("calibration"));
    return table;
}

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
    sim::EventQueue q;
    sim::RandomStream rng(1);
    std::int64_t t = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            q.schedule(sim::TimePoint::from_nanos(t + rng.uniform_int(0, 1'000'000)),
                       [] {});
            t += 100;
        }
        while (!q.empty()) benchmark::DoNotOptimize(q.pop());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

// ---- kernel benchmarks, run identically against both queue implementations

/// Pure scheduling throughput into a standing queue of `range(0)` events.
template <typename Queue>
void event_queue_schedule(benchmark::State& state) {
    const int depth = static_cast<int>(state.range(0));
    Queue q;
    sim::RandomStream rng(1);
    std::int64_t t = 0;
    for (auto _ : state) {
        for (int i = 0; i < depth; ++i) {
            q.schedule(sim::TimePoint::from_nanos(t + rng.uniform_int(0, 1'000'000)),
                       [] {});
            t += 7;
        }
        while (!q.empty()) benchmark::DoNotOptimize(q.pop());
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
void BM_EventQueue_schedule(benchmark::State& state) {
    event_queue_schedule<sim::EventQueue>(state);
}
void BM_EventQueue_schedule_legacy(benchmark::State& state) {
    event_queue_schedule<sim::LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueue_schedule)->Arg(256);
BENCHMARK(BM_EventQueue_schedule_legacy)->Arg(256);

/// Cancel-heavy path: every scheduled event is cancelled before it fires,
/// the way carrier-sense timers are perpetually reset. next_time() after the
/// cancels charges the legacy queue its deferred drop_dead() sweep.
template <typename Queue>
void event_queue_cancel(benchmark::State& state) {
    const int depth = static_cast<int>(state.range(0));
    Queue q;
    std::vector<sim::EventId> ids(static_cast<std::size_t>(depth));
    std::int64_t t = 0;
    for (auto _ : state) {
        for (int i = 0; i < depth; ++i) {
            ids[static_cast<std::size_t>(i)] =
                q.schedule(sim::TimePoint::from_nanos(t + 1'000 + i), [] {});
        }
        for (int i = 0; i < depth; ++i) {
            q.cancel(ids[static_cast<std::size_t>(i)]);
        }
        benchmark::DoNotOptimize(q.next_time());
        t += 2'000;
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
void BM_EventQueue_cancel(benchmark::State& state) {
    event_queue_cancel<sim::EventQueue>(state);
}
void BM_EventQueue_cancel_legacy(benchmark::State& state) {
    event_queue_cancel<sim::LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueue_cancel)->Arg(256);
BENCHMARK(BM_EventQueue_cancel_legacy)->Arg(256);

/// The acceptance-criteria mix: schedule + cancel + pop churn over a
/// standing working set, the shape MAC backoff/carrier-sense traffic gives
/// the kernel. Each round reschedules a timer (schedule then cancel the
/// stale copy) and fires one event.
template <typename Queue>
void event_queue_churn(benchmark::State& state) {
    const int working_set = static_cast<int>(state.range(0));
    Queue q;
    std::vector<sim::EventId> timers(static_cast<std::size_t>(working_set));
    std::int64_t now = 0;
    // Standing timers the churn perpetually resets.
    for (int i = 0; i < working_set; ++i) {
        timers[static_cast<std::size_t>(i)] =
            q.schedule(sim::TimePoint::from_nanos(1'000'000 + i), [] {});
    }
    std::size_t cursor = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            // Reset one standing timer: cancel the old instance, schedule the
            // replacement further out, fire whatever is due next.
            q.cancel(timers[cursor]);
            now += 50;
            timers[cursor] =
                q.schedule(sim::TimePoint::from_nanos(now + 1'500'000), [] {});
            q.schedule(sim::TimePoint::from_nanos(now + 10), [] {});
            benchmark::DoNotOptimize(q.pop());
            cursor = (cursor + 1) % timers.size();
        }
    }
    state.SetItemsProcessed(state.iterations() * 64 * 3);  // schedule+cancel+pop
}
void BM_EventQueue_churn(benchmark::State& state) {
    event_queue_churn<sim::EventQueue>(state);
}
void BM_EventQueue_churn_legacy(benchmark::State& state) {
    event_queue_churn<sim::LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueue_churn)->Arg(256);
BENCHMARK(BM_EventQueue_churn_legacy)->Arg(256);

// The radial-kernel fast path (blocked SIMD-dispatched kernels), its serial
// pre-blocking twin (`_scalar`, the gridk::ForcePath::Serial path), and the
// sqrt+exp reference path, at three grid resolutions (the range arg is the
// cell side in metres). The SIMD-vs-_scalar ratio is the speedup the
// acceptance criteria track; both include the fused normalize+moments pass,
// so the comparison is pass-for-pass.
void BM_GridApplyConstraint(benchmark::State& state) {
    core::GridConfig cfg;
    cfg.area = geom::Rect::square(200.0);
    cfg.cell_m = static_cast<double>(state.range(0));
    core::BayesGrid grid(cfg);
    const phy::DistancePdf* pdf = shared_table().lookup(-65.0);
    for (auto _ : state) {
        grid.apply_constraint({100.0, 100.0}, *pdf);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(grid.cell_count()));
    state.SetLabel(core::gridk::active_isa());
}
BENCHMARK(BM_GridApplyConstraint)->Arg(1)->Arg(2)->Arg(4);

void BM_GridApplyConstraint_scalar(benchmark::State& state) {
    core::GridConfig cfg;
    cfg.area = geom::Rect::square(200.0);
    cfg.cell_m = static_cast<double>(state.range(0));
    core::BayesGrid grid(cfg);
    const phy::DistancePdf* pdf = shared_table().lookup(-65.0);
    core::gridk::set_force_path(core::gridk::ForcePath::Serial);
    for (auto _ : state) {
        grid.apply_constraint({100.0, 100.0}, *pdf);
    }
    core::gridk::set_force_path(core::gridk::ForcePath::None);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(grid.cell_count()));
}
BENCHMARK(BM_GridApplyConstraint_scalar)->Arg(1)->Arg(2)->Arg(4);

void BM_GridApplyConstraintExact(benchmark::State& state) {
    core::GridConfig cfg;
    cfg.area = geom::Rect::square(200.0);
    cfg.cell_m = static_cast<double>(state.range(0));
    core::BayesGrid grid(cfg);
    const phy::DistancePdf* pdf = shared_table().lookup(-65.0);
    for (auto _ : state) {
        grid.apply_constraint_exact({100.0, 100.0}, *pdf);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(grid.cell_count()));
}
BENCHMARK(BM_GridApplyConstraintExact)->Arg(1)->Arg(2)->Arg(4);

// Transmission fan-out through the medium at three network sizes, with
// interference culling on (arg 1 == 1) or off. The area grows with the node
// count at constant density, the way production deployments scale, so the
// culled cost per transmission stays bounded while the unculled one grows
// linearly.
void BM_MediumFanout(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const bool culling = state.range(1) != 0;
    const double side = 400.0 * std::sqrt(static_cast<double>(n));

    sim::Simulator sim(7);
    mac::MediumConfig mcfg;
    mcfg.interference_culling = culling;
    mac::Medium medium(sim, phy::Channel{}, mcfg);
    sim::RandomStream place(42);
    std::vector<std::unique_ptr<mac::Radio>> radios;
    radios.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const geom::Vec2 pos{place.uniform(0.0, side), place.uniform(0.0, side)};
        radios.push_back(std::make_unique<mac::Radio>(
            sim, medium, static_cast<net::NodeId>(i), [pos] { return pos; },
            energy::PowerProfile::wavelan(),
            sim.rng().stream("bench.backoff", static_cast<std::uint64_t>(i))));
    }

    net::Packet packet;
    packet.payload_bytes = 24;
    std::size_t sender = 0;
    for (auto _ : state) {
        medium.begin_transmission(*radios[sender], packet, sim::Duration::micros(100));
        sender = (sender + 1) % radios.size();
        // Drain the CCA/rx events and let the frame expire before the next tx.
        sim.run_until(sim.now() + sim::Duration::millis(1));
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.counters["visited_per_tx"] =
        static_cast<double>(medium.stats().radios_visited) /
        static_cast<double>(medium.stats().frames_sent);
}
BENCHMARK(BM_MediumFanout)
    ->ArgsProduct({{64, 256, 1024}, {0, 1}});

// Steady-state beacon traffic through a dense 16-radio cell: after the first
// few frames the AirFrame, sensed_by block, and rx bookkeeping all recycle
// through the medium's slab pools, so per-transmission heap traffic is zero.
// The pool_hit_pct counter is the measured recycle rate over the whole run.
void BM_Medium_FramePool(benchmark::State& state) {
    sim::Simulator sim(7);
    mac::Medium medium(sim, phy::Channel{}, mac::MediumConfig{});
    sim::RandomStream place(42);
    std::vector<std::unique_ptr<mac::Radio>> radios;
    const int n = 16;
    radios.reserve(n);
    for (int i = 0; i < n; ++i) {
        const geom::Vec2 pos{place.uniform(0.0, 50.0), place.uniform(0.0, 50.0)};
        radios.push_back(std::make_unique<mac::Radio>(
            sim, medium, static_cast<net::NodeId>(i), [pos] { return pos; },
            energy::PowerProfile::wavelan(),
            sim.rng().stream("bench.backoff", static_cast<std::uint64_t>(i))));
    }

    net::Packet packet;
    packet.payload_bytes = 24;
    std::size_t sender = 0;
    for (auto _ : state) {
        medium.begin_transmission(*radios[sender], packet, sim::Duration::micros(100));
        sender = (sender + 1) % radios.size();
        sim.run_until(sim.now() + sim::Duration::millis(1));
    }
    state.SetItemsProcessed(state.iterations());
    const sim::PoolStats& frames = medium.frame_pool_stats();
    const double served = static_cast<double>(frames.reused + frames.fresh);
    state.counters["pool_hit_pct"] =
        served > 0.0 ? 100.0 * static_cast<double>(frames.reused) / served : 0.0;
}
BENCHMARK(BM_Medium_FramePool);

// ---- hierarchical spatial index (mac/spatial) benchmarks

/// Incremental mobility updates through the cell tree at fig7 density: every
/// entry random-walks one 1 m step per op, mixing cached-position refreshes
/// (same cell) with cell migrations. migration_pct reports the measured mix.
void BM_CellTree_update(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const double side = std::sqrt(static_cast<double>(n) / (50.0 / 40'000.0));
    mac::spatial::CellTree tree(127.0);
    sim::RandomStream rng(11);
    std::vector<geom::Vec2> pos(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        pos[static_cast<std::size_t>(i)] = {rng.uniform(0.0, side),
                                            rng.uniform(0.0, side)};
        tree.insert(static_cast<std::size_t>(i), pos[static_cast<std::size_t>(i)]);
    }
    std::size_t cursor = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            geom::Vec2& p = pos[cursor];
            p.x += rng.uniform(-1.0, 1.0);
            p.y += rng.uniform(-1.0, 1.0);
            tree.update(cursor, p);
            cursor = (cursor + 1) % pos.size();
        }
    }
    state.SetItemsProcessed(state.iterations() * 64);
    const mac::spatial::CellTreeStats& stats = tree.stats();
    const double updates = static_cast<double>(stats.migrations +
                                               stats.in_cell_updates);
    state.counters["migration_pct"] =
        updates > 0.0 ? 100.0 * static_cast<double>(stats.migrations) / updates
                      : 0.0;
}
BENCHMARK(BM_CellTree_update)->Arg(1024)->Arg(16384);

/// Range queries through the cell tree at fig7 density and the swarm family's
/// 127 m influence radius: the visited set is O(neighbors) regardless of n,
/// so ns/op should be flat across the two sizes.
void BM_CellTree_query(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const double side = std::sqrt(static_cast<double>(n) / (50.0 / 40'000.0));
    mac::spatial::CellTree tree(127.0);
    sim::RandomStream rng(12);
    for (int i = 0; i < n; ++i) {
        tree.insert(static_cast<std::size_t>(i),
                    {rng.uniform(0.0, side), rng.uniform(0.0, side)});
    }
    for (auto _ : state) {
        const geom::Vec2 center{rng.uniform(0.0, side), rng.uniform(0.0, side)};
        // The per-candidate barrier keeps the visit from being hollowed out;
        // the hit count comes from the tree's own stats rather than a
        // lambda-captured counter (gcc 12 -O3 loses captured increments in
        // this shape — harmless here, but it would garble the counter).
        tree.for_each_in_radius(center, 126.0,
                                [](std::size_t id, const geom::Vec2& p) {
                                    benchmark::DoNotOptimize(id);
                                    benchmark::DoNotOptimize(p.x);
                                });
    }
    state.SetItemsProcessed(state.iterations());
    const mac::spatial::CellTreeStats& stats = tree.stats();
    state.counters["hits_per_query"] =
        static_cast<double>(stats.candidates_visited) /
        static_cast<double>(std::max<std::uint64_t>(1, stats.queries));
}
BENCHMARK(BM_CellTree_query)->Arg(1024)->Arg(16384);

/// Mobile fan-out: BM_MediumFanout with every radio taking a random-walk step
/// (and notifying the medium) before each transmission, the way the swarm
/// family drives the index. Run against both backends: the hierarchical tree
/// absorbs moves as O(1) incremental migrations, while the flat-hash oracle
/// pays a full rebuild on the next transmission after any move — that ratio
/// is the headline win of the hierarchical medium.
void medium_fanout_mobile(benchmark::State& state, mac::MediumIndex index) {
    const int n = static_cast<int>(state.range(0));
    const double side = std::sqrt(static_cast<double>(n) / (50.0 / 40'000.0));

    sim::Simulator sim(7);
    phy::ChannelConfig chcfg;
    chcfg.tx_power_dbm = -5.0;  // swarm-family influence radius (~127 m)
    mac::MediumConfig mcfg;
    mcfg.index = index;
    mac::Medium medium(sim, phy::Channel{chcfg}, mcfg);
    sim::RandomStream place(42);
    std::vector<geom::Vec2> pos(static_cast<std::size_t>(n));
    std::vector<std::unique_ptr<mac::Radio>> radios;
    radios.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        pos[static_cast<std::size_t>(i)] = {place.uniform(0.0, side),
                                            place.uniform(0.0, side)};
        const geom::Vec2* p = &pos[static_cast<std::size_t>(i)];
        radios.push_back(std::make_unique<mac::Radio>(
            sim, medium, static_cast<net::NodeId>(i), [p] { return *p; },
            energy::PowerProfile::wavelan(),
            sim.rng().stream("bench.backoff", static_cast<std::uint64_t>(i))));
    }

    net::Packet packet;
    packet.payload_bytes = 24;
    sim::RandomStream walk(43);
    std::size_t sender = 0;
    for (auto _ : state) {
        geom::Vec2& p = pos[sender];
        p.x += walk.uniform(-1.0, 1.0);
        p.y += walk.uniform(-1.0, 1.0);
        medium.note_position_moved(*radios[sender]);
        medium.begin_transmission(*radios[sender], packet,
                                  sim::Duration::micros(100));
        sender = (sender + 1) % radios.size();
        sim.run_until(sim.now() + sim::Duration::millis(1));
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["visited_per_tx"] =
        static_cast<double>(medium.stats().radios_visited) /
        static_cast<double>(std::max<std::uint64_t>(1, medium.stats().frames_sent));
}
void BM_MediumFanoutMobile(benchmark::State& state) {
    medium_fanout_mobile(state, mac::MediumIndex::Hierarchical);
}
void BM_MediumFanoutMobile_flat(benchmark::State& state) {
    medium_fanout_mobile(state, mac::MediumIndex::FlatHash);
}
BENCHMARK(BM_MediumFanoutMobile)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_MediumFanoutMobile_flat)->Arg(256)->Arg(1024);

/// The vectorized-fanout acceptance pair: mobile fan-out from a small dense
/// cluster ringed by `range(0)` radios that sit inside the sender's 3x3 query
/// window but beyond the cull radius — the dense-hotspot shape (a swarm core
/// crossing a crowded junction) where the per-transmission cost is the
/// candidate cull itself rather than the per-receiver RSSI draws. `_scalar`
/// forces the pre-batching per-candidate loop (fanout::ForcePath::Serial,
/// byte-identical output): one position() indirect call plus a scalar
/// distance test per candidate, versus the SoA gather + blocked SIMD cull.
/// The simd/_scalar ns/op ratio is the speedup the acceptance criteria track.
void medium_fanout_mobile_kernel(benchmark::State& state,
                                 mac::fanout::ForcePath path) {
    const int ring = static_cast<int>(state.range(0));
    const int cluster = 2;

    sim::Simulator sim(7);
    phy::ChannelConfig chcfg;
    chcfg.tx_power_dbm = -5.0;  // swarm-family influence radius (~127 m)
    mac::Medium medium(sim, phy::Channel{chcfg}, mac::MediumConfig{});
    sim::RandomStream place(42);
    // Interferers on an annulus at ~150 m: inside the window of every cell
    // the cluster wanders through, outside the ~127.6 m cull radius.
    const geom::Vec2 center{64.0, 64.0};
    std::vector<geom::Vec2> pos;
    std::vector<std::unique_ptr<mac::Radio>> radios;
    radios.reserve(static_cast<std::size_t>(ring + cluster));
    pos.reserve(static_cast<std::size_t>(ring + cluster));
    const auto add_radio = [&](geom::Vec2 p0) {
        pos.push_back(p0);
        const geom::Vec2* p = &pos.back();
        const auto id = static_cast<net::NodeId>(radios.size());
        radios.push_back(std::make_unique<mac::Radio>(
            sim, medium, id, [p] { return *p; },
            energy::PowerProfile::wavelan(),
            sim.rng().stream("bench.backoff", static_cast<std::uint64_t>(id))));
        radios.back()->sleep();  // visible to propagation, no rx machinery
    };
    for (int i = 0; i < cluster; ++i) {
        add_radio(center + geom::Vec2{place.uniform(-5.0, 5.0),
                                      place.uniform(-5.0, 5.0)});
    }
    for (int i = 0; i < ring; ++i) {
        const double theta = place.uniform(0.0, 2.0 * 3.14159265358979323846);
        add_radio(center + geom::Vec2::from_heading(theta) *
                               place.uniform(145.0, 155.0));
    }

    net::Packet packet;
    packet.payload_bytes = 24;
    sim::RandomStream walk(43);
    std::size_t sender = 0;
    mac::fanout::set_force_path(path);
    for (auto _ : state) {
        // Bounded jitter (not a drifting walk): the cluster must stay inside
        // the ring for the whole run.
        pos[sender] = center + geom::Vec2{walk.uniform(-5.0, 5.0),
                                          walk.uniform(-5.0, 5.0)};
        medium.note_position_moved(*radios[sender]);
        medium.begin_transmission(*radios[sender], packet,
                                  sim::Duration::micros(100));
        sender = (sender + 1) % static_cast<std::size_t>(cluster);
        sim.run_until(sim.now() + sim::Duration::millis(1));
    }
    mac::fanout::set_force_path(mac::fanout::ForcePath::None);
    state.SetItemsProcessed(state.iterations());
    state.counters["visited_per_tx"] =
        static_cast<double>(medium.stats().radios_visited) /
        static_cast<double>(std::max<std::uint64_t>(1, medium.stats().frames_sent));
}
void BM_MediumFanoutMobile_simd(benchmark::State& state) {
    medium_fanout_mobile_kernel(state, mac::fanout::ForcePath::None);
    state.SetLabel(mac::fanout::active_isa());
}
void BM_MediumFanoutMobile_scalar(benchmark::State& state) {
    medium_fanout_mobile_kernel(state, mac::fanout::ForcePath::Serial);
}
BENCHMARK(BM_MediumFanoutMobile_simd)->Arg(4096);
BENCHMARK(BM_MediumFanoutMobile_scalar)->Arg(4096);

/// Whole swarm runs through the sharded mobility tick (`_serial` = the inline
/// single-thread path). Identical output either way; the ratio is wall-clock
/// only, and on single-core CI runners the two are expected to tie — the pair
/// exists so multi-core machines can read the sharding win from the same
/// artifact.
void swarm_tick(benchmark::State& state, int mobility_threads) {
    core::SwarmConfig cfg;
    cfg.nodes = 1000;
    cfg.seed = 7;
    cfg.duration = sim::Duration::seconds(4.0);
    cfg.mobility_threads = mobility_threads;
    std::uint64_t events = 0;
    for (auto _ : state) {
        const core::SwarmResult r = core::run_swarm(cfg);
        events = r.executed_events;
        benchmark::DoNotOptimize(events);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(events));
}
void BM_SwarmTick(benchmark::State& state) {
    swarm_tick(state, -1);  // all hardware threads
}
void BM_SwarmTick_serial(benchmark::State& state) { swarm_tick(state, 0); }
BENCHMARK(BM_SwarmTick)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SwarmTick_serial)->Unit(benchmark::kMillisecond);

void BM_PdfTableLookup(benchmark::State& state) {
    const phy::PdfTable& table = shared_table();
    sim::RandomStream rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(rng.uniform(-95.0, -40.0)));
    }
}
BENCHMARK(BM_PdfTableLookup);

void BM_ChannelSample(benchmark::State& state) {
    const phy::Channel ch;
    sim::RandomStream rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ch.sample_rssi_dbm(rng.uniform(1.0, 160.0), rng));
    }
}
BENCHMARK(BM_ChannelSample);

void BM_LinkLifetime(benchmark::State& state) {
    sim::RandomStream rng(4);
    for (auto _ : state) {
        const geom::MotionState a{{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)},
                                  {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)},
                                  rng.uniform(1.0, 100.0)};
        const geom::MotionState b{{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)},
                                  {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)},
                                  rng.uniform(1.0, 100.0)};
        benchmark::DoNotOptimize(geom::link_lifetime(a, b, 160.0));
    }
}
BENCHMARK(BM_LinkLifetime);

void BM_WaypointAdvance(benchmark::State& state) {
    mobility::WaypointConfig cfg;
    cfg.area = geom::Rect::square(200.0);
    cfg.max_speed = 2.0;
    mobility::WaypointMobility m(cfg, sim::RandomStream(5));
    std::int64_t t_ns = 0;
    for (auto _ : state) {
        t_ns += 500'000'000;  // 0.5 s tick
        benchmark::DoNotOptimize(m.advance_to(sim::TimePoint::from_nanos(t_ns)));
    }
}
BENCHMARK(BM_WaypointAdvance);

void BM_OdometryObserve(benchmark::State& state) {
    mobility::OdometryEstimator odo({}, sim::RandomStream(6));
    odo.reset({100.0, 100.0}, 0.0);
    const mobility::MotionIncrement inc{1.0, 0.01, sim::Duration::seconds(0.5)};
    for (auto _ : state) {
        odo.observe(inc);
    }
    benchmark::DoNotOptimize(odo.position());
}
BENCHMARK(BM_OdometryObserve);

void BM_FullFix25Anchors(benchmark::State& state) {
    core::GridConfig cfg;
    cfg.area = geom::Rect::square(200.0);
    cfg.cell_m = 2.0;
    auto table = std::make_shared<const phy::PdfTable>(shared_table());
    core::RfLocalizer loc(cfg, table);
    const phy::Channel ch;
    sim::RandomStream rng(8);
    std::vector<core::BeaconObservation> obs;
    const geom::Vec2 truth{100.0, 100.0};
    for (int a = 0; a < 25; ++a) {
        const geom::Vec2 anchor{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
        for (int k = 0; k < 3; ++k) {
            const double rssi = ch.sample_rssi_dbm(geom::distance(anchor, truth), rng);
            if (rssi >= ch.config().rx_sensitivity_dbm) obs.push_back({anchor, rssi});
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(loc.compute_fix(obs));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(obs.size()));
    state.SetLabel(core::gridk::active_isa());
}
BENCHMARK(BM_FullFix25Anchors);

// Serial twin of BM_FullFix25Anchors: the whole fix on the pre-blocking
// sequential grid path. The ratio to BM_FullFix25Anchors is the end-to-end
// SIMD speedup of a localization fix.
void BM_FullFix25Anchors_scalar(benchmark::State& state) {
    core::GridConfig cfg;
    cfg.area = geom::Rect::square(200.0);
    cfg.cell_m = 2.0;
    auto table = std::make_shared<const phy::PdfTable>(shared_table());
    core::RfLocalizer loc(cfg, table);
    const phy::Channel ch;
    sim::RandomStream rng(8);
    std::vector<core::BeaconObservation> obs;
    const geom::Vec2 truth{100.0, 100.0};
    for (int a = 0; a < 25; ++a) {
        const geom::Vec2 anchor{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
        for (int k = 0; k < 3; ++k) {
            const double rssi = ch.sample_rssi_dbm(geom::distance(anchor, truth), rng);
            if (rssi >= ch.config().rx_sensitivity_dbm) obs.push_back({anchor, rssi});
        }
    }
    core::gridk::set_force_path(core::gridk::ForcePath::Serial);
    for (auto _ : state) {
        benchmark::DoNotOptimize(loc.compute_fix(obs));
    }
    core::gridk::set_force_path(core::gridk::ForcePath::None);
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(obs.size()));
}
BENCHMARK(BM_FullFix25Anchors_scalar);

// One window-end fix through the est::Estimator interface, per backend: the
// accuracy/CPU trade-off's denominator. Same 25-anchor window as
// BM_FullFix25Anchors; grid pays the Bayesian fold, EKF-CL and LinCvx a
// handful of multiply-adds.
void estimator_fix_bench(benchmark::State& state, est::Backend backend) {
    est::Config ec;
    ec.backend = backend;
    ec.grid.area = geom::Rect::square(200.0);
    ec.grid.cell_m = 2.0;
    auto table = std::make_shared<const phy::PdfTable>(shared_table());
    mobility::OdometryEstimator odometry({}, sim::RandomStream(8));
    odometry.reset(ec.grid.area.center(), 0.0);
    const std::unique_ptr<est::Estimator> estimator =
        est::make_estimator(ec, table, &odometry);
    estimator->reset(ec.grid.area.center(), false);

    const phy::Channel ch;
    sim::RandomStream rng(8);
    std::vector<core::BeaconObservation> obs;
    const geom::Vec2 truth{100.0, 100.0};
    for (int a = 0; a < 25; ++a) {
        const geom::Vec2 anchor{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
        for (int k = 0; k < 3; ++k) {
            const double rssi = ch.sample_rssi_dbm(geom::distance(anchor, truth), rng);
            if (rssi >= ch.config().rx_sensitivity_dbm) obs.push_back({anchor, rssi});
        }
    }
    for (auto _ : state) {
        estimator->predict({0.1, -0.05}, 1.0);
        if (estimator->collects_window_beacons()) {
            estimator->apply_fix(estimator->compute_fix(obs), 0.0);
        } else {
            for (const core::BeaconObservation& o : obs) estimator->observe_beacon(o);
            benchmark::DoNotOptimize(estimator->end_window());
        }
        benchmark::DoNotOptimize(estimator->estimate());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(obs.size()));
}
void BM_EstimatorFix_grid(benchmark::State& state) {
    estimator_fix_bench(state, est::Backend::Grid);
}
void BM_EstimatorFix_ekf(benchmark::State& state) {
    estimator_fix_bench(state, est::Backend::Ekf);
}
void BM_EstimatorFix_lincvx(benchmark::State& state) {
    estimator_fix_bench(state, est::Backend::LinCvx);
}
BENCHMARK(BM_EstimatorFix_grid);
BENCHMARK(BM_EstimatorFix_ekf);
BENCHMARK(BM_EstimatorFix_lincvx);

// Full checkpoint round-trip on a warm mid-run fig7-scale scenario with an
// armed fault plan: serialize the complete simulation state and rebuild a
// scenario from the blob. The restore half is what every forked sweep cell
// pays instead of re-simulating its warm prefix, so restore ns directly
// bounds the fork win.
void BM_CheckpointSaveRestore(benchmark::State& state) {
    core::ScenarioConfig cfg;
    cfg.seed = 7;
    cfg.num_robots = 20;
    cfg.num_anchors = 12;
    cfg.area_side_m = 150.0;
    cfg.duration = sim::Duration::seconds(300.0);
    cfg.period = sim::Duration::seconds(20.0);
    cfg.window = sim::Duration::seconds(3.0);
    const fault::FaultPlan plan = fault::FaultPlan::parse("crash@200:node=15");

    core::Scenario prefix(cfg);
    fault::FaultInjector injector(prefix, plan);
    injector.arm();
    prefix.run_until(sim::TimePoint::origin() + sim::Duration::seconds(120.0));

    std::size_t blob_bytes = 0;
    for (auto _ : state) {
        const std::string blob = cocoa::exp::save_scenario_checkpoint(prefix, &injector);
        blob_bytes = blob.size();
        cocoa::exp::RestoredScenario restored =
            cocoa::exp::restore_scenario_checkpoint(blob, prefix.pdf_table_ptr());
        benchmark::DoNotOptimize(restored.scenario);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(blob_bytes));
}
BENCHMARK(BM_CheckpointSaveRestore)->Unit(benchmark::kMillisecond);

// The forked sweep's per-cell warm start: build a scenario around a shared
// PDF table and load the shared prefix blob, versus BM_ForkedSweepPrefix_cold
// which re-simulates the same prefix from scratch (what --no-fork pays per
// cell). The cold/warm ratio is the per-cell prefix win; the sweep-level
// speedup is gated end-to-end in CI.
void BM_ForkedSweepPrefix(benchmark::State& state) {
    core::ScenarioConfig cfg;
    cfg.seed = 7;
    cfg.num_robots = 20;
    cfg.num_anchors = 12;
    cfg.area_side_m = 150.0;
    cfg.duration = sim::Duration::seconds(300.0);
    cfg.period = sim::Duration::seconds(20.0);
    cfg.window = sim::Duration::seconds(3.0);

    core::Scenario prefix(cfg);
    prefix.run_until(sim::TimePoint::origin() + sim::Duration::seconds(120.0));
    // Bare scenario section, exactly what run_sweep's prefix phase shares
    // with its forked members (no exp-level header/config framing).
    sim::ckpt::Writer w;
    prefix.save_state(w);
    const std::string blob = w.take();
    const auto table = prefix.pdf_table_ptr();

    for (auto _ : state) {
        core::Scenario cell(cfg, table);
        sim::ckpt::Reader r(blob);
        cell.load_state(r);
        benchmark::DoNotOptimize(cell.simulator().now());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(blob.size()));
}
BENCHMARK(BM_ForkedSweepPrefix)->Unit(benchmark::kMillisecond);

void BM_ForkedSweepPrefix_cold(benchmark::State& state) {
    core::ScenarioConfig cfg;
    cfg.seed = 7;
    cfg.num_robots = 20;
    cfg.num_anchors = 12;
    cfg.area_side_m = 150.0;
    cfg.duration = sim::Duration::seconds(300.0);
    cfg.period = sim::Duration::seconds(20.0);
    cfg.window = sim::Duration::seconds(3.0);
    for (auto _ : state) {
        core::Scenario cell(cfg);
        cell.run_until(sim::TimePoint::origin() + sim::Duration::seconds(120.0));
        benchmark::DoNotOptimize(cell.simulator().now());
    }
}
BENCHMARK(BM_ForkedSweepPrefix_cold)->Unit(benchmark::kMillisecond);

/// google-benchmark <= 1.7 flags failed runs with `Run::error_occurred`;
/// 1.8+ replaced it with the `Run::skipped` enum. Detect whichever member
/// the headers we are built against provide (system install vs the CI
/// FetchContent fallback).
template <typename R>
auto run_failed(const R& run, int) -> decltype(run.skipped != 0) {
    return run.skipped != 0;
}
template <typename R>
bool run_failed(const R& run, long) {
    return run.error_occurred;
}

/// Forwards to the console reporter for the usual human-readable output
/// while recording every run's ns/op for the JSON artifact.
class CaptureReporter : public benchmark::ConsoleReporter {
  public:
    explicit CaptureReporter(bench::PerfJson& out) : out_(out) {}

    void ReportRuns(const std::vector<Run>& runs) override {
        for (const Run& run : runs) {
            if (run_failed(run, 0)) continue;
            out_.add_benchmark(run.benchmark_name(), run.GetAdjustedRealTime());
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    bench::PerfJson& out_;
};

/// One full fig7 scenario (the paper's §4 configuration, CoCoA mode), timed
/// wall-clock: the end-to-end number that the micro ns/op figures must
/// ultimately move.
double fig7_scenario_wall_seconds() {
    core::ScenarioConfig cfg;
    cfg.seed = 7;
    cfg.num_robots = 50;
    cfg.num_anchors = 25;
    cfg.area_side_m = 200.0;
    cfg.max_speed = 2.0;
    cfg.duration = sim::Duration::minutes(30);
    cfg.period = sim::Duration::seconds(100.0);
    cfg.window = sim::Duration::seconds(3.0);
    cfg.beacons_per_window = 3;
    const auto t0 = std::chrono::steady_clock::now();
    core::Scenario scenario(cfg);
    scenario.run();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

    bench::PerfJson json;
    CaptureReporter reporter(json);
    benchmark::RunSpecifiedBenchmarks(&reporter);

    std::cout << "\nrunning fig7 scenario (50 robots, 30 simulated minutes)...\n";
    const double wall = fig7_scenario_wall_seconds();
    std::cout << "fig7 scenario wall time: " << wall << " s\n";
    json.add_scenario("fig7_cocoa_50robots_30min", wall);

    const char* override_path = std::getenv("COCOA_BENCH_JSON");
    const std::string path = override_path != nullptr ? override_path : "BENCH_10.json";
    if (!json.write(path)) {
        std::cerr << "failed to write " << path << "\n";
        return 1;
    }
    std::cout << "wrote " << path << "\n";
    benchmark::Shutdown();
    return 0;
}
