// Micro-benchmarks (google-benchmark) for the hot paths of the simulator and
// the localization core.

#include <benchmark/benchmark.h>

#include "core/bayes_grid.hpp"
#include "core/rf_localizer.hpp"
#include "geom/motion.hpp"
#include "mobility/odometry.hpp"
#include "mobility/waypoint.hpp"
#include "phy/channel.hpp"
#include "phy/pdf_table.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

using namespace cocoa;

namespace {

const phy::PdfTable& shared_table() {
    static const phy::PdfTable table = phy::PdfTable::calibrate(
        phy::Channel{}, {}, sim::RngManager(7).stream("calibration"));
    return table;
}

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
    sim::EventQueue q;
    sim::RandomStream rng(1);
    std::int64_t t = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            q.schedule(sim::TimePoint::from_nanos(t + rng.uniform_int(0, 1'000'000)),
                       [] {});
            t += 100;
        }
        while (!q.empty()) benchmark::DoNotOptimize(q.pop());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_GridApplyConstraint(benchmark::State& state) {
    core::GridConfig cfg;
    cfg.area = geom::Rect::square(200.0);
    cfg.cell_m = static_cast<double>(state.range(0));
    core::BayesGrid grid(cfg);
    const phy::DistancePdf* pdf = shared_table().lookup(-65.0);
    for (auto _ : state) {
        grid.apply_constraint({100.0, 100.0}, *pdf);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(grid.cell_count()));
}
BENCHMARK(BM_GridApplyConstraint)->Arg(1)->Arg(2)->Arg(4);

void BM_GridMean(benchmark::State& state) {
    core::GridConfig cfg;
    cfg.area = geom::Rect::square(200.0);
    cfg.cell_m = 2.0;
    core::BayesGrid grid(cfg);
    grid.apply_constraint({100.0, 100.0}, *shared_table().lookup(-65.0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(grid.mean());
    }
}
BENCHMARK(BM_GridMean);

void BM_PdfTableLookup(benchmark::State& state) {
    const phy::PdfTable& table = shared_table();
    sim::RandomStream rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(rng.uniform(-95.0, -40.0)));
    }
}
BENCHMARK(BM_PdfTableLookup);

void BM_ChannelSample(benchmark::State& state) {
    const phy::Channel ch;
    sim::RandomStream rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ch.sample_rssi_dbm(rng.uniform(1.0, 160.0), rng));
    }
}
BENCHMARK(BM_ChannelSample);

void BM_LinkLifetime(benchmark::State& state) {
    sim::RandomStream rng(4);
    for (auto _ : state) {
        const geom::MotionState a{{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)},
                                  {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)},
                                  rng.uniform(1.0, 100.0)};
        const geom::MotionState b{{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)},
                                  {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)},
                                  rng.uniform(1.0, 100.0)};
        benchmark::DoNotOptimize(geom::link_lifetime(a, b, 160.0));
    }
}
BENCHMARK(BM_LinkLifetime);

void BM_WaypointAdvance(benchmark::State& state) {
    mobility::WaypointConfig cfg;
    cfg.area = geom::Rect::square(200.0);
    cfg.max_speed = 2.0;
    mobility::WaypointMobility m(cfg, sim::RandomStream(5));
    std::int64_t t_ns = 0;
    for (auto _ : state) {
        t_ns += 500'000'000;  // 0.5 s tick
        benchmark::DoNotOptimize(m.advance_to(sim::TimePoint::from_nanos(t_ns)));
    }
}
BENCHMARK(BM_WaypointAdvance);

void BM_OdometryObserve(benchmark::State& state) {
    mobility::OdometryEstimator odo({}, sim::RandomStream(6));
    odo.reset({100.0, 100.0}, 0.0);
    const mobility::MotionIncrement inc{1.0, 0.01, sim::Duration::seconds(0.5)};
    for (auto _ : state) {
        odo.observe(inc);
    }
    benchmark::DoNotOptimize(odo.position());
}
BENCHMARK(BM_OdometryObserve);

void BM_FullFix25Anchors(benchmark::State& state) {
    core::GridConfig cfg;
    cfg.area = geom::Rect::square(200.0);
    cfg.cell_m = 2.0;
    auto table = std::make_shared<const phy::PdfTable>(shared_table());
    core::RfLocalizer loc(cfg, table);
    const phy::Channel ch;
    sim::RandomStream rng(8);
    std::vector<core::BeaconObservation> obs;
    const geom::Vec2 truth{100.0, 100.0};
    for (int a = 0; a < 25; ++a) {
        const geom::Vec2 anchor{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
        for (int k = 0; k < 3; ++k) {
            const double rssi = ch.sample_rssi_dbm(geom::distance(anchor, truth), rng);
            if (rssi >= ch.config().rx_sensitivity_dbm) obs.push_back({anchor, rssi});
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(loc.compute_fix(obs));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(obs.size()));
}
BENCHMARK(BM_FullFix25Anchors);

}  // namespace

BENCHMARK_MAIN();
