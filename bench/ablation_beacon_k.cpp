// Ablation: beacon redundancy k. The paper transmits k = 3 beacons per
// transmit window "for increasing the reliability of beacon delivery".
// The k axis runs as one sweep on the replication engine.

#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Ablation — beacons per window (k)",
                        "reliability/energy trade-off of beacon redundancy");

    const std::vector<int> ks = {1, 2, 3, 5};
    std::vector<core::ScenarioConfig> configs;
    for (const int k : ks) {
        core::ScenarioConfig c = bench::paper_config();
        c.beacons_per_window = k;
        configs.push_back(c);
    }
    const auto sets = bench::run_sweep(configs, 1);

    metrics::Table t({"k", "avg err (m)", "windows w/o fix", "beacons rx",
                      "tx energy (J)", "team energy (kJ)"});
    for (std::size_t i = 0; i < ks.size(); ++i) {
        const auto& r = sets[i].last;
        t.add_row({std::to_string(ks[i]), metrics::fmt(sets[i].avg_error.mean()),
                   std::to_string(r.agent_totals.windows_without_fix),
                   std::to_string(r.agent_totals.beacons_received),
                   metrics::fmt(r.team_energy.tx_mj / 1e3),
                   metrics::fmt(r.team_energy.total_mj() / 1e6)});
    }
    t.print(std::cout);

    bench::paper_note("k = 3 is the evaluation default (§2.3).");
    return 0;
}
