// Figure 9: impact of the beacon period T on CoCoA.
//  (a) localization error over time for T in {10, 50, 100, 300} s;
//  (b) team energy consumption, with and without sleep coordination.
//
// All (T, coordination) cells and their replications run as one sweep on the
// replication engine, so the whole figure fans out over the hardware.

#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Figure 9 — impact of beacon period T",
                        "(a) CoCoA error vs T; (b) team energy, coordination on/off");

    const std::vector<double> periods = {10.0, 50.0, 100.0, 300.0};
    // Two configs per T: sleep coordination on (even index) and off (odd).
    std::vector<core::ScenarioConfig> configs;
    for (const double T : periods) {
        core::ScenarioConfig c = bench::paper_config();
        c.period = sim::Duration::seconds(T);
        configs.push_back(c);
        c.sleep_coordination = false;
        configs.push_back(c);
    }
    bench::print_config(configs.front());

    const auto sets = bench::run_sweep(configs, 3);
    const std::string reps = std::to_string(sets.front().records.size());

    std::vector<std::string> names;
    std::vector<metrics::TimeSeries> series;
    metrics::Table table({"T (s)", "avg err (m, " + reps + " reps)", "95% CI (m)",
                          "energy coord (kJ)", "energy no-coord (kJ)",
                          "no-coord / coord"});
    for (std::size_t i = 0; i < periods.size(); ++i) {
        const exp::ReplicationSet& coord = sets[2 * i];
        const exp::ReplicationSet& nocoord = sets[2 * i + 1];
        names.push_back("T=" + metrics::fmt(periods[i], 0) + "s (m)");
        series.push_back(coord.last.avg_error);
        const double e_coord = coord.total_energy_kj.mean();
        const double e_nocoord = nocoord.total_energy_kj.mean();
        table.add_row({metrics::fmt(periods[i], 0), coord.avg_pm(), coord.avg_ci(),
                       metrics::fmt(e_coord), metrics::fmt(e_nocoord),
                       metrics::fmt(e_nocoord / e_coord, 1)});
    }
    table.print(std::cout);
    std::cout << "\n(a) error over time:\n";
    bench::print_series_multi(names, series, sim::Duration::seconds(90.0));

    bench::paper_note(
        "(a) small T updates positions often, but very small T (10 s) is *worse* "
        "than T = 50 s because bad long-distance beacons are folded in too "
        "eagerly (paper: ~7 m at T=10, ~5 m at T=50, ~6.6 m at T=100); values "
        "between 50 and 100 s are the sweet spot. (b) without coordination the "
        "team consumes 2.6x-8x more energy, the gap growing with T.");
    return 0;
}
