// Figure 9: impact of the beacon period T on CoCoA.
//  (a) localization error over time for T in {10, 50, 100, 300} s;
//  (b) team energy consumption, with and without sleep coordination.

#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Figure 9 — impact of beacon period T",
                        "(a) CoCoA error vs T; (b) team energy, coordination on/off");

    std::vector<std::string> names;
    std::vector<metrics::TimeSeries> series;
    metrics::Table table({"T (s)", "avg err (m, 3 seeds)", "energy coord (kJ)",
                          "energy no-coord (kJ)", "no-coord / coord"});
    for (const double T : {10.0, 50.0, 100.0, 300.0}) {
        core::ScenarioConfig c = bench::paper_config();
        c.period = sim::Duration::seconds(T);
        if (T == 10.0) bench::print_config(c);

        const auto coord = bench::run_seeds(c, 3);
        c.sleep_coordination = false;
        const auto nocoord = bench::run_seeds(c, 3);

        names.push_back("T=" + metrics::fmt(T, 0) + "s (m)");
        series.push_back(coord.last.avg_error);
        const double e_coord = coord.total_energy_kj.mean();
        const double e_nocoord = nocoord.total_energy_kj.mean();
        table.add_row({metrics::fmt(T, 0), coord.avg_pm(), metrics::fmt(e_coord),
                       metrics::fmt(e_nocoord), metrics::fmt(e_nocoord / e_coord, 1)});
    }
    table.print(std::cout);
    std::cout << "\n(a) error over time:\n";
    bench::print_series_multi(names, series, sim::Duration::seconds(90.0));

    bench::paper_note(
        "(a) small T updates positions often, but very small T (10 s) is *worse* "
        "than T = 50 s because bad long-distance beacons are folded in too "
        "eagerly (paper: ~7 m at T=10, ~5 m at T=50, ~6.6 m at T=100); values "
        "between 50 and 100 s are the sweet spot. (b) without coordination the "
        "team consumes 2.6x-8x more energy, the gap growing with T.");
    return 0;
}
