// Ablation: how the localizer treats "bad beacons" (§4.3.1) — beacons from
// beyond the Gaussian regime. Three policies:
//   all-bins       : every beacon with a PDF-table entry is used (default;
//                    matches the paper's algorithm, bad beacons included),
//   gaussian-only  : only Fig. 1(a)-regime bins are used,
//   cutoff -80 dBm : hard RSSI cutoff at the paper's stated boundary.
// All six (policy, T) cells run as one sweep on the replication engine.

#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Ablation — bad beacons policy",
                        "CoCoA accuracy vs how far-field beacons are admitted");

    struct Policy {
        const char* name;
        bool use_non_gaussian;
        double cutoff_dbm;
    };
    const Policy policies[] = {
        {"all-bins (paper)", true, -1e9},
        {"gaussian-only", false, -1e9},
        {"cutoff -80 dBm", true, -80.0},
    };
    const double periods[] = {10.0, 100.0};

    std::vector<core::ScenarioConfig> configs;
    for (const Policy& p : policies) {
        for (const double T : periods) {
            core::ScenarioConfig c = bench::paper_config();
            c.period = sim::Duration::seconds(T);
            c.use_non_gaussian_bins = p.use_non_gaussian;
            c.beacon_rssi_cutoff_dbm = p.cutoff_dbm;
            configs.push_back(c);
        }
    }
    const auto sets = bench::run_sweep(configs, 1);

    metrics::Table t({"policy", "T=10 avg err (m)", "T=100 avg err (m)",
                      "windows w/o fix (T=100)"});
    std::size_t next = 0;
    for (const Policy& p : policies) {
        const exp::ReplicationSet& t10 = sets[next++];
        const exp::ReplicationSet& t100 = sets[next++];
        t.add_row({p.name, metrics::fmt(t10.avg_error.mean()),
                   metrics::fmt(t100.avg_error.mean()),
                   std::to_string(t100.last.agent_totals.windows_without_fix)});
    }
    t.print(std::cout);

    bench::paper_note(
        "bad beacons are a real but bounded effect: the paper observes that at "
        "very small T they make the average error worse (7 m at T=10 vs 5 m at "
        "T=50). Dropping far beacons entirely costs coverage (more windows "
        "without a fix and ring-shaped single-anchor posteriors).");
    return 0;
}
