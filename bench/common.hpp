#pragma once

// Shared helpers for the figure-reproduction benches. Each bench binary runs
// one of the paper's experiments end-to-end and prints the series/rows the
// corresponding figure reports, alongside the paper's claimed values where
// the text states them.

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/scenario.hpp"
#include "exp/replication.hpp"
#include "metrics/table.hpp"
#include "obs/profile.hpp"

namespace cocoa::bench {

/// Turns on the wall-clock profiler when COCOA_PROFILE is set, and prints
/// the scope table once at exit. Called by run_seeds()/run_sweep(), so every
/// bench supports COCOA_PROFILE=1 without its own wiring.
inline void maybe_enable_profile() {
    static const bool once = [] {
        if (std::getenv("COCOA_PROFILE") != nullptr) {
            obs::Profiler::set_enabled(true);
            std::atexit([] { obs::Profiler::instance().report(std::cerr); });
        }
        return true;
    }();
    (void)once;
}

inline void print_header(const std::string& figure, const std::string& what) {
    std::cout << "==================================================================\n"
              << figure << "\n" << what << "\n"
              << "==================================================================\n";
}

inline void print_config(const core::ScenarioConfig& c) {
    std::cout << "setup: " << c.num_robots << " robots, " << c.num_anchors
              << " anchors, area " << c.area_side_m << "m x " << c.area_side_m
              << "m, v in [" << c.min_speed << ", " << c.max_speed << "] m/s, "
              << c.duration.to_seconds() << " s simulated, T = "
              << c.period.to_seconds() << " s, t = " << c.window.to_seconds()
              << " s, k = " << c.beacons_per_window << ", seed = " << c.seed << "\n\n";
}

/// The paper's common configuration (§4): 50 robots in 40 000 m^2, half of
/// them anchors, 30 simulated minutes, T = 100 s, t = 3 s, k = 3.
inline core::ScenarioConfig paper_config() {
    core::ScenarioConfig c;
    c.seed = 7;
    c.num_robots = 50;
    c.num_anchors = 25;
    c.area_side_m = 200.0;
    c.max_speed = 2.0;
    c.duration = sim::Duration::minutes(30);
    c.period = sim::Duration::seconds(100.0);
    c.window = sim::Duration::seconds(3.0);
    c.beacons_per_window = 3;
    return c;
}

/// Prints a time series as a table, one row per `bucket` of time.
inline void print_series(const metrics::TimeSeries& series, sim::Duration bucket,
                         const std::string& value_name) {
    metrics::Table t({"t (s)", value_name});
    const metrics::TimeSeries coarse = series.downsample(bucket);
    for (const auto& s : coarse.samples()) {
        t.add_row({metrics::fmt(s.time.to_seconds(), 0), metrics::fmt(s.value)});
    }
    t.print(std::cout);
}

/// Prints several aligned time series (same sampling) side by side.
inline void print_series_multi(const std::vector<std::string>& names,
                               const std::vector<metrics::TimeSeries>& series,
                               sim::Duration bucket) {
    std::vector<std::string> headers = {"t (s)"};
    headers.insert(headers.end(), names.begin(), names.end());
    metrics::Table t(headers);
    std::vector<metrics::TimeSeries> coarse;
    coarse.reserve(series.size());
    for (const auto& s : series) coarse.push_back(s.downsample(bucket));
    for (std::size_t i = 0; i < coarse.front().size(); ++i) {
        std::vector<std::string> row = {
            metrics::fmt(coarse.front().samples()[i].time.to_seconds(), 0)};
        for (const auto& s : coarse) {
            row.push_back(i < s.size() ? metrics::fmt(s.samples()[i].value) : "-");
        }
        t.add_row(row);
    }
    t.print(std::cout);
}

inline void paper_note(const std::string& note) {
    std::cout << "\npaper reports: " << note << "\n";
}

/// Worker threads the benches hand to the replication engine: every hardware
/// thread unless COCOA_BENCH_THREADS says otherwise (1 forces the serial
/// path; aggregate tables are byte-identical either way).
inline int bench_threads() {
    if (const char* env = std::getenv("COCOA_BENCH_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0) return n;
    }
    return 0;  // engine default: hardware concurrency
}

/// Replications per point, overridable via COCOA_BENCH_REPS for quick runs.
inline int bench_reps(int default_reps) {
    if (const char* env = std::getenv("COCOA_BENCH_REPS")) {
        const int n = std::atoi(env);
        if (n > 0) return n;
    }
    return default_reps;
}

/// Runs `reps` independent replications of `config` on the replication
/// engine (per-replication seeds derived from config.seed; parallel over
/// bench_threads()).
inline exp::ReplicationSet run_seeds(const core::ScenarioConfig& config, int reps) {
    maybe_enable_profile();
    exp::ReplicationOptions opt;
    opt.n_reps = bench_reps(reps);
    opt.n_threads = bench_threads();
    return exp::run_replications(config, opt);
}

/// Runs a whole parameter sweep (one ReplicationSet per config) on a single
/// shared thread pool, so points of the sweep overlap on the hardware.
inline std::vector<exp::ReplicationSet> run_sweep(
    const std::vector<core::ScenarioConfig>& configs, int reps) {
    maybe_enable_profile();
    exp::ReplicationOptions opt;
    opt.n_reps = bench_reps(reps);
    opt.n_threads = bench_threads();
    return exp::run_sweep(configs, opt);
}

}  // namespace cocoa::bench
