#pragma once

// Shared helpers for the figure-reproduction benches. Each bench binary runs
// one of the paper's experiments end-to-end and prints the series/rows the
// corresponding figure reports, alongside the paper's claimed values where
// the text states them.

#include <iostream>
#include <string>

#include "core/scenario.hpp"
#include "metrics/table.hpp"

namespace cocoa::bench {

inline void print_header(const std::string& figure, const std::string& what) {
    std::cout << "==================================================================\n"
              << figure << "\n" << what << "\n"
              << "==================================================================\n";
}

inline void print_config(const core::ScenarioConfig& c) {
    std::cout << "setup: " << c.num_robots << " robots, " << c.num_anchors
              << " anchors, area " << c.area_side_m << "m x " << c.area_side_m
              << "m, v in [" << c.min_speed << ", " << c.max_speed << "] m/s, "
              << c.duration.to_seconds() << " s simulated, T = "
              << c.period.to_seconds() << " s, t = " << c.window.to_seconds()
              << " s, k = " << c.beacons_per_window << ", seed = " << c.seed << "\n\n";
}

/// The paper's common configuration (§4): 50 robots in 40 000 m^2, half of
/// them anchors, 30 simulated minutes, T = 100 s, t = 3 s, k = 3.
inline core::ScenarioConfig paper_config() {
    core::ScenarioConfig c;
    c.seed = 7;
    c.num_robots = 50;
    c.num_anchors = 25;
    c.area_side_m = 200.0;
    c.max_speed = 2.0;
    c.duration = sim::Duration::minutes(30);
    c.period = sim::Duration::seconds(100.0);
    c.window = sim::Duration::seconds(3.0);
    c.beacons_per_window = 3;
    return c;
}

/// Prints a time series as a table, one row per `bucket` of time.
inline void print_series(const metrics::TimeSeries& series, sim::Duration bucket,
                         const std::string& value_name) {
    metrics::Table t({"t (s)", value_name});
    const metrics::TimeSeries coarse = series.downsample(bucket);
    for (const auto& s : coarse.samples()) {
        t.add_row({metrics::fmt(s.time.to_seconds(), 0), metrics::fmt(s.value)});
    }
    t.print(std::cout);
}

/// Prints several aligned time series (same sampling) side by side.
inline void print_series_multi(const std::vector<std::string>& names,
                               const std::vector<metrics::TimeSeries>& series,
                               sim::Duration bucket) {
    std::vector<std::string> headers = {"t (s)"};
    headers.insert(headers.end(), names.begin(), names.end());
    metrics::Table t(headers);
    std::vector<metrics::TimeSeries> coarse;
    coarse.reserve(series.size());
    for (const auto& s : series) coarse.push_back(s.downsample(bucket));
    for (std::size_t i = 0; i < coarse.front().size(); ++i) {
        std::vector<std::string> row = {
            metrics::fmt(coarse.front().samples()[i].time.to_seconds(), 0)};
        for (const auto& s : coarse) {
            row.push_back(i < s.size() ? metrics::fmt(s.samples()[i].value) : "-");
        }
        t.add_row(row);
    }
    t.print(std::cout);
}

inline void paper_note(const std::string& note) {
    std::cout << "\npaper reports: " << note << "\n";
}

/// Aggregates a scenario metric across several independent seeds.
struct SeedAggregate {
    metrics::RunningStat avg_error;         ///< whole-run average error per seed
    metrics::RunningStat steady_error;      ///< post-first-period average per seed
    metrics::RunningStat total_energy_kj;   ///< team energy per seed
    core::ScenarioResult last;              ///< result of the final seed (for series)

    std::string avg_pm() const {
        return metrics::fmt(avg_error.mean()) + " ± " + metrics::fmt(avg_error.stddev());
    }
    std::string steady_pm() const {
        return metrics::fmt(steady_error.mean()) + " ± " +
               metrics::fmt(steady_error.stddev());
    }
};

/// Runs `config` under `seeds` distinct master seeds (config.seed, +1, ...).
inline SeedAggregate run_seeds(core::ScenarioConfig config, int seeds) {
    SeedAggregate agg;
    const std::uint64_t base = config.seed;
    for (int i = 0; i < seeds; ++i) {
        config.seed = base + static_cast<std::uint64_t>(i);
        agg.last = core::run_scenario(config);
        agg.avg_error.add(agg.last.avg_error.stats().mean());
        agg.steady_error.add(agg.last.avg_error.mean_in(
            sim::TimePoint::origin() + config.period + sim::Duration::seconds(5.0),
            sim::TimePoint::max()));
        agg.total_energy_kj.add(agg.last.team_energy.total_mj() / 1e6);
    }
    return agg;
}

}  // namespace cocoa::bench
