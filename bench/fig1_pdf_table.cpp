// Figure 1: probability distribution functions of distance for two received
// signal strength values — RSSI = -52 dBm (clean Gaussian, Fig. 1(a)) and
// RSSI = -86 dBm (non-Gaussian far-field regime, Fig. 1(b)) — as produced by
// the offline calibration phase that builds the PDF Table (§2.2).

#include <iostream>

#include "bench/common.hpp"
#include "phy/channel.hpp"
#include "phy/pdf_table.hpp"
#include "sim/random.hpp"

using namespace cocoa;

namespace {

void print_bin(const phy::PdfTable& table, int rssi) {
    const phy::DistancePdf* pdf = table.lookup(rssi);
    if (pdf == nullptr) {
        std::cout << "RSSI " << rssi << " dBm: no usable bin\n";
        return;
    }
    std::cout << "RSSI " << rssi << " dBm: fitted mean = " << metrics::fmt(pdf->mean_m)
              << " m, sigma = " << metrics::fmt(pdf->sigma_m)
              << " m, skewness = " << metrics::fmt(pdf->skewness)
              << ", excess kurtosis = " << metrics::fmt(pdf->excess_kurtosis)
              << ", samples = " << pdf->sample_count << "\n  Gaussian fit "
              << (pdf->gaussian_fit_ok ? "OK (Fig. 1(a) regime)"
                                       : "REJECTED (Fig. 1(b) regime)")
              << "\n";
    metrics::Table t({"distance (m)", "fitted Gaussian density"});
    const double lo = std::max(0.0, pdf->mean_m - 3.0 * pdf->sigma_m);
    const double hi = pdf->mean_m + 3.0 * pdf->sigma_m;
    for (int i = 0; i <= 12; ++i) {
        const double d = lo + (hi - lo) * i / 12.0;
        t.add_row({metrics::fmt(d, 1), metrics::fmt(pdf->density(d), 5)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

}  // namespace

int main() {
    bench::print_header(
        "Figure 1 — PDF Table calibration",
        "Distance PDFs for two RSSI values; Gaussian regime boundary");

    const phy::Channel channel;
    const sim::RngManager rng(7);
    const phy::PdfTable table =
        phy::PdfTable::calibrate(channel, {}, rng.stream("calibration"));

    std::cout << "calibration: " << table.bin_count() << " bins, "
              << table.usable_bin_count() << " usable, channel nominal range "
              << metrics::fmt(channel.max_range_m(), 1) << " m\n\n";

    print_bin(table, -52);  // Fig. 1(a)
    print_bin(table, -86);  // Fig. 1(b)

    const auto boundary = table.weakest_gaussian_rssi();
    if (boundary.has_value()) {
        const phy::DistancePdf* pdf = table.lookup(*boundary);
        std::cout << "Gaussian regime extends down to " << *boundary
                  << " dBm (fitted distance " << metrics::fmt(pdf->mean_m, 1)
                  << " m)\n";
    }
    bench::paper_note(
        "the Gaussian assumption holds for RSSI up to -80 dBm, i.e. distances up "
        "to ~40 m; beyond that (e.g. -86 dBm) the PDF is no longer Gaussian.");
    return 0;
}
