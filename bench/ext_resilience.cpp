// Extension — resilience under injected faults. The paper's failure story
// (§2.3, §6) is qualitative: robots coast on odometry through coverage gaps
// and the deployment "degrades gracefully". This bench quantifies graceful:
// it sweeps crashed-anchor count (highest ids first, the sync robot dies
// last) and a medium-wide jamming burst, and reports availability — the
// fraction of blind-robot samples with error under 10 m — split into
// before / during / after the fault window, plus time-to-reacquire.
//
// Every row is byte-identical at any COCOA_BENCH_THREADS value: plans are
// fixed schedules and all fault randomness is drawn counter-based.

#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"

using namespace cocoa;

namespace {

std::string stat_fmt(const metrics::RunningStat& s) {
    return s.count() > 0 ? metrics::fmt(s.mean()) : std::string("-");
}

}  // namespace

int main() {
    bench::print_header("Extension — resilience sweeps",
                        "availability and recovery under injected faults");
    core::ScenarioConfig base = bench::paper_config();
    base.duration = sim::Duration::minutes(15);
    bench::print_config(base);

    const int reps = bench::bench_reps(3);
    exp::ReplicationOptions opt;
    opt.n_reps = reps;
    opt.n_threads = bench::bench_threads();
    const sim::TimePoint strike =
        sim::TimePoint::origin() + base.duration * 0.25;

    std::cout << "anchor crashes at t=" << strike.to_seconds() << " s ("
              << reps << " reps per point):\n";
    {
        std::vector<core::ScenarioConfig> configs;
        std::vector<fault::FaultPlan> plans;
        const std::vector<int> crashed = {0, 5, 10, 15, 20};
        for (const int k : crashed) {
            configs.push_back(base);
            plans.push_back(fault::anchor_crash_plan(base.num_anchors, k, strike));
        }
        const auto sets = exp::run_sweep(configs, plans, opt);
        metrics::Table t({"crashed anchors", "steady err (m)", "avail",
                          "avail during", "avail after"});
        for (std::size_t i = 0; i < sets.size(); ++i) {
            const bool has_after =
                sets[i].has_resilience &&
                sets[i].records.back().resilience->samples_after > 0;
            t.add_row({std::to_string(crashed[i]), sets[i].steady_ci(),
                       stat_fmt(sets[i].availability),
                       stat_fmt(sets[i].avail_during),
                       has_after ? metrics::fmt(sets[i].records.back()
                                                    .resilience->avail_after)
                                 : "-"});
        }
        t.print(std::cout);
    }

    std::cout << "\n90 s medium-wide loss burst at t=" << strike.to_seconds()
              << " s (" << reps << " reps per point):\n";
    {
        std::vector<core::ScenarioConfig> configs;
        std::vector<fault::FaultPlan> plans;
        const std::vector<double> drop = {0.0, 0.25, 0.5, 0.9, 1.0};
        for (const double p : drop) {
            configs.push_back(base);
            fault::FaultPlan plan;
            if (p > 0.0) {
                fault::FaultEvent burst;
                burst.kind = fault::FaultKind::Loss;
                burst.at = strike;
                burst.duration = sim::Duration::seconds(90.0);
                burst.drop_prob = p;
                plan.events.push_back(burst);
            }
            plans.push_back(std::move(plan));
        }
        const auto sets = exp::run_sweep(configs, plans, opt);
        metrics::Table t({"drop prob", "steady err (m)", "avail",
                          "avail during", "reacquire (s)"});
        for (std::size_t i = 0; i < sets.size(); ++i) {
            t.add_row({metrics::fmt(drop[i]), sets[i].steady_ci(),
                       stat_fmt(sets[i].availability),
                       stat_fmt(sets[i].avail_during),
                       stat_fmt(sets[i].reacquire_s)});
        }
        t.print(std::cout);
    }

    bench::paper_note(
        "graceful degradation is claimed, not measured; these sweeps are the "
        "quantitative version. Availability should fall monotonically with "
        "crashed anchors and with burst drop probability, and recover after "
        "transient faults.");
    return 0;
}
