// Figure 10: impact of the number of robots equipped with localization
// devices (anchors) on CoCoA's localization error: 5, 15, 25, 35 anchors of
// 50 robots. The anchor-count axis runs as one sweep on the replication
// engine.

#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Figure 10 — impact of number of localization devices",
                        "CoCoA, T = 100 s; anchors in {5, 15, 25, 35} of 50 robots");

    const std::vector<int> anchor_counts = {5, 15, 25, 35};
    std::vector<core::ScenarioConfig> configs;
    for (const int anchors : anchor_counts) {
        core::ScenarioConfig c = bench::paper_config();
        c.num_anchors = anchors;
        configs.push_back(c);
    }
    bench::print_config(configs.front());

    const auto sets = bench::run_sweep(configs, 3);
    const std::string reps = std::to_string(sets.front().records.size());

    std::vector<std::string> names;
    std::vector<metrics::TimeSeries> series;
    metrics::Table table({"anchors", "steady err (m, " + reps + " reps)", "95% CI (m)",
                          "max avg err (m)", "fixes", "windows w/o fix"});
    for (std::size_t i = 0; i < anchor_counts.size(); ++i) {
        const exp::ReplicationSet& agg = sets[i];
        const auto& r = agg.last;
        names.push_back(std::to_string(anchor_counts[i]) + " anchors (m)");
        series.push_back(r.avg_error);
        // Skip the initial convergence transient when reporting the maximum,
        // as the paper's plots do.
        double max_after = 0.0;
        for (const auto& s : r.avg_error.samples()) {
            if (s.time >= sim::TimePoint::from_seconds(105)) {
                max_after = std::max(max_after, s.value);
            }
        }
        table.add_row({std::to_string(anchor_counts[i]), agg.steady_pm(),
                       agg.steady_ci(), metrics::fmt(max_after),
                       std::to_string(r.agent_totals.fixes),
                       std::to_string(r.agent_totals.windows_without_fix)});
    }
    table.print(std::cout);
    std::cout << "\n";
    bench::print_series_multi(names, series, sim::Duration::seconds(90.0));

    bench::paper_note(
        "error rises only mildly from 35 anchors (5.2 m) to 25 (5.9 m); with 15 "
        "anchors it is ~8 m average / <12 m max — so half (or fewer) of the "
        "robots need localization devices.");
    return 0;
}
