// Figure 8: CDF of the CoCoA localization error at three time instances:
// just before a transmit window, right after localization completes, and in
// the middle of a beacon period (T/2 after the window), for T = 100 s.

#include <iostream>
#include <optional>
#include <string>

#include "bench/common.hpp"
#include "metrics/cdf.hpp"

using namespace cocoa;

// A configuration that yields zero fixes has no quantiles; print "n/a"
// instead of aborting the whole figure.
static std::string fmt_quantile(const std::optional<double>& q) {
    return q.has_value() ? metrics::fmt(*q) : "n/a";
}

int main() {
    bench::print_header("Figure 8 — CDF of localization error at three instants",
                        "CoCoA, T = 100 s; robot population CDFs");

    core::ScenarioConfig c = bench::paper_config();
    c.mode = core::LocalizationMode::Combined;
    bench::print_config(c);
    const auto r = core::run_scenario(c);

    // The paper samples around t = 800 s: 799 s is the end of a beacon period
    // (just before the next window), 804 s is right after the transmit
    // window, 854 s is mid-period while radios sleep.
    struct Instant {
        double t;
        const char* label;
    };
    const Instant instants[] = {
        {799.0, "end of period (just before window)"},
        {804.0, "right after transmit window"},
        {854.0, "mid period (radio sleeping)"},
    };

    std::vector<metrics::Cdf> cdfs;
    for (const Instant& inst : instants) {
        cdfs.emplace_back(r.errors_at(sim::TimePoint::from_seconds(inst.t)));
        std::cout << "t = " << inst.t << " s (" << inst.label
                  << "): median = " << fmt_quantile(cdfs.back().quantile(0.5))
                  << " m, p90 = " << fmt_quantile(cdfs.back().quantile(0.9))
                  << " m, max = " << metrics::fmt(cdfs.back().max()) << " m\n";
    }

    std::cout << "\n";
    metrics::Table t({"error (m)", "CDF @799s", "CDF @804s", "CDF @854s"});
    for (const double x : {1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0, 30.0, 50.0}) {
        t.add_row({metrics::fmt(x, 0), metrics::fmt(cdfs[0].at(x)),
                   metrics::fmt(cdfs[1].at(x)), metrics::fmt(cdfs[2].at(x))});
    }
    t.print(std::cout);

    bench::paper_note(
        "localization is best right after beacons are received (804 s); locations "
        "deteriorate over the period but not significantly, and more than 90% of "
        "the robots stay below 10 m error.");
    return 0;
}
