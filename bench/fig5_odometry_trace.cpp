// Figure 5: an example of accumulated odometry error — the true path of one
// robot versus the path its odometry estimates, diverging turn by turn.

#include <iostream>

#include "bench/common.hpp"
#include "mobility/odometry.hpp"
#include "mobility/waypoint.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Figure 5 — example of odometry error",
                        "true vs dead-reckoned path of a single robot");

    const sim::RngManager rng(42);
    mobility::WaypointConfig mc;
    mc.area = geom::Rect::square(200.0);
    mc.max_speed = 2.0;
    mobility::WaypointMobility robot(mc, rng.stream("mobility"));
    mobility::OdometryEstimator odo({}, rng.stream("odometry"));
    odo.reset(robot.position(), robot.heading());

    metrics::Table t({"t (s)", "true x", "true y", "est x", "est y", "error (m)"});
    for (int ts = 0; ts <= 900; ts += 60) {
        if (ts > 0) {
            odo.observe_all(robot.advance_to(sim::TimePoint::from_seconds(ts)));
        }
        t.add_row({std::to_string(ts), metrics::fmt(robot.position().x, 1),
                   metrics::fmt(robot.position().y, 1), metrics::fmt(odo.position().x, 1),
                   metrics::fmt(odo.position().y, 1),
                   metrics::fmt(geom::distance(robot.position(), odo.position()))});
    }
    t.print(std::cout);
    bench::paper_note(
        "each turn adds angular error on top of displacement error; the estimated "
        "path drifts ever further from the real one (illustrative figure).");
    return 0;
}
