// Extension (paper §6): "CoCoA coordinates are good enough to enable
// scalable geographic routing [Bose et al.] of messages and data among the
// robots or to a controller."
//
// This bench runs greedy+face geographic routing over the mobile team three
// ways: with ground-truth positions (upper bound), with live CoCoA position
// estimates, and with raw odometry estimates (drifting). It also shows what
// happens if routing traffic ignores the sleep schedule.

#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "georouting/geo_router.hpp"

using namespace cocoa;

namespace {

struct RunResult {
    double delivery_ratio = 0.0;
    double avg_loc_error = 0.0;
    std::uint64_t face_hops = 0;
    std::uint64_t greedy_hops = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t reroutes = 0;
    std::uint64_t dropped_asleep = 0;
};

enum class PositionSource { Truth, Cocoa, Odometry };

RunResult run(PositionSource source, bool sleep_coordination) {
    core::ScenarioConfig c = bench::paper_config();
    c.duration = sim::Duration::minutes(30);
    c.sleep_coordination = sleep_coordination;
    if (source == PositionSource::Odometry) {
        c.mode = core::LocalizationMode::OdometryOnly;
    }
    core::Scenario scenario(c);

    georouting::GeoRouterConfig gc;
    georouting::GeoRoutingFleet fleet(
        scenario.world(), gc, [&](net::NodeId id) -> georouting::GeoRouter::PositionFn {
            if (source == PositionSource::Truth) {
                auto& node = scenario.world().node(id);
                return [&node] { return node.mobility().position(); };
            }
            auto& agent = scenario.agent(id);
            return [&agent] { return agent.estimate(); };
        });
    fleet.start_all();

    // Traffic: every 5 s one random robot sends to another, addressed at the
    // position the destination itself would register (its own estimate).
    auto traffic_rng = scenario.simulator().rng().stream("traffic");
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::map<std::uint64_t, bool> outstanding;
    for (std::size_t i = 0; i < scenario.agent_count(); ++i) {
        fleet.at(static_cast<net::NodeId>(i))
            .set_deliver_handler([&](const net::GeoDataPayload& d) {
                if (outstanding.erase(d.app_tag) > 0) ++received;
            });
    }

    // Traffic flows in the second half of the mission, when odometry-only
    // position estimates have drifted far (Fig. 4) while CoCoA's have not.
    const double total_s = c.duration.to_seconds();
    for (double t = 900.0; t < total_s; t += 5.0) {
        scenario.run_until(sim::TimePoint::from_seconds(t));
        const auto src = static_cast<net::NodeId>(
            traffic_rng.uniform_int(0, scenario.agent_count() - 1));
        auto dst = static_cast<net::NodeId>(
            traffic_rng.uniform_int(0, scenario.agent_count() - 1));
        if (dst == src) dst = (dst + 1) % static_cast<net::NodeId>(scenario.agent_count());
        const geom::Vec2 dst_pos = source == PositionSource::Truth
                                       ? scenario.agent(dst).true_position()
                                       : scenario.agent(dst).estimate();
        const std::uint64_t tag = sent + 1;
        outstanding[tag] = true;
        fleet.at(src).send(dst, dst_pos, 128, tag);
        ++sent;
    }
    scenario.run();

    RunResult r;
    r.delivery_ratio = sent ? static_cast<double>(received) / static_cast<double>(sent)
                            : 0.0;
    const auto res = scenario.result();
    r.avg_loc_error = res.avg_error.stats().mean();
    const auto total = fleet.total_stats();
    r.face_hops = total.forwarded_face;
    r.greedy_hops = total.forwarded_greedy;
    r.retransmits = total.retransmits;
    r.reroutes = total.reroutes;
    r.dropped_asleep = total.dropped_asleep;
    return r;
}

}  // namespace

int main() {
    bench::print_header("Extension — geographic routing over CoCoA coordinates",
                        "greedy + face routing; positions from truth / CoCoA / odometry");

    metrics::Table t({"positions", "sleep coord", "delivery ratio", "loc err (m)",
                      "greedy hops", "face hops", "retx", "reroutes",
                      "dropped asleep"});
    struct Case {
        const char* name;
        PositionSource src;
        bool sleep;
    };
    const Case cases[] = {
        {"ground truth", PositionSource::Truth, false},
        {"CoCoA estimate", PositionSource::Cocoa, false},
        {"odometry estimate", PositionSource::Odometry, false},
        {"CoCoA + sleeping radios", PositionSource::Cocoa, true},
    };
    for (const Case& cs : cases) {
        const RunResult r = run(cs.src, cs.sleep);
        t.add_row({cs.name, cs.sleep ? "on" : "off", metrics::fmt(r.delivery_ratio),
                   metrics::fmt(r.avg_loc_error), std::to_string(r.greedy_hops),
                   std::to_string(r.face_hops), std::to_string(r.retransmits),
                   std::to_string(r.reroutes), std::to_string(r.dropped_asleep)});
    }
    t.print(std::cout);

    bench::paper_note(
        "§6: CoCoA coordinates (avg error well under the ~100 m radio range) "
        "should support geographic routing almost as well as ground truth, while "
        "drifting odometry coordinates break it. Routing data through sleeping "
        "radios needs the §2.3 footnote's accommodation (radios kept awake for "
        "application traffic).");
    return 0;
}
