#pragma once

// Writer for the perf-regression artifact (BENCH_3.json): the micro-bench
// ns/op numbers plus end-to-end scenario wall times, in a stable schema that
// CI uploads per commit so the perf trajectory has data points.
//
// Schema ("cocoa-perf-1"):
//   {
//     "schema": "cocoa-perf-1",
//     "benchmarks": [ {"name": "...", "ns_per_op": 123.4}, ... ],
//     "scenarios":  [ {"name": "...", "wall_seconds": 1.23}, ... ]
//   }

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace cocoa::bench {

class PerfJson {
  public:
    void add_benchmark(const std::string& name, double ns_per_op) {
        benchmarks_.emplace_back(name, ns_per_op);
    }

    void add_scenario(const std::string& name, double wall_seconds) {
        scenarios_.emplace_back(name, wall_seconds);
    }

    std::string to_string() const {
        std::ostringstream out;
        out.precision(12);
        out << "{\n  \"schema\": \"cocoa-perf-1\",\n  \"benchmarks\": [";
        write_entries(out, benchmarks_, "ns_per_op");
        out << "],\n  \"scenarios\": [";
        write_entries(out, scenarios_, "wall_seconds");
        out << "]\n}\n";
        return out.str();
    }

    bool write(const std::string& path) const {
        std::ofstream out(path);
        if (!out) return false;
        out << to_string();
        return static_cast<bool>(out);
    }

  private:
    using Entry = std::pair<std::string, double>;

    static void write_entries(std::ostringstream& out, const std::vector<Entry>& entries,
                              const char* value_key) {
        for (std::size_t i = 0; i < entries.size(); ++i) {
            out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << escaped(entries[i].first)
                << "\", \"" << value_key << "\": " << entries[i].second << "}";
        }
        if (!entries.empty()) out << "\n  ";
    }

    static std::string escaped(const std::string& s) {
        std::string r;
        r.reserve(s.size());
        for (const char c : s) {
            if (c == '"' || c == '\\') r.push_back('\\');
            r.push_back(c);
        }
        return r;
    }

    std::vector<Entry> benchmarks_;
    std::vector<Entry> scenarios_;
};

}  // namespace cocoa::bench
