// Extension (paper §5): "CoCoA is not tied to a specific localization
// technique. ... Other approaches could be integrated in CoCoA as well.
// CoCoA provides the means for any specific localization technique to be
// used in a cooperative and coordinated manner."
//
// This bench swaps the fix estimator while keeping everything else (beacons,
// PDF table, coordination) identical: the paper's Bayesian grid, a cheap
// weighted-centroid baseline, and Gauss-Newton least-squares multilateration.

#include <chrono>
#include <iostream>

#include "bench/common.hpp"

using namespace cocoa;

int main() {
    bench::print_header("Extension — pluggable localization techniques",
                        "Bayesian grid vs weighted centroid vs least squares");

    struct Technique {
        const char* name;
        core::RfTechnique technique;
    };
    const Technique techniques[] = {
        {"Bayesian grid (paper)", core::RfTechnique::BayesianGrid},
        {"weighted centroid", core::RfTechnique::WeightedCentroid},
        {"least squares", core::RfTechnique::LeastSquares},
    };

    metrics::Table t({"technique", "avg err (m)", "steady (m)", "p90-style max (m)",
                      "wall time (s)"});
    for (const Technique& tech : techniques) {
        core::ScenarioConfig c = bench::paper_config();
        c.technique = tech.technique;
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = core::run_scenario(c);
        const auto t1 = std::chrono::steady_clock::now();
        double max_after = 0.0;
        for (const auto& s : r.avg_error.samples()) {
            if (s.time >= sim::TimePoint::from_seconds(105)) {
                max_after = std::max(max_after, s.value);
            }
        }
        t.add_row({tech.name, metrics::fmt(r.avg_error.stats().mean()),
                   metrics::fmt(r.avg_error.mean_in(sim::TimePoint::from_seconds(105),
                                                    sim::TimePoint::from_seconds(1e9))),
                   metrics::fmt(max_after),
                   metrics::fmt(std::chrono::duration<double>(t1 - t0).count())});
    }
    t.print(std::cout);

    bench::paper_note(
        "the Bayesian grid is the most accurate (it uses the full distance "
        "PDFs); least squares comes close at a fraction of the compute; the "
        "weighted centroid is cheapest and coarsest. All three plug into the "
        "same cooperative, coordinated architecture.");
    return 0;
}
