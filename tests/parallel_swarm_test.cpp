// PR 8's determinism gates, in-process: the vectorized fanout kernels against
// the generic oracle on edge layouts, the Serial (scalar-loop) force path
// against the batch path over whole swarm runs, the sharded mobility tick at
// several worker counts, the radius cache against brute force, and the
// allocation-free steady state of the fanout scratch.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/swarm.hpp"
#include "mac/fanout_kernels.hpp"
#include "mac/medium.hpp"
#include "mac/radio.hpp"
#include "mac/spatial.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace cocoa::mac {
namespace {

using cocoa::energy::PowerProfile;
using cocoa::geom::Vec2;
using cocoa::net::Packet;
using cocoa::net::Port;
using cocoa::net::TestPayload;
using cocoa::sim::Duration;
using cocoa::sim::Simulator;
using cocoa::sim::TimePoint;

/// Restores the fanout force path on scope exit so a failing test cannot
/// leak Serial/Generic mode into later tests (the dispatcher is global).
struct ForcePathGuard {
    explicit ForcePathGuard(fanout::ForcePath p) { fanout::set_force_path(p); }
    ~ForcePathGuard() { fanout::set_force_path(fanout::ForcePath::None); }
};

// --- kernel vs oracle on edge layouts ----------------------------------------

struct KernelOutputs {
    std::size_t kept = 0;
    std::vector<std::uint8_t> keep;
    std::vector<double> dist, mean, sigma, fade;
};

/// Bitwise (not epsilon) equality — the byte-identity contract.
void expect_bits_equal(const std::vector<double>& a, const std::vector<double>& b,
                       const char* what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    if (a.empty()) return;
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double))) << what;
}

/// Runs cull_and_prepare over `positions` under the given force path and
/// snapshots per-lane outputs (kept lanes only carry defined values).
KernelOutputs run_kernel(const std::vector<Vec2>& positions, Vec2 tx, double radius,
                         const phy::Channel& channel, fanout::ForcePath path) {
    ForcePathGuard guard(path);
    fanout::Batch batch;
    for (std::size_t i = 0; i < positions.size(); ++i) {
        batch.push(static_cast<std::uint32_t>(i), positions[i].x, positions[i].y);
    }
    batch.seal();
    KernelOutputs out;
    out.kept = fanout::cull_and_prepare(
        fanout::make_plan(batch, tx, radius * radius, channel));
    const std::size_t lanes = batch.lanes();
    for (std::size_t l = 0; l < lanes; ++l) {
        out.keep.push_back(batch.keep[l]);
        if (batch.keep[l] == 0) continue;
        out.dist.push_back(batch.dist[l]);
        out.mean.push_back(batch.mean_dbm[l]);
        out.sigma.push_back(batch.sigma_db[l]);
        out.fade.push_back(batch.fade_db[l]);
    }
    return out;
}

/// Every candidate count that exercises a distinct lane-tail shape: empty
/// batch, a lone candidate, one block minus one, exactly one block, one over,
/// and a ragged multi-block tail.
TEST(FanoutKernels, SimdMatchesGenericOracleOnEdgeLayouts) {
    const phy::Channel channel{phy::ChannelConfig{.tx_power_dbm = -5.0}};
    const double radius = channel.max_influence_range_m() * (1.0 + 1e-9) + 1e-3;
    const Vec2 tx{13.25, -7.5};
    Simulator sim(424242);
    sim::RandomStream rng = sim.rng().stream("fanout.fuzz");

    for (const std::size_t count : {0u, 1u, 7u, 8u, 9u, 17u}) {
        SCOPED_TRACE(count);
        std::vector<Vec2> positions;
        for (std::size_t i = 0; i < count; ++i) {
            // Mix of well inside, straddling the radius, and far outside.
            const double r = rng.uniform(0.0, 2.0 * radius);
            const double theta = rng.uniform(0.0, 6.283185307179586);
            positions.push_back(tx + Vec2::from_heading(theta) * r);
        }
        // Pin the boundary exactly once per non-empty layout: a candidate at
        // precisely the cull radius must be kept (<= r2, matching the scalar
        // loop's > r2 reject).
        if (count > 0) positions[0] = tx + Vec2{radius, 0.0};

        const KernelOutputs generic =
            run_kernel(positions, tx, radius, channel, fanout::ForcePath::Generic);
        const KernelOutputs active =
            run_kernel(positions, tx, radius, channel, fanout::ForcePath::None);

        EXPECT_EQ(generic.kept, active.kept);
        EXPECT_EQ(generic.keep, active.keep);
        expect_bits_equal(generic.dist, active.dist, "dist");
        expect_bits_equal(generic.mean, active.mean, "mean");
        expect_bits_equal(generic.sigma, active.sigma, "sigma");
        expect_bits_equal(generic.fade, active.fade, "fade");

        // And both agree with the scalar expressions the Serial loop uses.
        std::size_t k = 0;
        for (std::size_t i = 0; i < positions.size(); ++i) {
            const bool in = geom::distance_sq(positions[i], tx) <= radius * radius;
            ASSERT_EQ(generic.keep[i] != 0, in) << "candidate " << i;
            if (!in) continue;
            const double d = geom::distance(positions[i], tx);
            EXPECT_EQ(generic.dist[k], d);
            EXPECT_EQ(generic.mean[k], channel.mean_rssi_dbm(d));
            EXPECT_EQ(generic.sigma[k], channel.shadowing_sigma_db(d));
            EXPECT_EQ(generic.fade[k], channel.fade_mean_db(d));
            ++k;
        }
        // Padding lanes always cull.
        for (std::size_t l = positions.size(); l < generic.keep.size(); ++l) {
            EXPECT_EQ(generic.keep[l], 0) << "padding lane " << l;
        }
    }
}

// --- whole-run identity gates ------------------------------------------------

core::SwarmConfig small_swarm() {
    core::SwarmConfig c;
    c.nodes = 150;
    c.seed = 11;
    c.duration = Duration::seconds(12.0);
    c.collect_final_positions = true;
    return c;
}

void expect_same_run(const core::SwarmResult& a, const core::SwarmResult& b,
                     const char* label) {
    SCOPED_TRACE(label);
    EXPECT_EQ(a.executed_events, b.executed_events);
    EXPECT_EQ(a.medium_stats.frames_sent, b.medium_stats.frames_sent);
    EXPECT_EQ(a.medium_stats.missed_asleep, b.medium_stats.missed_asleep);
    EXPECT_EQ(a.medium_stats.radios_visited, b.medium_stats.radios_visited);
    EXPECT_EQ(a.medium_stats.radios_culled, b.medium_stats.radios_culled);
    EXPECT_EQ(a.frames_delivered, b.frames_delivered);
    EXPECT_EQ(a.index_stats.migrations, b.index_stats.migrations);
    EXPECT_EQ(a.index_stats.in_cell_updates, b.index_stats.in_cell_updates);
    EXPECT_EQ(a.index_stats.full_refreshes, b.index_stats.full_refreshes);
    ASSERT_EQ(a.final_positions.size(), b.final_positions.size());
    for (std::size_t i = 0; i < a.final_positions.size(); ++i) {
        ASSERT_EQ(a.final_positions[i], b.final_positions[i]) << "node " << i;
    }
}

/// Tentpole (a): the sharded mobility tick is byte-identical at any worker
/// count — metrics, index counters and every node's final position.
TEST(ParallelSwarm, ShardedMobilityTickIsByteIdenticalAtAnyWorkerCount) {
    core::SwarmConfig config = small_swarm();
    config.mobility_threads = 0;
    const core::SwarmResult inline_run = core::run_swarm(config);
    EXPECT_GT(inline_run.medium_stats.frames_sent, 0u);
    EXPECT_GT(inline_run.index_stats.migrations +
                  inline_run.index_stats.in_cell_updates,
              0u);
    for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE(threads);
        config.mobility_threads = threads;
        const core::SwarmResult sharded = core::run_swarm(config);
        expect_same_run(inline_run, sharded, "sharded vs inline");
    }
}

/// Tentpole (b): the vectorized fanout path (batch gather + blocked kernel +
/// radius cache) produces byte-identical swarm runs to the scalar
/// per-candidate loop it replaced (the Serial force path).
TEST(ParallelSwarm, VectorizedFanoutMatchesScalarLoopOverWholeRuns) {
    const core::SwarmConfig config = small_swarm();
    core::SwarmResult scalar;
    {
        ForcePathGuard guard(fanout::ForcePath::Serial);
        scalar = core::run_swarm(config);
    }
    const core::SwarmResult simd = core::run_swarm(config);
    expect_same_run(scalar, simd, "serial vs batch");
    // The Serial run never touched the cache or the batch...
    EXPECT_EQ(scalar.radius_cache_stats.lookups, 0u);
    // ...while the batch run leaned on it: dense center tiles consult the
    // LRU, repeated quanta hit, and corner quanta prune whole window cells.
    EXPECT_GT(simd.radius_cache_stats.lookups, 0u);
    EXPECT_GT(simd.radius_cache_stats.hits, 0u);
    EXPECT_GT(simd.radius_cache_stats.cells_pruned, 0u);
    EXPECT_EQ(simd.radius_cache_stats.hits + simd.radius_cache_stats.misses,
              simd.radius_cache_stats.lookups);
}

/// Tentpole (b+c) x flat oracle: the batch+cache path also matches the flat
/// hash backend run for run (the in-process version of CI's cross-build
/// diff), and the sharded tick composes with both backends.
TEST(ParallelSwarm, BackendsStayIdenticalUnderShardingAndKernels) {
    core::SwarmConfig config = small_swarm();
    config.mobility_threads = 2;
    config.medium.index = MediumIndex::Hierarchical;
    const core::SwarmResult hier = core::run_swarm(config);
    config.medium.index = MediumIndex::FlatHash;
    const core::SwarmResult flat = core::run_swarm(config);
    SCOPED_TRACE("hier vs flat @2 workers");
    EXPECT_EQ(hier.executed_events, flat.executed_events);
    EXPECT_EQ(hier.medium_stats.frames_sent, flat.medium_stats.frames_sent);
    EXPECT_EQ(hier.medium_stats.radios_visited, flat.medium_stats.radios_visited);
    EXPECT_EQ(hier.frames_delivered, flat.frames_delivered);
    ASSERT_EQ(hier.final_positions.size(), flat.final_positions.size());
    for (std::size_t i = 0; i < hier.final_positions.size(); ++i) {
        ASSERT_EQ(hier.final_positions[i], flat.final_positions[i]) << "node " << i;
    }
    // The flat oracle takes the scalar path: no cache traffic there either.
    EXPECT_EQ(flat.radius_cache_stats.lookups, 0u);
}

// --- radius cache vs brute force ---------------------------------------------

/// Tentpole (c): randomized CellTree queries *through the radius cache*
/// remain exact — id-for-id equal to a brute-force position map — while the
/// LRU churns (hits, misses, evictions) and the density gate flips between
/// the cached and bypass paths. Debug builds additionally re-verify every
/// pruned cell via the exact-radius oracle assertion inside the query.
TEST(RadiusCache, CachedQueriesStayExactUnderChurn) {
    const double cell = 37.0;
    const double hot_radius = cell * 0.9;
    spatial::CellTree tree(cell);
    spatial::RadiusCache cache;
    // Tiny capacity on purpose: evictions must not corrupt masks.
    cache.configure(cell, hot_radius, 8, 1);
    std::map<std::uint32_t, Vec2> oracle;
    Simulator sim(777);
    sim::RandomStream rng = sim.rng().stream("radius_cache.fuzz");
    const auto random_pos = [&rng] {
        return Vec2{rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)};
    };
    // A recurring query center: fresh random centers land in a new cell
    // quantum nearly every time, so only revisits exercise the LRU hit path.
    const Vec2 hot_center = random_pos();

    constexpr std::uint32_t kIds = 150;
    for (int step = 0; step < 4000; ++step) {
        const auto id = static_cast<std::uint32_t>(rng.uniform_int(0, kIds - 1));
        switch (rng.uniform_int(0, 2)) {
            case 0:
                if (oracle.find(id) == oracle.end()) {
                    const Vec2 p = random_pos();
                    tree.insert(id, p);
                    oracle[id] = p;
                } else {
                    tree.remove(id);
                    oracle.erase(id);
                }
                break;
            case 1:
                if (oracle.find(id) != oracle.end()) {
                    const Vec2 p = random_pos();
                    tree.update(id, p);
                    oracle[id] = p;
                }
                break;
            default: {
                const Vec2 center = rng.chance(0.4) ? hot_center : random_pos();
                // Mostly the cache's hot radius; sometimes another radius,
                // which handles() rejects into the inline exact path.
                const double radius =
                    rng.chance(0.75) ? hot_radius : rng.uniform(0.0, cell);
                std::vector<std::uint32_t> got;
                tree.for_each_in_radius(
                    center, radius, &cache, [&](std::uint32_t i, Vec2 p) {
                        if (geom::distance(center, p) <= radius) got.push_back(i);
                    });
                std::sort(got.begin(), got.end());
                std::vector<std::uint32_t> want;
                for (const auto& [i, p] : oracle) {
                    if (geom::distance(center, p) <= radius) want.push_back(i);
                }
                ASSERT_EQ(got, want) << "step " << step;
                break;
            }
        }
    }
    const spatial::RadiusCacheStats& s = cache.stats();
    EXPECT_GT(s.lookups, 0u);
    EXPECT_GT(s.hits, 0u);
    EXPECT_GT(s.misses, 0u);
    EXPECT_GT(s.evictions, 0u);
    EXPECT_GT(s.cells_pruned, 0u);
    EXPECT_GT(s.sparse_bypass, 0u);  // queries centred on empty tiles
    EXPECT_EQ(s.hits + s.misses, s.lookups);
    EXPECT_LE(cache.size(), 8u);
}

TEST(RadiusCache, ConfigureValidatesGeometry) {
    spatial::RadiusCache cache;
    EXPECT_THROW(cache.configure(10.0, 11.0, 64, 1), std::invalid_argument);
    EXPECT_THROW(cache.configure(0.0, 1.0, 64, 1), std::invalid_argument);
    EXPECT_THROW(cache.configure(10.0, 0.0, 64, 1), std::invalid_argument);
    EXPECT_FALSE(cache.handles(10.0));
    cache.configure(10.0, 10.0, 64, 1);
    EXPECT_TRUE(cache.handles(10.0));
    EXPECT_FALSE(cache.handles(9.0));
}

// --- allocation-free steady state --------------------------------------------

Packet test_packet(std::uint64_t value = 0) {
    Packet p;
    p.port = Port::Test;
    p.payload_bytes = 24;
    p.payload = TestPayload{value};
    return p;
}

/// S1: the fanout scratch and the pooled sensed/frame blocks are recycled
/// across transmissions — after a warm-up frame, steady-state fanout does not
/// grow the batch and pool blocks come off the free lists.
TEST(ParallelSwarm, FanoutScratchStaysAllocationFreeOnceWarm) {
    Simulator sim(5);
    const phy::Channel channel{phy::ChannelConfig{.tx_power_dbm = -5.0}};
    Medium medium(sim, channel, MediumConfig{});
    std::vector<std::unique_ptr<Radio>> radios;
    for (int i = 0; i < 24; ++i) {
        const auto id = static_cast<net::NodeId>(i);
        const Vec2 pos{(i % 6) * 20.0, (i / 6) * 20.0};
        radios.push_back(std::make_unique<Radio>(
            sim, medium, id, [pos] { return pos; }, PowerProfile::wavelan(),
            sim.rng().stream("backoff", id)));
    }

    std::size_t warm_capacity = 0;
    sim.schedule_at(TimePoint::from_seconds(1.0),
                    [&] { radios[0]->send(test_packet(0)); });
    sim.schedule_at(TimePoint::from_seconds(2.0), [&] {
        warm_capacity = medium.fanout_scratch().capacity();
    });
    for (int burst = 0; burst < 40; ++burst) {
        sim.schedule_at(TimePoint::from_seconds(3.0 + burst),
                        [&radios, burst] {
                            radios[static_cast<std::size_t>(burst) % radios.size()]
                                ->send(test_packet(static_cast<std::uint64_t>(burst)));
                        });
    }
    sim.run();

    EXPECT_GT(warm_capacity, 0u);
    EXPECT_EQ(medium.fanout_scratch().capacity(), warm_capacity);
    EXPECT_GT(medium.stats().frames_sent, 20u);
    // Pooled frame + sensed blocks recycle too (the PR 5 contract, preserved
    // through the fanout restructure).
    EXPECT_GT(medium.frame_pool_stats().reused, 0u);
    EXPECT_GT(medium.sensed_pool_stats().reused, 0u);
}

}  // namespace
}  // namespace cocoa::mac
