#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/rf_localizer.hpp"
#include "phy/channel.hpp"
#include "sim/random.hpp"

namespace cocoa::core {
namespace {

using cocoa::geom::Vec2;
using cocoa::sim::RandomStream;
using cocoa::sim::RngManager;

class LocalizerFixture : public ::testing::Test {
  protected:
    static std::shared_ptr<const phy::PdfTable> table() {
        static auto t = std::make_shared<const phy::PdfTable>(phy::PdfTable::calibrate(
            phy::Channel{}, {}, RngManager(7).stream("calibration")));
        return t;
    }

    static GridConfig grid() {
        GridConfig g;
        g.area = geom::Rect::square(200.0);
        g.cell_m = 2.0;
        return g;
    }

    /// Beacons from anchors around `truth`, with RSSI sampled from the channel.
    std::vector<BeaconObservation> beacons_around(const Vec2& truth,
                                                  const std::vector<Vec2>& anchors,
                                                  int per_anchor = 3) {
        const phy::Channel ch;
        std::vector<BeaconObservation> obs;
        for (const Vec2& a : anchors) {
            for (int k = 0; k < per_anchor; ++k) {
                obs.push_back({a, ch.sample_rssi_dbm(geom::distance(a, truth), rng_)});
            }
        }
        return obs;
    }

    RandomStream rng_{RngManager(3).stream("test")};
};

TEST_F(LocalizerFixture, RequiresTable) {
    EXPECT_THROW(RfLocalizer(grid(), nullptr), std::invalid_argument);
}

TEST_F(LocalizerFixture, RequiresPositiveMinBeacons) {
    RfLocalizer::Options opt;
    opt.min_beacons = 0;
    EXPECT_THROW(RfLocalizer(grid(), table(), opt), std::invalid_argument);
}

TEST_F(LocalizerFixture, NoBeaconsNoFix) {
    RfLocalizer loc(grid(), table());
    EXPECT_FALSE(loc.compute_fix({}).has_value());
    EXPECT_EQ(loc.stats().rejected_too_few, 1u);
}

TEST_F(LocalizerFixture, FewerThanMinBeaconsNoFix) {
    // §2.2: "if the robot has received at least three beacon packets".
    RfLocalizer loc(grid(), table());
    const Vec2 truth{100.0, 100.0};
    auto obs = beacons_around(truth, {{110.0, 100.0}}, 2);  // only two beacons
    EXPECT_FALSE(loc.compute_fix(obs).has_value());
}

TEST_F(LocalizerFixture, ThreeGoodBeaconsLocalize) {
    RfLocalizer loc(grid(), table());
    const Vec2 truth{100.0, 100.0};
    const auto obs =
        beacons_around(truth, {{85.0, 100.0}, {110.0, 115.0}, {100.0, 80.0}}, 1);
    const auto fix = loc.compute_fix(obs);
    ASSERT_TRUE(fix.has_value());
    EXPECT_EQ(fix->beacons_used, 3);
    EXPECT_LT(geom::distance(fix->position, truth), 8.0);
}

TEST_F(LocalizerFixture, ManyAnchorsGiveTightFix) {
    RfLocalizer loc(grid(), table());
    const Vec2 truth{100.0, 100.0};
    const auto obs = beacons_around(
        truth, {{85.0, 100.0}, {110.0, 115.0}, {100.0, 80.0}, {120.0, 95.0},
                {90.0, 120.0}},
        3);
    const auto fix = loc.compute_fix(obs);
    ASSERT_TRUE(fix.has_value());
    EXPECT_LT(geom::distance(fix->position, truth), 4.0);
    EXPECT_LT(fix->posterior_spread_m, 15.0);
}

TEST_F(LocalizerFixture, RssiOutsideTableDoesNotCount) {
    RfLocalizer loc(grid(), table());
    std::vector<BeaconObservation> obs = {
        {{90.0, 100.0}, -20.0},  // impossibly strong: no bin
        {{110.0, 100.0}, -20.0},
        {{100.0, 90.0}, -20.0},
    };
    EXPECT_FALSE(loc.compute_fix(obs).has_value());
    EXPECT_EQ(loc.stats().beacons_without_bin, 3u);
}

TEST_F(LocalizerFixture, CutoffDropsWeakBeacons) {
    RfLocalizer::Options opt;
    opt.rssi_cutoff_dbm = -70.0;
    RfLocalizer loc(grid(), table(), opt);
    std::vector<BeaconObservation> obs = {
        {{90.0, 100.0}, -75.0},
        {{110.0, 100.0}, -75.0},
        {{100.0, 90.0}, -75.0},
    };
    EXPECT_FALSE(loc.compute_fix(obs).has_value());
    EXPECT_EQ(loc.stats().beacons_without_bin, 3u);
}

TEST_F(LocalizerFixture, GaussianOnlyModeSkipsFarBeacons) {
    RfLocalizer::Options opt;
    opt.use_non_gaussian_bins = false;
    RfLocalizer loc(grid(), table(), opt);
    // -88 dBm sits well inside the non-Gaussian regime.
    std::vector<BeaconObservation> obs = {
        {{90.0, 100.0}, -88.0},
        {{110.0, 100.0}, -88.0},
        {{100.0, 90.0}, -88.0},
    };
    EXPECT_FALSE(loc.compute_fix(obs).has_value());
    EXPECT_EQ(loc.stats().beacons_non_gaussian, 3u);
}

TEST_F(LocalizerFixture, DefaultModeUsesFarBeacons) {
    RfLocalizer loc(grid(), table());
    std::vector<BeaconObservation> obs = {
        {{30.0, 100.0}, -88.0},
        {{170.0, 100.0}, -88.0},
        {{100.0, 30.0}, -88.0},
    };
    const auto fix = loc.compute_fix(obs);
    ASSERT_TRUE(fix.has_value());
    EXPECT_EQ(fix->beacons_used, 3);
    // Three wide rings: coarse, but a proper estimate inside the area.
    EXPECT_TRUE(grid().area.contains(fix->position));
}

TEST_F(LocalizerFixture, FarBeaconsImproveSingleAnchorGeometry) {
    // The reason the default admits non-Gaussian bins: with one near anchor
    // (a ring posterior), far beacons break the ring's symmetry.
    const Vec2 truth{100.0, 100.0};
    const std::vector<Vec2> near = {{120.0, 100.0}};
    const std::vector<Vec2> far = {{30.0, 40.0}, {180.0, 160.0}, {40.0, 170.0}};

    RfLocalizer::Options gauss_only;
    gauss_only.use_non_gaussian_bins = false;
    RfLocalizer ring_loc(grid(), table(), gauss_only);
    RfLocalizer full_loc(grid(), table());

    double ring_err = 0.0;
    double full_err = 0.0;
    constexpr int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
        auto obs = beacons_around(truth, near, 3);
        const auto ring_fix = ring_loc.compute_fix(obs);
        ASSERT_TRUE(ring_fix.has_value());
        ring_err += geom::distance(ring_fix->position, truth);
        auto far_obs = beacons_around(truth, far, 3);
        obs.insert(obs.end(), far_obs.begin(), far_obs.end());
        const auto full_fix = full_loc.compute_fix(obs);
        ASSERT_TRUE(full_fix.has_value());
        full_err += geom::distance(full_fix->position, truth);
    }
    EXPECT_LT(full_err / kTrials, ring_err / kTrials);
}

TEST_F(LocalizerFixture, StatsCountFixes) {
    RfLocalizer loc(grid(), table());
    const Vec2 truth{100.0, 100.0};
    const auto obs =
        beacons_around(truth, {{85.0, 100.0}, {110.0, 115.0}, {100.0, 80.0}}, 2);
    EXPECT_TRUE(loc.compute_fix(obs).has_value());
    EXPECT_TRUE(loc.compute_fix(obs).has_value());
    EXPECT_FALSE(loc.compute_fix({}).has_value());
    EXPECT_EQ(loc.stats().fixes, 2u);
    EXPECT_EQ(loc.stats().rejected_too_few, 1u);
}

TEST_F(LocalizerFixture, SpreadReflectsGeometryQuality) {
    const Vec2 truth{100.0, 100.0};
    RfLocalizer loc(grid(), table());
    // Good geometry: anchors surrounding the truth.
    auto good =
        beacons_around(truth, {{85.0, 100.0}, {110.0, 115.0}, {100.0, 80.0}}, 2);
    const auto good_fix = loc.compute_fix(good);
    // Bad geometry: a single anchor (ring posterior).
    auto bad = beacons_around(truth, {{115.0, 100.0}}, 3);
    const auto bad_fix = loc.compute_fix(bad);
    ASSERT_TRUE(good_fix.has_value());
    ASSERT_TRUE(bad_fix.has_value());
    EXPECT_LT(good_fix->posterior_spread_m, bad_fix->posterior_spread_m);
}

TEST_F(LocalizerFixture, WeightedCentroidLocalizes) {
    RfLocalizer::Options opt;
    opt.technique = RfTechnique::WeightedCentroid;
    RfLocalizer loc(grid(), table(), opt);
    const Vec2 truth{100.0, 100.0};
    const auto obs = beacons_around(
        truth, {{90.0, 100.0}, {110.0, 110.0}, {100.0, 85.0}, {115.0, 95.0}}, 3);
    const auto fix = loc.compute_fix(obs);
    ASSERT_TRUE(fix.has_value());
    // Coarse but sane: within the anchor neighbourhood.
    EXPECT_LT(geom::distance(fix->position, truth), 20.0);
}

TEST_F(LocalizerFixture, LeastSquaresLocalizesAccurately) {
    RfLocalizer::Options opt;
    opt.technique = RfTechnique::LeastSquares;
    RfLocalizer loc(grid(), table(), opt);
    const Vec2 truth{100.0, 100.0};
    const auto obs = beacons_around(
        truth, {{85.0, 100.0}, {110.0, 115.0}, {100.0, 80.0}, {120.0, 95.0}}, 3);
    const auto fix = loc.compute_fix(obs);
    ASSERT_TRUE(fix.has_value());
    EXPECT_LT(geom::distance(fix->position, truth), 6.0);
}

TEST_F(LocalizerFixture, LeastSquaresBeatsCentroidOnGoodGeometry) {
    RfLocalizer::Options ls_opt;
    ls_opt.technique = RfTechnique::LeastSquares;
    RfLocalizer ls(grid(), table(), ls_opt);
    RfLocalizer::Options wc_opt;
    wc_opt.technique = RfTechnique::WeightedCentroid;
    RfLocalizer wc(grid(), table(), wc_opt);
    const Vec2 truth{100.0, 100.0};
    double ls_err = 0.0;
    double wc_err = 0.0;
    for (int trial = 0; trial < 15; ++trial) {
        const auto obs = beacons_around(
            truth, {{80.0, 100.0}, {110.0, 120.0}, {105.0, 75.0}, {125.0, 100.0}}, 2);
        ls_err += geom::distance(ls.compute_fix(obs)->position, truth);
        wc_err += geom::distance(wc.compute_fix(obs)->position, truth);
    }
    EXPECT_LT(ls_err, wc_err);
}

TEST_F(LocalizerFixture, TechniquesStayInsideArea) {
    for (const auto technique :
         {RfTechnique::BayesianGrid, RfTechnique::WeightedCentroid,
          RfTechnique::LeastSquares}) {
        RfLocalizer::Options opt;
        opt.technique = technique;
        RfLocalizer loc(grid(), table(), opt);
        // Anchors near a corner, robot outside their hull.
        const Vec2 truth{5.0, 5.0};
        const auto obs =
            beacons_around(truth, {{20.0, 5.0}, {5.0, 20.0}, {20.0, 20.0}}, 3);
        const auto fix = loc.compute_fix(obs);
        ASSERT_TRUE(fix.has_value());
        EXPECT_TRUE(grid().area.contains(fix->position));
    }
}

// Accuracy sweep across robot positions: with the paper's anchor density
// (25 anchors in 200 m x 200 m), fixes land within a few metres.
class LocalizerAccuracySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalizerAccuracySweep, FixWithinMetres) {
    const RngManager mgr(GetParam());
    auto table = std::make_shared<const phy::PdfTable>(
        phy::PdfTable::calibrate(phy::Channel{}, {}, mgr.stream("calibration")));
    GridConfig g;
    g.area = geom::Rect::square(200.0);
    g.cell_m = 2.0;
    RfLocalizer loc(g, table);
    auto rng = mgr.stream("beacons");
    const phy::Channel ch;

    const Vec2 truth{rng.uniform(20.0, 180.0), rng.uniform(20.0, 180.0)};
    std::vector<BeaconObservation> obs;
    for (int a = 0; a < 25; ++a) {
        const Vec2 anchor{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
        for (int k = 0; k < 3; ++k) {
            const double rssi = ch.sample_rssi_dbm(geom::distance(anchor, truth), rng);
            if (rssi >= ch.config().rx_sensitivity_dbm) obs.push_back({anchor, rssi});
        }
    }
    const auto fix = loc.compute_fix(obs);
    ASSERT_TRUE(fix.has_value());
    EXPECT_LT(geom::distance(fix->position, truth), 20.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalizerAccuracySweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u));

}  // namespace
}  // namespace cocoa::core
