#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "georouting/geo_router.hpp"
#include "net/node.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace cocoa::georouting {
namespace {

using cocoa::energy::PowerProfile;
using cocoa::geom::Vec2;
using cocoa::sim::Duration;
using cocoa::sim::Simulator;
using cocoa::sim::TimePoint;

/// Static topologies over a deterministic channel; every router advertises
/// its true position unless a test substitutes estimates.
class GeoFixture : public ::testing::Test {
  protected:
    GeoFixture() : sim_(31), world_(sim_, quiet_channel()) {}

    static phy::Channel quiet_channel() {
        phy::ChannelConfig c;
        c.shadowing_sigma_near_db = 0.0;
        c.shadowing_sigma_far_db = 0.0;
        c.fade_mean_far_db = 0.0;
        return phy::Channel{c};
    }

    void build(const std::vector<Vec2>& positions, GeoRouterConfig config = {}) {
        mobility::WaypointConfig mc;
        mc.area = geom::Rect::from_bounds(-500.0, -500.0, 2000.0, 2000.0);
        mc.min_speed = 0.001;
        mc.max_speed = 0.002;  // effectively static
        for (const Vec2& p : positions) {
            world_.add_node(mc, PowerProfile::wavelan(), {}, p);
        }
        fleet_.emplace(world_, config, [this](net::NodeId id) {
            return [this, id] { return world_.node(id).mobility().position(); };
        });
        fleet_->start_all();
        // Two hello rounds so neighbour tables are complete.
        sim_.run_until(TimePoint::from_seconds(11.0));
    }

    Simulator sim_;
    net::World world_;
    std::optional<GeoRoutingFleet> fleet_;
};

TEST_F(GeoFixture, HellosBuildNeighborTables) {
    build({{0.0, 0.0}, {100.0, 0.0}, {300.0, 0.0}});
    EXPECT_EQ(fleet_->at(0).neighbor_count(), 1u);  // only node 1 in range
    EXPECT_EQ(fleet_->at(1).neighbor_count(), 1u);  // node 2 out of range too
    EXPECT_EQ(fleet_->at(2).neighbor_count(), 0u);
}

TEST_F(GeoFixture, DirectNeighborDelivery) {
    build({{0.0, 0.0}, {100.0, 0.0}});
    int got = 0;
    fleet_->at(1).set_deliver_handler([&](const net::GeoDataPayload& d) {
        EXPECT_EQ(d.origin, 0u);
        EXPECT_EQ(d.app_tag, 77u);
        ++got;
    });
    sim_.schedule_at(TimePoint::from_seconds(12.0), [&] {
        EXPECT_TRUE(fleet_->at(0).send(1, {100.0, 0.0}, 64, 77));
    });
    sim_.run_until(TimePoint::from_seconds(15.0));
    EXPECT_EQ(got, 1);
}

TEST_F(GeoFixture, GreedyChainDelivery) {
    build({{0.0, 0.0}, {120.0, 0.0}, {240.0, 0.0}, {360.0, 0.0}, {480.0, 0.0}});
    int got = 0;
    fleet_->at(4).set_deliver_handler([&](const net::GeoDataPayload&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(12.0), [&] {
        fleet_->at(0).send(4, {480.0, 0.0}, 64);
    });
    sim_.run_until(TimePoint::from_seconds(15.0));
    EXPECT_EQ(got, 1);
    const auto total = fleet_->total_stats();
    EXPECT_EQ(total.forwarded_greedy, 4u);  // 4 hops
    EXPECT_EQ(total.forwarded_face, 0u);
}

TEST_F(GeoFixture, FaceRoutingAroundVoid) {
    // A "U" void: the straight line from source to destination crosses a gap
    // with no nodes; greedy hits a local minimum at node 1 and face routing
    // must walk around via the top.
    build({
        {0.0, 0.0},     // 0: source
        {140.0, 0.0},   // 1: local minimum (no neighbour closer to dest)
        {140.0, 140.0}, // 2: top-left of the detour
        {280.0, 140.0}, // 3: top-right
        {420.0, 140.0}, // 4: descends toward dest
        {420.0, 0.0},   // 5: destination... 1 -> 5 is 280 m apart: void
    });
    int got = 0;
    fleet_->at(5).set_deliver_handler([&](const net::GeoDataPayload&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(12.0), [&] {
        fleet_->at(0).send(5, {420.0, 0.0}, 64);
    });
    sim_.run_until(TimePoint::from_seconds(15.0));
    EXPECT_EQ(got, 1);
    EXPECT_GT(fleet_->total_stats().forwarded_face, 0u);
}

TEST_F(GeoFixture, UnreachableDestinationDropsNotLoops) {
    build({{0.0, 0.0}, {120.0, 0.0}, {1500.0, 1500.0}});
    int got = 0;
    fleet_->at(2).set_deliver_handler([&](const net::GeoDataPayload&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(12.0), [&] {
        fleet_->at(0).send(2, {1500.0, 1500.0}, 64);
    });
    sim_.run_until(TimePoint::from_seconds(30.0));
    EXPECT_EQ(got, 0);
    // The packet dies in a bounded way: a drop, a TTL expiry, or the
    // same-edge duplicate filter ending a face ping-pong.
    const auto total = fleet_->total_stats();
    EXPECT_GT(total.dropped_no_neighbor + total.dropped_ttl +
                  total.duplicates_swallowed,
              0u);
}

TEST_F(GeoFixture, TtlBoundsTraversal) {
    GeoRouterConfig cfg;
    cfg.ttl = 2;
    build({{0.0, 0.0}, {120.0, 0.0}, {240.0, 0.0}, {360.0, 0.0}, {480.0, 0.0}}, cfg);
    int got = 0;
    fleet_->at(4).set_deliver_handler([&](const net::GeoDataPayload&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(12.0), [&] {
        fleet_->at(0).send(4, {480.0, 0.0}, 64);
    });
    sim_.run_until(TimePoint::from_seconds(15.0));
    EXPECT_EQ(got, 0);  // needs 4 hops, TTL allows 3 transmissions
    EXPECT_EQ(fleet_->total_stats().dropped_ttl, 1u);
}

TEST_F(GeoFixture, NeighborExpiryAfterSilence) {
    GeoRouterConfig cfg;
    cfg.neighbor_timeout = Duration::seconds(12.0);
    build({{0.0, 0.0}, {100.0, 0.0}}, cfg);
    EXPECT_EQ(fleet_->at(0).neighbor_count(), 1u);
    // Stop node 1's hellos; node 0 must forget it. (Expiry is lazy, checked
    // on the next routing decision.)
    fleet_->at(1).stop();
    sim_.run_until(TimePoint::from_seconds(40.0));
    fleet_->at(0).send(1, {100.0, 0.0}, 16);
    EXPECT_EQ(fleet_->at(0).neighbor_count(), 0u);
}

TEST_F(GeoFixture, SendWithNoNeighborsFails) {
    build({{0.0, 0.0}});
    EXPECT_FALSE(fleet_->at(0).send(9, {100.0, 100.0}, 16));
    EXPECT_EQ(fleet_->at(0).stats().dropped_no_neighbor, 1u);
}

TEST_F(GeoFixture, ArqBlacklistsDeadHopAndReroutes) {
    // src greedily picks A (straight toward dst); A dies after the neighbour
    // tables are built, so the per-hop ARQ exhausts its retries, blacklists
    // A, and reroutes through B — the packet still arrives.
    build({
        {0.0, 0.0},    // 0: src
        {100.0, 0.0},  // 1: A (preferred greedy hop)
        {100.0, 60.0}, // 2: B (detour)
        {200.0, 0.0},  // 3: dst
    });
    int got = 0;
    fleet_->at(3).set_deliver_handler([&](const net::GeoDataPayload&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(11.5),
                     [&] { world_.node(1).radio().power_off(); });
    sim_.schedule_at(TimePoint::from_seconds(12.0), [&] {
        fleet_->at(0).send(3, {200.0, 0.0}, 64);
    });
    sim_.run_until(TimePoint::from_seconds(20.0));
    EXPECT_EQ(got, 1);
    EXPECT_EQ(fleet_->at(0).stats().retransmits, 3u);
    EXPECT_EQ(fleet_->at(0).stats().reroutes, 1u);
    // A was evicted from src's neighbour table.
    EXPECT_FALSE(fleet_->at(0).neighbors().contains(1));
}

TEST_F(GeoFixture, AckSuppressesRetransmission) {
    build({{0.0, 0.0}, {100.0, 0.0}});
    int got = 0;
    fleet_->at(1).set_deliver_handler([&](const net::GeoDataPayload&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(12.0), [&] {
        fleet_->at(0).send(1, {100.0, 0.0}, 64);
    });
    sim_.run_until(TimePoint::from_seconds(15.0));
    EXPECT_EQ(got, 1);
    EXPECT_EQ(fleet_->at(0).stats().retransmits, 0u);
}

TEST_F(GeoFixture, RequiresPositionProvider) {
    mobility::WaypointConfig mc;
    mc.area = geom::Rect::square(200.0);
    net::Node& n = world_.add_node(mc, PowerProfile::wavelan());
    EXPECT_THROW(GeoRouter(n, {}, nullptr), std::invalid_argument);
}

TEST_F(GeoFixture, PositionErrorToleratedWithinReason) {
    // Routers advertise noisy positions (CoCoA-grade, ~5 m): greedy routing
    // still delivers across the chain.
    mobility::WaypointConfig mc;
    mc.area = geom::Rect::from_bounds(-500.0, -500.0, 2000.0, 2000.0);
    mc.min_speed = 0.001;
    mc.max_speed = 0.002;
    const std::vector<Vec2> positions = {
        {0.0, 0.0}, {120.0, 0.0}, {240.0, 0.0}, {360.0, 0.0}, {480.0, 0.0}};
    for (const Vec2& p : positions) {
        world_.add_node(mc, PowerProfile::wavelan(), {}, p);
    }
    auto noise_rng =
        std::make_shared<sim::RandomStream>(sim_.rng().stream("noise"));
    fleet_.emplace(world_, GeoRouterConfig{}, [&](net::NodeId id) {
        const Vec2 offset{noise_rng->gaussian(0.0, 5.0), noise_rng->gaussian(0.0, 5.0)};
        return [this, id, offset] {
            return world_.node(id).mobility().position() + offset;
        };
    });
    fleet_->start_all();
    sim_.run_until(TimePoint::from_seconds(11.0));
    int got = 0;
    fleet_->at(4).set_deliver_handler([&](const net::GeoDataPayload&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(12.0), [&] {
        fleet_->at(0).send(4, {480.0, 0.0}, 64);
    });
    sim_.run_until(TimePoint::from_seconds(15.0));
    EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace cocoa::georouting
