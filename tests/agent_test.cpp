#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/agent.hpp"
#include "core/scenario.hpp"

namespace cocoa::core {
namespace {

using cocoa::sim::Duration;
using cocoa::sim::TimePoint;

/// Small deployments driven through the Scenario builder — the natural way
/// to wire agents — with direct access to individual agents.
ScenarioConfig small_config() {
    ScenarioConfig c;
    c.seed = 11;
    c.num_robots = 10;
    c.num_anchors = 5;
    c.duration = Duration::seconds(120.0);
    c.period = Duration::seconds(20.0);
    c.window = Duration::seconds(3.0);
    return c;
}

TEST(Agent, AnchorsSendBeaconsBlindRobotsDoNot) {
    Scenario s(small_config());
    s.run();
    for (std::size_t i = 0; i < s.agent_count(); ++i) {
        const auto id = static_cast<net::NodeId>(i);
        const auto& stats = s.agent(id).stats();
        if (s.is_anchor(id)) {
            EXPECT_GT(stats.beacons_sent, 0u) << "anchor " << i;
            EXPECT_EQ(stats.fixes, 0u) << "anchor " << i;
        } else {
            EXPECT_EQ(stats.beacons_sent, 0u) << "blind " << i;
            EXPECT_GT(stats.beacons_received, 0u) << "blind " << i;
        }
    }
}

TEST(Agent, AnchorSendsKBeaconsPerWindow) {
    ScenarioConfig c = small_config();
    c.beacons_per_window = 3;  // the paper's k
    Scenario s(c);
    s.run();
    // 120 s / 20 s = 6 periods, 3 beacons each.
    EXPECT_EQ(s.agent(0).stats().beacons_sent, 18u);
}

TEST(Agent, BlindRobotsFixEveryWindowAtPaperDensity) {
    Scenario s(small_config());
    s.run();
    for (std::size_t i = 5; i < 10; ++i) {
        const auto& stats = s.agent(static_cast<net::NodeId>(i)).stats();
        EXPECT_GT(stats.fixes, 3u) << "blind " << i;
        EXPECT_TRUE(s.agent(static_cast<net::NodeId>(i)).ever_fixed());
    }
}

TEST(Agent, EstimateStartsAtAreaCenterWithoutInitialPose) {
    ScenarioConfig c = small_config();
    Scenario s(c);
    // Before anything runs, blind estimates sit at the uniform-prior mean.
    const auto center = geom::Rect::square(c.area_side_m).center();
    EXPECT_EQ(s.agent(7).estimate(), center);
}

TEST(Agent, OdometryOnlyUsesTruePoseAtStart) {
    ScenarioConfig c = small_config();
    c.mode = LocalizationMode::OdometryOnly;
    Scenario s(c);
    s.run_until(TimePoint::from_seconds(1.0));
    // At t=1 the estimate is still within noise of the truth.
    EXPECT_LT(s.agent(3).error(), 2.0);
}

TEST(Agent, OdometryOnlySendsNothing) {
    ScenarioConfig c = small_config();
    c.mode = LocalizationMode::OdometryOnly;
    Scenario s(c);
    s.run();
    const auto r = s.result();
    EXPECT_EQ(r.agent_totals.beacons_sent, 0u);
    EXPECT_EQ(r.medium_stats.frames_sent, 0u);
    EXPECT_EQ(r.agent_totals.fixes, 0u);
}

TEST(Agent, RfOnlyEstimateConstantBetweenWindows) {
    ScenarioConfig c = small_config();
    c.mode = LocalizationMode::RfOnly;
    c.sync = SyncMode::PerfectClock;
    Scenario s(c);
    // Run past the first window, sample the estimate, run to mid-period,
    // sample again: it must not have moved (held fix).
    s.run_until(TimePoint::from_seconds(5.0));
    const auto est1 = s.agent(7).estimate();
    s.run_until(TimePoint::from_seconds(15.0));
    const auto est2 = s.agent(7).estimate();
    EXPECT_EQ(est1, est2);
}

TEST(Agent, CombinedEstimateMovesBetweenWindows) {
    ScenarioConfig c = small_config();
    c.mode = LocalizationMode::Combined;
    c.sync = SyncMode::PerfectClock;
    Scenario s(c);
    s.run_until(TimePoint::from_seconds(5.0));
    const auto est1 = s.agent(7).estimate();
    s.run_until(TimePoint::from_seconds(15.0));
    const auto est2 = s.agent(7).estimate();
    EXPECT_NE(est1, est2);  // odometry keeps integrating
}

TEST(Agent, SleepCoordinationPutsRadiosToSleepBetweenWindows) {
    ScenarioConfig c = small_config();
    c.sync = SyncMode::PerfectClock;
    Scenario s(c);
    // Mid-period (t=10 of a 20 s period, window 3 s): radios asleep.
    s.run_until(TimePoint::from_seconds(10.0));
    int asleep = 0;
    for (const auto& node : s.world().nodes()) {
        if (!node->radio().awake()) ++asleep;
    }
    EXPECT_EQ(asleep, 10);
    // Inside the next window: radios awake.
    s.run_until(TimePoint::from_seconds(21.0));
    int awake = 0;
    for (const auto& node : s.world().nodes()) {
        if (node->radio().awake()) ++awake;
    }
    EXPECT_EQ(awake, 10);
}

TEST(Agent, NoSleepWithoutCoordination) {
    ScenarioConfig c = small_config();
    c.sleep_coordination = false;
    Scenario s(c);
    s.run_until(TimePoint::from_seconds(10.0));
    for (const auto& node : s.world().nodes()) {
        EXPECT_TRUE(node->radio().awake());
    }
}

TEST(Agent, MrmmSyncDeliversSyncMessages) {
    ScenarioConfig c = small_config();
    c.sync = SyncMode::Mrmm;
    Scenario s(c);
    s.run();
    const auto r = s.result();
    EXPECT_GT(r.agent_totals.syncs_received, 0u);
    EXPECT_GT(r.multicast_stats.data_sent, 0u);
    EXPECT_GT(r.multicast_stats.queries_sent, 0u);
}

TEST(Agent, PerfectClockHasNoControlTraffic) {
    ScenarioConfig c = small_config();
    c.sync = SyncMode::PerfectClock;
    Scenario s(c);
    s.run();
    const auto r = s.result();
    EXPECT_EQ(r.agent_totals.syncs_received, 0u);
    EXPECT_EQ(r.multicast_stats.data_sent, 0u);
    // Only beacons on the air.
    EXPECT_EQ(r.medium_stats.frames_sent, r.agent_totals.beacons_sent);
}

TEST(Agent, FixErrorSmallRightAfterWindow) {
    ScenarioConfig c = small_config();
    c.sync = SyncMode::PerfectClock;
    c.num_robots = 30;
    c.num_anchors = 15;
    Scenario s(c);
    s.run_until(TimePoint::from_seconds(4.0));  // right after window 0
    metrics::RunningStat err;
    for (std::size_t i = 15; i < 30; ++i) {
        s.agent(static_cast<net::NodeId>(i)).tick();
        err.add(s.agent(static_cast<net::NodeId>(i)).error());
    }
    EXPECT_LT(err.mean(), 12.0);
}

TEST(Agent, HeadingCorrectionConfigurable) {
    // Smoke-check the ablation knob wires through: disabling heading
    // correction must not crash and typically degrades accuracy.
    ScenarioConfig c = small_config();
    c.heading_correction_at_fix = false;
    const auto r = run_scenario(c);
    EXPECT_GT(r.agent_totals.fixes, 0u);
}

TEST(Agent, InvalidConfigRejected) {
    ScenarioConfig c = small_config();
    c.window = c.period;  // window must be < period
    EXPECT_THROW(Scenario{c}, std::invalid_argument);
    c = small_config();
    c.beacons_per_window = 0;
    EXPECT_THROW(Scenario{c}, std::invalid_argument);
    c = small_config();
    c.num_anchors = 0;  // RF mode needs anchors
    EXPECT_THROW(Scenario{c}, std::invalid_argument);
    c = small_config();
    c.num_anchors = 99;
    EXPECT_THROW(Scenario{c}, std::invalid_argument);
}

TEST(Agent, RetunePropagatesThroughSync) {
    // §2.3: "a human operator [can] dynamically adjust these values by
    // notifying the Sync robot to advertise new values".
    ScenarioConfig c = small_config();
    c.sync = SyncMode::Mrmm;
    Scenario s(c);
    s.run_until(TimePoint::from_seconds(30.0));
    s.agent(0).retune(Duration::seconds(40.0), Duration::seconds(4.0));
    s.run_until(TimePoint::from_seconds(180.0));
    // Every robot that heard a SYNC since then runs the new time-line.
    int adopted = 0;
    for (std::size_t i = 0; i < s.agent_count(); ++i) {
        if (s.agent(static_cast<net::NodeId>(i)).period() == Duration::seconds(40.0)) {
            ++adopted;
        }
    }
    EXPECT_GE(adopted, 8);  // at most a couple of stragglers
    // And localization keeps working afterwards.
    metrics::RunningStat err;
    for (std::size_t i = 5; i < 10; ++i) {
        err.add(s.agent(static_cast<net::NodeId>(i)).error());
    }
    EXPECT_LT(err.mean(), 30.0);
}

TEST(Agent, RetuneValidation) {
    Scenario s(small_config());
    EXPECT_THROW(s.agent(0).retune(Duration::seconds(10.0), Duration::seconds(10.0)),
                 std::invalid_argument);
    EXPECT_THROW(s.agent(0).retune(Duration::seconds(10.0), Duration::zero()),
                 std::invalid_argument);
}

TEST(Agent, AnchorEstimateIsDevicePosition) {
    Scenario s(small_config());
    s.run_until(TimePoint::from_seconds(30.0));
    // Anchors "know" their position through the localization device.
    EXPECT_DOUBLE_EQ(s.agent(0).error(), 0.0);
}

TEST(Agent, BeaconsCarryAnchorPositionWithSlamNoise) {
    ScenarioConfig c = small_config();
    c.sync = SyncMode::PerfectClock;
    c.num_robots = 2;
    c.num_anchors = 1;
    c.anchor_position_sigma_m = 0.5;
    Scenario s(c);
    // Intercept beacons at the blind node.
    auto& blind = s.world().node(1);
    std::vector<geom::Vec2> reported;
    std::vector<geom::Vec2> truth;
    auto& anchor_mob = s.world().node(0).mobility();
    blind.radio().set_receive_handler(
        [&](const net::Packet& p, const net::RxInfo& info) {
            if (const auto* b = std::get_if<net::BeaconPayload>(&p.payload)) {
                reported.push_back(b->anchor_position);
                truth.push_back(anchor_mob.position());
            }
            blind.host().dispatch(p, info);
        });
    s.run_until(TimePoint::from_seconds(25.0));
    ASSERT_FALSE(reported.empty());
    for (std::size_t i = 0; i < reported.size(); ++i) {
        const double err = geom::distance(reported[i], truth[i]);
        EXPECT_GT(err, 0.0);
        EXPECT_LT(err, 5.0);  // SLAM-grade, not exact
    }
}

}  // namespace
}  // namespace cocoa::core
