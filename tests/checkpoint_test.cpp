// Checkpoint/fork engine tests: RNG stream round-trips, randomized
// checkpoint-time fuzzing on the fig7 scenario and a 1k-node swarm
// (snapshot mid-run, resume, diff full position traces + counters against
// the straight run), blob file I/O, and the forked-sweep identity contract
// (forked and unforked sweeps produce byte-identical records).

#include <cstdio>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "core/swarm.hpp"
#include "exp/checkpoint.hpp"
#include "exp/replication.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "sim/checkpoint.hpp"
#include "sim/random.hpp"

namespace cocoa {
namespace {

// ------------------------------------------------------------- RNG streams

TEST(CheckpointRng, StreamRoundTripBitwise) {
    sim::RandomStream a(42);
    // Burn a mixed prefix so the engine is mid-sequence, not at a seed point.
    for (int i = 0; i < 100; ++i) {
        (void)a.uniform(0.0, 1.0);
        (void)a.uniform_int(0, 1000);
        (void)a.gaussian(0.0, 2.0);
    }
    sim::ckpt::Writer w;
    a.save(w);
    const std::string blob = w.take();

    // Reference continuation from the saved point.
    std::vector<double> want_u, want_n;
    std::vector<std::int64_t> want_i;
    for (int i = 0; i < 50; ++i) {
        want_u.push_back(a.uniform(0.0, 1.0));
        want_i.push_back(a.uniform_int(0, 1000));
        want_n.push_back(a.gaussian(0.0, 2.0));
    }

    // A fresh stream (different seed on purpose) loaded from the blob must
    // reproduce the continuation bit for bit.
    sim::RandomStream b(7);
    sim::ckpt::Reader r(blob);
    b.load(r);
    EXPECT_TRUE(r.at_end());
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(b.uniform(0.0, 1.0), want_u[static_cast<std::size_t>(i)]);
        EXPECT_EQ(b.uniform_int(0, 1000), want_i[static_cast<std::size_t>(i)]);
        EXPECT_EQ(b.gaussian(0.0, 2.0), want_n[static_cast<std::size_t>(i)]);
    }
}

TEST(CheckpointRng, BlobFileRoundTrip) {
    sim::ckpt::Writer w;
    w.mark(0x54455354);
    w.u64(123456789ull);
    w.str(std::string_view("payload with\0embedded nul bytes", 31));
    const std::string blob = w.take();

    const std::string path = ::testing::TempDir() + "ckpt_blob_roundtrip.bin";
    sim::ckpt::write_blob_file(path, blob);
    EXPECT_EQ(sim::ckpt::read_blob_file(path), blob);
    std::remove(path.c_str());

    EXPECT_THROW(sim::ckpt::read_blob_file(path + ".missing"), std::runtime_error);
}

// ------------------------------------------------------- scenario fuzzing

/// Small fig7-shaped scenario with a non-empty, multi-kind fault plan so a
/// mid-run snapshot catches armed strikes, outage intervals and loss bursts.
core::ScenarioConfig fuzz_config() {
    core::ScenarioConfig c;
    c.seed = 11;
    c.num_robots = 10;
    c.num_anchors = 8;
    c.area_side_m = 120.0;
    c.duration = sim::Duration::seconds(120.0);
    c.period = sim::Duration::seconds(20.0);
    c.window = sim::Duration::seconds(3.0);
    return c;
}

fault::FaultPlan fuzz_plan() {
    return fault::FaultPlan::parse(
        "crash@70:node=7;"
        "outage@30+20:node=4;"
        "loss@50+25:p=0.5,db=3");
}

/// Everything a run reports, folded into one comparable string: the full
/// counter registry, the error series (bit-exact doubles via hexfloat), the
/// agent/medium totals and the complete position trace.
std::string scenario_digest(const core::ScenarioResult& result,
                            const core::Scenario& scenario) {
    std::ostringstream ss;
    ss << std::hexfloat;
    ss << "events=" << result.executed_events << "\n";
    for (const auto& [name, value] : result.counters) {
        ss << name << "=" << value << "\n";
    }
    ss << "fixes=" << result.agent_totals.fixes
       << " nofix=" << result.agent_totals.windows_without_fix
       << " btx=" << result.agent_totals.beacons_sent
       << " brx=" << result.agent_totals.beacons_received
       << " sync=" << result.agent_totals.syncs_received
       << " frames=" << result.medium_stats.frames_sent << "\n";
    ss << "energy=" << result.team_energy.tx_mj << "," << result.team_energy.rx_mj
       << "," << result.team_energy.idle_mj << "," << result.team_energy.sleep_mj
       << "\n";
    for (const auto& s : result.avg_error.samples()) {
        ss << s.time.to_nanos() << ":" << s.value << "\n";
    }
    scenario.write_position_trace_csv(ss);
    return ss.str();
}

TEST(CheckpointFuzz, ScenarioRestoreMatchesStraightRun) {
    const core::ScenarioConfig config = fuzz_config();
    const fault::FaultPlan plan = fuzz_plan();

    // Straight run: the oracle every snapshot/restore must reproduce.
    core::Scenario straight(config);
    fault::FaultInjector straight_injector(straight, plan);
    straight_injector.arm();
    straight.enable_position_trace(sim::Duration::seconds(5.0));
    straight.run();
    const std::string want = scenario_digest(straight.result(), straight);
    const fault::ResilienceReport want_rep =
        straight_injector.report(straight.result());

    // Snapshot at random mid-run instants (fixed fuzz seed: reproducible,
    // but instants are not hand-picked around event boundaries).
    std::mt19937_64 fuzz(2026);
    std::uniform_real_distribution<double> pick(5.0, 115.0);
    for (int trial = 0; trial < 3; ++trial) {
        const double at_s = pick(fuzz);
        SCOPED_TRACE("checkpoint at t=" + std::to_string(at_s));

        core::Scenario prefix(config);
        fault::FaultInjector injector(prefix, plan);
        injector.arm();
        prefix.enable_position_trace(sim::Duration::seconds(5.0));
        prefix.run_until(sim::TimePoint::origin() +
                         sim::Duration::seconds(at_s));
        const std::string blob = exp::save_scenario_checkpoint(prefix, &injector);

        exp::RestoredScenario restored = exp::restore_scenario_checkpoint(blob);
        ASSERT_NE(restored.scenario, nullptr);
        ASSERT_NE(restored.injector, nullptr);
        restored.scenario->run();
        EXPECT_EQ(scenario_digest(restored.scenario->result(), *restored.scenario),
                  want);

        const fault::ResilienceReport rep =
            restored.injector->report(restored.scenario->result());
        EXPECT_EQ(rep.availability, want_rep.availability);
        EXPECT_EQ(rep.avail_before, want_rep.avail_before);
        EXPECT_EQ(rep.avail_during, want_rep.avail_during);
        EXPECT_EQ(rep.avail_after, want_rep.avail_after);
        EXPECT_EQ(rep.samples_total, want_rep.samples_total);
        EXPECT_EQ(rep.reacquired, want_rep.reacquired);
        EXPECT_EQ(rep.never_reacquired, want_rep.never_reacquired);
        EXPECT_EQ(rep.mean_reacquire_s, want_rep.mean_reacquire_s);
    }
}

TEST(CheckpointFuzz, ScenarioRestoreSurvivesSecondHop) {
    // Checkpoint, restore, run a while, checkpoint AGAIN from the restored
    // instance, restore that, finish — still identical to the straight run.
    const core::ScenarioConfig config = fuzz_config();
    const fault::FaultPlan plan = fuzz_plan();

    core::Scenario straight(config);
    fault::FaultInjector straight_injector(straight, plan);
    straight_injector.arm();
    straight.run();
    const std::string want = scenario_digest(straight.result(), straight);

    core::Scenario prefix(config);
    fault::FaultInjector injector(prefix, plan);
    injector.arm();
    prefix.run_until(sim::TimePoint::origin() + sim::Duration::seconds(35.0));
    const std::string hop1 = exp::save_scenario_checkpoint(prefix, &injector);

    exp::RestoredScenario mid = exp::restore_scenario_checkpoint(hop1);
    mid.scenario->run_until(sim::TimePoint::origin() +
                            sim::Duration::seconds(80.0));
    const std::string hop2 =
        exp::save_scenario_checkpoint(*mid.scenario, mid.injector.get());

    exp::RestoredScenario fin = exp::restore_scenario_checkpoint(hop2);
    fin.scenario->run();
    EXPECT_EQ(scenario_digest(fin.scenario->result(), *fin.scenario), want);
}

// ---------------------------------------------------------- swarm fuzzing

std::string swarm_digest(const core::SwarmResult& r) {
    std::ostringstream ss;
    ss << "events=" << r.executed_events << " delivered=" << r.frames_delivered
       << " sent=" << r.medium_stats.frames_sent
       << " asleep=" << r.medium_stats.missed_asleep
       << " visited=" << r.medium_stats.radios_visited
       << " culled=" << r.medium_stats.radios_culled << "\n";
    ss << "tree=" << r.index_stats.inserts << "," << r.index_stats.removes << ","
       << r.index_stats.migrations << "," << r.index_stats.in_cell_updates << ","
       << r.index_stats.full_refreshes << "," << r.index_stats.queries << ","
       << r.index_stats.candidates_visited << "," << r.index_stats.cells_pruned
       << "\n";
    ss << "cache=" << r.radius_cache_stats.lookups << ","
       << r.radius_cache_stats.hits << "," << r.radius_cache_stats.misses << ","
       << r.radius_cache_stats.evictions << ","
       << r.radius_cache_stats.cells_pruned << ","
       << r.radius_cache_stats.sparse_bypass << "\n";
    ss << "flat=" << r.flat_index_stats.full_rebuilds << "\n";
    ss << std::hexfloat;
    for (const geom::Vec2& p : r.final_positions) {
        ss << p.x << "," << p.y << "\n";
    }
    return ss.str();
}

TEST(CheckpointFuzz, SwarmRestoreMatchesStraightRun) {
    core::SwarmConfig config;
    config.nodes = 1000;
    config.seed = 99;
    config.duration = sim::Duration::seconds(12.0);
    config.collect_final_positions = true;

    core::Swarm straight(config);
    straight.run();
    const std::string want = swarm_digest(straight.result());

    std::mt19937_64 fuzz(4242);
    std::uniform_real_distribution<double> pick(1.0, 11.0);
    for (int trial = 0; trial < 2; ++trial) {
        const double at_s = pick(fuzz);
        SCOPED_TRACE("swarm checkpoint at t=" + std::to_string(at_s));

        core::Swarm prefix(config);
        prefix.run_until(sim::TimePoint::origin() +
                         sim::Duration::seconds(at_s));
        const std::string blob = exp::save_swarm_checkpoint(prefix);

        std::unique_ptr<core::Swarm> restored =
            exp::restore_swarm_checkpoint(blob);
        ASSERT_NE(restored, nullptr);
        restored->run();
        EXPECT_EQ(swarm_digest(restored->result()), want);
    }
}

// ------------------------------------------------------ forked sweep runs

TEST(CheckpointFork, ForkedSweepMatchesUnforked) {
    core::ScenarioConfig config = fuzz_config();
    config.duration = sim::Duration::seconds(90.0);

    // Three cells sharing (config, seed): baseline + two divergent futures.
    std::vector<core::ScenarioConfig> configs(3, config);
    std::vector<fault::FaultPlan> plans;
    plans.emplace_back();  // baseline: runs straight, never forks
    plans.push_back(fault::FaultPlan::parse("crash@60:node=7"));
    plans.push_back(fault::FaultPlan::parse("loss@55+20:p=0.5"));

    exp::ReplicationOptions opt;
    opt.n_reps = 2;

    opt.fork = false;
    opt.n_threads = 1;
    const std::vector<exp::ReplicationSet> want =
        exp::run_sweep(configs, plans, opt);

    for (const int threads : {1, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        opt.fork = true;
        opt.n_threads = threads;
        const std::vector<exp::ReplicationSet> got =
            exp::run_sweep(configs, plans, opt);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
            ASSERT_EQ(got[i].records.size(), want[i].records.size());
            for (std::size_t k = 0; k < want[i].records.size(); ++k) {
                const exp::ReplicationRecord& a = got[i].records[k];
                const exp::ReplicationRecord& b = want[i].records[k];
                EXPECT_EQ(a.seed, b.seed);
                EXPECT_EQ(a.avg_error_m, b.avg_error_m);
                EXPECT_EQ(a.steady_error_m, b.steady_error_m);
                EXPECT_EQ(a.total_energy_kj, b.total_energy_kj);
                EXPECT_EQ(a.executed_events, b.executed_events);
            }
            EXPECT_EQ(got[i].counter_totals, want[i].counter_totals);
            EXPECT_EQ(got[i].has_resilience, want[i].has_resilience);
            if (want[i].has_resilience) {
                EXPECT_EQ(got[i].availability.mean(), want[i].availability.mean());
            }
        }
    }
}

TEST(CheckpointFork, SingleCellSweepNeverForks) {
    // One task per (config, seed) group: the fork detector must leave it on
    // the straight path (a fork would only add snapshot overhead).
    const core::ScenarioConfig config = fuzz_config();
    std::vector<core::ScenarioConfig> configs{config};
    std::vector<fault::FaultPlan> plans{
        fault::FaultPlan::parse("crash@70:node=7")};

    exp::ReplicationOptions opt;
    opt.n_reps = 1;
    opt.n_threads = 1;

    opt.fork = false;
    const auto want = exp::run_sweep(configs, plans, opt);
    opt.fork = true;
    const auto got = exp::run_sweep(configs, plans, opt);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].records[0].avg_error_m, want[0].records[0].avg_error_m);
    EXPECT_EQ(got[0].records[0].executed_events,
              want[0].records[0].executed_events);
}

}  // namespace
}  // namespace cocoa
