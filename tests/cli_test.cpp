#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "cli/args.hpp"

namespace cocoa::cli {
namespace {

struct ParseResult {
    bool ok = false;
    bool failed = false;
    std::string out;
    std::string err;
};

ParseResult run(ArgParser& parser, std::vector<const char*> argv) {
    argv.insert(argv.begin(), "prog");
    std::ostringstream out;
    std::ostringstream err;
    ParseResult r;
    r.ok = parser.parse(static_cast<int>(argv.size()), argv.data(), out, err);
    r.failed = parser.failed();
    r.out = out.str();
    r.err = err.str();
    return r;
}

TEST(ArgParser, ParsesEachType) {
    double d = 0.0;
    int i = 0;
    std::uint64_t u = 0;
    std::string s;
    bool flag = false;
    ArgParser p("prog", "test");
    p.add_option("double", "", &d)
        .add_option("int", "", &i)
        .add_option("uint", "", &u)
        .add_option("string", "", &s)
        .add_flag("flag", "", &flag);
    const auto r = run(p, {"--double", "2.5", "--int", "-3", "--uint", "99",
                           "--string", "hello", "--flag"});
    EXPECT_TRUE(r.ok);
    EXPECT_DOUBLE_EQ(d, 2.5);
    EXPECT_EQ(i, -3);
    EXPECT_EQ(u, 99u);
    EXPECT_EQ(s, "hello");
    EXPECT_TRUE(flag);
}

TEST(ArgParser, EqualsSyntax) {
    double d = 0.0;
    ArgParser p("prog", "test");
    p.add_option("x", "", &d);
    EXPECT_TRUE(run(p, {"--x=4.25"}).ok);
    EXPECT_DOUBLE_EQ(d, 4.25);
}

TEST(ArgParser, RangedIntAcceptsBoundsAndRejectsOutside) {
    int reps = 1;
    ArgParser p("prog", "test");
    p.add_option("reps", "", &reps, 1, 8);

    EXPECT_TRUE(run(p, {"--reps", "1"}).ok);
    EXPECT_EQ(reps, 1);
    EXPECT_TRUE(run(p, {"--reps", "8"}).ok);
    EXPECT_EQ(reps, 8);

    const auto low = run(p, {"--reps", "0"});
    EXPECT_FALSE(low.ok);
    EXPECT_TRUE(low.failed);
    EXPECT_NE(low.err.find("[1, 8]"), std::string::npos);

    const auto high = run(p, {"--reps", "9"});
    EXPECT_FALSE(high.ok);
    EXPECT_TRUE(high.failed);
}

TEST(ArgParser, RangedIntRejectsEmptyRangeAtRegistration) {
    int x = 0;
    ArgParser p("prog", "test");
    EXPECT_THROW(p.add_option("x", "", &x, 5, 4), std::invalid_argument);
}

TEST(ArgParser, DefaultsSurviveWhenUnset) {
    int i = 42;
    ArgParser p("prog", "test");
    p.add_option("i", "", &i);
    EXPECT_TRUE(run(p, {}).ok);
    EXPECT_EQ(i, 42);
}

TEST(ArgParser, HelpPrintsAndReturnsFalseWithoutFailure) {
    int i = 0;
    ArgParser p("prog", "does things");
    p.add_option("count", "how many", &i);
    const auto r = run(p, {"--help"});
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.failed);
    EXPECT_NE(r.out.find("does things"), std::string::npos);
    EXPECT_NE(r.out.find("--count"), std::string::npos);
    EXPECT_NE(r.out.find("how many"), std::string::npos);
}

TEST(ArgParser, UnknownOptionFails) {
    ArgParser p("prog", "test");
    const auto r = run(p, {"--nope"});
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.err.find("unknown option"), std::string::npos);
}

TEST(ArgParser, MissingValueFails) {
    int i = 0;
    ArgParser p("prog", "test");
    p.add_option("i", "", &i);
    const auto r = run(p, {"--i"});
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.err.find("needs a value"), std::string::npos);
}

TEST(ArgParser, BadNumberFails) {
    int i = 0;
    ArgParser p("prog", "test");
    p.add_option("i", "", &i);
    const auto r = run(p, {"--i", "12abc"});
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.err.find("bad value"), std::string::npos);
}

TEST(ArgParser, FlagRejectsValue) {
    bool f = false;
    ArgParser p("prog", "test");
    p.add_flag("f", "", &f);
    const auto r = run(p, {"--f=yes"});
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.failed);
}

TEST(ArgParser, PositionalRejected) {
    ArgParser p("prog", "test");
    const auto r = run(p, {"stray"});
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.err.find("positional"), std::string::npos);
}

TEST(ArgParser, ChoiceAcceptsListedValues) {
    std::string s = "grid";
    ArgParser p("prog", "test");
    p.add_option("estimator", "", &s, {"grid", "ekf", "lincvx"});
    const auto r = run(p, {"--estimator", "ekf"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(s, "ekf");
}

TEST(ArgParser, ChoiceRejectsUnlistedValueAndListsChoices) {
    std::string s = "grid";
    ArgParser p("prog", "test");
    p.add_option("estimator", "", &s, {"grid", "ekf", "lincvx"});
    const auto r = run(p, {"--estimator", "kalman"});
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.err.find("bad value 'kalman' for --estimator"), std::string::npos);
    EXPECT_NE(r.err.find("choices: grid ekf lincvx"), std::string::npos);
}

TEST(ArgParser, ChoiceSuggestsNearMiss) {
    std::string s = "grid";
    ArgParser p("prog", "test");
    p.add_option("estimator", "", &s, {"grid", "ekf", "lincvx"});
    const auto r = run(p, {"--estimator", "gird"});
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.err.find("did you mean 'grid'?"), std::string::npos);
}

TEST(ArgParser, ChoiceFarMissGetsNoSuggestion) {
    std::string s = "flat";
    ArgParser p("prog", "test");
    p.add_option("medium", "", &s, {"flat", "hier"});
    const auto r = run(p, {"--medium", "quadtree"});
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.err.find("did you mean"), std::string::npos);
}

TEST(ArgParser, ChoicesAppearInHelp) {
    std::string s = "grid";
    ArgParser p("prog", "test");
    p.add_option("estimator", "belief backend", &s, {"grid", "ekf", "lincvx"});
    EXPECT_NE(p.help().find("(choices: grid ekf lincvx)"), std::string::npos);
}

TEST(ArgParser, EmptyChoiceSetThrows) {
    std::string s;
    ArgParser p("prog", "test");
    EXPECT_THROW(p.add_option("x", "", &s, {}), std::invalid_argument);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
    int i = 0;
    ArgParser p("prog", "test");
    p.add_option("i", "", &i);
    EXPECT_THROW(p.add_option("i", "", &i), std::logic_error);
}

TEST(ArgParser, RegistrationWithDashesThrows) {
    int i = 0;
    ArgParser p("prog", "test");
    EXPECT_THROW(p.add_option("--i", "", &i), std::invalid_argument);
}

}  // namespace
}  // namespace cocoa::cli
