#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mac/medium.hpp"
#include "mac/radio.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace cocoa::mac {
namespace {

using cocoa::energy::PowerProfile;
using cocoa::energy::RadioState;
using cocoa::geom::Vec2;
using cocoa::net::Packet;
using cocoa::net::Port;
using cocoa::net::RxInfo;
using cocoa::net::TestPayload;
using cocoa::sim::Duration;
using cocoa::sim::Simulator;
using cocoa::sim::TimePoint;

Packet test_packet(std::uint64_t value = 0, std::size_t bytes = 24) {
    Packet p;
    p.port = Port::Test;
    p.payload_bytes = bytes;
    p.payload = TestPayload{value};
    return p;
}

/// Fixture: a simulator, a quiet channel and helpers to place static radios.
class MacFixture : public ::testing::Test {
  protected:
    MacFixture() : sim_(99), channel_(make_channel()), medium_(sim_, channel_) {}

    static phy::Channel make_channel() {
        phy::ChannelConfig c;
        c.shadowing_sigma_near_db = 0.0;  // deterministic RSSI for MAC tests
        c.shadowing_sigma_far_db = 0.0;
        c.fade_mean_far_db = 0.0;
        return phy::Channel{c};
    }

    Radio& add_radio(Vec2 position, MacConfig config = {}) {
        const auto id = static_cast<net::NodeId>(radios_.size());
        radios_.push_back(std::make_unique<Radio>(
            sim_, medium_, id, [position] { return position; }, PowerProfile::wavelan(),
            sim_.rng().stream("backoff", id), config));
        return *radios_.back();
    }

    /// Deterministic CSMA timing: no random backoff.
    static MacConfig zero_backoff() {
        MacConfig c;
        c.cw_min = 0;
        return c;
    }

    Simulator sim_;
    phy::Channel channel_;
    Medium medium_;
    std::vector<std::unique_ptr<Radio>> radios_;
};

TEST_F(MacFixture, DeliversToNearbyRadio) {
    Radio& tx = add_radio({0.0, 0.0});
    Radio& rx = add_radio({20.0, 0.0});
    std::vector<std::uint64_t> got;
    rx.set_receive_handler([&](const Packet& p, const RxInfo& info) {
        got.push_back(std::get<TestPayload>(p.payload).value);
        EXPECT_NEAR(info.rssi_dbm, channel_.mean_rssi_dbm(20.0), 1e-9);
    });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { tx.send(test_packet(42)); });
    sim_.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 42u);
    EXPECT_EQ(tx.stats().tx_frames, 1u);
    EXPECT_EQ(rx.stats().rx_delivered, 1u);
}

TEST_F(MacFixture, OutOfRangeNotDelivered) {
    Radio& tx = add_radio({0.0, 0.0});
    Radio& rx = add_radio({1000.0, 0.0});  // way past ~160 m range
    int got = 0;
    rx.set_receive_handler([&](const Packet&, const RxInfo&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { tx.send(test_packet()); });
    sim_.run();
    EXPECT_EQ(got, 0);
}

TEST_F(MacFixture, SenderDoesNotHearItself) {
    Radio& tx = add_radio({0.0, 0.0});
    int got = 0;
    tx.set_receive_handler([&](const Packet&, const RxInfo&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { tx.send(test_packet()); });
    sim_.run();
    EXPECT_EQ(got, 0);
}

TEST_F(MacFixture, BroadcastReachesAllInRange) {
    Radio& tx = add_radio({0.0, 0.0});
    int got = 0;
    for (int i = 1; i <= 5; ++i) {
        Radio& rx = add_radio({10.0 * i, 0.0});
        rx.set_receive_handler([&](const Packet&, const RxInfo&) { ++got; });
    }
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { tx.send(test_packet()); });
    sim_.run();
    EXPECT_EQ(got, 5);
}

TEST_F(MacFixture, AirtimeMatches2Mbps) {
    Radio& r = add_radio({0.0, 0.0});
    const Packet p = test_packet(0, 24);
    // 24 B payload + 20 IP + 20 UDP + 24 MAC + 4 FCS = 92 B = 736 bits at
    // 2 Mbps = 368 us, plus 192 us PLCP preamble.
    EXPECT_EQ(r.airtime(p), Duration::micros(192 + 368));
}

TEST_F(MacFixture, CsmaSerializesTwoSenders) {
    Radio& a = add_radio({0.0, 0.0}, zero_backoff());
    Radio& b = add_radio({5.0, 0.0}, zero_backoff());
    Radio& rx = add_radio({10.0, 0.0});
    int got = 0;
    rx.set_receive_handler([&](const Packet&, const RxInfo&) { ++got; });
    // A's frame flies 1.00005..1.000625 s; B queues mid-flight at 1.0003 s,
    // senses the busy channel, defers, and still delivers.
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { a.send(test_packet(1)); });
    sim_.schedule_at(TimePoint::from_seconds(1.0003), [&] { b.send(test_packet(2)); });
    sim_.run();
    EXPECT_EQ(got, 2);
    EXPECT_EQ(rx.stats().rx_corrupted, 0u);
}

TEST_F(MacFixture, BackoffsInSameSlotCollide) {
    // The DCF vulnerability window: two stations whose backoffs expire within
    // the CCA delay both transmit. Zero backoff makes this deterministic.
    Radio& a = add_radio({0.0, 0.0}, zero_backoff());
    Radio& b = add_radio({40.0, 0.0}, zero_backoff());
    Radio& rx = add_radio({20.0, 0.0});
    int got = 0;
    rx.set_receive_handler([&](const Packet&, const RxInfo&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { a.send(test_packet(1)); });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { b.send(test_packet(2)); });
    sim_.run();
    // Equal distances -> equal power: the second frame is within the capture
    // margin of the locked one, so the reception is corrupted.
    EXPECT_EQ(got, 0);
    EXPECT_EQ(rx.stats().rx_corrupted, 1u);
    EXPECT_EQ(a.stats().tx_frames, 1u);
    EXPECT_EQ(b.stats().tx_frames, 1u);
}

TEST_F(MacFixture, StrongFrameCapturesOverWeakOverlap) {
    // Same-slot overlap, but the first-locked frame is ~27 dB stronger than
    // the interferer: capture keeps it intact.
    Radio& strong = add_radio({10.0, 0.0}, zero_backoff());   // ~-61 dBm at rx
    Radio& weak = add_radio({0.0, 140.0}, zero_backoff());    // ~-88 dBm at rx
    Radio& rx = add_radio({0.0, 0.0});
    std::vector<std::uint64_t> got;
    rx.set_receive_handler([&](const Packet& p, const RxInfo&) {
        got.push_back(std::get<TestPayload>(p.payload).value);
    });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { strong.send(test_packet(1)); });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { weak.send(test_packet(2)); });
    sim_.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 1u);  // the strong frame survived
    EXPECT_EQ(rx.stats().rx_corrupted, 0u);
}

TEST_F(MacFixture, WeakLockRecapturedByStrongOverlap) {
    // Mirror case: the receiver locks the weak frame first (lower sender id
    // transmits first in the same slot); the ~27 dB stronger overlap exceeds
    // the capture margin, so the receiver re-locks onto it — physical capture
    // works both ways. The weak frame is lost (rx_corrupted), the strong one
    // is delivered and counted as rx_captured.
    Radio& weak = add_radio({0.0, 140.0}, zero_backoff());    // id 0: locks first
    Radio& strong = add_radio({10.0, 0.0}, zero_backoff());   // id 1
    Radio& rx = add_radio({0.0, 0.0});
    std::vector<std::uint64_t> got;
    rx.set_receive_handler([&](const Packet& p, const RxInfo&) {
        got.push_back(std::get<TestPayload>(p.payload).value);
    });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { weak.send(test_packet(1)); });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { strong.send(test_packet(2)); });
    sim_.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 2u);  // the strong frame took the receiver over
    EXPECT_EQ(rx.stats().rx_corrupted, 1u);  // the abandoned weak frame
    EXPECT_EQ(rx.stats().rx_captured, 1u);
    EXPECT_EQ(rx.stats().rx_delivered, 1u);
}

TEST_F(MacFixture, OverlapInsideMarginStillCorrupts) {
    // An overlap inside the capture margin must corrupt the reception without
    // re-locking: capture needs a clear margin. ~-80 dBm locked first vs
    // ~-83 dBm overlap: ~3 dB apart, margin is 10.
    Radio& first = add_radio({0.0, 40.0}, zero_backoff());   // id 0: locks first
    Radio& second = add_radio({55.0, 0.0}, zero_backoff());  // id 1: ~3 dB weaker
    Radio& rx = add_radio({0.0, 0.0});
    int got = 0;
    rx.set_receive_handler([&](const Packet&, const RxInfo&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { first.send(test_packet(1)); });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { second.send(test_packet(2)); });
    sim_.run();
    EXPECT_EQ(got, 0);
    EXPECT_EQ(rx.stats().rx_corrupted, 1u);
    EXPECT_EQ(rx.stats().rx_captured, 0u);
}

TEST_F(MacFixture, SleepingRadioMissesFrames) {
    Radio& tx = add_radio({0.0, 0.0});
    Radio& rx = add_radio({20.0, 0.0});
    int got = 0;
    rx.set_receive_handler([&](const Packet&, const RxInfo&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(0.5), [&] { rx.sleep(); });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { tx.send(test_packet()); });
    sim_.run();
    EXPECT_EQ(got, 0);
    EXPECT_EQ(medium_.stats().missed_asleep, 1u);
}

TEST_F(MacFixture, WakeRestoresReception) {
    Radio& tx = add_radio({0.0, 0.0});
    Radio& rx = add_radio({20.0, 0.0});
    int got = 0;
    rx.set_receive_handler([&](const Packet&, const RxInfo&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(0.5), [&] { rx.sleep(); });
    sim_.schedule_at(TimePoint::from_seconds(0.8), [&] { rx.wake(); });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { tx.send(test_packet()); });
    sim_.run();
    EXPECT_EQ(got, 1);
}

TEST(WakeSense, UsesSampledVerdictRecordedAtTxTime) {
    // Regression for the mean-vs-sampled carrier-sense asymmetry: the live
    // path decides "sensed" from the *sampled* RSSI at tx time, so the
    // wake-time rebuild must reuse that verdict (recorded on the AirFrame),
    // not re-derive it from the mean. Setup: a receiver far enough out that
    // the MEAN power is below the carrier-sense threshold, with shadowing
    // wide enough that individual samples often decode anyway. We scan master
    // seeds until a frame is delivered (proof the sampled RSSI was above the
    // sense threshold) and assert a mid-flight sensed_until_for() query
    // reports busy-until-frame-end — the old mean-based code said "idle".
    phy::ChannelConfig cc;
    cc.shadowing_sigma_far_db = 12.0;
    cc.fade_mean_far_db = 0.0;
    const phy::Channel channel{cc};
    const double dist = 360.0;
    ASSERT_FALSE(channel.sensed(channel.mean_rssi_dbm(dist)))
        << "test premise: the mean verdict at this distance must be 'idle'";

    MacConfig no_backoff;
    no_backoff.cw_min = 0;

    bool found = false;
    for (std::uint64_t seed = 1; seed <= 200 && !found; ++seed) {
        Simulator sim(seed);
        Medium medium(sim, channel);
        Radio tx(sim, medium, 0, [] { return Vec2{0.0, 0.0}; },
                 PowerProfile::wavelan(), sim.rng().stream("backoff", 0), no_backoff);
        Radio rx(sim, medium, 1, [dist] { return Vec2{dist, 0.0}; },
                 PowerProfile::wavelan(), sim.rng().stream("backoff", 1), no_backoff);
        int got = 0;
        rx.set_receive_handler([&](const Packet&, const RxInfo&) { ++got; });

        // Zero backoff: the frame flies 1.000050..1.000610 s (24 B payload).
        TimePoint mid_flight_sensed_until;
        sim.schedule_at(TimePoint::from_seconds(1.0), [&] { tx.send(test_packet()); });
        sim.schedule_at(TimePoint::from_seconds(1.0003),
                        [&] { mid_flight_sensed_until = medium.sensed_until_for(rx); });
        sim.run();

        if (got == 1) {
            // Delivered => the sampled RSSI was decodable, hence above the
            // carrier-sense threshold. A radio waking mid-flight must see the
            // channel busy until the frame ends.
            found = true;
            const TimePoint frame_end = TimePoint::from_seconds(1.0) +
                                        Duration::micros(50) +
                                        tx.airtime(test_packet());
            EXPECT_EQ(mid_flight_sensed_until, frame_end);
        }
    }
    ASSERT_TRUE(found) << "no seed in [1, 200] delivered the frame; test setup broken";
}

TEST_F(MacFixture, SleepMidReceptionAborts) {
    Radio& tx = add_radio({0.0, 0.0}, zero_backoff());
    Radio& rx = add_radio({20.0, 0.0});
    int got = 0;
    rx.set_receive_handler([&](const Packet&, const RxInfo&) { ++got; });
    // Frame flies 1.00005..1.000625 s; rx locks at +CCA and sleeps mid-frame.
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { tx.send(test_packet()); });
    sim_.schedule_at(TimePoint::from_seconds(1.0003), [&] { rx.sleep(); });
    sim_.run();
    EXPECT_EQ(got, 0);
    EXPECT_EQ(rx.stats().rx_aborted, 1u);
}

TEST_F(MacFixture, SendWhileAsleepThrows) {
    Radio& r = add_radio({0.0, 0.0});
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] {
        r.sleep();
        EXPECT_THROW(r.send(test_packet()), std::logic_error);
    });
    sim_.run();
}

TEST_F(MacFixture, SleepDuringCsmaDefersUntilWake) {
    Radio& blocker = add_radio({0.0, 0.0});
    Radio& sender = add_radio({5.0, 0.0});
    Radio& rx = add_radio({10.0, 0.0});
    int got = 0;
    rx.set_receive_handler([&](const Packet& p, const RxInfo&) {
        if (std::get<TestPayload>(p.payload).value == 7) ++got;
    });
    // Blocker occupies the channel; sender queues, then sleeps mid-defer,
    // then wakes: the queued packet must eventually go out.
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { blocker.send(test_packet(1)); });
    sim_.schedule_at(TimePoint::from_seconds(1.0) + Duration::micros(10), [&] {
        sender.send(test_packet(7));
        sender.sleep();
    });
    sim_.schedule_at(TimePoint::from_seconds(2.0), [&] { sender.wake(); });
    sim_.run();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(sender.tx_queue_depth(), 0u);
}

TEST_F(MacFixture, EnergyAccountsTxRxStates) {
    Radio& tx = add_radio({0.0, 0.0});
    Radio& rx = add_radio({20.0, 0.0});
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { tx.send(test_packet()); });
    sim_.run();
    tx.settle_energy();
    rx.settle_energy();
    EXPECT_GT(tx.meter().state_mj(RadioState::Tx), 0.0);
    EXPECT_DOUBLE_EQ(tx.meter().state_mj(RadioState::Rx), 0.0);
    EXPECT_GT(rx.meter().state_mj(RadioState::Rx), 0.0);
    EXPECT_GT(rx.meter().state_mj(RadioState::Idle), 0.0);
    // Airtime accounting: tx time == airtime of one frame.
    EXPECT_EQ(tx.meter().time_in(RadioState::Tx), tx.airtime(test_packet()));
}

TEST_F(MacFixture, QueueDrainsInOrder) {
    Radio& tx = add_radio({0.0, 0.0});
    Radio& rx = add_radio({20.0, 0.0});
    std::vector<std::uint64_t> got;
    rx.set_receive_handler([&](const Packet& p, const RxInfo&) {
        got.push_back(std::get<TestPayload>(p.payload).value);
    });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] {
        tx.send(test_packet(1));
        tx.send(test_packet(2));
        tx.send(test_packet(3));
    });
    sim_.run();
    EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(MacFixture, SleepDuringTxThrows) {
    Radio& tx = add_radio({0.0, 0.0}, zero_backoff());
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { tx.send(test_packet()); });
    // Frame is on air 1.00005..1.000625 s; sleeping mid-transmission is a
    // coordination bug and must throw.
    sim_.schedule_at(TimePoint::from_seconds(1.0003), [&] {
        ASSERT_EQ(tx.state(), RadioState::Tx);
        EXPECT_THROW(tx.sleep(), std::logic_error);
    });
    sim_.run();
}

TEST_F(MacFixture, InvalidConstructionThrows) {
    EXPECT_THROW(Radio(sim_, medium_, 0, nullptr, PowerProfile::wavelan(),
                       sim_.rng().stream("x")),
                 std::invalid_argument);
    MacConfig bad;
    bad.bitrate_bps = 0.0;
    EXPECT_THROW(Radio(sim_, medium_, 0, [] { return Vec2{}; },
                       PowerProfile::wavelan(), sim_.rng().stream("x"), bad),
                 std::invalid_argument);
}

TEST_F(MacFixture, DoubleSleepAndWakeAreIdempotent) {
    Radio& r = add_radio({0.0, 0.0});
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] {
        r.sleep();
        r.sleep();
        EXPECT_EQ(r.state(), RadioState::Sleep);
        r.wake();
        r.wake();
        EXPECT_EQ(r.state(), RadioState::Idle);
    });
    sim_.run();
}

TEST_F(MacFixture, WakeMidFrameDoesNotReceiveIt) {
    Radio& tx = add_radio({0.0, 0.0}, zero_backoff());
    Radio& rx = add_radio({20.0, 0.0});
    int got = 0;
    rx.set_receive_handler([&](const Packet&, const RxInfo&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(0.5), [&] { rx.sleep(); });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { tx.send(test_packet()); });
    // Wake in the middle of the frame (1.00005..1.000625 s): too late to
    // lock on; carrier-sense state is rebuilt but the frame is lost.
    sim_.schedule_at(TimePoint::from_seconds(1.0003), [&] { rx.wake(); });
    sim_.run();
    EXPECT_EQ(got, 0);
}

TEST_F(MacFixture, MediumCountsFrames) {
    Radio& a = add_radio({0.0, 0.0});
    Radio& b = add_radio({10.0, 0.0});
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { a.send(test_packet()); });
    sim_.schedule_at(TimePoint::from_seconds(2.0), [&] { b.send(test_packet()); });
    sim_.run();
    EXPECT_EQ(medium_.stats().frames_sent, 2u);
}

// --- counter-based RSSI draws and interference culling ----------------------

/// A medium with the *default* (stochastic) channel and radios constructed
/// in a caller-chosen order but with fixed ids and positions.
struct StochasticNet {
    explicit StochasticNet(const std::vector<Vec2>& positions,
                           const std::vector<int>& attach_order,
                           bool culling = true)
        : sim(123), medium(sim, phy::Channel{}, make_config(culling)) {
        radios.resize(positions.size());
        for (const int id : attach_order) {
            radios[static_cast<std::size_t>(id)] = std::make_unique<Radio>(
                sim, medium, static_cast<net::NodeId>(id),
                [p = positions[static_cast<std::size_t>(id)]] { return p; },
                PowerProfile::wavelan(),
                sim.rng().stream("backoff", static_cast<std::uint64_t>(id)));
        }
        for (auto& r : radios) {
            r->set_receive_handler(
                [this, id = r->id()](const Packet& pkt, const net::RxInfo& info) {
                    delivered[id].emplace_back(
                        std::get<TestPayload>(pkt.payload).value, info.rssi_dbm);
                });
        }
    }

    static MediumConfig make_config(bool culling) {
        MediumConfig c;
        c.interference_culling = culling;
        return c;
    }

    Simulator sim;
    Medium medium;
    std::vector<std::unique_ptr<Radio>> radios;
    std::map<net::NodeId, std::vector<std::pair<std::uint64_t, double>>> delivered;
};

TEST(MediumCounterDraws, RssiStableUnderPermutedAttachOrder) {
    // Per-(frame, receiver) counter-based draws: the RSSI a receiver samples
    // must not depend on the order radios were attached in (the old shared
    // stream consumed draws in attach order, so any reordering perturbed
    // every subsequent sample).
    const std::vector<Vec2> pos = {{0.0, 0.0}, {60.0, 0.0}, {0.0, 80.0},
                                   {90.0, 50.0}, {120.0, 120.0}};
    std::map<net::NodeId, std::vector<std::pair<std::uint64_t, double>>> results[2];
    const std::vector<int> orders[2] = {{0, 1, 2, 3, 4}, {3, 0, 4, 1, 2}};
    for (int v = 0; v < 2; ++v) {
        StochasticNet net(pos, orders[v]);
        net.sim.schedule_at(TimePoint::from_seconds(1.0),
                            [&net] { net.radios[0]->send(test_packet(7)); });
        net.sim.run();
        results[v] = net.delivered;
    }
    ASSERT_FALSE(results[0].empty());
    EXPECT_EQ(results[0], results[1]);
}

TEST(MediumCulling, SkipsOnlyOutOfRangeRadios) {
    std::vector<Vec2> pos = {{0.0, 0.0}, {100.0, 0.0}};
    // One radio far beyond any possible influence, one within it.
    {
        StochasticNet probe(pos, {0, 1});
        pos.push_back({probe.medium.cull_radius_m() * 2.0, 0.0});
    }
    for (const bool culling : {true, false}) {
        StochasticNet net(pos, {0, 1, 2}, culling);
        net.sim.schedule_at(TimePoint::from_seconds(1.0),
                            [&net] { net.radios[0]->send(test_packet(1)); });
        net.sim.run();
        EXPECT_EQ(net.medium.stats().frames_sent, 1u);
        if (culling) {
            EXPECT_EQ(net.medium.stats().radios_visited, 1u);  // the near one
            EXPECT_EQ(net.medium.stats().radios_culled, 1u);   // the far one
        } else {
            EXPECT_EQ(net.medium.stats().radios_visited, 2u);
            EXPECT_EQ(net.medium.stats().radios_culled, 0u);
        }
        // Either way the near radio decodes and the far one hears nothing.
        EXPECT_EQ(net.delivered.count(2), 0u);
    }
}

TEST(MediumCulling, CulledRunIsBitIdenticalToUnculled) {
    // Two clusters far outside each other's influence radius: intra-cluster
    // traffic is dense (CSMA deferrals, collisions, captures), cross-cluster
    // sampling is culled. Deliveries, sampled RSSI values and every MAC
    // counter must match the unculled run exactly.
    std::vector<Vec2> pos;
    for (int i = 0; i < 5; ++i) pos.push_back({80.0 * i, 0.0});
    for (int i = 0; i < 5; ++i) pos.push_back({3000.0 + 80.0 * i, 10.0});

    std::map<net::NodeId, std::vector<std::pair<std::uint64_t, double>>> delivered[2];
    std::vector<std::uint64_t> counters[2];
    for (int v = 0; v < 2; ++v) {
        const bool culling = v == 0;
        StochasticNet net(pos, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, culling);
        for (std::size_t i = 0; i < net.radios.size(); ++i) {
            net.sim.schedule_at(
                TimePoint::from_seconds(1.0 + 0.001 * static_cast<double>(i % 3)),
                [&net, i] { net.radios[i]->send(test_packet(100 + i)); });
        }
        net.sim.run();
        delivered[v] = net.delivered;
        for (const auto& r : net.radios) {
            counters[v].push_back(r->stats().tx_frames);
            counters[v].push_back(r->stats().rx_delivered);
            counters[v].push_back(r->stats().rx_corrupted);
            counters[v].push_back(r->stats().rx_captured);
        }
        counters[v].push_back(net.medium.stats().frames_sent);
        counters[v].push_back(net.medium.stats().missed_asleep);
        const auto& ms = net.medium.stats();
        EXPECT_EQ(ms.radios_visited + ms.radios_culled,
                  ms.frames_sent * (pos.size() - 1));
        if (culling) {
            EXPECT_GT(ms.radios_culled, 0u);   // the far cluster is skipped
            EXPECT_LT(ms.radios_visited, ms.frames_sent * (pos.size() - 1));
        } else {
            EXPECT_EQ(ms.radios_culled, 0u);
        }
    }
    ASSERT_FALSE(delivered[0].empty());
    EXPECT_EQ(delivered[0], delivered[1]);
    EXPECT_EQ(counters[0], counters[1]);
}

TEST_F(MacFixture, PowerOffMidFrameTruncatesOnAir) {
    // A transmitter dying mid-frame takes the frame off the air: receivers
    // locked onto it abort (rx_aborted) instead of decoding a ghost of a
    // transmission that physically stopped.
    Radio& tx = add_radio({0.0, 0.0}, zero_backoff());
    Radio& rx = add_radio({20.0, 0.0});
    std::uint64_t delivered = 0;
    rx.set_receive_handler([&](const Packet&, const RxInfo&) { ++delivered; });

    const Packet big = test_packet(7, 10'000);  // ~40 ms on air at 2 Mb/s
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { tx.send(big); });
    // 5 ms in: CSMA is long done, the frame is mid-air, rx is locked.
    sim_.schedule_at(TimePoint::from_seconds(1.005), [&] {
        EXPECT_EQ(tx.state(), RadioState::Tx);
        tx.power_off();
    });
    sim_.run();

    EXPECT_TRUE(tx.is_off());
    EXPECT_EQ(medium_.stats().frames_truncated, 1u);
    EXPECT_EQ(delivered, 0u);
    EXPECT_EQ(rx.stats().rx_delivered, 0u);
    EXPECT_EQ(rx.stats().rx_aborted, 1u);
    // The dead air is immediately usable: a later frame still delivers.
    Radio& tx2 = add_radio({0.0, 40.0}, zero_backoff());
    sim_.schedule_at(TimePoint::from_seconds(2.0), [&] { tx2.send(test_packet(8)); });
    sim_.run();
    EXPECT_EQ(rx.stats().rx_delivered, 1u);
}

}  // namespace
}  // namespace cocoa::mac
