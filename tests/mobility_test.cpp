#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "mobility/odometry.hpp"
#include "mobility/waypoint.hpp"
#include "sim/random.hpp"

namespace cocoa::mobility {
namespace {

using cocoa::geom::Rect;
using cocoa::geom::Vec2;
using cocoa::sim::Duration;
using cocoa::sim::RandomStream;
using cocoa::sim::RngManager;
using cocoa::sim::TimePoint;

WaypointConfig paper_config(double vmax = 2.0) {
    WaypointConfig c;
    c.area = Rect::square(200.0);
    c.min_speed = 0.1;
    c.max_speed = vmax;
    return c;
}

TEST(Waypoint, StartsAtGivenPosition) {
    WaypointMobility m(paper_config(), RandomStream(1), Vec2{50.0, 60.0});
    EXPECT_EQ(m.position(), Vec2(50.0, 60.0));
}

TEST(Waypoint, RandomStartInsideArea) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        WaypointMobility m(paper_config(), RandomStream(seed));
        EXPECT_TRUE(paper_config().area.contains(m.position()));
    }
}

TEST(Waypoint, StartOutsideAreaThrows) {
    EXPECT_THROW(WaypointMobility(paper_config(), RandomStream(1), Vec2{500.0, 0.0}),
                 std::invalid_argument);
}

TEST(Waypoint, BadConfigThrows) {
    WaypointConfig c = paper_config();
    c.min_speed = 0.0;
    EXPECT_THROW(WaypointMobility(c, RandomStream(1)), std::invalid_argument);
    c = paper_config();
    c.max_speed = 0.05;  // < min_speed
    EXPECT_THROW(WaypointMobility(c, RandomStream(1)), std::invalid_argument);
    c = paper_config();
    c.min_pause = Duration::seconds(5.0);
    c.max_pause = Duration::seconds(1.0);
    EXPECT_THROW(WaypointMobility(c, RandomStream(1)), std::invalid_argument);
}

TEST(Waypoint, StaysInsideAreaForever) {
    WaypointMobility m(paper_config(), RandomStream(7));
    for (int t = 1; t <= 2000; t += 3) {
        m.advance_to(TimePoint::from_seconds(t));
        EXPECT_TRUE(paper_config().area.contains(m.position()))
            << "escaped at t=" << t << " pos=" << m.position().x << ","
            << m.position().y;
    }
}

TEST(Waypoint, SpeedWithinBounds) {
    WaypointMobility m(paper_config(0.5), RandomStream(3));
    for (int t = 1; t <= 500; ++t) {
        m.advance_to(TimePoint::from_seconds(t));
        if (!m.resting()) {
            EXPECT_GE(m.speed(), 0.1);
            EXPECT_LE(m.speed(), 0.5);
        }
    }
}

TEST(Waypoint, IncrementsIntegrateToTruePosition) {
    // Dead-reckoning the *noise-free* increments must land exactly on the
    // true position: the increments are a complete description of motion.
    WaypointMobility m(paper_config(), RandomStream(11), Vec2{100.0, 100.0});
    Vec2 pos = m.position();
    double heading = m.heading();
    for (int t = 1; t <= 300; ++t) {
        for (const MotionIncrement& inc : m.advance_to(TimePoint::from_seconds(t))) {
            heading += inc.heading_change_rad;
            pos += Vec2::from_heading(heading) * inc.forward_m;
        }
        EXPECT_NEAR(pos.x, m.position().x, 1e-6);
        EXPECT_NEAR(pos.y, m.position().y, 1e-6);
    }
}

TEST(Waypoint, IncrementDurationsSumToElapsed) {
    WaypointMobility m(paper_config(), RandomStream(5));
    Duration total = Duration::zero();
    for (const MotionIncrement& inc : m.advance_to(TimePoint::from_seconds(123.0))) {
        total += inc.dt;
    }
    EXPECT_EQ(total, Duration::seconds(123.0));
}

TEST(Waypoint, TimeBackwardsThrows) {
    WaypointMobility m(paper_config(), RandomStream(1));
    m.advance_to(TimePoint::from_seconds(10.0));
    EXPECT_THROW(m.advance_to(TimePoint::from_seconds(9.0)), std::logic_error);
}

TEST(Waypoint, AdvanceToSameTimeYieldsNothing) {
    WaypointMobility m(paper_config(), RandomStream(1));
    m.advance_to(TimePoint::from_seconds(10.0));
    EXPECT_TRUE(m.advance_to(TimePoint::from_seconds(10.0)).empty());
}

TEST(Waypoint, VelocityMatchesHeadingAndSpeed) {
    WaypointMobility m(paper_config(), RandomStream(9));
    m.advance_to(TimePoint::from_seconds(5.0));
    if (!m.resting()) {
        const Vec2 v = m.velocity();
        EXPECT_NEAR(v.norm(), m.speed(), 1e-12);
        EXPECT_NEAR(v.heading(), m.heading(), 1e-12);
    }
}

TEST(Waypoint, PausesWhenConfigured) {
    WaypointConfig c = paper_config();
    c.min_pause = Duration::seconds(5.0);
    c.max_pause = Duration::seconds(10.0);
    WaypointMobility m(c, RandomStream(2));
    bool rested = false;
    for (int t = 1; t <= 2000 && !rested; ++t) {
        m.advance_to(TimePoint::from_seconds(t));
        rested = m.resting();
    }
    EXPECT_TRUE(rested);
    EXPECT_EQ(m.velocity(), Vec2());
}

TEST(Waypoint, MotionStateReportsPlanHorizon) {
    WaypointMobility m(paper_config(), RandomStream(4), Vec2{100.0, 100.0});
    const auto state = m.motion_state();
    EXPECT_EQ(state.position, m.position());
    EXPECT_GT(state.plan_horizon_s, 0.0);
    // Horizon equals remaining leg time: distance / speed.
    const double expect_s =
        cocoa::geom::distance(m.position(), m.destination()) / m.speed();
    EXPECT_NEAR(state.plan_horizon_s, expect_s, 1e-6);
}

TEST(Waypoint, DeterministicForSameStream) {
    WaypointMobility a(paper_config(), RandomStream(42));
    WaypointMobility b(paper_config(), RandomStream(42));
    a.advance_to(TimePoint::from_seconds(777.0));
    b.advance_to(TimePoint::from_seconds(777.0));
    EXPECT_EQ(a.position(), b.position());
    EXPECT_EQ(a.heading(), b.heading());
}

TEST(Waypoint, HeadingChangesOnlyAtWaypoints) {
    WaypointMobility m(paper_config(), RandomStream(13));
    int turns = 0;
    for (const MotionIncrement& inc : m.advance_to(TimePoint::from_seconds(1000.0))) {
        if (inc.heading_change_rad != 0.0) ++turns;
    }
    EXPECT_GT(turns, 0);
    // With ~100 m legs and >= 0.1 m/s speeds, turns are far sparser than one
    // per simulated second.
    EXPECT_LT(turns, 100);
}

// --- Odometry ---------------------------------------------------------------

OdometryConfig paper_odometry() {
    return OdometryConfig{};  // 0.1 m/s displacement, 10 deg angular
}

OdometryConfig noiseless() {
    OdometryConfig c;
    c.displacement_sigma = 0.0;
    c.angular_sigma_rad = 0.0;
    c.heading_drift_sigma_rad = 0.0;
    c.velocity_bias_sigma = 0.0;
    return c;
}

TEST(Odometry, NoiselessTracksExactly) {
    WaypointMobility m(paper_config(), RandomStream(21), Vec2{50.0, 50.0});
    OdometryEstimator odo(noiseless(), RandomStream(99));
    odo.reset(m.position(), m.heading());
    for (int t = 1; t <= 500; ++t) {
        odo.observe_all(m.advance_to(TimePoint::from_seconds(t)));
        EXPECT_NEAR(cocoa::geom::distance(odo.position(), m.position()), 0.0, 1e-6);
    }
}

TEST(Odometry, NegativeSigmaThrows) {
    OdometryConfig c;
    c.displacement_sigma = -1.0;
    EXPECT_THROW(OdometryEstimator(c, RandomStream(1)), std::invalid_argument);
}

TEST(Odometry, ResetReanchors) {
    OdometryEstimator odo(paper_odometry(), RandomStream(5));
    odo.reset({10.0, 20.0}, 1.0);
    EXPECT_EQ(odo.position(), Vec2(10.0, 20.0));
    EXPECT_DOUBLE_EQ(odo.heading(), 1.0);
    EXPECT_DOUBLE_EQ(odo.distance_travelled(), 0.0);
}

TEST(Odometry, ErrorAccumulatesOverTime) {
    // The core claim of §4.1 / Fig. 4: dead-reckoning error grows without
    // bound. Average over robots at two horizons and require growth.
    double early = 0.0;
    double late = 0.0;
    constexpr int kRobots = 20;
    for (int r = 0; r < kRobots; ++r) {
        const RngManager mgr(1000 + r);
        WaypointMobility m(paper_config(), mgr.stream("mob"));
        OdometryEstimator odo(paper_odometry(), mgr.stream("odo"));
        odo.reset(m.position(), m.heading());
        for (int t = 1; t <= 300; ++t) {
            odo.observe_all(m.advance_to(TimePoint::from_seconds(t)));
        }
        early += cocoa::geom::distance(odo.position(), m.position());
        for (int t = 301; t <= 1800; ++t) {
            odo.observe_all(m.advance_to(TimePoint::from_seconds(t)));
        }
        late += cocoa::geom::distance(odo.position(), m.position());
    }
    EXPECT_GT(late / kRobots, 2.0 * (early / kRobots));
    // Paper: "after half an hour, it becomes larger than 100m".
    EXPECT_GT(late / kRobots, 50.0);
}

TEST(Odometry, VelocityBiasSurvivesReset) {
    OdometryConfig c = noiseless();
    c.velocity_bias_sigma = 0.1;
    OdometryEstimator odo(c, RandomStream(3));
    const Vec2 bias = odo.velocity_bias();
    EXPECT_NE(bias, Vec2());
    odo.reset({0.0, 0.0}, 0.0);
    EXPECT_EQ(odo.velocity_bias(), bias);
    // Drive straight for 100 s; drift should be ~|bias| * 100.
    for (int i = 0; i < 100; ++i) {
        odo.observe({1.0, 0.0, Duration::seconds(1.0)});
    }
    const Vec2 expect = Vec2{100.0, 0.0} + bias * 100.0;
    EXPECT_NEAR(odo.position().x, expect.x, 1e-9);
    EXPECT_NEAR(odo.position().y, expect.y, 1e-9);
}

TEST(Odometry, TurnNoiseAppliedPerTurn) {
    OdometryConfig c = noiseless();
    c.angular_sigma_rad = cocoa::geom::deg_to_rad(10.0);
    OdometryEstimator odo(c, RandomStream(17));
    odo.reset({0.0, 0.0}, 0.0);
    // Straight driving: heading untouched.
    odo.observe({5.0, 0.0, Duration::seconds(5.0)});
    EXPECT_DOUBLE_EQ(odo.heading(), 0.0);
    // A turn: heading picks up noise around the commanded change.
    odo.observe({5.0, 1.0, Duration::seconds(5.0)});
    EXPECT_NE(odo.heading(), 1.0);
    EXPECT_NEAR(odo.heading(), 1.0, cocoa::geom::deg_to_rad(50.0));
}

TEST(Odometry, DistanceTravelledAccumulates) {
    OdometryEstimator odo(noiseless(), RandomStream(1));
    odo.reset({0.0, 0.0}, 0.0);
    odo.observe({3.0, 0.0, Duration::seconds(3.0)});
    odo.observe({4.0, 0.5, Duration::seconds(4.0)});
    EXPECT_DOUBLE_EQ(odo.distance_travelled(), 7.0);
}

TEST(Odometry, RestingIncrementsAddNoDrift) {
    OdometryConfig c = noiseless();
    c.velocity_bias_sigma = 0.5;  // big bias, but only applies while driving
    OdometryEstimator odo(c, RandomStream(2));
    odo.reset({1.0, 2.0}, 0.0);
    odo.observe({0.0, 0.0, Duration::seconds(100.0)});  // rest
    EXPECT_EQ(odo.position(), Vec2(1.0, 2.0));
}

// Property sweep: across many seeds and both paper speeds, odometry drift at
// 30 simulated minutes stays in a sane band (it must be large, but bounded by
// the area diameter scale since headings are random, not adversarial).
class OdometryDriftSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(OdometryDriftSweep, ThirtyMinuteDriftInPlausibleBand) {
    const auto [vmax, seed] = GetParam();
    const RngManager mgr(seed);
    WaypointMobility m(paper_config(vmax), mgr.stream("mob"));
    OdometryEstimator odo(paper_odometry(), mgr.stream("odo"));
    odo.reset(m.position(), m.heading());
    for (int t = 1; t <= 1800; ++t) {
        odo.observe_all(m.advance_to(TimePoint::from_seconds(t)));
    }
    const double err = cocoa::geom::distance(odo.position(), m.position());
    EXPECT_GT(err, 1.0);
    EXPECT_LT(err, 600.0);
}

INSTANTIATE_TEST_SUITE_P(
    SpeedsAndSeeds, OdometryDriftSweep,
    ::testing::Combine(::testing::Values(0.5, 2.0),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)));

}  // namespace
}  // namespace cocoa::mobility
