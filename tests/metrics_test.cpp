#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "metrics/cdf.hpp"
#include "metrics/running_stat.hpp"
#include "metrics/sum.hpp"
#include "metrics/table.hpp"
#include "metrics/time_series.hpp"

namespace cocoa::metrics {
namespace {

using cocoa::sim::Duration;
using cocoa::sim::TimePoint;

TEST(RunningStat, EmptyDefaults) {
    RunningStat s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStat, SingleSample) {
    RunningStat s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMoments) {
    RunningStat s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Population variance is 4.0; sample variance = 4.0 * 8 / 7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
    RunningStat a;
    RunningStat b;
    RunningStat all;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i * 0.7) * 10.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
    RunningStat a;
    a.add(1.0);
    a.add(3.0);
    RunningStat empty;
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    empty.merge(a);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStat, Reset) {
    RunningStat s;
    s.add(4.0);
    s.reset();
    EXPECT_TRUE(s.empty());
}

TEST(TimeSeries, PushAndStats) {
    TimeSeries ts;
    ts.push(TimePoint::from_seconds(1.0), 10.0);
    ts.push(TimePoint::from_seconds(2.0), 20.0);
    ts.push(TimePoint::from_seconds(3.0), 30.0);
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.stats().mean(), 20.0);
    EXPECT_DOUBLE_EQ(ts.stats().max(), 30.0);
}

TEST(TimeSeries, RejectsOutOfOrder) {
    TimeSeries ts;
    ts.push(TimePoint::from_seconds(2.0), 1.0);
    EXPECT_THROW(ts.push(TimePoint::from_seconds(1.0), 2.0), std::invalid_argument);
    // Equal timestamps are fine.
    EXPECT_NO_THROW(ts.push(TimePoint::from_seconds(2.0), 3.0));
}

TEST(TimeSeries, ValueAtStepInterpolation) {
    TimeSeries ts;
    ts.push(TimePoint::from_seconds(10.0), 1.0);
    ts.push(TimePoint::from_seconds(20.0), 2.0);
    EXPECT_DOUBLE_EQ(ts.value_at(TimePoint::from_seconds(5.0), -1.0), -1.0);
    EXPECT_DOUBLE_EQ(ts.value_at(TimePoint::from_seconds(10.0)), 1.0);
    EXPECT_DOUBLE_EQ(ts.value_at(TimePoint::from_seconds(15.0)), 1.0);
    EXPECT_DOUBLE_EQ(ts.value_at(TimePoint::from_seconds(20.0)), 2.0);
    EXPECT_DOUBLE_EQ(ts.value_at(TimePoint::from_seconds(99.0)), 2.0);
}

TEST(TimeSeries, DownsampleAverages) {
    TimeSeries ts;
    for (int i = 0; i < 10; ++i) {
        ts.push(TimePoint::from_seconds(i), static_cast<double>(i));
    }
    const TimeSeries coarse = ts.downsample(Duration::seconds(5.0));
    ASSERT_EQ(coarse.size(), 2u);
    EXPECT_DOUBLE_EQ(coarse.samples()[0].value, 2.0);  // mean of 0..4
    EXPECT_DOUBLE_EQ(coarse.samples()[1].value, 7.0);  // mean of 5..9
}

TEST(TimeSeries, DownsampleRejectsBadBucket) {
    TimeSeries ts;
    EXPECT_THROW(ts.downsample(Duration::zero()), std::invalid_argument);
}

TEST(TimeSeries, MeanInWindow) {
    TimeSeries ts;
    for (int i = 0; i < 10; ++i) {
        ts.push(TimePoint::from_seconds(i), static_cast<double>(i));
    }
    EXPECT_DOUBLE_EQ(ts.mean_in(TimePoint::from_seconds(2.0), TimePoint::from_seconds(5.0)),
                     3.0);  // samples 2, 3, 4
    EXPECT_DOUBLE_EQ(ts.mean_in(TimePoint::from_seconds(90.0), TimePoint::from_seconds(99.0)),
                     0.0);  // empty window
}

TEST(Cdf, EmptyBehaviour) {
    const Cdf cdf{{}};
    EXPECT_TRUE(cdf.empty());
    EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
    // An empty sample set has no quantiles; out-of-range q still throws.
    EXPECT_FALSE(cdf.quantile(0.5).has_value());
    EXPECT_FALSE(cdf.quantile(1.0).has_value());
    EXPECT_THROW(cdf.quantile(0.0), std::invalid_argument);
}

TEST(Cdf, FractionBelow) {
    const Cdf cdf{{1.0, 2.0, 3.0, 4.0}};
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.at(99.0), 1.0);
}

TEST(Cdf, SortsInput) {
    const Cdf cdf{{3.0, 1.0, 2.0}};
    EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
    EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
    EXPECT_DOUBLE_EQ(cdf.sorted_samples()[1], 2.0);
}

TEST(Cdf, Quantiles) {
    const Cdf cdf{{10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0}};
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5).value(), 50.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.9).value(), 90.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0).value(), 100.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.05).value(), 10.0);
    EXPECT_THROW(cdf.quantile(0.0), std::invalid_argument);
    EXPECT_THROW(cdf.quantile(1.1), std::invalid_argument);
}

TEST(Cdf, QuantileConsistentWithAt) {
    const Cdf cdf{{5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0}};
    for (double q = 0.1; q <= 1.0; q += 0.1) {
        EXPECT_GE(cdf.at(cdf.quantile(q).value()), q - 1e-12);
    }
}

TEST(Table, PrintsAlignedColumns) {
    Table t({"a", "long_header"});
    t.add_row({"1", "2"});
    t.add_row({"100", "x"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("long_header"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_NE(out.find("100"), std::string::npos);
}

TEST(Table, CsvOutput) {
    Table t({"x", "y"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, RejectsBadRow) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
    EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CountsRowsAndColumns) {
    Table t({"a", "b", "c"});
    t.add_row({"1", "2", "3"});
    t.add_row({"4", "5", "6"});
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 3u);
}

TEST(Fmt, Precision) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(KahanSum, TinyTermsOnHugeBase) {
    // Naive summation loses 1e6 tiny terms entirely against a 1e16 base;
    // the compensated accumulator keeps them.
    KahanSum acc;
    acc.add(1e16);
    for (int i = 0; i < 1'000'000; ++i) acc.add(1.0);
    EXPECT_DOUBLE_EQ(acc.value(), 1e16 + 1e6);
    double naive = 1e16;
    for (int i = 0; i < 1'000'000; ++i) naive += 1.0;
    EXPECT_NE(naive, 1e16 + 1e6);  // documents why compensation is needed
}

TEST(KahanSum, NeumaierHandlesLargeLateTerm) {
    // The Neumaier branch also compensates when the *new* term dominates —
    // plain Kahan would lose the small running sum here.
    KahanSum acc;
    acc.add(1.0);
    acc.add(1e100);
    acc.add(1.0);
    acc.add(-1e100);
    EXPECT_DOUBLE_EQ(acc.value(), 2.0);
}

TEST(KahanSum, Reset) {
    KahanSum acc;
    acc.add(5.0);
    acc.reset();
    EXPECT_EQ(acc.value(), 0.0);
    acc.add(2.5);
    EXPECT_DOUBLE_EQ(acc.value(), 2.5);
}

TEST(PairwiseSum, MatchesExactOnUniformGrid) {
    // One million equal masses: pairwise error stays at the 1e-16 level
    // where left-to-right summation drifts by ~1e-11.
    std::vector<double> v(1'000'000, 1e-6);
    EXPECT_NEAR(pairwise_sum(v), 1.0, 1e-12);
}

TEST(PairwiseSum, SmallAndEmptyRanges) {
    EXPECT_EQ(pairwise_sum(std::vector<double>{}), 0.0);
    EXPECT_DOUBLE_EQ(pairwise_sum(std::vector<double>{1.5}), 1.5);
    std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(pairwise_sum(v), 10.0);
}

}  // namespace
}  // namespace cocoa::metrics
