#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <stdexcept>
#include <vector>

#include "core/scenario.hpp"
#include "est/estimator.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "mobility/odometry.hpp"
#include "phy/channel.hpp"
#include "phy/pdf_table.hpp"

// ------------------------------------------------------------- alloc counter
// Program-wide operator new override: LinCvx's steady-state fix loop is
// specified allocation-free (the microcontroller-budget claim), and the test
// pins it by counting heap allocations across the measured region. Counting
// is passive, so every other test in this binary runs unchanged.

namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};

void* counted_alloc(std::size_t size) {
    ++g_heap_allocations;
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cocoa::est {
namespace {

using cocoa::sim::Duration;
using cocoa::sim::TimePoint;

core::ScenarioConfig small_config() {
    core::ScenarioConfig c;
    c.seed = 21;
    c.num_robots = 12;
    c.num_anchors = 6;
    c.duration = Duration::seconds(180.0);
    c.period = Duration::seconds(25.0);
    return c;
}

/// Standalone backend wired the way the agent wires it (same idiom as
/// exp::measure_fix_cpu_ns): PDF table + agent-owned odometry.
struct Standalone {
    explicit Standalone(Backend backend, const core::ScenarioConfig& base) {
        phy::Channel channel(base.channel);
        table = std::make_shared<const phy::PdfTable>(phy::PdfTable::calibrate(
            channel, base.calibration, sim::RandomStream(base.seed)));
        config.backend = backend;
        config.grid.area = geom::Rect::square(base.area_side_m);
        config.grid.cell_m = base.cell_m;
        config.grid.floor_fraction = base.floor_fraction;
        config.min_beacons_for_fix = base.min_beacons_for_fix;
        odometry = std::make_unique<mobility::OdometryEstimator>(
            base.odometry, sim::RandomStream(base.seed));
        odometry->reset(config.grid.area.center(), 0.0);
    }
    std::unique_ptr<Estimator> make() {
        return make_estimator(config, table, odometry.get());
    }

    Config config;
    std::shared_ptr<const phy::PdfTable> table;
    std::unique_ptr<mobility::OdometryEstimator> odometry;
};

/// Three beacons from anchors on a ring around `around`, RSSI from the
/// usable middle of the table — every backend accepts them.
std::vector<core::BeaconObservation> ring_beacons(const phy::PdfTable& table,
                                                  const geom::Vec2& around) {
    const int mid = (table.min_rssi_dbm() + table.max_rssi_dbm()) / 2;
    return {
        {around + geom::Vec2{30.0, 0.0}, static_cast<double>(mid)},
        {around + geom::Vec2{-15.0, 26.0}, static_cast<double>(mid - 2)},
        {around + geom::Vec2{-15.0, -26.0}, static_cast<double>(mid + 2)},
    };
}

// ----------------------------------------------------------------- plumbing

TEST(EstBackend, NameRoundTrip) {
    for (const Backend b : {Backend::Grid, Backend::Ekf, Backend::LinCvx}) {
        const auto parsed = parse_backend(to_string(b));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, b);
    }
    EXPECT_FALSE(parse_backend("kalman").has_value());
    EXPECT_FALSE(parse_backend("").has_value());
}

TEST(EstBackend, NonGridRequiresCombinedMode) {
    core::ScenarioConfig c = small_config();
    c.estimator = Backend::Ekf;
    c.mode = core::LocalizationMode::RfOnly;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c.mode = core::LocalizationMode::Combined;
    EXPECT_NO_THROW(c.validate());
}

// ------------------------------------------------- grid-backend invariants

/// The grid backend behind the interface keeps the repo's core invariant:
/// counters and position traces are byte-identical at any grid-thread count.
TEST(EstGrid, ThreadCountInvariantCountersAndTrace) {
    auto run_at = [](int threads) {
        core::ScenarioConfig c = small_config();
        c.grid_update_threads = threads;
        core::Scenario s(c);
        s.enable_position_trace(Duration::seconds(5.0));
        s.run();
        return std::make_pair(s.result().counters, s.position_trace());
    };
    const auto [counters0, trace0] = run_at(0);
    for (const int threads : {1, 4}) {
        const auto [counters, trace] = run_at(threads);
        EXPECT_EQ(counters, counters0) << "grid-threads " << threads;
        ASSERT_EQ(trace.size(), trace0.size()) << "grid-threads " << threads;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            EXPECT_EQ(trace[i].estimate, trace0[i].estimate)
                << "grid-threads " << threads << " row " << i;
        }
    }
}

/// Regression for the reboot path: FaultInjector revival routes through
/// Estimator::reset(), so the belief collapses to the area centre exactly as
/// the pre-interface agent's did — and the whole faulted run stays
/// byte-identical across grid-thread counts.
TEST(EstGrid, RebootRoutesThroughEstimatorReset) {
    auto run_at = [](int threads) {
        core::ScenarioConfig c = small_config();
        c.grid_update_threads = threads;
        core::Scenario s(c);
        fault::FaultInjector injector(s,
                                      fault::FaultPlan::parse("reboot@60+30:node=9"));
        injector.arm();
        s.enable_position_trace(Duration::seconds(5.0));

        // Just after the revival at t=90 the estimator has been reset:
        // belief back at the uniform-prior centre, no fix on record yet.
        s.run_until(TimePoint::from_seconds(95.0));
        EXPECT_TRUE(s.agent(9).ever_fixed() == false)
            << "reboot should clear ever_fixed";
        EXPECT_EQ(s.agent(9).estimate(),
                  geom::Rect::square(s.config().area_side_m).center());

        s.run();
        EXPECT_TRUE(s.agent(9).ever_fixed()) << "robot should reacquire";
        return std::make_pair(s.result().counters, s.position_trace());
    };
    const auto [counters0, trace0] = run_at(0);
    const auto [counters4, trace4] = run_at(4);
    EXPECT_EQ(counters4, counters0);
    ASSERT_EQ(trace4.size(), trace0.size());
    for (std::size_t i = 0; i < trace4.size(); ++i) {
        EXPECT_EQ(trace4[i].estimate, trace0[i].estimate) << "row " << i;
    }
}

// ------------------------------------------------------------------ EKF-CL

/// Covariance inflation under loss: across a burst of beacon-less windows
/// the spread grows monotonically (the filter loses confidence instead of
/// coasting), then reconverges once beacons return.
TEST(EstEkf, SpreadInflatesAcrossLossBurstAndReconverges) {
    // Two identical filters fed identical windows; `burst` additionally
    // loses 8 windows of beacons. Its spread must inflate monotonically
    // through the burst, then reconverge to the unfaulted control's.
    Standalone wiring(Backend::Ekf, small_config());
    wiring.config.ekf_gate_sigmas = 50.0;  // keep the gate out of this test
    const std::unique_ptr<Estimator> burst = wiring.make();
    const std::unique_ptr<Estimator> control = wiring.make();
    ASSERT_FALSE(burst->collects_window_beacons());
    ASSERT_TRUE(burst->integrates_odometry());

    const geom::Vec2 start{100.0, 100.0};
    burst->reset(start, true);
    control->reset(start, true);
    const auto window = [&](Estimator& ekf, bool with_beacons) {
        ekf.predict({0.5, -0.25}, 1.0);
        if (with_beacons) {
            for (const auto& b : ring_beacons(*wiring.table, start)) {
                ekf.observe_beacon(b);
            }
        }
        return ekf.end_window();
    };

    for (int w = 0; w < 30; ++w) {
        const WindowSummary summary = window(*burst, true);
        EXPECT_TRUE(summary.tracked);
        EXPECT_TRUE(summary.fixed);
        window(*control, true);
    }
    EXPECT_DOUBLE_EQ(burst->spread_m(), control->spread_m());

    // Loss burst: every missed window inflates the spread.
    double previous = burst->spread_m();
    for (int w = 0; w < 8; ++w) {
        const WindowSummary summary = window(*burst, false);
        EXPECT_TRUE(summary.tracked);
        EXPECT_FALSE(summary.fixed);
        EXPECT_GT(burst->spread_m(), previous) << "missed window " << w;
        previous = burst->spread_m();
        window(*control, true);
    }
    EXPECT_GT(burst->spread_m(), control->spread_m());

    // Beacons return: confidence is rebuilt back toward the control's
    // (recovery is gradual — each window fuses only three ranges against
    // the inflated prior).
    for (int w = 0; w < 100; ++w) {
        window(*burst, true);
        window(*control, true);
    }
    EXPECT_LT(burst->spread_m(), previous);
    EXPECT_LT(burst->spread_m(), 1.1 * control->spread_m());
}

/// LocalizationMode::Ekf compatibility: the legacy continuous filter keeps
/// no per-window books — no missed-window inflation, untracked summaries.
TEST(EstEkf, LegacyContinuousKeepsNoWindowBooks) {
    Standalone wiring(Backend::Ekf, small_config());
    wiring.config.legacy_continuous = true;
    const std::unique_ptr<Estimator> ekf = wiring.make();
    ekf->reset({100.0, 100.0}, true);
    ekf->predict({0.5, 0.0}, 1.0);
    const double before = ekf->spread_m();
    const WindowSummary summary = ekf->end_window();  // beacon-less window
    EXPECT_FALSE(summary.tracked);
    EXPECT_DOUBLE_EQ(ekf->spread_m(), before);
}

// ------------------------------------------------------------------ LinCvx

/// The opportunistic convex-combination fix runs allocation-free in steady
/// state: predict + compute_fix + apply_fix touch no heap, which is what
/// makes its per-fix cost microcontroller-sized.
TEST(EstLinCvx, SteadyStateFixIsAllocationFree) {
    Standalone wiring(Backend::LinCvx, small_config());
    const std::unique_ptr<Estimator> lincvx = wiring.make();
    ASSERT_TRUE(lincvx->collects_window_beacons());
    ASSERT_FALSE(lincvx->pool_safe_fix());

    const geom::Vec2 start{100.0, 100.0};
    lincvx->reset(start, true);
    const std::vector<core::BeaconObservation> beacons =
        ring_beacons(*wiring.table, start);

    // Warm up, then pin: zero heap allocations across 100 windows.
    for (int w = 0; w < 3; ++w) {
        lincvx->predict({0.5, -0.25}, 1.0);
        lincvx->apply_fix(lincvx->compute_fix(beacons), 0.0);
    }
    const std::uint64_t allocations_before = g_heap_allocations.load();
    for (int w = 0; w < 100; ++w) {
        lincvx->predict({0.5, -0.25}, 1.0);
        lincvx->apply_fix(lincvx->compute_fix(beacons), 0.0);
    }
    EXPECT_EQ(g_heap_allocations.load(), allocations_before);
    EXPECT_TRUE(lincvx->ever_fixed());
    EXPECT_GT(lincvx->spread_m(), 0.0);
}

// -------------------------------------------------------- accuracy ordering

/// Fig. 7 scenario at 0% loss: the paper's grid is the most accurate, the
/// EKF next, the opportunistic combination last — the accuracy end of the
/// accuracy/CPU trade-off the ext_backends bench charts.
TEST(EstAccuracy, GridBeatsEkfBeatsLinCvxOnFig7Scenario) {
    auto steady_error = [](Backend backend) {
        core::ScenarioConfig c;  // paper defaults: 50 robots, 25 anchors
        c.seed = 7;
        c.duration = Duration::seconds(600.0);
        c.estimator = backend;
        const core::ScenarioResult r = core::run_scenario(c);
        return r.avg_error.mean_in(TimePoint::from_seconds(150.0),
                                   TimePoint::from_seconds(600.0));
    };
    const double grid = steady_error(Backend::Grid);
    const double ekf = steady_error(Backend::Ekf);
    const double lincvx = steady_error(Backend::LinCvx);
    EXPECT_LT(grid, ekf);
    EXPECT_LT(ekf, lincvx);
    EXPECT_LT(grid, 10.0);  // the reproduction's fig7 steady-state ballpark
}

}  // namespace
}  // namespace cocoa::est
